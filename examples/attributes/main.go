// Attributes: the paper notes attributes "can be easily incorporated";
// this example shows the incorporation. A clinic schema declares patient
// attributes (id required, ssn, insurer); the front-desk policy denies
// ssn. The derived view DTD omits the attribute, materialized views never
// carry it, and queries probing it — positively or negatively — learn
// nothing.
//
//	go run ./examples/attributes
package main

import (
	"fmt"
	"log"

	securexml "repro"
)

const schema = `
root clinic
clinic -> patient*
patient -> name, record
name -> #PCDATA
record -> #PCDATA
attlist patient id!, ssn, insurer
attlist record code
`

const policy = `
ann(patient, @ssn) = N
`

const data = `
<clinic>
  <patient id="p1" ssn="123-45-6789" insurer="Acme">
    <name>Alice</name><record code="J11">flu</record>
  </patient>
  <patient id="p2">
    <name>Bob</name><record>ok</record>
  </patient>
</clinic>
`

func main() {
	d, err := securexml.ParseDTD(schema)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := securexml.ParseSpec(d, policy)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := securexml.NewEngine(spec)
	if err != nil {
		log.Fatal(err)
	}
	doc, err := securexml.ParseDocumentString(data)
	if err != nil {
		log.Fatal(err)
	}
	if err := securexml.Validate(doc, d); err != nil {
		log.Fatal(err)
	}

	fmt.Println("== view DTD for the front desk (no ssn attribute) ==")
	fmt.Print(engine.ViewDTD())

	show := func(query string) {
		nodes, err := engine.QueryString(doc, query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s ->", query)
		for _, n := range nodes {
			fmt.Printf(" %s", n.Text())
		}
		if len(nodes) == 0 {
			fmt.Print(" (empty)")
		}
		fmt.Println()
	}

	fmt.Println("\n== attribute qualifiers over the view ==")
	show(`patient[@id = "p1"]/name`)
	show(`patient[@insurer]/name`)
	show(`//record[@code = "J11"]`)

	fmt.Println("\n== the hidden ssn is indistinguishable from absent ==")
	show("patient[@ssn]/name")      // nothing: cannot find who has an ssn
	show("patient[not(@ssn)]/name") // everyone: cannot find who lacks one

	m, err := engine.Materialize(doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== the materialized view never carries ssn ==")
	fmt.Print(m.View.XML())

	if err := engine.Audit(doc); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\naudit: attributes exposed are exactly the accessible ones")
}
