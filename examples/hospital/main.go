// Hospital: the paper's running example (Examples 1.1-3.4). A nurse in
// ward 6 queries patient data; the clinical-trial structure is hidden,
// and the inference attack of Example 1.1 — comparing //dept//patientInfo
// against //dept/patientInfo to learn who is in a trial — is defeated
// because both queries rewrite to the same document query.
//
//	go run ./examples/hospital
package main

import (
	"fmt"
	"log"

	securexml "repro"
	"repro/internal/dtds"
)

const ward = `
<hospital>
  <dept>
    <clinicalTrial>
      <patientInfo>
        <patient><name>Carol</name><wardNo>6</wardNo>
          <treatment><trial><bill>900</bill></trial></treatment>
        </patient>
      </patientInfo>
    </clinicalTrial>
    <patientInfo>
      <patient><name>Alice</name><wardNo>6</wardNo>
        <treatment><regular><bill>100</bill><medication>aspirin</medication></regular></treatment>
      </patient>
    </patientInfo>
    <staffInfo><staff><nurse><name>Nina</name></nurse></staff></staffInfo>
  </dept>
  <dept>
    <clinicalTrial><patientInfo></patientInfo></clinicalTrial>
    <patientInfo>
      <patient><name>Bob</name><wardNo>7</wardNo>
        <treatment><regular><bill>70</bill><medication>ibuprofen</medication></regular></treatment>
      </patient>
    </patientInfo>
    <staffInfo><staff><doctor><name>Dan</name></doctor></staff></staffInfo>
  </dept>
</hospital>
`

func main() {
	// The administrator defines the nurse policy once, with $wardNo as a
	// per-user parameter (Example 3.1).
	spec, err := dtds.NurseSpec().Bind(map[string]string{"wardNo": "6"})
	if err != nil {
		log.Fatal(err)
	}
	engine, err := securexml.NewEngine(spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== view DTD for ward-6 nurses (Fig. 2) ==")
	fmt.Print(engine.ViewDTD())
	fmt.Println("\nNote: trial and regular are hidden behind dummy labels;")
	fmt.Println("clinicalTrial does not exist in the nurse's world at all.")

	doc, err := securexml.ParseDocumentString(ward)
	if err != nil {
		log.Fatal(err)
	}
	if err := securexml.Validate(doc, dtds.Hospital()); err != nil {
		log.Fatal(err)
	}

	show := func(query string) {
		nodes, err := engine.QueryString(doc, query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s ->", query)
		for _, n := range nodes {
			fmt.Printf(" %s", n.Text())
		}
		if len(nodes) == 0 {
			fmt.Print(" (empty)")
		}
		fmt.Println()
	}

	fmt.Println("\n== nurse queries (ward 6 only; Bob in ward 7 is invisible) ==")
	show("//patient/name")
	show(`//patient[name = "Alice"]/treatment/dummy2/medication`)
	show("//patient//bill") // the paper's Example 4.1

	fmt.Println("\n== the Example 1.1 inference attack is defeated ==")
	show("//dept//patientInfo/patient/name") // p1
	show("//dept/patientInfo/patient/name")  // p2: same answer as p1
	fmt.Println("Both queries return every ward-6 patient: the result")
	fmt.Println("difference that revealed trial membership is gone.")

	fmt.Println("\n== hidden labels are unreachable ==")
	show("//clinicalTrial")
	show("//trial | //regular")
}
