// Multipolicy: several user classes over the same hospital document —
// ward-scoped nurses (parameterized by $wardNo), doctors who never see
// billing, and auditors who see only billing. One registry manages all
// the policies; each class gets its own automatically derived view DTD
// and its own answers to the same queries.
//
//	go run ./examples/multipolicy
package main

import (
	"fmt"
	"log"

	securexml "repro"
	"repro/internal/dtds"
)

const doctorPolicy = `
ann(trial, bill) = N
ann(regular, bill) = N
`

const auditorPolicy = `
ann(hospital, dept) = Y
ann(dept, patientInfo) = N
ann(dept, clinicalTrial) = N
ann(dept, staffInfo) = N
ann(trial, bill) = Y
ann(regular, bill) = Y
`

const ward = `
<hospital>
  <dept>
    <clinicalTrial>
      <patientInfo>
        <patient><name>Carol</name><wardNo>6</wardNo>
          <treatment><trial><bill>900</bill></trial></treatment>
        </patient>
      </patientInfo>
    </clinicalTrial>
    <patientInfo>
      <patient><name>Alice</name><wardNo>6</wardNo>
        <treatment><regular><bill>100</bill><medication>aspirin</medication></regular></treatment>
      </patient>
    </patientInfo>
    <staffInfo><staff><nurse><name>Nina</name></nurse></staff></staffInfo>
  </dept>
  <dept>
    <clinicalTrial><patientInfo></patientInfo></clinicalTrial>
    <patientInfo>
      <patient><name>Bob</name><wardNo>7</wardNo>
        <treatment><regular><bill>70</bill><medication>ibuprofen</medication></regular></treatment>
      </patient>
    </patientInfo>
    <staffInfo><staff><doctor><name>Dan</name></doctor></staff></staffInfo>
  </dept>
</hospital>
`

func main() {
	registry := securexml.NewRegistry(dtds.Hospital())
	mustDefine := func(name, src string) {
		if _, err := registry.Define(name, src); err != nil {
			log.Fatal(err)
		}
	}
	mustDefine("nurse", dtds.NurseSpecSource)
	mustDefine("doctor", doctorPolicy)
	mustDefine("auditor", auditorPolicy)

	doc, err := securexml.ParseDocumentString(ward)
	if err != nil {
		log.Fatal(err)
	}

	type user struct {
		class  string
		params map[string]string
		label  string
	}
	users := []user{
		{"nurse", map[string]string{"wardNo": "6"}, "nurse (ward 6)"},
		{"nurse", map[string]string{"wardNo": "7"}, "nurse (ward 7)"},
		{"doctor", nil, "doctor"},
		{"auditor", nil, "auditor"},
	}

	queries := []string{"//patient/name", "//bill", "//medication"}
	for _, u := range users {
		fmt.Printf("== %s ==\n", u.label)
		for _, q := range queries {
			nodes, err := registry.Query(u.class, u.params, doc, q)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-18s ->", q)
			for _, n := range nodes {
				fmt.Printf(" %s", n.Text())
			}
			if len(nodes) == 0 {
				fmt.Print(" (nothing)")
			}
			fmt.Println()
		}
		fmt.Println()
	}

	// Each class is handed a different schema: what you cannot see does
	// not exist in your world.
	for _, u := range users[1:] {
		dtd, err := registry.ViewDTD(u.class, u.params)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== view DTD for %s: %d element types ==\n", u.label, dtd.Len())
	}
}
