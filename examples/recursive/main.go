// Recursive views (Section 4.2 / Fig. 7): the document DTD nests a's
// through a hidden c layer, the derived view DTD is recursive (a -> b,
// a*), and '//' queries are rewritten by unfolding the view to the height
// of the concrete document.
//
//	go run ./examples/recursive
package main

import (
	"fmt"
	"log"

	securexml "repro"
	"repro/internal/dtds"
)

const tree = `
<a><b>root</b>
  <c>
    <a><b>child-1</b>
      <c>
        <a><b>grandchild-1a</b><c/></a>
        <a><b>grandchild-1b</b><c/></a>
      </c>
    </a>
    <a><b>child-2</b><c/></a>
  </c>
</a>
`

func main() {
	engine, err := securexml.NewEngine(dtds.Fig7Spec())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== document DTD (administrator-side) ==")
	fmt.Print(dtds.Fig7())
	fmt.Println("\n== derived view DTD (recursive; c is gone) ==")
	fmt.Print(engine.ViewDTD())
	fmt.Printf("view recursive: %v\n", engine.View().IsRecursive())

	doc, err := securexml.ParseDocumentString(tree)
	if err != nil {
		log.Fatal(err)
	}
	if err := securexml.Validate(doc, dtds.Fig7()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("document height: %d (drives the unfolding depth)\n", doc.Height())

	// //b over the recursive view: not expressible as a single XPath over
	// the document in general (it would need (c/a)*/b), so the rewriter
	// unfolds the view DTD to the document height first.
	p, err := securexml.ParseQuery("//b")
	if err != nil {
		log.Fatal(err)
	}
	pt, err := engine.Rewrite(p, doc.Height())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n//b rewritten over the document:\n  %s\n", securexml.QueryString(pt))

	nodes, err := engine.QueryString(doc, "//b")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n//b over the view:")
	for _, n := range nodes {
		fmt.Printf("  %s\n", n.Text())
	}

	// Deeper view steps: the second view level is the second *a* level of
	// the document, reached through the hidden c spine.
	nodes, err = engine.QueryString(doc, "a/a/b")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\na/a/b over the view (grandchildren):")
	for _, n := range nodes {
		fmt.Printf("  %s\n", n.Text())
	}

	// The hidden layer stays hidden.
	nodes, err = engine.QueryString(doc, "//c")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n//c over the view: %d results (label c does not exist in the view)\n", len(nodes))
}
