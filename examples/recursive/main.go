// Recursive views (Section 4.2 / Fig. 7): the document DTD nests a's
// through a hidden c layer, the derived view DTD is recursive (a -> b,
// a*), and '//' queries are rewritten height-free into a Rec automaton
// valid for documents of any height. The paper's Section 4.2 treatment —
// unfolding the view DTD to the concrete document height — is kept
// behind EngineConfig.UnfoldRewrite as a differential oracle, and this
// example runs both to show they agree.
//
//	go run ./examples/recursive
package main

import (
	"fmt"
	"log"

	securexml "repro"
	"repro/internal/dtds"
)

const tree = `
<a><b>root</b>
  <c>
    <a><b>child-1</b>
      <c>
        <a><b>grandchild-1a</b><c/></a>
        <a><b>grandchild-1b</b><c/></a>
      </c>
    </a>
    <a><b>child-2</b><c/></a>
  </c>
</a>
`

func main() {
	engine, err := securexml.NewEngine(dtds.Fig7Spec())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== document DTD (administrator-side) ==")
	fmt.Print(dtds.Fig7())
	fmt.Println("\n== derived view DTD (recursive; c is gone) ==")
	fmt.Print(engine.ViewDTD())
	fmt.Printf("view recursive: %v\n", engine.View().IsRecursive())
	fmt.Printf("rewrite mode: %s\n", engine.RewriteMode())

	doc, err := securexml.ParseDocumentString(tree)
	if err != nil {
		log.Fatal(err)
	}
	if err := securexml.Validate(doc, dtds.Fig7()); err != nil {
		log.Fatal(err)
	}

	// //b over the recursive view: not expressible as a single XPath over
	// the document in general (it would need (c/a)*/b), so the rewriter
	// emits a Rec automaton — one plan, any height.
	p, err := securexml.ParseQuery("//b")
	if err != nil {
		log.Fatal(err)
	}
	pt, err := engine.Rewrite(p, doc.Height())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n//b rewritten over the document (height-free):\n  %s\n", securexml.QueryString(pt))

	// The Section 4.2 oracle unfolds the view DTD to the document height;
	// its plan grows with the document, the automaton's does not.
	oracle, err := securexml.NewEngineWithConfig(dtds.Fig7Spec(), securexml.EngineConfig{UnfoldRewrite: true})
	if err != nil {
		log.Fatal(err)
	}
	ptU, err := oracle.Rewrite(p, doc.Height())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n//b rewritten by the unfold oracle (height %d):\n  %s\n",
		doc.Height(), securexml.QueryString(ptU))

	nodes, err := engine.QueryString(doc, "//b")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n//b over the view:")
	for _, n := range nodes {
		fmt.Printf("  %s\n", n.Text())
	}
	oracleNodes, err := oracle.QueryString(doc, "//b")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unfold oracle agrees: %v (%d nodes each)\n",
		len(nodes) == len(oracleNodes), len(nodes))

	// Deeper view steps: the second view level is the second *a* level of
	// the document, reached through the hidden c spine.
	nodes, err = engine.QueryString(doc, "a/a/b")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\na/a/b over the view (grandchildren):")
	for _, n := range nodes {
		fmt.Printf("  %s\n", n.Text())
	}

	// The hidden layer stays hidden.
	nodes, err = engine.QueryString(doc, "//c")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n//c over the view: %d results (label c does not exist in the view)\n", len(nodes))
}
