// Quickstart: define a DTD and an access policy, derive the security
// view, and answer queries over the view without materializing it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	securexml "repro"
)

const schema = `
root library
library -> book*
book -> title, author, price, internal-notes
title -> #PCDATA
author -> #PCDATA
price -> #PCDATA
internal-notes -> #PCDATA
`

// Public catalog users may browse books but never the internal notes.
const policy = `
ann(book, internal-notes) = N
`

const data = `
<library>
  <book><title>TAOCP</title><author>Knuth</author><price>180</price>
        <internal-notes>renegotiate supplier terms</internal-notes></book>
  <book><title>SICP</title><author>Abelson</author><price>60</price>
        <internal-notes>overstocked</internal-notes></book>
</library>
`

func main() {
	d, err := securexml.ParseDTD(schema)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := securexml.ParseSpec(d, policy)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := securexml.NewEngine(spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== view DTD published to catalog users ==")
	fmt.Print(engine.ViewDTD())

	doc, err := securexml.ParseDocumentString(data)
	if err != nil {
		log.Fatal(err)
	}
	if err := securexml.Validate(doc, d); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== //book/title over the view ==")
	nodes, err := engine.QueryString(doc, "//book/title")
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range nodes {
		fmt.Println(" ", n.Text())
	}

	fmt.Println("\n== //internal-notes over the view (hidden: empty) ==")
	nodes, err = engine.QueryString(doc, "//internal-notes")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d results\n", len(nodes))

	// The audit confirms the derived view exposes all and only the
	// accessible nodes of this document (Theorem 3.2, checked dynamically).
	if err := engine.Audit(doc); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\naudit: view is sound and complete for this document")
}
