// Adex: the paper's Section 6 evaluation scenario on generated
// classified-advertising data. A real-estate analyst sees buyer records
// and real-estate ads only; the example shows the derived view, the four
// benchmark queries with their rewritten and optimized forms, and the
// timing gap between the naive baseline and view-based rewriting.
//
//	go run ./examples/adex
package main

import (
	"fmt"
	"log"
	"time"

	securexml "repro"
	"repro/internal/dtds"
	"repro/internal/naive"
	"repro/internal/xpath"
)

func main() {
	spec := dtds.AdexSpec()
	engine, err := securexml.NewEngine(spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Adex security view (prune-only: no dummies) ==")
	fmt.Print(engine.ViewDTD())

	doc := dtds.GenerateAdex(42, 800)
	fmt.Printf("\ngenerated document: %d nodes\n", doc.Size())

	// The naive baseline needs the whole document annotated up front.
	annotStart := time.Now()
	naive.Annotate(spec, doc)
	fmt.Printf("naive baseline annotation pass: %v (per policy, per document!)\n", time.Since(annotStart))

	for _, qname := range []string{"Q1", "Q2", "Q3", "Q4"} {
		query := dtds.AdexQueries[qname]
		fmt.Printf("\n== %s: %s ==\n", qname, query)
		p, err := securexml.ParseQuery(query)
		if err != nil {
			log.Fatal(err)
		}

		pt, err := engine.Rewrite(p, doc.Height())
		if err != nil {
			log.Fatal(err)
		}
		po := engine.Optimize(pt)
		fmt.Printf("  rewritten: %s\n", securexml.QueryString(pt))
		if xpath.Equal(pt, po) {
			fmt.Printf("  optimized: (no further improvement)\n")
		} else {
			fmt.Printf("  optimized: %s\n", securexml.QueryString(po))
		}

		pn, err := naive.RewriteQuery(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  naive:     %s\n", securexml.QueryString(pn))

		tN := timeIt(func() int { return len(securexml.Eval(pn, doc)) })
		tR := timeIt(func() int { return len(securexml.Eval(pt, doc)) })
		tO := timeIt(func() int { return len(securexml.Eval(po, doc)) })
		n := len(securexml.Eval(po, doc))
		fmt.Printf("  results: %d   naive %v | rewrite %v | optimize %v\n", n, tN, tR, tO)
	}
}

func timeIt(f func() int) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}
