package naive

import (
	"testing"

	"repro/internal/access"
	"repro/internal/dtds"
	"repro/internal/rewrite"
	"repro/internal/secview"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

func TestRewriteQueryRules(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"a/b", `((//a)//b)[@accessibility = "1"]`},
		{"//a", `(//a)[@accessibility = "1"]`},
		{"a[b]", `(//a)[//b][@accessibility = "1"]`},
		{"a | b", `(//a | //b)[@accessibility = "1"]`},
		{"∅", "∅"},
	}
	for _, tc := range cases {
		p, err := RewriteQuery(xpath.MustParse(tc.in))
		if err != nil {
			t.Fatalf("RewriteQuery(%q): %v", tc.in, err)
		}
		if got := xpath.String(p); got != tc.want {
			t.Errorf("RewriteQuery(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestAnnotate(t *testing.T) {
	spec := dtds.AdexSpec()
	doc := dtds.GenerateAdex(1, 3)
	Annotate(spec, doc)
	acc := access.Accessibility(spec, doc)
	doc.Root.Walk(func(n *xmltree.Node) bool {
		if n.Kind != xmltree.ElementNode {
			return true
		}
		v, ok := n.Attr(AttrName)
		if !ok {
			t.Fatalf("element %s not annotated", n.Path())
		}
		want := "0"
		if acc[n] {
			want = "1"
		}
		if v != want {
			t.Errorf("element %s annotated %q, accessibility %q", n.Path(), v, want)
		}
		return true
	})
}

// TestNaiveAgreesWithRewrite: on the prune-only Adex view the naive
// baseline and the security-view rewriting must return identical results
// for the benchmark queries.
func TestNaiveAgreesWithRewrite(t *testing.T) {
	spec := dtds.AdexSpec()
	view, err := secview.Derive(spec)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	r, err := rewrite.ForView(view)
	if err != nil {
		t.Fatalf("ForView: %v", err)
	}
	doc := dtds.GenerateAdex(7, 4)
	Annotate(spec, doc)
	for name, q := range dtds.AdexQueries {
		p := xpath.MustParse(q)
		nv, err := Query(p, doc)
		if err != nil {
			t.Fatalf("%s: naive Query: %v", name, err)
		}
		pt, err := r.Rewrite(p)
		if err != nil {
			t.Fatalf("%s: Rewrite: %v", name, err)
		}
		rv := xpath.EvalDoc(pt, doc)
		if len(nv) != len(rv) {
			t.Fatalf("%s: naive %d nodes, rewrite %d nodes", name, len(nv), len(rv))
		}
		for i := range nv {
			if nv[i] != rv[i] {
				t.Errorf("%s: result %d differs", name, i)
			}
		}
	}
}

// TestNaiveFiltersInaccessible: the attribute qualifier must keep hidden
// elements out of results.
func TestNaiveFiltersInaccessible(t *testing.T) {
	spec := dtds.AdexSpec()
	doc := dtds.GenerateAdex(3, 3)
	Annotate(spec, doc)
	// employment ads are hidden by the policy.
	res, err := Query(xpath.MustParse("//employment"), doc)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(res) != 0 {
		t.Errorf("naive returned %d hidden employment nodes", len(res))
	}
	// buyer-info is visible.
	res, err = Query(xpath.MustParse("//buyer-info"), doc)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(res) == 0 {
		t.Errorf("naive returned no buyer-info nodes")
	}
}

func TestWidenQualifierForms(t *testing.T) {
	cases := []struct{ in, want string }{
		{`a[b = "1"]`, `(//a)[//b = "1"][@accessibility = "1"]`},
		{"a[b and c]", `(//a)[//b and //c][@accessibility = "1"]`},
		{"a[b or not(c)]", `(//a)[//b or not(//c)][@accessibility = "1"]`},
		{"a[true() and .[false()]]", `(//a)[true() and .[false()]][@accessibility = "1"]`},
		{`a[@x = "v"]`, `(//a)[@x = "v"][@accessibility = "1"]`},
		{"a[@x]", `(//a)[@x][@accessibility = "1"]`},
		{"a[. | b]", `(//a)[. | //b][@accessibility = "1"]`},
		{"a//b", `((//a)//b)[@accessibility = "1"]`},
	}
	for _, tc := range cases {
		p, err := RewriteQuery(xpath.MustParse(tc.in))
		if err != nil {
			t.Fatalf("RewriteQuery(%q): %v", tc.in, err)
		}
		if got := xpath.String(p); got != tc.want {
			t.Errorf("RewriteQuery(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestNaiveQueryEndToEnd(t *testing.T) {
	spec := dtds.AdexSpec()
	doc := dtds.GenerateAdex(13, 3)
	Annotate(spec, doc)
	res, err := Query(xpath.MustParse(`//buyer-info[company-id]/contact-info`), doc)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	for _, n := range res {
		if n.Label != "contact-info" {
			t.Errorf("unexpected label %s", n.Label)
		}
		if v, _ := n.Attr(AttrName); v != "1" {
			t.Errorf("inaccessible node returned")
		}
	}
	if len(res) == 0 {
		t.Errorf("no results")
	}
}
