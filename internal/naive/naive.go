// Package naive implements the baseline access-control enforcement of
// the paper's Section 6: instead of using the DTD to rewrite queries, the
// whole document is annotated with element-level accessibility attributes
// (in the style of [Cho et al.]), and a view query is adapted with two
// rules: every child axis becomes a descendant axis (an edge of the view
// DTD may correspond to a longer path in the document), and the qualifier
// [@accessibility="1"] is appended to the final step so only authorized
// elements are returned.
//
// The baseline is only sound for views whose element names are unique and
// that hide data purely by pruning (no dummy relabeling) — exactly the
// Adex setting the paper benchmarks. Its cost profile is the point: the
// descendant axes force full-document scans that the DTD-based rewriting
// of package rewrite avoids.
package naive

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// AttrName is the accessibility attribute added to every element.
const AttrName = "accessibility"

// Annotate stores each element's accessibility ("1" or "0") w.r.t. the
// bound specification as an attribute, mutating the document in place.
// This is the per-policy, whole-database annotation pass whose cost the
// security-view approach avoids entirely.
func Annotate(spec *access.Spec, doc *xmltree.Document) {
	acc := access.Accessibility(spec, doc)
	doc.Root.Walk(func(n *xmltree.Node) bool {
		if n.Kind == xmltree.ElementNode {
			v := "0"
			if acc[n] {
				v = "1"
			}
			n.SetAttr(AttrName, v)
		}
		return true
	})
}

// RewriteQuery applies the two naive rewrite rules to a view query:
// child steps become descendant steps (inside qualifiers too), and the
// result is filtered by [@accessibility="1"].
func RewriteQuery(p xpath.Path) (xpath.Path, error) {
	widened, err := widen(p)
	if err != nil {
		return nil, err
	}
	if xpath.IsEmpty(widened) {
		return widened, nil
	}
	return xpath.Qualified{Sub: widened, Cond: xpath.QAttrEq{Name: AttrName, Value: "1"}}, nil
}

// widen replaces each child-axis step with a descendant step.
func widen(p xpath.Path) (xpath.Path, error) {
	switch p := p.(type) {
	case xpath.Empty, xpath.Self:
		return p, nil
	case xpath.Label, xpath.Wildcard:
		return xpath.Descend{Sub: p}, nil
	case xpath.Seq:
		l, err := widen(p.Left)
		if err != nil {
			return nil, err
		}
		r, err := widen(p.Right)
		if err != nil {
			return nil, err
		}
		return xpath.MakeSeq(l, r), nil
	case xpath.Descend:
		sub, err := widen(p.Sub)
		if err != nil {
			return nil, err
		}
		// //(//p) ≡ //p.
		if d, ok := sub.(xpath.Descend); ok {
			return d, nil
		}
		return xpath.Descend{Sub: sub}, nil
	case xpath.Union:
		l, err := widen(p.Left)
		if err != nil {
			return nil, err
		}
		r, err := widen(p.Right)
		if err != nil {
			return nil, err
		}
		return xpath.MakeUnion(l, r), nil
	case xpath.Qualified:
		sub, err := widen(p.Sub)
		if err != nil {
			return nil, err
		}
		q, err := widenQual(p.Cond)
		if err != nil {
			return nil, err
		}
		return xpath.Qualified{Sub: sub, Cond: q}, nil
	default:
		return nil, fmt.Errorf("naive: unsupported path node %T", p)
	}
}

func widenQual(q xpath.Qual) (xpath.Qual, error) {
	switch q := q.(type) {
	case xpath.QTrue, xpath.QFalse, xpath.QAttrEq, xpath.QAttrHas:
		return q, nil
	case xpath.QPath:
		p, err := widen(q.Path)
		if err != nil {
			return nil, err
		}
		return xpath.QPath{Path: p}, nil
	case xpath.QEq:
		p, err := widen(q.Path)
		if err != nil {
			return nil, err
		}
		return xpath.QEq{Path: p, Value: q.Value, Var: q.Var}, nil
	case xpath.QAnd:
		l, err := widenQual(q.Left)
		if err != nil {
			return nil, err
		}
		r, err := widenQual(q.Right)
		if err != nil {
			return nil, err
		}
		return xpath.QAnd{Left: l, Right: r}, nil
	case xpath.QOr:
		l, err := widenQual(q.Left)
		if err != nil {
			return nil, err
		}
		r, err := widenQual(q.Right)
		if err != nil {
			return nil, err
		}
		return xpath.QOr{Left: l, Right: r}, nil
	case xpath.QNot:
		s, err := widenQual(q.Sub)
		if err != nil {
			return nil, err
		}
		return xpath.QNot{Sub: s}, nil
	default:
		return nil, fmt.Errorf("naive: unsupported qualifier node %T", q)
	}
}

// Query runs a view query end to end with the naive approach over an
// annotated document.
func Query(p xpath.Path, doc *xmltree.Document) ([]*xmltree.Node, error) {
	pn, err := RewriteQuery(p)
	if err != nil {
		return nil, err
	}
	return xpath.EvalDoc(pn, doc), nil
}
