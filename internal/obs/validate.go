package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ValidateExposition checks that r is well-formed Prometheus text
// exposition (format 0.0.4): every non-comment line is a parseable
// sample, every sample's family has a TYPE declared before it, TYPE and
// HELP appear at most once per family, histogram families carry
// cumulative le buckets ending in +Inf with _count equal to the +Inf
// bucket, and metric/label names match the Prometheus grammar. It is
// the check behind the CI assertion that /metricsz stays scrapeable,
// and deliberately shares no code with WriteText so a formatting bug
// cannot hide from its own validator.
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	types := make(map[string]string) // family -> TYPE
	helps := make(map[string]bool)
	hist := make(map[string]*histCheck) // family+labels -> bucket state
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := validateComment(line, types, helps); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		if err := validateSample(line, types, hist); err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for key, h := range hist {
		if err := h.finish(); err != nil {
			return fmt.Errorf("histogram %s: %w", key, err)
		}
	}
	if len(types) == 0 {
		return fmt.Errorf("no metric families found")
	}
	return nil
}

func validateComment(line string, types map[string]string, helps map[string]bool) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
		// Plain comments are legal and ignored.
		return nil
	}
	name := fields[2]
	if !validMetricName(name) {
		return fmt.Errorf("bad metric name %q in %s", name, fields[1])
	}
	if fields[1] == "HELP" {
		if helps[name] {
			return fmt.Errorf("duplicate HELP for %s", name)
		}
		helps[name] = true
		return nil
	}
	if _, dup := types[name]; dup {
		return fmt.Errorf("duplicate TYPE for %s", name)
	}
	if len(fields) != 4 {
		return fmt.Errorf("TYPE %s missing a type", name)
	}
	switch fields[3] {
	case "counter", "gauge", "histogram", "summary", "untyped":
	default:
		return fmt.Errorf("unknown TYPE %q for %s", fields[3], name)
	}
	types[name] = fields[3]
	return nil
}

func validateSample(line string, types map[string]string, hist map[string]*histCheck) error {
	name, labels, value, err := parseSample(line)
	if err != nil {
		return err
	}
	family := name
	suffix := ""
	for _, s := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, s)
		if base != name && types[base] == "histogram" {
			family, suffix = base, s
			break
		}
	}
	typ, ok := types[family]
	if !ok {
		return fmt.Errorf("sample %s has no TYPE declaration", name)
	}
	if typ == "histogram" && suffix == "" {
		return fmt.Errorf("histogram %s exposes bare samples (want _bucket/_sum/_count)", name)
	}
	if typ == "counter" && value < 0 {
		return fmt.Errorf("counter %s has negative value %v", name, value)
	}
	if suffix != "" {
		key := family + "{" + labelsSansLe(labels) + "}"
		h := hist[key]
		if h == nil {
			h = &histCheck{}
			hist[key] = h
		}
		return h.observe(suffix, labels, value)
	}
	return nil
}

// parseSample splits `name{labels} value [timestamp]`.
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	brace := strings.IndexByte(rest, '{')
	labels = make(map[string]string)
	if brace >= 0 {
		name = rest[:brace]
		close := strings.LastIndexByte(rest, '}')
		if close < brace {
			return "", nil, 0, fmt.Errorf("unbalanced braces in %q", line)
		}
		if err := parseLabels(rest[brace+1:close], labels); err != nil {
			return "", nil, 0, err
		}
		rest = strings.TrimSpace(rest[close+1:])
	} else {
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return "", nil, 0, fmt.Errorf("sample %q has no value", line)
		}
		name = rest[:sp]
		rest = strings.TrimSpace(rest[sp:])
	}
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("bad metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("sample %q: want value [timestamp]", line)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("sample %q: bad value: %v", line, err)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, 0, fmt.Errorf("sample %q: bad timestamp: %v", line, err)
		}
	}
	return name, labels, value, nil
}

func parseLabels(s string, out map[string]string) error {
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return fmt.Errorf("bad label pair in %q", s)
		}
		lname := s[:eq]
		if !validLabelName(lname) {
			return fmt.Errorf("bad label name %q", lname)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return fmt.Errorf("label %s: value is not quoted", lname)
		}
		s = s[1:]
		var val strings.Builder
		for {
			if len(s) == 0 {
				return fmt.Errorf("label %s: unterminated value", lname)
			}
			c := s[0]
			s = s[1:]
			if c == '"' {
				break
			}
			if c == '\\' {
				if len(s) == 0 {
					return fmt.Errorf("label %s: dangling escape", lname)
				}
				switch s[0] {
				case '\\', '"':
					val.WriteByte(s[0])
				case 'n':
					val.WriteByte('\n')
				default:
					return fmt.Errorf("label %s: bad escape \\%c", lname, s[0])
				}
				s = s[1:]
				continue
			}
			val.WriteByte(c)
		}
		if _, dup := out[lname]; dup {
			return fmt.Errorf("duplicate label %s", lname)
		}
		out[lname] = val.String()
		s = strings.TrimPrefix(s, ",")
	}
	return nil
}

func labelsSansLe(labels map[string]string) string {
	parts := make([]string, 0, len(labels))
	for k, v := range labels {
		if k == "le" {
			continue
		}
		parts = append(parts, k+"="+v)
	}
	// Deterministic key: the label set is tiny, insertion sort via
	// strings.Join after a simple sort.
	for i := 1; i < len(parts); i++ {
		for j := i; j > 0 && parts[j] < parts[j-1]; j-- {
			parts[j], parts[j-1] = parts[j-1], parts[j]
		}
	}
	return strings.Join(parts, ",")
}

// histCheck accumulates one histogram series' invariants: le buckets
// must be non-decreasing in both bound and count, end with +Inf, and
// agree with _count.
type histCheck struct {
	lastLe    float64
	lastCount float64
	buckets   int
	sawInf    bool
	infCount  float64
	count     float64
	sawCount  bool
}

func (h *histCheck) observe(suffix string, labels map[string]string, value float64) error {
	switch suffix {
	case "_bucket":
		le, ok := labels["le"]
		if !ok {
			return fmt.Errorf("_bucket sample without le label")
		}
		bound, err := parseLe(le)
		if err != nil {
			return err
		}
		if h.buckets > 0 && bound <= h.lastLe {
			return fmt.Errorf("le buckets out of order (%v after %v)", bound, h.lastLe)
		}
		if value < h.lastCount {
			return fmt.Errorf("bucket counts not cumulative (%v after %v)", value, h.lastCount)
		}
		h.lastLe, h.lastCount = bound, value
		h.buckets++
		if le == "+Inf" {
			h.sawInf, h.infCount = true, value
		}
	case "_count":
		h.sawCount, h.count = true, value
	case "_sum":
		// Sums are unconstrained beyond being a float, already parsed.
	}
	return nil
}

func (h *histCheck) finish() error {
	if !h.sawInf {
		return fmt.Errorf("missing +Inf bucket")
	}
	if h.sawCount && h.count != h.infCount {
		return fmt.Errorf("_count %v != +Inf bucket %v", h.count, h.infCount)
	}
	return nil
}

func parseLe(le string) (float64, error) {
	if le == "+Inf" {
		return math.Inf(1), nil
	}
	v, err := strconv.ParseFloat(le, 64)
	if err != nil {
		return 0, fmt.Errorf("bad le %q: %v", le, err)
	}
	return v, nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
