// Package obs is the observability substrate of the query-serving
// stack: lightweight in-process trace spans (start/end, attributes,
// parent/child) carried through the pipeline on the request context, a
// bounded ring buffer of recent traces with a sampling knob, a metrics
// registry (counters, gauges, histograms over the latency package's
// digests) with Prometheus text exposition, and the per-request
// QueryMetrics carrier the pipeline layers write their always-on phase
// accounting into.
//
// The design splits sampled from always-on state deliberately. Spans
// are sampled: a request that is not sampled carries no span, and every
// instrumentation point degrades to a nil check (all Span methods are
// nil-safe no-ops), so the un-sampled hot path pays only a context
// lookup. Metrics are always on: the server observes every request into
// its histograms regardless of sampling, because percentiles computed
// over a sample of convenience are not percentiles.
package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one span attribute. Values are kept as produced (ints,
// strings, bools) and serialized by encoding/json.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// Span is one timed operation inside a trace. Spans form a tree; child
// spans are created with StartChild. All methods are safe for
// concurrent use and safe on a nil receiver (the no-op form every
// un-sampled code path takes), so instrumentation never needs to guard.
type Span struct {
	mu       sync.Mutex
	name     string
	start    time.Time
	end      time.Time
	attrs    []Attr
	children []*Span
}

// NewSpan starts a root span.
func NewSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// StartChild starts a child span. On a nil receiver it returns nil, so
// chains of instrumentation stay no-op when tracing is off.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := NewSpan(name)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// SetAttr records an attribute on the span (nil-safe).
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// Finish marks the span's end time (nil-safe; the first call wins).
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// Duration returns the span's elapsed time: end-start once finished,
// time-since-start while still open, 0 on a nil span.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

// SpanSnapshot is the immutable, JSON-ready copy of a span tree.
type SpanSnapshot struct {
	Name       string         `json:"name"`
	Start      time.Time      `json:"start"`
	DurationNs int64          `json:"duration_ns"`
	Attrs      []Attr         `json:"attrs,omitempty"`
	Children   []SpanSnapshot `json:"children,omitempty"`
}

// Snapshot deep-copies the span tree. Open spans snapshot with their
// current elapsed time.
func (s *Span) Snapshot() SpanSnapshot {
	if s == nil {
		return SpanSnapshot{}
	}
	s.mu.Lock()
	snap := SpanSnapshot{Name: s.name, Start: s.start}
	if s.end.IsZero() {
		snap.DurationNs = int64(time.Since(s.start))
	} else {
		snap.DurationNs = int64(s.end.Sub(s.start))
	}
	snap.Attrs = append([]Attr(nil), s.attrs...)
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		snap.Children = append(snap.Children, c.Snapshot())
	}
	return snap
}

// Trace is one sampled request: a stable ID and the root span the
// pipeline hangs its phase spans off.
type Trace struct {
	ID   uint64
	Root *Span
}

// TraceSnapshot is the ring-buffer entry: the ID plus the finished span
// tree.
type TraceSnapshot struct {
	ID   uint64       `json:"id"`
	Root SpanSnapshot `json:"root"`
}

// DefaultTraceRing bounds the tracer's recent-trace ring when the
// configured capacity is zero or negative.
const DefaultTraceRing = 64

// Tracer decides which requests get a span tree (1-in-N sampling) and
// keeps a bounded ring of the most recent completed traces. All methods
// are safe for concurrent use, and safe on a nil *Tracer (never
// sampling), so callers without a tracer need no guards.
type Tracer struct {
	sampleEvery atomic.Int64
	nextID      atomic.Uint64
	counter     atomic.Uint64
	started     atomic.Uint64
	kept        atomic.Uint64

	mu   sync.Mutex
	ring []TraceSnapshot
	next int
}

// NewTracer returns a tracer sampling one request in sampleEvery
// (0 disables sampling entirely, 1 samples everything) with a ring
// holding the ringCap most recent traces.
func NewTracer(sampleEvery, ringCap int) *Tracer {
	if ringCap <= 0 {
		ringCap = DefaultTraceRing
	}
	t := &Tracer{ring: make([]TraceSnapshot, 0, ringCap)}
	t.SetSampleEvery(sampleEvery)
	return t
}

// SampleEvery returns the sampling knob: 0 = off, N = one trace per N
// Sample calls.
func (t *Tracer) SampleEvery() int {
	if t == nil {
		return 0
	}
	return int(t.sampleEvery.Load())
}

// SetSampleEvery adjusts the sampling knob at runtime (negative is
// clamped to 0 = off).
func (t *Tracer) SetSampleEvery(n int) {
	if t == nil {
		return
	}
	if n < 0 {
		n = 0
	}
	t.sampleEvery.Store(int64(n))
}

// Sample starts a trace for one request in SampleEvery, returning nil
// for the rest. The sampled/unsampled decision is a counter, not a coin
// flip, so a steady request stream yields a steady trace stream.
func (t *Tracer) Sample(rootName string) *Trace {
	if t == nil {
		return nil
	}
	n := t.sampleEvery.Load()
	if n <= 0 {
		return nil
	}
	if t.counter.Add(1)%uint64(n) != 0 {
		return nil
	}
	return t.Start(rootName)
}

// Start unconditionally starts a trace (the /explainz path, which must
// trace regardless of the sampling knob). Returns nil on a nil tracer.
func (t *Tracer) Start(rootName string) *Trace {
	if t == nil {
		return nil
	}
	t.started.Add(1)
	return &Trace{ID: t.nextID.Add(1), Root: NewSpan(rootName)}
}

// Keep finishes the trace's root span and stores its snapshot in the
// ring, evicting the oldest entry when full. Nil traces and tracers are
// no-ops.
func (t *Tracer) Keep(tr *Trace) {
	if t == nil || tr == nil {
		return
	}
	tr.Root.Finish()
	snap := TraceSnapshot{ID: tr.ID, Root: tr.Root.Snapshot()}
	t.kept.Add(1)
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, snap)
	} else {
		t.ring[t.next] = snap
		t.next = (t.next + 1) % len(t.ring)
	}
	t.mu.Unlock()
}

// Recent returns up to n of the most recent kept traces, newest first
// (n <= 0 means all).
func (t *Tracer) Recent(n int) []TraceSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceSnapshot, 0, len(t.ring))
	// The ring is ordered oldest..newest from t.next when full, 0..len
	// when still filling; walk backwards from the newest entry.
	for i := 0; i < len(t.ring); i++ {
		idx := (t.next - 1 - i + 2*len(t.ring)) % len(t.ring)
		if len(t.ring) < cap(t.ring) {
			// Still filling: entries live at 0..len-1, newest last.
			idx = len(t.ring) - 1 - i
		}
		out = append(out, t.ring[idx])
		if n > 0 && len(out) >= n {
			break
		}
	}
	return out
}

// Stats reports how many traces were started and kept.
func (t *Tracer) Stats() (started, kept uint64) {
	if t == nil {
		return 0, 0
	}
	return t.started.Load(), t.kept.Load()
}

type spanCtxKey struct{}

// ContextWithSpan attaches a span to the context so downstream pipeline
// layers can hang child spans off it.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the context's span, or nil (also on a nil
// context). The nil result composes with the nil-safe Span methods, so
// instrumentation points need no branches.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// StartSpan starts a child of the context's span and returns a context
// carrying the child. When the context has no span (the request is not
// sampled), it returns the context unchanged and a nil span — no
// allocation, which is what keeps tracing overhead at sampling=0 inside
// the acceptance budget.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.StartChild(name)
	return ContextWithSpan(ctx, child), child
}
