package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	root := NewSpan("request")
	root.SetAttr("class", "nurse")
	child := root.StartChild("rewrite")
	child.SetAttr("output_size", 7)
	grand := child.StartChild("unfold")
	grand.Finish()
	child.Finish()
	root.Finish()

	snap := root.Snapshot()
	if snap.Name != "request" || len(snap.Attrs) != 1 || snap.Attrs[0].Key != "class" {
		t.Fatalf("root snapshot: %+v", snap)
	}
	if len(snap.Children) != 1 || snap.Children[0].Name != "rewrite" {
		t.Fatalf("children: %+v", snap.Children)
	}
	if len(snap.Children[0].Children) != 1 || snap.Children[0].Children[0].Name != "unfold" {
		t.Fatalf("grandchildren: %+v", snap.Children[0].Children)
	}
	if snap.DurationNs < 0 || snap.Children[0].DurationNs < 0 {
		t.Errorf("negative durations: %+v", snap)
	}
	if snap.DurationNs < snap.Children[0].DurationNs {
		t.Errorf("root (%d ns) shorter than child (%d ns)", snap.DurationNs, snap.Children[0].DurationNs)
	}
}

func TestSpanFinishFirstCallWins(t *testing.T) {
	s := NewSpan("op")
	s.Finish()
	d := s.Duration()
	time.Sleep(2 * time.Millisecond)
	s.Finish()
	if got := s.Duration(); got != d {
		t.Errorf("second Finish moved the end time: %v -> %v", d, got)
	}
}

// TestNilSafety: every Span method and every Tracer method must be a
// no-op on a nil receiver — this is what lets instrumentation points run
// unguarded on the un-sampled hot path.
func TestNilSafety(t *testing.T) {
	var s *Span
	s.SetAttr("k", "v")
	s.Finish()
	if c := s.StartChild("child"); c != nil {
		t.Errorf("nil.StartChild = %v, want nil", c)
	}
	if d := s.Duration(); d != 0 {
		t.Errorf("nil.Duration = %v, want 0", d)
	}
	if snap := s.Snapshot(); snap.Name != "" {
		t.Errorf("nil.Snapshot = %+v", snap)
	}

	var tr *Tracer
	if tr.Sample("r") != nil || tr.Start("r") != nil {
		t.Error("nil tracer sampled a trace")
	}
	tr.Keep(nil)
	tr.SetSampleEvery(5)
	if tr.SampleEvery() != 0 {
		t.Error("nil tracer has a sampling rate")
	}
	if got := tr.Recent(0); got != nil {
		t.Errorf("nil.Recent = %v", got)
	}
	if a, b := tr.Stats(); a != 0 || b != 0 {
		t.Errorf("nil.Stats = %d, %d", a, b)
	}
}

func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if got := SpanFromContext(ctx); got != nil {
		t.Fatalf("empty context has span %v", got)
	}
	// No parent span: StartSpan must return the context unchanged and a
	// nil span (the zero-overhead path).
	ctx2, sp := StartSpan(ctx, "op")
	if sp != nil || ctx2 != ctx {
		t.Fatalf("StartSpan without parent: ctx changed or span %v", sp)
	}

	root := NewSpan("request")
	ctx = ContextWithSpan(ctx, root)
	if got := SpanFromContext(ctx); got != root {
		t.Fatalf("SpanFromContext = %v, want root", got)
	}
	ctx3, child := StartSpan(ctx, "rewrite")
	if child == nil {
		t.Fatal("StartSpan under a parent returned nil")
	}
	if got := SpanFromContext(ctx3); got != child {
		t.Errorf("child context carries %v, want the child", got)
	}
	root.Finish()
	if snap := root.Snapshot(); len(snap.Children) != 1 || snap.Children[0].Name != "rewrite" {
		t.Errorf("root children: %+v", snap.Children)
	}

	if got := SpanFromContext(nil); got != nil {
		t.Errorf("SpanFromContext(nil) = %v", got)
	}
}

// TestSamplingCadence: the 1-in-N decision is a counter, so exactly one
// trace per N calls, deterministically.
func TestSamplingCadence(t *testing.T) {
	tr := NewTracer(3, 8)
	sampled := 0
	for i := 0; i < 9; i++ {
		if trace := tr.Sample("request"); trace != nil {
			sampled++
			tr.Keep(trace)
		}
	}
	if sampled != 3 {
		t.Errorf("sampled %d of 9 at 1-in-3, want 3", sampled)
	}

	off := NewTracer(0, 8)
	for i := 0; i < 10; i++ {
		if off.Sample("request") != nil {
			t.Fatal("sampling=0 produced a trace")
		}
	}
	// Start bypasses the knob (the /explainz path).
	if off.Start("explain") == nil {
		t.Error("Start returned nil with sampling off")
	}
}

// TestRingBoundAndOrder: the ring keeps only the newest ringCap traces,
// and Recent returns them newest first.
func TestRingBoundAndOrder(t *testing.T) {
	tr := NewTracer(1, 4)
	var ids []uint64
	for i := 0; i < 10; i++ {
		trace := tr.Sample("request")
		if trace == nil {
			t.Fatal("sampling=1 skipped a request")
		}
		ids = append(ids, trace.ID)
		tr.Keep(trace)
	}
	got := tr.Recent(0)
	if len(got) != 4 {
		t.Fatalf("ring holds %d traces, want 4", len(got))
	}
	for i, snap := range got {
		want := ids[len(ids)-1-i]
		if snap.ID != want {
			t.Errorf("Recent[%d].ID = %d, want %d", i, snap.ID, want)
		}
	}
	if got := tr.Recent(2); len(got) != 2 || got[0].ID != ids[len(ids)-1] {
		t.Errorf("Recent(2) = %+v", got)
	}
	if started, kept := tr.Stats(); started != 10 || kept != 10 {
		t.Errorf("Stats = %d started, %d kept, want 10, 10", started, kept)
	}
}

// TestTracerConcurrency exercises Sample/Keep/Recent and span mutation
// from many goroutines; the race detector is the assertion.
func TestTracerConcurrency(t *testing.T) {
	tr := NewTracer(2, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if trace := tr.Sample("request"); trace != nil {
					child := trace.Root.StartChild("phase")
					child.SetAttr("i", i)
					child.Finish()
					tr.Keep(trace)
				}
				tr.Recent(3)
			}
		}()
	}
	wg.Wait()
	if started, kept := tr.Stats(); started != kept || started == 0 {
		t.Errorf("Stats = %d started, %d kept", started, kept)
	}
}
