package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/latency"
)

// Label is one constant metric label (e.g. phase="rewrite"). Labels are
// fixed at registration; this registry has no dynamic label values, so
// the exposition can never grow without bound.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for building a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Histogram is a latency histogram over the shared latency.Digest
// bucket ladder. Internally everything is nanosecond-based (the digest
// stores nanoseconds); the Prometheus exposition converts to seconds,
// the convention for *_duration_seconds metrics.
type Histogram struct{ d latency.Digest }

// Observe records one duration.
func (h *Histogram) Observe(v time.Duration) { h.d.Observe(v) }

// Snapshot returns the underlying digest snapshot (nanosecond units).
func (h *Histogram) Snapshot() latency.Snapshot { return h.d.Snapshot() }

// metricKind tags a series with its exposition TYPE.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instance of a metric family.
type series struct {
	labels    []Label
	counter   func() uint64           // kindCounter
	gauge     func() float64          // kindGauge
	histogram *Histogram              // kindHistogram
	histSnap  func() latency.Snapshot // kindHistogram via HistogramFunc
}

// family groups the series sharing one metric name (one HELP/TYPE
// block in the exposition).
type family struct {
	name   string
	help   string
	kind   metricKind
	series []*series
}

// Registry holds a process-local set of metrics and renders them in the
// Prometheus text exposition format. Registration happens at server
// construction; Observe/Inc on the returned handles and WriteText are
// safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) register(name, help string, kind metricKind, s *series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as both %v and %v", name, f.kind, kind))
	}
	f.series = append(f.series, s)
}

// Counter registers (or extends, with new labels) a counter family and
// returns the handle to increment.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(name, help, kindCounter, &series{labels: labels, counter: c.Value})
	return c
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time — the bridge for counters that already exist as
// atomics elsewhere (the serve package's request counters), so the
// metrics endpoint never double-counts.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.register(name, help, kindCounter, &series{labels: labels, counter: fn})
}

// GaugeFunc registers a gauge read from fn at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindGauge, &series{labels: labels, gauge: fn})
}

// Histogram registers a duration histogram family member and returns
// the handle to observe into.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	h := &Histogram{}
	r.register(name, help, kindHistogram, &series{labels: labels, histogram: h})
	return h
}

// HistogramFunc registers a histogram whose snapshot is read from fn at
// exposition time — the bridge for digests that already exist elsewhere
// (the server's request-latency digest feeding both /statsz and
// /metricsz), so the two endpoints render one underlying histogram and
// can never disagree.
func (r *Registry) HistogramFunc(name, help string, fn func() latency.Snapshot, labels ...Label) {
	r.register(name, help, kindHistogram, &series{labels: labels, histSnap: fn})
}

// bucketLeSeconds are the exposition 'le' values: the shared latency
// ladder converted from durations to seconds, computed once.
var bucketLeSeconds = func() []string {
	out := make([]string, len(latency.Bounds))
	for i, b := range latency.Bounds {
		out[i] = strconv.FormatFloat(b.Seconds(), 'g', -1, 64)
	}
	return out
}()

// WriteText renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): HELP and TYPE per family, then one
// sample line per series — plain values for counters and gauges,
// cumulative le buckets plus _sum (seconds) and _count for histograms.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	families := append([]*family(nil), r.families...)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range families {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, renderLabels(s.labels), s.counter())
			case kindGauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, renderLabels(s.labels),
					strconv.FormatFloat(s.gauge(), 'g', -1, 64))
			case kindHistogram:
				writeHistogram(&b, f.name, s)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeHistogram(b *strings.Builder, name string, s *series) {
	var snap latency.Snapshot
	if s.histSnap != nil {
		snap = s.histSnap()
	} else {
		snap = s.histogram.Snapshot()
	}
	cum := uint64(0)
	for i, le := range bucketLeSeconds {
		cum += snap.Buckets[i]
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, renderLabels(s.labels, L("le", le)), cum)
	}
	cum += snap.Buckets[latency.NumBuckets-1]
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, renderLabels(s.labels, L("le", "+Inf")), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, renderLabels(s.labels),
		strconv.FormatFloat(float64(snap.SumNs)/1e9, 'g', -1, 64))
	fmt.Fprintf(b, "%s_count%s %d\n", name, renderLabels(s.labels), cum)
}

// renderLabels renders `{k="v",...}` with label names sorted, or "" for
// no labels.
func renderLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	h = strings.ReplaceAll(h, "\n", `\n`)
	return h
}
