package obs

import (
	"strings"
	"testing"
	"time"

	"repro/internal/latency"
)

// TestExpositionPin pins the exact Prometheus text exposition for a
// small registry: HELP/TYPE blocks, sorted labels, cumulative le buckets
// in seconds, _sum in seconds, _count equal to the +Inf bucket. Any
// change to the wire format must show up here as an explicit diff.
func TestExpositionPin(t *testing.T) {
	r := NewRegistry()
	ok := r.Counter("test_requests_total", "Total requests.", L("code", "200"))
	ok.Add(3)
	errs := r.Counter("test_requests_total", "Total requests.", L("code", "500"))
	errs.Inc()
	r.GaugeFunc("test_in_flight", "In-flight requests.", func() float64 { return 1.5 })
	h := r.Histogram("test_duration_seconds", "Request duration.")
	h.Observe(50 * time.Microsecond)  // le 0.0001
	h.Observe(300 * time.Microsecond) // le 0.0005
	h.Observe(2 * time.Second)        // le 2.5

	const want = `# HELP test_requests_total Total requests.
# TYPE test_requests_total counter
test_requests_total{code="200"} 3
test_requests_total{code="500"} 1
# HELP test_in_flight In-flight requests.
# TYPE test_in_flight gauge
test_in_flight 1.5
# HELP test_duration_seconds Request duration.
# TYPE test_duration_seconds histogram
test_duration_seconds_bucket{le="0.0001"} 1
test_duration_seconds_bucket{le="0.00025"} 1
test_duration_seconds_bucket{le="0.0005"} 2
test_duration_seconds_bucket{le="0.001"} 2
test_duration_seconds_bucket{le="0.0025"} 2
test_duration_seconds_bucket{le="0.005"} 2
test_duration_seconds_bucket{le="0.01"} 2
test_duration_seconds_bucket{le="0.025"} 2
test_duration_seconds_bucket{le="0.05"} 2
test_duration_seconds_bucket{le="0.1"} 2
test_duration_seconds_bucket{le="0.25"} 2
test_duration_seconds_bucket{le="0.5"} 2
test_duration_seconds_bucket{le="1"} 2
test_duration_seconds_bucket{le="2.5"} 3
test_duration_seconds_bucket{le="5"} 3
test_duration_seconds_bucket{le="10"} 3
test_duration_seconds_bucket{le="+Inf"} 3
test_duration_seconds_sum 2.00035
test_duration_seconds_count 3
`
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if got := b.String(); got != want {
		t.Errorf("exposition drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWriteTextValidates: the writer's output must pass the independent
// validator for a registry spanning every metric kind and label shape.
func TestWriteTextValidates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("app_events_total", "Events.", L("kind", "a"), L("zone", `quoted "z" \ back`))
	c.Add(7)
	r.CounterFunc("app_reads_total", "Reads.", func() uint64 { return 12 })
	r.GaugeFunc("app_temp", "Temp with\nnewline help.", func() float64 { return -2.25 })
	h := r.Histogram("app_wait_seconds", "Wait.", L("q", "fast"))
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	var idle latency.Digest
	r.HistogramFunc("app_idle_seconds", "Idle (empty histogram).", idle.Snapshot)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if err := ValidateExposition(strings.NewReader(b.String())); err != nil {
		t.Errorf("writer output fails the validator: %v\n%s", err, b.String())
	}
}

// TestValidateExpositionRejects: the validator must catch each class of
// malformed exposition it exists for.
func TestValidateExpositionRejects(t *testing.T) {
	cases := []struct {
		name, input string
	}{
		{"empty", ""},
		{"sample before TYPE", "foo_total 3\n"},
		{"bad value", "# TYPE foo counter\nfoo pancake\n"},
		{"duplicate TYPE", "# TYPE foo counter\n# TYPE foo counter\nfoo 1\n"},
		{"bad label grammar", "# TYPE foo counter\nfoo{code=200} 1\n"},
		{"histogram without +Inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_sum 1\nh_count 2\n"},
		{"non-cumulative buckets", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n"},
		{"count not +Inf bucket", "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 7\n"},
		{"bare histogram sample", "# TYPE h histogram\nh 3\n"},
	}
	for _, c := range cases {
		if err := ValidateExposition(strings.NewReader(c.input)); err == nil {
			t.Errorf("%s: validator accepted malformed input", c.name)
		}
	}
}
