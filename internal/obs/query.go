package obs

import (
	"context"
	"time"
)

// Eval modes reported by the evaluator layer. ModeCached means the
// answer came from the semantic answer cache and no evaluator ran at
// all (see internal/anscache).
const (
	ModeSequential = "sequential"
	ModeParallel   = "parallel"
	ModeIndexed    = "indexed"
	ModeCached     = "cached"
)

// Set representations reported by the evaluator layer: ReprBitset when
// the document is compacted and node sets evaluate as ordinal bitsets
// (see internal/nodeset), ReprSlice for the pointer-slice path.
const (
	ReprBitset = "bitset"
	ReprSlice  = "slice"
)

// QueryMetrics is the always-on per-request accounting the pipeline
// layers write into: per-phase durations, cache outcomes, the chosen
// eval mode, and query shape numbers. The server installs one per
// request (WithQueryMetrics) and reads it back after the pipeline
// returns to feed its per-phase histograms and the slow-query log;
// /explainz sets CaptureQueries to additionally get the intermediate
// query strings, which the hot path does not pay to render.
//
// A QueryMetrics is written by the single goroutine evaluating its
// request (the pipeline is sequential within one request) and read only
// after the pipeline returns, so plain fields suffice.
type QueryMetrics struct {
	// Rewrite, Optimize, and Eval are the time spent in each phase for
	// this request. A plan-cache hit skips rewrite and optimize, so
	// those report 0 — per-phase histograms over many requests then
	// honestly show where wall time went, cache and all.
	Rewrite  time.Duration
	Optimize time.Duration
	Eval     time.Duration

	// PlanCacheHit reports whether the (query, height class) plan was
	// served from the engine's cache; EngineCacheHit whether the policy
	// layer found the class's engine already derived for the binding.
	PlanCacheHit   bool
	EngineCacheHit bool
	// AnswerCacheHit is the answer-cache outcome when the engine has one
	// enabled: "equal", "containment", or "miss" (anscache.Kind.String);
	// empty when the cache is off.
	AnswerCacheHit string

	// EvalMode is ModeSequential, ModeParallel, or ModeIndexed — what
	// the evaluator actually did, not what was configured (a
	// parallel-configured engine still runs small inputs sequentially;
	// an indexed-configured one walks small documents and
	// child-axis-only queries).
	EvalMode string
	// SetRepr is the node-set representation evaluation used: ReprBitset
	// on compacted documents (ordinal bitsets, pooled scratch) or
	// ReprSlice otherwise. For cached answers it reports the
	// representation the answer is stored in.
	SetRepr string
	// NodesVisited counts the sequential or indexed evaluator's
	// cooperation ticks (one per path step plus one per node in the hot
	// loops) — a work-done proxy. Zero for parallel evaluations, which
	// report UnionForks/Partitions instead.
	NodesVisited uint64
	// UnionForks and Partitions are the parallel evaluator's fan-outs
	// for this request alone.
	UnionForks uint64
	Partitions uint64

	// RewrittenSize and OptimizedSize are AST sizes of the intermediate
	// queries (xpath.Size), recorded on plan build and on explain.
	RewrittenSize int
	OptimizedSize int
	// UnfoldHeight is the document height a recursive view was unfolded
	// to (0 for non-recursive views).
	UnfoldHeight int

	// PlanText is the optimized-plan text of the plan that served the
	// request — the normalization the answer cache keys on, and (paired
	// with the user class) the basis of the server's query fingerprint
	// (see internal/qstats). Unlike Optimized it is always set, on cache
	// hits and misses alike: the engine stores the rendered text with
	// the cached plan, so surfacing it costs a field copy, not a render.
	PlanText string

	// CaptureQueries asks the pipeline to also render the rewritten and
	// optimized query strings. Off on the serving hot path.
	CaptureQueries bool
	Rewritten      string
	Optimized      string
}

type queryMetricsKey struct{}

// WithQueryMetrics attaches a per-request metrics carrier.
func WithQueryMetrics(ctx context.Context, qm *QueryMetrics) context.Context {
	if qm == nil {
		return ctx
	}
	return context.WithValue(ctx, queryMetricsKey{}, qm)
}

// QueryMetricsFromContext returns the context's carrier, or nil (also
// on a nil context). Callers guard with one nil check; a request served
// outside the HTTP front-end (library use, benchmarks) carries none and
// pays nothing.
func QueryMetricsFromContext(ctx context.Context) *QueryMetrics {
	if ctx == nil {
		return nil
	}
	qm, _ := ctx.Value(queryMetricsKey{}).(*QueryMetrics)
	return qm
}
