package obs

import (
	"context"
	"testing"
)

// The carrier accessors are nil-safe by contract: library callers and
// benchmarks run without a carrier and must pay exactly one nil check.
func TestQueryMetricsFromContextNilPaths(t *testing.T) {
	if qm := QueryMetricsFromContext(nil); qm != nil {
		t.Errorf("nil context returned %v, want nil", qm)
	}
	if qm := QueryMetricsFromContext(context.Background()); qm != nil {
		t.Errorf("carrier-free context returned %v, want nil", qm)
	}
}

// WithQueryMetrics with a nil carrier is a no-op returning the same
// context — installing "no metrics" must not allocate a value entry
// that QueryMetricsFromContext would then type-assert against.
func TestWithQueryMetricsNilCarrier(t *testing.T) {
	ctx := context.Background()
	if got := WithQueryMetrics(ctx, nil); got != ctx {
		t.Error("WithQueryMetrics(ctx, nil) did not return ctx unchanged")
	}
}

func TestQueryMetricsRoundTrip(t *testing.T) {
	qm := &QueryMetrics{EvalMode: ModeSequential}
	ctx := WithQueryMetrics(context.Background(), qm)
	if got := QueryMetricsFromContext(ctx); got != qm {
		t.Errorf("round trip returned %p, want %p", got, qm)
	}
}
