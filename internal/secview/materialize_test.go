package secview

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/access"
	"repro/internal/dtd"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// hospitalInstance builds the two-department instance used across the
// secview tests: ward 6 with a clinical-trial patient, ward 7 without.
func hospitalInstance() *xmltree.Document {
	e, tx := xmltree.E, xmltree.T
	return xmltree.NewDocument(e("hospital",
		e("dept", // ward 6
			e("clinicalTrial",
				e("patientInfo",
					e("patient", tx("name", "Carol"), tx("wardNo", "6"),
						e("treatment", e("trial", tx("bill", "900")))))),
			e("patientInfo",
				e("patient", tx("name", "Alice"), tx("wardNo", "6"),
					e("treatment", e("regular", tx("bill", "100"), tx("medication", "aspirin"))))),
			e("staffInfo", e("staff", e("nurse", tx("name", "Nina")))),
		),
		e("dept", // ward 7
			e("clinicalTrial", e("patientInfo")),
			e("patientInfo",
				e("patient", tx("name", "Bob"), tx("wardNo", "7"),
					e("treatment", e("regular", tx("bill", "70"), tx("medication", "ibuprofen"))))),
			e("staffInfo", e("staff", e("doctor", tx("name", "Dan")))),
		),
	))
}

func viewStrings(m *Materialized, query string) []string {
	var out []string
	for _, n := range xpath.EvalDoc(xpath.MustParse(query), m.View) {
		out = append(out, n.Text())
	}
	return out
}

// TestMaterializeNurse plays out the paper's Example 3.3.
func TestMaterializeNurse(t *testing.T) {
	v := nurseView(t, "6")
	doc := hospitalInstance()
	m, err := Materialize(v, doc)
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	if err := xmltree.Validate(m.View, v.DTD); err != nil {
		t.Fatalf("view does not conform to view DTD: %v", err)
	}

	// Only the ward-6 dept survives the qualifier.
	depts := xpath.EvalDoc(xpath.MustParse("dept"), m.View)
	if len(depts) != 1 {
		t.Fatalf("view has %d depts, want 1", len(depts))
	}
	// Both Carol (via clinicalTrial) and Alice appear as patientInfo
	// children of dept, in document order.
	if got := viewStrings(m, "dept/patientInfo/patient/name"); !reflect.DeepEqual(got, []string{"Carol", "Alice"}) {
		t.Errorf("patient names in view = %v", got)
	}
	// clinicalTrial never appears.
	if got := xpath.EvalDoc(xpath.MustParse("//clinicalTrial"), m.View); len(got) != 0 {
		t.Errorf("clinicalTrial leaked into the view")
	}
	// Carol's treatment holds dummy1 (trial hidden) with her bill;
	// Alice's holds dummy2 with bill and medication.
	if got := viewStrings(m, "//patient[name = \"Carol\"]/treatment/dummy1/bill"); !reflect.DeepEqual(got, []string{"900"}) {
		t.Errorf("Carol's bill = %v", got)
	}
	if got := viewStrings(m, "//patient[name = \"Alice\"]/treatment/dummy2/medication"); !reflect.DeepEqual(got, []string{"aspirin"}) {
		t.Errorf("Alice's medication = %v", got)
	}
	// Bob (ward 7) is absent.
	if got := viewStrings(m, "//name"); len(got) != 3 { // Carol, Alice, Nina
		t.Errorf("view names = %v", got)
	}
	// Dummy bookkeeping: dummies map to the hidden document nodes.
	dummies := xpath.EvalDoc(xpath.MustParse("//dummy1 | //dummy2"), m.View)
	if len(dummies) != 2 {
		t.Fatalf("found %d dummy nodes, want 2", len(dummies))
	}
	for _, dn := range dummies {
		if !m.IsDummy[dn] {
			t.Errorf("dummy node not marked")
		}
		hidden := m.DocOf[dn]
		if hidden == nil || (hidden.Label != "trial" && hidden.Label != "regular") {
			t.Errorf("dummy maps to %v", hidden)
		}
	}
}

func TestMaterializeWard7(t *testing.T) {
	v := nurseView(t, "7")
	m, err := Materialize(v, hospitalInstance())
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	if got := viewStrings(m, "//patient/name"); !reflect.DeepEqual(got, []string{"Bob"}) {
		t.Errorf("ward-7 view patients = %v", got)
	}
}

func TestCheckSoundCompleteNurse(t *testing.T) {
	v := nurseView(t, "6")
	if _, err := CheckSoundComplete(v, hospitalInstance()); err != nil {
		t.Errorf("CheckSoundComplete: %v", err)
	}
}

func TestCheckSoundCompleteIdentity(t *testing.T) {
	d := dtd.MustParse(hospitalDTD)
	v, err := Derive(access.NewSpec(d))
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	doc := hospitalInstance()
	m, err := CheckSoundComplete(v, doc)
	if err != nil {
		t.Fatalf("CheckSoundComplete: %v", err)
	}
	if m.View.Size() != doc.Size() {
		t.Errorf("identity view has %d nodes, document %d", m.View.Size(), doc.Size())
	}
}

func TestMaterializeAbortMissingRequired(t *testing.T) {
	// A conditional annotation on a required concatenation child aborts
	// when the condition fails (Section 3.3 case 3).
	d := dtd.MustParse(`
root r
r -> a, b
a -> flag
flag -> #PCDATA
b -> #PCDATA
`)
	s := access.MustParseAnnotations(d, `ann(r, a) = [flag = "on"]`)
	v, err := Derive(s)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	bad := xmltree.NewDocument(xmltree.E("r",
		xmltree.E("a", xmltree.T("flag", "off")), xmltree.T("b", "data")))
	_, err = Materialize(v, bad)
	var abort *AbortError
	if !errors.As(err, &abort) {
		t.Fatalf("Materialize = %v, want AbortError", err)
	}
	good := xmltree.NewDocument(xmltree.E("r",
		xmltree.E("a", xmltree.T("flag", "on")), xmltree.T("b", "data")))
	if _, err := Materialize(v, good); err != nil {
		t.Errorf("Materialize(good): %v", err)
	}
}

func TestMaterializeRecursiveDummyChain(t *testing.T) {
	d := dtd.MustParse(`
root a
a -> b, c
b -> #PCDATA
c -> a*
`)
	s := access.MustParseAnnotations(d, "ann(a, c) = N\n")
	v, err := Derive(s)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	e, tx := xmltree.E, xmltree.T
	// a(b=1, c(a(b=2, c(a(b=3))))).
	doc := xmltree.NewDocument(e("a", tx("b", "1"),
		e("c", e("a", tx("b", "2"), e("c", e("a", tx("b", "3")))))))
	m, err := CheckSoundComplete(v, doc)
	if err != nil {
		t.Fatalf("CheckSoundComplete: %v", err)
	}
	// View: a -> b, dummy1*; the dummy chain relabels the c spine but
	// exposes no b values beyond the root's.
	if got := viewStrings(m, "b"); !reflect.DeepEqual(got, []string{"1"}) {
		t.Errorf("root b = %v", got)
	}
	if got := viewStrings(m, "//b"); !reflect.DeepEqual(got, []string{"1"}) {
		t.Errorf("all b in view = %v (hidden b leaked)", got)
	}
	// The outermost c is short-cut (its reg inlines into the root
	// production); dummies stand for the *retained* recursive c
	// occurrences, i.e. σ(a, dummy1) = c/a/c reaches c nodes at depth 2.
	dummies := xpath.EvalDoc(xpath.MustParse("//dummy1"), m.View)
	if len(dummies) != 1 {
		t.Errorf("dummy chain has %d nodes, want 1", len(dummies))
	}
	if hidden := m.DocOf[dummies[0]]; hidden == nil || hidden.Label != "c" {
		t.Errorf("dummy1 maps to %v, want a c node", m.DocOf[dummies[0]])
	}
}

func TestMaterializeWrongRoot(t *testing.T) {
	v := nurseView(t, "6")
	doc := xmltree.NewDocument(xmltree.E("notahospital"))
	if _, err := Materialize(v, doc); err == nil {
		t.Errorf("wrong root accepted")
	}
}

func TestCheckDetectsUnsoundView(t *testing.T) {
	// Hand-build a broken view whose σ over-extracts an inaccessible
	// node; CheckSoundComplete must flag it.
	d := dtd.MustParse(`
root r
r -> a, b
a -> #PCDATA
b -> #PCDATA
`)
	s := access.MustParseAnnotations(d, "ann(r, b) = N\n")
	v, err := Derive(s)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	// Sabotage: make the view's r production also expose b.
	v.DTD.SetProduction("r", dtd.SeqContent("a", "b"))
	v.DTD.SetProduction("b", dtd.TextContent())
	v.setSigma("r", "b", xpath.L("b"))
	v.setSigma("b", dtd.TextLabel, xpath.Label{Name: xpath.TextName})
	doc := xmltree.NewDocument(xmltree.E("r", xmltree.T("a", "1"), xmltree.T("b", "2")))
	_, err = CheckSoundComplete(v, doc)
	if err == nil {
		t.Fatalf("broken view passed the checker")
	}
}

func TestCheckDetectsIncompleteView(t *testing.T) {
	d := dtd.MustParse(`
root r
r -> a, b
a -> #PCDATA
b -> #PCDATA
`)
	v, err := Derive(access.NewSpec(d))
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	// Sabotage: drop b from the view even though it is accessible.
	v.DTD.SetProduction("r", dtd.SeqContent("a"))
	doc := xmltree.NewDocument(xmltree.E("r", xmltree.T("a", "1"), xmltree.T("b", "2")))
	if _, err := CheckSoundComplete(v, doc); err == nil {
		t.Fatalf("incomplete view passed the checker")
	}
}
