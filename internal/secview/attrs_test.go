package secview

import (
	"testing"

	"repro/internal/access"
	"repro/internal/dtd"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// attrFixture: patients carry id (required), ssn and insurer attributes;
// the policy denies ssn and hides the regular treatment element entirely.
func attrFixture(t *testing.T) (*View, *xmltree.Document) {
	t.Helper()
	d := dtd.MustParse(`
root clinic
clinic -> patient*
patient -> name, record
name -> #PCDATA
record -> #PCDATA
attlist patient id!, ssn, insurer
attlist record code
`)
	s := access.MustParseAnnotations(d, `
ann(patient, @ssn) = N
`)
	v, err := Derive(s)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	a := xmltree.A
	doc := xmltree.NewDocument(xmltree.E("clinic",
		a(xmltree.E("patient", xmltree.T("name", "Alice"), a(xmltree.T("record", "flu"), "code", "J11")),
			"id", "p1", "ssn", "123-45-6789", "insurer", "Acme"),
		a(xmltree.E("patient", xmltree.T("name", "Bob"), xmltree.T("record", "ok")),
			"id", "p2"),
	))
	if err := xmltree.Validate(doc, d); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	return v, doc
}

func TestDeriveProjectsAttlists(t *testing.T) {
	v, _ := attrFixture(t)
	defs := v.DTD.Attlist("patient")
	names := map[string]bool{}
	for _, def := range defs {
		names[def.Name] = true
	}
	if names["ssn"] {
		t.Errorf("denied attribute in view attlist: %v", defs)
	}
	if !names["id"] || !names["insurer"] {
		t.Errorf("visible attributes missing: %v", defs)
	}
	if def, ok := v.DTD.Attr("patient", "id"); !ok || !def.Required {
		t.Errorf("required flag lost: %v, %v", def, ok)
	}
	if _, ok := v.DTD.Attr("record", "code"); !ok {
		t.Errorf("unannotated attlist not carried over")
	}
}

func TestMaterializeCopiesVisibleAttrs(t *testing.T) {
	v, doc := attrFixture(t)
	m, err := CheckSoundComplete(v, doc)
	if err != nil {
		t.Fatalf("CheckSoundComplete: %v", err)
	}
	patients := xpath.EvalDoc(xpath.MustParse("patient"), m.View)
	if len(patients) != 2 {
		t.Fatalf("view has %d patients", len(patients))
	}
	if id, _ := patients[0].Attr("id"); id != "p1" {
		t.Errorf("id attribute = %q", id)
	}
	if _, ok := patients[0].Attr("ssn"); ok {
		t.Errorf("ssn leaked into the view")
	}
	if ins, _ := patients[0].Attr("insurer"); ins != "Acme" {
		t.Errorf("insurer = %q", ins)
	}
	records := xpath.EvalDoc(xpath.MustParse("patient/record"), m.View)
	if code, _ := records[0].Attr("code"); code != "J11" {
		t.Errorf("record code = %q", code)
	}
	// The materialized view conforms to the view DTD including attlists.
	if err := xmltree.Validate(m.View, v.DTD); err != nil {
		t.Errorf("view invalid: %v", err)
	}
}

func TestCheckCatchesAttrLeak(t *testing.T) {
	v, doc := attrFixture(t)
	// Sabotage: re-expose ssn in the view attlist; the checker must flag
	// the leak.
	v.DTD.SetAttlist("patient", append(v.DTD.Attlist("patient"), dtd.AttrDef{Name: "ssn"}))
	if _, err := CheckSoundComplete(v, doc); err == nil {
		t.Errorf("attribute leak passed the checker")
	}
}

func TestAttrAnnotationValidation(t *testing.T) {
	d := dtd.MustParse(`
root r
r -> #PCDATA
attlist r id
`)
	s := access.NewSpec(d)
	if err := s.Annotate("r", "@nosuch", access.Ann{Kind: access.Deny}); err == nil {
		t.Errorf("undeclared attribute annotation accepted")
	}
	if err := s.Annotate("r", "@id", access.Ann{Kind: access.Cond, Cond: xpath.QTrue{}}); err == nil {
		t.Errorf("conditional attribute annotation accepted")
	}
	if err := s.Annotate("r", "@id", access.Ann{Kind: access.Deny}); err != nil {
		t.Errorf("valid attribute annotation rejected: %v", err)
	}
}
