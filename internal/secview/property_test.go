package secview

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/access"
	"repro/internal/dtd"
	"repro/internal/dtds"
	"repro/internal/xmlgen"
)

// TestDeriveSoundCompleteProperty is the headline property of the
// reproduction (Theorem 3.2): for random unconditional policies over the
// hospital DTD, the derived view is sound and complete on random
// conforming documents. Unconditional (Y/N) policies never abort, so
// every failure here is a derivation or materialization bug.
func TestDeriveSoundCompleteProperty(t *testing.T) {
	d := dtds.Hospital()
	// All annotatable edges of the DTD.
	type edge struct{ parent, child string }
	var edges []edge
	for _, a := range d.Types() {
		c := d.MustProduction(a)
		if c.Kind == dtd.Text {
			edges = append(edges, edge{a, dtd.TextLabel})
			continue
		}
		for _, b := range d.Children(a) {
			edges = append(edges, edge{a, b})
		}
	}

	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		spec := access.NewSpec(d)
		for _, e := range edges {
			switch r.Intn(4) {
			case 0:
				if err := spec.Annotate(e.parent, e.child, access.Ann{Kind: access.Allow}); err != nil {
					t.Fatalf("Annotate: %v", err)
				}
			case 1:
				if err := spec.Annotate(e.parent, e.child, access.Ann{Kind: access.Deny}); err != nil {
					t.Fatalf("Annotate: %v", err)
				}
			}
		}
		view, err := Derive(spec)
		if err != nil {
			// The only acceptable failure is the documented unsupported
			// case: a text annotation under an inaccessible element.
			if strings.Contains(err.Error(), "not supported") {
				return true
			}
			t.Logf("seed %d: Derive: %v", seed, err)
			return false
		}
		doc := xmlgen.Generate(d, xmlgen.Config{Seed: seed, MinRepeat: 1, MaxRepeat: 3})
		if _, err := CheckSoundComplete(view, doc); err != nil {
			// An abort is the legitimate Theorem 3.2 outcome "no sound and
			// complete view exists" — e.g. a disjunction whose only taken
			// branch was fully pruned. Anything else is a real bug.
			var abort *AbortError
			if errors.As(err, &abort) {
				return true
			}
			t.Logf("seed %d: %v\nspec:\n%s\nview:\n%s", seed, err, spec, view)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestDeriveSoundCompleteRecursiveProperty runs the same property over
// the recursive Fig. 7 DTD.
func TestDeriveSoundCompleteRecursiveProperty(t *testing.T) {
	d := dtds.Fig7()
	combos := []string{
		"",
		"ann(a, c) = N\n",
		"ann(a, c) = N\nann(c, a) = Y\n",
		"ann(a, b) = N\n",
		"ann(a, b) = N\nann(a, c) = N\nann(c, a) = Y\n",
		"ann(c, a) = N\n",
	}
	for i, src := range combos {
		spec := access.MustParseAnnotations(d, src)
		view, err := Derive(spec)
		if err != nil {
			t.Errorf("combo %d: Derive: %v", i, err)
			continue
		}
		for seed := int64(0); seed < 5; seed++ {
			doc := xmlgen.Generate(d, xmlgen.Config{Seed: seed, MaxRepeat: 2, MaxDepth: 5})
			if _, err := CheckSoundComplete(view, doc); err != nil {
				t.Errorf("combo %d seed %d: %v\nview:\n%s", i, seed, err, view)
			}
		}
	}
}

// TestDeriveSoundCompleteAdexVariants checks policy variants over the
// larger Adex DTD.
func TestDeriveSoundCompleteAdexVariants(t *testing.T) {
	d := dtds.Adex()
	variants := []string{
		dtds.AdexSpecSource,
		"ann(adex, body) = N\n",
		"ann(adex, head) = N\nann(buyer-list, buyer-info) = Y\nann(buyer-info, billing-info) = N\n",
		"ann(ad-content, employment) = N\nann(ad-content, merchandise) = N\n",
		"ann(real-estate, house) = N\nann(house, r-e.warranty) = Y\n",
		"ann(buyer-info, contact-info) = N\nann(contact-address, zip) = Y\n",
	}
	for i, src := range variants {
		spec := access.MustParseAnnotations(d, src)
		view, err := Derive(spec)
		if err != nil {
			t.Errorf("variant %d: Derive: %v", i, err)
			continue
		}
		doc := dtds.GenerateAdex(int64(i)+100, 3)
		if _, err := CheckSoundComplete(view, doc); err != nil {
			t.Errorf("variant %d: %v", i, err)
		}
	}
}

// TestDeriveDeterministic: two derivations of the same spec are
// identical, including dummy numbering.
func TestDeriveDeterministic(t *testing.T) {
	for i := 0; i < 5; i++ {
		spec, err := dtds.NurseSpec().Bind(map[string]string{"wardNo": fmt.Sprint(i)})
		if err != nil {
			t.Fatalf("Bind: %v", err)
		}
		v1, err := Derive(spec)
		if err != nil {
			t.Fatalf("Derive: %v", err)
		}
		v2, err := Derive(spec)
		if err != nil {
			t.Fatalf("Derive: %v", err)
		}
		if v1.String() != v2.String() {
			t.Fatalf("derivation not deterministic:\n%s\nvs\n%s", v1, v2)
		}
	}
}
