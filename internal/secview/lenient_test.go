package secview

import (
	"errors"
	"testing"

	"repro/internal/access"
	"repro/internal/dtd"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// lenientFixture builds a view whose strict materialization aborts: a
// required concatenation child is conditionally accessible and the
// condition fails.
func lenientFixture(t *testing.T) (*View, *xmltree.Document) {
	t.Helper()
	d := dtd.MustParse(`
root r
r -> a, b
a -> flag
flag -> #PCDATA
b -> #PCDATA
`)
	s := access.MustParseAnnotations(d, `ann(r, a) = [flag = "on"]`)
	v, err := Derive(s)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	doc := xmltree.NewDocument(xmltree.E("r",
		xmltree.E("a", xmltree.T("flag", "off")), xmltree.T("b", "data")))
	return v, doc
}

func TestMaterializeLenientSkipsMissing(t *testing.T) {
	v, doc := lenientFixture(t)
	if _, err := Materialize(v, doc); err == nil {
		t.Fatalf("strict materialization did not abort")
	}
	m, err := MaterializeLenient(v, doc)
	if err != nil {
		t.Fatalf("MaterializeLenient: %v", err)
	}
	// The a entry is skipped; b survives.
	if got := len(xpath.EvalDoc(xpath.MustParse("a"), m.View)); got != 0 {
		t.Errorf("lenient view kept %d a nodes", got)
	}
	bs := xpath.EvalDoc(xpath.MustParse("b"), m.View)
	if len(bs) != 1 || bs[0].Text() != "data" {
		t.Errorf("lenient view b = %v", bs)
	}
}

func TestMaterializeLenientChoiceNoMatch(t *testing.T) {
	// A disjunction whose only accessible branch is conditionally hidden:
	// strict aborts, lenient yields a childless node.
	d := dtd.MustParse(`
root r
r -> t
t -> x + y
x -> #PCDATA
y -> #PCDATA
`)
	s := access.MustParseAnnotations(d, `
ann(t, x) = [. = "never"]
ann(t, y) = [. = "never"]
`)
	v, err := Derive(s)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	doc := xmltree.NewDocument(xmltree.E("r", xmltree.T("t", "")))
	_ = doc
	doc2 := xmltree.NewDocument(xmltree.E("r", xmltree.E("t", xmltree.T("x", "value"))))
	var abort *AbortError
	if _, err := Materialize(v, doc2); !errors.As(err, &abort) {
		t.Fatalf("strict did not abort: %v", err)
	}
	m, err := MaterializeLenient(v, doc2)
	if err != nil {
		t.Fatalf("MaterializeLenient: %v", err)
	}
	ts := xpath.EvalDoc(xpath.MustParse("t"), m.View)
	if len(ts) != 1 || len(ts[0].Children) != 0 {
		t.Errorf("lenient choice result = %v", ts)
	}
}

func TestMaterializeLenientMatchesStrictWhenNoAbort(t *testing.T) {
	v := nurseView(t, "6")
	doc := hospitalInstance()
	strict, err := Materialize(v, doc)
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	lenient, err := MaterializeLenient(v, doc)
	if err != nil {
		t.Fatalf("MaterializeLenient: %v", err)
	}
	if strict.View.XML() != lenient.View.XML() {
		t.Errorf("lenient differs from strict on a non-aborting document")
	}
}
