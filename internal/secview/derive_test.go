package secview

import (
	"strings"
	"testing"

	"repro/internal/access"
	"repro/internal/dtd"
	"repro/internal/xpath"
)

const hospitalDTD = `
root hospital
hospital -> dept*
dept -> clinicalTrial, patientInfo, staffInfo
clinicalTrial -> patientInfo
patientInfo -> patient*
patient -> name, wardNo, treatment
treatment -> trial + regular
trial -> bill
regular -> bill, medication
staffInfo -> staff*
staff -> doctor + nurse
doctor -> name
nurse -> name
name -> #PCDATA
wardNo -> #PCDATA
bill -> #PCDATA
medication -> #PCDATA
`

const nurseSpec = `
ann(hospital, dept) = [*/patient/wardNo = $wardNo]
ann(dept, clinicalTrial) = N
ann(clinicalTrial, patientInfo) = Y
ann(treatment, trial) = N
ann(treatment, regular) = N
ann(trial, bill) = Y
ann(regular, bill) = Y
ann(regular, medication) = Y
`

// nurseView derives the paper's Example 3.2 view with $wardNo bound.
func nurseView(t *testing.T, ward string) *View {
	t.Helper()
	d := dtd.MustParse(hospitalDTD)
	s := access.MustParseAnnotations(d, nurseSpec)
	bound, err := s.Bind(map[string]string{"wardNo": ward})
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	v, err := Derive(bound)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	return v
}

func prodString(t *testing.T, v *View, typ string) string {
	t.Helper()
	c, ok := v.DTD.Production(typ)
	if !ok {
		t.Fatalf("view has no production for %s; view:\n%s", typ, v)
	}
	return c.String()
}

func sigmaString(t *testing.T, v *View, parent, child string) string {
	t.Helper()
	p, ok := v.Sigma(parent, child)
	if !ok {
		t.Fatalf("view has no σ(%s, %s); view:\n%s", parent, child, v)
	}
	return xpath.String(p)
}

// TestDeriveNurseView pins the derived view of the paper's Example 3.2 /
// Fig. 2.
func TestDeriveNurseView(t *testing.T) {
	v := nurseView(t, "6")

	// hospital -> dept* with σ = dept[qualifier].
	if got := prodString(t, v, "hospital"); got != "dept*" {
		t.Errorf("hospital production = %q", got)
	}
	if got := sigmaString(t, v, "hospital", "dept"); got != `dept[*/patient/wardNo = "6"]` {
		t.Errorf("σ(hospital, dept) = %q", got)
	}

	// dept -> patientInfo*, staffInfo: clinicalTrial short-cut, the two
	// patientInfo entries merged into a starred item (Example 3.4).
	if got := prodString(t, v, "dept"); got != "patientInfo*, staffInfo" {
		t.Errorf("dept production = %q", got)
	}
	if got := sigmaString(t, v, "dept", "patientInfo"); got != "(clinicalTrial | .)/patientInfo" {
		t.Errorf("σ(dept, patientInfo) = %q", got)
	}
	if got := sigmaString(t, v, "dept", "staffInfo"); got != "staffInfo" {
		t.Errorf("σ(dept, staffInfo) = %q", got)
	}

	// clinicalTrial must not be a view type.
	for _, hidden := range []string{"clinicalTrial", "trial", "regular"} {
		if v.DTD.Has(hidden) {
			t.Errorf("hidden type %s appears in the view DTD", hidden)
		}
	}

	// treatment -> dummy1 + dummy2 hiding trial and regular.
	if got := prodString(t, v, "treatment"); got != "dummy1 + dummy2" {
		t.Errorf("treatment production = %q", got)
	}
	if v.DummyOf["dummy1"] != "trial" || v.DummyOf["dummy2"] != "regular" {
		t.Errorf("DummyOf = %v", v.DummyOf)
	}
	if got := sigmaString(t, v, "treatment", "dummy1"); got != "trial" {
		t.Errorf("σ(treatment, dummy1) = %q", got)
	}
	if got := sigmaString(t, v, "treatment", "dummy2"); got != "regular" {
		t.Errorf("σ(treatment, dummy2) = %q", got)
	}
	if got := prodString(t, v, "dummy1"); got != "bill" {
		t.Errorf("dummy1 production = %q", got)
	}
	if got := prodString(t, v, "dummy2"); got != "bill, medication" {
		t.Errorf("dummy2 production = %q", got)
	}
	if got := sigmaString(t, v, "dummy1", "bill"); got != "bill" {
		t.Errorf("σ(dummy1, bill) = %q", got)
	}

	// Untouched productions copy over with identity σ.
	if got := prodString(t, v, "patient"); got != "name, wardNo, treatment" {
		t.Errorf("patient production = %q", got)
	}
	if got := sigmaString(t, v, "patient", "treatment"); got != "treatment" {
		t.Errorf("σ(patient, treatment) = %q", got)
	}
	if got := prodString(t, v, "staff"); got != "doctor + nurse" {
		t.Errorf("staff production = %q", got)
	}
	if got := prodString(t, v, "name"); got != "#PCDATA" {
		t.Errorf("name production = %q", got)
	}
	if v.IsRecursive() {
		t.Errorf("nurse view reported recursive")
	}
	if err := v.DTD.Check(); err != nil {
		t.Errorf("view DTD check: %v", err)
	}
}

func TestDeriveEmptySpecIsIdentity(t *testing.T) {
	d := dtd.MustParse(hospitalDTD)
	v, err := Derive(access.NewSpec(d))
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	if v.DTD.Len() != d.Len() {
		t.Fatalf("view has %d types, document DTD %d", v.DTD.Len(), d.Len())
	}
	for _, typ := range d.Types() {
		want := d.MustProduction(typ).String()
		if got := prodString(t, v, typ); got != want {
			t.Errorf("production %s = %q, want %q", typ, got, want)
		}
	}
	if got := sigmaString(t, v, "dept", "clinicalTrial"); got != "clinicalTrial" {
		t.Errorf("identity σ = %q", got)
	}
}

func TestDerivePruneSubtree(t *testing.T) {
	// Denying a subtree with no accessible descendants removes it
	// entirely (Fig. 5 step 11).
	d := dtd.MustParse(hospitalDTD)
	s := access.MustParseAnnotations(d, "ann(dept, clinicalTrial) = N\n")
	v, err := Derive(s)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	if got := prodString(t, v, "dept"); got != "patientInfo, staffInfo" {
		t.Errorf("dept production = %q", got)
	}
	if v.DTD.Has("clinicalTrial") {
		t.Errorf("pruned type still declared")
	}
	if len(v.DummyOf) != 0 {
		t.Errorf("unexpected dummies %v", v.DummyOf)
	}
}

func TestDeriveShortcutChain(t *testing.T) {
	// Two stacked inaccessible types short-cut transitively.
	d := dtd.MustParse(`
root r
r -> a
a -> b
b -> c
c -> #PCDATA
`)
	s := access.MustParseAnnotations(d, `
ann(r, a) = N
ann(b, c) = Y
`)
	v, err := Derive(s)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	if got := prodString(t, v, "r"); got != "c" {
		t.Errorf("r production = %q", got)
	}
	if got := sigmaString(t, v, "r", "c"); got != "a/b/c" {
		t.Errorf("σ(r, c) = %q", got)
	}
}

func TestDeriveQualifierPreservedInPath(t *testing.T) {
	// Conditional annotations inside an inaccessible region are preserved
	// in path (Fig. 5 Proc_InAcc step 9).
	d := dtd.MustParse(`
root r
r -> a
a -> b
b -> flag
flag -> #PCDATA
`)
	s := access.MustParseAnnotations(d, `
ann(r, a) = N
ann(a, b) = [flag = "on"]
`)
	v, err := Derive(s)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	if got := sigmaString(t, v, "r", "b"); got != `a/b[flag = "on"]` {
		t.Errorf("σ(r, b) = %q", got)
	}
}

func TestDeriveStarThroughInaccessible(t *testing.T) {
	// A -> B* with B inaccessible and reg(B) = C collapses to A -> C*.
	d := dtd.MustParse(`
root r
r -> w*
w -> item
item -> #PCDATA
`)
	s := access.MustParseAnnotations(d, `
ann(r, w) = N
ann(w, item) = Y
`)
	v, err := Derive(s)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	if got := prodString(t, v, "r"); got != "item*" {
		t.Errorf("r production = %q", got)
	}
	if got := sigmaString(t, v, "r", "item"); got != "w/item" {
		t.Errorf("σ(r, item) = %q", got)
	}
}

func TestDeriveChoiceInlinesChoice(t *testing.T) {
	// Choice reg inlines into a choice parent (Fig. 5 case 2).
	d := dtd.MustParse(`
root r
r -> x + y
x -> c + e
y -> #PCDATA
c -> #PCDATA
e -> #PCDATA
`)
	s := access.MustParseAnnotations(d, `
ann(r, x) = N
ann(x, c) = Y
ann(x, e) = Y
`)
	v, err := Derive(s)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	if got := prodString(t, v, "r"); got != "c + e + y" {
		t.Errorf("r production = %q", got)
	}
	if got := sigmaString(t, v, "r", "c"); got != "x/c" {
		t.Errorf("σ(r, c) = %q", got)
	}
}

func TestDeriveChoiceDummiesSequences(t *testing.T) {
	// The paper's Example 3.4 rule: a concatenation reg (even a singleton)
	// under a choice parent is renamed, never inlined.
	d := dtd.MustParse(`
root r
r -> x + y
x -> c
y -> #PCDATA
c -> #PCDATA
`)
	s := access.MustParseAnnotations(d, `
ann(r, x) = N
ann(x, c) = Y
`)
	v, err := Derive(s)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	if got := prodString(t, v, "r"); got != "dummy1 + y" {
		t.Errorf("r production = %q", got)
	}
	if got := prodString(t, v, "dummy1"); got != "c" {
		t.Errorf("dummy1 production = %q", got)
	}
	if got := sigmaString(t, v, "r", "dummy1"); got != "x" {
		t.Errorf("σ(r, dummy1) = %q", got)
	}
	if got := sigmaString(t, v, "dummy1", "c"); got != "c" {
		t.Errorf("σ(dummy1, c) = %q", got)
	}
}

func TestDeriveHiddenText(t *testing.T) {
	d := dtd.MustParse(hospitalDTD)
	s := access.MustParseAnnotations(d, "ann(wardNo, str) = N\n")
	v, err := Derive(s)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	if got := prodString(t, v, "wardNo"); got != "EMPTY" {
		t.Errorf("wardNo production = %q", got)
	}
	if _, ok := v.Sigma("wardNo", dtd.TextLabel); ok {
		t.Errorf("σ(wardNo, str) defined for hidden text")
	}
}

func TestDeriveRecursiveAccessible(t *testing.T) {
	// Recursion among accessible types survives untouched; an
	// inaccessible node inside the cycle is short-cut on every unfolding
	// because the accessible child is explicitly allowed.
	d := dtd.MustParse(`
root a
a -> b, c
b -> #PCDATA
c -> a*
`)
	s := access.MustParseAnnotations(d, `
ann(a, c) = N
ann(c, a) = Y
`)
	v, err := Derive(s)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	if got := prodString(t, v, "a"); got != "b, a*" {
		t.Errorf("a production = %q", got)
	}
	if got := sigmaString(t, v, "a", "a"); got != "c/a" {
		t.Errorf("σ(a, a) = %q", got)
	}
	if !v.IsRecursive() {
		t.Errorf("view not recursive")
	}
}

func TestDeriveRecursiveInaccessibleDummy(t *testing.T) {
	// A fully inaccessible recursive region is renamed to a dummy and
	// retained (Section 3.4's treatment of recursive inaccessible nodes).
	d := dtd.MustParse(`
root a
a -> b, c
b -> #PCDATA
c -> a*
`)
	s := access.MustParseAnnotations(d, "ann(a, c) = N\n")
	v, err := Derive(s)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	// a -> b, X* where X is the dummy for c; X -> X*.
	aProd := prodString(t, v, "a")
	if aProd != "b, dummy1*" {
		t.Errorf("a production = %q; view:\n%s", aProd, v)
	}
	if v.DummyOf["dummy1"] != "c" {
		t.Errorf("DummyOf = %v", v.DummyOf)
	}
	if got := prodString(t, v, "dummy1"); got != "dummy1*" {
		t.Errorf("dummy1 production = %q", got)
	}
	if got := sigmaString(t, v, "a", "dummy1"); got != "c/a/c" {
		t.Errorf("σ(a, dummy1) = %q", got)
	}
	if got := sigmaString(t, v, "dummy1", "dummy1"); got != "a/c" {
		t.Errorf("σ(dummy1, dummy1) = %q", got)
	}
	if !v.IsRecursive() {
		t.Errorf("view not recursive")
	}
}

func TestDeriveConditionalTextUnsupported(t *testing.T) {
	d := dtd.MustParse("root a\na -> b\nb -> #PCDATA\n")
	s := access.NewSpec(d)
	if err := s.Annotate("b", dtd.TextLabel, access.Ann{Kind: access.Cond, Cond: xpath.QTrue{}}); err != nil {
		t.Fatalf("Annotate: %v", err)
	}
	if _, err := Derive(s); err == nil {
		t.Errorf("conditional text annotation accepted")
	}
}

func TestViewString(t *testing.T) {
	v := nurseView(t, "6")
	s := v.String()
	for _, want := range []string{
		"view root hospital",
		"production: treatment -> dummy1 + dummy2",
		"σ(dept, patientInfo) = (clinicalTrial | .)/patientInfo",
		"dummy1 hides trial",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("View.String() missing %q:\n%s", want, s)
		}
	}
}
