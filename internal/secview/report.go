package secview

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/xpath"
)

// TypeDisposition says what the derivation did with one document element
// type.
type TypeDisposition string

const (
	// Exposed: the type appears in the view under its own name.
	Exposed TypeDisposition = "exposed"
	// Renamed: the type is inaccessible but structurally retained behind a
	// dummy label.
	Renamed TypeDisposition = "renamed"
	// ShortCut: the type is inaccessible; its accessible descendants were
	// pulled up into its parents' productions.
	ShortCut TypeDisposition = "short-cut"
	// Pruned: the type is inaccessible with no accessible descendants; it
	// vanished entirely.
	Pruned TypeDisposition = "pruned"
	// Unreachable: the type is not reachable from the document root and
	// never considered.
	Unreachable TypeDisposition = "unreachable"
)

// Report explains a derived view: the fate of every document element
// type. It is the human-readable counterpart of the view definition,
// intended for administrators reviewing a policy (the paper's Fig. 3
// administrator loop).
func (v *View) Report() string {
	dummyByHidden := make(map[string]string, len(v.DummyOf))
	for x, hidden := range v.DummyOf {
		dummyByHidden[hidden] = x
	}
	reach := v.Doc.Reachable(v.Doc.Root())

	// A hidden type was short-cut (rather than pruned) when some σ of the
	// view mentions it on an access path.
	mentioned := make(map[string]bool)
	for _, p := range v.sigma {
		for _, l := range xpath.Labels(p) {
			mentioned[l] = true
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "security view over document DTD rooted at %s\n", v.Doc.Root())
	types := v.Doc.Types()
	sort.Strings(types)
	for _, t := range types {
		disp := v.dispositionOf(t, reach, dummyByHidden, mentioned)
		switch disp {
		case Renamed:
			fmt.Fprintf(&b, "  %-20s %s as %s\n", t, disp, dummyByHidden[t])
		default:
			fmt.Fprintf(&b, "  %-20s %s\n", t, disp)
		}
	}
	visible := 0
	for _, t := range v.DTD.Types() {
		if !v.IsDummy(t) {
			visible++
		}
	}
	fmt.Fprintf(&b, "view DTD: %d element types (%d visible, %d dummies) of %d document types\n",
		v.DTD.Len(), visible, len(v.DummyOf), v.Doc.Len())
	return b.String()
}

// Disposition returns what the derivation did with one document type.
// Accessibility is context-sensitive, so a type exposed in the view may
// additionally have been short-cut in hidden contexts; the dominant
// (most visible) disposition is reported.
func (v *View) Disposition(t string) TypeDisposition {
	dummyByHidden := make(map[string]string, len(v.DummyOf))
	for x, hidden := range v.DummyOf {
		dummyByHidden[hidden] = x
	}
	mentioned := make(map[string]bool)
	for _, p := range v.sigma {
		for _, l := range xpath.Labels(p) {
			mentioned[l] = true
		}
	}
	return v.dispositionOf(t, v.Doc.Reachable(v.Doc.Root()), dummyByHidden, mentioned)
}

func (v *View) dispositionOf(t string, reach map[string]bool, dummyByHidden map[string]string, mentioned map[string]bool) TypeDisposition {
	switch {
	case !reach[t]:
		return Unreachable
	case v.DTD.Has(t) && !v.IsDummy(t):
		return Exposed
	default:
		if _, ok := dummyByHidden[t]; ok {
			return Renamed
		}
		if mentioned[t] {
			return ShortCut
		}
		return Pruned
	}
}
