package secview

import (
	"strings"
	"testing"
)

func TestReportDispositions(t *testing.T) {
	v := nurseView(t, "6")
	cases := map[string]TypeDisposition{
		"hospital":      Exposed,
		"dept":          Exposed,
		"patientInfo":   Exposed,
		"staffInfo":     Exposed,
		"bill":          Exposed,
		"clinicalTrial": ShortCut,
		"trial":         Renamed,
		"regular":       Renamed,
	}
	for typ, want := range cases {
		if got := v.Disposition(typ); got != want {
			t.Errorf("Disposition(%s) = %s, want %s", typ, got, want)
		}
	}
	report := v.Report()
	for _, want := range []string{
		"trial                renamed as dummy1",
		"regular              renamed as dummy2",
		"clinicalTrial        short-cut",
		"hospital             exposed",
		"view DTD:",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("Report missing %q:\n%s", want, report)
		}
	}
}

func TestReportPrunedAndUnreachable(t *testing.T) {
	v := deriveFixture(t, `
root r
r -> a, b
a -> secret
secret -> #PCDATA
b -> #PCDATA
orphan -> #PCDATA
`, "ann(r, a) = N\n")
	if got := v.Disposition("a"); got != Pruned {
		t.Errorf("Disposition(a) = %s, want pruned", got)
	}
	if got := v.Disposition("secret"); got != Pruned {
		t.Errorf("Disposition(secret) = %s, want pruned", got)
	}
	if got := v.Disposition("orphan"); got != Unreachable {
		t.Errorf("Disposition(orphan) = %s, want unreachable", got)
	}
	if got := v.Disposition("b"); got != Exposed {
		t.Errorf("Disposition(b) = %s, want exposed", got)
	}
}

func TestReportShortCutChain(t *testing.T) {
	v := deriveFixture(t, `
root r
r -> a
a -> b
b -> c
c -> #PCDATA
`, "ann(r, a) = N\nann(b, c) = Y\n")
	// a and b are on the σ access path r -> c (a/b/c): both short-cut.
	if got := v.Disposition("a"); got != ShortCut {
		t.Errorf("Disposition(a) = %s", got)
	}
	if got := v.Disposition("b"); got != ShortCut {
		t.Errorf("Disposition(b) = %s", got)
	}
	if got := v.Disposition("c"); got != Exposed {
		t.Errorf("Disposition(c) = %s", got)
	}
}
