package secview

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/dtd"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Materialized is the result of materializing a security view over a
// document: the view tree T_v plus the correspondence between view nodes
// and the document nodes they expose.
//
// In the paper's framework views are never materialized on the query
// path; materialization defines the view's semantics (Section 3.3) and is
// used by the soundness/completeness checkers and by the equivalence
// tests for query rewriting.
type Materialized struct {
	// View is the materialized view document T_v.
	View *xmltree.Document
	// DocOf maps every view node to the document node it was extracted
	// from. Dummy view nodes map to the inaccessible node they relabel.
	DocOf map[*xmltree.Node]*xmltree.Node
	// IsDummy marks view nodes carrying dummy labels.
	IsDummy map[*xmltree.Node]bool
}

// AbortError reports that the paper's materialization semantics aborted:
// a concatenation, disjunction, or text production was not matched by
// exactly the required accessible nodes (Section 3.3). Per Theorem 3.2 a
// sound and complete view exists iff materialization never aborts over
// instances of D.
type AbortError struct {
	ViewType string // view element type being expanded
	Child    string // child entry whose extraction failed
	Reason   string
}

func (e *AbortError) Error() string {
	return fmt.Sprintf("secview: materialization aborted at %s (child %s): %s", e.ViewType, e.Child, e.Reason)
}

// Materialize computes T_v for the document per the paper's top-down
// semantics: starting from the root, each view production's σ queries
// extract the children of the current node, keeping only nodes accessible
// w.r.t. the specification; concatenation and disjunction productions
// abort unless matched exactly. Dummy children relabel the extracted
// (inaccessible) node and are exempt from the accessibility filter — they
// expose structure, never the hidden label or content.
func Materialize(v *View, doc *xmltree.Document) (*Materialized, error) {
	return materialize(v, doc, false)
}

// MaterializeLenient materializes with the abort conditions relaxed: an
// unmatched concatenation entry is skipped, an over-matched one keeps the
// first node, and an unmatched disjunction yields no child. The result
// may not conform to the view DTD; it is intended for administrator
// tooling that wants to inspect a view of a document for which no sound
// and complete view exists (Theorem 3.2), never for the checkers.
func MaterializeLenient(v *View, doc *xmltree.Document) (*Materialized, error) {
	return materialize(v, doc, true)
}

func materialize(v *View, doc *xmltree.Document, lenient bool) (*Materialized, error) {
	if doc.Root.Label != v.Doc.Root() {
		return nil, fmt.Errorf("secview: document root %q does not match DTD root %q", doc.Root.Label, v.Doc.Root())
	}
	acc := access.Accessibility(v.Spec, doc)
	m := &Materialized{
		DocOf:   make(map[*xmltree.Node]*xmltree.Node),
		IsDummy: make(map[*xmltree.Node]bool),
	}
	root := xmltree.NewElement(v.DTD.Root())
	m.DocOf[root] = doc.Root
	e := &expander{v: v, acc: acc, m: m, lenient: lenient}
	e.copyAttrs(root, doc.Root)
	if err := e.expand(root, doc.Root); err != nil {
		return nil, err
	}
	m.View = xmltree.NewDocument(root)
	return m, nil
}

// expander carries the materialization state down the view tree.
type expander struct {
	v       *View
	acc     map[*xmltree.Node]bool
	m       *Materialized
	lenient bool
}

// expand generates the children of view node vn (labeled with a view type
// whose document context is dn) and recurses.
func (e *expander) expand(vn, dn *xmltree.Node) error {
	a := vn.Label
	prod, ok := e.v.DTD.Production(a)
	if !ok {
		return fmt.Errorf("secview: view type %q has no production", a)
	}
	switch prod.Kind {
	case dtd.Empty:
		return nil
	case dtd.Text:
		p := e.v.MustSigma(a, dtd.TextLabel)
		res := accessible(xpath.Eval(p, dn), e.acc)
		if len(res) != 1 || res[0].Kind != xmltree.TextNode {
			if e.lenient {
				return nil
			}
			return &AbortError{ViewType: a, Child: "str", Reason: fmt.Sprintf("σ returned %d accessible text nodes, need exactly 1", len(res))}
		}
		txt := xmltree.NewText(res[0].Data)
		vn.AppendChild(txt)
		e.m.DocOf[txt] = res[0]
		return nil
	case dtd.Star:
		it := prod.Items[0]
		return e.expandStarred(vn, dn, it.Name)
	case dtd.Seq:
		for _, it := range prod.Items {
			if it.Starred {
				if err := e.expandStarred(vn, dn, it.Name); err != nil {
					return err
				}
				continue
			}
			res := e.extract(a, it.Name, dn)
			if len(res) != 1 {
				if e.lenient {
					if len(res) == 0 {
						continue
					}
					res = res[:1]
				} else {
					return &AbortError{ViewType: a, Child: it.Name, Reason: fmt.Sprintf("σ returned %d usable nodes, need exactly 1", len(res))}
				}
			}
			if err := e.attach(vn, it.Name, res[0]); err != nil {
				return err
			}
		}
		return nil
	case dtd.Choice:
		matched := ""
		var node *xmltree.Node
		for _, it := range prod.Items {
			res := e.extract(a, it.Name, dn)
			if len(res) == 0 {
				continue
			}
			if len(res) > 1 || matched != "" {
				if e.lenient {
					if matched == "" {
						matched, node = it.Name, res[0]
					}
					continue
				}
				return &AbortError{ViewType: a, Child: it.Name, Reason: "disjunction matched more than one alternative"}
			}
			matched = it.Name
			node = res[0]
		}
		if matched == "" {
			if e.lenient {
				return nil
			}
			return &AbortError{ViewType: a, Child: prod.String(), Reason: "disjunction matched no alternative"}
		}
		return e.attach(vn, matched, node)
	default:
		return fmt.Errorf("secview: view production of %q has invalid kind", a)
	}
}

// expandStarred extracts all usable nodes for a starred entry and attaches
// them in document order (Section 3.3 case 5: inaccessible nodes are
// silently dropped, never an abort).
func (e *expander) expandStarred(vn, dn *xmltree.Node, child string) error {
	for _, res := range e.extract(vn.Label, child, dn) {
		if err := e.attach(vn, child, res); err != nil {
			return err
		}
	}
	return nil
}

// extract evaluates σ(parent, child) at the document context and filters
// by accessibility (dummies exempt, see Materialize).
func (e *expander) extract(parent, child string, dn *xmltree.Node) []*xmltree.Node {
	res := xpath.Eval(e.v.MustSigma(parent, child), dn)
	if e.v.IsDummy(child) {
		return res
	}
	return accessible(res, e.acc)
}

// attach creates the view child for an extracted document node and
// recurses into it.
func (e *expander) attach(vn *xmltree.Node, child string, dnChild *xmltree.Node) error {
	cn := xmltree.NewElement(child)
	vn.AppendChild(cn)
	e.m.DocOf[cn] = dnChild
	if e.v.IsDummy(child) {
		e.m.IsDummy[cn] = true
	} else {
		e.copyAttrs(cn, dnChild)
	}
	return e.expand(cn, dnChild)
}

// copyAttrs carries the document node's exposed attributes onto the view
// node: only attributes the view DTD declares for this type (denied ones
// were dropped by derive's attlist projection).
func (e *expander) copyAttrs(vn, dn *xmltree.Node) {
	for _, def := range e.v.DTD.Attlist(vn.Label) {
		if val, ok := dn.Attr(def.Name); ok {
			vn.SetAttr(def.Name, val)
		}
	}
}

func accessible(nodes []*xmltree.Node, acc map[*xmltree.Node]bool) []*xmltree.Node {
	var out []*xmltree.Node
	for _, n := range nodes {
		if acc[n] {
			out = append(out, n)
		}
	}
	return out
}
