package secview

import (
	"fmt"
	"strings"

	"repro/internal/access"
	"repro/internal/dtd"
	"repro/internal/xpath"
)

// MarshalText serializes a view definition so it can be derived once by
// the administrator and loaded by query frontends (which also need the
// document DTD and the specification to enforce it — both are embedded).
// The format is line-oriented and stable:
//
//	securexml-view 1
//	-- document dtd
//	<compact DTD>
//	-- spec
//	<annotations>
//	-- view dtd
//	<compact DTD, including dummy productions>
//	-- sigma
//	σ(parent, child) = <query>
//	-- dummies
//	dummyN = <hidden type>
func (v *View) MarshalText() ([]byte, error) {
	var b strings.Builder
	b.WriteString("securexml-view 1\n")
	b.WriteString("-- document dtd\n")
	b.WriteString(v.Doc.String())
	b.WriteString("-- spec\n")
	b.WriteString(v.Spec.String())
	b.WriteString("-- view dtd\n")
	b.WriteString(v.DTD.String())
	b.WriteString("-- sigma\n")
	for _, a := range v.DTD.Types() {
		c := v.DTD.MustProduction(a)
		if c.Kind == dtd.Text {
			if p, ok := v.Sigma(a, dtd.TextLabel); ok {
				fmt.Fprintf(&b, "sigma(%s, #text) = %s\n", a, xpath.String(p))
			}
			continue
		}
		seen := make(map[string]bool)
		for _, it := range c.Items {
			if seen[it.Name] {
				continue
			}
			seen[it.Name] = true
			if p, ok := v.Sigma(a, it.Name); ok {
				fmt.Fprintf(&b, "sigma(%s, %s) = %s\n", a, it.Name, xpath.String(p))
			}
		}
	}
	b.WriteString("-- dummies\n")
	for _, a := range v.DTD.Types() {
		if hidden, ok := v.DummyOf[a]; ok {
			fmt.Fprintf(&b, "%s = %s\n", a, hidden)
		}
	}
	return []byte(b.String()), nil
}

// UnmarshalView parses a serialized view definition.
func UnmarshalView(data []byte) (*View, error) {
	sections, err := splitSections(string(data))
	if err != nil {
		return nil, err
	}
	docDTD, err := dtd.Parse(sections["document dtd"])
	if err != nil {
		return nil, fmt.Errorf("secview: document dtd: %v", err)
	}
	spec, err := access.ParseAnnotations(docDTD, sections["spec"])
	if err != nil {
		return nil, fmt.Errorf("secview: spec: %v", err)
	}
	viewDTD, err := dtd.Parse(sections["view dtd"])
	if err != nil {
		return nil, fmt.Errorf("secview: view dtd: %v", err)
	}
	v := &View{
		DTD:     viewDTD,
		Doc:     docDTD,
		Spec:    spec,
		DummyOf: make(map[string]string),
		sigma:   make(map[access.Edge]xpath.Path),
	}
	for lineno, line := range strings.Split(sections["sigma"], "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		lhs, rhs, ok := strings.Cut(line, "=")
		if !ok || !strings.HasPrefix(strings.TrimSpace(lhs), "sigma(") {
			return nil, fmt.Errorf("secview: sigma line %d: malformed %q", lineno+1, line)
		}
		inner := strings.TrimSpace(lhs)
		inner = strings.TrimSuffix(strings.TrimPrefix(inner, "sigma("), ")")
		parent, child, ok := strings.Cut(inner, ",")
		if !ok {
			return nil, fmt.Errorf("secview: sigma line %d: malformed target %q", lineno+1, lhs)
		}
		p, err := xpath.Parse(strings.TrimSpace(rhs))
		if err != nil {
			return nil, fmt.Errorf("secview: sigma line %d: %v", lineno+1, err)
		}
		v.setSigma(strings.TrimSpace(parent), strings.TrimSpace(child), p)
	}
	for lineno, line := range strings.Split(sections["dummies"], "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		name, hidden, ok := strings.Cut(line, "=")
		if !ok {
			return nil, fmt.Errorf("secview: dummies line %d: malformed %q", lineno+1, line)
		}
		v.DummyOf[strings.TrimSpace(name)] = strings.TrimSpace(hidden)
	}
	if err := v.validateLoaded(); err != nil {
		return nil, err
	}
	return v, nil
}

// splitSections cuts the serialized form at "-- name" markers.
func splitSections(src string) (map[string]string, error) {
	lines := strings.Split(src, "\n")
	if len(lines) == 0 || strings.TrimSpace(lines[0]) != "securexml-view 1" {
		return nil, fmt.Errorf("secview: not a securexml-view file (missing header)")
	}
	sections := make(map[string]string)
	current := ""
	var buf strings.Builder
	flush := func() {
		if current != "" {
			sections[current] = buf.String()
		}
		buf.Reset()
	}
	for _, line := range lines[1:] {
		if strings.HasPrefix(line, "-- ") {
			flush()
			current = strings.TrimSpace(strings.TrimPrefix(line, "-- "))
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
	}
	flush()
	for _, want := range []string{"document dtd", "spec", "view dtd", "sigma", "dummies"} {
		if _, ok := sections[want]; !ok {
			return nil, fmt.Errorf("secview: missing section %q", want)
		}
	}
	return sections, nil
}

// validateLoaded sanity-checks a deserialized view: every view production
// edge must carry a σ annotation, and dummies must name document types.
func (v *View) validateLoaded() error {
	for _, a := range v.DTD.Types() {
		c := v.DTD.MustProduction(a)
		if c.Kind == dtd.Text {
			if _, ok := v.Sigma(a, dtd.TextLabel); !ok {
				return fmt.Errorf("secview: loaded view missing σ(%s, #text)", a)
			}
			continue
		}
		for _, it := range c.Items {
			if _, ok := v.Sigma(a, it.Name); !ok {
				return fmt.Errorf("secview: loaded view missing σ(%s, %s)", a, it.Name)
			}
		}
	}
	for x, hidden := range v.DummyOf {
		if !v.DTD.Has(x) {
			return fmt.Errorf("secview: dummy %s not declared in the view DTD", x)
		}
		if !v.Doc.Has(hidden) {
			return fmt.Errorf("secview: dummy %s hides unknown type %s", x, hidden)
		}
	}
	return nil
}
