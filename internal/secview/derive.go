package secview

import (
	"fmt"
	"sort"

	"repro/internal/access"
	"repro/internal/dtd"
	"repro/internal/xpath"
)

// Derive runs the paper's Algorithm derive (Fig. 5): given an access
// specification S = (D, ann) it computes the security view V = (D_v, σ).
// Inaccessible element types are hidden by short-cutting (their closest
// accessible descendants are pulled up into the parent production) or,
// when short-cutting would break the production normal form, by renaming
// to dummy labels that keep the DTD structure while hiding the label.
// Recursive inaccessible types are renamed to dummies and retained, so
// the view DTD preserves the document DTD's recursive structure (end of
// Section 3.4).
//
// The algorithm runs in O(|D|²) time: each element type is processed at
// most once as accessible and once as inaccessible.
func Derive(spec *access.Spec) (*View, error) {
	d := &deriver{
		spec: spec,
		view: &View{
			DTD:     dtd.New(spec.D.Root()),
			Doc:     spec.D,
			Spec:    spec,
			DummyOf: make(map[string]string),
			sigma:   make(map[access.Edge]xpath.Path),
		},
		regs:       make(map[string]*regInfo),
		inProgress: make(map[string]bool),
		dummyFor:   make(map[string]string),
		visitedAcc: make(map[string]bool),
	}
	if err := d.procAcc(spec.D.Root()); err != nil {
		return nil, err
	}
	// Register productions and σ edges for every dummy created for a
	// hidden type (including recursive ones resolved after the fact).
	if err := d.finishDummies(); err != nil {
		return nil, err
	}
	d.projectAttlists()
	if err := d.view.DTD.Check(); err != nil {
		return nil, fmt.Errorf("secview: derived view DTD is inconsistent: %v", err)
	}
	return d.view, nil
}

// projectAttlists copies each exposed element type's attribute
// declarations into the view DTD, dropping denied attributes. Dummy
// types expose no attributes: their document node is hidden, and its
// attributes with it.
func (d *deriver) projectAttlists() {
	for _, t := range d.view.DTD.Types() {
		if d.view.IsDummy(t) {
			continue
		}
		var visible []dtd.AttrDef
		for _, def := range d.spec.D.Attlist(t) {
			if d.spec.AttrAccessible(t, def.Name) {
				visible = append(visible, def)
			}
		}
		d.view.DTD.SetAttlist(t, visible)
	}
}

// regInfo is the paper's reg(A) for an inaccessible type A: a content
// model over A's closest accessible descendants (view labels), with
// path[A, C] the document-side XPath from A to each entry C. A nil
// regInfo ("none") means A has no accessible descendants (reg(A) = ∅).
//
// regInfo is normalized: a reg with exactly one unstarred item has kind
// Seq; one starred item has kind Star.
type regInfo struct {
	kind  dtd.Kind
	items []dtd.Item
	path  map[string]xpath.Path
}

func (r *regInfo) none() bool { return r == nil || len(r.items) == 0 }

func (r *regInfo) normalize() *regInfo {
	if r.none() {
		return nil
	}
	if len(r.items) == 1 {
		if r.items[0].Starred {
			r.kind = dtd.Star
			r.items[0].Starred = false
		} else if r.kind != dtd.Star {
			r.kind = dtd.Seq
		}
	}
	return r
}

type deriver struct {
	spec *access.Spec
	view *View

	visitedAcc map[string]bool
	regs       map[string]*regInfo // memoized Proc_InAcc results
	inProgress map[string]bool     // Proc_InAcc re-entrancy detection
	dummyFor   map[string]string   // hidden type -> dummy label
	nextDummy  int
}

// effAnn returns the effective annotation of the (parent, child) edge:
// the explicit annotation if any, otherwise inheritance from the parent's
// accessibility.
func (d *deriver) effAnn(parent, child string, parentAccessible bool) access.Ann {
	if a, ok := d.spec.Ann(parent, child); ok {
		return a
	}
	if parentAccessible {
		return access.Ann{Kind: access.Allow}
	}
	return access.Ann{Kind: access.Deny}
}

// prodBuilder accumulates the items and σ/path annotations of one view
// production (or one reg), merging duplicate labels into a single starred
// item whose query is the union of the merged access paths (the paper's
// compaction of Example 3.4).
type prodBuilder struct {
	kind  dtd.Kind
	items []dtd.Item
	paths map[string]xpath.Path
}

func newProdBuilder(kind dtd.Kind) *prodBuilder {
	return &prodBuilder{kind: kind, paths: make(map[string]xpath.Path)}
}

func (b *prodBuilder) add(name string, starred bool, p xpath.Path) {
	if existing, ok := b.paths[name]; ok {
		// Duplicate label: merge. In a sequence the merged item becomes
		// starred; in a choice it stays a single alternative.
		b.paths[name] = factorUnion(existing, p)
		for i := range b.items {
			if b.items[i].Name == name {
				if b.kind == dtd.Seq {
					b.items[i].Starred = true
				}
				break
			}
		}
		return
	}
	b.paths[name] = p
	b.items = append(b.items, dtd.Item{Name: name, Starred: starred})
}

// content returns the accumulated content model. For a Star builder the
// single item is rendered through dtd.StarContent.
func (b *prodBuilder) content() dtd.Content {
	if len(b.items) == 0 {
		return dtd.EmptyContent()
	}
	if b.kind == dtd.Star {
		return dtd.StarContent(b.items[0].Name)
	}
	if len(b.items) == 1 && b.items[0].Starred {
		return dtd.StarContent(b.items[0].Name)
	}
	return dtd.Content{Kind: b.kind, Items: b.items}
}

// procAcc is Proc_Acc(S, A): A is accessible; build the view production
// P_v(A) and σ(A, ·), then recurse.
func (d *deriver) procAcc(a string) error {
	if d.visitedAcc[a] {
		return nil
	}
	d.visitedAcc[a] = true
	prod := d.spec.D.MustProduction(a)
	switch prod.Kind {
	case dtd.Empty:
		d.view.DTD.SetProduction(a, dtd.EmptyContent())
		return nil
	case dtd.Text:
		ann := d.effAnn(a, dtd.TextLabel, true)
		switch ann.Kind {
		case access.Deny:
			// Fig. 5 case 4: hidden text content yields P_v(A) = A -> ε.
			d.view.DTD.SetProduction(a, dtd.EmptyContent())
		case access.Cond:
			return fmt.Errorf("secview: conditional annotation on text content of %q is not supported", a)
		default:
			d.view.DTD.SetProduction(a, dtd.TextContent())
			d.view.setSigma(a, dtd.TextLabel, xpath.Label{Name: xpath.TextName})
		}
		return nil
	}
	b := newProdBuilder(prod.Kind)
	for _, it := range prod.Items {
		if err := d.child(a, it.Name, it.Starred, true, b); err != nil {
			return err
		}
	}
	d.view.DTD.SetProduction(a, b.content())
	for name, p := range b.paths {
		d.view.setSigma(a, name, p)
	}
	return nil
}

// child processes one child type of a production, for both Proc_Acc
// (intoView true: builder holds P_v(parent) and σ) and Proc_InAcc
// (builder holds reg(parent) and path). starred is the child item's
// multiplicity in the parent's production; the view must preserve it —
// a starred document child admits any number of occurrences, so every
// view item it contributes (itself, a dummy, or pulled-up descendants)
// must stay starred or materialization's "exactly one" check for
// unstarred sequence entries rejects conforming documents.
func (d *deriver) child(parent, child string, starred, parentAccessible bool, b *prodBuilder) error {
	ann := d.effAnn(parent, child, parentAccessible)
	switch ann.Kind {
	case access.Allow:
		b.add(child, starred, xpath.L(child))
		return d.procAcc(child)
	case access.Cond:
		b.add(child, starred, xpath.Qualified{Sub: xpath.L(child), Cond: ann.Cond})
		return d.procAcc(child)
	}
	// Inaccessible child: compute reg(child) and short-cut or rename.
	if d.inProgress[child] {
		// Recursive inaccessible type (Section 3.4): rename to a dummy and
		// retain it; its production is registered by finishDummies.
		x := d.dummyLabel(child)
		b.add(x, starred || b.kind == dtd.Star, xpath.L(child))
		return nil
	}
	reg, err := d.procInacc(child)
	if err != nil {
		return err
	}
	if reg.none() {
		return nil // prune: no accessible descendants below child
	}
	step := xpath.L(child)
	prefix := func(p xpath.Path) xpath.Path { return xpath.MakeSeq(step, p) }
	switch b.kind {
	case dtd.Seq:
		switch reg.kind {
		case dtd.Seq:
			for _, it := range reg.items {
				b.add(it.Name, it.Starred || starred, prefix(reg.path[it.Name]))
			}
			return nil
		case dtd.Star:
			b.add(reg.items[0].Name, true, prefix(reg.path[reg.items[0].Name]))
			return nil
		}
	case dtd.Choice:
		if reg.kind == dtd.Choice {
			for _, it := range reg.items {
				b.add(it.Name, false, prefix(reg.path[it.Name]))
			}
			return nil
		}
	case dtd.Star:
		if len(reg.items) == 1 {
			it := reg.items[0]
			b.add(it.Name, true, prefix(reg.path[it.Name]))
			return nil
		}
	}
	// Short-cutting would violate the production normal form: rename the
	// inaccessible child to a dummy label (Fig. 5 steps 16-20).
	x := d.dummyLabel(child)
	b.add(x, starred || b.kind == dtd.Star, step)
	return nil
}

// procInacc is Proc_InAcc(S, A): A is inaccessible; compute reg(A) and
// path[A, C] for each entry C.
func (d *deriver) procInacc(a string) (*regInfo, error) {
	if r, ok := d.regs[a]; ok {
		return r, nil
	}
	d.inProgress[a] = true
	defer delete(d.inProgress, a)

	prod := d.spec.D.MustProduction(a)
	switch prod.Kind {
	case dtd.Empty, dtd.Text:
		// Hidden text content has no accessible element descendants. (An
		// explicit Y on (A, str) under an inaccessible A cannot be exposed
		// without revealing structure; it is treated as unsupported.)
		if ann, ok := d.spec.Ann(a, dtd.TextLabel); ok && ann.Kind != access.Deny {
			return nil, fmt.Errorf("secview: annotation on text content of inaccessible %q is not supported", a)
		}
		d.regs[a] = nil
		return nil, nil
	}
	b := newProdBuilder(prod.Kind)
	for _, it := range prod.Items {
		if err := d.child(a, it.Name, it.Starred, false, b); err != nil {
			return nil, err
		}
	}
	r := (&regInfo{kind: b.kind, items: b.items, path: b.paths}).normalize()
	d.regs[a] = r
	return r, nil
}

// dummyLabel returns the dummy label hiding the given document type,
// minting one on first use. Reusing one dummy per hidden type keeps
// recursive view DTDs finite and the output deterministic.
func (d *deriver) dummyLabel(hidden string) string {
	if x, ok := d.dummyFor[hidden]; ok {
		return x
	}
	d.nextDummy++
	x := fmt.Sprintf("dummy%d", d.nextDummy)
	d.dummyFor[hidden] = x
	d.view.DummyOf[x] = hidden
	return x
}

// finishDummies registers the production X -> reg(B) and the σ(X, ·)
// edges for every dummy label X hiding a type B. Recursive hidden types
// have their reg completed by the time derive finishes, so this runs
// last.
func (d *deriver) finishDummies() error {
	// dummyFor can grow while processing recursive chains; iterate until
	// stable, in dummy-label order so the derived view is deterministic.
	done := make(map[string]bool)
	for {
		pending := make(map[string]string) // dummy label -> hidden type
		for hidden, x := range d.dummyFor {
			if !done[x] {
				pending[x] = hidden
			}
		}
		if len(pending) == 0 {
			return nil
		}
		labels := make([]string, 0, len(pending))
		for x := range pending {
			labels = append(labels, x)
		}
		sort.Strings(labels)
		for _, x := range labels {
			done[x] = true
			reg, err := d.procInacc(pending[x])
			if err != nil {
				return err
			}
			if reg.none() {
				d.view.DTD.SetProduction(x, dtd.EmptyContent())
				continue
			}
			b := &prodBuilder{kind: reg.kind, items: reg.items, paths: reg.path}
			d.view.DTD.SetProduction(x, b.content())
			for name, p := range reg.path {
				d.view.setSigma(x, name, p)
			}
		}
	}
}

// factorUnion builds p1 ∪ p2, factoring a shared trailing step so merged
// σ annotations read like the paper's (clinicalTrial ∪ ε)/patientInfo
// rather than clinicalTrial/patientInfo ∪ patientInfo.
func factorUnion(p1, p2 xpath.Path) xpath.Path {
	pre1, last1 := splitLast(p1)
	pre2, last2 := splitLast(p2)
	if xpath.Equal(last1, last2) {
		return xpath.MakeSeq(xpath.Union{Left: pre1, Right: pre2}, last1)
	}
	return xpath.MakeUnion(p1, p2)
}

// splitLast splits a path into (prefix, last step); a single step has
// prefix ε.
func splitLast(p xpath.Path) (xpath.Path, xpath.Path) {
	if s, ok := p.(xpath.Seq); ok {
		return s.Left, s.Right
	}
	return xpath.Self{}, p
}
