package secview

import (
	"strings"
	"testing"

	"repro/internal/access"
	"repro/internal/dtd"
)

func TestViewMarshalRoundTrip(t *testing.T) {
	v := nurseView(t, "6")
	data, err := v.MarshalText()
	if err != nil {
		t.Fatalf("MarshalText: %v", err)
	}
	v2, err := UnmarshalView(data)
	if err != nil {
		t.Fatalf("UnmarshalView: %v", err)
	}
	// Same view definition: identical rendering and behaviour.
	if v2.String() != v.String() {
		t.Errorf("round trip changed the view:\n%s\nvs\n%s", v, v2)
	}
	if v2.DummyOf["dummy1"] != "trial" {
		t.Errorf("DummyOf lost: %v", v2.DummyOf)
	}
	// The loaded view materializes identically.
	doc := hospitalInstance()
	m1, err := Materialize(v, doc)
	if err != nil {
		t.Fatalf("Materialize(original): %v", err)
	}
	m2, err := Materialize(v2, doc)
	if err != nil {
		t.Fatalf("Materialize(loaded): %v", err)
	}
	if m1.View.XML() != m2.View.XML() {
		t.Errorf("loaded view materializes differently")
	}
	if _, err := CheckSoundComplete(v2, doc); err != nil {
		t.Errorf("loaded view fails the checker: %v", err)
	}
}

func TestViewMarshalRecursive(t *testing.T) {
	d := mustFig7View(t)
	data, err := d.MarshalText()
	if err != nil {
		t.Fatalf("MarshalText: %v", err)
	}
	v2, err := UnmarshalView(data)
	if err != nil {
		t.Fatalf("UnmarshalView: %v", err)
	}
	if !v2.IsRecursive() {
		t.Errorf("loaded view lost recursion")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	v := nurseView(t, "6")
	good, _ := v.MarshalText()
	cases := []struct {
		name   string
		mutate func(string) string
	}{
		{"bad header", func(s string) string { return strings.Replace(s, "securexml-view 1", "nope", 1) }},
		{"missing section", func(s string) string { return strings.Replace(s, "-- dummies", "-- other", 1) }},
		{"bad sigma", func(s string) string {
			return strings.Replace(s, "sigma(dept, staffInfo) = staffInfo", "sigma(dept staffInfo", 1)
		}},
		{"bad sigma query", func(s string) string { return strings.Replace(s, "= staffInfo", "= [[[", 1) }},
		{"bad dummy", func(s string) string { return strings.Replace(s, "dummy1 = trial", "dummy1 trial", 1) }},
		{"unknown hidden type", func(s string) string { return strings.Replace(s, "dummy1 = trial", "dummy1 = ghost", 1) }},
		{"bad view dtd", func(s string) string { return strings.Replace(s, "dummy2 -> bill, medication", "dummy2 ->", 1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := tc.mutate(string(good))
			if bad == string(good) {
				t.Fatalf("mutation had no effect")
			}
			if _, err := UnmarshalView([]byte(bad)); err == nil {
				t.Errorf("corrupted view accepted")
			}
		})
	}
}

func TestUnmarshalRejectsMissingSigma(t *testing.T) {
	v := nurseView(t, "6")
	good, _ := v.MarshalText()
	bad := strings.Replace(string(good), "sigma(dummy1, bill) = bill\n", "", 1)
	if _, err := UnmarshalView([]byte(bad)); err == nil {
		t.Errorf("view with missing σ edge accepted")
	}
}

func mustFig7View(t *testing.T) *View {
	t.Helper()
	// Reuse the fixture DTD from derive tests (recursive dummy case).
	return deriveFixture(t, `
root a
a -> b, c
b -> #PCDATA
c -> a*
`, "ann(a, c) = N\n")
}

func deriveFixture(t *testing.T, dtdSrc, specSrc string) *View {
	t.Helper()
	d := dtd.MustParse(dtdSrc)
	v, err := Derive(access.MustParseAnnotations(d, specSrc))
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	return v
}
