// Package secview implements the paper's primary contribution: security
// views (Section 3.3), the automatic view-derivation algorithm derive
// (Section 3.4, Fig. 5), the top-down materialization semantics of
// Section 3.3, and checkers that verify soundness and completeness of a
// derived view against the ground-truth accessibility of Section 3.2.
//
// A security view V = (D_v, σ) maps instances of a document DTD D to
// instances of a view DTD D_v: D_v is the schema exposed to authorized
// users, and σ annotates every production edge of D_v with an XPath query
// (over D) that extracts the corresponding accessible data from the
// document. σ is never shown to users, and in the full system (Fig. 3)
// the view is never materialized: queries over D_v are rewritten (package
// rewrite) into equivalent queries over D. The materializer here defines
// the view's semantics and anchors the equivalence tests.
package secview

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/access"
	"repro/internal/dtd"
	"repro/internal/xpath"
)

// View is a security view definition V = (D_v, σ) derived from an access
// specification S = (D, ann).
type View struct {
	// DTD is the view DTD D_v exposed to authorized users. Its root type
	// equals the document root type, and its sequences may contain starred
	// items (the compact form of the paper's Example 3.4).
	DTD *dtd.DTD
	// Doc is the original document DTD D.
	Doc *dtd.DTD
	// Spec is the access specification the view enforces.
	Spec *access.Spec
	// DummyOf maps each dummy view label (dummy1, dummy2, ...) to the
	// inaccessible document element type whose label it hides.
	DummyOf map[string]string

	sigma map[access.Edge]xpath.Path
}

// Sigma returns σ(parent, child): the document-side XPath query that
// extracts the child elements of the view production edge. Text content
// uses child label dtd.TextLabel. The boolean is false when the edge is
// not part of the view DTD.
func (v *View) Sigma(parent, child string) (xpath.Path, bool) {
	p, ok := v.sigma[access.Edge{Parent: parent, Child: child}]
	return p, ok
}

// MustSigma returns σ(parent, child) and panics when the edge is absent;
// it is used by algorithm internals that iterate over D_v productions.
func (v *View) MustSigma(parent, child string) xpath.Path {
	p, ok := v.Sigma(parent, child)
	if !ok {
		panic(fmt.Sprintf("secview: no σ(%s, %s)", parent, child))
	}
	return p
}

// setSigma records σ(parent, child).
func (v *View) setSigma(parent, child string, p xpath.Path) {
	v.sigma[access.Edge{Parent: parent, Child: child}] = p
}

// IsDummy reports whether the view label is a dummy introduced to hide an
// inaccessible element type.
func (v *View) IsDummy(label string) bool {
	_, ok := v.DummyOf[label]
	return ok
}

// IsRecursive reports whether the view DTD is recursive (Section 4.2).
func (v *View) IsRecursive() bool { return v.DTD.IsRecursive() }

// String renders the view definition: each view production with its σ
// annotations, in the style of the paper's Example 3.2.
func (v *View) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "view root %s\n", v.DTD.Root())
	for _, a := range v.DTD.Types() {
		c := v.DTD.MustProduction(a)
		fmt.Fprintf(&b, "production: %s -> %s\n", a, c)
		if c.Kind == dtd.Text {
			if p, ok := v.Sigma(a, dtd.TextLabel); ok {
				fmt.Fprintf(&b, "  σ(%s, str) = %s\n", a, xpath.String(p))
			}
			continue
		}
		seen := make(map[string]bool)
		for _, it := range c.Items {
			if seen[it.Name] {
				continue
			}
			seen[it.Name] = true
			if p, ok := v.Sigma(a, it.Name); ok {
				fmt.Fprintf(&b, "  σ(%s, %s) = %s\n", a, it.Name, xpath.String(p))
			}
		}
	}
	if len(v.DummyOf) > 0 {
		hidden := make([]string, 0, len(v.DummyOf))
		for x, b2 := range v.DummyOf {
			hidden = append(hidden, fmt.Sprintf("%s hides %s", x, b2))
		}
		sort.Strings(hidden)
		fmt.Fprintf(&b, "dummies: %s\n", strings.Join(hidden, ", "))
	}
	return b.String()
}
