package secview

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/xmltree"
)

// CheckSoundComplete verifies the defining property of security views
// (Section 3.3) on a concrete instance: the materialized view T_v must
// (a) conform to the view DTD D_v, (b) expose only document nodes that
// are accessible w.r.t. S (soundness), and (c) expose every accessible
// document node (completeness). Dummy view nodes are structural
// placeholders: they hide a label and are exempt from (b), and the
// inaccessible nodes they relabel are not counted in (c).
//
// It returns the materialization result for further inspection, or an
// error describing the first violation.
func CheckSoundComplete(v *View, doc *xmltree.Document) (*Materialized, error) {
	m, err := Materialize(v, doc)
	if err != nil {
		return nil, err
	}
	if err := xmltree.Validate(m.View, v.DTD); err != nil {
		return m, fmt.Errorf("secview: view does not conform to the view DTD: %v", err)
	}
	acc := access.Accessibility(v.Spec, doc)

	// Soundness: every exposed (non-dummy) view node maps to an accessible
	// document node, and exposed attributes are exactly the accessible
	// attributes of that node.
	attrAcc := access.AttrAccessibility(v.Spec, doc)
	exposed := make(map[*xmltree.Node]bool)
	var unsound *xmltree.Node
	var attrErr error
	m.View.Root.Walk(func(n *xmltree.Node) bool {
		if m.IsDummy[n] {
			if len(n.Attrs) > 0 && attrErr == nil {
				attrErr = fmt.Errorf("secview: dummy node %s carries attributes", n.Path())
			}
			return true
		}
		dn := m.DocOf[n]
		if dn == nil || !acc[dn] {
			if unsound == nil {
				unsound = n
			}
			return true
		}
		exposed[dn] = true
		if attrErr == nil {
			attrErr = compareAttrs(n, dn, attrAcc[dn])
		}
		return true
	})
	if unsound != nil {
		return m, fmt.Errorf("secview: unsound: view node %s exposes an inaccessible document node", unsound.Path())
	}
	if attrErr != nil {
		return m, attrErr
	}

	// Completeness: every accessible document node is exposed.
	var missing *xmltree.Node
	doc.Root.Walk(func(n *xmltree.Node) bool {
		if acc[n] && !exposed[n] && missing == nil {
			missing = n
		}
		return true
	})
	if missing != nil {
		return m, fmt.Errorf("secview: incomplete: accessible document node %s is not exposed by the view", missing.Path())
	}
	return m, nil
}

// compareAttrs checks that a view node's attributes are all and only the
// accessible attributes of its document node.
func compareAttrs(vn, dn *xmltree.Node, accessible map[string]bool) error {
	for name := range vn.Attrs {
		if !accessible[name] {
			return fmt.Errorf("secview: unsound: view node %s exposes hidden attribute %q", vn.Path(), name)
		}
	}
	for name, ok := range accessible {
		if !ok {
			continue
		}
		if _, present := vn.Attr(name); !present {
			return fmt.Errorf("secview: incomplete: view node %s is missing accessible attribute %q", vn.Path(), name)
		}
	}
	return nil
}
