package loadgen

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Entry is one weighted slot in a query mix: a user class, a query over
// that class's view, an optional parameter binding, and a weight giving
// its share of the traffic.
type Entry struct {
	// Name labels the entry in reports ("cheap", "recursive", ...).
	Name string `json:"name"`
	// Weight is the entry's relative share of requests (≥1).
	Weight int `json:"weight"`
	// Class is the user class the request authenticates as.
	Class string `json:"class"`
	// Query is the view query text.
	Query string `json:"query"`
	// Params is the $parameter binding sent with the request.
	Params map[string]string `json:"params,omitempty"`
}

// Mix is a weighted query mix. A realistic mix spans the cost spectrum:
// cheap label paths that the plan cache answers in microseconds,
// descendant/recursive-view queries whose rewriting and evaluation are
// the expensive tail, and qualifier-heavy queries that stress the
// filter loops.
type Mix []Entry

// pick returns the index of a weighted-random entry.
func (m Mix) pick(r *rand.Rand) int {
	total := 0
	for _, e := range m {
		total += e.weight()
	}
	n := r.Intn(total)
	for i, e := range m {
		n -= e.weight()
		if n < 0 {
			return i
		}
	}
	return len(m) - 1
}

func (e Entry) weight() int {
	if e.Weight > 0 {
		return e.Weight
	}
	return 1
}

// HospitalMix is the default mix over the hospital scenario's nurse
// class (svserve -builtin hospital): mostly cheap label paths, a
// descendant-heavy slice, and a qualifier-heavy slice, with the ward
// parameter spread over three wards so the per-binding engine cache is
// exercised.
func HospitalMix() Mix {
	var m Mix
	for _, ward := range []string{"1", "2", "3"} {
		m = append(m,
			Entry{
				Name:   "cheap-w" + ward,
				Weight: 4,
				Class:  "nurse",
				Query:  "//patient/name",
				Params: map[string]string{"wardNo": ward},
			},
			Entry{
				Name:   "descend-w" + ward,
				Weight: 2,
				Class:  "nurse",
				Query:  "//dept//treatment//bill",
				Params: map[string]string{"wardNo": ward},
			},
			Entry{
				Name:   "qual-w" + ward,
				Weight: 1,
				Class:  "nurse",
				Query:  `//patient[wardNo = "` + ward + `" and treatment//bill]/name | //staff[not(doctor)]/nurse/name`,
				Params: map[string]string{"wardNo": ward},
			},
		)
	}
	return m
}

// HospitalLargeMix is the large-document variant of the hospital mix
// (svload -builtin hospital-large): the document is generated an order
// of magnitude bigger (10k+ nodes), and the mix leans on the
// deep-descendant queries whose cost scales with document size — the
// workload the structural index serves from posting lists instead of
// subtree walks.
func HospitalLargeMix() Mix {
	var m Mix
	for _, ward := range []string{"1", "2", "3"} {
		m = append(m,
			Entry{
				Name:   "descend-w" + ward,
				Weight: 4,
				Class:  "nurse",
				Query:  "//dept//treatment//bill",
				Params: map[string]string{"wardNo": ward},
			},
			Entry{
				Name:   "deep-text-w" + ward,
				Weight: 2,
				Class:  "nurse",
				Query:  "//dept//patientInfo//name/text()",
				Params: map[string]string{"wardNo": ward},
			},
			Entry{
				Name:   "cheap-w" + ward,
				Weight: 2,
				Class:  "nurse",
				Query:  "//patient/name",
				Params: map[string]string{"wardNo": ward},
			},
			Entry{
				Name:   "qual-descend-w" + ward,
				Weight: 1,
				Class:  "nurse",
				Query:  "//dept[.//trial]//bill",
				Params: map[string]string{"wardNo": ward},
			},
		)
	}
	return m
}

// ForumMix is the recursive-view mix (the forum scenario's guest class
// over a recursive thread DTD): rewriting goes through §4.2 unfolding,
// which is the expensive rewriting tail a load mix must include.
func ForumMix(class string) Mix {
	return Mix{
		Entry{Name: "cheap-author", Weight: 4, Class: class, Query: "//post/author"},
		Entry{Name: "recursive-deep", Weight: 2, Class: class, Query: "//thread//replies//post/body"},
		Entry{Name: "recursive-qual", Weight: 1, Class: class, Query: `//thread[replies//post]/post/author`},
	}
}

// Fig7Mix is the paper's Fig. 7 recursive view (svserve -builtin fig7,
// class "user"): the view DTD itself is recursive (a -> b, a*), so
// every // step rewrites through the unfolded closure.
func Fig7Mix() Mix {
	return Mix{
		Entry{Name: "cheap-b", Weight: 4, Class: "user", Query: "//b"},
		Entry{Name: "recursive-aa", Weight: 2, Class: "user", Query: "//a//a/b"},
		Entry{Name: "recursive-qual", Weight: 1, Class: "user", Query: "//a[a/b]/b"},
	}
}

// AdexMix poses the paper's Table 1 queries (Q1–Q3; Q4 optimizes to
// the empty query) over the adex buyer class with Table-1-like weights.
func AdexMix() Mix {
	return Mix{
		Entry{Name: "q1-contact", Weight: 3, Class: "buyer", Query: "//buyer-info/contact-info"},
		Entry{Name: "q2-warranty", Weight: 2, Class: "buyer", Query: "//house/r-e.warranty | //apartment/r-e.warranty"},
		Entry{Name: "q3-qual", Weight: 1, Class: "buyer", Query: "//buyer-info[//company-id and //contact-info]"},
	}
}

// ZipfMix reweights a mix with Zipf-skewed popularity: entry i keeps
// its class, query, and binding but its weight becomes round(64 /
// (i+1)^s), floored at 1, so the leading entries dominate the traffic.
// Real query logs are popularity-skewed — a few hot queries asked over
// and over — and this is the workload a semantic answer cache exists
// for; s <= 0 returns the mix unchanged (uniform default weights
// untouched).
func ZipfMix(m Mix, s float64) Mix {
	if s <= 0 {
		return m
	}
	out := make(Mix, len(m))
	for i, e := range m {
		w := int(math.Round(64 / math.Pow(float64(i+1), s)))
		if w < 1 {
			w = 1
		}
		e.Weight = w
		out[i] = e
	}
	return out
}

// MixFor returns the default mix for a built-in scenario name.
func MixFor(builtin string) (Mix, error) {
	switch builtin {
	case "hospital":
		return HospitalMix(), nil
	case "hospital-large":
		return HospitalLargeMix(), nil
	case "adex":
		return AdexMix(), nil
	case "fig7":
		return Fig7Mix(), nil
	}
	return nil, fmt.Errorf("loadgen: no default mix for scenario %q (have hospital, hospital-large, adex, fig7)", builtin)
}

// ParseEntry parses the svload -query flag syntax:
//
//	name:weight:class:query[:param=value[,param=value...]]
func ParseEntry(s string) (Entry, error) {
	parts := strings.SplitN(s, ":", 5)
	if len(parts) < 4 {
		return Entry{}, fmt.Errorf("loadgen: bad mix entry %q (want name:weight:class:query[:params])", s)
	}
	var weight int
	if _, err := fmt.Sscanf(parts[1], "%d", &weight); err != nil || weight <= 0 {
		return Entry{}, fmt.Errorf("loadgen: bad weight in mix entry %q", s)
	}
	e := Entry{Name: parts[0], Weight: weight, Class: parts[2], Query: parts[3]}
	if len(parts) == 5 && parts[4] != "" {
		e.Params = make(map[string]string)
		for _, kv := range strings.Split(parts[4], ",") {
			name, value, ok := strings.Cut(kv, "=")
			if !ok || name == "" {
				return Entry{}, fmt.Errorf("loadgen: bad param %q in mix entry %q", kv, s)
			}
			e.Params[name] = value
		}
	}
	return e, nil
}
