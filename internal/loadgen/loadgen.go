// Package loadgen drives a serve.Server-shaped /query endpoint with
// sustained concurrent traffic and accounts for what comes back. It is
// the measurement side of the serving stack: the paper (§6) measures
// single-query rewriting and evaluation cost, and this package measures
// the property the paper cannot — that under overload, admission
// control (429) keeps the latency of the queries the server did admit
// bounded.
//
// Two generator shapes are provided. The closed loop fixes the number
// of outstanding requests (each of N workers issues its next request
// only when the previous one answers), which is how saturation is
// usually ramped. The open loop fires requests on a fixed arrival
// schedule regardless of completions, which is how latency under a
// given offered rate is measured without coordinated omission.
//
// Every request is classified by outcome (200/400/429/500/504,
// transport error) and observed into online latency digests — one over
// everything, one over admitted requests only (everything the server
// let past admission control, i.e. every outcome but 429), and one per
// mix entry — so a report can show both the rejection rate and the
// admitted-latency bound that makes the rejections worthwhile.
package loadgen

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/latency"
)

// Outcome classifies one request's result.
type Outcome int

const (
	// OK is a 200 with a result envelope.
	OK Outcome = iota
	// BadRequest is a 400: the client's fault (bad query, bad params).
	BadRequest
	// Rejected is a 429 from admission control — the only outcome that
	// does not count as admitted.
	Rejected
	// Internal is a 5xx other than 504: the server's fault.
	Internal
	// Timeout is a 504: the query was admitted but its deadline expired.
	Timeout
	// Transport is a request that failed below HTTP (dial/read error).
	Transport
	// Other is any status not covered above (e.g. 499).
	Other
	numOutcomes
)

// Classify maps an HTTP status code to an Outcome.
func Classify(status int) Outcome {
	switch {
	case status == http.StatusOK:
		return OK
	case status == http.StatusBadRequest:
		return BadRequest
	case status == http.StatusTooManyRequests:
		return Rejected
	case status == http.StatusGatewayTimeout:
		return Timeout
	case status >= 500:
		return Internal
	}
	return Other
}

// Admitted reports whether the outcome got past admission control (the
// server spent evaluation capacity on it). 429s are refused before
// evaluation; transport errors never reached the server.
func (o Outcome) Admitted() bool { return o != Rejected && o != Transport }

// Target abstracts where requests go: an in-process handler or a live
// server over TCP. Implementations must be safe for concurrent use.
type Target interface {
	// Query issues one /query request and returns the HTTP status.
	Query(class, query string, params map[string]string, timeout time.Duration) (int, error)
}

// HandlerTarget drives an http.Handler in process — no sockets, so the
// measurement isolates the serving stack from the kernel's network
// path. This is what the load smoke in CI uses.
type HandlerTarget struct{ Handler http.Handler }

func (t HandlerTarget) Query(class, query string, params map[string]string, timeout time.Duration) (int, error) {
	req, err := http.NewRequest("GET", "/query?"+queryValues(class, query, params, timeout).Encode(), nil)
	if err != nil {
		return 0, err
	}
	rec := &statusRecorder{}
	t.Handler.ServeHTTP(rec, req)
	return rec.status(), nil
}

// URLTarget drives a running server (svserve) over HTTP.
type URLTarget struct {
	BaseURL string
	// Client defaults to a client with no overall timeout (the server
	// bounds each query; the transport dial timeout still applies).
	Client *http.Client
}

func (t URLTarget) Query(class, query string, params map[string]string, timeout time.Duration) (int, error) {
	client := t.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(t.BaseURL + "/query?" + queryValues(class, query, params, timeout).Encode())
	if err != nil {
		return 0, err
	}
	resp.Body.Close()
	return resp.StatusCode, nil
}

func queryValues(class, query string, params map[string]string, timeout time.Duration) url.Values {
	v := url.Values{}
	v.Set("class", class)
	v.Set("q", query)
	for name, value := range params {
		v.Add("param", name+"="+value)
	}
	if timeout > 0 {
		v.Set("timeout", timeout.String())
	}
	return v
}

// statusRecorder is the minimal http.ResponseWriter HandlerTarget
// needs: it keeps the status code and discards the body.
type statusRecorder struct {
	header http.Header
	code   int
}

func (r *statusRecorder) Header() http.Header {
	if r.header == nil {
		r.header = make(http.Header)
	}
	return r.header
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return len(b), nil
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
}

func (r *statusRecorder) status() int {
	if r.code == 0 {
		return http.StatusOK
	}
	return r.code
}

// Config tunes one load run at one level.
type Config struct {
	// Mix is the weighted query mix; it must be nonempty.
	Mix Mix
	// Duration bounds the run (default 1s).
	Duration time.Duration
	// Concurrency is the closed-loop worker count (default 1). Ignored
	// when RateRPS is set.
	Concurrency int
	// RateRPS switches to the open loop: requests are issued on a fixed
	// schedule at this offered rate, regardless of completions.
	RateRPS float64
	// MaxOutstanding caps concurrently outstanding open-loop requests
	// so a stalled target cannot accumulate unbounded goroutines;
	// arrivals past the cap are counted as Dropped, not issued. Default
	// 4096. Ignored by the closed loop (Concurrency is the cap).
	MaxOutstanding int
	// Timeout is the per-request deadline passed to the server
	// (?timeout=). Zero lets the server's default apply; deadline
	// accounting (DeadlineViolations) is only possible when set.
	Timeout time.Duration
	// RejectBackoff is how long a closed-loop worker pauses after a 429
	// before retrying, honoring the server's Retry-After contract in
	// miniature. Without it, rejected workers spin at memory speed and
	// the resulting scheduler pressure starves the very requests
	// admission control admitted — measuring the generator's retry DoS,
	// not the server. 0 means 1ms; negative disables the pause (to
	// observe exactly that pathology). The open loop never retries, so
	// it ignores this.
	RejectBackoff time.Duration
	// Seed makes the mix schedule deterministic.
	Seed int64
}

func (c Config) duration() time.Duration {
	if c.Duration > 0 {
		return c.Duration
	}
	return time.Second
}

func (c Config) concurrency() int {
	if c.Concurrency > 0 {
		return c.Concurrency
	}
	return 1
}

func (c Config) maxOutstanding() int {
	if c.MaxOutstanding > 0 {
		return c.MaxOutstanding
	}
	return 4096
}

func (c Config) rejectBackoff() time.Duration {
	switch {
	case c.RejectBackoff > 0:
		return c.RejectBackoff
	case c.RejectBackoff < 0:
		return 0
	}
	return time.Millisecond
}

// Result is the accounting of one run.
type Result struct {
	// Mode is "closed" or "open".
	Mode string `json:"mode"`
	// Concurrency is the closed-loop worker count (0 for open loop).
	Concurrency int `json:"concurrency,omitempty"`
	// OfferedRPS is the open-loop arrival rate (0 for closed loop).
	OfferedRPS float64 `json:"offered_rps,omitempty"`
	// Elapsed is the measured wall time of the run.
	Elapsed time.Duration `json:"elapsed_ns"`

	// Requests counts everything issued (and, for the open loop,
	// Dropped counts arrivals skipped at the MaxOutstanding cap — they
	// are not in Requests).
	Requests uint64 `json:"requests"`
	Dropped  uint64 `json:"dropped,omitempty"`

	// Per-outcome counts. OK+BadRequests+Rejected+Internal+Timeouts+
	// TransportErrors+Other == Requests.
	OK              uint64 `json:"ok"`
	BadRequests     uint64 `json:"bad_requests"`
	Rejected        uint64 `json:"rejected"`
	Internal        uint64 `json:"internal_errors"`
	Timeouts        uint64 `json:"timeouts"`
	TransportErrors uint64 `json:"transport_errors"`
	Other           uint64 `json:"other"`

	// ThroughputRPS is completed requests (all outcomes) per second;
	// GoodputRPS counts only 200s.
	ThroughputRPS float64 `json:"throughput_rps"`
	GoodputRPS    float64 `json:"goodput_rps"`

	// All digests every request; Admitted digests only the requests
	// that got past admission control (everything but 429 and transport
	// failures) — the population whose latency the 429 path exists to
	// protect.
	All      latency.Summary `json:"latency_all"`
	Admitted latency.Summary `json:"latency_admitted"`

	// DeadlineViolations counts admitted requests whose observed
	// latency exceeded the configured per-request deadline by more than
	// the cooperative-polling grace (an honest server answers 504 at
	// the deadline, so only real overshoot counts).
	DeadlineViolations uint64 `json:"deadline_violations"`
	// DeadlineNs echoes the deadline the violations are against.
	DeadlineNs int64 `json:"deadline_ns,omitempty"`

	// PerClass breaks requests and admitted latency down by mix entry,
	// sorted by name.
	PerClass []ClassResult `json:"per_class"`
}

// ClassResult is the per-mix-entry slice of a Result.
type ClassResult struct {
	Name     string          `json:"name"`
	Requests uint64          `json:"requests"`
	OK       uint64          `json:"ok"`
	Rejected uint64          `json:"rejected"`
	Timeouts uint64          `json:"timeouts"`
	Admitted latency.Summary `json:"latency_admitted"`
}

// deadlineGrace is how far past the deadline an admitted request may
// answer before it counts as a violation: the evaluators poll deadlines
// cooperatively, so a 504 completes at deadline+ε where ε is poll
// granularity plus scheduling noise, not at the deadline exactly.
const deadlineGrace = 50 * time.Millisecond

// recorder accumulates one run's accounting; all methods are safe for
// concurrent use.
type recorder struct {
	requests   uint64
	dropped    uint64
	outcomes   [numOutcomes]atomic.Uint64
	violations atomic.Uint64
	all        latency.Digest
	admitted   latency.Digest

	perClass []*classRecorder
}

type classRecorder struct {
	requests atomic.Uint64
	outcomes [numOutcomes]atomic.Uint64
	admitted latency.Digest
}

func newRecorder(mix Mix) *recorder {
	r := &recorder{perClass: make([]*classRecorder, len(mix))}
	for i := range r.perClass {
		r.perClass[i] = &classRecorder{}
	}
	return r
}

func (r *recorder) record(classIdx int, o Outcome, lat, deadline time.Duration) {
	atomic.AddUint64(&r.requests, 1)
	r.outcomes[o].Add(1)
	r.all.Observe(lat)
	c := r.perClass[classIdx]
	c.requests.Add(1)
	c.outcomes[o].Add(1)
	if o.Admitted() {
		r.admitted.Observe(lat)
		c.admitted.Observe(lat)
		if deadline > 0 && lat > deadline+deadlineGrace {
			r.violations.Add(1)
		}
	}
}

func (r *recorder) result(mix Mix, elapsed time.Duration, deadline time.Duration) Result {
	res := Result{
		Elapsed:            elapsed,
		Requests:           atomic.LoadUint64(&r.requests),
		Dropped:            atomic.LoadUint64(&r.dropped),
		OK:                 r.outcomes[OK].Load(),
		BadRequests:        r.outcomes[BadRequest].Load(),
		Rejected:           r.outcomes[Rejected].Load(),
		Internal:           r.outcomes[Internal].Load(),
		Timeouts:           r.outcomes[Timeout].Load(),
		TransportErrors:    r.outcomes[Transport].Load(),
		Other:              r.outcomes[Other].Load(),
		All:                r.all.Snapshot().Summarize(),
		Admitted:           r.admitted.Snapshot().Summarize(),
		DeadlineViolations: r.violations.Load(),
		DeadlineNs:         int64(deadline),
	}
	if secs := elapsed.Seconds(); secs > 0 {
		res.ThroughputRPS = float64(res.Requests) / secs
		res.GoodputRPS = float64(res.OK) / secs
	}
	for i, entry := range mix {
		c := r.perClass[i]
		res.PerClass = append(res.PerClass, ClassResult{
			Name:     entry.Name,
			Requests: c.requests.Load(),
			OK:       c.outcomes[OK].Load(),
			Rejected: c.outcomes[Rejected].Load(),
			Timeouts: c.outcomes[Timeout].Load(),
			Admitted: c.admitted.Snapshot().Summarize(),
		})
	}
	sort.Slice(res.PerClass, func(i, j int) bool { return res.PerClass[i].Name < res.PerClass[j].Name })
	return res
}

// Run drives the target with the configured load until the duration
// elapses or ctx is cancelled, whichever is first, and returns the
// accounting. The closed loop is the default; set Config.RateRPS for
// the open loop.
func Run(ctx context.Context, target Target, cfg Config) (Result, error) {
	if len(cfg.Mix) == 0 {
		return Result{}, fmt.Errorf("loadgen: empty query mix")
	}
	if cfg.RateRPS > 0 {
		return runOpen(ctx, target, cfg)
	}
	return runClosed(ctx, target, cfg)
}

// issue sends one request for the mix entry, records it, and returns
// the outcome so the closed loop can back off after rejections.
func issue(target Target, rec *recorder, cfg Config, classIdx int) Outcome {
	entry := cfg.Mix[classIdx]
	start := time.Now()
	status, err := target.Query(entry.Class, entry.Query, entry.Params, cfg.Timeout)
	lat := time.Since(start)
	o := Transport
	if err == nil {
		o = Classify(status)
	}
	rec.record(classIdx, o, lat, cfg.Timeout)
	return o
}

// runClosed fixes the number of outstanding requests at Concurrency:
// each worker issues back-to-back, so the instantaneous offered
// concurrency equals the worker count and saturation is reached exactly
// when that exceeds the server's admission limit.
func runClosed(ctx context.Context, target Target, cfg Config) (Result, error) {
	rec := newRecorder(cfg.Mix)
	deadline := time.Now().Add(cfg.duration())
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.concurrency(); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			backoff := cfg.rejectBackoff()
			for time.Now().Before(deadline) && ctx.Err() == nil {
				if issue(target, rec, cfg, cfg.Mix.pick(rng)) == Rejected && backoff > 0 {
					// Jitter the pause so rejected workers do not
					// re-arrive in lockstep.
					time.Sleep(backoff/2 + time.Duration(rng.Int63n(int64(backoff))))
				}
			}
		}(w)
	}
	wg.Wait()
	return rec.result(cfg.Mix, time.Since(start), cfg.Timeout), ctx.Err()
}

// runOpen issues requests on a fixed schedule at RateRPS regardless of
// completions (no coordinated omission: a slow server does not slow the
// arrival process down). Outstanding requests are capped at
// MaxOutstanding; arrivals past the cap are counted as dropped.
func runOpen(ctx context.Context, target Target, cfg Config) (Result, error) {
	rec := newRecorder(cfg.Mix)
	interval := time.Duration(float64(time.Second) / cfg.RateRPS)
	if interval <= 0 {
		interval = time.Microsecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	stop := time.After(cfg.duration())
	slots := make(chan struct{}, cfg.maxOutstanding())
	rng := rand.New(rand.NewSource(cfg.Seed))
	var wg sync.WaitGroup
	start := time.Now()
loop:
	for {
		select {
		case <-ctx.Done():
			break loop
		case <-stop:
			break loop
		case <-ticker.C:
			classIdx := cfg.Mix.pick(rng)
			select {
			case slots <- struct{}{}:
			default:
				atomic.AddUint64(&rec.dropped, 1)
				continue
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-slots }()
				issue(target, rec, cfg, classIdx)
			}()
		}
	}
	wg.Wait()
	return rec.result(cfg.Mix, time.Since(start), cfg.Timeout), ctx.Err()
}
