package loadgen

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dtds"
	"repro/internal/policy"
	"repro/internal/serve"
	"repro/internal/xmlgen"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		status int
		want   Outcome
	}{
		{200, OK},
		{400, BadRequest},
		{429, Rejected},
		{504, Timeout},
		{500, Internal},
		{503, Internal},
		{404, Other},
	}
	for _, c := range cases {
		if got := Classify(c.status); got != c.want {
			t.Errorf("Classify(%d) = %v, want %v", c.status, got, c.want)
		}
	}
	for _, o := range []Outcome{OK, BadRequest, Internal, Timeout, Other} {
		if !o.Admitted() {
			t.Errorf("outcome %v should count as admitted", o)
		}
	}
	for _, o := range []Outcome{Rejected, Transport} {
		if o.Admitted() {
			t.Errorf("outcome %v should not count as admitted", o)
		}
	}
}

func TestParseEntry(t *testing.T) {
	e, err := ParseEntry(`cheap:4:nurse://patient/name:wardNo=2,shift=night`)
	if err != nil {
		t.Fatalf("ParseEntry: %v", err)
	}
	want := Entry{
		Name: "cheap", Weight: 4, Class: "nurse", Query: "//patient/name",
		Params: map[string]string{"wardNo": "2", "shift": "night"},
	}
	if !reflect.DeepEqual(e, want) {
		t.Errorf("ParseEntry = %+v, want %+v", e, want)
	}
	// Query text may itself contain colons past the fourth field.
	e, err = ParseEntry(`q:1:guest://post/author`)
	if err != nil {
		t.Fatalf("ParseEntry: %v", err)
	}
	if e.Query != "//post/author" || e.Params != nil {
		t.Errorf("ParseEntry = %+v", e)
	}
	for _, bad := range []string{"", "name:2:class", "name:zero:class:q", "name:-1:class:q", "n:1:c:q:noequals"} {
		if _, err := ParseEntry(bad); err == nil {
			t.Errorf("ParseEntry(%q) did not fail", bad)
		}
	}
}

func TestMixPickRespectsWeights(t *testing.T) {
	m := Mix{
		{Name: "heavy", Weight: 9},
		{Name: "light", Weight: 1},
	}
	r := rand.New(rand.NewSource(42))
	counts := [2]int{}
	const n = 10000
	for i := 0; i < n; i++ {
		counts[m.pick(r)]++
	}
	if frac := float64(counts[0]) / n; frac < 0.85 || frac > 0.95 {
		t.Errorf("heavy entry picked %.3f of the time, want ~0.9", frac)
	}
	single := Mix{{Name: "only"}}
	for i := 0; i < 10; i++ {
		if single.pick(r) != 0 {
			t.Fatal("single-entry mix must always pick 0")
		}
	}
}

func TestDefaultMixesCoverCostSpectrum(t *testing.T) {
	for _, name := range []string{"hospital", "adex", "fig7"} {
		m, err := MixFor(name)
		if err != nil {
			t.Fatalf("MixFor(%s): %v", name, err)
		}
		if len(m) < 3 {
			t.Errorf("%s mix has %d entries, want >= 3", name, len(m))
		}
	}
	if _, err := MixFor("nope"); err == nil {
		t.Error("MixFor(nope) did not fail")
	}
}

// statusTarget answers each request with the next status in a fixed
// cycle.
type statusTarget struct {
	statuses []int
	i        atomic.Uint64
}

func (s *statusTarget) Query(class, query string, params map[string]string, timeout time.Duration) (int, error) {
	n := s.i.Add(1) - 1
	return s.statuses[int(n)%len(s.statuses)], nil
}

func TestRunClosedAccounting(t *testing.T) {
	target := &statusTarget{statuses: []int{200, 200, 429, 504, 400}}
	res, err := Run(context.Background(), target, Config{
		Mix:           Mix{{Name: "a", Weight: 1}, {Name: "b", Weight: 1}},
		Duration:      50 * time.Millisecond,
		Concurrency:   4,
		RejectBackoff: -1, // spin: the stub target is free, so no starvation
		Timeout:       time.Second,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Mode != "" && res.Mode != "closed" {
		t.Errorf("mode = %q", res.Mode)
	}
	sum := res.OK + res.BadRequests + res.Rejected + res.Internal + res.Timeouts + res.TransportErrors + res.Other
	if sum != res.Requests || res.Requests == 0 {
		t.Errorf("outcome sum %d != requests %d", sum, res.Requests)
	}
	if res.OK == 0 || res.Rejected == 0 || res.Timeouts == 0 || res.BadRequests == 0 {
		t.Errorf("cycle outcomes missing: %+v", res)
	}
	var perClass uint64
	for _, c := range res.PerClass {
		perClass += c.Requests
	}
	if perClass != res.Requests {
		t.Errorf("per-class requests %d != total %d", perClass, res.Requests)
	}
	if res.All.Count != res.Requests {
		t.Errorf("all-latency count %d != requests %d", res.All.Count, res.Requests)
	}
	if want := res.Requests - res.Rejected; res.Admitted.Count != want {
		t.Errorf("admitted-latency count %d, want %d", res.Admitted.Count, want)
	}
}

// blockingTarget parks every request until the run's context would end,
// so the open loop's outstanding cap fills immediately.
type blockingTarget struct{ release chan struct{} }

func (b *blockingTarget) Query(class, query string, params map[string]string, timeout time.Duration) (int, error) {
	<-b.release
	return 200, nil
}

func TestRunOpenDropsAtOutstandingCap(t *testing.T) {
	target := &blockingTarget{release: make(chan struct{})}
	done := make(chan struct{})
	var res Result
	go func() {
		defer close(done)
		var err error
		res, err = Run(context.Background(), target, Config{
			Mix:            Mix{{Name: "a"}},
			Duration:       80 * time.Millisecond,
			RateRPS:        2000,
			MaxOutstanding: 4,
		})
		if err != nil {
			t.Errorf("Run: %v", err)
		}
	}()
	time.Sleep(120 * time.Millisecond)
	close(target.release)
	<-done
	if res.Mode != "" && res.Mode != "open" {
		t.Errorf("mode = %q", res.Mode)
	}
	if res.Requests != 4 {
		t.Errorf("issued %d requests, want exactly the cap (4)", res.Requests)
	}
	if res.Dropped == 0 {
		t.Errorf("no arrivals dropped at the cap (requests=%d)", res.Requests)
	}
}

func TestRunEmptyMix(t *testing.T) {
	if _, err := Run(context.Background(), &statusTarget{statuses: []int{200}}, Config{}); err == nil {
		t.Error("empty mix did not error")
	}
}

// newHospitalServer is the in-process serving stack the load smoke
// drives: nurse policy, generated ward document, tight admission limit.
func newHospitalServer(t *testing.T, cfg serve.Config) *serve.Server {
	t.Helper()
	spec := dtds.NurseSpec()
	reg := policy.NewRegistryWithConfig(spec.D, 0, core.Config{})
	if _, err := reg.DefineSpec("nurse", spec); err != nil {
		t.Fatalf("DefineSpec: %v", err)
	}
	doc := xmlgen.Generate(spec.D, xmlgen.Config{
		Seed:      7,
		MinRepeat: 4,
		MaxRepeat: 6,
		Value: func(r *rand.Rand, label string) string {
			if label == "wardNo" {
				return fmt.Sprintf("%d", r.Intn(4))
			}
			return fmt.Sprintf("%s-%d", label, r.Intn(1000))
		},
	})
	return serve.New(reg, doc, cfg)
}

// TestHospitalSaturationSmoke is the satellite acceptance check in
// miniature: drive the hospital scenario with more closed-loop workers
// than the admission limit and verify overload behaves — rejections
// happen, admitted queries answer, and their latency stays under the
// deadline with no violations past the polling grace.
func TestHospitalSaturationSmoke(t *testing.T) {
	const deadline = 250 * time.Millisecond
	srv := newHospitalServer(t, serve.Config{
		DefaultTimeout: deadline,
		MaxTimeout:     2 * deadline,
		MaxInFlight:    4,
	})
	res, err := Run(context.Background(), HandlerTarget{Handler: srv.Handler()}, Config{
		Mix:         HospitalMix(),
		Duration:    300 * time.Millisecond,
		Concurrency: 32,
		Timeout:     deadline,
		Seed:        1,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.OK == 0 {
		t.Fatalf("no queries answered: %+v", res)
	}
	if res.Rejected == 0 {
		t.Fatalf("32 workers against MaxInFlight=4 produced no 429s: %+v", res)
	}
	if res.BadRequests != 0 || res.Internal != 0 || res.TransportErrors != 0 {
		t.Errorf("unexpected failures: 400=%d 500=%d transport=%d", res.BadRequests, res.Internal, res.TransportErrors)
	}
	if res.Admitted.P99Us >= float64(deadline.Microseconds()) {
		t.Errorf("admitted p99 %.0fus not under the %v deadline", res.Admitted.P99Us, deadline)
	}
	// Client-observed wall time includes goroutine scheduling delay,
	// which on a small-GOMAXPROCS machine can push a handful of fast
	// 200s past deadline+grace; demand that stays a thin tail, not a
	// pattern.
	if limit := res.Admitted.Count / 50; res.DeadlineViolations > limit {
		t.Errorf("%d of %d admitted requests exceeded deadline+grace (limit %d)",
			res.DeadlineViolations, res.Admitted.Count, limit)
	}
	// The server's own accounting must agree on the status classes.
	st := srv.Stats().Server
	if st.Rejected != res.Rejected {
		t.Errorf("server counted %d rejections, client saw %d", st.Rejected, res.Rejected)
	}
	if st.OK != res.OK {
		t.Errorf("server counted %d oks, client saw %d", st.OK, res.OK)
	}
}

func TestZipfMixSkewsWeights(t *testing.T) {
	base := HospitalMix()
	z := ZipfMix(base, 1.2)
	if len(z) != len(base) {
		t.Fatalf("ZipfMix changed entry count: %d != %d", len(z), len(base))
	}
	for i := range z {
		if z[i].Name != base[i].Name || z[i].Class != base[i].Class || z[i].Query != base[i].Query {
			t.Errorf("entry %d identity changed: %+v", i, z[i])
		}
		if z[i].Weight < 1 {
			t.Errorf("entry %d weight %d < 1", i, z[i].Weight)
		}
		if i > 0 && z[i].Weight > z[i-1].Weight {
			t.Errorf("weights not nonincreasing at %d: %d > %d", i, z[i].Weight, z[i-1].Weight)
		}
	}
	if z[0].Weight <= z[len(z)-1].Weight {
		t.Errorf("no skew: head weight %d, tail weight %d", z[0].Weight, z[len(z)-1].Weight)
	}
	// The head entry must dominate: with s=1.2 it should carry several
	// times the traffic share of any tail entry.
	if z[0].Weight < 4*z[len(z)-1].Weight {
		t.Errorf("head weight %d not >= 4x tail weight %d", z[0].Weight, z[len(z)-1].Weight)
	}
	// s <= 0 is the identity.
	same := ZipfMix(base, 0)
	for i := range same {
		if same[i].Weight != base[i].Weight {
			t.Fatalf("ZipfMix(0) changed weight at %d", i)
		}
	}
}
