// Package xpath implements the XPath fragment C of "Secure XML Querying
// with Security Views" (SIGMOD 2004), Section 2:
//
//	p ::= ε | l | * | p/p | //p | p ∪ p | p[q]
//	q ::= p | p = c | q ∧ q | q ∨ q | ¬q
//
// plus the special empty query ∅ (returns no nodes over every tree), the
// constant parameters of access specifications ($wardNo), and — solely for
// the naive baseline of the paper's Section 6 — attribute-equality
// qualifiers [@name="value"].
//
// The package provides the AST, a parser for a conventional XPath-style
// concrete syntax ('.', names, '*', '/', '//', '|', '[...]', 'and', 'or',
// 'not(...)'), a printer whose output re-parses to an equal AST, a
// set-semantics evaluator over xmltree documents, algebraic
// simplification, and the C⁻ conjunctive-fragment check used by the
// optimizer.
package xpath

// Path is a node of the query AST for the fragment C.
type Path interface {
	isPath()
}

// Empty is the special query ∅: it returns the empty set over all trees.
// ∅ ∪ p ≡ p and p/∅/p' ≡ ∅.
type Empty struct{}

// Self is the empty path ε: it returns the context node.
type Self struct{}

// Label is a single child-axis step selecting children labeled Name. The
// pseudo-label "#text" (written text() in the concrete syntax) selects
// text children.
type Label struct {
	Name string
}

// Wildcard is the child-axis step '*' selecting all element children.
type Wildcard struct{}

// Seq is the composition p1/p2.
type Seq struct {
	Left, Right Path
}

// Descend is //p: p evaluated at the context node and every descendant
// (descendant-or-self axis followed by p).
type Descend struct {
	Sub Path
}

// Union is p1 ∪ p2 (written p1 | p2).
type Union struct {
	Left, Right Path
}

// Qualified is p[q]: the nodes selected by p at which q holds.
type Qualified struct {
	Sub  Path
	Cond Qual
}

func (Empty) isPath()     {}
func (Self) isPath()      {}
func (Label) isPath()     {}
func (Wildcard) isPath()  {}
func (Seq) isPath()       {}
func (Descend) isPath()   {}
func (Union) isPath()     {}
func (Qualified) isPath() {}

// Qual is a node of the qualifier AST.
type Qual interface {
	isQual()
}

// QPath is the atomic qualifier [p]: true iff v⟦p⟧ is nonempty.
type QPath struct {
	Path Path
}

// QEq is the comparison [p = c]: true iff v⟦p⟧ contains a node whose
// string value equals the constant. When Var is nonempty the constant is
// a specification parameter ($name) that must be bound before evaluation.
type QEq struct {
	Path  Path
	Value string
	Var   string
}

// QAnd is the conjunction q1 ∧ q2.
type QAnd struct {
	Left, Right Qual
}

// QOr is the disjunction q1 ∨ q2.
type QOr struct {
	Left, Right Qual
}

// QNot is the negation ¬q.
type QNot struct {
	Sub Qual
}

// QTrue is the constant-true qualifier, produced by the optimizer when a
// DTD constraint proves a qualifier always holds.
type QTrue struct{}

// QFalse is the constant-false qualifier.
type QFalse struct{}

// QAttrEq is the attribute test [@Name = Value]. The naive baseline uses
// it for [@accessibility="1"]; with the attribute extension of package
// dtd it is also a user-visible view qualifier.
type QAttrEq struct {
	Name, Value string
}

// QAttrHas is the attribute presence test [@Name].
type QAttrHas struct {
	Name string
}

func (QPath) isQual()    {}
func (QEq) isQual()      {}
func (QAnd) isQual()     {}
func (QOr) isQual()      {}
func (QNot) isQual()     {}
func (QTrue) isQual()    {}
func (QFalse) isQual()   {}
func (QAttrEq) isQual()  {}
func (QAttrHas) isQual() {}

// TextName is the pseudo-label selecting text nodes.
const TextName = "#text"

// Convenience constructors used pervasively by the view-derivation,
// rewriting, and optimization algorithms.

// L returns a single label step.
func L(name string) Path { return Label{Name: name} }

// SeqOf chains steps left to right: SeqOf(a,b,c) = a/b/c. It applies the
// ∅ and ε laws, so SeqOf never builds dead or redundant compositions.
func SeqOf(parts ...Path) Path {
	var out Path = Self{}
	for _, p := range parts {
		out = MakeSeq(out, p)
	}
	return out
}

// MakeSeq composes p1/p2 applying the ∅ and ε laws.
func MakeSeq(p1, p2 Path) Path {
	if IsEmpty(p1) || IsEmpty(p2) {
		return Empty{}
	}
	if _, ok := p1.(Self); ok {
		return p2
	}
	if _, ok := p2.(Self); ok {
		return p1
	}
	// Left-associate so composed paths read a/b/c rather than a/(b/c).
	if s, ok := p2.(Seq); ok {
		return Seq{Left: MakeSeq(p1, s.Left), Right: s.Right}
	}
	// p/(.[q]) ≡ p[q].
	if q, ok := p2.(Qualified); ok {
		if _, self := q.Sub.(Self); self {
			return MakeQualified(p1, q.Cond)
		}
	}
	return Seq{Left: p1, Right: p2}
}

// MakeUnion builds p1 ∪ p2 applying the ∅ laws and dropping a duplicate
// operand.
func MakeUnion(p1, p2 Path) Path {
	if IsEmpty(p1) {
		return p2
	}
	if IsEmpty(p2) {
		return p1
	}
	if Equal(p1, p2) {
		return p1
	}
	return Union{Left: p1, Right: p2}
}

// UnionOf folds MakeUnion over the operands; it returns ∅ for no
// operands.
func UnionOf(parts ...Path) Path {
	var out Path = Empty{}
	for _, p := range parts {
		out = MakeUnion(out, p)
	}
	return out
}

// MakeQualified builds p[q] applying the QTrue/QFalse and ∅ laws.
func MakeQualified(p Path, q Qual) Path {
	if IsEmpty(p) {
		return Empty{}
	}
	switch q.(type) {
	case QTrue:
		return p
	case QFalse:
		return Empty{}
	}
	return Qualified{Sub: p, Cond: q}
}

// MakeDescend builds //p applying the ∅ law.
func MakeDescend(p Path) Path {
	if IsEmpty(p) {
		return Empty{}
	}
	return Descend{Sub: p}
}

// MakeAnd builds q1 ∧ q2 applying the constant laws.
func MakeAnd(q1, q2 Qual) Qual {
	if _, ok := q1.(QFalse); ok {
		return QFalse{}
	}
	if _, ok := q2.(QFalse); ok {
		return QFalse{}
	}
	if _, ok := q1.(QTrue); ok {
		return q2
	}
	if _, ok := q2.(QTrue); ok {
		return q1
	}
	return QAnd{Left: q1, Right: q2}
}

// MakeOr builds q1 ∨ q2 applying the constant laws.
func MakeOr(q1, q2 Qual) Qual {
	if _, ok := q1.(QTrue); ok {
		return QTrue{}
	}
	if _, ok := q2.(QTrue); ok {
		return QTrue{}
	}
	if _, ok := q1.(QFalse); ok {
		return q2
	}
	if _, ok := q2.(QFalse); ok {
		return q1
	}
	return QOr{Left: q1, Right: q2}
}

// MakeNot builds ¬q applying the constant laws and double-negation
// elimination.
func MakeNot(q Qual) Qual {
	switch q := q.(type) {
	case QTrue:
		return QFalse{}
	case QFalse:
		return QTrue{}
	case QNot:
		return q.Sub
	}
	return QNot{Sub: q}
}

// IsEmpty reports whether the path is the ∅ query (syntactically).
func IsEmpty(p Path) bool {
	_, ok := p.(Empty)
	return ok
}
