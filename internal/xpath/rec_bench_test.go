package xpath

import (
	"testing"

	"repro/internal/xmltree"
)

// recBenchDoc builds a deep recursive document — a chain of `a` nodes,
// each carrying a few `b` leaves — so the Rec product search visits
// many (node, state) pairs per evaluation.
func recBenchDoc(depth, leaves int) *xmltree.Node {
	root := xmltree.NewElement("r")
	cur := root
	for i := 0; i < depth; i++ {
		a := xmltree.NewElement("a")
		for j := 0; j < leaves; j++ {
			a.AppendChild(xmltree.NewElement("b"))
		}
		cur.AppendChild(a)
		cur = a
	}
	return root
}

func recBenchPlan() Rec {
	g := NewRecGraph(map[string][]RecEdge{
		"a": {
			{To: "a", Sig: Label{Name: "a"}},
			{To: "b", Sig: Label{Name: "b"}},
		},
		"b": nil,
	})
	return Rec{G: g, Start: "a", Accept: "b", ResultLabel: "b"}
}

// BenchmarkRecEval is the allocation regression benchmark for the
// recursive-view product evaluation: the map leg exercises evalRec's
// pooled, pre-sized visited map on a hand-built (uncompacted) tree, and
// the bitset leg exercises bitEval.evalRec's per-state rows on the
// compacted equivalent. Steady-state allocs/op on both legs must not
// regress — see `make bench-smoke`.
func BenchmarkRecEval(b *testing.B) {
	plan := Seq{Left: Label{Name: "a"}, Right: recBenchPlan()}

	b.Run("map", func(b *testing.B) {
		doc := xmltree.NewDocument(recBenchDoc(200, 3))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := EvalDocErr(plan, doc)
			if err != nil {
				b.Fatal(err)
			}
			if len(out) != 200*3 {
				b.Fatalf("got %d nodes, want %d", len(out), 200*3)
			}
		}
	})

	b.Run("bitset", func(b *testing.B) {
		doc := xmltree.NewDocument(recBenchDoc(200, 3))
		doc.Compact()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := EvalDocErr(plan, doc)
			if err != nil {
				b.Fatal(err)
			}
			if len(out) != 200*3 {
				b.Fatalf("got %d nodes, want %d", len(out), 200*3)
			}
		}
	})
}
