package xpath

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestParseBasics(t *testing.T) {
	cases := []struct {
		src  string
		want Path
	}{
		{".", Self{}},
		{"*", Wildcard{}},
		{"∅", Empty{}},
		{"dept", Label{Name: "dept"}},
		{"r-e.warranty", Label{Name: "r-e.warranty"}},
		{"text()", Label{Name: TextName}},
		{"a/b", Seq{Left: Label{Name: "a"}, Right: Label{Name: "b"}}},
		{"/a/b", Seq{Left: Label{Name: "a"}, Right: Label{Name: "b"}}},
		{"//a", Descend{Sub: Label{Name: "a"}}},
		{"a//b", Seq{Left: Label{Name: "a"}, Right: Descend{Sub: Label{Name: "b"}}}},
		{"a | b", Union{Left: Label{Name: "a"}, Right: Label{Name: "b"}}},
		{"(a | b)/c", Seq{Left: Union{Left: Label{Name: "a"}, Right: Label{Name: "b"}}, Right: Label{Name: "c"}}},
		{"a[b]", Qualified{Sub: Label{Name: "a"}, Cond: QPath{Path: Label{Name: "b"}}}},
		{"a[b and c]", Qualified{Sub: Label{Name: "a"}, Cond: QAnd{Left: QPath{Path: Label{Name: "b"}}, Right: QPath{Path: Label{Name: "c"}}}}},
		{"a[b or not(c)]", Qualified{Sub: Label{Name: "a"}, Cond: QOr{Left: QPath{Path: Label{Name: "b"}}, Right: QNot{Sub: QPath{Path: Label{Name: "c"}}}}}},
		{`a[b = "6"]`, Qualified{Sub: Label{Name: "a"}, Cond: QEq{Path: Label{Name: "b"}, Value: "6"}}},
		{`a[b = '6']`, Qualified{Sub: Label{Name: "a"}, Cond: QEq{Path: Label{Name: "b"}, Value: "6"}}},
		{"a[b = $wardNo]", Qualified{Sub: Label{Name: "a"}, Cond: QEq{Path: Label{Name: "b"}, Var: "wardNo"}}},
		{`a[@accessibility = "1"]`, Qualified{Sub: Label{Name: "a"}, Cond: QAttrEq{Name: "accessibility", Value: "1"}}},
		{"a[true()]", Qualified{Sub: Label{Name: "a"}, Cond: QTrue{}}},
		{"a[false()]", Qualified{Sub: Label{Name: "a"}, Cond: QFalse{}}},
		{"a[.[b]]", Qualified{Sub: Label{Name: "a"}, Cond: QPath{Path: Qualified{Sub: Self{}, Cond: QPath{Path: Label{Name: "b"}}}}}},
	}
	for _, tc := range cases {
		got, err := Parse(tc.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.src, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Parse(%q) = %#v, want %#v", tc.src, got, tc.want)
		}
	}
}

func TestParsePaperQueries(t *testing.T) {
	// Every query that appears in the paper must parse.
	queries := []string{
		"//dept//patientInfo/patient/name",
		"//dept/patientInfo/patient/name",
		"dept[*/patient/wardNo = $wardNo]",
		"(clinicalTrial | .)/patientInfo",
		"//patient//bill",
		"//b",
		"a[b and c]",
		"(a | b)/c",
		"a[b]/*/d/*/g",
		"a[b]/(b | c)/d/(e | f)/g",
		"a[b]/b/d/e/g | a/b/d/f/g",
		"//patient | //(patient | staff)[//medication]",
		"//buyer-info/contact-info",
		"//house/r-e.warranty | //apartment/r-e.warranty",
		"//buyer-info[//company-id and //contact-info]",
		"//house[//r-e.asking-price and //r-e.unit-type]",
		"/adex/head/buyer-info/contact-info",
		`//buyer-info//contact-info[@accessibility = "1"]`,
	}
	for _, q := range queries {
		if _, err := Parse(q); err != nil {
			t.Errorf("Parse(%q): %v", q, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"a/",
		"a[",
		"a[b",
		"a]",
		"a[b = ]",
		"(a",
		"a |",
		"//",
		"a b",
		"not(a)",
		"a[not b]",
		`a[b = "unterminated]`,
	} {
		if p, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) = %v, want error", src, String(p))
		}
	}
}

func TestPrintRoundTrip(t *testing.T) {
	queries := []string{
		".",
		"a/b/c",
		"//a//b",
		"(a | b)/c[d and e/f]",
		"a[b = \"x\" and not(c | d)]",
		"a[.[b] or c]",
		"∅ | a",
		"a/(b | c)//d",
		"*[*]",
		"text()",
		"a[@acc = \"1\"]",
		"a[b = $w]",
	}
	for _, src := range queries {
		p1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		out := String(p1)
		p2, err := Parse(out)
		if err != nil {
			t.Fatalf("reparse of %q (printed from %q): %v", out, src, err)
		}
		if !Equal(p1, p2) {
			t.Errorf("round trip changed %q: printed %q, reparsed %q", src, out, String(p2))
		}
	}
}

// randPath generates a random path AST of bounded depth for the
// round-trip property test.
func randPath(r *rand.Rand, depth int) Path {
	names := []string{"a", "b", "c", "dept", "x-y.z"}
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return Self{}
		case 1:
			return Wildcard{}
		case 2:
			return Label{Name: names[r.Intn(len(names))]}
		default:
			return Label{Name: TextName}
		}
	}
	switch r.Intn(6) {
	case 0:
		return Seq{Left: randPath(r, depth-1), Right: randPath(r, depth-1)}
	case 1:
		return Descend{Sub: randPath(r, depth-1)}
	case 2:
		return Union{Left: randPath(r, depth-1), Right: randPath(r, depth-1)}
	case 3:
		return Qualified{Sub: randPath(r, depth-1), Cond: randQual(r, depth-1)}
	default:
		return randPath(r, 0)
	}
}

func randQual(r *rand.Rand, depth int) Qual {
	if depth <= 0 {
		switch r.Intn(3) {
		case 0:
			return QPath{Path: randPath(r, 0)}
		case 1:
			return QEq{Path: randPath(r, 0), Value: "v"}
		default:
			return QAttrEq{Name: "acc", Value: "1"}
		}
	}
	switch r.Intn(4) {
	case 0:
		return QAnd{Left: randQual(r, depth-1), Right: randQual(r, depth-1)}
	case 1:
		return QOr{Left: randQual(r, depth-1), Right: randQual(r, depth-1)}
	case 2:
		return QNot{Sub: randQual(r, depth-1)}
	default:
		return QPath{Path: randPath(r, depth-1)}
	}
}

// TestPrintParsePropery: for random ASTs, Parse(String(p)) == p.
func TestPrintParseProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randPath(r, 4)
		src := String(p)
		p2, err := Parse(src)
		if err != nil {
			t.Logf("seed %d: Parse(%q): %v", seed, src, err)
			return false
		}
		if !Equal(p, p2) {
			t.Logf("seed %d: %q reparsed as %q", seed, src, String(p2))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestParseQual(t *testing.T) {
	q, err := ParseQual("a and b = \"1\"")
	if err != nil {
		t.Fatalf("ParseQual: %v", err)
	}
	want := QAnd{Left: QPath{Path: Label{Name: "a"}}, Right: QEq{Path: Label{Name: "b"}, Value: "1"}}
	if !QualEqual(q, want) {
		t.Errorf("ParseQual = %s", QualString(q))
	}
	if _, err := ParseQual("a and"); err == nil {
		t.Errorf("ParseQual accepted dangling and")
	}
}

func TestKeywordNamesAreLabels(t *testing.T) {
	// Names that start with keywords must still parse as labels.
	p := MustParse("android/order")
	want := Seq{Left: Label{Name: "android"}, Right: Label{Name: "order"}}
	if !Equal(p, want) {
		t.Errorf("got %s", String(p))
	}
	q := MustParseQual("android and order")
	wantQ := QAnd{Left: QPath{Path: Label{Name: "android"}}, Right: QPath{Path: Label{Name: "order"}}}
	if !QualEqual(q, wantQ) {
		t.Errorf("got %s", QualString(q))
	}
}
