package xpath_test

// Cancellation suite: evaluation under a done context must return the
// context's error promptly — even mid-descent on a large document — and
// the parallel evaluator must drain its worker pool so no goroutine
// outlives the call.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// chainDoc builds a deep document: a spine of n s-elements, each also
// carrying a leaf child. Chained //* queries over it are superlinear,
// which makes evaluation slow enough to cancel mid-flight.
func chainDoc(n int) *xmltree.Document {
	root := xmltree.NewElement("s")
	cur := root
	for i := 0; i < n; i++ {
		leaf := xmltree.NewText(fmt.Sprintf("v%d", i))
		l := xmltree.NewElement("leaf")
		l.AppendChild(leaf)
		cur.AppendChild(l)
		next := xmltree.NewElement("s")
		cur.AppendChild(next)
		cur = next
	}
	return xmltree.NewDocument(root)
}

// slowQuery is expensive over chainDoc: each //* step re-walks every
// subtree of the spine.
func slowQuery(t *testing.T) xpath.Path {
	t.Helper()
	p, err := xpath.Parse("//*[//leaf]//*[//leaf]//leaf")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return p
}

// sequentialBudget asserts the evaluation took well under 100ms — the
// promptness bound from the serving layer's point of view.
func assertPrompt(t *testing.T, elapsed time.Duration) {
	t.Helper()
	if elapsed >= 100*time.Millisecond {
		t.Errorf("cancelled evaluation took %v, want well under 100ms", elapsed)
	}
}

func TestEvalDocCtxDeadlinePrompt(t *testing.T) {
	doc := chainDoc(1500)
	p := slowQuery(t)

	// Sanity: uncancelled evaluation is genuinely slow (otherwise the
	// promptness assertion below proves nothing).
	start := time.Now()
	if _, err := xpath.EvalDocCtx(nil, p, doc); err != nil {
		t.Fatalf("uncancelled eval: %v", err)
	}
	full := time.Since(start)
	if full < 5*time.Millisecond {
		t.Skipf("document too fast to test cancellation meaningfully (%v)", full)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start = time.Now()
	_, err := xpath.EvalDocCtx(ctx, p, doc)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	assertPrompt(t, elapsed)
}

func TestEvalDocCtxAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := xpath.EvalDocCtx(ctx, xpath.MustParse("//leaf"), chainDoc(5))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Errorf("cancelled eval returned %d nodes", len(res))
	}
}

func TestEvalDocParallelCtxCancelMidFlight(t *testing.T) {
	doc := chainDoc(1500)
	p := slowQuery(t)
	cfg := xpath.ParallelConfig{Workers: 4, Threshold: 64}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	var stats xpath.ParallelStats
	start := time.Now()
	_, err := xpath.EvalDocParallelCtx(ctx, p, doc, cfg, &stats)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	assertPrompt(t, elapsed)
}

// TestEvalDocParallelCtxNoGoroutineLeak: repeated cancelled parallel
// evaluations must not leave workers behind — EvalDocParallelCtx drains
// its pool before returning.
func TestEvalDocParallelCtxNoGoroutineLeak(t *testing.T) {
	doc := chainDoc(800)
	p := slowQuery(t)
	cfg := xpath.ParallelConfig{Workers: 8, Threshold: 32}

	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		_, err := xpath.EvalDocParallelCtx(ctx, p, doc, cfg, nil)
		cancel()
		if err != nil && !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("iteration %d: unexpected error %v", i, err)
		}
	}
	// Give any stragglers a moment to exit before counting, then allow a
	// small delta for runtime background goroutines.
	time.Sleep(50 * time.Millisecond)
	after := runtime.NumGoroutine()
	if after > before+2 {
		t.Errorf("goroutines grew from %d to %d across 20 cancelled parallel evals", before, after)
	}
}

// TestEvalDocParallelCtxCompletesUncancelled: a context that never fires
// must not perturb results.
func TestEvalDocParallelCtxCompletesUncancelled(t *testing.T) {
	doc := chainDoc(300)
	p := slowQuery(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	want, err := xpath.EvalDocErr(p, doc)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	got, err := xpath.EvalDocParallelCtx(ctx, p, doc, xpath.ParallelConfig{Workers: 4, Threshold: 64}, nil)
	if err != nil {
		t.Fatalf("parallel with live context: %v", err)
	}
	if len(got) != len(want) {
		t.Errorf("context-carrying eval changed the answer: %d vs %d nodes", len(got), len(want))
	}
}

// TestEvalIndexedCtxDeadlinePrompt: the indexed evaluator honors the
// same cancellation-promptness contract as the walk evaluator — a
// 1ms deadline cuts a multi-hundred-ms evaluation off within the
// serving layer's 100ms promptness bound.
func TestEvalIndexedCtxDeadlinePrompt(t *testing.T) {
	doc := chainDoc(1500)
	p := slowQuery(t)
	idx := xpath.NewIndex(doc)

	start := time.Now()
	if _, err := xpath.EvalIndexedErr(p, idx); err != nil {
		t.Fatalf("uncancelled indexed eval: %v", err)
	}
	full := time.Since(start)
	if full < 5*time.Millisecond {
		t.Skipf("document too fast to test cancellation meaningfully (%v)", full)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start = time.Now()
	_, err := xpath.EvalIndexedCtx(ctx, p, idx)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	assertPrompt(t, elapsed)
}

func TestEvalIndexedCtxAlreadyCancelled(t *testing.T) {
	doc := chainDoc(5)
	idx := xpath.NewIndex(doc)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := xpath.EvalIndexedCtx(ctx, xpath.MustParse("//leaf"), idx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Errorf("cancelled indexed eval returned %d nodes", len(res))
	}
}

// TestEvalIndexedCtxCountedTicks: the counted form reports nonzero
// cooperation ticks for real work, like EvalDocCtxCounted.
func TestEvalIndexedCtxCountedTicks(t *testing.T) {
	doc := chainDoc(200)
	idx := xpath.NewIndex(doc)
	out, ticks, err := xpath.EvalIndexedCtxCounted(context.Background(), xpath.MustParse("//leaf"), idx)
	if err != nil {
		t.Fatalf("EvalIndexedCtxCounted: %v", err)
	}
	if len(out) != 200 {
		t.Fatalf("got %d leaves, want 200", len(out))
	}
	if ticks == 0 {
		t.Fatalf("ticks = 0, want nonzero nodes-visited proxy")
	}
}
