package xpath

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestSize(t *testing.T) {
	cases := []struct {
		src  string
		want int
	}{
		{".", 1},
		{"a/b", 3},
		{"//a", 2},
		{"a | b", 3},
		{"a[b]", 4}, // Qualified + Label a + QPath + Label b
	}
	for _, tc := range cases {
		if got := Size(MustParse(tc.src)); got != tc.want {
			t.Errorf("Size(%q) = %d, want %d", tc.src, got, tc.want)
		}
	}
}

func TestSubqueriesAscending(t *testing.T) {
	p := MustParse("a[b]/(c | d)")
	subs := Subqueries(p)
	if subs[len(subs)-1] != p {
		t.Errorf("last subquery is not p itself")
	}
	// Every sub-query must appear before any query containing it.
	index := make(map[Path]int)
	for i, s := range subs {
		index[s] = i
	}
	for i, s := range subs {
		switch s := s.(type) {
		case Seq:
			if index[s.Left] >= i || index[s.Right] >= i {
				t.Errorf("Seq children after parent at %d", i)
			}
		case Union:
			if index[s.Left] >= i || index[s.Right] >= i {
				t.Errorf("Union children after parent at %d", i)
			}
		case Qualified:
			if index[s.Sub] >= i {
				t.Errorf("Qualified child after parent at %d", i)
			}
		}
	}
	// a, b (inside qualifier), a[b], c, d, c|d, whole: 7 entries.
	if len(subs) != 7 {
		t.Errorf("Subqueries returned %d entries, want 7: %v", len(subs), subs)
	}
}

func TestLabels(t *testing.T) {
	p := MustParse("a[b = \"1\" and //c]/a/d")
	if got := Labels(p); !reflect.DeepEqual(got, []string{"a", "b", "c", "d"}) {
		t.Errorf("Labels = %v", got)
	}
}

func TestEqualDisequal(t *testing.T) {
	pairs := [][2]string{
		{"a/b", "a/c"},
		{"a", "//a"},
		{"a[b]", "a[c]"},
		{"a | b", "b | a"},
		{".", "*"},
		{"a[b = \"1\"]", "a[b = \"2\"]"},
	}
	for _, pr := range pairs {
		if Equal(MustParse(pr[0]), MustParse(pr[1])) {
			t.Errorf("Equal(%q, %q) = true", pr[0], pr[1])
		}
	}
	if !Equal(MustParse("a[b and c]/d"), MustParse("a[b and c]/d")) {
		t.Errorf("identical queries not equal")
	}
}

func TestSimplify(t *testing.T) {
	cases := []struct {
		in   Path
		want string
	}{
		{MakeUnion(Empty{}, L("a")), "a"},
		{Seq{Left: L("a"), Right: Empty{}}, "∅"},
		{Seq{Left: Self{}, Right: L("a")}, "a"},
		{Union{Left: L("a"), Right: L("a")}, "a"},
		{Descend{Sub: Empty{}}, "∅"},
		{Qualified{Sub: L("a"), Cond: QTrue{}}, "a"},
		{Qualified{Sub: L("a"), Cond: QFalse{}}, "∅"},
		{Qualified{Sub: L("a"), Cond: QNot{Sub: QNot{Sub: QPath{Path: L("b")}}}}, "a[b]"},
		{Qualified{Sub: L("a"), Cond: QPath{Path: Empty{}}}, "∅"},
		{Qualified{Sub: L("a"), Cond: QAnd{Left: QTrue{}, Right: QPath{Path: L("b")}}}, "a[b]"},
		{Qualified{Sub: L("a"), Cond: QOr{Left: QTrue{}, Right: QPath{Path: L("b")}}}, "a"},
		{Qualified{Sub: L("a"), Cond: QAnd{Left: QFalse{}, Right: QPath{Path: L("b")}}}, "∅"},
		{Qualified{Sub: L("a"), Cond: QPath{Path: Self{}}}, "a"},
		{Seq{Left: Union{Left: Empty{}, Right: L("a")}, Right: Qualified{Sub: L("b"), Cond: QTrue{}}}, "a/b"},
	}
	for _, tc := range cases {
		if got := String(Simplify(tc.in)); got != tc.want {
			t.Errorf("Simplify(%s) = %q, want %q", String(tc.in), got, tc.want)
		}
	}
}

// TestSimplifyPreservesSemantics: Simplify must not change evaluation
// results on a sample document, for random queries over its labels.
func TestSimplifyPreservesSemantics(t *testing.T) {
	doc := hospitalDoc()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randHospitalPath(r, 3)
		before := EvalDoc(p, doc)
		after := EvalDoc(Simplify(p), doc)
		if len(before) != len(after) {
			t.Logf("seed %d: %s -> %s: %d vs %d nodes", seed, String(p), String(Simplify(p)), len(before), len(after))
			return false
		}
		for i := range before {
			if before[i] != after[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// randHospitalPath builds random queries over hospital labels, including
// ∅ and constant qualifiers so the simplification laws are exercised.
func randHospitalPath(r *rand.Rand, depth int) Path {
	names := []string{"hospital", "dept", "patientInfo", "patient", "name", "wardNo", "treatment", "regular", "trial", "bill", "staffInfo"}
	if depth <= 0 {
		switch r.Intn(5) {
		case 0:
			return Self{}
		case 1:
			return Wildcard{}
		case 2:
			return Empty{}
		default:
			return Label{Name: names[r.Intn(len(names))]}
		}
	}
	switch r.Intn(7) {
	case 0:
		return Seq{Left: randHospitalPath(r, depth-1), Right: randHospitalPath(r, depth-1)}
	case 1:
		return Descend{Sub: randHospitalPath(r, depth-1)}
	case 2, 3:
		return Union{Left: randHospitalPath(r, depth-1), Right: randHospitalPath(r, depth-1)}
	case 4:
		var q Qual
		switch r.Intn(4) {
		case 0:
			q = QTrue{}
		case 1:
			q = QFalse{}
		case 2:
			q = QPath{Path: randHospitalPath(r, depth-1)}
		default:
			q = QNot{Sub: QPath{Path: randHospitalPath(r, depth-1)}}
		}
		return Qualified{Sub: randHospitalPath(r, depth-1), Cond: q}
	default:
		return randHospitalPath(r, 0)
	}
}

func TestInCMinus(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"//a/*/b", true},
		{"(a | b)/c", true},
		{"a[b and c]", true},
		{"a[b//c]", true},
		{"a[b or c]", false},
		{"a[not(b)]", false},
		{"a[b = \"1\"]", false},
		{"a[.[b and c]]", true},
	}
	for _, tc := range cases {
		if got := InCMinus(MustParse(tc.src)); got != tc.want {
			t.Errorf("InCMinus(%q) = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestMakeHelpers(t *testing.T) {
	if got := String(SeqOf(L("a"), L("b"), L("c"))); got != "a/b/c" {
		t.Errorf("SeqOf = %q", got)
	}
	if got := String(UnionOf()); got != "∅" {
		t.Errorf("UnionOf() = %q", got)
	}
	if got := String(UnionOf(L("a"), Empty{}, L("b"))); got != "a | b" {
		t.Errorf("UnionOf = %q", got)
	}
	if got := String(MakeDescend(L("a"))); got != "//a" {
		t.Errorf("MakeDescend = %q", got)
	}
	if q := MakeNot(MakeNot(QPath{Path: L("a")})); !QualEqual(q, QPath{Path: L("a")}) {
		t.Errorf("double negation not eliminated")
	}
}
