package xpath

import "fmt"

// Equal reports structural equality of two paths.
func Equal(p1, p2 Path) bool {
	switch a := p1.(type) {
	case Empty:
		_, ok := p2.(Empty)
		return ok
	case Self:
		_, ok := p2.(Self)
		return ok
	case Wildcard:
		_, ok := p2.(Wildcard)
		return ok
	case Label:
		b, ok := p2.(Label)
		return ok && a.Name == b.Name
	case Seq:
		b, ok := p2.(Seq)
		return ok && Equal(a.Left, b.Left) && Equal(a.Right, b.Right)
	case Descend:
		b, ok := p2.(Descend)
		return ok && Equal(a.Sub, b.Sub)
	case Union:
		b, ok := p2.(Union)
		return ok && Equal(a.Left, b.Left) && Equal(a.Right, b.Right)
	case Qualified:
		b, ok := p2.(Qualified)
		return ok && Equal(a.Sub, b.Sub) && QualEqual(a.Cond, b.Cond)
	case Rec:
		b, ok := p2.(Rec)
		return ok && a.Start == b.Start && a.Accept == b.Accept &&
			a.ResultLabel == b.ResultLabel && a.G.equal(b.G)
	default:
		return false
	}
}

// QualEqual reports structural equality of two qualifiers.
func QualEqual(q1, q2 Qual) bool {
	switch a := q1.(type) {
	case QTrue:
		_, ok := q2.(QTrue)
		return ok
	case QFalse:
		_, ok := q2.(QFalse)
		return ok
	case QPath:
		b, ok := q2.(QPath)
		return ok && Equal(a.Path, b.Path)
	case QEq:
		b, ok := q2.(QEq)
		return ok && Equal(a.Path, b.Path) && a.Value == b.Value && a.Var == b.Var
	case QAttrEq:
		b, ok := q2.(QAttrEq)
		return ok && a.Name == b.Name && a.Value == b.Value
	case QAttrHas:
		b, ok := q2.(QAttrHas)
		return ok && a.Name == b.Name
	case QAnd:
		b, ok := q2.(QAnd)
		return ok && QualEqual(a.Left, b.Left) && QualEqual(a.Right, b.Right)
	case QOr:
		b, ok := q2.(QOr)
		return ok && QualEqual(a.Left, b.Left) && QualEqual(a.Right, b.Right)
	case QNot:
		b, ok := q2.(QNot)
		return ok && QualEqual(a.Sub, b.Sub)
	default:
		return false
	}
}

// Size returns the number of AST nodes of the path, including qualifier
// nodes (the paper's |p|).
func Size(p Path) int {
	switch p := p.(type) {
	case Empty, Self, Label, Wildcard:
		return 1
	case Seq:
		return 1 + Size(p.Left) + Size(p.Right)
	case Descend:
		return 1 + Size(p.Sub)
	case Union:
		return 1 + Size(p.Left) + Size(p.Right)
	case Qualified:
		return 1 + Size(p.Sub) + QualSize(p.Cond)
	case Rec:
		// One node plus the transition system's weight. The graph is
		// shared between a plan's Rec nodes, so summing it per occurrence
		// over-counts memory, but the total stays independent of document
		// height — which is the property plan-size accounting must keep.
		return 1 + p.G.Size()
	default:
		return 1
	}
}

// QualSize returns the number of AST nodes of a qualifier.
func QualSize(q Qual) int {
	switch q := q.(type) {
	case QTrue, QFalse, QAttrEq, QAttrHas:
		return 1
	case QPath:
		return 1 + Size(q.Path)
	case QEq:
		return 1 + Size(q.Path)
	case QAnd:
		return 1 + QualSize(q.Left) + QualSize(q.Right)
	case QOr:
		return 1 + QualSize(q.Left) + QualSize(q.Right)
	case QNot:
		return 1 + QualSize(q.Sub)
	default:
		return 1
	}
}

// Subqueries returns all sub-paths of p in ascending order: every
// sub-query precedes the queries containing it, with p itself last. Paths
// nested inside qualifiers are included. This is the list Q of the
// paper's Algorithm rewrite (Fig. 6).
func Subqueries(p Path) []Path {
	var out []Path
	var walkPath func(Path)
	var walkQual func(Qual)
	walkPath = func(p Path) {
		switch p := p.(type) {
		case Seq:
			walkPath(p.Left)
			walkPath(p.Right)
		case Descend:
			walkPath(p.Sub)
		case Union:
			walkPath(p.Left)
			walkPath(p.Right)
		case Qualified:
			walkPath(p.Sub)
			walkQual(p.Cond)
		}
		out = append(out, p)
	}
	walkQual = func(q Qual) {
		switch q := q.(type) {
		case QPath:
			walkPath(q.Path)
		case QEq:
			walkPath(q.Path)
		case QAnd:
			walkQual(q.Left)
			walkQual(q.Right)
		case QOr:
			walkQual(q.Left)
			walkQual(q.Right)
		case QNot:
			walkQual(q.Sub)
		}
	}
	walkPath(p)
	return out
}

// Labels returns the distinct element-type names mentioned by the query
// (including inside qualifiers), in first-occurrence order.
func Labels(p Path) []string {
	var out []string
	seen := make(map[string]bool)
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	var walkPath func(Path)
	var walkQual func(Qual)
	walkPath = func(p Path) {
		switch p := p.(type) {
		case Label:
			add(p.Name)
		case Seq:
			walkPath(p.Left)
			walkPath(p.Right)
		case Descend:
			walkPath(p.Sub)
		case Union:
			walkPath(p.Left)
			walkPath(p.Right)
		case Qualified:
			walkPath(p.Sub)
			walkQual(p.Cond)
		case Rec:
			for _, s := range p.G.States() {
				for _, e := range p.G.EdgesFrom(s) {
					walkPath(e.Sig)
				}
			}
		}
	}
	walkQual = func(q Qual) {
		switch q := q.(type) {
		case QPath:
			walkPath(q.Path)
		case QEq:
			walkPath(q.Path)
		case QAnd:
			walkQual(q.Left)
			walkQual(q.Right)
		case QOr:
			walkQual(q.Left)
			walkQual(q.Right)
		case QNot:
			walkQual(q.Sub)
		}
	}
	walkPath(p)
	return out
}

// BindVars substitutes specification parameters ($name) with the values
// in env, returning a variable-free query. It fails when a variable has
// no binding.
func BindVars(p Path, env map[string]string) (Path, error) {
	switch p := p.(type) {
	case Empty, Self, Label, Wildcard:
		return p, nil
	case Seq:
		l, err := BindVars(p.Left, env)
		if err != nil {
			return nil, err
		}
		r, err := BindVars(p.Right, env)
		if err != nil {
			return nil, err
		}
		return Seq{Left: l, Right: r}, nil
	case Descend:
		s, err := BindVars(p.Sub, env)
		if err != nil {
			return nil, err
		}
		return Descend{Sub: s}, nil
	case Union:
		l, err := BindVars(p.Left, env)
		if err != nil {
			return nil, err
		}
		r, err := BindVars(p.Right, env)
		if err != nil {
			return nil, err
		}
		return Union{Left: l, Right: r}, nil
	case Qualified:
		s, err := BindVars(p.Sub, env)
		if err != nil {
			return nil, err
		}
		q, err := BindQualVars(p.Cond, env)
		if err != nil {
			return nil, err
		}
		return Qualified{Sub: s, Cond: q}, nil
	case Rec:
		// Plans are normally built from bound views, so the common case
		// keeps the shared graph pointer intact.
		if !p.G.hasVars() {
			return p, nil
		}
		g, err := p.G.bindVars(env)
		if err != nil {
			return nil, err
		}
		return Rec{G: g, Start: p.Start, Accept: p.Accept, ResultLabel: p.ResultLabel}, nil
	default:
		return nil, fmt.Errorf("xpath: BindVars: unknown path node %T", p)
	}
}

// BindQualVars substitutes parameters inside a qualifier.
func BindQualVars(q Qual, env map[string]string) (Qual, error) {
	switch q := q.(type) {
	case QTrue, QFalse, QAttrEq, QAttrHas:
		return q, nil
	case QPath:
		p, err := BindVars(q.Path, env)
		if err != nil {
			return nil, err
		}
		return QPath{Path: p}, nil
	case QEq:
		p, err := BindVars(q.Path, env)
		if err != nil {
			return nil, err
		}
		if q.Var == "" {
			return QEq{Path: p, Value: q.Value}, nil
		}
		val, ok := env[q.Var]
		if !ok {
			return nil, fmt.Errorf("xpath: unbound parameter $%s", q.Var)
		}
		return QEq{Path: p, Value: val}, nil
	case QAnd:
		l, err := BindQualVars(q.Left, env)
		if err != nil {
			return nil, err
		}
		r, err := BindQualVars(q.Right, env)
		if err != nil {
			return nil, err
		}
		return QAnd{Left: l, Right: r}, nil
	case QOr:
		l, err := BindQualVars(q.Left, env)
		if err != nil {
			return nil, err
		}
		r, err := BindQualVars(q.Right, env)
		if err != nil {
			return nil, err
		}
		return QOr{Left: l, Right: r}, nil
	case QNot:
		s, err := BindQualVars(q.Sub, env)
		if err != nil {
			return nil, err
		}
		return QNot{Sub: s}, nil
	default:
		return nil, fmt.Errorf("xpath: BindQualVars: unknown qualifier node %T", q)
	}
}

// Vars returns the distinct parameter names occurring in the query.
func Vars(p Path) []string {
	var out []string
	seen := make(map[string]bool)
	for _, sub := range Subqueries(p) {
		switch sub := sub.(type) {
		case Qualified:
			collectQualVars(sub.Cond, seen, &out)
		case Rec:
			sub.G.collectVars(seen, &out)
		}
	}
	return out
}

func collectQualVars(q Qual, seen map[string]bool, out *[]string) {
	switch q := q.(type) {
	case QEq:
		if q.Var != "" && !seen[q.Var] {
			seen[q.Var] = true
			*out = append(*out, q.Var)
		}
	case QAnd:
		collectQualVars(q.Left, seen, out)
		collectQualVars(q.Right, seen, out)
	case QOr:
		collectQualVars(q.Left, seen, out)
		collectQualVars(q.Right, seen, out)
	case QNot:
		collectQualVars(q.Sub, seen, out)
	}
}

// InCMinus reports whether the query is in the conjunctive fragment C⁻ of
// the paper's Section 5.1: paths over //, /, *, ∪ with qualifiers
// restricted to conjunctions of paths.
func InCMinus(p Path) bool {
	switch p := p.(type) {
	case Empty, Self, Label, Wildcard:
		return true
	case Seq:
		return InCMinus(p.Left) && InCMinus(p.Right)
	case Descend:
		return InCMinus(p.Sub)
	case Union:
		return InCMinus(p.Left) && InCMinus(p.Right)
	case Qualified:
		return InCMinus(p.Sub) && qualInCMinus(p.Cond)
	default:
		return false
	}
}

func qualInCMinus(q Qual) bool {
	switch q := q.(type) {
	case QTrue, QFalse:
		return true
	case QPath:
		return InCMinus(q.Path)
	case QAnd:
		return qualInCMinus(q.Left) && qualInCMinus(q.Right)
	default:
		return false
	}
}

// HasDescend reports whether the path contains a descendant step (//),
// in the main path or inside a qualifier. Mode selection uses it: the
// structural index only pays off on queries with descendant steps —
// child-axis-only queries touch the same nodes either way, so the walk
// evaluator serves them without the index lookup overhead.
func HasDescend(p Path) bool {
	switch p := p.(type) {
	case Seq:
		return HasDescend(p.Left) || HasDescend(p.Right)
	case Descend:
		return true
	case Union:
		return HasDescend(p.Left) || HasDescend(p.Right)
	case Qualified:
		return HasDescend(p.Sub) || qualHasDescend(p.Cond)
	case Rec:
		// The automaton selects nodes at arbitrary depth — the defining
		// property of a descendant-class construct.
		return true
	default:
		return false
	}
}

func qualHasDescend(q Qual) bool {
	switch q := q.(type) {
	case QPath:
		return HasDescend(q.Path)
	case QEq:
		return HasDescend(q.Path)
	case QAnd:
		return qualHasDescend(q.Left) || qualHasDescend(q.Right)
	case QOr:
		return qualHasDescend(q.Left) || qualHasDescend(q.Right)
	case QNot:
		return qualHasDescend(q.Sub)
	default:
		return false
	}
}
