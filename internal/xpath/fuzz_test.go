package xpath

import "testing"

// FuzzParse checks that any accepted query round-trips through the
// printer and never panics. Run the seed corpus with go test, or fuzz
// with go test -fuzz=FuzzParse ./internal/xpath.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		".",
		"a/b/c",
		"//dept//patientInfo/patient/name",
		"(a | b)/c[d and e]",
		`a[b = "6" or not(c)]`,
		"a[b = $w]",
		`x[@accessibility = "1"]`,
		"text()",
		"∅ | a",
		"a[.[b] and c/d]",
		"((//a)//b)[c]",
		"a[@id]",
		`a[@id and not(@ssn)]`,
		"a[",
		"]]]",
		"a//",
		"not(a)",
		"a | | b",
		"𝛆/weird-unicode",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		out := String(p)
		p2, err := Parse(out)
		if err != nil {
			t.Fatalf("printed form %q of %q does not reparse: %v", out, src, err)
		}
		if !Equal(p, p2) {
			t.Fatalf("round trip changed %q: printed %q reparsed %q", src, out, String(p2))
		}
	})
}

// FuzzParseQual does the same for bare qualifiers.
func FuzzParseQual(f *testing.F) {
	for _, seed := range []string{
		"a",
		"a and b",
		`a = "1" or not(b/c)`,
		"not(not(a))",
		"@x = 'v'",
		"true() and false()",
		"a and",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := ParseQual(src)
		if err != nil {
			return
		}
		out := QualString(q)
		q2, err := ParseQual(out)
		if err != nil {
			t.Fatalf("printed qualifier %q of %q does not reparse: %v", out, src, err)
		}
		if !QualEqual(q, q2) {
			t.Fatalf("round trip changed %q: printed %q", src, out)
		}
	})
}
