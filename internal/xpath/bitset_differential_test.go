package xpath_test

// Differential property suite for the ordinal (bitset) evaluation path:
// on randomized (DTD, document, query) triples, evaluating over a
// compacted document — which takes the bitset path — must agree exactly
// with evaluating over an uncompacted structural twin of the same tree,
// which takes the pointer-slice path. Structural twins get identical
// preorder numbering, so agreement is checked ordinal by ordinal. The
// suite also pins the two safety edges of the representation gate: a
// detached (never-renumbered) context falls back to the slice path with
// the same answers, and ordinal answer-cache entries die with the
// numbering that defined them when the arena is swapped out underneath
// them (Document.Generation).

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/dtd"
	"repro/internal/xmlgen"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// sliceTwin builds an uncompacted document with the exact node
// structure of doc. Renumbering assigns both trees the same preorder
// ordinals, but the twin fails the Compacted() gate, so it always
// evaluates over node slices.
func sliceTwin(t *testing.T, doc *xmltree.Document) *xmltree.Document {
	t.Helper()
	twin := xmltree.NewDocument(doc.Root.Clone())
	if twin.Size() != doc.Size() {
		t.Fatalf("twin size %d != doc size %d", twin.Size(), doc.Size())
	}
	if xpath.OrdinalApplicable(twin) {
		t.Fatal("structural twin must not pass the ordinal gate")
	}
	if !xpath.OrdinalApplicable(doc) {
		t.Fatal("generated document must pass the ordinal gate")
	}
	return twin
}

// assertSameOrds fails unless got and want are the same nodes by
// preorder ordinal and label — the cross-document equality for
// structural twins.
func assertSameOrds(t *testing.T, label string, got, want []*xmltree.Node) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d nodes, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].Ord() != want[i].Ord() || got[i].Label != want[i].Label {
			t.Fatalf("%s: node %d is ord %d (%s), want ord %d (%s)",
				label, i, got[i].Ord(), got[i].Label, want[i].Ord(), want[i].Label)
		}
	}
}

// TestDifferentialBitsetVsSlice sweeps ~200 randomized (DTD, document,
// query) triples through both representations: the compacted document
// takes the bitset path for sequential and indexed evaluation, its
// uncompacted twin takes the slice path, and the two must agree at the
// root and at random subcontexts.
func TestDifferentialBitsetVsSlice(t *testing.T) {
	r := rand.New(rand.NewSource(20260808))
	triples := 0
	for triples < 200 {
		src := randomDTDSource(r)
		d, err := dtd.Parse(src)
		if err != nil {
			t.Fatalf("random DTD does not parse: %v\n%s", err, src)
		}
		doc := xmlgen.Generate(d, xmlgen.Config{
			Seed:      r.Int63(),
			MinRepeat: 1,
			MaxRepeat: 2 + r.Intn(3),
			MaxDepth:  6,
		})
		if doc.Size() > 1500 {
			continue // see TestDifferentialParallelVsSequential
		}
		twin := sliceTwin(t, doc)
		idx := xpath.NewIndex(doc)
		labels := append(d.Types(), xpath.TextName)
		for q := 0; q < 5; q++ {
			triples++
			p := randPath(r, labels, 3)
			want, err := xpath.EvalDocErr(p, twin)
			if err != nil {
				t.Fatalf("slice eval error on %s: %v", xpath.String(p), err)
			}
			assertSortedUnique(t, "slice "+xpath.String(p), want)

			got, err := xpath.EvalDocErr(p, doc)
			if err != nil {
				t.Fatalf("bitset eval error on %s: %v", xpath.String(p), err)
			}
			assertSortedUnique(t, "bitset "+xpath.String(p), got)
			assertSameOrds(t, "bitset ≠ slice on "+xpath.String(p)+"\nDTD:\n"+src, got, want)

			gotIdx, err := xpath.EvalIndexedErr(p, idx)
			if err != nil {
				t.Fatalf("indexed bitset eval error on %s: %v", xpath.String(p), err)
			}
			assertSameOrds(t, "indexed bitset ≠ slice on "+xpath.String(p), gotIdx, want)

			// Subcontext leg: the same random ordinals as context in both
			// documents (duplicates and ancestor/descendant overlap
			// included) exercise the interval fills away from the root.
			ctx := make([]*xmltree.Node, 1+r.Intn(4))
			twinCtx := make([]*xmltree.Node, len(ctx))
			for i := range ctx {
				ord := r.Intn(doc.Size())
				ctx[i] = doc.Nodes()[ord]
				twinCtx[i] = twin.Nodes()[ord]
			}
			wantAt, err := xpath.EvalAtErr(p, twinCtx)
			if err != nil {
				t.Fatalf("slice EvalAt error on %s: %v", xpath.String(p), err)
			}
			gotAt, err := xpath.EvalAtErr(p, ctx)
			if err != nil {
				t.Fatalf("bitset EvalAt error on %s: %v", xpath.String(p), err)
			}
			assertSameOrds(t, "bitset@ctx ≠ slice@ctx on "+xpath.String(p), gotAt, wantAt)
		}
	}
}

// TestDifferentialRecBitsetVsSlice runs randomized recursive-view plans
// (Rec product search) through both representations. The automaton
// descends through arbitrary labels and accepts at a randomly chosen
// one, so the per-state bitset visited rows see real sharing and
// re-visits.
func TestDifferentialRecBitsetVsSlice(t *testing.T) {
	r := rand.New(rand.NewSource(20260809))
	for trial := 0; trial < 40; trial++ {
		src := randomDTDSource(r)
		d, err := dtd.Parse(src)
		if err != nil {
			t.Fatalf("random DTD does not parse: %v\n%s", err, src)
		}
		doc := xmlgen.Generate(d, xmlgen.Config{
			Seed:      r.Int63(),
			MinRepeat: 1,
			MaxRepeat: 2 + r.Intn(3),
			MaxDepth:  6,
		})
		if doc.Size() > 1500 {
			continue
		}
		twin := sliceTwin(t, doc)
		labels := append(d.Types(), xpath.TextName)
		accept := labels[r.Intn(len(labels))]
		g := xpath.NewRecGraph(map[string][]xpath.RecEdge{
			"walk": {
				{To: "walk", Sig: xpath.Wildcard{}},
				{To: "hit", Sig: xpath.Label{Name: accept}},
			},
			"hit": nil,
		})
		rec := xpath.Rec{G: g, Start: "walk", Accept: "hit", ResultLabel: accept}
		var plan xpath.Path = rec
		if r.Intn(2) == 0 {
			plan = xpath.Seq{Left: randPath(r, labels, 1), Right: rec}
		}
		want, err := xpath.EvalDocErr(plan, twin)
		if err != nil {
			t.Fatalf("slice rec eval: %v", err)
		}
		got, err := xpath.EvalDocErr(plan, doc)
		if err != nil {
			t.Fatalf("bitset rec eval: %v", err)
		}
		assertSameOrds(t, fmt.Sprintf("rec accept=%s trial %d", accept, trial), got, want)
	}
}

// TestBitsetDetachedNodeFallback: context nodes that were never part of
// a renumbered document (Owner nil) must fall back to the slice path
// and still produce the slice path's answers. Detached nodes carry no
// usable ordinals, so equality is checked as a multiset of label paths.
func TestBitsetDetachedNodeFallback(t *testing.T) {
	r := rand.New(rand.NewSource(20260810))
	for trial := 0; trial < 30; trial++ {
		src := randomDTDSource(r)
		d, err := dtd.Parse(src)
		if err != nil {
			t.Fatalf("random DTD does not parse: %v\n%s", err, src)
		}
		doc := xmlgen.Generate(d, xmlgen.Config{
			Seed:      r.Int63(),
			MinRepeat: 1,
			MaxRepeat: 2,
			MaxDepth:  5,
		})
		if doc.Size() > 800 {
			continue
		}
		// Clone the tree and never hand it to a Document: every node is
		// detached (Owner nil), so ordinalDoc must reject the context.
		detached := doc.Root.Clone()
		if detached.Owner() != nil {
			t.Fatal("clone unexpectedly owned")
		}
		labels := append(d.Types(), xpath.TextName)
		for q := 0; q < 5; q++ {
			p := randPath(r, labels, 2)
			want, err := xpath.EvalDocErr(p, doc)
			if err != nil {
				t.Fatalf("doc eval error on %s: %v", xpath.String(p), err)
			}
			got, err := xpath.EvalAtErr(p, []*xmltree.Node{detached})
			if err != nil {
				t.Fatalf("detached eval error on %s: %v", xpath.String(p), err)
			}
			// Without document-order numbering the slice path cannot
			// dedup by position, so a union may repeat a pointer; the
			// node set underneath must still match.
			gotPaths := labelPaths(uniqueNodes(got))
			wantPaths := labelPaths(want)
			if len(gotPaths) != len(wantPaths) {
				t.Fatalf("detached ≠ doc on %s: got %d nodes, want %d", xpath.String(p), len(got), len(want))
			}
			for i := range wantPaths {
				if gotPaths[i] != wantPaths[i] {
					t.Fatalf("detached ≠ doc on %s: path %d is %s, want %s",
						xpath.String(p), i, gotPaths[i], wantPaths[i])
				}
			}
		}
	}
}

func uniqueNodes(nodes []*xmltree.Node) []*xmltree.Node {
	seen := make(map[*xmltree.Node]bool, len(nodes))
	out := nodes[:0:0]
	for _, n := range nodes {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

func labelPaths(nodes []*xmltree.Node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Path()
	}
	sort.Strings(out)
	return out
}

// TestBitsetSurvivesArenaSwap: evaluation stays correct across
// Compact/Renumber cycles that swap the arena and bump the generation —
// results obtained before a swap refer to the old (still valid) nodes,
// results after the swap to the new arena, and both agree with the
// slice twin.
func TestBitsetSurvivesArenaSwap(t *testing.T) {
	r := rand.New(rand.NewSource(20260811))
	src := randomDTDSource(r)
	d, err := dtd.Parse(src)
	if err != nil {
		t.Fatalf("random DTD does not parse: %v", err)
	}
	doc := xmlgen.Generate(d, xmlgen.Config{Seed: 11, MinRepeat: 1, MaxRepeat: 3, MaxDepth: 5})
	twin := sliceTwin(t, doc)
	labels := append(d.Types(), xpath.TextName)
	p := xpath.Descend{Sub: xpath.Label{Name: labels[0]}}

	want, err := xpath.EvalDocErr(p, twin)
	if err != nil {
		t.Fatal(err)
	}
	before, err := xpath.EvalDocErr(p, doc)
	if err != nil {
		t.Fatal(err)
	}
	assertSameOrds(t, "pre-swap", before, want)

	gen := doc.Generation()
	doc.Compact() // swap the arena out from under any held ordinals
	if doc.Generation() == gen {
		t.Fatal("Compact did not advance the generation")
	}
	after, err := xpath.EvalDocErr(p, doc)
	if err != nil {
		t.Fatal(err)
	}
	assertSameOrds(t, "post-swap", after, want)
	// The pre-swap results still point at the old tree's nodes; their
	// labels (though not their ownership) must be unchanged.
	for i := range before {
		if before[i].Label != after[i].Label {
			t.Fatalf("node %d label changed across swap: %s vs %s", i, before[i].Label, after[i].Label)
		}
	}
}
