package xpath

import (
	"sort"

	"repro/internal/xmltree"
)

// Index is a per-document label index: for each element label (and the
// text pseudo-label) the document's nodes in document order. It speeds up
// descendant steps the way the paper's "state-of-the-art" evaluator [17]
// avoids full scans: //l becomes an index lookup plus an ancestor filter
// instead of a subtree walk. Build one per document and reuse it across
// queries; it becomes stale if the document mutates.
type Index struct {
	doc     *xmltree.Document
	byLabel map[string][]*xmltree.Node
}

// NewIndex builds the label index in one walk.
func NewIndex(doc *xmltree.Document) *Index {
	idx := &Index{doc: doc, byLabel: make(map[string][]*xmltree.Node)}
	doc.Root.Walk(func(n *xmltree.Node) bool {
		idx.byLabel[n.Label] = append(idx.byLabel[n.Label], n)
		return true
	})
	return idx
}

// Doc returns the indexed document.
func (idx *Index) Doc() *xmltree.Document { return idx.doc }

// Labeled returns all nodes with the given label in document order. The
// slice is shared; callers must not mutate it.
func (idx *Index) Labeled(label string) []*xmltree.Node {
	return idx.byLabel[label]
}

// EvalIndexed evaluates a query at the document root using the index.
// Results are identical to EvalDoc.
func EvalIndexed(p Path, idx *Index) []*xmltree.Node {
	return EvalIndexedAt(p, idx, []*xmltree.Node{idx.doc.Root})
}

// EvalIndexedAt evaluates at a set of context nodes using the index.
func EvalIndexedAt(p Path, idx *Index, ctx []*xmltree.Node) []*xmltree.Node {
	e := indexedEvaluator{idx: idx}
	return xmltree.SortDocOrder(e.eval(p, ctx))
}

type indexedEvaluator struct {
	idx *Index
}

func (e indexedEvaluator) eval(p Path, ctx []*xmltree.Node) []*xmltree.Node {
	if len(ctx) == 0 {
		return nil
	}
	switch p := p.(type) {
	case Empty:
		return nil
	case Self:
		return append([]*xmltree.Node(nil), ctx...)
	case Label:
		var out []*xmltree.Node
		for _, v := range ctx {
			for _, c := range v.Children {
				if c.Label == p.Name {
					out = append(out, c)
				}
			}
		}
		return out
	case Wildcard:
		var out []*xmltree.Node
		for _, v := range ctx {
			for _, c := range v.Children {
				if c.Kind == xmltree.ElementNode {
					out = append(out, c)
				}
			}
		}
		return out
	case Seq:
		mid := xmltree.SortDocOrder(e.eval(p.Left, ctx))
		return e.eval(p.Right, mid)
	case Descend:
		// The index shortcut: //l and //l[...] pull the label's posting
		// list and keep entries with an ancestor-or-self in the context.
		if hit, ok := e.descendViaIndex(p.Sub, ctx); ok {
			return hit
		}
		var dos []*xmltree.Node
		seen := make(map[*xmltree.Node]bool)
		for _, v := range ctx {
			v.Walk(func(n *xmltree.Node) bool {
				if seen[n] {
					return false
				}
				seen[n] = true
				dos = append(dos, n)
				return true
			})
		}
		dos = xmltree.SortDocOrder(dos)
		return e.eval(p.Sub, dos)
	case Union:
		return append(e.eval(p.Left, ctx), e.eval(p.Right, ctx)...)
	case Qualified:
		mid := xmltree.SortDocOrder(e.eval(p.Sub, ctx))
		var out []*xmltree.Node
		for _, v := range mid {
			if e.evalQual(p.Cond, v) {
				out = append(out, v)
			}
		}
		return out
	default:
		return nil
	}
}

// descendViaIndex answers //sub when sub starts with a label step:
// posting-list lookup + ord-range context filter + evaluation of the
// remaining steps. ok is false when sub's head is not index-friendly or
// when walking the context subtrees is estimated cheaper than scanning
// the posting list (an index lookup inside a per-node qualifier would
// otherwise scan a global list for every candidate node).
func (e indexedEvaluator) descendViaIndex(sub Path, ctx []*xmltree.Node) ([]*xmltree.Node, bool) {
	head, rest := splitHead(sub)
	label, ok := head.(Label)
	if !ok {
		return nil, false
	}
	candidates := e.idx.Labeled(label.Name)
	if len(candidates) == 0 {
		return nil, true
	}
	// Selectivity heuristic: the walk visits every context-subtree node
	// once; the index path scans the whole posting list. Prefer the walk
	// when the subtrees are smaller.
	subtree := 0
	for _, v := range ctx {
		subtree += v.DescendantCount() + 1
	}
	if subtree < len(candidates) {
		return nil, false
	}
	matched := e.underContext(candidates, ctx)
	if rest == nil {
		return matched, true
	}
	return e.eval(rest, xmltree.SortDocOrder(matched)), true
}

// underContext filters candidates whose parent lies at-or-under one of
// the context nodes, using the contiguous ord ranges of subtrees:
// contexts are sorted by ord, and a candidate parent belongs to the last
// context starting at or before it iff that context's range covers it.
func (e indexedEvaluator) underContext(candidates, ctx []*xmltree.Node) []*xmltree.Node {
	if len(ctx) == 1 && ctx[0] == e.idx.doc.Root {
		// Whole-document queries: every candidate except the root itself
		// has a parent under the root.
		var out []*xmltree.Node
		for _, c := range candidates {
			if c.Parent != nil {
				out = append(out, c)
			}
		}
		return out
	}
	sorted := xmltree.SortDocOrder(append([]*xmltree.Node(nil), ctx...))
	// Coverage test via prefix maxima: some context covers ord iff among
	// contexts starting at or before ord, the furthest-reaching subtree
	// end reaches ord.
	maxEnd := make([]int, len(sorted))
	for i, v := range sorted {
		end := v.Ord() + v.DescendantCount()
		if i > 0 && maxEnd[i-1] > end {
			end = maxEnd[i-1]
		}
		maxEnd[i] = end
	}
	var out []*xmltree.Node
	for _, c := range candidates {
		if c.Parent == nil {
			continue
		}
		ord := c.Parent.Ord()
		i := sort.Search(len(sorted), func(i int) bool { return sorted[i].Ord() > ord }) - 1
		if i >= 0 && maxEnd[i] >= ord {
			out = append(out, c)
		}
	}
	return out
}

// splitHead splits a path into its first step and the remainder (nil when
// the path is a single step). Sequences are left-deep, so the head is the
// leftmost non-Seq node.
func splitHead(p Path) (Path, Path) {
	seq, ok := p.(Seq)
	if !ok {
		return p, nil
	}
	head, mid := splitHead(seq.Left)
	if mid == nil {
		return head, seq.Right
	}
	return head, Seq{Left: mid, Right: seq.Right}
}

func (e indexedEvaluator) evalQual(q Qual, v *xmltree.Node) bool {
	switch q := q.(type) {
	case QTrue:
		return true
	case QFalse:
		return false
	case QPath:
		return len(e.eval(q.Path, []*xmltree.Node{v})) > 0
	case QEq:
		if q.Var != "" {
			panic("xpath: unbound variable $" + q.Var + " in qualifier")
		}
		for _, n := range e.eval(q.Path, []*xmltree.Node{v}) {
			if n.Text() == q.Value {
				return true
			}
		}
		return false
	case QAttrEq:
		val, ok := v.Attr(q.Name)
		return ok && val == q.Value
	case QAttrHas:
		_, ok := v.Attr(q.Name)
		return ok
	case QAnd:
		return e.evalQual(q.Left, v) && e.evalQual(q.Right, v)
	case QOr:
		return e.evalQual(q.Left, v) || e.evalQual(q.Right, v)
	case QNot:
		return !e.evalQual(q.Sub, v)
	default:
		return false
	}
}

// Ensure deterministic iteration in tests that inspect the index.
func (idx *Index) labels() []string {
	out := make([]string, 0, len(idx.byLabel))
	for l := range idx.byLabel {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}
