package xpath

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/xmltree"
)

// Index is a per-document label index: for each element label (and the
// text pseudo-label) the document's nodes in document order. It speeds up
// descendant steps the way the paper's "state-of-the-art" evaluator [17]
// avoids full scans: //l becomes an index lookup plus an ancestor filter
// instead of a subtree walk. Build one per document and reuse it across
// queries; it becomes stale if the document mutates.
type Index struct {
	doc     *xmltree.Document
	byLabel map[string][]*xmltree.Node
}

// NewIndex builds the label index in one pass. Renumbered documents are
// indexed straight off their node table (already in document order);
// trees without one fall back to a walk.
func NewIndex(doc *xmltree.Document) *Index {
	idx := &Index{doc: doc, byLabel: make(map[string][]*xmltree.Node)}
	if nodes := doc.Nodes(); nodes != nil {
		for _, n := range nodes {
			idx.byLabel[n.Label] = append(idx.byLabel[n.Label], n)
		}
		return idx
	}
	doc.Root.Walk(func(n *xmltree.Node) bool {
		idx.byLabel[n.Label] = append(idx.byLabel[n.Label], n)
		return true
	})
	return idx
}

// Doc returns the indexed document.
func (idx *Index) Doc() *xmltree.Document { return idx.doc }

// Labeled returns all nodes with the given label in document order. The
// slice is shared; callers must not mutate it.
func (idx *Index) Labeled(label string) []*xmltree.Node {
	return idx.byLabel[label]
}

// EvalIndexed evaluates a query at the document root using the index.
// Results are identical to EvalDoc. It panics on unbound $variables;
// untrusted queries should go through EvalIndexedErr.
func EvalIndexed(p Path, idx *Index) []*xmltree.Node {
	out, err := EvalIndexedErr(p, idx)
	if err != nil {
		panic("xpath: " + err.Error())
	}
	return out
}

// EvalIndexedErr is EvalIndexed returning an error instead of panicking
// on unbound $variables or malformed AST nodes — the same contract as
// EvalDocErr.
func EvalIndexedErr(p Path, idx *Index) ([]*xmltree.Node, error) {
	return EvalIndexedCtx(nil, p, idx)
}

// EvalIndexedCtx is EvalIndexedErr honoring a context: evaluation polls
// for cancellation cooperatively — at every path step and periodically
// inside posting-list scans, descendant walks, and qualifier-filter
// loops — and returns ctx.Err() once the context is done, exactly like
// EvalDocCtx. A nil context disables the checks.
func EvalIndexedCtx(ctx context.Context, p Path, idx *Index) ([]*xmltree.Node, error) {
	return EvalIndexedAtCtx(ctx, p, idx, []*xmltree.Node{idx.doc.Root})
}

// EvalIndexedCtxCounted is EvalIndexedCtx additionally reporting the
// evaluation's cooperation ticks as a nodes-visited proxy, mirroring
// EvalDocCtxCounted. The count is maintained only when ctx is non-nil.
func EvalIndexedCtxCounted(ctx context.Context, p Path, idx *Index) ([]*xmltree.Node, uint64, error) {
	e := indexedEvaluator{idx: idx, se: newSeqEval(ctx)}
	if err := e.se.cancelled(); err != nil {
		return nil, 0, err
	}
	root := []*xmltree.Node{idx.doc.Root}
	if d := ordinalDoc(root); d == idx.doc {
		out, err := evalOrdinal(e.se, idx, d, p, root)
		return out, uint64(e.se.ticks), err
	}
	out, err := e.eval(p, root)
	if err != nil {
		return nil, uint64(e.se.ticks), err
	}
	return xmltree.SortDocOrder(out), uint64(e.se.ticks), nil
}

// EvalIndexedAt evaluates at a set of context nodes using the index. It
// panics on unbound $variables; see EvalIndexedAtCtx.
func EvalIndexedAt(p Path, idx *Index, ctx []*xmltree.Node) []*xmltree.Node {
	out, err := EvalIndexedAtCtx(nil, p, idx, ctx)
	if err != nil {
		panic("xpath: " + err.Error())
	}
	return out
}

// EvalIndexedAtCtx is the context-honoring, error-returning form of
// EvalIndexedAt; see EvalIndexedCtx.
func EvalIndexedAtCtx(goCtx context.Context, p Path, idx *Index, ctx []*xmltree.Node) ([]*xmltree.Node, error) {
	e := indexedEvaluator{idx: idx, se: newSeqEval(goCtx)}
	if err := e.se.cancelled(); err != nil {
		return nil, err
	}
	// The ordinal path additionally requires the context to be owned by
	// the indexed document itself — posting lists from one document must
	// not filter against another's ordinals.
	if d := ordinalDoc(ctx); d != nil && d == idx.doc {
		return evalOrdinal(e.se, idx, d, p, ctx)
	}
	out, err := e.eval(p, ctx)
	if err != nil {
		return nil, err
	}
	return xmltree.SortDocOrder(out), nil
}

// indexedEvaluator evaluates with the label index, sharing the
// sequential evaluator's cancellation/tick machinery (se) so indexed
// evaluation honors the same deadline-promptness and nodes-visited
// contracts as the walk evaluator.
type indexedEvaluator struct {
	idx *Index
	se  *seqEval
}

func (e indexedEvaluator) eval(p Path, ctx []*xmltree.Node) ([]*xmltree.Node, error) {
	if len(ctx) == 0 {
		return nil, nil
	}
	if err := e.se.tick(); err != nil {
		return nil, err
	}
	switch p := p.(type) {
	case Empty:
		return nil, nil
	case Self:
		return append([]*xmltree.Node(nil), ctx...), nil
	case Label:
		var out []*xmltree.Node
		for _, v := range ctx {
			for _, c := range v.Children {
				if c.Label == p.Name {
					out = append(out, c)
				}
			}
		}
		return out, nil
	case Wildcard:
		var out []*xmltree.Node
		for _, v := range ctx {
			for _, c := range v.Children {
				if c.Kind == xmltree.ElementNode {
					out = append(out, c)
				}
			}
		}
		return out, nil
	case Seq:
		mid, err := e.eval(p.Left, ctx)
		if err != nil {
			return nil, err
		}
		return e.eval(p.Right, xmltree.SortDocOrder(mid))
	case Descend:
		// The index shortcut: //l and //l[...] pull the label's posting
		// list and keep entries with an ancestor-or-self in the context.
		hit, ok, err := e.descendViaIndex(p.Sub, ctx)
		if err != nil {
			return nil, err
		}
		if ok {
			return hit, nil
		}
		dos, err := e.se.descendantOrSelf(ctx)
		if err != nil {
			return nil, err
		}
		return e.eval(p.Sub, dos)
	case Union:
		left, err := e.eval(p.Left, ctx)
		if err != nil {
			return nil, err
		}
		right, err := e.eval(p.Right, ctx)
		if err != nil {
			return nil, err
		}
		return xmltree.SortDocOrder(append(left, right...)), nil
	case Qualified:
		mid, err := e.eval(p.Sub, ctx)
		if err != nil {
			return nil, err
		}
		var out []*xmltree.Node
		for _, v := range xmltree.SortDocOrder(mid) {
			if err := e.se.tick(); err != nil {
				return nil, err
			}
			hold, err := e.evalQual(p.Cond, v)
			if err != nil {
				return nil, err
			}
			if hold {
				out = append(out, v)
			}
		}
		return out, nil
	case Rec:
		// σ edges evaluate through e.eval, so residual descendant steps
		// inside them still benefit from the posting lists.
		return evalRec(p, ctx, e.eval)
	default:
		return nil, fmt.Errorf("evalPath: unknown path node %T", p)
	}
}

// descendViaIndex answers //sub when sub starts with a label step:
// posting-list lookup + ord-range context filter + evaluation of the
// remaining steps. ok is false when sub's head is not index-friendly or
// when walking the context subtrees is estimated cheaper than scanning
// the posting list (an index lookup inside a per-node qualifier would
// otherwise scan a global list for every candidate node).
func (e indexedEvaluator) descendViaIndex(sub Path, ctx []*xmltree.Node) ([]*xmltree.Node, bool, error) {
	head, rest := splitHead(sub)
	label, ok := head.(Label)
	if !ok {
		return nil, false, nil
	}
	candidates := e.idx.Labeled(label.Name)
	if len(candidates) == 0 {
		return nil, true, nil
	}
	// Selectivity heuristic: the walk visits every node under the context
	// once; the index path scans the whole posting list. Prefer the walk
	// when the context covers fewer nodes. Sizing must not double-count
	// overlapping context nodes (an ancestor plus its descendant), so use
	// CoverSize over the sorted, deduplicated set — the raw
	// DescendantCount sum over-estimated exactly there and steered
	// nested-qualifier evaluations onto full posting-list scans.
	sorted := xmltree.SortDocOrder(append([]*xmltree.Node(nil), ctx...))
	if xmltree.CoverSize(sorted) < len(candidates) {
		return nil, false, nil
	}
	matched, err := e.underContext(candidates, sorted)
	if err != nil {
		return nil, false, err
	}
	if rest == nil {
		return matched, true, nil
	}
	// matched is a subsequence of the posting list: already in document
	// order and duplicate-free, so no re-sort before the remaining steps.
	out, err := e.eval(rest, matched)
	return out, true, err
}

// underContext filters candidates whose parent lies at-or-under one of
// the context nodes, using the contiguous ord ranges of subtrees:
// contexts must arrive sorted in document order (SortDocOrder), and a
// candidate parent belongs to the last context starting at or before it
// iff that context's range covers it.
func (e indexedEvaluator) underContext(candidates, ctx []*xmltree.Node) ([]*xmltree.Node, error) {
	if len(ctx) == 1 && ctx[0] == e.idx.doc.Root {
		// Whole-document queries: every candidate except the root itself
		// has a parent under the root.
		var out []*xmltree.Node
		for _, c := range candidates {
			if err := e.se.tick(); err != nil {
				return nil, err
			}
			if c.Parent != nil {
				out = append(out, c)
			}
		}
		return out, nil
	}
	// Coverage test via prefix maxima: some context covers ord iff among
	// contexts starting at or before ord, the furthest-reaching subtree
	// end reaches ord.
	maxEnd := make([]int, len(ctx))
	for i, v := range ctx {
		end := v.Ord() + v.DescendantCount()
		if i > 0 && maxEnd[i-1] > end {
			end = maxEnd[i-1]
		}
		maxEnd[i] = end
	}
	var out []*xmltree.Node
	for _, c := range candidates {
		if err := e.se.tick(); err != nil {
			return nil, err
		}
		if c.Parent == nil {
			continue
		}
		ord := c.Parent.Ord()
		i := sort.Search(len(ctx), func(i int) bool { return ctx[i].Ord() > ord }) - 1
		if i >= 0 && maxEnd[i] >= ord {
			out = append(out, c)
		}
	}
	return out, nil
}

// splitHead splits a path into its first step and the remainder (nil when
// the path is a single step). Sequences are left-deep, so the head is the
// leftmost non-Seq node.
func splitHead(p Path) (Path, Path) {
	seq, ok := p.(Seq)
	if !ok {
		return p, nil
	}
	head, mid := splitHead(seq.Left)
	if mid == nil {
		return head, seq.Right
	}
	return head, Seq{Left: mid, Right: seq.Right}
}

func (e indexedEvaluator) evalQual(q Qual, v *xmltree.Node) (bool, error) {
	switch q := q.(type) {
	case QTrue:
		return true, nil
	case QFalse:
		return false, nil
	case QPath:
		res, err := e.eval(q.Path, []*xmltree.Node{v})
		return len(res) > 0, err
	case QEq:
		if q.Var != "" {
			return false, fmt.Errorf("unbound variable $%s in qualifier", q.Var)
		}
		res, err := e.eval(q.Path, []*xmltree.Node{v})
		if err != nil {
			return false, err
		}
		for _, n := range res {
			if n.Text() == q.Value {
				return true, nil
			}
		}
		return false, nil
	case QAttrEq:
		val, ok := v.Attr(q.Name)
		return ok && val == q.Value, nil
	case QAttrHas:
		_, ok := v.Attr(q.Name)
		return ok, nil
	case QAnd:
		left, err := e.evalQual(q.Left, v)
		if err != nil || !left {
			return false, err
		}
		return e.evalQual(q.Right, v)
	case QOr:
		left, err := e.evalQual(q.Left, v)
		if err != nil || left {
			return left, err
		}
		return e.evalQual(q.Right, v)
	case QNot:
		hold, err := e.evalQual(q.Sub, v)
		return !hold && err == nil, err
	default:
		return false, fmt.Errorf("EvalQual: unknown qualifier node %T", q)
	}
}

// Ensure deterministic iteration in tests that inspect the index.
func (idx *Index) labels() []string {
	out := make([]string, 0, len(idx.byLabel))
	for l := range idx.byLabel {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}
