package xpath

import (
	"fmt"
	"sort"

	"repro/internal/nodeset"
	"repro/internal/xmltree"
)

// This file is the ordinal evaluation path: on compacted documents the
// evaluator's internal currency is not a []*Node but a nodeset.Set — a
// word-packed bitset over the arena's preorder ordinals. Preorder
// ordinal order is document order, so the sort/dedup work the slice
// evaluator does at every merge point disappears: union is word-wise
// OR, deduplication is structural, descendant-or-self is a bit-range
// fill over the subtree interval, and the Rec automaton's visited set
// becomes one bitset row per view state. All intermediate sets come
// from a sync.Pool, so a steady-state evaluation allocates only its
// final result slice.
//
// The gate (ordinalDoc) requires every context node to carry fresh
// numbering from one compacted document. Hand-built NewDocument trees,
// detached subtrees, and mixed-document contexts keep the slice path —
// which also keeps the two implementations pinned against each other
// by every differential suite that evaluates on parsed or generated
// (always compacted) documents.

// ordinalDoc returns the compacted document that owns every context
// node, or nil when the ordinal path does not apply (empty context,
// stale numbering, uncompacted document, or mixed owners).
func ordinalDoc(nodes []*xmltree.Node) *xmltree.Document {
	if len(nodes) == 0 {
		return nil
	}
	d := nodes[0].Owner()
	if d == nil || !d.Compacted() {
		return nil
	}
	for _, n := range nodes[1:] {
		if n.Owner() != d {
			return nil
		}
	}
	return d
}

// OrdinalApplicable reports whether evaluation over doc takes the
// bitset path — the compaction gate, exported so the serving layer can
// label its metrics with the set representation actually in use.
func OrdinalApplicable(doc *xmltree.Document) bool {
	return doc != nil && doc.Compacted()
}

// evalOrdinal runs one bitset evaluation end to end: context slice in,
// result slice out, every intermediate set pooled. It shares the
// caller's seqEval so ticks and cancellation behave exactly as on the
// slice path. idx is nil for the walk evaluator.
func evalOrdinal(se *seqEval, idx *Index, d *xmltree.Document, p Path, nodes []*xmltree.Node) ([]*xmltree.Node, error) {
	b := &bitEval{se: se, idx: idx, doc: d}
	defer b.release()
	ctx := b.get()
	for _, n := range nodes {
		ctx.Add(n.Ord())
	}
	res, err := b.path(p, ctx)
	if err != nil {
		return nil, err
	}
	return b.materialize(res), nil
}

// bitEval is one ordinal evaluation. It tracks every pooled set it
// obtained (owned) so release can return each to the pool exactly once
// no matter how evaluation unwound; recycle moves a set to the free
// list for reuse within this evaluation without touching ownership.
// A bitEval is single-goroutine, like the seqEval it wraps.
type bitEval struct {
	se    *seqEval
	idx   *Index
	doc   *xmltree.Document
	owned []*nodeset.Set
	free  []*nodeset.Set
}

// get returns a cleared set over the document's ordinal universe,
// reusing an evaluation-local recycled set before hitting the pool.
func (b *bitEval) get() *nodeset.Set {
	if n := len(b.free); n > 0 {
		s := b.free[n-1]
		b.free = b.free[:n-1]
		s.Reset(b.doc.Size())
		return s
	}
	s := nodeset.Get(b.doc.Size())
	b.owned = append(b.owned, s)
	return s
}

// recycle makes a set available to the next get of this evaluation.
// The set stays on the owned list; callers just stop using it.
func (b *bitEval) recycle(s *nodeset.Set) {
	b.free = append(b.free, s)
}

// release returns every owned set to the pool. After release no set
// handed out by get may be used — evalOrdinal materializes the result
// into a fresh slice before releasing.
func (b *bitEval) release() {
	for _, s := range b.owned {
		nodeset.Put(s)
	}
	b.owned, b.free = nil, nil
}

// materialize maps a result set back to nodes through the document's
// node table. Empty results stay nil, matching the slice evaluator.
// This is the only per-result allocation of the ordinal path.
func (b *bitEval) materialize(s *nodeset.Set) []*xmltree.Node {
	k := s.Count()
	if k == 0 {
		return nil
	}
	byOrd := b.doc.Nodes()
	out := make([]*xmltree.Node, 0, k)
	s.ForEach(func(ord int) { out = append(out, byOrd[ord]) })
	return out
}

// path mirrors seqEval.path case for case over bitsets. The context
// set is borrowed: path never mutates or retains it, and the returned
// set is always a distinct set the caller may mutate or recycle.
func (b *bitEval) path(p Path, ctx *nodeset.Set) (*nodeset.Set, error) {
	if ctx.Empty() {
		return b.get(), nil
	}
	if err := b.se.tick(); err != nil {
		return nil, err
	}
	byOrd := b.doc.Nodes()
	switch p := p.(type) {
	case Empty:
		return b.get(), nil
	case Self:
		out := b.get()
		out.Or(ctx)
		return out, nil
	case Label:
		out := b.get()
		ctx.ForEach(func(ord int) {
			for _, c := range byOrd[ord].Children {
				if c.Label == p.Name {
					out.Add(c.Ord())
				}
			}
		})
		return out, nil
	case Wildcard:
		out := b.get()
		ctx.ForEach(func(ord int) {
			for _, c := range byOrd[ord].Children {
				if c.Kind == xmltree.ElementNode {
					out.Add(c.Ord())
				}
			}
		})
		return out, nil
	case Seq:
		mid, err := b.path(p.Left, ctx)
		if err != nil {
			return nil, err
		}
		out, err := b.path(p.Right, mid)
		b.recycle(mid)
		return out, err
	case Descend:
		if out, ok, err := b.descendViaIndex(p.Sub, ctx); ok || err != nil {
			return out, err
		}
		dos, err := b.descendantOrSelf(ctx)
		if err != nil {
			return nil, err
		}
		out, err := b.path(p.Sub, dos)
		b.recycle(dos)
		return out, err
	case Union:
		left, err := b.path(p.Left, ctx)
		if err != nil {
			return nil, err
		}
		right, err := b.path(p.Right, ctx)
		if err != nil {
			return nil, err
		}
		left.Or(right)
		b.recycle(right)
		return left, nil
	case Qualified:
		mid, err := b.path(p.Sub, ctx)
		if err != nil {
			return nil, err
		}
		out := b.get()
		var loopErr error
		mid.ForEachUntil(func(ord int) bool {
			if loopErr = b.se.tick(); loopErr != nil {
				return false
			}
			hold, err := b.qual(p.Cond, byOrd[ord])
			if err != nil {
				loopErr = err
				return false
			}
			if hold {
				out.Add(ord)
			}
			return true
		})
		b.recycle(mid)
		if loopErr != nil {
			return nil, loopErr
		}
		return out, nil
	case Rec:
		return b.evalRec(p, ctx)
	default:
		return nil, fmt.Errorf("evalPath: unknown path node %T", p)
	}
}

// descendantOrSelf is the bit-range-fill form of the descendant step:
// iterate the context's ordinals ascending, skip any ordinal nested in
// the previous subtree interval (intervals are laminar, so that drops
// exactly the covered duplicates), and fill [ord, ord+desc] for each
// maximal interval. tickN keeps the nodes-visited count and the
// cancellation poll rate honest with the slice path's interval walk.
func (b *bitEval) descendantOrSelf(ctx *nodeset.Set) (*nodeset.Set, error) {
	out := b.get()
	byOrd := b.doc.Nodes()
	limit := -1
	var loopErr error
	ctx.ForEachUntil(func(ord int) bool {
		if ord <= limit {
			return true // nested inside the previous interval
		}
		hi := ord + byOrd[ord].DescendantCount()
		if loopErr = b.se.tickN(hi - ord + 1); loopErr != nil {
			return false
		}
		out.AddRange(ord, hi)
		limit = hi
		return true
	})
	if loopErr != nil {
		return nil, loopErr
	}
	return out, nil
}

// descendViaIndex is the ordinal form of the indexed //label shortcut:
// the context's descendant-or-self cover becomes a range-filled bitset,
// and the posting-list filter is one Has per candidate parent instead
// of a prefix-maxima binary search. ok is false when there is no index,
// the head is not a label step, or the selectivity heuristic prefers
// the subtree fill (context cover smaller than the posting list).
func (b *bitEval) descendViaIndex(sub Path, ctx *nodeset.Set) (*nodeset.Set, bool, error) {
	if b.idx == nil {
		return nil, false, nil
	}
	head, rest := splitHead(sub)
	label, ok := head.(Label)
	if !ok {
		return nil, false, nil
	}
	candidates := b.idx.Labeled(label.Name)
	if len(candidates) == 0 {
		return b.get(), true, nil
	}
	// Build the cover set and its size in one pass over the maximal
	// subtree intervals; the fill is O(universe/64) words, cheap enough
	// to discard if the heuristic then prefers the walk.
	cover := b.get()
	byOrd := b.doc.Nodes()
	size, limit := 0, -1
	ctx.ForEach(func(ord int) {
		if ord <= limit {
			return
		}
		hi := ord + byOrd[ord].DescendantCount()
		cover.AddRange(ord, hi)
		size += hi - ord + 1
		limit = hi
	})
	if size < len(candidates) {
		b.recycle(cover)
		return nil, false, nil
	}
	matched := b.get()
	for _, c := range candidates {
		if err := b.se.tick(); err != nil {
			return nil, true, err
		}
		if c.Parent != nil && cover.Has(c.Parent.Ord()) {
			matched.Add(c.Ord())
		}
	}
	b.recycle(cover)
	if rest == nil {
		return matched, true, nil
	}
	out, err := b.path(rest, matched)
	b.recycle(matched)
	return out, true, err
}

// qual mirrors seqEval.qual over pooled sets: qualifier paths — where
// p[q] plans spend their time — evaluate through b.path, so even the
// per-node existence checks of nested qualifiers allocate nothing.
func (b *bitEval) qual(q Qual, v *xmltree.Node) (bool, error) {
	switch q := q.(type) {
	case QTrue:
		return true, nil
	case QFalse:
		return false, nil
	case QPath:
		res, err := b.pathAtNode(q.Path, v)
		if err != nil {
			return false, err
		}
		hold := !res.Empty()
		b.recycle(res)
		return hold, nil
	case QEq:
		if q.Var != "" {
			return false, fmt.Errorf("unbound variable $%s in qualifier", q.Var)
		}
		res, err := b.pathAtNode(q.Path, v)
		if err != nil {
			return false, err
		}
		byOrd := b.doc.Nodes()
		hold := false
		res.ForEachUntil(func(ord int) bool {
			hold = byOrd[ord].Text() == q.Value
			return !hold
		})
		b.recycle(res)
		return hold, nil
	case QAttrEq:
		val, ok := v.Attr(q.Name)
		return ok && val == q.Value, nil
	case QAttrHas:
		_, ok := v.Attr(q.Name)
		return ok, nil
	case QAnd:
		left, err := b.qual(q.Left, v)
		if err != nil || !left {
			return false, err
		}
		return b.qual(q.Right, v)
	case QOr:
		left, err := b.qual(q.Left, v)
		if err != nil || left {
			return left, err
		}
		return b.qual(q.Right, v)
	case QNot:
		hold, err := b.qual(q.Sub, v)
		return !hold && err == nil, err
	default:
		return false, fmt.Errorf("EvalQual: unknown qualifier node %T", q)
	}
}

// pathAtNode evaluates a qualifier's inner path at one context node.
func (b *bitEval) pathAtNode(p Path, v *xmltree.Node) (*nodeset.Set, error) {
	ctx := b.get()
	ctx.Add(v.Ord())
	res, err := b.path(p, ctx)
	b.recycle(ctx)
	return res, err
}

// evalRec is the product reachability of rec.go over bitset rows: the
// visited set keeps one row per view state (visited[s].Has(ord) ⇔
// (node, s) seen), and frontiers are sets, so per-level dedup against
// everything already visited is one AndNot instead of a map probe per
// (node, state) pair. States iterate in sorted order like the slice
// form, keeping σ evaluation order — and therefore tick counts —
// deterministic.
func (b *bitEval) evalRec(p Rec, ctx *nodeset.Set) (*nodeset.Set, error) {
	out := b.get()
	if p.G == nil {
		return out, nil
	}
	visited := make(map[string]*nodeset.Set, len(p.G.states))
	row := func(state string) *nodeset.Set {
		r := visited[state]
		if r == nil {
			r = b.get()
			visited[state] = r
		}
		return r
	}
	start := b.get()
	start.Or(ctx)
	row(p.Start).Or(ctx)
	frontier := map[string]*nodeset.Set{p.Start: start}
	states := make([]string, 0, len(p.G.states))
	for len(frontier) > 0 {
		states = states[:0]
		for s := range frontier {
			states = append(states, s)
		}
		sort.Strings(states)
		next := map[string]*nodeset.Set{}
		for _, s := range states {
			nodes := frontier[s]
			if s == p.Accept {
				out.Or(nodes)
			}
			for _, edge := range p.G.edges[s] {
				hit, err := b.path(edge.Sig, nodes)
				if err != nil {
					return nil, err
				}
				hit.AndNot(row(edge.To))
				if !hit.Empty() {
					row(edge.To).Or(hit)
					ns := next[edge.To]
					if ns == nil {
						ns = b.get()
						next[edge.To] = ns
					}
					ns.Or(hit)
				}
				b.recycle(hit)
			}
			b.recycle(nodes)
		}
		frontier = next
	}
	for _, r := range visited {
		b.recycle(r)
	}
	return out, nil
}
