package xpath_test

// Differential property suite: on randomized (DTD, document, query)
// triples, the parallel evaluator must agree with the sequential one
// exactly — same node set, same document order, no duplicates — across
// worker counts and partition thresholds. Hand-written equivalence cases
// only cover the query shapes their authors thought of; the randomized
// sweep pins the ≡ down across the whole fragment, including the
// degenerate shapes (∅, ε, deep unions, qualifier nests) that tend to
// hide partitioning bugs. Run it under -race to make it a concurrency
// check too.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dtd"
	"repro/internal/xmlgen"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// randomDTDSource emits a small random DTD in the compact syntax:
// element types e0..ek where ei's production draws children from the
// types after it (always terminating), as a sequence, a choice, a star,
// or #PCDATA. The last two types are always text so every shape can
// bottom out.
func randomDTDSource(r *rand.Rand) string {
	n := 4 + r.Intn(5) // 4..8 element types
	name := func(i int) string { return fmt.Sprintf("e%d", i) }
	src := "root e0\n"
	for i := 0; i < n; i++ {
		if i >= n-2 {
			src += name(i) + " -> #PCDATA\n"
			continue
		}
		pick := func() string { return name(i + 1 + r.Intn(n-i-1)) }
		switch r.Intn(4) {
		case 0: // star of one child type
			src += name(i) + " -> " + pick() + "*\n"
		case 1: // choice
			a, b := pick(), pick()
			for b == a {
				b = pick()
			}
			src += name(i) + " -> " + a + " + " + b + "\n"
		case 2: // sequence, possibly with starred items
			k := 1 + r.Intn(3)
			if avail := n - i - 1; k > avail {
				k = avail // distinct types to draw from run out near the tail
			}
			seen := map[string]bool{}
			var items []string
			for len(items) < k {
				c := pick()
				if seen[c] {
					continue
				}
				seen[c] = true
				if r.Intn(3) == 0 {
					c += "*"
				}
				items = append(items, c)
			}
			src += name(i) + " -> " + join(items) + "\n"
		default: // text interior node
			src += name(i) + " -> #PCDATA\n"
		}
	}
	return src
}

func join(items []string) string {
	out := items[0]
	for _, s := range items[1:] {
		out += ", " + s
	}
	return out
}

// randPath draws a random query AST over the DTD's labels. depth bounds
// the recursion so queries stay evaluable.
func randPath(r *rand.Rand, labels []string, depth int) xpath.Path {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return xpath.Self{}
		case 1:
			return xpath.Wildcard{}
		default:
			return xpath.Label{Name: labels[r.Intn(len(labels))]}
		}
	}
	switch r.Intn(10) {
	case 0:
		return xpath.Empty{}
	case 1:
		return xpath.Self{}
	case 2:
		return xpath.Wildcard{}
	case 3, 4:
		return xpath.Label{Name: labels[r.Intn(len(labels))]}
	case 5:
		return xpath.Seq{Left: randPath(r, labels, depth-1), Right: randPath(r, labels, depth-1)}
	case 6:
		return xpath.Descend{Sub: randPath(r, labels, depth-1)}
	case 7:
		return xpath.Union{Left: randPath(r, labels, depth-1), Right: randPath(r, labels, depth-1)}
	default:
		return xpath.Qualified{Sub: randPath(r, labels, depth-1), Cond: randQual(r, labels, depth-1)}
	}
}

func randQual(r *rand.Rand, labels []string, depth int) xpath.Qual {
	if depth <= 0 {
		return xpath.QPath{Path: xpath.Label{Name: labels[r.Intn(len(labels))]}}
	}
	switch r.Intn(8) {
	case 0:
		return xpath.QTrue{}
	case 1:
		return xpath.QFalse{}
	case 2:
		// xmlgen's default Value hook yields v0..v9, so some of these hit.
		return xpath.QEq{Path: randPath(r, labels, depth-1), Value: fmt.Sprintf("v%d", r.Intn(10))}
	case 3:
		return xpath.QAnd{Left: randQual(r, labels, depth-1), Right: randQual(r, labels, depth-1)}
	case 4:
		return xpath.QOr{Left: randQual(r, labels, depth-1), Right: randQual(r, labels, depth-1)}
	case 5:
		return xpath.QNot{Sub: randQual(r, labels, depth-1)}
	default:
		return xpath.QPath{Path: randPath(r, labels, depth-1)}
	}
}

// assertSortedUnique fails if nodes are out of document order or
// duplicated — the evaluator's output invariant.
func assertSortedUnique(t *testing.T, label string, nodes []*xmltree.Node) {
	t.Helper()
	seen := make(map[*xmltree.Node]bool, len(nodes))
	for i, n := range nodes {
		if seen[n] {
			t.Fatalf("%s: duplicate node %s at position %d", label, n.Path(), i)
		}
		seen[n] = true
		if i > 0 && nodes[i-1].Ord() >= n.Ord() {
			t.Fatalf("%s: out of document order at position %d", label, i)
		}
	}
}

// TestDifferentialParallelVsSequential sweeps ~200 randomized (DTD,
// document, query) triples and a grid of parallel configurations.
func TestDifferentialParallelVsSequential(t *testing.T) {
	r := rand.New(rand.NewSource(20260806))
	configs := []xpath.ParallelConfig{
		{Threshold: -1, Workers: 1},
		{Threshold: -1, Workers: 4},
		{Threshold: 64, Workers: 2},
		{}, // defaults: threshold gate usually keeps small docs sequential
	}
	triples := 0
	for triples < 200 {
		src := randomDTDSource(r)
		d, err := dtd.Parse(src)
		if err != nil {
			t.Fatalf("random DTD does not parse: %v\n%s", err, src)
		}
		doc := xmlgen.Generate(d, xmlgen.Config{
			Seed:      r.Int63(),
			MinRepeat: 1,
			MaxRepeat: 2 + r.Intn(3),
			MaxDepth:  6,
		})
		if doc.Size() > 1500 {
			// Random star chains occasionally explode; nested Descend
			// qualifiers are superlinear, so cap the document to keep the
			// 200-triple sweep fast. The large-doc partitioning paths get
			// their own dedicated test below.
			continue
		}
		labels := append(d.Types(), xpath.TextName)
		for q := 0; q < 5; q++ {
			triples++
			p := randPath(r, labels, 3)
			want, seqErr := xpath.EvalDocErr(p, doc)
			if seqErr != nil {
				t.Fatalf("sequential eval error on %s: %v", xpath.String(p), seqErr)
			}
			assertSortedUnique(t, "sequential "+xpath.String(p), want)
			for _, cfg := range configs {
				var stats xpath.ParallelStats
				got, err := xpath.EvalDocParallel(p, doc, cfg, &stats)
				if err != nil {
					t.Fatalf("parallel eval error (cfg %+v) on %s: %v", cfg, xpath.String(p), err)
				}
				assertSortedUnique(t, fmt.Sprintf("parallel %+v %s", cfg, xpath.String(p)), got)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("parallel ≠ sequential (cfg %+v)\nquery: %s\ngot %d nodes, want %d\nDTD:\n%s",
						cfg, xpath.String(p), len(got), len(want), src)
				}
			}
		}
	}
}

// TestDifferentialLargeDocPartitioning repeats the check on documents
// big enough to cross the default threshold, so the partitioned Descend
// and qualifier paths run for real (not just with Threshold: -1).
func TestDifferentialLargeDocPartitioning(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	src := `
root e0
e0 -> e1*
e1 -> e2, e3*
e2 -> e4*
e3 -> e4, e5
e4 -> e5*
e5 -> #PCDATA
`
	d := dtd.MustParse(src)
	doc := xmlgen.Generate(d, xmlgen.Config{Seed: 7, MinRepeat: 2, MaxRepeat: 9, MaxDepth: 10})
	if doc.Size() < xpath.DefaultParallelThreshold {
		t.Fatalf("generated doc too small to exercise partitioning: %d nodes", doc.Size())
	}
	labels := append(d.Types(), xpath.TextName)
	for i := 0; i < 25; i++ {
		p := randPath(r, labels, 2)
		want, err := xpath.EvalDocErr(p, doc)
		if err != nil {
			t.Fatalf("sequential: %v", err)
		}
		for _, cfg := range []xpath.ParallelConfig{{}, {Workers: 3, Threshold: 128}} {
			var stats xpath.ParallelStats
			got, err := xpath.EvalDocParallel(p, doc, cfg, &stats)
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("parallel ≠ sequential on %s (cfg %+v): got %d want %d nodes",
					xpath.String(p), cfg, len(got), len(want))
			}
		}
	}
}

// assertSameNodes fails unless got and want hold the same nodes in the
// same order (nil and empty are equal — the evaluators differ on which
// they produce for empty results).
func assertSameNodes(t *testing.T, label string, got, want []*xmltree.Node) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d nodes, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: node %d differs (%s vs %s)", label, i, got[i].Path(), want[i].Path())
		}
	}
}

// TestDifferentialIndexedVsSequential sweeps ~200 randomized (DTD,
// document, query) triples through the indexed evaluator, checking the
// indexed ≡ sequential equivalence at the document root and at random
// subcontexts. This is the suite that licenses serving traffic from the
// label index: any divergence here is a policy-enforcement bug, not a
// performance bug.
func TestDifferentialIndexedVsSequential(t *testing.T) {
	r := rand.New(rand.NewSource(20260807))
	triples := 0
	for triples < 200 {
		src := randomDTDSource(r)
		d, err := dtd.Parse(src)
		if err != nil {
			t.Fatalf("random DTD does not parse: %v\n%s", err, src)
		}
		doc := xmlgen.Generate(d, xmlgen.Config{
			Seed:      r.Int63(),
			MinRepeat: 1,
			MaxRepeat: 2 + r.Intn(3),
			MaxDepth:  6,
		})
		if doc.Size() > 1500 {
			continue // see TestDifferentialParallelVsSequential
		}
		idx := xpath.NewIndex(doc)
		labels := append(d.Types(), xpath.TextName)
		for q := 0; q < 5; q++ {
			triples++
			p := randPath(r, labels, 3)
			want, seqErr := xpath.EvalDocErr(p, doc)
			if seqErr != nil {
				t.Fatalf("sequential eval error on %s: %v", xpath.String(p), seqErr)
			}
			got, err := xpath.EvalIndexedErr(p, idx)
			if err != nil {
				t.Fatalf("indexed eval error on %s: %v", xpath.String(p), err)
			}
			assertSortedUnique(t, "indexed "+xpath.String(p), got)
			assertSameNodes(t, "indexed ≠ sequential on "+xpath.String(p)+"\nDTD:\n"+src, got, want)

			// Subcontext leg: a random context set (possibly with
			// duplicates and ancestor/descendant overlap) exercises the
			// selectivity gate and the underContext interval filter.
			all := doc.Nodes()
			ctx := make([]*xmltree.Node, 1+r.Intn(4))
			for i := range ctx {
				ctx[i] = all[r.Intn(len(all))]
			}
			wantAt, err := xpath.EvalAtErr(p, ctx)
			if err != nil {
				t.Fatalf("sequential EvalAt error on %s: %v", xpath.String(p), err)
			}
			gotAt, err := xpath.EvalIndexedAtCtx(nil, p, idx, ctx)
			if err != nil {
				t.Fatalf("indexed EvalAt error on %s: %v", xpath.String(p), err)
			}
			assertSameNodes(t, "indexed@ctx ≠ sequential@ctx on "+xpath.String(p), gotAt, wantAt)
		}
	}
}

// TestDifferentialIndexedLargeDoc repeats the indexed ≡ sequential
// check on a document big enough that the selectivity heuristic
// actually chooses the posting-list path for whole-document descends.
func TestDifferentialIndexedLargeDoc(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	src := `
root e0
e0 -> e1*
e1 -> e2, e3*
e2 -> e4*
e3 -> e4, e5
e4 -> e5*
e5 -> #PCDATA
`
	d := dtd.MustParse(src)
	doc := xmlgen.Generate(d, xmlgen.Config{Seed: 7, MinRepeat: 2, MaxRepeat: 9, MaxDepth: 10})
	if doc.Size() < 1000 {
		t.Fatalf("generated doc too small: %d nodes", doc.Size())
	}
	idx := xpath.NewIndex(doc)
	labels := append(d.Types(), xpath.TextName)
	for i := 0; i < 25; i++ {
		p := randPath(r, labels, 2)
		want, err := xpath.EvalDocErr(p, doc)
		if err != nil {
			t.Fatalf("sequential: %v", err)
		}
		got, err := xpath.EvalIndexedErr(p, idx)
		if err != nil {
			t.Fatalf("indexed: %v", err)
		}
		assertSameNodes(t, "large-doc indexed on "+xpath.String(p), got, want)
	}
	// The canonical deep-descendant shapes, pinned explicitly.
	for _, q := range []string{"//e1//e4//e5", "//e1//e5/text()", "//e1[.//e4]//e5", "//e0//e1//e3//e5"} {
		p := xpath.MustParse(q)
		assertSameNodes(t, q, xpath.EvalIndexed(p, idx), xpath.EvalDoc(p, doc))
	}
}

// TestEvalIndexedRejectsUnboundVars: the indexed evaluator shares the
// sequential evaluator's unbound-$variable contract.
func TestEvalIndexedRejectsUnboundVars(t *testing.T) {
	doc := xmlgen.Generate(dtd.MustParse("root e0\ne0 -> #PCDATA\n"), xmlgen.Config{Seed: 1})
	idx := xpath.NewIndex(doc)
	p := xpath.Qualified{Sub: xpath.Self{}, Cond: xpath.QEq{Path: xpath.Self{}, Var: "w"}}
	if _, err := xpath.EvalIndexedErr(p, idx); err == nil {
		t.Fatalf("unbound variable accepted by EvalIndexedErr")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("EvalIndexed did not panic on unbound variable")
		}
	}()
	xpath.EvalIndexed(p, idx)
}
