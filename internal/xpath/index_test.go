package xpath

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestIndexBasics(t *testing.T) {
	doc := hospitalDoc()
	idx := NewIndex(doc)
	if idx.Doc() != doc {
		t.Errorf("Doc() wrong")
	}
	if got := len(idx.Labeled("patient")); got != 3 {
		t.Errorf("Labeled(patient) = %d, want 3", got)
	}
	if got := len(idx.Labeled("nosuch")); got != 0 {
		t.Errorf("Labeled(nosuch) = %d", got)
	}
	// Posting lists are in document order.
	for _, l := range idx.labels() {
		nodes := idx.Labeled(l)
		for i := 1; i < len(nodes); i++ {
			if nodes[i-1].Ord() >= nodes[i].Ord() {
				t.Errorf("posting list for %s out of order", l)
			}
		}
	}
}

func TestEvalIndexedMatchesEval(t *testing.T) {
	doc := hospitalDoc()
	idx := NewIndex(doc)
	queries := []string{
		"//patient/name",
		"//dept//patientInfo/patient/name",
		"//bill",
		"//patient[wardNo = \"6\"]/name",
		"dept/*",
		"//(trial | regular)/bill",
		"//name/text()",
		"//dept[staffInfo/staff/doctor]//bill",
		".",
		"//.",
		"nonexistent",
		"//patient[not(treatment/trial)]",
	}
	for _, q := range queries {
		p := MustParse(q)
		want := EvalDoc(p, doc)
		got := EvalIndexed(p, idx)
		if len(got) != len(want) {
			t.Errorf("%q: indexed %d nodes, tree %d", q, len(got), len(want))
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%q: node %d differs", q, i)
			}
		}
	}
}

func TestEvalIndexedAtSubcontext(t *testing.T) {
	doc := hospitalDoc()
	idx := NewIndex(doc)
	depts := EvalDoc(MustParse("dept"), doc)
	// Evaluate //bill at the second dept only.
	got := EvalIndexedAt(MustParse("//bill"), idx, depts[1:])
	want := EvalAt(MustParse("//bill"), depts[1:])
	if !reflect.DeepEqual(got, want) {
		t.Errorf("subcontext: indexed %v, tree %v", texts(got), texts(want))
	}
	if len(got) != 1 || got[0].Text() != "70" {
		t.Errorf("subcontext bills = %v", texts(got))
	}
}

// TestEvalIndexedProperty: the indexed evaluator agrees with the tree
// evaluator on random queries.
func TestEvalIndexedProperty(t *testing.T) {
	doc := hospitalDoc()
	idx := NewIndex(doc)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randHospitalPath(r, 3)
		want := EvalDoc(p, doc)
		got := EvalIndexed(p, idx)
		if len(got) != len(want) {
			t.Logf("seed %d: %s: %d vs %d", seed, String(p), len(got), len(want))
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
