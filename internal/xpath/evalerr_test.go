package xpath

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/xmltree"
)

// TestEvalErrUnboundVariable: the error-returning variants must reject
// unbound $variables instead of panicking — this is the path untrusted
// query strings take through core.Engine.
func TestEvalErrUnboundVariable(t *testing.T) {
	doc := hospitalDoc()
	p := MustParse("//patient[wardNo = $w]/name")
	if _, err := EvalDocErr(p, doc); err == nil || !strings.Contains(err.Error(), "$w") {
		t.Errorf("EvalDocErr = %v, want unbound-variable error naming $w", err)
	}
	if _, err := EvalErr(p, doc.Root); err == nil {
		t.Errorf("EvalErr accepted unbound variable")
	}
	q := MustParseQual("wardNo = $x")
	if _, err := EvalQualErr(q, doc.Root); err == nil || !strings.Contains(err.Error(), "$x") {
		t.Errorf("EvalQualErr = %v", err)
	}
}

// TestEvalErrUnboundVariableInBooleans: the error must surface through
// and/or/not connectives, not be masked by short-circuiting on the
// other operand.
func TestEvalErrUnboundVariableInBooleans(t *testing.T) {
	doc := hospitalDoc()
	for _, q := range []string{
		"//patient[wardNo = $w and name]/name",
		"//patient[name and wardNo = $w]/name",
		"//patient[not(wardNo = $w)]/name",
	} {
		if _, err := EvalDocErr(MustParse(q), doc); err == nil {
			t.Errorf("%q: unbound variable not reported", q)
		}
	}
}

// TestEvalErrMatchesEval: on well-formed queries the error variants are
// the same evaluator.
func TestEvalErrMatchesEval(t *testing.T) {
	doc := hospitalDoc()
	for _, q := range []string{"//patient/name", "dept/patientInfo/patient[treatment]", "(//bill | //nurse)"} {
		p := MustParse(q)
		want := EvalDoc(p, doc)
		got, err := EvalDocErr(p, doc)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%q: EvalDocErr differs from EvalDoc", q)
		}
	}
}

// TestUnionOverlapNoDuplicates: overlapping union branches under a
// qualifier (and under further steps) must not leak duplicate nodes —
// the regression the eager SortDocOrder in the Union case guards.
func TestUnionOverlapNoDuplicates(t *testing.T) {
	doc := hospitalDoc()
	// Both branches select the same patients; the left is a strict
	// superset of the right.
	for _, q := range []string{
		"(//patient | dept/patientInfo/patient)[name]",
		"(//patient | //patient)/name",
		"(//patient | dept/patientInfo/patient)/treatment//bill",
		"//dept[(clinicalTrial//patient | patientInfo/patient)]",
	} {
		got := EvalDoc(MustParse(q), doc)
		seen := make(map[*xmltree.Node]bool)
		for _, n := range got {
			if seen[n] {
				t.Errorf("%q: node %s returned twice", q, n.Path())
			}
			seen[n] = true
		}
	}
	// Concrete count check: the named patients (Carol, Alice, Bob) appear
	// once each even though two of them match both branches.
	got := EvalDoc(MustParse("(//patient | dept/patientInfo/patient)[name]/name"), doc)
	if len(got) != 3 {
		t.Errorf("overlapping union under qualifier returned %d names: %v", len(got), texts(got))
	}
}

// TestUnionOverlapIndexed: the indexed evaluator must agree.
func TestUnionOverlapIndexed(t *testing.T) {
	doc := hospitalDoc()
	idx := NewIndex(doc)
	q := MustParse("(//patient | dept/patientInfo/patient)[name]/name")
	want := EvalDoc(q, doc)
	got := EvalIndexed(q, idx)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("indexed union overlap: %v vs %v", texts(got), texts(want))
	}
}
