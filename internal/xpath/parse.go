package xpath

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Parse reads a query of the fragment C from its concrete syntax.
//
// Syntax summary:
//
//	.                    the empty path ε (context node)
//	name                 child-axis label step (names may contain -._)
//	*                    child-axis wildcard
//	text()               child-axis text-node step
//	p/p, //p, p//p       composition and descendant-or-self
//	p | p                union
//	p[q]                 qualifier
//	∅                    the empty query
//
// and inside qualifiers:
//
//	p, p = "c", p = $var, q and q, q or q, not(q),
//	true(), false(), @name = "v"
//
// A single leading '/' is accepted and ignored: queries are evaluated at a
// context node (the root for whole-document queries), so /a/b ≡ a/b.
func Parse(src string) (Path, error) {
	p := &parser{src: src}
	path, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, &ParseError{msg: fmt.Sprintf("xpath: trailing input %q at offset %d", p.src[p.pos:], p.pos)}
	}
	return path, nil
}

// MustParse parses a trusted query and panics on error.
func MustParse(src string) Path {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// ParseQual parses a bare qualifier (the part between brackets).
func ParseQual(src string) (Qual, error) {
	p := &parser{src: src}
	q, err := p.parseQualOr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, &ParseError{msg: fmt.Sprintf("xpath: trailing input %q at offset %d", p.src[p.pos:], p.pos)}
	}
	return q, nil
}

// MustParseQual parses a trusted qualifier and panics on error.
func MustParseQual(src string) Qual {
	q, err := ParseQual(src)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	src string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) {
		r, w := utf8.DecodeRuneInString(p.src[p.pos:])
		if !unicode.IsSpace(r) {
			return
		}
		p.pos += w
	}
}

func (p *parser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

// ParseError is the error type of Parse and ParseQual. Servers use it
// to tell query-syntax errors (the client's fault) from internal
// failures; the message is unchanged from the historical fmt.Errorf
// form.
type ParseError struct{ msg string }

func (e *ParseError) Error() string { return e.msg }

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{msg: fmt.Sprintf("xpath: %s (offset %d in %q)", fmt.Sprintf(format, args...), p.pos, p.src)}
}

// parseUnion := parseSeq ('|' parseSeq)*
func (p *parser) parseUnion() (Path, error) {
	left, err := p.parseSeq()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if p.peek() != '|' {
			return left, nil
		}
		p.pos++
		right, err := p.parseSeq()
		if err != nil {
			return nil, err
		}
		left = Union{Left: left, Right: right}
	}
}

// parseSeq := ['/'|'//'] step (('/'|'//') step)*
func (p *parser) parseSeq() (Path, error) {
	p.skipSpace()
	// Leading // : descendant from the context; leading / is ignored (see
	// Parse doc comment).
	if strings.HasPrefix(p.src[p.pos:], "//") {
		p.pos += 2
		rest, err := p.parseSeqAfterSlash()
		if err != nil {
			return nil, err
		}
		return Descend{Sub: rest}, nil
	}
	if p.peek() == '/' {
		p.pos++
	}
	return p.parseSeqAfterSlash()
}

// parseSeqAfterSlash parses step (('/'|'//') step)* with the first step
// mandatory.
func (p *parser) parseSeqAfterSlash() (Path, error) {
	left, err := p.parseStep()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if strings.HasPrefix(p.src[p.pos:], "//") {
			p.pos += 2
			right, err := p.parseStep()
			if err != nil {
				return nil, err
			}
			// Build the remainder of the sequence onto the descend target so
			// a//b/c parses as a/(//(b/c))? No: keep left-assoc a//b then /c.
			left = Seq{Left: left, Right: Descend{Sub: right}}
			continue
		}
		if p.peek() == '/' {
			p.pos++
			right, err := p.parseStep()
			if err != nil {
				return nil, err
			}
			left = Seq{Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

// parseStep := primary ('[' qual ']')*
func (p *parser) parseStep() (Path, error) {
	prim, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if p.peek() != '[' {
			return prim, nil
		}
		p.pos++
		q, err := p.parseQualOr()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ']' {
			return nil, p.errf("expected ']'")
		}
		p.pos++
		prim = Qualified{Sub: prim, Cond: q}
	}
}

func (p *parser) parsePrimary() (Path, error) {
	p.skipSpace()
	switch {
	case p.peek() == '(':
		p.pos++
		inner, err := p.parseUnion()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return nil, p.errf("expected ')'")
		}
		p.pos++
		return inner, nil
	case p.peek() == '*':
		p.pos++
		return Wildcard{}, nil
	case p.peek() == '.':
		p.pos++
		return Self{}, nil
	case strings.HasPrefix(p.src[p.pos:], "∅"):
		p.pos += len("∅")
		return Empty{}, nil
	default:
		name := p.parseName()
		if name == "" {
			return nil, p.errf("expected a step")
		}
		if name == "text" && p.peek() == '(' && strings.HasPrefix(p.src[p.pos:], "()") {
			p.pos += 2
			return Label{Name: TextName}, nil
		}
		return Label{Name: name}, nil
	}
}

// parseQualOr := parseQualAnd ('or' parseQualAnd)*
func (p *parser) parseQualOr() (Qual, error) {
	left, err := p.parseQualAnd()
	if err != nil {
		return nil, err
	}
	for p.eatKeyword("or") {
		right, err := p.parseQualAnd()
		if err != nil {
			return nil, err
		}
		left = QOr{Left: left, Right: right}
	}
	return left, nil
}

// parseQualAnd := parseQualAtom ('and' parseQualAtom)*
func (p *parser) parseQualAnd() (Qual, error) {
	left, err := p.parseQualAtom()
	if err != nil {
		return nil, err
	}
	for p.eatKeyword("and") {
		right, err := p.parseQualAtom()
		if err != nil {
			return nil, err
		}
		left = QAnd{Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseQualAtom() (Qual, error) {
	p.skipSpace()
	if p.eatKeyword("not") {
		p.skipSpace()
		if p.peek() != '(' {
			return nil, p.errf("expected '(' after not")
		}
		p.pos++
		inner, err := p.parseQualOr()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return nil, p.errf("expected ')' after not(...)")
		}
		p.pos++
		return QNot{Sub: inner}, nil
	}
	if p.eatKeyword("true") {
		if err := p.expectParens(); err != nil {
			return nil, err
		}
		return QTrue{}, nil
	}
	if p.eatKeyword("false") {
		if err := p.expectParens(); err != nil {
			return nil, err
		}
		return QFalse{}, nil
	}
	if p.peek() == '@' {
		p.pos++
		name := p.parseName()
		if name == "" {
			return nil, p.errf("expected attribute name after '@'")
		}
		p.skipSpace()
		if p.peek() != '=' {
			return QAttrHas{Name: name}, nil
		}
		p.pos++
		val, _, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return QAttrEq{Name: name, Value: val}, nil
	}
	if p.peek() == '(' {
		// Could be a parenthesized qualifier or a parenthesized path.
		// Try qualifier first; on failure fall back to a path atom.
		save := p.pos
		p.pos++
		inner, err := p.parseQualOr()
		if err == nil {
			p.skipSpace()
			if p.peek() == ')' {
				p.pos++
				// If an '=' or path continuation follows, the parentheses
				// belonged to a path; re-parse as a path qualifier.
				p.skipSpace()
				if p.peek() != '=' && p.peek() != '/' && p.peek() != '[' {
					return inner, nil
				}
			}
		}
		p.pos = save
	}
	path, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.peek() == '=' {
		p.pos++
		val, varName, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return QEq{Path: path, Value: val, Var: varName}, nil
	}
	return QPath{Path: path}, nil
}

func (p *parser) expectParens() error {
	p.skipSpace()
	if !strings.HasPrefix(p.src[p.pos:], "()") {
		return p.errf("expected '()'")
	}
	p.pos += 2
	return nil
}

// parseLiteral parses "str", 'str', $var, or a bare number/word constant.
// It returns (value, varName).
func (p *parser) parseLiteral() (string, string, error) {
	p.skipSpace()
	switch {
	case p.peek() == '"' || p.peek() == '\'':
		quote := p.peek()
		p.pos++
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] != quote {
			p.pos++
		}
		if p.pos == len(p.src) {
			return "", "", p.errf("unterminated string literal")
		}
		val := p.src[start:p.pos]
		p.pos++
		return val, "", nil
	case p.peek() == '$':
		p.pos++
		name := p.parseName()
		if name == "" {
			return "", "", p.errf("expected variable name after '$'")
		}
		return "", name, nil
	default:
		word := p.parseName()
		if word == "" {
			return "", "", p.errf("expected a literal")
		}
		return word, "", nil
	}
}

// eatKeyword consumes the keyword when it appears as a whole word at the
// current position.
func (p *parser) eatKeyword(kw string) bool {
	p.skipSpace()
	if !strings.HasPrefix(p.src[p.pos:], kw) {
		return false
	}
	rest := p.src[p.pos+len(kw):]
	if rest != "" && isNameByte(rest[0]) {
		return false
	}
	p.pos += len(kw)
	return true
}

func (p *parser) parseName() string {
	start := p.pos
	for p.pos < len(p.src) && isNameByte(p.src[p.pos]) {
		p.pos++
	}
	return p.src[start:p.pos]
}

func isNameByte(c byte) bool {
	return c == '-' || c == '_' || c == '.' ||
		('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
}
