package xpath

import (
	"sort"
	"sync"

	"repro/internal/xmltree"
)

// This file defines the Rec path operator: the height-free translation
// of the descendant step '//' over a *recursive* security view. The
// paper's Section 4.2 unfolds a recursive view DTD to the concrete
// document height, which ties rewritten-plan size (and the plan-cache
// key) to document depth; following Mahfoud–Imine's "standard
// XPath-based" treatment, Rec instead carries the view's σ-labeled
// transition system directly and evaluates it as a product reachability
// over (document node, view type) pairs. One Rec node is valid for
// documents of any height: a chain longer than the document's height
// simply selects nothing, because every σ edge descends at least one
// document level.

// RecEdge is one transition of a RecGraph: from the owning state to To,
// consuming the document-side path Sig (the σ annotation of the view
// production edge).
type RecEdge struct {
	To  string
	Sig Path
}

// RecGraph is the σ-labeled transition system of one security view:
// states are the view's element types plus the "#text" pseudo-state,
// and an edge (A, σ, B) says "from a document node in view role A, the
// document nodes in view role B one view level down are σ's results".
// A RecGraph is immutable after construction and shared by every Rec
// node of its rewriter — Rec values stay comparable (map-key safe)
// because they hold the graph by pointer.
type RecGraph struct {
	states []string // sorted
	edges  map[string][]RecEdge
	size   int // Σ over edges of (1 + Size(Sig)); height-independent
}

// NewRecGraph builds a graph from per-state edge lists (copied).
func NewRecGraph(edges map[string][]RecEdge) *RecGraph {
	g := &RecGraph{edges: make(map[string][]RecEdge, len(edges))}
	for s, es := range edges {
		g.edges[s] = append([]RecEdge(nil), es...)
		g.states = append(g.states, s)
		for _, e := range es {
			g.size += 1 + Size(e.Sig)
		}
	}
	sort.Strings(g.states)
	return g
}

// States returns the state names, sorted.
func (g *RecGraph) States() []string { return append([]string(nil), g.states...) }

// EdgesFrom returns the transitions leaving one state (shared slice; do
// not mutate).
func (g *RecGraph) EdgesFrom(state string) []RecEdge { return g.edges[state] }

// Size is the graph's total AST weight: one node per edge plus the σ
// path sizes. It is independent of any document's height.
func (g *RecGraph) Size() int { return g.size }

// equal is deep structural equality (pointer fast path first).
func (g *RecGraph) equal(h *RecGraph) bool {
	if g == h {
		return true
	}
	if g == nil || h == nil || len(g.states) != len(h.states) {
		return false
	}
	for i, s := range g.states {
		if h.states[i] != s {
			return false
		}
	}
	for _, s := range g.states {
		ea, eb := g.edges[s], h.edges[s]
		if len(ea) != len(eb) {
			return false
		}
		for i := range ea {
			if ea[i].To != eb[i].To || !Equal(ea[i].Sig, eb[i].Sig) {
				return false
			}
		}
	}
	return true
}

// hasVars reports whether any σ edge still contains $parameters.
func (g *RecGraph) hasVars() bool {
	for _, s := range g.states {
		for _, e := range g.edges[s] {
			if len(Vars(e.Sig)) > 0 {
				return true
			}
		}
	}
	return false
}

// bindVars returns a copy of the graph with $parameters substituted.
// Callers should check hasVars first: binding a var-free graph would
// needlessly break pointer sharing between the plan's Rec nodes.
func (g *RecGraph) bindVars(env map[string]string) (*RecGraph, error) {
	edges := make(map[string][]RecEdge, len(g.edges))
	for s, es := range g.edges {
		bound := make([]RecEdge, len(es))
		for i, e := range es {
			sig, err := BindVars(e.Sig, env)
			if err != nil {
				return nil, err
			}
			bound[i] = RecEdge{To: e.To, Sig: sig}
		}
		edges[s] = bound
	}
	return NewRecGraph(edges), nil
}

// collectVars accumulates the distinct $parameters of all σ edges.
func (g *RecGraph) collectVars(seen map[string]bool, out *[]string) {
	for _, s := range g.states {
		for _, e := range g.edges[s] {
			for _, v := range Vars(e.Sig) {
				if !seen[v] {
					seen[v] = true
					*out = append(*out, v)
				}
			}
		}
	}
}

// Rec is recrw(Start, Accept) over a recursive view, height-free: it
// selects every document node reachable from a context node by a chain
// of σ transitions spelling a Start→Accept state path in G — the
// length-0 chain included, so a Rec with Start == Accept also selects
// the context node itself. Evaluation is a breadth-first product search
// over (document node, state) pairs with visited-pair dedup, so it
// terminates on any input and runs in O(pairs × σ cost) regardless of
// how many label paths the view DTD admits.
//
// Rec values are comparable (the graph is held by pointer), which the
// rewrite and optimize DP memo keys require.
type Rec struct {
	G             *RecGraph
	Start, Accept string
	// ResultLabel is the document label every selected node carries
	// (TextName when Accept is the text pseudo-state): σ paths of a
	// derived view always land on the document element their target view
	// type stands for. The optimizer reads it to type Rec results
	// without inspecting G.
	ResultLabel string
}

func (Rec) isPath() {}

// recKey is one visited (node, state) pair of the product search.
type recKey struct {
	n     *xmltree.Node
	state string
}

// recSeenPool recycles the visited-pair maps between evalRec calls:
// the product search probes the map once per (node, state) candidate,
// and rebuilding a map that immediately regrows to thousands of
// entries was a measurable share of recursive-plan allocation. Maps
// come back cleared but keep their buckets, so a steady stream of
// same-shaped plans stops allocating after the first few.
var recSeenPool sync.Pool

// evalRec runs the product reachability. step evaluates one σ path at a
// context set — the sequential and indexed evaluators pass their own
// recursive entry points, so σ edges inherit the caller's cancellation
// and index behavior (each step call ticks at least once, bounding the
// work between cancellation polls by one σ evaluation).
//
// Note the bitset evaluator does not pass through here: on compacted
// documents Rec evaluates over per-state bitset rows instead
// (bitEval.evalRec), and this map-based form serves the remaining
// slice-path inputs.
func evalRec(p Rec, ctx []*xmltree.Node, step func(Path, []*xmltree.Node) ([]*xmltree.Node, error)) ([]*xmltree.Node, error) {
	if p.G == nil || len(ctx) == 0 {
		return nil, nil
	}
	// Pre-size from the product's seed dimensions: every (context node,
	// state) pair is a potential visit, and a fresh map sized below that
	// regrows during the first level of the search.
	seen, _ := recSeenPool.Get().(map[recKey]bool)
	if seen == nil {
		seen = make(map[recKey]bool, len(ctx)*len(p.G.states))
	}
	defer func() {
		clear(seen)
		recSeenPool.Put(seen)
	}()
	frontier := map[string][]*xmltree.Node{}
	for _, v := range ctx {
		k := recKey{v, p.Start}
		if !seen[k] {
			seen[k] = true
			frontier[p.Start] = append(frontier[p.Start], v)
		}
	}
	var out []*xmltree.Node
	for len(frontier) > 0 {
		states := make([]string, 0, len(frontier))
		for s := range frontier {
			states = append(states, s)
		}
		sort.Strings(states)
		next := map[string][]*xmltree.Node{}
		for _, s := range states {
			nodes := xmltree.SortDocOrder(frontier[s])
			if s == p.Accept {
				out = append(out, nodes...)
			}
			for _, edge := range p.G.edges[s] {
				hit, err := step(edge.Sig, nodes)
				if err != nil {
					return nil, err
				}
				for _, m := range hit {
					k := recKey{m, edge.To}
					if !seen[k] {
						seen[k] = true
						next[edge.To] = append(next[edge.To], m)
					}
				}
			}
		}
		frontier = next
	}
	return xmltree.SortDocOrder(out), nil
}
