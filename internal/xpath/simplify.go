package xpath

// Simplify rewrites the query into an equivalent, usually smaller query
// by applying the algebraic laws of the fragment:
//
//	∅ ∪ p ≡ p            p/∅ ≡ ∅/p ≡ ∅          //∅ ≡ ∅
//	ε/p ≡ p/ε ≡ p        p ∪ p ≡ p
//	p[true] ≡ p          p[false] ≡ ∅            ∅[q] ≡ ∅
//	¬¬q ≡ q              true ∧ q ≡ q            false ∧ q ≡ false
//	true ∨ q ≡ true      false ∨ q ≡ q           [∅] ≡ false
//	(p1 ∪ p2)/p ≡ p1/p ∪ p2/p is NOT applied (it can grow the query).
//
// Rewriting and optimization call Simplify on their outputs so dead
// branches introduced by mechanical construction disappear.
func Simplify(p Path) Path {
	switch p := p.(type) {
	case Empty, Self, Label, Wildcard:
		return p
	case Seq:
		return MakeSeq(Simplify(p.Left), Simplify(p.Right))
	case Descend:
		return MakeDescend(Simplify(p.Sub))
	case Union:
		return MakeUnion(Simplify(p.Left), Simplify(p.Right))
	case Qualified:
		return MakeQualified(Simplify(p.Sub), SimplifyQual(p.Cond))
	default:
		return p
	}
}

// SimplifyQual applies the boolean and path laws inside a qualifier.
func SimplifyQual(q Qual) Qual {
	switch q := q.(type) {
	case QTrue, QFalse, QAttrEq, QAttrHas:
		return q
	case QPath:
		sub := Simplify(q.Path)
		if IsEmpty(sub) {
			return QFalse{}
		}
		if _, ok := sub.(Self); ok {
			return QTrue{}
		}
		return QPath{Path: sub}
	case QEq:
		sub := Simplify(q.Path)
		if IsEmpty(sub) {
			return QFalse{}
		}
		return QEq{Path: sub, Value: q.Value, Var: q.Var}
	case QAnd:
		return MakeAnd(SimplifyQual(q.Left), SimplifyQual(q.Right))
	case QOr:
		return MakeOr(SimplifyQual(q.Left), SimplifyQual(q.Right))
	case QNot:
		return MakeNot(SimplifyQual(q.Sub))
	default:
		return q
	}
}
