package xpath

import (
	"fmt"
	"strings"
)

// String renders a path in the concrete syntax accepted by Parse, so that
// Parse(String(p)) is structurally equal to p up to associativity.
func String(p Path) string {
	var b strings.Builder
	writePath(&b, p, precUnion)
	return b.String()
}

// QualString renders a qualifier (without the surrounding brackets).
func QualString(q Qual) string {
	var b strings.Builder
	writeQual(&b, q, qprecOr)
	return b.String()
}

// Operator precedence levels for paths: union < seq < step.
const (
	precUnion = iota
	precSeq
	precStep
)

func writePath(b *strings.Builder, p Path, ctx int) {
	switch p := p.(type) {
	case Empty:
		b.WriteString("∅")
	case Self:
		b.WriteString(".")
	case Label:
		if p.Name == TextName {
			b.WriteString("text()")
		} else {
			b.WriteString(p.Name)
		}
	case Wildcard:
		b.WriteString("*")
	case Seq:
		if ctx > precSeq {
			b.WriteString("(")
			writePath(b, p, precUnion)
			b.WriteString(")")
			return
		}
		// A Descend on the left must be parenthesized: "//a/b" re-parses as
		// //(a/b), not (//a)/b.
		if _, ok := p.Left.(Descend); ok {
			b.WriteString("(")
			writePath(b, p.Left, precUnion)
			b.WriteString(")")
		} else {
			writePath(b, p.Left, precSeq)
		}
		// p1/(//p2) is rendered p1//p2.
		if d, ok := p.Right.(Descend); ok {
			b.WriteString("//")
			writePath(b, d.Sub, precStep)
			return
		}
		b.WriteString("/")
		writePath(b, p.Right, precStep)
	case Descend:
		if ctx > precSeq {
			b.WriteString("(")
			writePath(b, p, precUnion)
			b.WriteString(")")
			return
		}
		b.WriteString("//")
		writePath(b, p.Sub, precStep)
	case Union:
		if ctx > precUnion {
			b.WriteString("(")
			writePath(b, p, precUnion)
			b.WriteString(")")
			return
		}
		writePath(b, p.Left, precUnion)
		b.WriteString(" | ")
		// The parser is left-associative; parenthesize a right-nested union.
		writePath(b, p.Right, precSeq)
	case Qualified:
		writePath(b, p.Sub, precStep)
		b.WriteString("[")
		writeQual(b, p.Cond, qprecOr)
		b.WriteString("]")
	case Rec:
		// Rec has no concrete syntax (it only appears in rewritten plans,
		// which are never re-parsed); render a compact opaque form.
		fmt.Fprintf(b, "rec{%s=>%s}", p.Start, p.Accept)
	default:
		fmt.Fprintf(b, "<?path %T>", p)
	}
}

// Qualifier precedence: or < and < not/atom.
const (
	qprecOr = iota
	qprecAnd
	qprecNot
)

func writeQual(b *strings.Builder, q Qual, ctx int) {
	switch q := q.(type) {
	case QTrue:
		b.WriteString("true()")
	case QFalse:
		b.WriteString("false()")
	case QPath:
		writePath(b, q.Path, precUnion)
	case QEq:
		writePath(b, q.Path, precSeq)
		b.WriteString(" = ")
		if q.Var != "" {
			b.WriteString("$")
			b.WriteString(q.Var)
		} else {
			fmt.Fprintf(b, "%q", q.Value)
		}
	case QAttrEq:
		fmt.Fprintf(b, "@%s = %q", q.Name, q.Value)
	case QAttrHas:
		fmt.Fprintf(b, "@%s", q.Name)
	case QAnd:
		if ctx > qprecAnd {
			b.WriteString("(")
			writeQual(b, q, qprecOr)
			b.WriteString(")")
			return
		}
		writeQual(b, q.Left, qprecAnd)
		b.WriteString(" and ")
		// The parser is left-associative; parenthesize a right-nested and.
		writeQual(b, q.Right, qprecNot)
	case QOr:
		if ctx > qprecOr {
			b.WriteString("(")
			writeQual(b, q, qprecOr)
			b.WriteString(")")
			return
		}
		writeQual(b, q.Left, qprecOr)
		b.WriteString(" or ")
		// The parser is left-associative; parenthesize a right-nested or.
		writeQual(b, q.Right, qprecAnd)
	case QNot:
		b.WriteString("not(")
		writeQual(b, q.Sub, qprecOr)
		b.WriteString(")")
	default:
		fmt.Fprintf(b, "<?qual %T>", q)
	}
}
