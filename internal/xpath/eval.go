package xpath

import (
	"context"
	"fmt"
	"time"

	"repro/internal/xmltree"
)

// Eval evaluates the query at a single context node and returns the
// selected nodes in document order without duplicates (the paper's v⟦p⟧).
// The query must not contain unbound variables; bind them first with
// BindVars. Eval panics on unbound variables — untrusted queries should
// go through EvalErr instead.
func Eval(p Path, ctx *xmltree.Node) []*xmltree.Node {
	return EvalAt(p, []*xmltree.Node{ctx})
}

// EvalErr is Eval returning an error instead of panicking on unbound
// $variables or malformed AST nodes.
func EvalErr(p Path, ctx *xmltree.Node) ([]*xmltree.Node, error) {
	return EvalAtErr(p, []*xmltree.Node{ctx})
}

// EvalAt evaluates the query at a set of context nodes and returns the
// union of the per-node results in document order without duplicates.
// It panics on unbound variables; see EvalAtErr.
func EvalAt(p Path, ctx []*xmltree.Node) []*xmltree.Node {
	out, err := EvalAtErr(p, ctx)
	if err != nil {
		panic("xpath: " + err.Error())
	}
	return out
}

// EvalAtErr is EvalAt returning an error instead of panicking.
func EvalAtErr(p Path, ctx []*xmltree.Node) ([]*xmltree.Node, error) {
	return EvalAtCtx(nil, p, ctx)
}

// EvalDoc evaluates a query over a whole document, using the document
// root as the context node. Queries written with a leading '/' or '//'
// behave as in standard XPath because Parse treats the root element as
// the context: //a finds every a including the root itself. It panics on
// unbound variables; see EvalDocErr.
func EvalDoc(p Path, doc *xmltree.Document) []*xmltree.Node {
	return Eval(p, doc.Root)
}

// EvalDocErr is EvalDoc returning an error instead of panicking.
func EvalDocErr(p Path, doc *xmltree.Document) ([]*xmltree.Node, error) {
	return EvalErr(p, doc.Root)
}

// EvalDocCtx is EvalDocErr honoring a context: evaluation checks for
// cancellation cooperatively (at every path step, and periodically inside
// descendant walks and qualifier-filter loops) and returns ctx.Err() once
// the context is done. A nil context disables the checks.
func EvalDocCtx(ctx context.Context, p Path, doc *xmltree.Document) ([]*xmltree.Node, error) {
	return EvalAtCtx(ctx, p, []*xmltree.Node{doc.Root})
}

// EvalAtCtx is EvalAtErr honoring a context; see EvalDocCtx.
//
// Contexts whose nodes all carry fresh numbering from one compacted
// document take the ordinal (bitset) path — same results, same
// cancellation behavior, near-zero intermediate allocation; see
// bitset_eval.go. All other contexts evaluate over node slices.
func EvalAtCtx(ctx context.Context, p Path, nodes []*xmltree.Node) ([]*xmltree.Node, error) {
	e := newSeqEval(ctx)
	if err := e.cancelled(); err != nil {
		return nil, err
	}
	if d := ordinalDoc(nodes); d != nil {
		return evalOrdinal(e, nil, d, p, nodes)
	}
	out, err := e.path(p, nodes)
	if err != nil {
		return nil, err
	}
	return xmltree.SortDocOrder(out), nil
}

// EvalDocCtxCounted is EvalDocCtx additionally reporting the
// evaluation's cooperation ticks — one per path step plus one per node
// in the hot loops (descendant walks, qualifier filtering) — as a
// nodes-visited proxy for observability. The count is maintained only
// when ctx is non-nil (the tick counter rides the cancellation
// machinery); the serving layer always passes a real context.
func EvalDocCtxCounted(ctx context.Context, p Path, doc *xmltree.Document) ([]*xmltree.Node, uint64, error) {
	e := newSeqEval(ctx)
	if err := e.cancelled(); err != nil {
		return nil, 0, err
	}
	root := []*xmltree.Node{doc.Root}
	if d := ordinalDoc(root); d != nil {
		out, err := evalOrdinal(e, nil, d, p, root)
		return out, uint64(e.ticks), err
	}
	out, err := e.path(p, root)
	if err != nil {
		return nil, uint64(e.ticks), err
	}
	return xmltree.SortDocOrder(out), uint64(e.ticks), nil
}

// EvalQualCtx is EvalQualErr honoring a context; see EvalDocCtx.
func EvalQualCtx(ctx context.Context, q Qual, v *xmltree.Node) (bool, error) {
	e := newSeqEval(ctx)
	if err := e.cancelled(); err != nil {
		return false, err
	}
	return e.qual(q, v)
}

// tickMask sets the cooperative cancellation poll rate: one ctx.Done()
// check per tickMask+1 ticks. Ticks fire once per path step and once per
// node in the hot loops (descendant collection, qualifier filtering), so
// a 1ms deadline is noticed within microseconds even mid-step on a large
// document, while the common uncancellable evaluation pays one counter
// increment per tick.
const tickMask = 127

// seqEval is one sequential evaluation: the optional cancellation
// context and the tick counter that rate-limits polling it. A seqEval is
// used by a single goroutine; the parallel evaluator creates one per
// worker rather than sharing.
type seqEval struct {
	ctx      context.Context
	ticks    uint
	deadline time.Time
	timed    bool
}

// newSeqEval captures the context's deadline once so every poll can
// compare against the clock directly; see pollCtx.
func newSeqEval(ctx context.Context) *seqEval {
	e := &seqEval{ctx: ctx}
	if ctx != nil {
		e.deadline, e.timed = ctx.Deadline()
	}
	return e
}

// pollCtx reports whether the context is done, without blocking. Beyond
// the ctx.Done() select it also checks an expired deadline against the
// clock: the runtime timer that closes Done can lag the deadline by tens
// of milliseconds when a CPU-bound evaluation monopolizes a single-P
// scheduler, and a deadline the caller set must cut the query off even
// then.
func pollCtx(ctx context.Context, deadline time.Time, timed bool) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
	}
	if timed && !time.Now().Before(deadline) {
		return context.DeadlineExceeded
	}
	return nil
}

// tick advances the poll counter and reports ctx.Err() when the context
// is done. It is cheap enough for per-node loops.
func (e *seqEval) tick() error {
	if e.ctx == nil {
		return nil
	}
	e.ticks++
	if e.ticks&tickMask != 0 {
		return nil
	}
	return e.cancelled()
}

// cancelled polls the context immediately (no tick rate limit).
func (e *seqEval) cancelled() error {
	if e.ctx == nil {
		return nil
	}
	return pollCtx(e.ctx, e.deadline, e.timed)
}

// tickN advances the poll counter by n at once — the bulk form of tick
// for interval fast paths that take whole subtrees per operation instead
// of visiting nodes one by one. It polls the context iff the jump
// crossed a poll boundary, preserving tick's at-least-once-per-128-ticks
// cancellation granularity and keeping the ticks count an honest
// nodes-visited proxy.
func (e *seqEval) tickN(n int) error {
	if e.ctx == nil || n <= 0 {
		return nil
	}
	old := e.ticks
	e.ticks += uint(n)
	if old>>7 == e.ticks>>7 {
		return nil
	}
	return e.cancelled()
}

func (e *seqEval) path(p Path, ctx []*xmltree.Node) ([]*xmltree.Node, error) {
	if len(ctx) == 0 {
		return nil, nil
	}
	if err := e.tick(); err != nil {
		return nil, err
	}
	switch p := p.(type) {
	case Empty:
		return nil, nil
	case Self:
		return append([]*xmltree.Node(nil), ctx...), nil
	case Label:
		var out []*xmltree.Node
		for _, v := range ctx {
			for _, c := range v.Children {
				if c.Label == p.Name {
					out = append(out, c)
				}
			}
		}
		return out, nil
	case Wildcard:
		var out []*xmltree.Node
		for _, v := range ctx {
			for _, c := range v.Children {
				if c.Kind == xmltree.ElementNode {
					out = append(out, c)
				}
			}
		}
		return out, nil
	case Seq:
		mid, err := e.path(p.Left, ctx)
		if err != nil {
			return nil, err
		}
		return e.path(p.Right, xmltree.SortDocOrder(mid))
	case Descend:
		// descendant-or-self, then p.Sub.
		dos, err := e.descendantOrSelf(ctx)
		if err != nil {
			return nil, err
		}
		return e.path(p.Sub, dos)
	case Union:
		left, err := e.path(p.Left, ctx)
		if err != nil {
			return nil, err
		}
		right, err := e.path(p.Right, ctx)
		if err != nil {
			return nil, err
		}
		// Dedup eagerly: overlapping branches would otherwise hand
		// duplicate nodes to an enclosing context, and while every
		// consumer re-sorts today, keeping the invariant local makes it
		// impossible to leak duplicates through a new consumer.
		return xmltree.SortDocOrder(append(left, right...)), nil
	case Qualified:
		mid, err := e.path(p.Sub, ctx)
		if err != nil {
			return nil, err
		}
		var out []*xmltree.Node
		for _, v := range xmltree.SortDocOrder(mid) {
			if err := e.tick(); err != nil {
				return nil, err
			}
			hold, err := e.qual(p.Cond, v)
			if err != nil {
				return nil, err
			}
			if hold {
				out = append(out, v)
			}
		}
		return out, nil
	case Rec:
		return evalRec(p, ctx, e.path)
	default:
		return nil, fmt.Errorf("evalPath: unknown path node %T", p)
	}
}

// descendantOrSelf collects the context nodes and all their descendants
// in document order without duplicates, polling for cancellation as it
// walks.
//
// On renumbered documents it is interval arithmetic, not a walk: each
// node's subtree is the contiguous byOrd range [ord, ord+desc], so a
// single context node's descendant-or-self set IS Subtree() — a shared
// subslice of the document's node table, returned with zero copying —
// and a multi-node context concatenates the maximal (non-nested)
// subtree intervals in document order. Subtree intervals are laminar
// (nested or disjoint, never partially overlapping), so skipping any
// context node whose ord lies inside the previous interval drops
// exactly the covered duplicates. Callers never mutate context slices
// (path's Self case copies), which is what makes sharing byOrd safe.
func (e *seqEval) descendantOrSelf(ctx []*xmltree.Node) ([]*xmltree.Node, error) {
	if len(ctx) == 1 {
		if sub := ctx[0].Subtree(); sub != nil {
			return sub, e.tickN(len(sub))
		}
	}
	if sorted, ok := subtreeIntervals(ctx); ok {
		var dos []*xmltree.Node
		limit := -1
		for _, v := range sorted {
			if v.Ord() <= limit {
				continue // nested inside the previous interval
			}
			sub := v.Subtree()
			if err := e.tickN(len(sub)); err != nil {
				return nil, err
			}
			dos = append(dos, sub...)
			limit = v.Ord() + v.DescendantCount()
		}
		return dos, nil
	}
	var walkErr error
	var dos []*xmltree.Node
	seen := make(map[*xmltree.Node]bool)
	for _, v := range ctx {
		v.Walk(func(n *xmltree.Node) bool {
			if walkErr != nil || seen[n] {
				return false
			}
			if walkErr = e.tick(); walkErr != nil {
				return false
			}
			seen[n] = true
			dos = append(dos, n)
			return true
		})
		if walkErr != nil {
			return nil, walkErr
		}
	}
	return xmltree.SortDocOrder(dos), nil
}

// subtreeIntervals prepares a context for interval-based descendant
// collection: every node must carry fresh numbering from the same
// document (Owner non-nil and shared). It returns a sorted,
// deduplicated copy of the context, or ok=false to demand the walk
// fallback.
func subtreeIntervals(ctx []*xmltree.Node) ([]*xmltree.Node, bool) {
	if len(ctx) == 0 {
		return nil, false
	}
	d := ctx[0].Owner()
	if d == nil {
		return nil, false
	}
	for _, v := range ctx[1:] {
		if v.Owner() != d {
			return nil, false
		}
	}
	return xmltree.SortDocOrder(append([]*xmltree.Node(nil), ctx...)), true
}

// EvalQual evaluates a qualifier at a context node (the paper's "[q]
// holds at v"). It panics on unbound $variables; untrusted qualifiers
// should go through EvalQualErr.
func EvalQual(q Qual, v *xmltree.Node) bool {
	hold, err := EvalQualErr(q, v)
	if err != nil {
		panic("xpath: " + err.Error())
	}
	return hold
}

// EvalQualErr is EvalQual returning an error instead of panicking on
// unbound $variables or malformed AST nodes.
func EvalQualErr(q Qual, v *xmltree.Node) (bool, error) {
	return (&seqEval{}).qual(q, v)
}

func (e *seqEval) qual(q Qual, v *xmltree.Node) (bool, error) {
	switch q := q.(type) {
	case QTrue:
		return true, nil
	case QFalse:
		return false, nil
	case QPath:
		res, err := e.path(q.Path, []*xmltree.Node{v})
		return len(res) > 0, err
	case QEq:
		if q.Var != "" {
			return false, fmt.Errorf("unbound variable $%s in qualifier", q.Var)
		}
		res, err := e.path(q.Path, []*xmltree.Node{v})
		if err != nil {
			return false, err
		}
		for _, n := range res {
			if n.Text() == q.Value {
				return true, nil
			}
		}
		return false, nil
	case QAttrEq:
		val, ok := v.Attr(q.Name)
		return ok && val == q.Value, nil
	case QAttrHas:
		_, ok := v.Attr(q.Name)
		return ok, nil
	case QAnd:
		left, err := e.qual(q.Left, v)
		if err != nil || !left {
			return false, err
		}
		return e.qual(q.Right, v)
	case QOr:
		left, err := e.qual(q.Left, v)
		if err != nil || left {
			return left, err
		}
		return e.qual(q.Right, v)
	case QNot:
		hold, err := e.qual(q.Sub, v)
		return !hold && err == nil, err
	default:
		return false, fmt.Errorf("EvalQual: unknown qualifier node %T", q)
	}
}
