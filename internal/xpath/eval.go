package xpath

import (
	"fmt"

	"repro/internal/xmltree"
)

// Eval evaluates the query at a single context node and returns the
// selected nodes in document order without duplicates (the paper's v⟦p⟧).
// The query must not contain unbound variables; bind them first with
// BindVars. Eval panics on unbound variables — untrusted queries should
// go through EvalErr instead.
func Eval(p Path, ctx *xmltree.Node) []*xmltree.Node {
	return EvalAt(p, []*xmltree.Node{ctx})
}

// EvalErr is Eval returning an error instead of panicking on unbound
// $variables or malformed AST nodes.
func EvalErr(p Path, ctx *xmltree.Node) ([]*xmltree.Node, error) {
	return EvalAtErr(p, []*xmltree.Node{ctx})
}

// EvalAt evaluates the query at a set of context nodes and returns the
// union of the per-node results in document order without duplicates.
// It panics on unbound variables; see EvalAtErr.
func EvalAt(p Path, ctx []*xmltree.Node) []*xmltree.Node {
	out, err := EvalAtErr(p, ctx)
	if err != nil {
		panic("xpath: " + err.Error())
	}
	return out
}

// EvalAtErr is EvalAt returning an error instead of panicking.
func EvalAtErr(p Path, ctx []*xmltree.Node) ([]*xmltree.Node, error) {
	out, err := evalPath(p, ctx)
	if err != nil {
		return nil, err
	}
	return xmltree.SortDocOrder(out), nil
}

// EvalDoc evaluates a query over a whole document, using the document
// root as the context node. Queries written with a leading '/' or '//'
// behave as in standard XPath because Parse treats the root element as
// the context: //a finds every a including the root itself. It panics on
// unbound variables; see EvalDocErr.
func EvalDoc(p Path, doc *xmltree.Document) []*xmltree.Node {
	return Eval(p, doc.Root)
}

// EvalDocErr is EvalDoc returning an error instead of panicking.
func EvalDocErr(p Path, doc *xmltree.Document) ([]*xmltree.Node, error) {
	return EvalErr(p, doc.Root)
}

func evalPath(p Path, ctx []*xmltree.Node) ([]*xmltree.Node, error) {
	if len(ctx) == 0 {
		return nil, nil
	}
	switch p := p.(type) {
	case Empty:
		return nil, nil
	case Self:
		return append([]*xmltree.Node(nil), ctx...), nil
	case Label:
		var out []*xmltree.Node
		for _, v := range ctx {
			for _, c := range v.Children {
				if c.Label == p.Name {
					out = append(out, c)
				}
			}
		}
		return out, nil
	case Wildcard:
		var out []*xmltree.Node
		for _, v := range ctx {
			for _, c := range v.Children {
				if c.Kind == xmltree.ElementNode {
					out = append(out, c)
				}
			}
		}
		return out, nil
	case Seq:
		mid, err := evalPath(p.Left, ctx)
		if err != nil {
			return nil, err
		}
		return evalPath(p.Right, xmltree.SortDocOrder(mid))
	case Descend:
		// descendant-or-self, then p.Sub.
		return evalPath(p.Sub, descendantOrSelf(ctx))
	case Union:
		left, err := evalPath(p.Left, ctx)
		if err != nil {
			return nil, err
		}
		right, err := evalPath(p.Right, ctx)
		if err != nil {
			return nil, err
		}
		// Dedup eagerly: overlapping branches would otherwise hand
		// duplicate nodes to an enclosing context, and while every
		// consumer re-sorts today, keeping the invariant local makes it
		// impossible to leak duplicates through a new consumer.
		return xmltree.SortDocOrder(append(left, right...)), nil
	case Qualified:
		mid, err := evalPath(p.Sub, ctx)
		if err != nil {
			return nil, err
		}
		var out []*xmltree.Node
		for _, v := range xmltree.SortDocOrder(mid) {
			hold, err := EvalQualErr(p.Cond, v)
			if err != nil {
				return nil, err
			}
			if hold {
				out = append(out, v)
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("evalPath: unknown path node %T", p)
	}
}

// descendantOrSelf collects the context nodes and all their descendants
// in document order without duplicates.
func descendantOrSelf(ctx []*xmltree.Node) []*xmltree.Node {
	var dos []*xmltree.Node
	seen := make(map[*xmltree.Node]bool)
	for _, v := range ctx {
		v.Walk(func(n *xmltree.Node) bool {
			if seen[n] {
				return false
			}
			seen[n] = true
			dos = append(dos, n)
			return true
		})
	}
	return xmltree.SortDocOrder(dos)
}

// EvalQual evaluates a qualifier at a context node (the paper's "[q]
// holds at v"). It panics on unbound $variables; untrusted qualifiers
// should go through EvalQualErr.
func EvalQual(q Qual, v *xmltree.Node) bool {
	hold, err := EvalQualErr(q, v)
	if err != nil {
		panic("xpath: " + err.Error())
	}
	return hold
}

// EvalQualErr is EvalQual returning an error instead of panicking on
// unbound $variables or malformed AST nodes.
func EvalQualErr(q Qual, v *xmltree.Node) (bool, error) {
	switch q := q.(type) {
	case QTrue:
		return true, nil
	case QFalse:
		return false, nil
	case QPath:
		res, err := evalPath(q.Path, []*xmltree.Node{v})
		return len(res) > 0, err
	case QEq:
		if q.Var != "" {
			return false, fmt.Errorf("unbound variable $%s in qualifier", q.Var)
		}
		res, err := evalPath(q.Path, []*xmltree.Node{v})
		if err != nil {
			return false, err
		}
		for _, n := range res {
			if n.Text() == q.Value {
				return true, nil
			}
		}
		return false, nil
	case QAttrEq:
		val, ok := v.Attr(q.Name)
		return ok && val == q.Value, nil
	case QAttrHas:
		_, ok := v.Attr(q.Name)
		return ok, nil
	case QAnd:
		left, err := EvalQualErr(q.Left, v)
		if err != nil || !left {
			return false, err
		}
		return EvalQualErr(q.Right, v)
	case QOr:
		left, err := EvalQualErr(q.Left, v)
		if err != nil || left {
			return left, err
		}
		return EvalQualErr(q.Right, v)
	case QNot:
		hold, err := EvalQualErr(q.Sub, v)
		return !hold && err == nil, err
	default:
		return false, fmt.Errorf("EvalQual: unknown qualifier node %T", q)
	}
}
