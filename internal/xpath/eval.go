package xpath

import (
	"fmt"

	"repro/internal/xmltree"
)

// Eval evaluates the query at a single context node and returns the
// selected nodes in document order without duplicates (the paper's v⟦p⟧).
// The query must not contain unbound variables; bind them first with
// BindVars.
func Eval(p Path, ctx *xmltree.Node) []*xmltree.Node {
	return EvalAt(p, []*xmltree.Node{ctx})
}

// EvalAt evaluates the query at a set of context nodes and returns the
// union of the per-node results in document order without duplicates.
func EvalAt(p Path, ctx []*xmltree.Node) []*xmltree.Node {
	out := evalPath(p, ctx)
	return xmltree.SortDocOrder(out)
}

// EvalDoc evaluates a query over a whole document, using the document
// root as the context node. Queries written with a leading '/' or '//'
// behave as in standard XPath because Parse treats the root element as
// the context: //a finds every a including the root itself.
func EvalDoc(p Path, doc *xmltree.Document) []*xmltree.Node {
	return Eval(p, doc.Root)
}

func evalPath(p Path, ctx []*xmltree.Node) []*xmltree.Node {
	if len(ctx) == 0 {
		return nil
	}
	switch p := p.(type) {
	case Empty:
		return nil
	case Self:
		return append([]*xmltree.Node(nil), ctx...)
	case Label:
		var out []*xmltree.Node
		for _, v := range ctx {
			for _, c := range v.Children {
				if c.Label == p.Name {
					out = append(out, c)
				}
			}
		}
		return out
	case Wildcard:
		var out []*xmltree.Node
		for _, v := range ctx {
			for _, c := range v.Children {
				if c.Kind == xmltree.ElementNode {
					out = append(out, c)
				}
			}
		}
		return out
	case Seq:
		mid := xmltree.SortDocOrder(evalPath(p.Left, ctx))
		return evalPath(p.Right, mid)
	case Descend:
		// descendant-or-self, then p.Sub.
		var dos []*xmltree.Node
		seen := make(map[*xmltree.Node]bool)
		for _, v := range ctx {
			v.Walk(func(n *xmltree.Node) bool {
				if seen[n] {
					return false
				}
				seen[n] = true
				dos = append(dos, n)
				return true
			})
		}
		dos = xmltree.SortDocOrder(dos)
		return evalPath(p.Sub, dos)
	case Union:
		left := evalPath(p.Left, ctx)
		right := evalPath(p.Right, ctx)
		return append(left, right...)
	case Qualified:
		mid := xmltree.SortDocOrder(evalPath(p.Sub, ctx))
		var out []*xmltree.Node
		for _, v := range mid {
			if EvalQual(p.Cond, v) {
				out = append(out, v)
			}
		}
		return out
	default:
		panic(fmt.Sprintf("xpath: evalPath: unknown path node %T", p))
	}
}

// EvalQual evaluates a qualifier at a context node (the paper's "[q]
// holds at v").
func EvalQual(q Qual, v *xmltree.Node) bool {
	switch q := q.(type) {
	case QTrue:
		return true
	case QFalse:
		return false
	case QPath:
		return len(evalPath(q.Path, []*xmltree.Node{v})) > 0
	case QEq:
		if q.Var != "" {
			panic(fmt.Sprintf("xpath: unbound variable $%s in qualifier", q.Var))
		}
		for _, n := range evalPath(q.Path, []*xmltree.Node{v}) {
			if n.Text() == q.Value {
				return true
			}
		}
		return false
	case QAttrEq:
		val, ok := v.Attr(q.Name)
		return ok && val == q.Value
	case QAttrHas:
		_, ok := v.Attr(q.Name)
		return ok
	case QAnd:
		return EvalQual(q.Left, v) && EvalQual(q.Right, v)
	case QOr:
		return EvalQual(q.Left, v) || EvalQual(q.Right, v)
	case QNot:
		return !EvalQual(q.Sub, v)
	default:
		panic(fmt.Sprintf("xpath: EvalQual: unknown qualifier node %T", q))
	}
}
