package xpath_test

// Fuzz targets for the error-returning evaluator path: any query or
// qualifier the parser accepts must evaluate without panicking —
// rejections (unbound $variables) must come back as errors — and the
// forced-parallel evaluator must agree with the sequential one on every
// accepted input. Seeds come from the example queries shipped in
// internal/dtds (the Table 1 Adex benchmarks and the hospital/nurse
// scenario).

import (
	"reflect"
	"testing"

	"repro/internal/dtds"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// fuzzDoc is a small document whose labels overlap the seed queries
// (hospital and Adex vocabulary) plus attribute-carrying and text nodes,
// so accepted queries actually select something.
func fuzzDoc() *xmltree.Document {
	e, tx := xmltree.E, xmltree.T
	patient := e("patient", tx("name", "v1"), tx("wardNo", "1"),
		e("treatment", e("regular", tx("bill", "v2"), tx("medication", "v3"))))
	patient.SetAttr("id", "p1")
	ad := e("real-estate",
		e("house", tx("r-e.warranty", "w1"), tx("r-e.asking-price", "90")),
		e("apartment", tx("r-e.unit-type", "2br")))
	buyer := e("buyer-info", tx("contact-info", "c1"), tx("company-id", "acme"))
	buyer.SetAttr("accessibility", "1")
	root := e("hospital",
		e("dept", e("patientInfo", patient),
			e("staffInfo", e("staff", e("nurse", tx("name", "v4"))))),
		ad, buyer)
	return xmltree.NewDocument(root)
}

func fuzzSeeds() []string {
	seeds := []string{
		"//patient/name",
		"//dept//patientInfo/patient/name",
		"//patient[wardNo = \"1\"]/name",
		"//*[name]/wardNo | //bill",
		"//staff/nurse",
		".//treatment//bill",
		"text()",
		"//patient[@id]",
		"a[b = $w]",
		"∅",
		"//*//*[not(x) and .//y]",
	}
	for _, q := range dtds.AdexQueries {
		seeds = append(seeds, q)
	}
	return seeds
}

// FuzzEval drives EvalErr (via EvalDocErr) and the forced-parallel
// evaluator with arbitrary parsed queries. Run with
// go test -fuzz=FuzzEval$ ./internal/xpath.
func FuzzEval(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	doc := fuzzDoc()
	cfg := xpath.ParallelConfig{Threshold: -1, Workers: 2}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := xpath.Parse(src)
		if err != nil {
			return // parser rejection is fine; evaluator panics are not
		}
		seq, seqErr := xpath.EvalDocErr(p, doc)
		par, parErr := xpath.EvalDocParallel(p, doc, cfg, nil)
		if (seqErr == nil) != (parErr == nil) {
			t.Fatalf("evaluators disagree on error for %q: sequential %v, parallel %v", src, seqErr, parErr)
		}
		if seqErr != nil {
			return // both rejected (e.g. unbound $variable) without panicking
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("parallel ≠ sequential for %q: %d vs %d nodes", src, len(par), len(seq))
		}
		seen := make(map[*xmltree.Node]bool, len(seq))
		for i, n := range seq {
			if seen[n] || (i > 0 && seq[i-1].Ord() >= n.Ord()) {
				t.Fatalf("result of %q violates the sorted-unique invariant at %d", src, i)
			}
			seen[n] = true
		}
	})
}

// FuzzEvalQual does the same for bare qualifiers through EvalQualErr.
func FuzzEvalQual(f *testing.F) {
	for _, seed := range []string{
		"name",
		"wardNo = \"1\"",
		"*/patient/wardNo = $wardNo",
		"//company-id and //contact-info",
		"house/r-e.asking-price and apartment/r-e.unit-type",
		"@accessibility = \"1\"",
		"not(@ssn)",
		"not(not(treatment//bill))",
		"true() and false()",
	} {
		f.Add(seed)
	}
	doc := fuzzDoc()
	f.Fuzz(func(t *testing.T, src string) {
		q, err := xpath.ParseQual(src)
		if err != nil {
			return
		}
		// Evaluate at every node so qualifiers exercise attribute, text,
		// and element contexts; errors (unbound $variables) are fine,
		// panics are the target.
		doc.Root.Walk(func(n *xmltree.Node) bool {
			_, _ = xpath.EvalQualErr(q, n)
			return true
		})
	})
}
