package xpath

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/xmltree"
)

// wideDoc builds a document with depts×patients patient records so the
// parallel evaluator has real context sets to partition.
func wideDoc(depts, patients int) *xmltree.Document {
	e, tx := xmltree.E, xmltree.T
	var deptNodes []*xmltree.Node
	for d := 0; d < depts; d++ {
		var kids []*xmltree.Node
		kids = append(kids, e("staffInfo", e("staff", e("nurse", tx("name", fmt.Sprintf("nurse-%d", d))))))
		var records []*xmltree.Node
		for p := 0; p < patients; p++ {
			records = append(records, e("patient",
				tx("name", fmt.Sprintf("p-%d-%d", d, p)),
				tx("wardNo", fmt.Sprintf("%d", p%7)),
				e("treatment", e("regular", tx("bill", fmt.Sprintf("%d", 100+p)), tx("medication", "aspirin")))))
		}
		kids = append(kids, e("patientInfo", records...))
		deptNodes = append(deptNodes, e("dept", kids...))
	}
	return xmltree.NewDocument(e("hospital", deptNodes...))
}

var parallelQueries = []string{
	"//patient/name",
	"//patient[wardNo = \"3\"]/name",
	"(//bill | //medication)",
	"(//patient | dept/patientInfo/patient)[treatment/regular]/name",
	"//dept/patientInfo/patient[treatment]/treatment//bill",
	"dept/staffInfo/staff/*",
}

// TestParallelMatchesSequential checks result equality for every query
// with parallelism forced on, across worker counts.
func TestParallelMatchesSequential(t *testing.T) {
	doc := wideDoc(8, 50)
	for _, q := range parallelQueries {
		p := MustParse(q)
		want := EvalDoc(p, doc)
		for _, workers := range []int{1, 2, 8} {
			var stats ParallelStats
			cfg := ParallelConfig{Workers: workers, Threshold: -1}
			got, err := EvalDocParallel(p, doc, cfg, &stats)
			if err != nil {
				t.Fatalf("%q workers=%d: %v", q, workers, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%q workers=%d: parallel %d nodes, sequential %d", q, workers, len(got), len(want))
			}
		}
	}
}

// TestParallelThresholdGate: small documents must stay on the
// sequential fast path and count as such.
func TestParallelThresholdGate(t *testing.T) {
	doc := wideDoc(1, 2)
	var stats ParallelStats
	got, err := EvalDocParallel(MustParse("//patient/name"), doc, ParallelConfig{}, &stats)
	if err != nil {
		t.Fatalf("EvalDocParallel: %v", err)
	}
	seq, par, _, _ := stats.Snapshot()
	if seq != 1 || par != 0 {
		t.Errorf("small doc: sequential=%d parallel=%d, want 1/0", seq, par)
	}
	if len(got) != 2 {
		t.Errorf("got %d names", len(got))
	}
}

// TestParallelCountersAdvance: forced-parallel evaluation of a union
// over a large document must record forks and partitions.
func TestParallelCountersAdvance(t *testing.T) {
	doc := wideDoc(8, 80)
	var stats ParallelStats
	cfg := ParallelConfig{Workers: 4, Threshold: 64}
	_, err := EvalDocParallel(MustParse("(//bill | //medication)"), doc, cfg, &stats)
	if err != nil {
		t.Fatalf("EvalDocParallel: %v", err)
	}
	seq, par, forks, _ := stats.Snapshot()
	if par != 1 || seq != 0 {
		t.Errorf("parallel=%d sequential=%d, want 1/0", par, seq)
	}
	if forks == 0 {
		t.Errorf("union fork counter did not advance")
	}
	// Partitioning kicks in on the descendant-or-self context set.
	var stats2 ParallelStats
	if _, err := EvalDocParallel(MustParse("//patient"), doc, ParallelConfig{Workers: 4, Threshold: 64}, &stats2); err != nil {
		t.Fatalf("EvalDocParallel: %v", err)
	}
	if _, _, _, parts := stats2.Snapshot(); parts == 0 {
		t.Errorf("partition counter did not advance")
	}
}

// TestParallelGateOverlappingContext: an overlapping context set (the
// root plus nodes inside its subtree, plus outright duplicates) must be
// sized by the union of the subtrees, not the sum — the raw sum here is
// roughly 2× the document and would flip the parallel gate on an input
// that is really below threshold.
func TestParallelGateOverlappingContext(t *testing.T) {
	doc := wideDoc(4, 40)
	depts, err := EvalDocErr(MustParse("//dept"), doc)
	if err != nil {
		t.Fatalf("//dept: %v", err)
	}
	// root + every dept + the root again: the subtree union is exactly
	// the document, but the naive sum is ~2×|doc|.
	overlap := append([]*xmltree.Node{doc.Root}, depts...)
	overlap = append(overlap, doc.Root)
	sum := 0
	for _, v := range overlap {
		sum += v.DescendantCount() + 1
	}
	thresh := doc.Size() + 1 // union size is under this, the raw sum is not
	if sum < thresh {
		t.Fatalf("test setup: raw sum %d does not exceed threshold %d", sum, thresh)
	}
	var stats ParallelStats
	got, err := EvalAtParallel(MustParse("//patient/name"), overlap, ParallelConfig{Threshold: thresh}, &stats)
	if err != nil {
		t.Fatalf("EvalAtParallel: %v", err)
	}
	seq, par, _, _ := stats.Snapshot()
	if seq != 1 || par != 0 {
		t.Errorf("overlapping context under threshold: sequential=%d parallel=%d, want 1/0", seq, par)
	}
	want, err := EvalAtErr(MustParse("//patient/name"), []*xmltree.Node{doc.Root})
	if err != nil {
		t.Fatalf("EvalAtErr: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("overlapping context: got %d nodes, want %d", len(got), len(want))
	}
}

// TestParallelOverlappingContextMatchesSequential: with parallelism
// forced on, a duplicated/overlapping context set must still produce the
// sequential evaluator's answer (the set is canonicalized before
// evaluation), and the caller's slice must not be reordered in place.
func TestParallelOverlappingContextMatchesSequential(t *testing.T) {
	doc := wideDoc(4, 40)
	patients, err := EvalDocErr(MustParse("//patient"), doc)
	if err != nil {
		t.Fatalf("//patient: %v", err)
	}
	overlap := []*xmltree.Node{patients[3], doc.Root, patients[3], patients[0]}
	orig := append([]*xmltree.Node(nil), overlap...)
	for _, q := range []string{"//patient/name", "//patient[wardNo = \"3\"]/name", "(//bill | //medication)"} {
		p := MustParse(q)
		want, err := EvalAtErr(p, overlap)
		if err != nil {
			t.Fatalf("%q sequential: %v", q, err)
		}
		got, err := EvalAtParallel(p, overlap, ParallelConfig{Workers: 4, Threshold: -1}, nil)
		if err != nil {
			t.Fatalf("%q parallel: %v", q, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%q: parallel %d nodes, sequential %d", q, len(got), len(want))
		}
	}
	if !reflect.DeepEqual(overlap, orig) {
		t.Errorf("EvalAtParallel reordered the caller's context slice")
	}
}

// TestParallelUnboundVarError: the parallel evaluator must return the
// unbound-variable error, not panic, even from worker goroutines.
func TestParallelUnboundVarError(t *testing.T) {
	doc := wideDoc(4, 40)
	p := MustParse("(//patient[wardNo = $w] | //nurse)/name")
	if _, err := EvalDocParallel(p, doc, ParallelConfig{Threshold: -1}, nil); err == nil {
		t.Errorf("unbound variable did not error")
	}
}

// TestParallelConcurrentEvals: many goroutines sharing one stats value
// and one document (run with -race).
func TestParallelConcurrentEvals(t *testing.T) {
	doc := wideDoc(6, 40)
	var stats ParallelStats
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			q := parallelQueries[g%len(parallelQueries)]
			for i := 0; i < 5; i++ {
				if _, err := EvalDocParallel(MustParse(q), doc, ParallelConfig{Threshold: -1}, &stats); err != nil {
					t.Errorf("%q: %v", q, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if _, par, _, _ := stats.Snapshot(); par != 40 {
		t.Errorf("parallel evals = %d, want 40", par)
	}
}
