package xpath

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/xmltree"
)

// wideDoc builds a document with depts×patients patient records so the
// parallel evaluator has real context sets to partition.
func wideDoc(depts, patients int) *xmltree.Document {
	e, tx := xmltree.E, xmltree.T
	var deptNodes []*xmltree.Node
	for d := 0; d < depts; d++ {
		var kids []*xmltree.Node
		kids = append(kids, e("staffInfo", e("staff", e("nurse", tx("name", fmt.Sprintf("nurse-%d", d))))))
		var records []*xmltree.Node
		for p := 0; p < patients; p++ {
			records = append(records, e("patient",
				tx("name", fmt.Sprintf("p-%d-%d", d, p)),
				tx("wardNo", fmt.Sprintf("%d", p%7)),
				e("treatment", e("regular", tx("bill", fmt.Sprintf("%d", 100+p)), tx("medication", "aspirin")))))
		}
		kids = append(kids, e("patientInfo", records...))
		deptNodes = append(deptNodes, e("dept", kids...))
	}
	return xmltree.NewDocument(e("hospital", deptNodes...))
}

var parallelQueries = []string{
	"//patient/name",
	"//patient[wardNo = \"3\"]/name",
	"(//bill | //medication)",
	"(//patient | dept/patientInfo/patient)[treatment/regular]/name",
	"//dept/patientInfo/patient[treatment]/treatment//bill",
	"dept/staffInfo/staff/*",
}

// TestParallelMatchesSequential checks result equality for every query
// with parallelism forced on, across worker counts.
func TestParallelMatchesSequential(t *testing.T) {
	doc := wideDoc(8, 50)
	for _, q := range parallelQueries {
		p := MustParse(q)
		want := EvalDoc(p, doc)
		for _, workers := range []int{1, 2, 8} {
			var stats ParallelStats
			cfg := ParallelConfig{Workers: workers, Threshold: -1}
			got, err := EvalDocParallel(p, doc, cfg, &stats)
			if err != nil {
				t.Fatalf("%q workers=%d: %v", q, workers, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%q workers=%d: parallel %d nodes, sequential %d", q, workers, len(got), len(want))
			}
		}
	}
}

// TestParallelThresholdGate: small documents must stay on the
// sequential fast path and count as such.
func TestParallelThresholdGate(t *testing.T) {
	doc := wideDoc(1, 2)
	var stats ParallelStats
	got, err := EvalDocParallel(MustParse("//patient/name"), doc, ParallelConfig{}, &stats)
	if err != nil {
		t.Fatalf("EvalDocParallel: %v", err)
	}
	seq, par, _, _ := stats.Snapshot()
	if seq != 1 || par != 0 {
		t.Errorf("small doc: sequential=%d parallel=%d, want 1/0", seq, par)
	}
	if len(got) != 2 {
		t.Errorf("got %d names", len(got))
	}
}

// TestParallelCountersAdvance: forced-parallel evaluation of a union
// over a large document must record forks and partitions.
func TestParallelCountersAdvance(t *testing.T) {
	doc := wideDoc(8, 80)
	var stats ParallelStats
	cfg := ParallelConfig{Workers: 4, Threshold: 64}
	_, err := EvalDocParallel(MustParse("(//bill | //medication)"), doc, cfg, &stats)
	if err != nil {
		t.Fatalf("EvalDocParallel: %v", err)
	}
	seq, par, forks, _ := stats.Snapshot()
	if par != 1 || seq != 0 {
		t.Errorf("parallel=%d sequential=%d, want 1/0", par, seq)
	}
	if forks == 0 {
		t.Errorf("union fork counter did not advance")
	}
	// Partitioning kicks in on the descendant-or-self context set.
	var stats2 ParallelStats
	if _, err := EvalDocParallel(MustParse("//patient"), doc, ParallelConfig{Workers: 4, Threshold: 64}, &stats2); err != nil {
		t.Fatalf("EvalDocParallel: %v", err)
	}
	if _, _, _, parts := stats2.Snapshot(); parts == 0 {
		t.Errorf("partition counter did not advance")
	}
}

// TestParallelUnboundVarError: the parallel evaluator must return the
// unbound-variable error, not panic, even from worker goroutines.
func TestParallelUnboundVarError(t *testing.T) {
	doc := wideDoc(4, 40)
	p := MustParse("(//patient[wardNo = $w] | //nurse)/name")
	if _, err := EvalDocParallel(p, doc, ParallelConfig{Threshold: -1}, nil); err == nil {
		t.Errorf("unbound variable did not error")
	}
}

// TestParallelConcurrentEvals: many goroutines sharing one stats value
// and one document (run with -race).
func TestParallelConcurrentEvals(t *testing.T) {
	doc := wideDoc(6, 40)
	var stats ParallelStats
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			q := parallelQueries[g%len(parallelQueries)]
			for i := 0; i < 5; i++ {
				if _, err := EvalDocParallel(MustParse(q), doc, ParallelConfig{Threshold: -1}, &stats); err != nil {
					t.Errorf("%q: %v", q, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if _, par, _, _ := stats.Snapshot(); par != 40 {
		t.Errorf("parallel evals = %d, want 40", par)
	}
}
