package xpath

import (
	"reflect"
	"testing"

	"repro/internal/xmltree"
)

func TestEvalNestedQualifiers(t *testing.T) {
	doc := hospitalDoc()
	// Patients in departments that have a nurse on staff.
	got := evalStrings(t, doc, `//dept[staffInfo/staff/nurse]/patientInfo/patient/name`)
	if !reflect.DeepEqual(got, []string{"Alice"}) {
		t.Errorf("nested qualifier = %v", got)
	}
	// Qualifier inside a qualifier.
	got = evalStrings(t, doc, `//dept[patientInfo[patient[wardNo = "7"]]]/patientInfo/patient/name`)
	if !reflect.DeepEqual(got, []string{"Bob"}) {
		t.Errorf("doubly nested qualifier = %v", got)
	}
}

func TestEvalQualifierOnUnion(t *testing.T) {
	doc := hospitalDoc()
	got := evalStrings(t, doc, `//(trial | regular)[medication]/bill`)
	if !reflect.DeepEqual(got, []string{"100", "70"}) {
		t.Errorf("qualifier on union = %v", got)
	}
}

func TestEvalEqualityOnElementWithMixedChildren(t *testing.T) {
	// Text() of an element concatenates only its direct text children.
	doc := xmltree.NewDocument(xmltree.E("r",
		xmltree.E("a", xmltree.Txt("he"), xmltree.E("b"), xmltree.Txt("llo")),
		xmltree.E("a", xmltree.Txt("other")),
	))
	got := EvalDoc(MustParse(`a[. = "hello"]`), doc)
	if len(got) != 1 {
		t.Fatalf("mixed-content equality matched %d nodes", len(got))
	}
}

func TestEvalSelfEquality(t *testing.T) {
	doc := hospitalDoc()
	got := evalStrings(t, doc, `//wardNo[. = "7"]`)
	if !reflect.DeepEqual(got, []string{"7"}) {
		t.Errorf("self equality = %v", got)
	}
}

func TestEvalStepsFromTextNodes(t *testing.T) {
	doc := hospitalDoc()
	// Steps below text nodes yield nothing, qualifiers on them still work.
	if got := EvalDoc(MustParse("//name/text()/*"), doc); len(got) != 0 {
		t.Errorf("children of text = %d", len(got))
	}
	if got := EvalDoc(MustParse("//name/text()/anything"), doc); len(got) != 0 {
		t.Errorf("label under text = %d", len(got))
	}
	got := EvalDoc(MustParse(`//name/text()[. = "Carol"]`), doc)
	if len(got) != 1 || got[0].Kind != xmltree.TextNode {
		t.Errorf("qualifier on text node = %v", got)
	}
}

func TestEvalUnionDocOrderInterleaving(t *testing.T) {
	doc := hospitalDoc()
	// Union operands arrive in document order even when the right operand
	// matches earlier nodes.
	got := EvalDoc(MustParse("//wardNo | //name"), doc)
	for i := 1; i < len(got); i++ {
		if got[i-1].Ord() >= got[i].Ord() {
			t.Fatalf("union results out of document order at %d", i)
		}
	}
	if len(got) != 8 { // 5 names + 3 wardNos
		t.Errorf("union size = %d, want 8", len(got))
	}
}

func TestEvalDeepDescendChain(t *testing.T) {
	doc := hospitalDoc()
	got := evalStrings(t, doc, "//dept//patient//bill")
	if !reflect.DeepEqual(got, []string{"900", "100", "70"}) {
		t.Errorf("deep descend chain = %v", got)
	}
	// //. at a leaf includes only the leaf subtree.
	bills := EvalDoc(MustParse("//bill"), doc)
	sub := EvalAt(MustParse("//."), bills[:1])
	if len(sub) != 2 { // bill element + its text
		t.Errorf("//. at leaf = %d nodes", len(sub))
	}
}

func TestEvalQualifierNeverMovesContext(t *testing.T) {
	doc := hospitalDoc()
	// p[q] returns p's nodes, not q's.
	got := EvalDoc(MustParse("//patient[treatment/regular/medication]"), doc)
	for _, n := range got {
		if n.Label != "patient" {
			t.Errorf("qualifier moved context to %s", n.Label)
		}
	}
	if len(got) != 2 {
		t.Errorf("qualified patients = %d", len(got))
	}
}

func TestEvalEmptyContexts(t *testing.T) {
	if got := EvalAt(MustParse("a"), nil); len(got) != 0 {
		t.Errorf("empty context returned %d nodes", len(got))
	}
}

func TestEvalWildcardSkipsText(t *testing.T) {
	doc := xmltree.NewDocument(xmltree.E("r", xmltree.Txt("loose"), xmltree.E("a")))
	got := EvalDoc(MustParse("*"), doc)
	if len(got) != 1 || got[0].Label != "a" {
		t.Errorf("wildcard = %v", got)
	}
	// But text() selects it.
	got = EvalDoc(MustParse("text()"), doc)
	if len(got) != 1 || got[0].Kind != xmltree.TextNode {
		t.Errorf("text() = %v", got)
	}
}

func TestEvalDescendUnionDedup(t *testing.T) {
	doc := hospitalDoc()
	// Overlapping context sets must not duplicate descendants.
	a := EvalDoc(MustParse("(. | dept)//patient"), doc)
	b := EvalDoc(MustParse("//patient"), doc)
	if len(a) != len(b) {
		t.Errorf("overlapping contexts: %d vs %d", len(a), len(b))
	}
}
