package xpath

import (
	"reflect"
	"testing"

	"repro/internal/xmltree"
)

// hospitalDoc builds a small hospital instance with two departments, one
// of which runs a clinical trial.
func hospitalDoc() *xmltree.Document {
	e, tx := xmltree.E, xmltree.T
	return xmltree.NewDocument(e("hospital",
		e("dept",
			e("clinicalTrial",
				e("patientInfo",
					e("patient", tx("name", "Carol"), tx("wardNo", "6"),
						e("treatment", e("trial", tx("bill", "900")))),
				),
			),
			e("patientInfo",
				e("patient", tx("name", "Alice"), tx("wardNo", "6"),
					e("treatment", e("regular", tx("bill", "100"), tx("medication", "aspirin")))),
			),
			e("staffInfo",
				e("staff", e("nurse", tx("name", "Nina")))),
		),
		e("dept",
			e("clinicalTrial", e("patientInfo")),
			e("patientInfo",
				e("patient", tx("name", "Bob"), tx("wardNo", "7"),
					e("treatment", e("regular", tx("bill", "70"), tx("medication", "ibuprofen")))),
			),
			e("staffInfo",
				e("staff", e("doctor", tx("name", "Dan")))),
		),
	))
}

func names(nodes []*xmltree.Node) []string {
	var out []string
	for _, n := range nodes {
		out = append(out, n.Label)
	}
	return out
}

func texts(nodes []*xmltree.Node) []string {
	var out []string
	for _, n := range nodes {
		out = append(out, n.Text())
	}
	return out
}

func evalStrings(t *testing.T, doc *xmltree.Document, query string) []string {
	t.Helper()
	p, err := Parse(query)
	if err != nil {
		t.Fatalf("Parse(%q): %v", query, err)
	}
	return texts(EvalDoc(p, doc))
}

func TestEvalChildAndDescendant(t *testing.T) {
	doc := hospitalDoc()
	if got := evalStrings(t, doc, "dept/patientInfo/patient/name"); !reflect.DeepEqual(got, []string{"Alice", "Bob"}) {
		t.Errorf("child path = %v", got)
	}
	if got := evalStrings(t, doc, "//patient/name"); !reflect.DeepEqual(got, []string{"Carol", "Alice", "Bob"}) {
		t.Errorf("descendant path = %v", got)
	}
	// Example 1.1: the difference of p1 and p2 identifies trial patients.
	p1 := evalStrings(t, doc, "//dept//patientInfo/patient/name")
	p2 := evalStrings(t, doc, "//dept/patientInfo/patient/name")
	if !reflect.DeepEqual(p1, []string{"Carol", "Alice", "Bob"}) || !reflect.DeepEqual(p2, []string{"Alice", "Bob"}) {
		t.Errorf("inference-attack queries: p1=%v p2=%v", p1, p2)
	}
}

func TestEvalWildcardUnionSelf(t *testing.T) {
	doc := hospitalDoc()
	p := MustParse("dept/*")
	got := names(EvalDoc(p, doc))
	want := []string{"clinicalTrial", "patientInfo", "staffInfo", "clinicalTrial", "patientInfo", "staffInfo"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("wildcard = %v", got)
	}
	p = MustParse("(clinicalTrial | .)/patientInfo")
	dept := doc.Root.Children[0]
	res := Eval(p, dept)
	if len(res) != 2 {
		t.Fatalf("(clinicalTrial | .)/patientInfo returned %d nodes, want 2", len(res))
	}
	if res[0].Ord() >= res[1].Ord() {
		t.Errorf("results not in document order")
	}
	if got := names(Eval(MustParse("."), dept)); !reflect.DeepEqual(got, []string{"dept"}) {
		t.Errorf("self = %v", got)
	}
}

func TestEvalQualifiers(t *testing.T) {
	doc := hospitalDoc()
	if got := evalStrings(t, doc, `//patient[wardNo = "6"]/name`); !reflect.DeepEqual(got, []string{"Carol", "Alice"}) {
		t.Errorf("equality qualifier = %v", got)
	}
	if got := evalStrings(t, doc, `//patient[treatment/regular]/name`); !reflect.DeepEqual(got, []string{"Alice", "Bob"}) {
		t.Errorf("path qualifier = %v", got)
	}
	if got := evalStrings(t, doc, `//patient[not(treatment/regular)]/name`); !reflect.DeepEqual(got, []string{"Carol"}) {
		t.Errorf("negation = %v", got)
	}
	if got := evalStrings(t, doc, `//patient[wardNo = "7" or treatment/trial]/name`); !reflect.DeepEqual(got, []string{"Carol", "Bob"}) {
		t.Errorf("disjunction = %v", got)
	}
	if got := evalStrings(t, doc, `//patient[wardNo = "6" and treatment//medication]/name`); !reflect.DeepEqual(got, []string{"Alice"}) {
		t.Errorf("conjunction = %v", got)
	}
	if got := evalStrings(t, doc, `//dept[staffInfo/staff/doctor]/patientInfo/patient/name`); !reflect.DeepEqual(got, []string{"Bob"}) {
		t.Errorf("dept qualifier = %v", got)
	}
}

func TestEvalEmptyAndNoMatch(t *testing.T) {
	doc := hospitalDoc()
	if got := EvalDoc(Empty{}, doc); len(got) != 0 {
		t.Errorf("∅ returned %v", names(got))
	}
	if got := EvalDoc(MustParse("nonexistent"), doc); len(got) != 0 {
		t.Errorf("missing label returned %v", names(got))
	}
	if got := EvalDoc(MustParse("dept/∅/name"), doc); len(got) != 0 {
		t.Errorf("path through ∅ returned %v", names(got))
	}
}

func TestEvalTextStep(t *testing.T) {
	doc := hospitalDoc()
	got := evalStrings(t, doc, "//name/text()")
	if len(got) != 5 {
		t.Fatalf("text() returned %d nodes, want 5", len(got))
	}
	if got[0] != "Carol" {
		t.Errorf("first text = %q", got[0])
	}
}

func TestEvalAttr(t *testing.T) {
	a := xmltree.A(xmltree.E("x"), "accessibility", "1")
	b := xmltree.A(xmltree.E("x"), "accessibility", "0")
	doc := xmltree.NewDocument(xmltree.E("r", a, b, xmltree.E("x")))
	got := EvalDoc(MustParse(`x[@accessibility = "1"]`), doc)
	if len(got) != 1 || got[0] != a {
		t.Errorf("attr qualifier selected %d nodes", len(got))
	}
}

func TestEvalDedupAndOrder(t *testing.T) {
	doc := hospitalDoc()
	// //patientInfo | dept/patientInfo overlaps; results must be dedup'd
	// and in document order.
	got := EvalDoc(MustParse("//patientInfo | dept/patientInfo"), doc)
	if len(got) != 4 {
		t.Fatalf("union returned %d nodes, want 4", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Ord() >= got[i].Ord() {
			t.Errorf("results out of order at %d", i)
		}
	}
	// //dept//patientInfo must not duplicate via multiple context nodes.
	got = EvalDoc(MustParse("//dept//patientInfo"), doc)
	if len(got) != 4 {
		t.Errorf("//dept//patientInfo returned %d nodes, want 4", len(got))
	}
}

func TestEvalDescendantOrSelfIncludesContext(t *testing.T) {
	doc := hospitalDoc()
	// Per the paper, queries are evaluated at a context node (the root
	// element for whole-document queries): //p is descendant-or-self
	// followed by p, so //hospital at the root finds no *child* labeled
	// hospital, while //dept includes depts at any depth.
	if got := EvalDoc(MustParse("//hospital"), doc); len(got) != 0 {
		t.Errorf("//hospital = %v", names(got))
	}
	if got := EvalDoc(MustParse("//dept"), doc); len(got) != 2 {
		t.Errorf("//dept returned %d nodes, want 2", len(got))
	}
	// .//patient ≡ //patient here.
	if got := evalStrings(t, doc, ".//patient/name"); len(got) != 3 {
		t.Errorf(".//patient = %v", got)
	}
}

func TestEvalVariablePanicsUnbound(t *testing.T) {
	doc := hospitalDoc()
	p := MustParse("//patient[wardNo = $w]")
	defer func() {
		if recover() == nil {
			t.Errorf("unbound variable did not panic")
		}
	}()
	EvalDoc(p, doc)
}

func TestBindVars(t *testing.T) {
	p := MustParse("//patient[wardNo = $w]/name")
	if got := Vars(p); !reflect.DeepEqual(got, []string{"w"}) {
		t.Fatalf("Vars = %v", got)
	}
	bound, err := BindVars(p, map[string]string{"w": "7"})
	if err != nil {
		t.Fatalf("BindVars: %v", err)
	}
	if got := texts(EvalDoc(bound, hospitalDoc())); !reflect.DeepEqual(got, []string{"Bob"}) {
		t.Errorf("bound query = %v", got)
	}
	if _, err := BindVars(p, nil); err == nil {
		t.Errorf("missing binding accepted")
	}
}

func TestEvalAtMultipleContexts(t *testing.T) {
	doc := hospitalDoc()
	depts := EvalDoc(MustParse("dept"), doc)
	if len(depts) != 2 {
		t.Fatalf("depts = %d", len(depts))
	}
	got := EvalAt(MustParse("patientInfo/patient/name"), depts)
	if !reflect.DeepEqual(texts(got), []string{"Alice", "Bob"}) {
		t.Errorf("EvalAt = %v", texts(got))
	}
}
