package xpath

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/nodeset"
	"repro/internal/xmltree"
)

// DefaultParallelThreshold is the context-set / document size below
// which the parallel evaluator falls back to the sequential fast path:
// goroutine and merge overhead beats the win on small inputs.
const DefaultParallelThreshold = 512

// ParallelConfig tunes EvalDocParallel / EvalAtParallel. The zero value
// selects sensible defaults.
type ParallelConfig struct {
	// Workers bounds the number of extra goroutines evaluating at once
	// (the calling goroutine always works too). 0 means GOMAXPROCS.
	Workers int
	// Threshold is the minimum input size (document nodes, or context
	// nodes for partitioned steps) that turns parallelism on. 0 means
	// DefaultParallelThreshold; negative forces parallelism for tests.
	Threshold int
}

func (c ParallelConfig) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c ParallelConfig) threshold() int {
	switch {
	case c.Threshold > 0:
		return c.Threshold
	case c.Threshold < 0:
		return 1
	}
	return DefaultParallelThreshold
}

// ParallelStats counts the parallel evaluator's decisions. Counters are
// atomic so one Stats value can be shared by concurrent evaluations.
type ParallelStats struct {
	// SequentialEvals counts top-level calls that stayed on the
	// sequential fast path (input under threshold).
	SequentialEvals atomic.Uint64
	// ParallelEvals counts top-level calls that used the parallel
	// evaluator.
	ParallelEvals atomic.Uint64
	// UnionForks counts union branches evaluated on their own goroutine.
	UnionForks atomic.Uint64
	// Partitions counts context-set chunks handed to the worker pool by
	// partitioned Descend and qualifier-filter steps.
	Partitions atomic.Uint64
}

// Snapshot returns a plain-value copy of the counters.
func (s *ParallelStats) Snapshot() (sequential, parallel, unionForks, partitions uint64) {
	return s.SequentialEvals.Load(), s.ParallelEvals.Load(), s.UnionForks.Load(), s.Partitions.Load()
}

// AddFrom accumulates another stats value's counters into s, so a
// per-call local ParallelStats (which reports one request's fan-out)
// can roll up into an engine-wide aggregate.
func (s *ParallelStats) AddFrom(o *ParallelStats) {
	if o == nil {
		return
	}
	s.SequentialEvals.Add(o.SequentialEvals.Load())
	s.ParallelEvals.Add(o.ParallelEvals.Load())
	s.UnionForks.Add(o.UnionForks.Load())
	s.Partitions.Add(o.Partitions.Load())
}

// EvalDocParallel evaluates a query over a whole document like
// EvalDocErr, fanning union branches and large descendant context sets
// out over a bounded worker pool. Documents smaller than the threshold
// take the sequential path unchanged. stats may be nil.
func EvalDocParallel(p Path, doc *xmltree.Document, cfg ParallelConfig, stats *ParallelStats) ([]*xmltree.Node, error) {
	return EvalDocParallelCtx(nil, p, doc, cfg, stats)
}

// EvalDocParallelCtx is EvalDocParallel honoring a context: every worker
// polls for cancellation cooperatively (at path steps, partition
// boundaries, and inside per-node loops) and the evaluation returns
// ctx.Err() once the context is done, after draining the in-flight
// workers so no goroutine outlives the call. A nil context disables the
// checks.
func EvalDocParallelCtx(ctx context.Context, p Path, doc *xmltree.Document, cfg ParallelConfig, stats *ParallelStats) ([]*xmltree.Node, error) {
	if doc.Size() < cfg.threshold() {
		if stats != nil {
			stats.SequentialEvals.Add(1)
		}
		return EvalDocCtx(ctx, p, doc)
	}
	return EvalAtParallelCtx(ctx, p, []*xmltree.Node{doc.Root}, cfg, stats)
}

// EvalAtParallel evaluates at a set of context nodes like EvalAtErr,
// with parallel union fan-out and descendant partitioning. The gate is
// the total subtree size under the context nodes. stats may be nil.
func EvalAtParallel(p Path, ctx []*xmltree.Node, cfg ParallelConfig, stats *ParallelStats) ([]*xmltree.Node, error) {
	return EvalAtParallelCtx(nil, p, ctx, cfg, stats)
}

// EvalAtParallelCtx is EvalAtParallel honoring a context; see
// EvalDocParallelCtx.
func EvalAtParallelCtx(ctx context.Context, p Path, nodes []*xmltree.Node, cfg ParallelConfig, stats *ParallelStats) ([]*xmltree.Node, error) {
	thresh := cfg.threshold()
	// The gate and evaluation both need the canonical (sorted,
	// deduplicated) context: summing subtree sizes over the raw set
	// double-counts when callers pass duplicates or overlapping nodes
	// (an ancestor and its descendant), which would flip the gate to
	// parallel on inputs that are really below threshold. Contexts that
	// already arrive canonical — ordinal-sorted outputs from the indexed
	// and bitset paths, or a single root — are used as-is; only the rest
	// pay a copy, and that copy comes from pooled scratch instead of a
	// fresh allocation per call. The scratch is released on return:
	// evaluation never retains or returns its context (leaf Self copies),
	// so nothing downstream aliases it.
	if !docOrdered(nodes) {
		scratch := ctxScratchPool.Get().(*[]*xmltree.Node)
		*scratch = append((*scratch)[:0], nodes...)
		nodes = xmltree.SortDocOrder(*scratch)
		defer func() {
			*scratch = (*scratch)[:0]
			ctxScratchPool.Put(scratch)
		}()
	}
	size := xmltree.CoverSize(nodes)
	if size < thresh {
		if stats != nil {
			stats.SequentialEvals.Add(1)
		}
		return EvalAtCtx(ctx, p, nodes)
	}
	if stats != nil {
		stats.ParallelEvals.Add(1)
	}
	e := &pEval{ctx: ctx, sem: make(chan struct{}, cfg.workers()), threshold: thresh, stats: stats}
	if ctx != nil {
		e.deadline, e.timed = ctx.Deadline()
	}
	if err := e.cancelled(); err != nil {
		return nil, err
	}
	out, err := e.eval(p, nodes)
	if err != nil {
		return nil, err
	}
	return unionDocOrder(out), nil
}

// ctxScratchPool recycles the context-copy slices EvalAtParallelCtx
// needs for non-canonical inputs. Entries keep their capacity, so a
// steady request mix stops growing them almost immediately.
var ctxScratchPool = sync.Pool{New: func() any { return new([]*xmltree.Node) }}

// docOrdered reports whether nodes are already canonical: strictly
// increasing in document order, all carrying fresh numbering from one
// document. Strict increase implies deduplication (within one
// renumbered document an ordinal identifies its node), so a true
// return means SortDocOrder would be the identity.
func docOrdered(nodes []*xmltree.Node) bool {
	if len(nodes) == 0 {
		return true
	}
	d := nodes[0].Owner()
	if d == nil {
		return false
	}
	prev := -1
	for _, n := range nodes {
		if n.Owner() != d || n.Ord() <= prev {
			return false
		}
		prev = n.Ord()
	}
	return true
}

// unionDocOrder merges result fragments into one sorted, deduplicated
// slice. When every node carries fresh numbering from one compacted
// document the merge is a pooled-bitset OR plus one ascending
// materialization — O(total + universe/64) with a single exactly-sized
// allocation — replacing the O(n log n) sort the slice merge pays.
// Mixed, stale, or uncompacted inputs fall back to that sort.
func unionDocOrder(parts ...[]*xmltree.Node) []*xmltree.Node {
	total := 0
	var d *xmltree.Document
	for _, part := range parts {
		total += len(part)
		if d == nil && len(part) > 0 {
			d = part[0].Owner()
		}
	}
	if total == 0 {
		return nil
	}
	if d == nil || !d.Compacted() {
		return sortMerge(parts, total)
	}
	s := nodeset.Get(d.Size())
	defer nodeset.Put(s)
	for _, part := range parts {
		for _, n := range part {
			if n.Owner() != d {
				return sortMerge(parts, total)
			}
			s.Add(n.Ord())
		}
	}
	byOrd := d.Nodes()
	out := make([]*xmltree.Node, 0, s.Count())
	s.ForEach(func(ord int) { out = append(out, byOrd[ord]) })
	return out
}

// sortMerge is unionDocOrder's fallback: concatenate and sort.
func sortMerge(parts [][]*xmltree.Node, total int) []*xmltree.Node {
	out := make([]*xmltree.Node, 0, total)
	for _, part := range parts {
		out = append(out, part...)
	}
	return xmltree.SortDocOrder(out)
}

// pEval is one parallel evaluation: the cancellation context, a token
// bucket bounding extra goroutines, the partition granularity, and
// optional counters. The document tree is read-only during evaluation,
// so workers share it freely; every intermediate slice is
// goroutine-local, and each worker polls the shared context through its
// own seqEval so cancellation needs no cross-goroutine coordination
// beyond ctx.Done().
type pEval struct {
	ctx       context.Context
	sem       chan struct{}
	threshold int
	stats     *ParallelStats
	deadline  time.Time
	timed     bool
}

// cancelled polls the evaluation's context (deadline-aware; see pollCtx).
// It is called at every path step and before every partition chunk, so a
// cancelled evaluation stops descending promptly; in-flight workers
// notice through their own per-goroutine polls.
func (e *pEval) cancelled() error {
	if e.ctx == nil {
		return nil
	}
	return pollCtx(e.ctx, e.deadline, e.timed)
}

// tryAcquire claims a worker token without blocking; callers that get
// none do the work inline, which keeps the pool deadlock-free no matter
// how deeply unions nest.
func (e *pEval) tryAcquire() bool {
	select {
	case e.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

func (e *pEval) release() { <-e.sem }

func (e *pEval) eval(p Path, ctx []*xmltree.Node) ([]*xmltree.Node, error) {
	if len(ctx) == 0 {
		return nil, nil
	}
	if err := e.cancelled(); err != nil {
		return nil, err
	}
	switch p := p.(type) {
	case Seq:
		mid, err := e.eval(p.Left, ctx)
		if err != nil {
			return nil, err
		}
		return e.eval(p.Right, xmltree.SortDocOrder(mid))
	case Descend:
		dos, err := newSeqEval(e.ctx).descendantOrSelf(ctx)
		if err != nil {
			return nil, err
		}
		return e.evalChunked(p.Sub, dos)
	case Union:
		if e.tryAcquire() {
			if e.stats != nil {
				e.stats.UnionForks.Add(1)
			}
			var (
				left    []*xmltree.Node
				leftErr error
				done    = make(chan struct{})
			)
			go func() {
				defer close(done)
				defer e.release()
				left, leftErr = e.eval(p.Left, ctx)
			}()
			right, rightErr := e.eval(p.Right, ctx)
			<-done
			if leftErr != nil {
				return nil, leftErr
			}
			if rightErr != nil {
				return nil, rightErr
			}
			return unionDocOrder(left, right), nil
		}
		left, err := e.eval(p.Left, ctx)
		if err != nil {
			return nil, err
		}
		right, err := e.eval(p.Right, ctx)
		if err != nil {
			return nil, err
		}
		return unionDocOrder(left, right), nil
	case Qualified:
		mid, err := e.eval(p.Sub, ctx)
		if err != nil {
			return nil, err
		}
		return e.filterChunked(p.Cond, xmltree.SortDocOrder(mid))
	default:
		// Leaf steps (Empty, Self, Label, Wildcard) and Rec have no
		// inner parallelism; the sequential evaluator handles them and
		// any unknown node's error, taking its ordinal path on
		// compacted documents (per-state bitset rows for Rec).
		se := newSeqEval(e.ctx)
		if d := ordinalDoc(ctx); d != nil {
			return evalOrdinal(se, nil, d, p, ctx)
		}
		return se.path(p, ctx)
	}
}

// evalChunked evaluates sub over a (sorted, deduplicated) context set,
// partitioning it across the worker pool when it is large. Evaluation
// distributes over context-set union, so chunk results merged through
// SortDocOrder equal the sequential result.
func (e *pEval) evalChunked(sub Path, nodes []*xmltree.Node) ([]*xmltree.Node, error) {
	chunks := e.split(nodes)
	if len(chunks) == 1 {
		return e.eval(sub, nodes)
	}
	results := make([][]*xmltree.Node, len(chunks))
	errs := make([]error, len(chunks))
	e.forEachChunk(chunks, func(i int) {
		results[i], errs[i] = e.eval(sub, chunks[i])
	})
	for i := range chunks {
		if errs[i] != nil {
			return nil, errs[i]
		}
	}
	return unionDocOrder(results...), nil
}

// filterChunked applies a qualifier filter over a sorted candidate set,
// partitioning it when large — qualifiers can hide arbitrarily expensive
// paths, so this is where p[q] spends its time.
func (e *pEval) filterChunked(q Qual, mid []*xmltree.Node) ([]*xmltree.Node, error) {
	filter := func(nodes []*xmltree.Node) ([]*xmltree.Node, error) {
		// One seqEval per chunk: the tick counter must stay
		// goroutine-local. On compacted documents the per-node condition
		// checks run through a chunk-local bitEval, so the qualifier's
		// inner paths evaluate over pooled sets instead of allocating
		// slices per candidate.
		se := newSeqEval(e.ctx)
		qual := se.qual
		if d := ordinalDoc(nodes); d != nil {
			b := &bitEval{se: se, doc: d}
			defer b.release()
			qual = b.qual
		}
		var out []*xmltree.Node
		for _, v := range nodes {
			if err := se.tick(); err != nil {
				return nil, err
			}
			hold, err := qual(q, v)
			if err != nil {
				return nil, err
			}
			if hold {
				out = append(out, v)
			}
		}
		return out, nil
	}
	chunks := e.split(mid)
	if len(chunks) == 1 {
		return filter(mid)
	}
	results := make([][]*xmltree.Node, len(chunks))
	errs := make([]error, len(chunks))
	e.forEachChunk(chunks, func(i int) {
		results[i], errs[i] = filter(chunks[i])
	})
	// Chunks are contiguous ranges of the sorted input, so concatenation
	// preserves document order without a re-sort.
	var out []*xmltree.Node
	for i := range chunks {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out = append(out, results[i]...)
	}
	return out, nil
}

// split partitions nodes into contiguous chunks of at least threshold
// nodes, capped at workers+1 chunks; below 2×threshold it returns the
// input as a single chunk.
func (e *pEval) split(nodes []*xmltree.Node) [][]*xmltree.Node {
	n := len(nodes)
	if n < 2*e.threshold {
		return [][]*xmltree.Node{nodes}
	}
	num := n / e.threshold
	if max := cap(e.sem) + 1; num > max {
		num = max
	}
	size := (n + num - 1) / num
	chunks := make([][]*xmltree.Node, 0, num)
	for start := 0; start < n; start += size {
		end := start + size
		if end > n {
			end = n
		}
		chunks = append(chunks, nodes[start:end])
	}
	return chunks
}

// forEachChunk runs fn(i) for every chunk, using a goroutine per chunk
// when a worker token is free and the calling goroutine otherwise. It
// always waits for every dispatched goroutine before returning — on
// cancellation the chunks themselves fail fast (fn leads back to eval or
// filter, both of which poll the context), so the drain is prompt and no
// worker outlives the evaluation.
func (e *pEval) forEachChunk(chunks [][]*xmltree.Node, fn func(i int)) {
	var wg sync.WaitGroup
	for i := 1; i < len(chunks); i++ {
		if !e.tryAcquire() {
			fn(i)
			continue
		}
		if e.stats != nil {
			e.stats.Partitions.Add(1)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer e.release()
			fn(i)
		}(i)
	}
	fn(0)
	wg.Wait()
}
