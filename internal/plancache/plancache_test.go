package plancache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGetPut(t *testing.T) {
	c := New[int](4)
	if _, ok := c.Get("a"); ok {
		t.Fatalf("empty cache returned a hit")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Errorf("Get(a) = %d, %v", v, ok)
	}
	c.Put("a", 10) // refresh
	if v, _ := c.Get("a"); v != 10 {
		t.Errorf("refreshed Get(a) = %d", v)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	c := New[int](3) // single shard: capacity < 2*defaultShards
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)
	c.Get("a") // a becomes most recent; b is now LRU
	c.Put("d", 4)
	if _, ok := c.Get("b"); ok {
		t.Errorf("LRU entry b survived eviction")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("entry %s evicted unexpectedly", k)
		}
	}
	if got := c.Stats().Evictions; got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
}

func TestBoundHolds(t *testing.T) {
	for _, capacity := range []int{1, 3, 16, 100} {
		c := New[int](capacity)
		for i := 0; i < 10*capacity; i++ {
			c.Put(fmt.Sprintf("key-%d", i), i)
		}
		// Sharded caches round the per-shard bound up, so allow the
		// documented slack of shards-1 entries.
		max := capacity + len(c.shards) - 1
		if n := c.Len(); n > max {
			t.Errorf("capacity %d: Len = %d exceeds bound %d", capacity, n, max)
		}
	}
}

func TestZeroCapacity(t *testing.T) {
	c := New[string](0)
	c.Put("a", "x")
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
	c.Put("b", "y")
	if c.Len() != 1 {
		t.Errorf("after second Put, Len = %d, want 1", c.Len())
	}
}

func TestGetOrCompute(t *testing.T) {
	c := New[int](4)
	calls := 0
	get := func() (int, error) { calls++; return 42, nil }
	v, err := c.GetOrCompute("k", get)
	if err != nil || v != 42 {
		t.Fatalf("GetOrCompute = %d, %v", v, err)
	}
	if v, _ := c.GetOrCompute("k", get); v != 42 {
		t.Fatalf("second GetOrCompute = %d", v)
	}
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1", calls)
	}
	if _, err := c.GetOrCompute("bad", func() (int, error) { return 0, fmt.Errorf("boom") }); err == nil {
		t.Errorf("compute error swallowed")
	}
	if _, ok := c.Get("bad"); ok {
		t.Errorf("failed compute was cached")
	}
}

// TestGetOrComputeSingleflight is the cold-start stampede regression:
// N concurrent misses on one key must run compute exactly once, with
// every caller receiving the computed value.
func TestGetOrComputeSingleflight(t *testing.T) {
	c := New[int](8)
	const workers = 64
	var computes atomic.Int32
	gate := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]int, workers)
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-gate
			results[w], errs[w] = c.GetOrCompute("hot", func() (int, error) {
				computes.Add(1)
				// Hold the computation open long enough that every other
				// worker arrives while it is in flight.
				time.Sleep(20 * time.Millisecond)
				return 7, nil
			})
		}(w)
	}
	close(gate)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Errorf("compute ran %d times under %d concurrent misses, want 1", n, workers)
	}
	for w := 0; w < workers; w++ {
		if errs[w] != nil || results[w] != 7 {
			t.Fatalf("worker %d: GetOrCompute = %d, %v", w, results[w], errs[w])
		}
	}
	if v, ok := c.Get("hot"); !ok || v != 7 {
		t.Errorf("value not cached after singleflight: %d, %v", v, ok)
	}
}

// TestGetOrComputeSingleflightError checks a failed compute is shared
// with every waiter and nothing is cached.
func TestGetOrComputeSingleflightError(t *testing.T) {
	c := New[int](8)
	var computes atomic.Int32
	gate := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for w := range errs {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-gate
			_, errs[w] = c.GetOrCompute("bad", func() (int, error) {
				computes.Add(1)
				time.Sleep(10 * time.Millisecond)
				return 0, fmt.Errorf("boom")
			})
		}(w)
	}
	close(gate)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Errorf("failing compute ran %d times, want 1", n)
	}
	for w, err := range errs {
		if err == nil {
			t.Errorf("worker %d: error not shared", w)
		}
	}
	if _, ok := c.Get("bad"); ok {
		t.Errorf("failed compute was cached")
	}
	// The key must be retryable after the failure clears the flight.
	if v, err := c.GetOrCompute("bad", func() (int, error) { return 3, nil }); err != nil || v != 3 {
		t.Errorf("retry after failed flight = %d, %v", v, err)
	}
}

// TestGetOrComputeDistinctKeysParallel checks singleflight does not
// serialize unrelated keys: two computes on different keys must be able
// to overlap in time.
func TestGetOrComputeDistinctKeysParallel(t *testing.T) {
	c := New[int](8)
	both := make(chan struct{}, 2)
	rendezvous := func() {
		both <- struct{}{}
		deadline := time.After(2 * time.Second)
		for len(both) < 2 {
			select {
			case <-deadline:
				return // the test below reports the failure
			default:
				time.Sleep(time.Millisecond)
			}
		}
	}
	var wg sync.WaitGroup
	for _, k := range []string{"left", "right"} {
		wg.Add(1)
		go func(k string) {
			defer wg.Done()
			c.GetOrCompute(k, func() (int, error) { rendezvous(); return 1, nil })
		}(k)
	}
	wg.Wait()
	if len(both) != 2 {
		t.Fatalf("computes on distinct keys did not overlap (rendezvous count %d)", len(both))
	}
}

func TestStatsCounters(t *testing.T) {
	c := New[int](8)
	c.Put("a", 1)
	c.Get("a")
	c.Get("a")
	c.Get("missing")
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 || s.Entries != 1 || s.Capacity != 8 {
		t.Errorf("stats = %+v", s)
	}
}

func TestPurge(t *testing.T) {
	c := New[int](8)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Purge()
	if c.Len() != 0 {
		t.Errorf("Len after Purge = %d", c.Len())
	}
	if _, ok := c.Get("a"); ok {
		t.Errorf("purged entry still present")
	}
}

// TestConcurrent hammers one cache from many goroutines (run with -race).
func TestConcurrent(t *testing.T) {
	c := New[int](64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("key-%d", (g*7+i)%100)
				if v, ok := c.Get(k); ok && v < 0 {
					t.Errorf("corrupt value %d", v)
				}
				c.Put(k, i)
				if i%50 == 0 {
					c.Len()
					c.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > 64+len(c.shards)-1 {
		t.Errorf("bound exceeded after concurrent load: %d", n)
	}
}
