// Package plancache provides a size-bounded, mutex-sharded LRU cache
// for the query-serving layer: rewritten-and-optimized query plans
// (core.Prepared), per-height rewriters for recursive views, and derived
// enforcement engines are all expensive artifacts keyed by small strings,
// and the paper's Fig. 3 pipeline recomputes them per request unless
// something holds on to them. A Cache keeps the hot entries, evicts in
// least-recently-used order, and is safe for concurrent use; sharding
// keeps lock contention low when many goroutines serve queries at once.
package plancache

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// defaultShards is the shard count for caches large enough to split;
// a power of two so the hash can be masked instead of divided.
const defaultShards = 16

// Cache is a bounded LRU map from string keys to values of type V.
// The bound is global (summed over shards). A zero or negative capacity
// is treated as capacity 1 so a Cache is never unbounded by accident.
type Cache[V any] struct {
	shards []shard[V]
	mask   uint32
	cap    int

	// flight deduplicates concurrent GetOrCompute misses per key: the
	// first miss becomes the leader and computes; followers block on the
	// leader's call and share its result. Guarded by flightMu, which is
	// never held while compute runs.
	flightMu sync.Mutex
	flight   map[string]*call[V]

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

// call is one in-flight compute shared by every goroutine that missed on
// its key while it ran.
type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

type shard[V any] struct {
	mu    sync.Mutex
	items map[string]*list.Element
	order *list.List // front = most recently used
	cap   int
}

type entry[V any] struct {
	key string
	val V
}

// New returns a cache holding at most capacity entries.
func New[V any](capacity int) *Cache[V] {
	if capacity < 1 {
		capacity = 1
	}
	n := defaultShards
	// Small caches get one shard so the global bound is exact; sharded
	// caches round the per-shard bound up, which keeps Put cheap at the
	// cost of a slightly loose global bound (at most capacity+n-1).
	if capacity < 2*n {
		n = 1
	}
	c := &Cache[V]{shards: make([]shard[V], n), mask: uint32(n - 1), cap: capacity, flight: make(map[string]*call[V])}
	per := (capacity + n - 1) / n
	for i := range c.shards {
		c.shards[i].items = make(map[string]*list.Element)
		c.shards[i].order = list.New()
		c.shards[i].cap = per
	}
	return c
}

// Capacity returns the configured entry bound.
func (c *Cache[V]) Capacity() int { return c.cap }

func (c *Cache[V]) shardFor(key string) *shard[V] {
	return &c.shards[fnv32(key)&c.mask]
}

// Get returns the cached value for key and marks it most recently used.
func (c *Cache[V]) Get(key string) (V, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	el, ok := s.items[key]
	if ok {
		s.order.MoveToFront(el)
		v := el.Value.(*entry[V]).val
		s.mu.Unlock()
		c.hits.Add(1)
		return v, true
	}
	s.mu.Unlock()
	c.misses.Add(1)
	var zero V
	return zero, false
}

// Put inserts or refreshes key, evicting the least recently used entry
// of the key's shard when the shard is full.
func (c *Cache[V]) Put(key string, val V) {
	s := c.shardFor(key)
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		el.Value.(*entry[V]).val = val
		s.order.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	s.items[key] = s.order.PushFront(&entry[V]{key: key, val: val})
	var evicted int
	for s.order.Len() > s.cap {
		back := s.order.Back()
		s.order.Remove(back)
		delete(s.items, back.Value.(*entry[V]).key)
		evicted++
	}
	s.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(uint64(evicted))
	}
}

// GetOrCompute returns the cached value for key, or computes, caches,
// and returns it. Concurrent misses on the same key run compute exactly
// once (per-key singleflight): the first miss computes while the others
// wait and share its result, so a cold-start stampede of identical
// requests cannot burn one derivation per request. compute runs without
// any shard lock (or the flight lock) held, so it may itself use the
// cache — but a compute that GetOrComputes its own key would deadlock,
// where before it would have recursed forever. A compute error is
// returned to the leader and every waiter without caching anything.
func (c *Cache[V]) GetOrCompute(key string, compute func() (V, error)) (V, error) {
	if v, ok := c.Get(key); ok {
		return v, nil
	}
	c.flightMu.Lock()
	if cl, inFlight := c.flight[key]; inFlight {
		c.flightMu.Unlock()
		<-cl.done
		return cl.val, cl.err
	}
	cl := &call[V]{done: make(chan struct{})}
	c.flight[key] = cl
	c.flightMu.Unlock()

	// Re-check the cache once leadership is held: a previous leader may
	// have Put the value between our Get miss and taking the flight lock.
	if v, ok := c.Get(key); ok {
		cl.val = v
	} else {
		cl.val, cl.err = compute()
		if cl.err == nil {
			c.Put(key, cl.val)
		}
	}
	c.flightMu.Lock()
	delete(c.flight, key)
	c.flightMu.Unlock()
	close(cl.done)
	if cl.err != nil {
		var zero V
		return zero, cl.err
	}
	return cl.val, nil
}

// Len returns the current number of cached entries.
func (c *Cache[V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// Purge drops every entry. Counters are preserved.
func (c *Cache[V]) Purge() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.items = make(map[string]*list.Element)
		s.order.Init()
		s.mu.Unlock()
	}
}

// Each calls fn once per cached entry with the key and current value.
// The snapshot is taken shard by shard under the shard locks, so fn must
// not touch the cache; entries added or evicted while Each runs may or
// may not be seen. Recency is not updated. It exists so observability
// endpoints can roll cached artifacts' own counters (e.g. per-binding
// engine stats) up into one report.
func (c *Cache[V]) Each(fn func(key string, v V)) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		snap := make(map[string]V, len(s.items))
		for k, el := range s.items {
			snap[k] = el.Value.(*entry[V]).val
		}
		s.mu.Unlock()
		for k, v := range snap {
			fn(k, v)
		}
	}
}

// Stats is a point-in-time snapshot of the cache counters. The JSON
// field names are part of the /statsz wire format.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
}

// Stats snapshots the counters and current size.
func (c *Cache[V]) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.Len(),
		Capacity:  c.cap,
	}
}

// fnv32 is the FNV-1a hash, inlined to avoid a hash.Hash allocation on
// every cache operation.
func fnv32(s string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}
