package core

// QueryMetrics surfacing suite: the per-request carrier contracts the
// serving layer depends on. SetRepr on answer-cache hits must report
// the representation the cached answer is stored in (the documented
// ModeCached contract in internal/obs), and PlanText — the fingerprint
// basis for internal/qstats — must be set on every successful path:
// plan-cache miss, plan-cache hit, and answer-cache hit.

import (
	"context"
	"testing"

	"repro/internal/obs"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// queryWithMetrics runs q through e with a fresh carrier and returns it.
func queryWithMetrics(t *testing.T, e *Engine, doc *xmltree.Document, q xpath.Path) *obs.QueryMetrics {
	t.Helper()
	qm := &obs.QueryMetrics{}
	if _, err := e.QueryCtx(obs.WithQueryMetrics(context.Background(), qm), doc, q); err != nil {
		t.Fatal(err)
	}
	return qm
}

// TestCachedHitSetReprBitset: on a compacted document a cached answer
// reports ReprBitset — the representation bitset evaluation stored it
// in — not a stale or empty repr.
func TestCachedHitSetReprBitset(t *testing.T) {
	on, _ := nurseEngines(t, "1")
	doc := genHospital(7) // xmlgen compacts, so the bitset path applies
	if !doc.Compacted() {
		t.Fatal("generated document unexpectedly not compacted")
	}
	q := xpath.MustParse("//patient")

	first := queryWithMetrics(t, on, doc, q)
	if first.EvalMode == obs.ModeCached {
		t.Fatalf("first query reported cached; cache should be cold")
	}
	if first.SetRepr != obs.ReprBitset {
		t.Fatalf("first query repr = %q, want %q", first.SetRepr, obs.ReprBitset)
	}

	second := queryWithMetrics(t, on, doc, q)
	if second.EvalMode != obs.ModeCached || second.AnswerCacheHit != "equal" {
		t.Fatalf("second query mode=%q hit=%q, want cached/equal", second.EvalMode, second.AnswerCacheHit)
	}
	if second.SetRepr != obs.ReprBitset {
		t.Errorf("cached hit repr = %q, want %q", second.SetRepr, obs.ReprBitset)
	}
}

// TestCachedHitSetReprSlice: same contract on an uncompacted document,
// where both evaluation and the cached answer use the slice repr.
func TestCachedHitSetReprSlice(t *testing.T) {
	on, _ := nurseEngines(t, "1")
	// Parse (like xmlgen) compacts; cloning the tree into a fresh
	// document skips that, giving the slice-repr path.
	reparsed := xmltree.NewDocument(genHospital(7).Root.Clone())
	if reparsed.Compacted() {
		t.Fatal("rebuilt document unexpectedly compacted")
	}
	q := xpath.MustParse("//patient")

	if qm := queryWithMetrics(t, on, reparsed, q); qm.SetRepr != obs.ReprSlice {
		t.Fatalf("first query repr = %q, want %q", qm.SetRepr, obs.ReprSlice)
	}
	second := queryWithMetrics(t, on, reparsed, q)
	if second.EvalMode != obs.ModeCached {
		t.Fatalf("second query mode = %q, want cached", second.EvalMode)
	}
	if second.SetRepr != obs.ReprSlice {
		t.Errorf("cached hit repr = %q, want %q", second.SetRepr, obs.ReprSlice)
	}
}

// TestPlanTextSurfaced: PlanText carries the rendered optimized plan on
// plan-cache misses, plan-cache hits, and answer-cache hits alike, and
// is identical across them — the stability the fingerprint registry
// keys on.
func TestPlanTextSurfaced(t *testing.T) {
	on, off := nurseEngines(t, "1")
	doc := genHospital(7)
	q := xpath.MustParse("//patient[.//medication]")

	first := queryWithMetrics(t, on, doc, q) // plan miss, answer miss
	if first.PlanCacheHit {
		t.Fatal("first query reported a plan-cache hit on a cold cache")
	}
	if first.PlanText == "" {
		t.Fatal("PlanText empty on the evaluated path")
	}
	second := queryWithMetrics(t, on, doc, q) // plan hit, answer hit
	if !second.PlanCacheHit || second.EvalMode != obs.ModeCached {
		t.Fatalf("second query: planHit=%v mode=%q, want true/cached", second.PlanCacheHit, second.EvalMode)
	}
	if second.PlanText != first.PlanText {
		t.Errorf("PlanText changed across cache hit: %q vs %q", second.PlanText, first.PlanText)
	}

	// A cache-off engine surfaces the same text: PlanText depends on the
	// policy and query, not on caching configuration.
	plain := queryWithMetrics(t, off, doc, q)
	if plain.PlanText != first.PlanText {
		t.Errorf("cache-off PlanText %q differs from cache-on %q", plain.PlanText, first.PlanText)
	}
}
