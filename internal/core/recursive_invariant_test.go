package core

// Security-invariant suite over deep recursive documents: for randomized
// recursive DTDs and policies, the default height-free pipeline (derive
// → Rec-automaton rewrite → optimize → evaluate) must return exactly
// what the view contains on documents of height ≥ 20 — the regime where
// per-height unfolding is at its most expensive and a depth-dependent
// bug in the automaton evaluation would surface. The same two baselines
// as the hospital sweep pin the answer down: the materialized view
// (definitional, any query) and the §6 naive annotation semantics
// (sound here for descendant-axis queries; the generated DTDs also have
// unique element labels). A third comparison runs the identical engine
// configuration with the unfold oracle enabled, closing the loop with
// the rewrite-level differential harness at the engine level.

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dtds"
	"repro/internal/naive"
	"repro/internal/xmlgen"
	"repro/internal/xpath"
)

// deepViewQueries are posed over random recursive views for the
// materialization baseline; n0..n2 and v0..v2 exist for every generated
// DTD (layer count is at least 3). Descendant-free shapes keep the
// unfold-oracle cross-check tractable at height 20+.
var deepViewQueries = []string{
	"/n0/*",
	"n1",
	"n1/n2",
	"n2[v2]",
	"n1/v1 | v0",
	".",
}

// deepDescendantQueries use descendant axes exclusively — the fragment
// where the §6 naive widening is the identity — and are cheap for every
// baseline except the unfold oracle, which is skipped for them.
var deepDescendantQueries = []string{
	"//n1",
	"//n2",
	"//v0",
	"//v2",
}

// TestInvariantDeepRecursivePolicies sweeps randomized recursive
// (DTD, policy) pairs on documents of height ≥ 20 and checks the
// height-free engine against the materialized view, the naive
// annotation baseline, and an unfold-oracle engine.
func TestInvariantDeepRecursivePolicies(t *testing.T) {
	const trials = 60
	tested, deep, derivationFailed, materializeFailed := 0, 0, 0, 0
	for trial := int64(0); trial < trials; trial++ {
		rng := rand.New(rand.NewSource(9000 + trial))
		spec := dtds.RandomRecursiveSpec(rng, dtds.RecursiveGen{
			Depth:     3 + rng.Intn(3),
			Branching: 1 + rng.Intn(2),
			Density:   0.3 + rng.Float64()*0.4,
			// The materialization baseline needs required children to stay
			// visible; the starred items carry the recursion.
			StarredOnly: true,
		})
		e, err := New(spec)
		if err != nil {
			derivationFailed++
			continue
		}
		unfoldEngine, err := NewWithConfig(spec, Config{UnfoldRewrite: true})
		if err != nil {
			t.Fatalf("trial %d: unfold engine rejected a spec the height-free engine accepted: %v", trial, err)
		}
		if e.RewriteMode() == "unfold" || unfoldEngine.RewriteMode() == "flat" {
			t.Fatalf("trial %d: engine modes inverted: %q / %q", trial, e.RewriteMode(), unfoldEngine.RewriteMode())
		}
		doc := xmlgen.Generate(spec.D, xmlgen.Config{
			Seed: trial, MinRepeat: 1, MaxRepeat: 2, MaxDepth: 24, MaxNodes: 2500,
		})
		if doc.Height() >= 20 {
			deep++
		}
		m, err := e.Materialize(doc)
		if err != nil {
			materializeFailed++
			continue
		}
		tested++

		queries := append(append([]string{}, deepViewQueries...), deepDescendantQueries...)
		for _, q := range queries {
			p := xpath.MustParse(q)
			want := docSet(xpath.EvalDoc(p, m.View), m.DocOf)
			res, err := e.QueryString(doc, q)
			if err != nil {
				t.Fatalf("trial %d (h=%d): height-free query %q: %v\nspec:\n%s", trial, doc.Height(), q, err, spec)
			}
			if got := docSet(res, nil); !sameSet(want, got) {
				t.Errorf("trial %d (h=%d): %q diverges from materialized view: view→doc %d nodes, height-free %d\nspec:\n%s",
					trial, doc.Height(), q, len(want), len(got), spec)
			}
		}
		// Engine-level unfold cross-check on the descendant-free shapes
		// (unfolding a // at height 20+ is the very blowup the default
		// mode exists to avoid).
		for _, q := range deepViewQueries {
			want, err := unfoldEngine.QueryString(doc, q)
			if err != nil {
				t.Fatalf("trial %d (h=%d): unfold query %q: %v", trial, doc.Height(), q, err)
			}
			got, err := e.QueryString(doc, q)
			if err != nil {
				t.Fatalf("trial %d (h=%d): height-free query %q: %v", trial, doc.Height(), q, err)
			}
			if !sameSet(docSet(want, nil), docSet(got, nil)) {
				t.Errorf("trial %d (h=%d): %q: unfold oracle %d nodes, height-free %d\nspec:\n%s",
					trial, doc.Height(), q, len(want), len(got), spec)
			}
		}
		// §6 naive baseline. Annotate mutates the document (adds
		// accessibility attributes only), so it runs last.
		naive.Annotate(spec, doc)
		for _, q := range deepDescendantQueries {
			want, err := naive.Query(xpath.MustParse(q), doc)
			if err != nil {
				t.Fatalf("trial %d: naive query %q: %v", trial, q, err)
			}
			got, err := e.QueryString(doc, q)
			if err != nil {
				t.Fatalf("trial %d: engine query %q: %v", trial, q, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("trial %d (h=%d): %q diverges from naive baseline: naive %d nodes, height-free %d\nspec:\n%s",
					trial, doc.Height(), q, len(want), len(got), spec)
			}
		}
	}
	t.Logf("%d/%d policies tested, %d on documents of height ≥ 20 (%d derivations rejected, %d materializations aborted)",
		tested, trials, deep, derivationFailed, materializeFailed)
	if tested < 20 {
		t.Fatalf("only %d/%d random recursive policies were testable; generator is too aggressive", tested, trials)
	}
	if deep < 15 {
		t.Fatalf("only %d trials reached height 20; depth sweep degenerated", deep)
	}
}
