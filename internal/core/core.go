// Package core wires the paper's full framework (Fig. 3) into one
// engine: a security administrator's access specification is compiled
// into a security view (package secview), user queries posed over the
// exposed view DTD are rewritten into equivalent document queries
// (package rewrite), optionally optimized against the document DTD
// (package optimize), and evaluated over the original document (package
// xpath) — the view itself is never materialized on the query path.
//
// On top of the paper's pipeline the engine adds a serving layer:
// rewritten-and-optimized plans are kept in a bounded LRU plan cache, so
// repeated queries skip the rewrite and optimize stages entirely;
// recursive views rewrite height-free by default (one plan per query,
// valid for documents of any height — see package rewrite), with the
// Section 4.2 unfolding path available behind Config.UnfoldRewrite as a
// differential oracle, whose per-height rewriters live in a second
// bounded cache so adversarial height profiles cannot grow memory
// without limit; and evaluation can fan out over a worker pool for large
// documents (Config.Parallel).
package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/access"
	"repro/internal/anscache"
	"repro/internal/dtd"
	"repro/internal/obs"
	"repro/internal/optimize"
	"repro/internal/plancache"
	"repro/internal/rewrite"
	"repro/internal/secview"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Default capacities for the engine's caches. Plans are small (an AST
// per entry); per-height rewriters embed an unfolded DTD and are
// bigger, so their cache is tighter; label indexes hold a posting-list
// entry per document node, so the index cache is tightest — sized for
// the handful of live documents a server actually queries.
const (
	DefaultPlanCacheCapacity   = 512
	DefaultHeightCacheCapacity = 64
	DefaultIndexCacheCapacity  = 16
	// DefaultAnswerCacheCapacity bounds the semantic answer cache
	// (Config.AnswerCache): each entry pins a result node-set, so it sits
	// between the plan cache (tiny entries) and the index cache (huge
	// ones).
	DefaultAnswerCacheCapacity = 256
)

// DefaultIndexThreshold is the document size (nodes) below which an
// indexed-configured engine keeps walking: building and caching a label
// index for a small tree costs more than the walk it replaces.
const DefaultIndexThreshold = 512

// ErrUnboundVars marks queries rejected at plan time because they still
// contain unbound $variables — the caller's fault (a missing parameter
// binding), which servers report as a client error rather than an
// internal failure. Test with errors.Is.
var ErrUnboundVars = errors.New("query has unbound variables")

// Config tunes an engine's serving layer. The zero value gives the
// defaults: bounded caches, sequential evaluation.
type Config struct {
	// PlanCacheCapacity bounds the (query, height class) → Prepared
	// cache. 0 means DefaultPlanCacheCapacity.
	PlanCacheCapacity int
	// HeightCacheCapacity bounds the per-height rewriter cache used by
	// recursive views. 0 means DefaultHeightCacheCapacity.
	HeightCacheCapacity int
	// Parallel turns on parallel evaluation for Query/QueryString:
	// union branches fan out and large descendant context sets are
	// partitioned over a worker pool (see xpath.EvalDocParallel).
	Parallel bool
	// ParallelConfig tunes the worker pool when Parallel is set.
	ParallelConfig xpath.ParallelConfig
	// Indexed turns on indexed evaluation: the engine builds and caches
	// a per-document label index (xpath.Index) and answers queries with
	// descendant steps over documents of at least IndexThreshold nodes
	// from posting lists instead of subtree walks. Per query the engine
	// picks indexed, parallel, or sequential: indexed when applicable,
	// else parallel when Parallel is set, else the sequential walk.
	Indexed bool
	// IndexThreshold is the minimum document size (nodes) for indexed
	// evaluation. 0 means DefaultIndexThreshold; negative forces the
	// index on for tests.
	IndexThreshold int
	// IndexCacheCapacity bounds the per-document index cache. 0 means
	// DefaultIndexCacheCapacity.
	IndexCacheCapacity int
	// AnswerCache turns on the semantic answer cache: evaluated result
	// node-sets are cached per (engine epoch, document, optimized plan)
	// and an incoming query is answered from a cached entry the
	// optimizer's containment test proves equal to it or a
	// qualifier-filtered restriction of it (see internal/anscache). Off
	// by default: the cache trades memory (pinned node-sets) and
	// per-miss containment proofs for skipped evaluations, which pays on
	// repeated-query workloads.
	AnswerCache bool
	// AnswerCacheCapacity bounds the answer cache. 0 means
	// DefaultAnswerCacheCapacity.
	AnswerCacheCapacity int
	// UnfoldRewrite selects the Section 4.2 unfolding path for recursive
	// views instead of the default height-free rewriting: plans are then
	// built per document height class and cached per (query, height).
	// Kept as the differential oracle for the height-free path; flat
	// (non-recursive) views ignore it.
	UnfoldRewrite bool
}

func (c Config) planCap() int {
	if c.PlanCacheCapacity > 0 {
		return c.PlanCacheCapacity
	}
	return DefaultPlanCacheCapacity
}

func (c Config) heightCap() int {
	if c.HeightCacheCapacity > 0 {
		return c.HeightCacheCapacity
	}
	return DefaultHeightCacheCapacity
}

func (c Config) indexCap() int {
	if c.IndexCacheCapacity > 0 {
		return c.IndexCacheCapacity
	}
	return DefaultIndexCacheCapacity
}

func (c Config) answerCap() int {
	if c.AnswerCacheCapacity > 0 {
		return c.AnswerCacheCapacity
	}
	return DefaultAnswerCacheCapacity
}

func (c Config) indexThreshold() int {
	switch {
	case c.IndexThreshold > 0:
		return c.IndexThreshold
	case c.IndexThreshold < 0:
		return 1
	}
	return DefaultIndexThreshold
}

// Engine enforces one access policy: it owns the derived security view
// and the per-view rewriting and optimization state. An Engine is cheap
// to keep around and reuse across documents and queries; build one per
// (policy, parameter binding) pair. All methods are safe for concurrent
// use.
type Engine struct {
	spec *access.Spec
	view *secview.View
	opt  *optimize.Optimizer
	cfg  Config

	// flat is the height-independent rewriter: every non-recursive view
	// has one, and recursive views get a height-free one unless
	// Config.UnfoldRewrite asked for the Section 4.2 oracle path. When
	// nil (unfold mode), per-height rewriters are built on demand and
	// kept in the bounded byHeight cache.
	flat     *rewrite.Rewriter
	byHeight *plancache.Cache[*rewrite.Rewriter]

	// plans caches rewritten-and-optimized queries by (query text,
	// height class) so repeated queries skip rewrite+optimize.
	plans *plancache.Cache[*Prepared]

	// indexes caches per-document label indexes, keyed by (epoch,
	// document pointer identity). A cached Index holds its document
	// alive, so a live entry can never alias a different document at the
	// same address; indexFor verifies anyway and rebuilds on mismatch.
	indexes *plancache.Cache[*xpath.Index]

	// answers is the semantic answer cache (Config.AnswerCache), nil
	// when disabled. Keys embed epoch, so BumpEpoch strands — and then
	// purges — every entry.
	answers *anscache.Cache

	// epoch counts document/policy rebinds the engine has been told
	// about (BumpEpoch). It prefixes every answer-cache and index-cache
	// key, so artifacts derived before a swap are unreachable by
	// construction afterward.
	epoch atomic.Uint64

	queries      atomic.Uint64
	cancelled    atomic.Uint64
	evalStats    xpath.ParallelStats
	indexedEvals atomic.Uint64
	ordinalEvals atomic.Uint64
}

// New derives the security view for a bound access specification (no
// free $parameters) and prepares the engine with the default Config.
func New(spec *access.Spec) (*Engine, error) {
	return NewWithConfig(spec, Config{})
}

// NewWithConfig is New with explicit serving-layer tuning.
func NewWithConfig(spec *access.Spec, cfg Config) (*Engine, error) {
	if vars := spec.Vars(); len(vars) > 0 {
		return nil, fmt.Errorf("core: specification has unbound parameters %v; call Spec.Bind first", vars)
	}
	view, err := secview.Derive(spec)
	if err != nil {
		return nil, err
	}
	return FromViewConfig(view, cfg)
}

// FromView builds an engine around an already-derived view — typically
// one loaded from a serialized definition (secview.UnmarshalView), so
// query frontends need not re-derive per process.
func FromView(view *secview.View) (*Engine, error) {
	return FromViewConfig(view, Config{})
}

// FromViewConfig is FromView with explicit serving-layer tuning.
func FromViewConfig(view *secview.View, cfg Config) (*Engine, error) {
	e := &Engine{
		spec:     view.Spec,
		view:     view,
		opt:      optimize.New(view.Doc),
		cfg:      cfg,
		byHeight: plancache.New[*rewrite.Rewriter](cfg.heightCap()),
		plans:    plancache.New[*Prepared](cfg.planCap()),
		indexes:  plancache.New[*xpath.Index](cfg.indexCap()),
	}
	if cfg.AnswerCache {
		e.answers = anscache.New(cfg.answerCap())
	}
	if !view.IsRecursive() || !cfg.UnfoldRewrite {
		r, err := rewrite.ForView(view)
		if err != nil {
			return nil, err
		}
		e.flat = r
	}
	return e, nil
}

// View returns the derived security view (view DTD plus σ).
func (e *Engine) View() *secview.View { return e.view }

// ViewDTD returns the view DTD D_v — the only schema information exposed
// to users authorized by the policy.
func (e *Engine) ViewDTD() *dtd.DTD { return e.view.DTD }

// DocumentDTD returns the original document DTD D (administrator-side).
func (e *Engine) DocumentDTD() *dtd.DTD { return e.spec.D }

// Spec returns the bound access specification.
func (e *Engine) Spec() *access.Spec { return e.spec }

// Epoch returns the engine's current document/policy epoch. The epoch
// is part of every answer-cache and index-cache key, so cached answers
// and indexes from before a BumpEpoch can never be served after it.
func (e *Engine) Epoch() uint64 { return e.epoch.Load() }

// BumpEpoch advances the epoch, called when a document the engine has
// served (or the policy binding behind it) is swapped out from under
// it. Every cached answer and per-document index becomes unreachable by
// key immediately — staleness by construction — and both caches are
// purged to reclaim the memory; plans survive, because a plan depends
// only on the policy and query text, never on a document.
func (e *Engine) BumpEpoch() {
	e.epoch.Add(1)
	if e.answers != nil {
		e.answers.Purge()
	}
	e.indexes.Purge()
}

// RewriteMode names the engine's rewriting strategy: "flat" for a
// non-recursive view, "height-free" for a recursive view rewritten via
// Rec automata (the default), and "unfold" for the Section 4.2 oracle
// path (Config.UnfoldRewrite). Surfaced in /explainz and /metricsz.
func (e *Engine) RewriteMode() string {
	if e.flat != nil {
		return e.flat.Mode()
	}
	return "unfold"
}

// Rewriter returns the query rewriter for documents of the given height.
// The height is ignored except in unfold-oracle mode (Config.UnfoldRewrite
// on a recursive view), where the view is unfolded to it per Section 4.2;
// those per-height rewriters are cached with LRU eviction, so an
// adversarial stream of documents with many distinct heights costs
// repeated unfolds, never unbounded memory.
func (e *Engine) Rewriter(height int) (*rewrite.Rewriter, error) {
	if e.flat != nil {
		return e.flat, nil
	}
	return e.byHeight.GetOrCompute(strconv.Itoa(height), func() (*rewrite.Rewriter, error) {
		return rewrite.ForViewWithHeight(e.view, height)
	})
}

// Rewrite translates a view query into the equivalent document query p_t.
// Recursive views need the height of the document the query will run on.
func (e *Engine) Rewrite(p xpath.Path, height int) (xpath.Path, error) {
	return e.RewriteCtx(context.Background(), p, height)
}

// RewriteCtx is Rewrite with observability: a context carrying a trace
// span gets a "rewrite" child span (see rewrite.RewriteCtx).
func (e *Engine) RewriteCtx(ctx context.Context, p xpath.Path, height int) (xpath.Path, error) {
	r, err := e.Rewriter(height)
	if err != nil {
		return nil, err
	}
	return r.RewriteCtx(ctx, p)
}

// Optimize improves a document query using the document DTD's structural
// constraints (Section 5). It is equivalence-preserving and never errors:
// constructs outside the optimizer's reasoning pass through unchanged.
func (e *Engine) Optimize(p xpath.Path) xpath.Path {
	return e.opt.Optimize(p)
}

// heightClass maps a document height to the plan-cache key component.
// With a height-independent rewriter (flat views, and recursive views in
// the default height-free mode) every document shares one class — one
// cache entry per query text; only the unfold oracle needs one plan per
// height.
func (e *Engine) heightClass(height int) int {
	if e.flat != nil {
		return 0
	}
	return height
}

// prepared returns the cached plan for (query, height class), building
// and caching it on a miss. Queries with unbound $variables are
// rejected up front: depending on the document they would either error
// mid-evaluation or silently match nothing, and neither belongs in the
// cache. A context carrying a QueryMetrics carrier gets the cache
// outcome and, on a miss, the per-phase durations and plan shape; a
// context carrying a span gets "rewrite"/"optimize" child spans.
// Concurrent misses on one key may build the plan more than once and
// the last Put wins (GetOrCompute singleflights, but this path wants
// per-request metrics attribution, and a duplicate plan build is
// harmless).
func (e *Engine) prepared(ctx context.Context, p xpath.Path, height int) (*Prepared, error) {
	if vars := xpath.Vars(p); len(vars) > 0 {
		return nil, fmt.Errorf("core: %w %v; bind them with xpath.BindVars before querying", ErrUnboundVars, vars)
	}
	text := xpath.String(p)
	key := strconv.Itoa(e.heightClass(height)) + "\x00" + text
	qm := obs.QueryMetricsFromContext(ctx)
	if prep, ok := e.plans.Get(key); ok {
		if qm != nil {
			qm.PlanCacheHit = true
			if qm.CaptureQueries {
				qm.Rewritten = xpath.String(prep.Rewritten)
				qm.Optimized = xpath.String(prep.Optimized)
			}
		}
		obs.SpanFromContext(ctx).SetAttr("plan_cache", "hit")
		return prep, nil
	}
	obs.SpanFromContext(ctx).SetAttr("plan_cache", "miss")
	start := time.Now()
	pt, err := e.RewriteCtx(ctx, p, height)
	if err != nil {
		return nil, err
	}
	rewriteDone := time.Now()
	po := e.opt.OptimizeCtx(ctx, pt)
	if qm != nil {
		qm.Rewrite = rewriteDone.Sub(start)
		qm.Optimize = time.Since(rewriteDone)
		qm.RewrittenSize = xpath.Size(pt)
		qm.OptimizedSize = xpath.Size(po)
		if e.flat == nil {
			qm.UnfoldHeight = height
		}
		if qm.CaptureQueries {
			qm.Rewritten = xpath.String(pt)
			qm.Optimized = xpath.String(po)
		}
	}
	prep := &Prepared{Source: p, Rewritten: pt, Optimized: po, optimizedText: xpath.String(po)}
	e.plans.Put(key, prep)
	return prep, nil
}

// Query answers a view query over a document: rewrite, optimize, and
// evaluate over the original tree. The result contains exactly the
// document nodes the policy exposes to the query. Plans are served from
// the engine's cache when the same query text was answered before (for
// recursive views: at the same document height), and malformed or
// unbound-variable queries return an error rather than panicking.
func (e *Engine) Query(doc *xmltree.Document, p xpath.Path) ([]*xmltree.Node, error) {
	return e.QueryCtx(context.Background(), doc, p)
}

// QueryCtx is Query honoring a context: evaluation polls the context
// cooperatively and returns ctx.Err() once it is done, so callers can
// bound a query with a deadline or cancel it mid-flight. Plan rewriting
// and caching complete normally either way — a cancelled query leaves
// the plan cache exactly as a successful one would, so a retry hits the
// cached plan.
//
// With Config.AnswerCache on, the prepared plan is first offered to the
// semantic answer cache: a provably-equal cached plan answers directly,
// a provable base-of-trailing-qualifiers match answers by filtering the
// cached node-set, and only a miss runs the evaluator (whose successful
// result is then cached). Hits report eval mode "cached".
func (e *Engine) QueryCtx(ctx context.Context, doc *xmltree.Document, p xpath.Path) ([]*xmltree.Node, error) {
	e.queries.Add(1)
	prep, err := e.prepared(ctx, p, doc.Height())
	if err != nil {
		return nil, err
	}
	qm := obs.QueryMetricsFromContext(ctx)
	if qm != nil {
		// The rendered optimized plan is the request's fingerprint basis
		// (see internal/qstats); it is precomputed on the Prepared, so
		// surfacing it is a field copy on hits and misses alike.
		qm.PlanText = prep.optText()
	}
	var group, planText string
	if e.answers != nil {
		group, planText = e.docGroup(doc), prep.optText()
		out, kind, err := e.answers.Lookup(ctx, group, planText, prep.Optimized, e.opt)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				e.cancelled.Add(1)
			}
			return nil, err
		}
		if qm != nil {
			qm.AnswerCacheHit = kind.String()
		}
		obs.SpanFromContext(ctx).SetAttr("answer_cache", kind.String())
		if kind != anscache.KindMiss {
			if qm != nil {
				qm.EvalMode = obs.ModeCached
				qm.SetRepr = setRepr(doc)
			}
			return out, nil
		}
	}
	out, err := e.evalPrepared(ctx, prep, doc)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			e.cancelled.Add(1)
		}
		return out, err
	}
	if e.answers != nil {
		e.answers.Put(group, planText, prep.Optimized, out)
	}
	return out, nil
}

// indexApplicable reports whether the engine should answer this
// (plan, document) pair with the index-backed evaluator: indexed mode
// is on, the document is big enough to repay the index, and the query
// is descend-class — a descendant step in the evaluated plan, or in
// the source view query. Fig. 6 rewriting unfolds view-level // steps
// into unions of label chains, so most serving plans carry no Descend
// of their own; routing descend-sourced plans through the indexed
// evaluator keeps one consistent mode for the class (visible in
// /explainz and /metricsz) and serves any residual // from posting
// lists with the per-step selectivity heuristic. Child-axis-only view
// queries touch the same nodes either way, so the walk serves them
// without index overhead.
func (e *Engine) indexApplicable(prep *Prepared, doc *xmltree.Document) bool {
	if !e.cfg.Indexed || doc.Size() < e.cfg.indexThreshold() {
		return false
	}
	return xpath.HasDescend(prep.Optimized) || xpath.HasDescend(prep.Source)
}

// docGroup keys a document for the answer and index caches: the
// engine epoch plus the document's pointer identity. The epoch prefix
// makes every pre-swap entry unreachable after BumpEpoch.
func (e *Engine) docGroup(doc *xmltree.Document) string {
	return strconv.FormatUint(e.epoch.Load(), 10) + "\x00" + fmt.Sprintf("%p", doc)
}

// indexFor returns the cached label index for the document, building
// and caching it on first use. Keys are (epoch, document pointer
// identity); a cached index pins its document, so a live entry cannot
// collide with a recycled address, and the Doc check below is pure
// defense.
func (e *Engine) indexFor(doc *xmltree.Document) *xpath.Index {
	key := e.docGroup(doc)
	idx, _ := e.indexes.GetOrCompute(key, func() (*xpath.Index, error) {
		return xpath.NewIndex(doc), nil
	})
	if idx == nil || idx.Doc() != doc {
		idx = xpath.NewIndex(doc)
		e.indexes.Put(key, idx)
	}
	return idx
}

// evalPrepared runs the evaluation phase, picking the eval mode per
// query: indexed when applicable (see indexApplicable), else parallel
// when configured, else the sequential walk. When the context carries a
// QueryMetrics carrier or a trace span it additionally reports the eval
// mode actually taken, the work counters (cooperation ticks, or this
// call's union forks and partitions), and the phase duration; a bare
// context takes the uninstrumented fast path unchanged.
func (e *Engine) evalPrepared(ctx context.Context, prep *Prepared, doc *xmltree.Document) ([]*xmltree.Node, error) {
	qm := obs.QueryMetricsFromContext(ctx)
	_, sp := obs.StartSpan(ctx, "eval")
	indexed := e.indexApplicable(prep, doc)
	if xpath.OrdinalApplicable(doc) {
		e.ordinalEvals.Add(1)
	}
	if qm == nil && sp == nil {
		if indexed {
			e.indexedEvals.Add(1)
			return xpath.EvalIndexedCtx(ctx, prep.Optimized, e.indexFor(doc))
		}
		if e.cfg.Parallel {
			return xpath.EvalDocParallelCtx(ctx, prep.Optimized, doc, e.cfg.ParallelConfig, &e.evalStats)
		}
		e.evalStats.SequentialEvals.Add(1)
		return xpath.EvalDocCtx(ctx, prep.Optimized, doc)
	}
	start := time.Now()
	var out []*xmltree.Node
	var err error
	mode := obs.ModeSequential
	switch {
	case indexed:
		e.indexedEvals.Add(1)
		mode = obs.ModeIndexed
		var ticks uint64
		out, ticks, err = xpath.EvalIndexedCtxCounted(ctx, prep.Optimized, e.indexFor(doc))
		if qm != nil {
			qm.NodesVisited = ticks
		}
		sp.SetAttr("nodes_visited", ticks)
	case e.cfg.Parallel:
		// A per-call local stats value reports this request's fan-out
		// alone, then rolls up into the engine-wide aggregate.
		var local xpath.ParallelStats
		out, err = xpath.EvalDocParallelCtx(ctx, prep.Optimized, doc, e.cfg.ParallelConfig, &local)
		e.evalStats.AddFrom(&local)
		_, par, forks, parts := local.Snapshot()
		if par > 0 {
			mode = obs.ModeParallel
		}
		if qm != nil {
			qm.UnionForks, qm.Partitions = forks, parts
		}
		sp.SetAttr("union_forks", forks)
		sp.SetAttr("partitions", parts)
	default:
		e.evalStats.SequentialEvals.Add(1)
		var ticks uint64
		out, ticks, err = xpath.EvalDocCtxCounted(ctx, prep.Optimized, doc)
		if qm != nil {
			qm.NodesVisited = ticks
		}
		sp.SetAttr("nodes_visited", ticks)
	}
	if qm != nil {
		qm.Eval = time.Since(start)
		qm.EvalMode = mode
		qm.SetRepr = setRepr(doc)
	}
	if sp != nil {
		sp.SetAttr("mode", mode)
		sp.SetAttr("set_repr", setRepr(doc))
		sp.SetAttr("result_count", len(out))
		sp.Finish()
	}
	return out, err
}

// setRepr names the node-set representation evaluation over doc uses —
// the compaction gate, rendered for metrics labels.
func setRepr(doc *xmltree.Document) string {
	if xpath.OrdinalApplicable(doc) {
		return obs.ReprBitset
	}
	return obs.ReprSlice
}

// QueryString is Query with parsing.
func (e *Engine) QueryString(doc *xmltree.Document, query string) ([]*xmltree.Node, error) {
	return e.QueryStringCtx(context.Background(), doc, query)
}

// QueryStringCtx is QueryCtx with parsing.
func (e *Engine) QueryStringCtx(ctx context.Context, doc *xmltree.Document, query string) ([]*xmltree.Node, error) {
	p, err := xpath.Parse(query)
	if err != nil {
		return nil, err
	}
	return e.QueryCtx(ctx, doc, p)
}

// Explain is the end-to-end report of one freshly measured pipeline
// run: the intermediate query strings and per-phase wall times behind
// /explainz and svquery -explain. Durations are nanoseconds (the
// internal unit everywhere; consumers divide for display).
type Explain struct {
	// Query, Rewritten, and Optimized are the view query and its two
	// intermediate forms, printed.
	Query     string `json:"query"`
	Rewritten string `json:"rewritten"`
	Optimized string `json:"optimized"`
	// RewriteNs, OptimizeNs, and EvalNs are the fresh per-phase wall
	// times. Explain bypasses the plan cache for rewrite and optimize —
	// a cached plan would report hit-and-nothing-to-time — so these are
	// what a cold request pays.
	RewriteNs  int64 `json:"rewrite_ns"`
	OptimizeNs int64 `json:"optimize_ns"`
	EvalNs     int64 `json:"eval_ns"`
	// RewrittenSize and OptimizedSize are AST sizes (xpath.Size).
	RewrittenSize int `json:"rewritten_size"`
	OptimizedSize int `json:"optimized_size"`
	// EvalMode is what the evaluator actually did (obs.ModeSequential,
	// obs.ModeParallel, or obs.ModeIndexed); NodesVisited / UnionForks
	// / Partitions are its work counters for this run (see
	// obs.QueryMetrics).
	EvalMode     string `json:"eval_mode"`
	NodesVisited uint64 `json:"nodes_visited,omitempty"`
	UnionForks   uint64 `json:"union_forks,omitempty"`
	Partitions   uint64 `json:"partitions,omitempty"`
	ResultCount  int    `json:"result_count"`
	// DocHeight is the document's height; UnfoldHeight is the height a
	// recursive view was unfolded to for this document (0 outside
	// unfold-oracle mode); RecursiveView flags the view DTD as recursive;
	// RewriteMode is the engine's rewriting strategy (Engine.RewriteMode).
	DocHeight     int    `json:"doc_height"`
	UnfoldHeight  int    `json:"unfold_height,omitempty"`
	RecursiveView bool   `json:"recursive_view"`
	RewriteMode   string `json:"rewrite_mode"`
	// PlanWasCached reports whether the serving path would have hit the
	// plan cache for this query (explain re-measures regardless, and
	// re-caches its fresh plan).
	PlanWasCached bool `json:"plan_was_cached"`
	// AnswerCacheHit is the answer-cache outcome the serving path would
	// have seen for this (document, plan): "equal", "containment", or
	// "miss"; empty when Config.AnswerCache is off. Explain still
	// evaluates fresh — the phase timings above are always measured —
	// and caches its fresh answer like a served query would.
	AnswerCacheHit string `json:"answer_cache_hit,omitempty"`
}

// ExplainCtx answers a view query like QueryCtx while measuring every
// phase fresh: rewrite and optimize run even when the plan cache holds
// the query (the cache outcome is still reported), and the built plan
// is cached for subsequent requests. A context carrying a trace span
// gets the usual phase child spans.
func (e *Engine) ExplainCtx(ctx context.Context, doc *xmltree.Document, p xpath.Path) (*Explain, error) {
	if vars := xpath.Vars(p); len(vars) > 0 {
		return nil, fmt.Errorf("core: %w %v; bind them with xpath.BindVars before querying", ErrUnboundVars, vars)
	}
	e.queries.Add(1)
	height := doc.Height()
	ex := &Explain{
		Query:         xpath.String(p),
		DocHeight:     height,
		RecursiveView: e.view.IsRecursive(),
		RewriteMode:   e.RewriteMode(),
	}
	key := strconv.Itoa(e.heightClass(height)) + "\x00" + ex.Query
	_, ex.PlanWasCached = e.plans.Get(key)
	if e.flat == nil {
		ex.UnfoldHeight = height
	}
	start := time.Now()
	pt, err := e.RewriteCtx(ctx, p, height)
	if err != nil {
		return nil, err
	}
	ex.RewriteNs = time.Since(start).Nanoseconds()
	ex.Rewritten = xpath.String(pt)
	ex.RewrittenSize = xpath.Size(pt)
	start = time.Now()
	po := e.opt.OptimizeCtx(ctx, pt)
	ex.OptimizeNs = time.Since(start).Nanoseconds()
	ex.Optimized = xpath.String(po)
	ex.OptimizedSize = xpath.Size(po)
	prep := &Prepared{Source: p, Rewritten: pt, Optimized: po, optimizedText: ex.Optimized}
	e.plans.Put(key, prep)
	if e.answers != nil {
		// Probe the answer cache for the report, then evaluate fresh
		// anyway: explain's contract is measured phases.
		if _, kind, lerr := e.answers.Lookup(ctx, e.docGroup(doc), prep.optText(), prep.Optimized, e.opt); lerr == nil {
			ex.AnswerCacheHit = kind.String()
		}
	}
	// Evaluate with a private carrier so the mode and work counters for
	// this run are readable even when the caller installed none.
	qm := &obs.QueryMetrics{}
	start = time.Now()
	out, err := e.evalPrepared(obs.WithQueryMetrics(ctx, qm), prep, doc)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			e.cancelled.Add(1)
		}
		return nil, err
	}
	ex.EvalNs = time.Since(start).Nanoseconds()
	if e.answers != nil {
		e.answers.Put(e.docGroup(doc), prep.optText(), prep.Optimized, out)
	}
	ex.EvalMode = qm.EvalMode
	ex.NodesVisited = qm.NodesVisited
	ex.UnionForks = qm.UnionForks
	ex.Partitions = qm.Partitions
	ex.ResultCount = len(out)
	return ex, nil
}

// ExplainStringCtx is ExplainCtx with parsing.
func (e *Engine) ExplainStringCtx(ctx context.Context, doc *xmltree.Document, query string) (*Explain, error) {
	p, err := xpath.Parse(query)
	if err != nil {
		return nil, err
	}
	return e.ExplainCtx(ctx, doc, p)
}

// Stats is a point-in-time snapshot of the engine's serving counters.
// The JSON field names are part of the /statsz wire format.
type Stats struct {
	// Queries counts Query/QueryString calls.
	Queries uint64 `json:"queries"`
	// Cancelled counts queries that returned a context error (deadline
	// exceeded or caller cancellation) mid-evaluation.
	Cancelled uint64 `json:"cancelled"`
	// PlanCache reports the (query, height class) → plan cache.
	PlanCache plancache.Stats `json:"plan_cache"`
	// PlanCacheQueries counts the distinct query texts in the plan cache
	// and PlanCacheHeightClasses the distinct height classes; Entries in
	// PlanCache counts (query, height class) pairs. A height-independent
	// rewriter keeps exactly one class, so Queries == Entries; the unfold
	// oracle holds one entry per (query, height), which these two fields
	// stopped conflating.
	PlanCacheQueries       int `json:"plan_cache_queries"`
	PlanCacheHeightClasses int `json:"plan_cache_height_classes"`
	// PlanCacheNodes sums the AST size of every cached optimized plan —
	// the memory-side view of the height-free win: with the unfold
	// oracle it grows with both the number of height classes and the
	// per-plan unfolding depth; height-free it tracks query count only.
	PlanCacheNodes int `json:"plan_cache_nodes"`
	// HeightCache reports the per-height rewriter cache (recursive
	// views only; empty for flat views).
	HeightCache plancache.Stats `json:"height_cache"`
	// IndexCache reports the per-document label index cache (indexed
	// mode only; empty otherwise).
	IndexCache plancache.Stats `json:"index_cache"`
	// AnswerCache reports the semantic answer cache (Config.AnswerCache;
	// zero when off). Hits are equal hits; ContainmentHits count answers
	// assembled by qualifier-filtering a cached superset.
	AnswerCache anscache.Stats `json:"answer_cache"`
	// Epoch is the engine's document/policy epoch (see BumpEpoch).
	Epoch uint64 `json:"epoch"`
	// SequentialEvals, ParallelEvals, and IndexedEvals count
	// evaluations by path; UnionForks and Partitions count the parallel
	// evaluator's fan-outs (see xpath.ParallelStats).
	SequentialEvals uint64 `json:"sequential_evals"`
	ParallelEvals   uint64 `json:"parallel_evals"`
	IndexedEvals    uint64 `json:"indexed_evals"`
	UnionForks      uint64 `json:"union_forks"`
	Partitions      uint64 `json:"partitions"`
	// OrdinalEvals counts evaluations that passed the compaction gate
	// and ran over ordinal bitsets (any mode; see internal/nodeset).
	OrdinalEvals uint64 `json:"ordinal_evals"`
	// OptimizeRules and OptimizePruned count the optimizer's DTD-driven
	// simplification decisions and the subtrees they removed (see
	// optimize.Optimizer.Stats).
	OptimizeRules  uint64 `json:"optimize_rules"`
	OptimizePruned uint64 `json:"optimize_pruned"`
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	seq, par, forks, parts := e.evalStats.Snapshot()
	rules, pruned := e.opt.Stats()
	queries, classes, nodes := e.planCacheBreakdown()
	var ans anscache.Stats
	if e.answers != nil {
		ans = e.answers.Stats()
	}
	return Stats{
		AnswerCache:            ans,
		Epoch:                  e.epoch.Load(),
		Queries:                e.queries.Load(),
		Cancelled:              e.cancelled.Load(),
		PlanCache:              e.plans.Stats(),
		PlanCacheQueries:       queries,
		PlanCacheHeightClasses: classes,
		PlanCacheNodes:         nodes,
		HeightCache:            e.byHeight.Stats(),
		IndexCache:             e.indexes.Stats(),
		SequentialEvals:        seq,
		ParallelEvals:          par,
		IndexedEvals:           e.indexedEvals.Load(),
		UnionForks:             forks,
		Partitions:             parts,
		OrdinalEvals:           e.ordinalEvals.Load(),
		OptimizeRules:          rules,
		OptimizePruned:         pruned,
	}
}

// planCacheBreakdown walks the plan cache and counts distinct query
// texts, distinct height classes, and total optimized-plan AST nodes
// across its entries. Point-in-time like the rest of Stats: concurrent
// Puts/evictions may be missed.
func (e *Engine) planCacheBreakdown() (queries, classes, nodes int) {
	qs := make(map[string]bool)
	cs := make(map[string]bool)
	e.plans.Each(func(key string, prep *Prepared) {
		class, text, ok := strings.Cut(key, "\x00")
		if !ok {
			return
		}
		qs[text] = true
		cs[class] = true
		nodes += xpath.Size(prep.Optimized)
	})
	return len(qs), len(cs), nodes
}

// Prepared is a view query rewritten and optimized once, reusable across
// documents sharing its height class (every document for non-recursive
// views; same-height documents for recursive ones). Engine.Query keeps
// these in its plan cache; Prepare hands one out directly.
type Prepared struct {
	// Source is the original view query.
	Source xpath.Path
	// Rewritten is rw(p, r) over the document DTD.
	Rewritten xpath.Path
	// Optimized is the DTD-optimized form actually evaluated.
	Optimized xpath.Path

	// optimizedText is xpath.String(Optimized), rendered once at build
	// time: it is the answer cache's exact-match key, needed per query.
	optimizedText string
}

// optText returns the printed optimized plan, tolerating Prepared
// values constructed outside the engine (tests) that skipped the field.
func (q *Prepared) optText() string {
	if q.optimizedText != "" {
		return q.optimizedText
	}
	return xpath.String(q.Optimized)
}

// Prepare rewrites and optimizes a view query once, so frontends can
// amortize translation across many documents and evaluations. It is
// available whenever rewriting is height-independent — always, except
// for a recursive view in unfold-oracle mode (Config.UnfoldRewrite),
// whose plans depend on each document's height; use Engine.Query then.
func (e *Engine) Prepare(p xpath.Path) (*Prepared, error) {
	if e.flat == nil {
		return nil, fmt.Errorf("core: Prepare needs a height-independent rewriter; the unfold oracle (Config.UnfoldRewrite) plans per document height — use Query, or Rewrite with the height")
	}
	return e.prepared(context.Background(), p, 0)
}

// PrepareString parses and prepares in one step.
func (e *Engine) PrepareString(query string) (*Prepared, error) {
	p, err := xpath.Parse(query)
	if err != nil {
		return nil, err
	}
	return e.Prepare(p)
}

// Eval runs a prepared query over a document with the tree evaluator.
// It panics on unbound $variables; use EvalErr for untrusted queries.
func (q *Prepared) Eval(doc *xmltree.Document) []*xmltree.Node {
	return xpath.EvalDoc(q.Optimized, doc)
}

// EvalErr is Eval returning an error instead of panicking.
func (q *Prepared) EvalErr(doc *xmltree.Document) ([]*xmltree.Node, error) {
	return xpath.EvalDocErr(q.Optimized, doc)
}

// EvalCtx is EvalErr honoring a context deadline or cancellation.
func (q *Prepared) EvalCtx(ctx context.Context, doc *xmltree.Document) ([]*xmltree.Node, error) {
	return xpath.EvalDocCtx(ctx, q.Optimized, doc)
}

// EvalParallel runs a prepared query with the parallel evaluator.
func (q *Prepared) EvalParallel(doc *xmltree.Document, cfg xpath.ParallelConfig, stats *xpath.ParallelStats) ([]*xmltree.Node, error) {
	return xpath.EvalDocParallel(q.Optimized, doc, cfg, stats)
}

// EvalParallelCtx is EvalParallel honoring a context deadline or
// cancellation.
func (q *Prepared) EvalParallelCtx(ctx context.Context, doc *xmltree.Document, cfg xpath.ParallelConfig, stats *xpath.ParallelStats) ([]*xmltree.Node, error) {
	return xpath.EvalDocParallelCtx(ctx, q.Optimized, doc, cfg, stats)
}

// EvalIndexed runs a prepared query against a prebuilt label index. It
// panics on unbound $variables; see EvalIndexedCtx.
func (q *Prepared) EvalIndexed(idx *xpath.Index) []*xmltree.Node {
	return xpath.EvalIndexed(q.Optimized, idx)
}

// EvalIndexedErr is EvalIndexed returning an error instead of
// panicking.
func (q *Prepared) EvalIndexedErr(idx *xpath.Index) ([]*xmltree.Node, error) {
	return xpath.EvalIndexedErr(q.Optimized, idx)
}

// EvalIndexedCtx is EvalIndexedErr honoring a context deadline or
// cancellation.
func (q *Prepared) EvalIndexedCtx(ctx context.Context, idx *xpath.Index) ([]*xmltree.Node, error) {
	return xpath.EvalIndexedCtx(ctx, q.Optimized, idx)
}

// Materialize builds the view instance T_v of a document — the view's
// semantics, used for auditing and testing, never on the query path.
func (e *Engine) Materialize(doc *xmltree.Document) (*secview.Materialized, error) {
	return secview.Materialize(e.view, doc)
}

// Audit checks that the derived view is sound and complete on a concrete
// document (Theorem 3.2's property, verified dynamically).
func (e *Engine) Audit(doc *xmltree.Document) error {
	_, err := secview.CheckSoundComplete(e.view, doc)
	return err
}
