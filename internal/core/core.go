// Package core wires the paper's full framework (Fig. 3) into one
// engine: a security administrator's access specification is compiled
// into a security view (package secview), user queries posed over the
// exposed view DTD are rewritten into equivalent document queries
// (package rewrite), optionally optimized against the document DTD
// (package optimize), and evaluated over the original document (package
// xpath) — the view itself is never materialized on the query path.
package core

import (
	"fmt"
	"sync"

	"repro/internal/access"
	"repro/internal/dtd"
	"repro/internal/optimize"
	"repro/internal/rewrite"
	"repro/internal/secview"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Engine enforces one access policy: it owns the derived security view
// and the per-view rewriting and optimization state. An Engine is cheap
// to keep around and reuse across documents and queries; build one per
// (policy, parameter binding) pair.
type Engine struct {
	spec *access.Spec
	view *secview.View
	opt  *optimize.Optimizer

	// flat is the rewriter for non-recursive views; recursive views get
	// per-height rewriters built on demand (Section 4.2), guarded by mu so
	// an Engine is safe for concurrent use.
	flat     *rewrite.Rewriter
	mu       sync.Mutex
	byHeight map[int]*rewrite.Rewriter
}

// New derives the security view for a bound access specification (no
// free $parameters) and prepares the engine.
func New(spec *access.Spec) (*Engine, error) {
	if vars := spec.Vars(); len(vars) > 0 {
		return nil, fmt.Errorf("core: specification has unbound parameters %v; call Spec.Bind first", vars)
	}
	view, err := secview.Derive(spec)
	if err != nil {
		return nil, err
	}
	return FromView(view)
}

// FromView builds an engine around an already-derived view — typically
// one loaded from a serialized definition (secview.UnmarshalView), so
// query frontends need not re-derive per process.
func FromView(view *secview.View) (*Engine, error) {
	e := &Engine{
		spec:     view.Spec,
		view:     view,
		opt:      optimize.New(view.Doc),
		byHeight: make(map[int]*rewrite.Rewriter),
	}
	if !view.IsRecursive() {
		r, err := rewrite.ForView(view)
		if err != nil {
			return nil, err
		}
		e.flat = r
	}
	return e, nil
}

// View returns the derived security view (view DTD plus σ).
func (e *Engine) View() *secview.View { return e.view }

// ViewDTD returns the view DTD D_v — the only schema information exposed
// to users authorized by the policy.
func (e *Engine) ViewDTD() *dtd.DTD { return e.view.DTD }

// DocumentDTD returns the original document DTD D (administrator-side).
func (e *Engine) DocumentDTD() *dtd.DTD { return e.spec.D }

// Spec returns the bound access specification.
func (e *Engine) Spec() *access.Spec { return e.spec }

// Rewriter returns the query rewriter for documents of the given height
// (the height only matters for recursive views, which are unfolded to
// it; any height works for non-recursive views).
func (e *Engine) Rewriter(height int) (*rewrite.Rewriter, error) {
	if e.flat != nil {
		return e.flat, nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if r, ok := e.byHeight[height]; ok {
		return r, nil
	}
	r, err := rewrite.ForViewWithHeight(e.view, height)
	if err != nil {
		return nil, err
	}
	e.byHeight[height] = r
	return r, nil
}

// Rewrite translates a view query into the equivalent document query p_t.
// Recursive views need the height of the document the query will run on.
func (e *Engine) Rewrite(p xpath.Path, height int) (xpath.Path, error) {
	r, err := e.Rewriter(height)
	if err != nil {
		return nil, err
	}
	return r.Rewrite(p)
}

// Optimize improves a document query using the document DTD's structural
// constraints (Section 5). It is equivalence-preserving and never errors:
// constructs outside the optimizer's reasoning pass through unchanged.
func (e *Engine) Optimize(p xpath.Path) xpath.Path {
	return e.opt.Optimize(p)
}

// Query answers a view query over a document: rewrite, optimize, and
// evaluate over the original tree. The result contains exactly the
// document nodes the policy exposes to the query.
func (e *Engine) Query(doc *xmltree.Document, p xpath.Path) ([]*xmltree.Node, error) {
	pt, err := e.Rewrite(p, doc.Height())
	if err != nil {
		return nil, err
	}
	return xpath.EvalDoc(e.Optimize(pt), doc), nil
}

// QueryString is Query with parsing.
func (e *Engine) QueryString(doc *xmltree.Document, query string) ([]*xmltree.Node, error) {
	p, err := xpath.Parse(query)
	if err != nil {
		return nil, err
	}
	return e.Query(doc, p)
}

// Prepared is a view query rewritten and optimized once, reusable across
// documents. Preparation is only available for non-recursive views (a
// recursive view's rewriting depends on each document's height).
type Prepared struct {
	// Source is the original view query.
	Source xpath.Path
	// Rewritten is rw(p, r) over the document DTD.
	Rewritten xpath.Path
	// Optimized is the DTD-optimized form actually evaluated.
	Optimized xpath.Path
}

// Prepare rewrites and optimizes a view query once, so frontends can
// amortize translation across many documents and evaluations.
func (e *Engine) Prepare(p xpath.Path) (*Prepared, error) {
	if e.flat == nil {
		return nil, fmt.Errorf("core: Prepare needs a non-recursive view; use Rewrite with the document height")
	}
	pt, err := e.flat.Rewrite(p)
	if err != nil {
		return nil, err
	}
	return &Prepared{Source: p, Rewritten: pt, Optimized: e.Optimize(pt)}, nil
}

// PrepareString parses and prepares in one step.
func (e *Engine) PrepareString(query string) (*Prepared, error) {
	p, err := xpath.Parse(query)
	if err != nil {
		return nil, err
	}
	return e.Prepare(p)
}

// Eval runs a prepared query over a document with the tree evaluator.
func (q *Prepared) Eval(doc *xmltree.Document) []*xmltree.Node {
	return xpath.EvalDoc(q.Optimized, doc)
}

// EvalIndexed runs a prepared query against a prebuilt label index.
func (q *Prepared) EvalIndexed(idx *xpath.Index) []*xmltree.Node {
	return xpath.EvalIndexed(q.Optimized, idx)
}

// Materialize builds the view instance T_v of a document — the view's
// semantics, used for auditing and testing, never on the query path.
func (e *Engine) Materialize(doc *xmltree.Document) (*secview.Materialized, error) {
	return secview.Materialize(e.view, doc)
}

// Audit checks that the derived view is sound and complete on a concrete
// document (Theorem 3.2's property, verified dynamically).
func (e *Engine) Audit(doc *xmltree.Document) error {
	_, err := secview.CheckSoundComplete(e.view, doc)
	return err
}
