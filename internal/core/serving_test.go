package core

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/dtds"
	"repro/internal/obs"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// fig7Doc builds a document for the recursive Fig. 7 DTD with the given
// nesting depth: a(b, c(a(b, c(...)))).
func fig7Doc(depth int) *xmltree.Document {
	e, tx := xmltree.E, xmltree.T
	var rec func(d int) *xmltree.Node
	rec = func(d int) *xmltree.Node {
		if d == 0 {
			return e("a", tx("b", "leaf"), e("c"))
		}
		return e("a", tx("b", fmt.Sprintf("lvl-%d", d)), e("c", rec(d-1)))
	}
	return xmltree.NewDocument(rec(depth))
}

// TestPlanCacheHits: the second identical query must be served from the
// plan cache — the rewrite+optimize stages run once.
func TestPlanCacheHits(t *testing.T) {
	e := nurseEngine(t, "1")
	doc := dtds.GenerateHospital(3, 3)
	first, err := e.QueryString(doc, "//patient/name")
	if err != nil {
		t.Fatalf("QueryString: %v", err)
	}
	s := e.Stats()
	if s.PlanCache.Hits != 0 || s.PlanCache.Misses != 1 {
		t.Fatalf("after first query: %+v", s.PlanCache)
	}
	second, err := e.QueryString(doc, "//patient/name")
	if err != nil {
		t.Fatalf("QueryString: %v", err)
	}
	s = e.Stats()
	if s.PlanCache.Hits != 1 || s.PlanCache.Misses != 1 || s.PlanCache.Entries != 1 {
		t.Errorf("after second query: %+v", s.PlanCache)
	}
	if s.Queries != 2 {
		t.Errorf("queries = %d", s.Queries)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("cached plan changed the answer")
	}
	// Equivalent text (parse→print canonicalization) shares the entry.
	if _, err := e.QueryString(doc, "  //patient/name "); err != nil {
		t.Fatalf("QueryString: %v", err)
	}
	if s := e.Stats(); s.PlanCache.Entries != 1 || s.PlanCache.Hits != 2 {
		t.Errorf("canonicalization missed: %+v", s.PlanCache)
	}
}

// TestPlanCacheRecursiveHeightClasses: the unfold oracle caches one plan
// per (query, document height); height-free mode collapses all heights
// into one entry per query.
func TestPlanCacheRecursiveHeightClasses(t *testing.T) {
	e, err := NewWithConfig(dtds.Fig7Spec(), Config{UnfoldRewrite: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	d3, d5 := fig7Doc(1), fig7Doc(2)
	for _, doc := range []*xmltree.Document{d3, d5, d3, d5} {
		if _, err := e.QueryString(doc, "//b"); err != nil {
			t.Fatalf("QueryString: %v", err)
		}
	}
	s := e.Stats()
	if s.PlanCache.Entries != 2 {
		t.Errorf("entries = %d, want 2 (one per height class)", s.PlanCache.Entries)
	}
	if s.PlanCache.Hits != 2 || s.PlanCache.Misses != 2 {
		t.Errorf("hits/misses = %d/%d, want 2/2", s.PlanCache.Hits, s.PlanCache.Misses)
	}
	if s.PlanCacheQueries != 1 || s.PlanCacheHeightClasses != 2 {
		t.Errorf("breakdown = %d queries / %d classes, want 1/2",
			s.PlanCacheQueries, s.PlanCacheHeightClasses)
	}
	// The recursive answers must still be right: every b is visible.
	got, err := e.QueryString(d5, "//b")
	if err != nil {
		t.Fatalf("QueryString: %v", err)
	}
	if len(got) != 3 {
		t.Errorf("//b over depth-2 doc = %d nodes, want 3", len(got))
	}
}

// TestPlanCacheHeightFreeCollapsesClasses: the same workload in the
// default height-free mode keeps one cache entry for both heights.
func TestPlanCacheHeightFreeCollapsesClasses(t *testing.T) {
	e, err := New(dtds.Fig7Spec())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	d3, d5 := fig7Doc(1), fig7Doc(2)
	for _, doc := range []*xmltree.Document{d3, d5, d3, d5} {
		if _, err := e.QueryString(doc, "//b"); err != nil {
			t.Fatalf("QueryString: %v", err)
		}
	}
	s := e.Stats()
	if s.PlanCache.Entries != 1 {
		t.Errorf("entries = %d, want 1 (height-free shares the plan)", s.PlanCache.Entries)
	}
	if s.PlanCache.Hits != 3 || s.PlanCache.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 3/1", s.PlanCache.Hits, s.PlanCache.Misses)
	}
	if s.PlanCacheQueries != 1 || s.PlanCacheHeightClasses != 1 {
		t.Errorf("breakdown = %d queries / %d classes, want 1/1",
			s.PlanCacheQueries, s.PlanCacheHeightClasses)
	}
	got, err := e.QueryString(d5, "//b")
	if err != nil {
		t.Fatalf("QueryString: %v", err)
	}
	if len(got) != 3 {
		t.Errorf("//b over depth-2 doc = %d nodes, want 3", len(got))
	}
}

// TestByHeightCapRegression: adversarial clients submitting documents
// of many distinct heights must not grow the per-height rewriter map
// without bound.
func TestByHeightCapRegression(t *testing.T) {
	e, err := NewWithConfig(dtds.Fig7Spec(), Config{HeightCacheCapacity: 4, UnfoldRewrite: true})
	if err != nil {
		t.Fatalf("NewWithConfig: %v", err)
	}
	for h := 2; h < 40; h++ {
		if _, err := e.Rewriter(h); err != nil {
			t.Fatalf("Rewriter(%d): %v", h, err)
		}
	}
	s := e.Stats()
	if s.HeightCache.Entries > 4 {
		t.Errorf("height cache grew to %d entries, cap 4", s.HeightCache.Entries)
	}
	if s.HeightCache.Evictions == 0 {
		t.Errorf("no evictions recorded despite 38 distinct heights")
	}
	// The cap must not change answers: re-request an evicted height.
	if _, err := e.Rewriter(2); err != nil {
		t.Errorf("Rewriter(2) after eviction: %v", err)
	}
}

// TestQueryUnboundVarReturnsError: the satellite bugfix — an unbound
// $variable reachable from QueryString must error, not panic.
func TestQueryUnboundVarReturnsError(t *testing.T) {
	e := nurseEngine(t, "1")
	doc := dtds.GenerateHospital(2, 2)
	res, err := e.QueryString(doc, `//patient[wardNo = $evil]/name`)
	if err == nil {
		t.Fatalf("unbound variable accepted, returned %d nodes", len(res))
	}
	if !strings.Contains(err.Error(), "evil") {
		t.Errorf("error does not name the variable: %v", err)
	}
	// The engine must stay usable afterwards.
	if _, err := e.QueryString(doc, "//patient/name"); err != nil {
		t.Errorf("engine broken after bad query: %v", err)
	}
}

// TestParallelEngineMatchesSequential: a Parallel engine returns the
// same answers as the default one.
func TestParallelEngineMatchesSequential(t *testing.T) {
	spec, err := dtds.NurseSpec().Bind(map[string]string{"wardNo": "1"})
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	seqE, err := New(spec)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	parE, err := NewWithConfig(spec, Config{
		Parallel:       true,
		ParallelConfig: xpath.ParallelConfig{Workers: 4, Threshold: -1},
	})
	if err != nil {
		t.Fatalf("NewWithConfig: %v", err)
	}
	doc := dtds.GenerateHospital(17, 6)
	for _, q := range []string{"//patient/name", "//bill", "dept/staffInfo/staff/*", "//patient[wardNo]/name"} {
		want, err := seqE.QueryString(doc, q)
		if err != nil {
			t.Fatalf("sequential %q: %v", q, err)
		}
		got, err := parE.QueryString(doc, q)
		if err != nil {
			t.Fatalf("parallel %q: %v", q, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%q: parallel %d nodes, sequential %d", q, len(got), len(want))
		}
	}
	s := parE.Stats()
	if s.ParallelEvals == 0 {
		t.Errorf("parallel engine recorded no parallel evals: %+v", s)
	}
	if s := seqE.Stats(); s.SequentialEvals == 0 {
		t.Errorf("sequential engine recorded no sequential evals")
	}
}

// TestConcurrentQueriesFlatAndRecursive: satellite coverage — parallel
// Query/Prepare from many goroutines under -race, on both view shapes.
func TestConcurrentQueriesFlatAndRecursive(t *testing.T) {
	flat := nurseEngine(t, "1")
	flatDoc := dtds.GenerateHospital(7, 4)
	// Unfold-oracle mode so the per-height rewriter cache is exercised
	// under concurrency too (height-free mode never touches it).
	rec, err := NewWithConfig(dtds.Fig7Spec(), Config{UnfoldRewrite: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	recDocs := []*xmltree.Document{fig7Doc(1), fig7Doc(2), fig7Doc(3)}
	queries := []string{"//patient/name", "//bill", "dept/staffInfo/staff/*"}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				q := queries[(g+i)%len(queries)]
				if _, err := flat.QueryString(flatDoc, q); err != nil {
					t.Errorf("flat %q: %v", q, err)
					return
				}
				if _, err := flat.PrepareString(q); err != nil {
					t.Errorf("prepare %q: %v", q, err)
					return
				}
				if _, err := rec.QueryString(recDocs[(g+i)%len(recDocs)], "//b"); err != nil {
					t.Errorf("recursive //b: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	fs, rs := flat.Stats(), rec.Stats()
	if fs.PlanCache.Hits == 0 || rs.PlanCache.Hits == 0 {
		t.Errorf("no plan-cache hits under concurrency: flat %+v recursive %+v", fs.PlanCache, rs.PlanCache)
	}
	if rs.HeightCache.Entries == 0 {
		t.Errorf("recursive engine cached no rewriters")
	}
}

// TestPrepareServedFromPlanCache: Prepare and Query share the cache.
func TestPrepareServedFromPlanCache(t *testing.T) {
	e := nurseEngine(t, "1")
	p1, err := e.PrepareString("//patient/name")
	if err != nil {
		t.Fatalf("PrepareString: %v", err)
	}
	p2, err := e.PrepareString("//patient/name")
	if err != nil {
		t.Fatalf("PrepareString: %v", err)
	}
	if p1 != p2 {
		t.Errorf("identical prepares returned distinct plans")
	}
	doc := dtds.GenerateHospital(5, 3)
	if _, err := e.QueryString(doc, "//patient/name"); err != nil {
		t.Fatalf("QueryString: %v", err)
	}
	if s := e.Stats(); s.PlanCache.Entries != 1 {
		t.Errorf("Query built a second plan for a prepared query: %+v", s.PlanCache)
	}
}

// TestIndexedEngineMatchesSequential: the tentpole serving contract —
// an engine with the structural index enabled answers descendant
// queries from posting lists, matches the sequential evaluator node
// for node, and reports the mode through Explain and Stats.
func TestIndexedEngineMatchesSequential(t *testing.T) {
	spec, err := dtds.NurseSpec().Bind(map[string]string{"wardNo": "1"})
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	seqE, err := New(spec)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	idxE, err := NewWithConfig(spec, Config{Indexed: true, IndexThreshold: -1})
	if err != nil {
		t.Fatalf("NewWithConfig: %v", err)
	}
	doc := dtds.GenerateHospital(17, 6)
	for _, q := range []string{
		"//patient/name",
		"//dept//treatment//bill",
		"//bill",
		"//patient[wardNo]/name",
		"dept/staffInfo/staff/*", // no // step: falls back to sequential
	} {
		want, err := seqE.QueryString(doc, q)
		if err != nil {
			t.Fatalf("sequential %q: %v", q, err)
		}
		got, err := idxE.QueryString(doc, q)
		if err != nil {
			t.Fatalf("indexed %q: %v", q, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%q: indexed %d nodes, sequential %d", q, len(got), len(want))
		}
	}
	s := idxE.Stats()
	if s.IndexedEvals == 0 {
		t.Errorf("indexed engine recorded no indexed evals: %+v", s)
	}
	if s.SequentialEvals == 0 {
		t.Errorf("descendant-free query should have fallen back to sequential: %+v", s)
	}
	if s.IndexCache.Entries == 0 || s.IndexCache.Misses == 0 {
		t.Errorf("index cache never populated: %+v", s.IndexCache)
	}
	// The second query over the same document reuses the cached index.
	if s.IndexCache.Hits == 0 {
		t.Errorf("index cache never hit across queries: %+v", s.IndexCache)
	}
}

// TestExplainReportsIndexedMode: /explainz's EvalMode shows what the
// evaluator actually did, including the indexed mode and its
// nodes-visited counter.
func TestExplainReportsIndexedMode(t *testing.T) {
	spec, err := dtds.NurseSpec().Bind(map[string]string{"wardNo": "1"})
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	e, err := NewWithConfig(spec, Config{Indexed: true, IndexThreshold: -1})
	if err != nil {
		t.Fatalf("NewWithConfig: %v", err)
	}
	doc := dtds.GenerateHospital(3, 4)
	p, err := xpath.Parse("//dept//treatment//bill")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ex, err := e.ExplainCtx(context.Background(), doc, p)
	if err != nil {
		t.Fatalf("ExplainCtx: %v", err)
	}
	if ex.EvalMode != obs.ModeIndexed {
		t.Errorf("EvalMode = %q, want %q", ex.EvalMode, obs.ModeIndexed)
	}
	if ex.NodesVisited == 0 {
		t.Errorf("indexed explain reported zero nodes visited")
	}
	// A small document under the default threshold stays sequential.
	small, err := NewWithConfig(spec, Config{Indexed: true})
	if err != nil {
		t.Fatalf("NewWithConfig: %v", err)
	}
	ex2, err := small.ExplainCtx(context.Background(), doc, p)
	if err != nil {
		t.Fatalf("ExplainCtx: %v", err)
	}
	if doc.Size() < DefaultIndexThreshold && ex2.EvalMode != obs.ModeSequential {
		t.Errorf("below-threshold EvalMode = %q, want %q", ex2.EvalMode, obs.ModeSequential)
	}
}
