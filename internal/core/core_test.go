package core

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/access"
	"repro/internal/dtds"
	"repro/internal/xpath"
)

func nurseEngine(t *testing.T, ward string) *Engine {
	t.Helper()
	spec, err := dtds.NurseSpec().Bind(map[string]string{"wardNo": ward})
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	e, err := New(spec)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e
}

func TestNewRejectsUnboundParameters(t *testing.T) {
	_, err := New(dtds.NurseSpec())
	if err == nil || !strings.Contains(err.Error(), "wardNo") {
		t.Errorf("New(unbound) = %v", err)
	}
}

func TestEngineAccessors(t *testing.T) {
	e := nurseEngine(t, "6")
	if e.ViewDTD().Root() != "hospital" {
		t.Errorf("view root = %q", e.ViewDTD().Root())
	}
	if e.DocumentDTD().Len() != dtds.Hospital().Len() {
		t.Errorf("document DTD wrong")
	}
	if e.Spec() == nil || e.View() == nil {
		t.Errorf("nil accessors")
	}
}

func TestEngineQueryOnGeneratedData(t *testing.T) {
	e := nurseEngine(t, "1")
	doc := dtds.GenerateHospital(11, 4)
	got, err := e.QueryString(doc, "//patient/name")
	if err != nil {
		t.Fatalf("QueryString: %v", err)
	}
	// Cross-check against the materialized view.
	m, err := e.Materialize(doc)
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	want := xpath.EvalDoc(xpath.MustParse("//patient/name"), m.View)
	if len(got) != len(want) {
		t.Fatalf("engine returned %d names, view has %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != m.DocOf[want[i]] {
			t.Errorf("result %d differs from view", i)
		}
	}
	if err := e.Audit(doc); err != nil {
		t.Errorf("Audit: %v", err)
	}
}

func TestEngineQueryParseError(t *testing.T) {
	e := nurseEngine(t, "6")
	doc := dtds.GenerateHospital(1, 2)
	if _, err := e.QueryString(doc, "///"); err == nil {
		t.Errorf("bad query accepted")
	}
}

func TestEngineOptimizeEquivalence(t *testing.T) {
	e := nurseEngine(t, "1")
	doc := dtds.GenerateHospital(13, 4)
	for _, q := range []string{"//patient//bill", "//dummy2/medication", "dept/staffInfo/staff/*"} {
		pt, err := e.Rewrite(xpath.MustParse(q), doc.Height())
		if err != nil {
			t.Fatalf("Rewrite(%q): %v", q, err)
		}
		po := e.Optimize(pt)
		a := xpath.EvalDoc(pt, doc)
		b := xpath.EvalDoc(po, doc)
		if len(a) != len(b) {
			t.Errorf("%q: optimize changed result count %d -> %d", q, len(a), len(b))
		}
	}
}

func TestEngineRecursiveRewriterHeightFree(t *testing.T) {
	e, err := New(dtds.Fig7Spec())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := e.RewriteMode(); got != "height-free" {
		t.Errorf("RewriteMode = %q, want height-free", got)
	}
	r1, err := e.Rewriter(5)
	if err != nil {
		t.Fatalf("Rewriter(5): %v", err)
	}
	r3, err := e.Rewriter(9)
	if err != nil {
		t.Fatalf("Rewriter(9): %v", err)
	}
	if r1 != r3 {
		t.Errorf("height-free mode built per-height rewriters")
	}
}

func TestEngineRecursiveRewriterCacheUnfold(t *testing.T) {
	e, err := NewWithConfig(dtds.Fig7Spec(), Config{UnfoldRewrite: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := e.RewriteMode(); got != "unfold" {
		t.Errorf("RewriteMode = %q, want unfold", got)
	}
	r1, err := e.Rewriter(5)
	if err != nil {
		t.Fatalf("Rewriter(5): %v", err)
	}
	r2, err := e.Rewriter(5)
	if err != nil {
		t.Fatalf("Rewriter(5) again: %v", err)
	}
	if r1 != r2 {
		t.Errorf("per-height rewriter not cached")
	}
	r3, err := e.Rewriter(9)
	if err != nil {
		t.Fatalf("Rewriter(9): %v", err)
	}
	if r1 == r3 {
		t.Errorf("different heights share a rewriter")
	}
}

func TestEngineNonRecursiveIgnoresHeight(t *testing.T) {
	e := nurseEngine(t, "6")
	r1, _ := e.Rewriter(1)
	r2, _ := e.Rewriter(100)
	if r1 != r2 {
		t.Errorf("non-recursive view built per-height rewriters")
	}
}

func TestEngineDeniesEverythingButRoot(t *testing.T) {
	d := dtds.Hospital()
	spec := access.MustParseAnnotations(d, "ann(hospital, dept) = N\n")
	e, err := New(spec)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	doc := dtds.GenerateHospital(5, 3)
	res, err := e.QueryString(doc, "//patient")
	if err != nil {
		t.Fatalf("QueryString: %v", err)
	}
	if len(res) != 0 {
		t.Errorf("fully denied policy returned %d nodes", len(res))
	}
	if got := e.ViewDTD().Len(); got != 1 {
		t.Errorf("view DTD has %d types, want 1 (root only)", got)
	}
}

func TestPreparedQueries(t *testing.T) {
	e := nurseEngine(t, "1")
	q, err := e.PrepareString("//patient/name")
	if err != nil {
		t.Fatalf("PrepareString: %v", err)
	}
	if xpath.IsEmpty(q.Rewritten) || xpath.IsEmpty(q.Optimized) {
		t.Fatalf("prepared forms empty")
	}
	for seed := int64(0); seed < 3; seed++ {
		doc := dtds.GenerateHospital(seed, 3)
		want, err := e.Query(doc, q.Source)
		if err != nil {
			t.Fatalf("Query: %v", err)
		}
		got := q.Eval(doc)
		if len(got) != len(want) {
			t.Errorf("seed %d: prepared %d, direct %d", seed, len(got), len(want))
		}
		idx := xpath.NewIndex(doc)
		gotIdx := q.EvalIndexed(idx)
		if len(gotIdx) != len(want) {
			t.Errorf("seed %d: indexed prepared %d, direct %d", seed, len(gotIdx), len(want))
		}
	}
	if _, err := e.PrepareString("///"); err == nil {
		t.Errorf("bad query prepared")
	}
}

func TestPrepareRecursiveView(t *testing.T) {
	// Height-free mode (default) can prepare over a recursive view; the
	// unfold oracle cannot — its plans depend on the document height.
	e, err := New(dtds.Fig7Spec())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := e.PrepareString("//b"); err != nil {
		t.Errorf("height-free Prepare: %v", err)
	}
	eo, err := NewWithConfig(dtds.Fig7Spec(), Config{UnfoldRewrite: true})
	if err != nil {
		t.Fatalf("New(unfold): %v", err)
	}
	if _, err := eo.PrepareString("//b"); err == nil {
		t.Errorf("unfold-oracle engine prepared a recursive view")
	}
}

// TestEngineConcurrentQueries: an Engine must serve parallel queries
// safely (run with -race).
func TestEngineConcurrentQueries(t *testing.T) {
	e := nurseEngine(t, "1")
	doc := dtds.GenerateHospital(7, 3)
	queries := []string{"//patient/name", "//bill", "dept/staffInfo/staff/*", "//dummy2/medication"}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if _, err := e.QueryString(doc, queries[(i+j)%len(queries)]); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent query: %v", err)
	}
}

// TestEngineConcurrentRecursive exercises the per-height rewriter cache
// under parallel access.
func TestEngineConcurrentRecursive(t *testing.T) {
	e, err := New(dtds.Fig7Spec())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	docs := []struct{ height int }{{3}, {5}, {7}}
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				h := docs[(i+j)%len(docs)].height
				if _, err := e.Rewrite(xpath.MustParse("//b"), h); err != nil {
					t.Errorf("Rewrite: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}
