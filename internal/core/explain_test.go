package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dtds"
	"repro/internal/obs"
	"repro/internal/xmlgen"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

func fig7Engine(t *testing.T) (*Engine, *xmltree.Document) {
	t.Helper()
	e, err := New(dtds.Fig7Spec())
	if err != nil {
		t.Fatalf("New(fig7): %v", err)
	}
	doc := xmlgen.Generate(dtds.Fig7(), xmlgen.Config{
		Seed: 3, MinRepeat: 1, MaxRepeat: 3, MaxDepth: 12,
		Value: func(r *rand.Rand, label string) string { return fmt.Sprintf("%s-%d", label, r.Intn(50)) },
	})
	return e, doc
}

// TestExplainRecursive: an explain over the recursive Fig. 7 view must
// report all three phases with measured (nonzero) durations, the
// intermediate query strings, the eval mode, and the height-free rewrite
// mode (with no unfold height) — even when the plan cache is already
// warm, because the explain path re-times rewrite and optimize from
// scratch.
func TestExplainRecursive(t *testing.T) {
	e, doc := fig7Engine(t)
	const q = "//a//a/b"

	ex, err := e.ExplainStringCtx(context.Background(), doc, q)
	if err != nil {
		t.Fatalf("ExplainStringCtx: %v", err)
	}
	if want := xpath.String(xpath.MustParse(q)); ex.Query != want {
		t.Errorf("Query = %q, want %q", ex.Query, want)
	}
	if ex.RewriteNs <= 0 || ex.OptimizeNs <= 0 || ex.EvalNs <= 0 {
		t.Errorf("phase durations not all positive: rewrite=%d optimize=%d eval=%d",
			ex.RewriteNs, ex.OptimizeNs, ex.EvalNs)
	}
	if ex.Rewritten == "" || ex.Optimized == "" {
		t.Errorf("intermediate queries missing: rewritten=%q optimized=%q", ex.Rewritten, ex.Optimized)
	}
	if ex.EvalMode != obs.ModeSequential {
		t.Errorf("EvalMode = %q, want %q", ex.EvalMode, obs.ModeSequential)
	}
	if !ex.RecursiveView {
		t.Error("fig7 view not reported recursive")
	}
	if ex.DocHeight <= 0 || ex.UnfoldHeight != 0 {
		t.Errorf("heights: doc=%d unfold=%d (height-free mode must not unfold)", ex.DocHeight, ex.UnfoldHeight)
	}
	if ex.RewriteMode != "height-free" {
		t.Errorf("RewriteMode = %q, want height-free", ex.RewriteMode)
	}
	if ex.NodesVisited == 0 {
		t.Error("sequential explain reported zero nodes visited")
	}
	if ex.PlanWasCached {
		t.Error("first explain claims the plan was already cached")
	}

	// The explain's result count must agree with the serving path.
	nodes, err := e.QueryStringCtx(context.Background(), doc, q)
	if err != nil {
		t.Fatalf("QueryStringCtx: %v", err)
	}
	if ex.ResultCount != len(nodes) {
		t.Errorf("ResultCount = %d, query returned %d", ex.ResultCount, len(nodes))
	}

	// Second explain: the plan the first one re-cached is now visible.
	ex2, err := e.ExplainStringCtx(context.Background(), doc, q)
	if err != nil {
		t.Fatalf("second ExplainStringCtx: %v", err)
	}
	if !ex2.PlanWasCached {
		t.Error("second explain does not see the cached plan")
	}
	if ex2.RewriteNs <= 0 || ex2.OptimizeNs <= 0 {
		t.Errorf("warm explain skipped fresh phase timing: rewrite=%d optimize=%d", ex2.RewriteNs, ex2.OptimizeNs)
	}
	if ex2.Rewritten != ex.Rewritten || ex2.Optimized != ex.Optimized {
		t.Errorf("explain not deterministic: %q vs %q", ex2.Rewritten, ex.Rewritten)
	}
}

// TestQueryMetricsCarrier: a QueryCtx with an obs.QueryMetrics carrier
// on the context gets the per-phase accounting filled in, and a repeat
// of the same query reports a plan-cache hit with zero rewrite/optimize
// time instead of re-timed phases.
func TestQueryMetricsCarrier(t *testing.T) {
	e, doc := fig7Engine(t)
	const q = "//a/b"

	qm := &obs.QueryMetrics{CaptureQueries: true}
	ctx := obs.WithQueryMetrics(context.Background(), qm)
	if _, err := e.QueryStringCtx(ctx, doc, q); err != nil {
		t.Fatalf("QueryStringCtx: %v", err)
	}
	if qm.PlanCacheHit {
		t.Error("cold query reported a plan-cache hit")
	}
	if qm.Rewrite <= 0 || qm.Optimize <= 0 || qm.Eval <= 0 {
		t.Errorf("cold phases: rewrite=%v optimize=%v eval=%v", qm.Rewrite, qm.Optimize, qm.Eval)
	}
	if qm.EvalMode != obs.ModeSequential || qm.NodesVisited == 0 {
		t.Errorf("eval accounting: mode=%q nodes=%d", qm.EvalMode, qm.NodesVisited)
	}
	if qm.Rewritten == "" || qm.Optimized == "" {
		t.Errorf("capture requested but queries missing: %q / %q", qm.Rewritten, qm.Optimized)
	}

	qm2 := &obs.QueryMetrics{CaptureQueries: true}
	if _, err := e.QueryStringCtx(obs.WithQueryMetrics(context.Background(), qm2), doc, q); err != nil {
		t.Fatalf("warm QueryStringCtx: %v", err)
	}
	if !qm2.PlanCacheHit {
		t.Error("warm query missed the plan cache")
	}
	if qm2.Rewrite != 0 || qm2.Optimize != 0 {
		t.Errorf("plan-cache hit re-timed phases: rewrite=%v optimize=%v", qm2.Rewrite, qm2.Optimize)
	}
	if qm2.Rewritten != qm.Rewritten || qm2.Optimized != qm.Optimized {
		t.Errorf("cached plan strings differ: %q vs %q", qm2.Rewritten, qm.Rewritten)
	}
	if qm2.Eval <= 0 {
		t.Errorf("warm eval duration = %v", qm2.Eval)
	}
}
