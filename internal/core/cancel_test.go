package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/dtds"
	"repro/internal/xmlgen"
	"repro/internal/xmltree"
)

// heavyQuery is expensive over a large hospital document: the nested
// descendant qualifiers force repeated subtree walks, so evaluation runs
// long enough for a millisecond deadline to fire mid-flight.
const heavyQuery = "//*[//name]//*[//name]//name"

// bigHospital generates a hospital document with high fan-out (dept*,
// patient*, staff* all repeat 28-30 times, ~20k nodes), large enough
// that heavyQuery runs for many milliseconds.
func bigHospital() *xmltree.Document {
	return xmlgen.Generate(dtds.Hospital(), xmlgen.Config{
		Seed:      11,
		MinRepeat: 28,
		MaxRepeat: 30,
		Value: func(r *rand.Rand, label string) string {
			if label == "wardNo" {
				return fmt.Sprintf("%d", r.Intn(4))
			}
			return fmt.Sprintf("%s-%d", label, r.Intn(1000))
		},
	})
}

// TestQueryCtxDeadline: a 1ms-deadline query over a large document must
// return context.DeadlineExceeded well under 100ms, bump the engine's
// cancelled counter, and still leave a usable plan in the cache — the
// rewrite/optimize work completes and is cached even when evaluation is
// cut off, so a retry pays only the evaluation cost.
func TestQueryCtxDeadline(t *testing.T) {
	doc := bigHospital()

	// Sanity on a scratch engine: the uncancelled evaluation must be slow
	// enough that the deadline below genuinely interrupts it.
	warm := nurseEngine(t, "1")
	start := time.Now()
	want, err := warm.QueryString(doc, heavyQuery)
	if err != nil {
		t.Fatalf("uncancelled query: %v", err)
	}
	if full := time.Since(start); full < 5*time.Millisecond {
		t.Skipf("document too fast to test cancellation meaningfully (%v for %d nodes)", full, doc.Size())
	}

	// Fresh engine: the deadline fires on the very first (cold-cache) run.
	e := nurseEngine(t, "1")
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start = time.Now()
	_, err = e.QueryStringCtx(ctx, doc, heavyQuery)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed >= 100*time.Millisecond {
		t.Errorf("cancelled query took %v, want well under 100ms", elapsed)
	}
	s := e.Stats()
	if s.Cancelled != 1 {
		t.Errorf("Cancelled = %d, want 1", s.Cancelled)
	}
	if s.PlanCache.Misses != 1 || s.PlanCache.Entries != 1 {
		t.Errorf("plan cache after cancelled query: %+v (want 1 miss, 1 entry)", s.PlanCache)
	}

	// Retry without a deadline: served from the cached plan, same answer
	// as the scratch engine.
	got, err := e.QueryString(doc, heavyQuery)
	if err != nil {
		t.Fatalf("retry after cancellation: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("retry returned %d nodes, scratch engine %d", len(got), len(want))
	}
	s = e.Stats()
	if s.PlanCache.Hits != 1 || s.PlanCache.Entries != 1 {
		t.Errorf("plan cache after retry: %+v (want the cached plan hit)", s.PlanCache)
	}
	if s.Queries != 2 || s.Cancelled != 1 {
		t.Errorf("queries=%d cancelled=%d, want 2/1", s.Queries, s.Cancelled)
	}
}

// TestQueryCtxDeadlineParallel repeats the deadline check on an engine
// configured for parallel evaluation: the worker pool must drain and
// surface the context error just as promptly.
func TestQueryCtxDeadlineParallel(t *testing.T) {
	doc := bigHospital()
	spec, err := dtds.NurseSpec().Bind(map[string]string{"wardNo": "1"})
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	e, err := NewWithConfig(spec, Config{Parallel: true})
	if err != nil {
		t.Fatalf("NewWithConfig: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = e.QueryStringCtx(ctx, doc, heavyQuery)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed >= 100*time.Millisecond {
		t.Errorf("cancelled parallel query took %v, want well under 100ms", elapsed)
	}
	if got, err := e.QueryString(doc, heavyQuery); err != nil || len(got) == 0 {
		t.Errorf("retry after parallel cancellation: %d nodes, err %v", len(got), err)
	}
}

// TestQueryCtxAlreadyCancelled: a context that is already done fails the
// query immediately with context.Canceled, before touching the document.
func TestQueryCtxAlreadyCancelled(t *testing.T) {
	e := nurseEngine(t, "1")
	doc := dtds.GenerateHospital(3, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.QueryStringCtx(ctx, doc, "//name")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s := e.Stats(); s.Cancelled != 1 || s.PlanCache.Entries != 1 {
		t.Errorf("stats after immediate cancel: cancelled=%d entries=%d", s.Cancelled, s.PlanCache.Entries)
	}
	if _, err := e.QueryString(doc, "//name"); err != nil {
		t.Fatalf("retry: %v", err)
	}
	if s := e.Stats(); s.PlanCache.Hits != 1 {
		t.Errorf("retry did not hit the plan cached by the cancelled query: %+v", s.PlanCache)
	}
}
