package core

// End-to-end security invariant suite: for randomized policies over the
// paper's hospital DTD, the rewritten-query-over-view pipeline (derive →
// rewrite → optimize → evaluate) must return exactly what the §3.3
// annotation semantics says the view contains. Two baselines pin that
// down:
//
//  1. Materialization: evaluate the view query over the materialized view
//     T_v and map the results back to document nodes via DocOf — the
//     definition of view-query semantics, valid for every policy.
//  2. The §6 naive annotation baseline (package naive): annotate every
//     element with its accessibility and filter by it. Its child→
//     descendant widening is only sound for queries that use descendant
//     axes exclusively (over the hospital DTD) or for DTDs with unique
//     element labels (Adex), so each comparison sticks to its sound
//     fragment.

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/access"
	"repro/internal/dtds"
	"repro/internal/naive"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// condPool are qualifiers usable on any hospital edge: purely downward
// and label-compatible with the generated documents (wardNo values are
// "0".."3").
var condPool = []xpath.Qual{
	xpath.QPath{Path: xpath.Descend{Sub: xpath.Label{Name: "name"}}},
	xpath.QEq{Path: xpath.Descend{Sub: xpath.Label{Name: "wardNo"}}, Value: "1"},
	xpath.QPath{Path: xpath.Label{Name: "bill"}},
	xpath.QNot{Sub: xpath.QPath{Path: xpath.Label{Name: "clinicalTrial"}}},
}

// randomHospitalSpec draws a random access specification over the
// hospital DTD: every DTD edge independently stays unannotated (inherits)
// or gets Y, N, or a conditional annotation from condPool.
func randomHospitalSpec(r *rand.Rand) *access.Spec {
	d := dtds.Hospital()
	spec := access.NewSpec(d)
	for _, t := range d.Types() {
		for _, c := range d.Children(t) {
			var a access.Ann
			switch p := r.Float64(); {
			case p < 0.55:
				continue // inherit
			case p < 0.75:
				a = access.Ann{Kind: access.Allow}
			case p < 0.90:
				a = access.Ann{Kind: access.Deny}
			default:
				a = access.Ann{Kind: access.Cond, Cond: condPool[r.Intn(len(condPool))]}
			}
			if err := spec.Annotate(t, c, a); err != nil {
				panic("annotating a DTD edge cannot fail: " + err.Error())
			}
		}
	}
	return spec
}

// viewQueries are posed over the security view for the materialization
// baseline. Any axis is fine here — baseline 1 evaluates the identical
// query over T_v.
var viewQueries = []string{
	"//name",
	"//patient",
	"//*",
	"//patient/name",
	"//dept",
	"/hospital/*",
	"//treatment//bill",
	"//patient[name]/wardNo",
	"//regular/medication",
	"//staff/doctor/name | //bill",
}

// descendantQueries use descendant axes exclusively, the fragment where
// the naive widening is the identity and baseline 2 is sound over the
// hospital DTD.
var descendantQueries = []string{
	"//name",
	"//patient",
	"//bill",
	"//wardNo",
	"//medication",
	"//staff",
	"//doctor",
}

// docSet reduces a result to the set of distinct document nodes,
// mapping view nodes through DocOf when given one.
func docSet(nodes []*xmltree.Node, docOf map[*xmltree.Node]*xmltree.Node) map[*xmltree.Node]bool {
	set := make(map[*xmltree.Node]bool, len(nodes))
	for _, n := range nodes {
		if docOf != nil {
			n = docOf[n]
		}
		set[n] = true
	}
	return set
}

func sameSet(a, b map[*xmltree.Node]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for n := range a {
		if !b[n] {
			return false
		}
	}
	return true
}

// TestInvariantRandomHospitalPolicies sweeps randomized hospital policies
// and checks the full pipeline against both baselines on every query.
func TestInvariantRandomHospitalPolicies(t *testing.T) {
	r := rand.New(rand.NewSource(4004))
	// Denying a child of a sequence production usually makes
	// materialization abort (the concatenation no longer matches), so a
	// large share of random policies is legitimately untestable; the
	// trial count is sized to leave a healthy tested remainder.
	const trials = 120
	tested, derivationFailed, materializeFailed := 0, 0, 0
	for trial := 0; trial < trials; trial++ {
		spec := randomHospitalSpec(r)
		e, err := New(spec)
		if err != nil {
			// Not every random specification admits a sound and complete
			// view (Theorem 3.2); derivation rejecting it is the correct
			// outcome, not a pipeline failure.
			derivationFailed++
			continue
		}
		doc := dtds.GenerateHospital(int64(trial), 4)
		m, err := e.Materialize(doc)
		if err != nil {
			// Materialization aborts mean the view is not sound over this
			// instance; the invariant is only claimed when it exists.
			materializeFailed++
			continue
		}
		tested++

		// Baseline 1: materialized view semantics, arbitrary queries.
		for _, q := range viewQueries {
			p := xpath.MustParse(q)
			want := docSet(xpath.EvalDoc(p, m.View), m.DocOf)
			res, err := e.QueryString(doc, q)
			if err != nil {
				t.Fatalf("trial %d: engine query %q: %v\nspec:\n%s", trial, q, err, spec)
			}
			got := docSet(res, nil)
			if !sameSet(want, got) {
				t.Errorf("trial %d: %q diverges from materialized view: view→doc %d nodes, rewritten %d\nspec:\n%s",
					trial, q, len(want), len(got), spec)
			}
		}

		// Baseline 2: §6 annotation semantics. Annotate mutates the
		// document (adds accessibility attributes only), so it runs after
		// baseline 1.
		naive.Annotate(spec, doc)
		for _, q := range descendantQueries {
			p := xpath.MustParse(q)
			want, err := naive.Query(p, doc)
			if err != nil {
				t.Fatalf("trial %d: naive query %q: %v", trial, q, err)
			}
			got, err := e.QueryString(doc, q)
			if err != nil {
				t.Fatalf("trial %d: engine query %q: %v", trial, q, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("trial %d: %q diverges from naive baseline: naive %d nodes, rewritten %d\nspec:\n%s",
					trial, q, len(want), len(got), spec)
			}
		}
	}
	t.Logf("%d/%d policies tested (%d derivations rejected, %d materializations aborted)",
		tested, trials, derivationFailed, materializeFailed)
	if tested < 20 {
		t.Fatalf("only %d/%d random policies were testable; generator is too aggressive", tested, trials)
	}
}

// TestInvariantAdexNaiveBaseline checks the paper's own benchmark
// setting: the fixed prune-only Adex policy, whose unique element labels
// make the naive baseline sound for the child-axis benchmark queries of
// Table 1.
func TestInvariantAdexNaiveBaseline(t *testing.T) {
	spec := dtds.AdexSpec()
	e, err := New(spec)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for seed := int64(0); seed < 4; seed++ {
		doc := dtds.GenerateAdex(seed, 4)
		naive.Annotate(spec, doc)
		for name, q := range dtds.AdexQueries {
			p := xpath.MustParse(q)
			want, err := naive.Query(p, doc)
			if err != nil {
				t.Fatalf("naive %s: %v", name, err)
			}
			got, err := e.QueryString(doc, q)
			if err != nil {
				t.Fatalf("engine %s: %v", name, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("seed %d %s: naive returned %d nodes, rewritten %d", seed, name, len(want), len(got))
			}
		}
	}
}
