package core

// Answer-cache suite: the semantic answer cache (Config.AnswerCache)
// must be invisible in results — cache-on and cache-off engines agree
// on every query — while actually serving hits, staying sound on
// non-contained queries, and dropping every cached answer at an epoch
// bump.

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"strconv"
	"testing"

	"repro/internal/dtds"
	"repro/internal/obs"
	"repro/internal/xmlgen"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// nurseEngines returns cache-on and cache-off engines for the nurse
// policy bound to one ward.
func nurseEngines(t *testing.T, ward string) (on, off *Engine) {
	t.Helper()
	spec, err := dtds.NurseSpec().Bind(map[string]string{"wardNo": ward})
	if err != nil {
		t.Fatal(err)
	}
	on, err = NewWithConfig(spec, Config{AnswerCache: true})
	if err != nil {
		t.Fatal(err)
	}
	off, err = New(spec)
	if err != nil {
		t.Fatal(err)
	}
	return on, off
}

// genHospital generates a hospital document whose wardNo values are
// "0".."3", so the nurse bindings used below actually select wards.
func genHospital(seed int64) *xmltree.Document {
	return xmlgen.Generate(dtds.Hospital(), xmlgen.Config{
		Seed: seed, MinRepeat: 2, MaxRepeat: 4, MaxDepth: 12,
		Value: func(r *rand.Rand, label string) string {
			if label == "wardNo" {
				return strconv.Itoa(r.Intn(4))
			}
			return fmt.Sprintf("v%d", r.Intn(10))
		},
	})
}

// nurseViewQueries mixes repeated bases, qualified restrictions of
// those bases (the containment-hit shape), and unrelated queries.
// Order matters: each base precedes its qualified restrictions.
var nurseViewQueries = []string{
	"//patient",
	"//patient[.//bill]",
	"//patient[.//medication]",
	"//bill",
	"//name",
	"//patient/name",
	"//medication",
	"//patient[name]",
	"//wardNo",
	".",
}

// TestAnswerCacheDifferential sweeps (policy, document, query) triples —
// hospital nurse bindings and randomized recursive policies, well over
// 200 triples — asserting the cache-on engine answers every query, twice
// in a row, exactly like the cache-off engine.
func TestAnswerCacheDifferential(t *testing.T) {
	triples := 0
	var hits, containmentHits uint64

	// Hospital: 3 ward bindings × 4 documents × 10 queries.
	for _, ward := range []string{"1", "2", "3"} {
		on, off := nurseEngines(t, ward)
		for seed := int64(0); seed < 4; seed++ {
			doc := genHospital(seed)
			for _, q := range nurseViewQueries {
				triples++
				want, err := off.QueryString(doc, q)
				if err != nil {
					t.Fatalf("ward %s seed %d %q: cache-off: %v", ward, seed, q, err)
				}
				for pass := 0; pass < 2; pass++ {
					got, err := on.QueryString(doc, q)
					if err != nil {
						t.Fatalf("ward %s seed %d %q pass %d: cache-on: %v", ward, seed, q, pass, err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Errorf("ward %s seed %d %q pass %d: cache-on %d nodes, cache-off %d",
							ward, seed, q, pass, len(got), len(want))
					}
				}
			}
		}
		s := on.Stats().AnswerCache
		hits += s.Hits
		containmentHits += s.ContainmentHits
	}

	// Randomized recursive policies: second-pass repeats guarantee equal
	// hits; the qualified shapes give containment a chance.
	recQueries := []string{"/n0/*", "n1", "n1/n2", "n2", "n2[v2]", "n1/v1 | v0", ".", "//n1", "//n2", "//v2"}
	tested := 0
	for trial := int64(0); trial < 16; trial++ {
		rng := rand.New(rand.NewSource(4200 + trial))
		spec := dtds.RandomRecursiveSpec(rng, dtds.RecursiveGen{
			Depth:       3 + rng.Intn(3),
			Branching:   1 + rng.Intn(2),
			Density:     0.3 + rng.Float64()*0.4,
			StarredOnly: true,
		})
		off, err := New(spec)
		if err != nil {
			continue // generator drew an underivable policy; skip like the invariant suite
		}
		on, err := NewWithConfig(spec, Config{AnswerCache: true})
		if err != nil {
			t.Fatalf("trial %d: cache-on engine rejected a spec the cache-off engine accepted: %v", trial, err)
		}
		tested++
		doc := xmlgen.Generate(spec.D, xmlgen.Config{Seed: trial, MinRepeat: 1, MaxRepeat: 2, MaxDepth: 16, MaxNodes: 2000})
		for _, q := range recQueries {
			triples++
			want, err := off.QueryString(doc, q)
			if err != nil {
				t.Fatalf("trial %d %q: cache-off: %v\nspec:\n%s", trial, q, err, spec)
			}
			for pass := 0; pass < 2; pass++ {
				got, err := on.QueryString(doc, q)
				if err != nil {
					t.Fatalf("trial %d %q pass %d: cache-on: %v\nspec:\n%s", trial, q, pass, err, spec)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("trial %d %q pass %d: cache-on %d nodes, cache-off %d\nspec:\n%s",
						trial, q, pass, len(got), len(want), spec)
				}
			}
		}
		s := on.Stats().AnswerCache
		hits += s.Hits
		containmentHits += s.ContainmentHits
	}
	if tested < 8 {
		t.Fatalf("only %d/16 recursive policies derivable; generator too aggressive", tested)
	}
	if triples < 200 {
		t.Fatalf("suite covered %d triples, want ≥ 200", triples)
	}
	if hits == 0 {
		t.Errorf("differential sweep produced no equal hits — the cache never engaged")
	}
	if containmentHits == 0 {
		t.Errorf("differential sweep produced no containment hits — the filtered path never engaged")
	}
	t.Logf("%d triples, %d equal hits, %d containment hits", triples, hits, containmentHits)
}

// TestAnswerCacheEqualHitLeg pins the equal-hit path: the second
// identical query is served from the cache, reported as eval mode
// "cached" with hit kind "equal", with the identical node-set.
func TestAnswerCacheEqualHitLeg(t *testing.T) {
	on, off := nurseEngines(t, "1")
	doc := genHospital(7)
	q := xpath.MustParse("//patient")
	want, err := off.Query(doc, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatalf("ward-1 view shows no patients on this document; pick another seed")
	}
	if _, err := on.Query(doc, q); err != nil {
		t.Fatal(err)
	}
	qm := &obs.QueryMetrics{}
	got, err := on.QueryCtx(obs.WithQueryMetrics(context.Background(), qm), doc, q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("equal hit returned %d nodes, want %d", len(got), len(want))
	}
	if qm.EvalMode != obs.ModeCached || qm.AnswerCacheHit != "equal" {
		t.Errorf("metrics: mode=%q hit=%q, want cached/equal", qm.EvalMode, qm.AnswerCacheHit)
	}
	s := on.Stats().AnswerCache
	if s.Hits != 1 || s.ContainmentHits != 0 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

// TestAnswerCacheContainmentHitLeg pins the containment path: after the
// base query is cached, its qualified restriction is answered by
// filtering the cached node-set — no evaluator run — and matches the
// cache-off answer exactly.
func TestAnswerCacheContainmentHitLeg(t *testing.T) {
	on, off := nurseEngines(t, "1")
	doc := genHospital(7)
	// medication exists only under the "regular" treatment branch, so
	// the qualifier discriminates (unlike [.//bill], which the DTD makes
	// universally true).
	base := xpath.MustParse("//patient")
	restricted := xpath.MustParse("//patient[.//medication]")
	baseNodes, err := off.Query(doc, base)
	if err != nil {
		t.Fatal(err)
	}
	want, err := off.Query(doc, restricted)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 || len(want) == len(baseNodes) {
		t.Fatalf("qualifier not discriminating (%d of %d); pick another seed", len(want), len(baseNodes))
	}
	if _, err := on.Query(doc, base); err != nil {
		t.Fatal(err)
	}
	qm := &obs.QueryMetrics{}
	got, err := on.QueryCtx(obs.WithQueryMetrics(context.Background(), qm), doc, restricted)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("containment hit returned %d nodes, want %d", len(got), len(want))
	}
	if qm.EvalMode != obs.ModeCached || qm.AnswerCacheHit != "containment" {
		t.Errorf("metrics: mode=%q hit=%q, want cached/containment", qm.EvalMode, qm.AnswerCacheHit)
	}
	s := on.Stats().AnswerCache
	if s.ContainmentHits != 1 {
		t.Errorf("stats = %+v", s)
	}
}

// TestAnswerCacheSoundness: queries with no provable containment
// relation to anything cached must always miss — in particular a query
// that CONTAINS a cached one (the unsound direction) must not hit.
func TestAnswerCacheSoundness(t *testing.T) {
	on, _ := nurseEngines(t, "1")
	doc := genHospital(7)
	// //patient/name is cached first; //name contains it (every patient
	// name is a name) but is not contained in it, so serving the cached
	// answer would drop nurse-roster names.
	for _, q := range []string{"//patient/name", "//name", "//medication", "//bill"} {
		if _, err := on.QueryString(doc, q); err != nil {
			t.Fatal(err)
		}
	}
	s := on.Stats().AnswerCache
	if s.Hits != 0 || s.ContainmentHits != 0 {
		t.Errorf("unrelated queries produced hits: %+v", s)
	}
	if s.Misses != 4 {
		t.Errorf("misses = %d, want 4", s.Misses)
	}
}

// TestAnswerCacheEpochStaleness mutates a document in place — the
// sharpest staleness scenario, where even pointer-identity keying would
// serve the stale answer — and proves BumpEpoch makes the pre-swap
// answer unreachable.
func TestAnswerCacheEpochStaleness(t *testing.T) {
	on, off := nurseEngines(t, "1")
	doc := genHospital(7)
	q := xpath.MustParse("//patient")
	before, err := on.Query(doc, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) == 0 {
		t.Fatalf("ward-1 view shows no patients; pick another seed")
	}

	// Swap the document under the engine: move every ward-1 patient to
	// ward 9, which the nurse's view no longer exposes.
	changed := 0
	for _, n := range xpath.EvalDoc(xpath.MustParse("//wardNo"), doc) {
		for _, c := range n.Children {
			if c.Kind == xmltree.TextNode && c.Data == "1" {
				c.Data = "9"
				changed++
			}
		}
	}
	if changed == 0 {
		t.Fatalf("document has no ward-1 wardNo nodes to swap")
	}

	if e := on.Epoch(); e != 0 {
		t.Fatalf("fresh engine epoch = %d", e)
	}
	on.BumpEpoch()
	off.BumpEpoch()
	if e := on.Epoch(); e != 1 {
		t.Errorf("epoch after bump = %d", e)
	}
	if n := on.Stats().AnswerCache.Entries; n != 0 {
		t.Errorf("answer cache holds %d entries after bump", n)
	}

	want, err := off.Query(doc, q)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(want, before) {
		t.Fatalf("mutation did not change the answer; the staleness check would be vacuous")
	}
	preHits := on.Stats().AnswerCache.Hits
	got, err := on.Query(doc, q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("post-swap query returned %d nodes, want %d — a pre-swap answer leaked", len(got), len(want))
	}
	if s := on.Stats().AnswerCache; s.Hits != preHits {
		t.Errorf("post-swap query hit the cache: %+v", s)
	}
}

// TestAnswerCacheExplainReportsHitKind: /explainz surfaces the hit kind
// the serving path would have seen.
func TestAnswerCacheExplainReportsHitKind(t *testing.T) {
	on, _ := nurseEngines(t, "1")
	doc := genHospital(7)
	q := xpath.MustParse("//patient")
	ex, err := on.ExplainCtx(context.Background(), doc, q)
	if err != nil {
		t.Fatal(err)
	}
	if ex.AnswerCacheHit != "miss" {
		t.Errorf("first explain hit kind = %q, want miss", ex.AnswerCacheHit)
	}
	ex, err = on.ExplainCtx(context.Background(), doc, q)
	if err != nil {
		t.Fatal(err)
	}
	if ex.AnswerCacheHit != "equal" {
		t.Errorf("second explain hit kind = %q, want equal", ex.AnswerCacheHit)
	}
	// Cache-off engines report nothing.
	_, off := nurseEngines(t, "1")
	ex, err = off.ExplainCtx(context.Background(), doc, q)
	if err != nil {
		t.Fatal(err)
	}
	if ex.AnswerCacheHit != "" {
		t.Errorf("cache-off explain hit kind = %q, want empty", ex.AnswerCacheHit)
	}
}
