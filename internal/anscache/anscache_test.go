package anscache

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/dtds"
	"repro/internal/optimize"
	"repro/internal/xmlgen"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// neverProver refuses every proof, so only exact-key hits can happen.
type neverProver struct{}

func (neverProver) Equivalent(p1, p2 xpath.Path) bool { return false }

func hospitalDoc(t *testing.T) *xmltree.Document {
	t.Helper()
	return xmlgen.Generate(dtds.Hospital(), xmlgen.Config{Seed: 7, MinRepeat: 2, MaxRepeat: 4, MaxDepth: 12})
}

func lookupMust(t *testing.T, c *Cache, group string, p xpath.Path, prover Prover) ([]*xmltree.Node, Kind) {
	t.Helper()
	nodes, kind, err := c.Lookup(context.Background(), group, xpath.String(p), p, prover)
	if err != nil {
		t.Fatalf("Lookup(%s): %v", xpath.String(p), err)
	}
	return nodes, kind
}

func TestExactEqualHit(t *testing.T) {
	c := New(8)
	doc := hospitalDoc(t)
	p := xpath.MustParse("//patient")
	want := xpath.EvalDoc(p, doc)
	if len(want) == 0 {
		t.Fatalf("generated document has no patients")
	}
	if _, kind := lookupMust(t, c, "g1", p, neverProver{}); kind != KindMiss {
		t.Fatalf("empty cache returned %v", kind)
	}
	c.Put("g1", xpath.String(p), p, want)
	got, kind := lookupMust(t, c, "g1", p, neverProver{})
	if kind != KindEqual {
		t.Fatalf("kind = %v, want equal", kind)
	}
	if len(got) != len(want) {
		t.Fatalf("hit returned %d nodes, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("node %d differs", i)
		}
	}
	// A different group must not see the entry.
	if _, kind := lookupMust(t, c, "g2", p, neverProver{}); kind != KindMiss {
		t.Fatalf("cross-group lookup returned %v", kind)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 2 || s.ContainmentHits != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestEquivalenceEqualHit(t *testing.T) {
	c := New(8)
	doc := hospitalDoc(t)
	prover := optimize.New(dtds.Hospital())
	cached := xpath.MustParse("dept | //bill")
	c.Put("g", xpath.String(cached), cached, xpath.EvalDoc(cached, doc))
	// Same query written differently: commuted union.
	q := xpath.MustParse("//bill | dept")
	got, kind := lookupMust(t, c, "g", q, prover)
	if kind != KindEqual {
		t.Fatalf("kind = %v, want equal", kind)
	}
	want := xpath.EvalDoc(q, doc)
	if len(got) != len(want) {
		t.Fatalf("equivalence hit returned %d nodes, want %d", len(got), len(want))
	}
	if s := c.Stats(); s.Hits != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestContainmentHit(t *testing.T) {
	c := New(8)
	doc := hospitalDoc(t)
	prover := optimize.New(dtds.Hospital())
	base := xpath.MustParse("//patient")
	baseNodes := xpath.EvalDoc(base, doc)
	c.Put("g", xpath.String(base), base, baseNodes)

	q := xpath.Qualified{Sub: base, Cond: xpath.MustParseQual(".//trial")}
	got, kind := lookupMust(t, c, "g", q, prover)
	if kind != KindContainment {
		t.Fatalf("kind = %v, want containment", kind)
	}
	want := xpath.EvalDoc(q, doc)
	if len(want) == 0 || len(want) == len(baseNodes) {
		t.Fatalf("qualifier not discriminating on this document (%d of %d); pick another seed", len(want), len(baseNodes))
	}
	if len(got) != len(want) {
		t.Fatalf("containment hit returned %d nodes, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("node %d differs", i)
		}
	}
	s := c.Stats()
	if s.ContainmentHits != 1 || s.Hits != 0 {
		t.Errorf("stats = %+v", s)
	}
}

// TestNonContainedNeverHits is the soundness leg: a query that is not
// contained in any cached entry must miss, even when the cache is full
// of same-group entries.
func TestNonContainedNeverHits(t *testing.T) {
	c := New(16)
	doc := hospitalDoc(t)
	prover := optimize.New(dtds.Hospital())
	for _, q := range []string{"//patient", "//bill", "dept", "//staff/nurse"} {
		p := xpath.MustParse(q)
		c.Put("g", q, p, xpath.EvalDoc(p, doc))
	}
	// //name is contained in none of the cached queries (and contains
	// several of them, which must NOT produce a hit — direction matters).
	q := xpath.MustParse("//name")
	if _, kind := lookupMust(t, c, "g", q, prover); kind != KindMiss {
		t.Fatalf("non-contained query returned %v", kind)
	}
}

func TestEvictionAndBound(t *testing.T) {
	c := New(4)
	p := xpath.MustParse("dept")
	for i := 0; i < 20; i++ {
		c.Put("g", fmt.Sprintf("q%d", i), p, nil)
	}
	if n := c.Len(); n > 4+len(c.shards)-1 {
		t.Errorf("Len = %d exceeds bound", n)
	}
	if c.Stats().Evictions == 0 {
		t.Errorf("no evictions recorded")
	}
}

func TestPurge(t *testing.T) {
	c := New(8)
	p := xpath.MustParse("dept")
	c.Put("g", "dept", p, nil)
	c.Purge()
	if c.Len() != 0 {
		t.Errorf("Len after Purge = %d", c.Len())
	}
	if _, kind := lookupMust(t, c, "g", p, neverProver{}); kind != KindMiss {
		t.Errorf("purged entry still served: %v", kind)
	}
}

func TestOversizedResultNotCached(t *testing.T) {
	c := New(8)
	p := xpath.MustParse("dept")
	big := make([]*xmltree.Node, maxNodes+1)
	c.Put("g", "dept", p, big)
	if c.Len() != 0 {
		t.Errorf("oversized result was cached")
	}
}

// TestHitReturnsPrivateCopy: a caller mutating a hit's slice must not
// corrupt the cached entry.
func TestHitReturnsPrivateCopy(t *testing.T) {
	c := New(8)
	doc := hospitalDoc(t)
	p := xpath.MustParse("//patient")
	nodes := xpath.EvalDoc(p, doc)
	if len(nodes) < 2 {
		t.Fatalf("need at least 2 patients")
	}
	c.Put("g", xpath.String(p), p, nodes)
	got1, _ := lookupMust(t, c, "g", p, neverProver{})
	got1[0] = got1[1] // caller scribbles on its slice
	got2, _ := lookupMust(t, c, "g", p, neverProver{})
	if got2[0] != nodes[0] {
		t.Errorf("cached entry corrupted by caller mutation")
	}
}

func TestContainmentHonorsCancellation(t *testing.T) {
	c := New(8)
	doc := hospitalDoc(t)
	prover := optimize.New(dtds.Hospital())
	base := xpath.MustParse("//patient")
	c.Put("g", xpath.String(base), base, xpath.EvalDoc(base, doc))
	q := xpath.Qualified{Sub: base, Cond: xpath.MustParseQual(".//trial")}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.Lookup(ctx, "g", xpath.String(q), q, prover); err == nil {
		t.Errorf("cancelled containment lookup returned no error")
	}
}

func TestSplitQuals(t *testing.T) {
	base := xpath.MustParse("//patient")
	q1 := xpath.MustParseQual(".//trial")
	q2 := xpath.MustParseQual("name")
	p := xpath.Qualified{Sub: xpath.Qualified{Sub: base, Cond: q1}, Cond: q2}
	b, quals := splitQuals(p)
	if !xpath.Equal(b, base) {
		t.Errorf("base = %s", xpath.String(b))
	}
	if len(quals) != 2 || !xpath.QualEqual(quals[0], q1) || !xpath.QualEqual(quals[1], q2) {
		t.Errorf("quals = %v", quals)
	}
	if b, quals := splitQuals(base); !xpath.Equal(b, base) || quals != nil {
		t.Errorf("unqualified plan split wrong")
	}
}

// TestOrdinalEntryStorage: answers over a compacted document are stored
// as ordinal bitsets (not node slices), and a hit materializes exactly
// the original nodes.
func TestOrdinalEntryStorage(t *testing.T) {
	c := New(8)
	doc := hospitalDoc(t)
	if !doc.Compacted() {
		t.Fatal("generated document is not compacted")
	}
	p := xpath.MustParse("//patient")
	want := xpath.EvalDoc(p, doc)
	c.Put("g", xpath.String(p), p, want)

	sh := c.shardFor("g")
	sh.mu.Lock()
	var en *entry
	for _, el := range sh.items {
		en = el.Value.(*entry)
	}
	sh.mu.Unlock()
	if en == nil {
		t.Fatal("entry not stored")
	}
	if en.set == nil || en.nodes != nil {
		t.Fatalf("compacted-document answer stored as slice (set=%v nodes=%d)", en.set != nil, len(en.nodes))
	}
	got, kind := lookupMust(t, c, "g", p, neverProver{})
	if kind != KindEqual {
		t.Fatalf("kind = %v, want equal", kind)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("materialized node %d differs", i)
		}
	}
}

// TestOrdinalEntryStaleAfterRenumber: an ordinal entry is defined by the
// numbering that existed at Put time. Once the document renumbers (tree
// mutation, arena swap), the stored ordinals may denote different nodes,
// so the entry must stop answering — on the exact-key path AND on the
// prover-driven candidate scan. This is defense in depth behind the
// epoch-carrying group key, which test code here deliberately holds
// fixed.
func TestOrdinalEntryStaleAfterRenumber(t *testing.T) {
	c := New(8)
	doc := hospitalDoc(t)
	prover := optimize.New(dtds.Hospital())
	cached := xpath.MustParse("dept | //bill")
	c.Put("g", xpath.String(cached), cached, xpath.EvalDoc(cached, doc))
	if _, kind := lookupMust(t, c, "g", cached, neverProver{}); kind != KindEqual {
		t.Fatal("warm entry does not hit before the mutation")
	}

	// Mutate the tree and renumber: every stored ordinal is now suspect.
	doc.Root.Children[0].AppendChild(xmltree.NewElement("annex"))
	doc.Renumber()

	if _, kind := lookupMust(t, c, "g", cached, neverProver{}); kind != KindMiss {
		t.Fatal("stale ordinal entry served via the exact key")
	}
	// The commuted form would hit via the equivalence prover if the
	// candidate scan ignored freshness.
	commuted := xpath.MustParse("//bill | dept")
	if _, kind := lookupMust(t, c, "g", commuted, prover); kind != KindMiss {
		t.Fatal("stale ordinal entry served via the candidate scan")
	}

	// Re-populating against the new numbering works immediately.
	fresh := xpath.EvalDoc(cached, doc)
	c.Put("g", xpath.String(cached), cached, fresh)
	got, kind := lookupMust(t, c, "g", cached, neverProver{})
	if kind != KindEqual || len(got) != len(fresh) {
		t.Fatalf("re-put entry: kind=%v n=%d want %d", kind, len(got), len(fresh))
	}
}

// TestOrdinalEntryStaleAfterCompact: Compact replaces every node with
// its arena twin; the swap must invalidate ordinal entries just like
// any other renumbering (the old pointers are no longer in the
// document).
func TestOrdinalEntryStaleAfterCompact(t *testing.T) {
	c := New(8)
	doc := hospitalDoc(t)
	p := xpath.MustParse("//patient")
	c.Put("g", xpath.String(p), p, xpath.EvalDoc(p, doc))

	doc.Compact() // arena swap: new node identities, new generation

	if _, kind := lookupMust(t, c, "g", p, neverProver{}); kind != KindMiss {
		t.Fatal("ordinal entry survived an arena swap")
	}
}
