// Package anscache is the serving layer's semantic answer cache: a
// bounded, sharded cache from (engine epoch, document, optimized plan)
// to the plan's result node-set. It repurposes the Section 5 containment
// machinery (optimize.Contains/Equivalent over image graphs, Prop. 5.1)
// as a cache-admission proof, in the spirit of view-based query
// answering: a cached answer is served only when the incoming plan is
// provably the same query (equal hit) or provably a qualifier-filtered
// restriction of it (containment hit). The test is sound and one-sided,
// so a hit can never change a query's answer; an unprovable pair is
// simply a miss and evaluates normally.
//
// Two hit kinds:
//
//   - Equal hit: the incoming plan's text matches a cached entry, or a
//     bounded scan of same-group entries finds one the prover shows
//     mutually contained. The cached node-set is the answer.
//   - Containment hit: the incoming plan is base[q1]...[qk] — a chain of
//     trailing qualifiers over a base the prover shows equivalent to a
//     cached plan. Every node of the cached answer is exactly the base's
//     answer, so filtering it by the qualifiers (xpath.EvalQualCtx per
//     node) yields the incoming plan's answer without touching the rest
//     of the document.
//
// Staleness is handled by construction, not by invalidation protocol:
// the group key embeds the owning engine's epoch and the document's
// identity, so an epoch bump (document or policy swap) makes every old
// entry unreachable; Purge then reclaims the memory in one sweep.
package anscache

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/nodeset"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Prover is the containment oracle: Equivalent must be sound (true only
// when the two plans select the same nodes on every instance of the
// DTD). optimize.Optimizer satisfies it.
type Prover interface {
	Equivalent(p1, p2 xpath.Path) bool
}

// Kind classifies a Lookup outcome.
type Kind int

const (
	// KindMiss: no provably-safe entry; the caller must evaluate.
	KindMiss Kind = iota
	// KindEqual: a cached entry is provably the same query.
	KindEqual
	// KindContainment: a cached entry is provably the incoming plan minus
	// its trailing qualifiers; the answer was filtered from it.
	KindContainment
)

// String names the kind for /explainz and logs.
func (k Kind) String() string {
	switch k {
	case KindEqual:
		return "equal"
	case KindContainment:
		return "containment"
	default:
		return "miss"
	}
}

const (
	// defaultShards splits the cache to keep lock contention low; a
	// power of two so the group hash can be masked.
	defaultShards = 8
	// scanLimit bounds the same-group candidates a single Lookup may run
	// the prover against after an exact-key miss. Containment proofs are
	// pure CPU (no locks held), but each costs an image construction, so
	// the scan examines only the most recently used candidates.
	scanLimit = 8
	// maxNodes bounds the result size a single entry may pin. Larger
	// answers are not cached: they are cheap to recompute relative to
	// their memory cost, and one huge result must not evict a shard of
	// hot small ones.
	maxNodes = 1 << 14
)

// Cache is the bounded answer cache. All methods are safe for
// concurrent use. Entries within one group (one epoch + document) are
// kept on the same shard, so the candidate scan never crosses shards.
type Cache struct {
	shards []shard
	mask   uint32
	cap    int

	hits            atomic.Uint64
	containmentHits atomic.Uint64
	misses          atomic.Uint64
	evictions       atomic.Uint64
}

type shard struct {
	mu    sync.Mutex
	items map[string]*list.Element
	order *list.List // front = most recently used
	cap   int
}

// entry is one cached answer. Answers over compacted documents are
// stored as ordinal bitsets (set/doc/gen) — a 10k-node document's
// answer is ~1.3KB regardless of result size, hits materialize in
// O(words + result) with no per-entry pointer slice to copy, and
// containment filtering iterates ordinals directly. Answers whose
// nodes are not uniformly owned by one compacted document keep the
// pointer-slice form (nodes). Sets here are always unpooled clones:
// entries outlive evaluations, so they must never re-enter the
// evaluator's scratch pool.
type entry struct {
	key   string // group + "\x00" + text
	group string
	text  string
	plan  xpath.Path
	nodes []*xmltree.Node // slice form; nil when set != nil
	set   *nodeset.Set    // ordinal form over doc's arena
	doc   *xmltree.Document
	gen   uint64 // doc.Generation() at Put time
}

// fresh reports whether an ordinal entry's bitset still describes the
// document: a Renumber since Put (arena swap, mutation) may reassign
// ordinals, making the set meaningless. Slice entries are always
// fresh — their pointers stay valid, and the group key's epoch handles
// logical staleness. This is defense in depth behind the epoch: an
// epoch bump already abandons the group.
func (en *entry) fresh() bool {
	return en.set == nil || en.doc.Generation() == en.gen
}

// answer materializes the cached node-set as a fresh slice the caller
// owns. Callers must check fresh() first.
func (en *entry) answer() []*xmltree.Node {
	if en.set == nil {
		return copyNodes(en.nodes)
	}
	k := en.set.Count()
	if k == 0 {
		return nil
	}
	byOrd := en.doc.Nodes()
	out := make([]*xmltree.Node, 0, k)
	en.set.ForEach(func(ord int) { out = append(out, byOrd[ord]) })
	return out
}

// New returns a cache holding at most capacity entries. A non-positive
// capacity is treated as 1 so the cache is never unbounded by accident.
func New(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	n := defaultShards
	if capacity < 2*n {
		n = 1
	}
	c := &Cache{shards: make([]shard, n), mask: uint32(n - 1), cap: capacity}
	per := (capacity + n - 1) / n
	for i := range c.shards {
		c.shards[i].items = make(map[string]*list.Element)
		c.shards[i].order = list.New()
		c.shards[i].cap = per
	}
	return c
}

// Capacity returns the configured entry bound.
func (c *Cache) Capacity() int { return c.cap }

func (c *Cache) shardFor(group string) *shard {
	return &c.shards[fnv32(group)&c.mask]
}

// Lookup tries to answer plan from the cache. group must embed every
// bit of context the answer depends on beyond the plan itself — the
// owning engine's epoch and the document identity. text is the printed
// plan (the exact-match key). On a hit the returned slice is a fresh
// copy the caller owns. An error is only returned when qualifier
// re-evaluation on a containment hit fails (context cancellation);
// the entry is then left untouched and the caller should abort, not
// fall back to evaluation.
func (c *Cache) Lookup(ctx context.Context, group, text string, plan xpath.Path, prover Prover) ([]*xmltree.Node, Kind, error) {
	s := c.shardFor(group)
	key := group + "\x00" + text

	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		if en := el.Value.(*entry); en.fresh() {
			s.order.MoveToFront(el)
			nodes := en.answer()
			s.mu.Unlock()
			c.hits.Add(1)
			return nodes, KindEqual, nil
		}
		// A stale ordinal entry (document renumbered since Put) must not
		// be served; fall through to the miss path.
	}
	// Exact key missed; snapshot the most recently used same-group
	// candidates so the containment proofs run without the lock held.
	// Entries are immutable once inserted, so the refs stay valid.
	var cands []*entry
	for el := s.order.Front(); el != nil && len(cands) < scanLimit; el = el.Next() {
		if en := el.Value.(*entry); en.group == group && en.fresh() {
			cands = append(cands, en)
		}
	}
	s.mu.Unlock()

	base, quals := splitQuals(plan)
	for _, cand := range cands {
		if prover.Equivalent(plan, cand.plan) {
			c.hits.Add(1)
			return cand.answer(), KindEqual, nil
		}
		if len(quals) == 0 || !prover.Equivalent(base, cand.plan) {
			continue
		}
		// cand's answer is exactly base's answer; the incoming plan keeps
		// the nodes satisfying every trailing qualifier. A no-survivor
		// filter returns nil, matching what the evaluator reports for an
		// empty result. Ordinal entries filter straight off the bitset —
		// ascending ordinal iteration is document order, so no slice is
		// materialized for the candidates that do not survive.
		var out []*xmltree.Node
		var qerr error
		filter := func(n *xmltree.Node) bool {
			for _, q := range quals {
				ok, err := xpath.EvalQualCtx(ctx, q, n)
				if err != nil {
					qerr = err
					return false
				}
				if !ok {
					return true
				}
			}
			out = append(out, n)
			return true
		}
		if cand.set != nil {
			byOrd := cand.doc.Nodes()
			cand.set.ForEachUntil(func(ord int) bool { return filter(byOrd[ord]) })
		} else {
			for _, n := range cand.nodes {
				if !filter(n) {
					break
				}
			}
		}
		if qerr != nil {
			return nil, KindMiss, qerr
		}
		c.containmentHits.Add(1)
		return out, KindContainment, nil
	}
	c.misses.Add(1)
	return nil, KindMiss, nil
}

// Put caches an evaluated answer. Oversized results are dropped (see
// maxNodes). Answers over one compacted document are stored as an
// ordinal bitset stamped with the document's generation; anything else
// copies the nodes slice. Either way the entry shares the document's
// nodes, which the group key pins logically (an epoch bump abandons
// the group) — callers purge on epoch bumps to reclaim the memory too.
func (c *Cache) Put(group, text string, plan xpath.Path, nodes []*xmltree.Node) {
	if len(nodes) > maxNodes {
		return
	}
	s := c.shardFor(group)
	key := group + "\x00" + text
	en := &entry{key: key, group: group, text: text, plan: plan}
	if d := ordinalOwner(nodes); d != nil {
		set := nodeset.New(d.Size())
		for _, n := range nodes {
			set.Add(n.Ord())
		}
		en.set, en.doc, en.gen = set, d, d.Generation()
	} else {
		en.nodes = copyNodes(nodes)
	}
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		// Replace wholesale: entries are immutable, so concurrent Lookups
		// holding the old entry keep a consistent snapshot.
		el.Value = en
		s.order.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	s.items[key] = s.order.PushFront(en)
	var evicted int
	for s.order.Len() > s.cap {
		back := s.order.Back()
		s.order.Remove(back)
		delete(s.items, back.Value.(*entry).key)
		evicted++
	}
	s.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(uint64(evicted))
	}
}

// Len returns the current number of cached entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// Purge drops every entry. Counters are preserved. Called on epoch
// bumps, where every entry just became unreachable by key.
func (c *Cache) Purge() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.items = make(map[string]*list.Element)
		s.order.Init()
		s.mu.Unlock()
	}
}

// Stats is a point-in-time snapshot of the cache counters. The JSON
// field names are part of the /statsz wire format.
type Stats struct {
	Hits            uint64 `json:"hits"`
	ContainmentHits uint64 `json:"containment_hits"`
	Misses          uint64 `json:"misses"`
	Evictions       uint64 `json:"evictions"`
	Entries         int    `json:"entries"`
	Capacity        int    `json:"capacity"`
}

// Add accumulates o into s — the rollup used when one figure must
// cover several caches (policy.ClassStats sums its bindings' caches so
// /statsz can split answer-cache outcomes per class). Entries and
// Capacity add too: the sum is the class's total cached answers and
// total room.
func (s *Stats) Add(o Stats) {
	s.Hits += o.Hits
	s.ContainmentHits += o.ContainmentHits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Entries += o.Entries
	s.Capacity += o.Capacity
}

// Stats snapshots the counters and current size.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:            c.hits.Load(),
		ContainmentHits: c.containmentHits.Load(),
		Misses:          c.misses.Load(),
		Evictions:       c.evictions.Load(),
		Entries:         c.Len(),
		Capacity:        c.cap,
	}
}

// splitQuals peels the qualifiers a plan applies at its final nodes:
// the conditions of top-level Qualified wrappers, and — recursively —
// of a Qualified in a Seq's last step, since Seq{L, Qualified{s, q}}
// selects exactly the nodes of Seq{L, s} satisfying q. A view query
// q[qual] rewrites to its base's plan with the rewritten qualifier on
// the last step, so this is what makes containment hits fire on real
// plans. Plans whose final step carries no qualifier return (plan,
// nil).
func splitQuals(p xpath.Path) (xpath.Path, []xpath.Qual) {
	switch p := p.(type) {
	case xpath.Qualified:
		base, quals := splitQuals(p.Sub)
		return base, append(quals, p.Cond)
	case xpath.Seq:
		base, quals := splitQuals(p.Right)
		if len(quals) == 0 {
			return p, nil
		}
		return xpath.Seq{Left: p.Left, Right: base}, quals
	}
	return p, nil
}

// ordinalOwner returns the compacted document owning every node, or
// nil when the answer cannot take the ordinal form (empty, detached or
// stale nodes, uncompacted or mixed documents).
func ordinalOwner(nodes []*xmltree.Node) *xmltree.Document {
	if len(nodes) == 0 {
		return nil
	}
	d := nodes[0].Owner()
	if d == nil || !d.Compacted() {
		return nil
	}
	for _, n := range nodes[1:] {
		if n.Owner() != d {
			return nil
		}
	}
	return d
}

// copyNodes snapshots a result slice so cache-internal storage and
// caller-returned slices never alias. Empty results stay nil, matching
// what the evaluator reports.
func copyNodes(nodes []*xmltree.Node) []*xmltree.Node {
	if len(nodes) == 0 {
		return nil
	}
	return append([]*xmltree.Node(nil), nodes...)
}

// fnv32 is the FNV-1a hash, inlined to avoid a hash.Hash allocation on
// every cache operation.
func fnv32(s string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}
