package rewrite

import (
	"fmt"
	"testing"

	"repro/internal/access"
	"repro/internal/dtd"
	"repro/internal/dtds"
	"repro/internal/secview"
	"repro/internal/xmlgen"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

func TestUnfoldShape(t *testing.T) {
	v, err := secview.Derive(dtds.Fig7Spec())
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	unfolded, orig, sigma := unfold(v, 3)
	if unfolded.IsRecursive() {
		t.Fatalf("unfolded DTD still recursive")
	}
	if unfolded.Root() != "a" {
		t.Errorf("root = %q", unfolded.Root())
	}
	// Levels 0..3 of a exist; the frontier level has no element children.
	for _, typ := range []string{"a", "a@1", "a@2", "a@3"} {
		if !unfolded.Has(typ) {
			t.Errorf("missing level copy %s", typ)
		}
	}
	if unfolded.Has("a@4") {
		t.Errorf("unfolding went past the height")
	}
	frontier := unfolded.MustProduction("a@3")
	if frontier.Kind != dtd.Empty {
		t.Errorf("frontier production = %v, want EMPTY", frontier)
	}
	// orig maps copies back to view labels.
	if orig["a@2"] != "a" || orig["a"] != "a" {
		t.Errorf("orig mapping wrong: %v", orig)
	}
	// σ edges carry over per level.
	if _, ok := sigma[[2]string{"a", "a@1"}]; !ok {
		t.Errorf("missing σ(a, a@1)")
	}
	if _, ok := sigma[[2]string{"a@1", "a@2"}]; !ok {
		t.Errorf("missing σ(a@1, a@2)")
	}
}

func TestUnfoldHeightZero(t *testing.T) {
	v, err := secview.Derive(dtds.Fig7Spec())
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	r, err := ForViewWithHeight(v, 0)
	if err != nil {
		t.Fatalf("ForViewWithHeight(0): %v", err)
	}
	// A height-0 document is a lone root; //b rewrites to ∅... except b is
	// a direct child in the view, whose unfolding at height 0 has no
	// children at all.
	pt, err := r.Rewrite(xpath.MustParse("//b"))
	if err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	if !xpath.IsEmpty(pt) {
		t.Errorf("//b at height 0 = %s", xpath.String(pt))
	}
}

// TestRecursiveEquivalenceGenerated checks p(T_v) = p_t(T) on generated
// recursive documents of varying depth.
func TestRecursiveEquivalenceGenerated(t *testing.T) {
	v, err := secview.Derive(dtds.Fig7Spec())
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	queries := []string{"//b", "//a/b", "a/b", "a/a/b", "//a[b]", "//a[not(a)]/b", "*", "//*"}
	for seed := int64(0); seed < 6; seed++ {
		doc := xmlgen.Generate(dtds.Fig7(), xmlgen.Config{Seed: seed, MinRepeat: 0, MaxRepeat: 2, MaxDepth: 7})
		m, err := secview.Materialize(v, doc)
		if err != nil {
			t.Fatalf("seed %d: Materialize: %v", seed, err)
		}
		r, err := ForViewWithHeight(v, doc.Height())
		if err != nil {
			t.Fatalf("seed %d: rewriter: %v", seed, err)
		}
		for _, q := range queries {
			p := xpath.MustParse(q)
			pt, err := r.Rewrite(p)
			if err != nil {
				t.Fatalf("seed %d: Rewrite(%q): %v", seed, q, err)
			}
			want := make(map[*xmltree.Node]bool)
			for _, n := range xpath.EvalDoc(p, m.View) {
				want[m.DocOf[n]] = true
			}
			got := xpath.EvalDoc(pt, doc)
			if len(got) != len(want) {
				t.Errorf("seed %d: %q: view %d docnodes, rewritten %d", seed, q, len(want), len(got))
				continue
			}
			for _, n := range got {
				if !want[n] {
					t.Errorf("seed %d: %q: extra node %s", seed, q, n.Path())
				}
			}
		}
	}
}

// TestAdexEquivalenceGenerated pins the rewriting correctness on the
// Section 6 scenario with generated data.
func TestAdexEquivalenceGenerated(t *testing.T) {
	v, err := secview.Derive(dtds.AdexSpec())
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	r, err := ForView(v)
	if err != nil {
		t.Fatalf("ForView: %v", err)
	}
	doc := dtds.GenerateAdex(21, 6)
	m, err := secview.Materialize(v, doc)
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	queries := []string{
		"//buyer-info/contact-info",
		"//house/r-e.warranty | //apartment/r-e.warranty",
		"//buyer-info[//company-id and //contact-info]",
		"//real-estate[house/r-e.asking-price and apartment/r-e.unit-type]",
		"buyer-info",
		"real-estate/*",
		"//location/city",
		"//house[//garage]",
		"//billing-info", // hidden
	}
	for _, q := range queries {
		p := xpath.MustParse(q)
		pt, err := r.Rewrite(p)
		if err != nil {
			t.Fatalf("Rewrite(%q): %v", q, err)
		}
		want := make(map[*xmltree.Node]bool)
		for _, n := range xpath.EvalDoc(p, m.View) {
			want[m.DocOf[n]] = true
		}
		got := xpath.EvalDoc(pt, doc)
		if len(got) != len(want) {
			t.Errorf("%q: view %d docnodes, rewritten %d (%s)", q, len(want), len(got), xpath.String(pt))
			continue
		}
		for _, n := range got {
			if !want[n] {
				t.Errorf("%q: extra node %s", q, n.Path())
			}
		}
	}
}

// TestRecrwSharing: recrw over a diamond-heavy DAG must stay linear in
// memory thanks to shared sub-expressions; a panic or timeout here would
// indicate exponential expansion.
func TestRecrwSharing(t *testing.T) {
	// Build a chain of diamonds: d0 -> (l1|r1) -> d1 -> (l2|r2) -> d2 ...
	// The number of label paths doubles per diamond (2^20 total) but the
	// shared representation stays small.
	const diamonds = 20
	d := dtd.New("d0")
	for i := 0; i < diamonds; i++ {
		l := namef("l%d", i+1)
		rr := namef("r%d", i+1)
		next := namef("d%d", i+1)
		d.SetProduction(namef("d%d", i), dtd.ChoiceContent(l, rr))
		d.SetProduction(l, dtd.SeqContent(next))
		d.SetProduction(rr, dtd.SeqContent(next))
	}
	d.SetProduction(namef("d%d", diamonds), dtd.TextContent())
	if err := d.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	v, err := secview.Derive(access.NewSpec(d))
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	r, err := ForView(v)
	if err != nil {
		t.Fatalf("ForView: %v", err)
	}
	pt, err := r.Rewrite(xpath.MustParse("//" + namef("d%d", diamonds)))
	if err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	if xpath.IsEmpty(pt) {
		t.Fatalf("deep target not reached")
	}
}

func namef(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}

// TestForumRecursiveRewriting exercises Section 4.2 on the realistic
// recursive forum scenario: guests query nested threads, moderation
// notes never appear, and rewriting is equivalent to querying the view.
func TestForumRecursiveRewriting(t *testing.T) {
	v, err := secview.Derive(dtds.ForumGuestSpec())
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	doc := dtds.GenerateForum(4, 2, 7)
	m, err := secview.Materialize(v, doc)
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	r, err := ForViewWithHeight(v, doc.Height())
	if err != nil {
		t.Fatalf("rewriter: %v", err)
	}
	for _, q := range []string{
		"//post/body",
		"//thread/replies/thread/post/author",
		"//modnote",
		"//thread[not(replies/thread)]",
		"thread/post",
	} {
		p := xpath.MustParse(q)
		pt, err := r.Rewrite(p)
		if err != nil {
			t.Fatalf("Rewrite(%q): %v", q, err)
		}
		want := make(map[*xmltree.Node]bool)
		for _, n := range xpath.EvalDoc(p, m.View) {
			want[m.DocOf[n]] = true
		}
		got := xpath.EvalDoc(pt, doc)
		if len(got) != len(want) {
			t.Errorf("%q: view %d docnodes, rewritten %d", q, len(want), len(got))
			continue
		}
		for _, n := range got {
			if !want[n] {
				t.Errorf("%q: extra node %s", q, n.Path())
			}
			if n.Label == "modnote" {
				t.Errorf("%q: moderation note leaked", q)
			}
		}
	}
}
