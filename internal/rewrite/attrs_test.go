package rewrite

import (
	"testing"

	"repro/internal/access"
	"repro/internal/dtd"
	"repro/internal/secview"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// attrFixture mirrors the secview attribute fixture: patient attributes
// id (required), ssn (denied), insurer.
func attrFixture(t *testing.T) (*secview.View, *xmltree.Document) {
	t.Helper()
	d := dtd.MustParse(`
root clinic
clinic -> patient*
patient -> name, record
name -> #PCDATA
record -> #PCDATA
attlist patient id!, ssn, insurer
attlist record code
`)
	s := access.MustParseAnnotations(d, "ann(patient, @ssn) = N\n")
	v, err := secview.Derive(s)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	a := xmltree.A
	doc := xmltree.NewDocument(xmltree.E("clinic",
		a(xmltree.E("patient", xmltree.T("name", "Alice"), a(xmltree.T("record", "flu"), "code", "J11")),
			"id", "p1", "ssn", "123-45-6789", "insurer", "Acme"),
		a(xmltree.E("patient", xmltree.T("name", "Bob"), xmltree.T("record", "ok")),
			"id", "p2"),
	))
	if err := xmltree.Validate(doc, d); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	return v, doc
}

func TestRewriteAttrQualifiers(t *testing.T) {
	v, doc := attrFixture(t)
	r, err := ForView(v)
	if err != nil {
		t.Fatalf("ForView: %v", err)
	}
	// Visible attribute: qualifier passes through and selects correctly.
	pt, err := r.Rewrite(xpath.MustParse(`patient[@id = "p2"]/name`))
	if err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	res := xpath.EvalDoc(pt, doc)
	if len(res) != 1 || res[0].Text() != "Bob" {
		t.Errorf("visible attr qualifier: %d results", len(res))
	}
	// Presence test.
	pt, err = r.Rewrite(xpath.MustParse(`patient[@insurer]/name`))
	if err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	res = xpath.EvalDoc(pt, doc)
	if len(res) != 1 || res[0].Text() != "Alice" {
		t.Errorf("presence qualifier: %v", len(res))
	}
	// Hidden attribute: probing it yields nothing, even though the
	// document node carries it.
	pt, err = r.Rewrite(xpath.MustParse(`patient[@ssn]/name`))
	if err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	if !xpath.IsEmpty(pt) {
		t.Errorf("hidden attr qualifier = %s", xpath.String(pt))
	}
	// Negated hidden attribute: ¬false = true, everyone matches — users
	// cannot distinguish "hidden" from "absent".
	pt, err = r.Rewrite(xpath.MustParse(`patient[not(@ssn)]/name`))
	if err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	res = xpath.EvalDoc(pt, doc)
	if len(res) != 2 {
		t.Errorf("negated hidden attr: %d results, want 2", len(res))
	}
}

// TestRewriteAttrEquivalence pins p(T_v) = p_t(T) for attribute
// qualifiers.
func TestRewriteAttrEquivalence(t *testing.T) {
	v, doc := attrFixture(t)
	for _, q := range []string{
		`patient[@id = "p1"]`,
		"patient[@insurer]/record",
		"patient[@ssn]",
		"patient[not(@ssn)]",
		`//record[@code = "J11"]`,
	} {
		checkEquivalent(t, v, doc, q)
	}
}
