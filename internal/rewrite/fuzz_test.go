package rewrite

// FuzzRewriteRecursive feeds arbitrary parsed queries to both rewriting
// treatments for recursive views — the height-free Rec-automaton path
// and the Section 4.2 unfolding oracle — and fails on a panic in either
// or on any divergence: acceptance (one path rejecting a query the
// other rewrites) or answers (different node sets over a conforming
// document). It is the open-ended complement of the bounded
// differential suite in recdiff_test.go. Run with
// go test -fuzz=FuzzRewriteRecursive$ ./internal/rewrite.

import (
	"math/rand"
	"testing"

	"repro/internal/dtds"
	"repro/internal/secview"
	"repro/internal/xmlgen"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// fuzzFixtures returns two recursive views with a conforming document
// each: the paper's Fig. 7 DTD and one generator-drawn recursive DTD
// under a randomized policy (fixed seed, so the corpus stays stable).
// Documents stay shallow enough that the unfold oracle is affordable
// per fuzz execution.
func fuzzFixtures(f *testing.F) []struct {
	view *secview.View
	doc  *xmltree.Document
} {
	fig7, err := secview.Derive(dtds.Fig7Spec())
	if err != nil {
		f.Fatalf("Derive(fig7): %v", err)
	}
	fig7Doc := xmlgen.Generate(dtds.Fig7(), xmlgen.Config{
		Seed: 7, MinRepeat: 1, MaxRepeat: 2, MaxDepth: 10,
	})

	var rv *secview.View
	var rdoc *xmltree.Document
	for seed := int64(7); ; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := dtds.RandomRecursiveSpec(rng, dtds.RecursiveGen{Depth: 3, Branching: 2, Density: 0.5})
		v, err := secview.Derive(s)
		if err != nil || !v.IsRecursive() {
			continue
		}
		rv = v
		rdoc = xmlgen.Generate(s.D, xmlgen.Config{
			Seed: seed, MinRepeat: 1, MaxRepeat: 2, MaxDepth: 8, MaxNodes: 400,
		})
		break
	}
	return []struct {
		view *secview.View
		doc  *xmltree.Document
	}{{fig7, fig7Doc}, {rv, rdoc}}
}

func FuzzRewriteRecursive(f *testing.F) {
	fixtures := fuzzFixtures(f)

	// Seed corpus: hand-picked shapes covering every operator, plus a
	// sample from the same random-query generator the differential
	// suite draws from, over the union of both views' vocabularies.
	for _, seed := range []string{
		"//b", "//a/b", "a//a//b", ".", "*", "//a[b]", "//a[not(a)]/b",
		"//text()", "b | //a/b", "//n1", "n1/n2[v2]", "//v0 | n1//v1",
		"(a | .)//b[not(c)]", "∅",
	} {
		f.Add(seed)
	}
	var labels []string
	for _, fx := range fixtures {
		labels = append(labels, fx.view.DTD.Types()...)
	}
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 20; i++ {
		f.Add(xpath.String(randViewPath(rng, labels, 3)))
	}

	f.Fuzz(func(t *testing.T, src string) {
		p, err := xpath.Parse(src)
		if err != nil {
			return // parser rejection is fine; rewriter panics are not
		}
		if len(xpath.Vars(p)) > 0 || xpath.Size(p) > 60 || countDescends(p) > 2 {
			return // unbound parameters, or oracle-intractable shapes
		}
		for _, fx := range fixtures {
			hf, err := ForView(fx.view)
			if err != nil {
				t.Fatalf("ForView: %v", err)
			}
			oracle, err := ForViewWithHeight(fx.view, fx.doc.Height())
			if err != nil {
				t.Fatalf("ForViewWithHeight(%d): %v", fx.doc.Height(), err)
			}
			ptHF, errHF := hf.Rewrite(p)
			ptOr, errOr := oracle.Rewrite(p)
			if (errHF == nil) != (errOr == nil) {
				t.Fatalf("acceptance diverges for %q: height-free %v, unfold %v", src, errHF, errOr)
			}
			if errHF != nil {
				return // both rejected without panicking
			}
			want, errW := xpath.EvalDocErr(ptOr, fx.doc)
			got, errG := xpath.EvalDocErr(ptHF, fx.doc)
			if (errW == nil) != (errG == nil) {
				t.Fatalf("evaluation errors diverge for %q: unfold %v, height-free %v", src, errW, errG)
			}
			if errW != nil {
				return
			}
			w := make(map[*xmltree.Node]bool, len(want))
			for _, n := range want {
				w[n] = true
			}
			g := make(map[*xmltree.Node]bool, len(got))
			for _, n := range got {
				g[n] = true
			}
			if len(w) != len(g) {
				t.Fatalf("answers diverge for %q: unfold %d distinct nodes, height-free %d", src, len(w), len(g))
			}
			for n := range w {
				if !g[n] {
					t.Fatalf("answers diverge for %q: height-free missed %s", src, n.Path())
				}
			}
		}
	})
}
