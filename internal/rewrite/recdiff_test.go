package rewrite

// The height-free differential harness: the Rec-automaton rewriting
// (ForView on a recursive view) must answer exactly like the Section 4.2
// unfolding oracle (ForViewWithHeight at the concrete document height)
// on every document — node for node, before and after DTD optimization.
// The suite sweeps ~300 randomized (recursive DTD, policy, query)
// triples at varying document depths plus the repo's fixed recursive
// fixtures, and pins the plan-size property the whole change exists for:
// unfold plans grow with height, the height-free plan does not.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dtds"
	"repro/internal/optimize"
	"repro/internal/secview"
	"repro/internal/xmlgen"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Oracle cost budgets. Unfolding multiplies plan size by roughly the
// document height per // in the query, so a deep document and a
// descend-heavy query together make the Section 4.2 oracle's plan — and
// especially the DTD optimizer pass over it — explode combinatorially
// (tens of millions of plan nodes at height ~20). That blowup is the
// very pathology height-free rewriting removes; the harness skips the
// oracle where the oracle itself is intractable. Every query shape still
// gets full oracle coverage on the shallow documents in the sweep.
const (
	oraclePlanBudget = 2_000_000 // estimated unfold plan nodes before skipping the triple
	oracleOptBudget  = 200_000   // actual unfold plan nodes before skipping its optimizer pass
)

// diffOne rewrites p through both paths, optimizes both against the
// document DTD, evaluates the plans over doc, and reports the first
// divergence. Reports false when the unfold oracle was skipped as over
// budget for this (query, document) pair.
func diffOne(t *testing.T, v *secview.View, doc *xmltree.Document, p xpath.Path, tag string) bool {
	t.Helper()
	hf, err := ForView(v)
	if err != nil {
		t.Fatalf("%s: ForView: %v", tag, err)
	}
	oracle, err := ForViewWithHeight(v, doc.Height())
	if err != nil {
		t.Fatalf("%s: ForViewWithHeight(%d): %v", tag, doc.Height(), err)
	}
	ptHF, err := hf.Rewrite(p)
	if err != nil {
		t.Fatalf("%s: height-free Rewrite(%s): %v", tag, xpath.String(p), err)
	}
	est := xpath.Size(ptHF)
	for i := 0; i < countDescends(p); i++ {
		est *= doc.Height()
		if est > oraclePlanBudget {
			return false
		}
	}
	ptOr, err := oracle.Rewrite(p)
	if err != nil {
		t.Fatalf("%s: unfold Rewrite(%s): %v", tag, xpath.String(p), err)
	}
	want := xpath.EvalDoc(ptOr, doc)
	got := xpath.EvalDoc(ptHF, doc)
	assertSameNodes(t, want, got, fmt.Sprintf("%s: raw rewrite of %s", tag, xpath.String(p)))

	opt := optimize.New(v.Doc)
	gotOpt := xpath.EvalDoc(opt.Optimize(ptHF), doc)
	assertSameNodes(t, want, gotOpt, fmt.Sprintf("%s: optimized height-free rewrite of %s", tag, xpath.String(p)))
	if xpath.Size(ptOr) <= oracleOptBudget {
		wantOpt := xpath.EvalDoc(opt.Optimize(ptOr), doc)
		assertSameNodes(t, want, wantOpt, fmt.Sprintf("%s: optimized unfold rewrite of %s", tag, xpath.String(p)))
	}
	return true
}

// countDescends counts // steps anywhere in p, qualifiers included —
// the exponent of the unfold oracle's plan-size growth in document
// height.
func countDescends(p xpath.Path) int {
	n := 0
	var walk func(xpath.Path)
	var walkQ func(xpath.Qual)
	walk = func(p xpath.Path) {
		switch p := p.(type) {
		case xpath.Descend:
			n++
			walk(p.Sub)
		case xpath.Seq:
			walk(p.Left)
			walk(p.Right)
		case xpath.Union:
			walk(p.Left)
			walk(p.Right)
		case xpath.Qualified:
			walk(p.Sub)
			walkQ(p.Cond)
		}
	}
	walkQ = func(q xpath.Qual) {
		switch q := q.(type) {
		case xpath.QPath:
			walk(q.Path)
		case xpath.QEq:
			walk(q.Path)
		case xpath.QAnd:
			walkQ(q.Left)
			walkQ(q.Right)
		case xpath.QOr:
			walkQ(q.Left)
			walkQ(q.Right)
		case xpath.QNot:
			walkQ(q.Sub)
		}
	}
	walk(p)
	return n
}

func assertSameNodes(t *testing.T, want, got []*xmltree.Node, tag string) {
	t.Helper()
	w := make(map[*xmltree.Node]bool, len(want))
	for _, n := range want {
		w[n] = true
	}
	g := make(map[*xmltree.Node]bool, len(got))
	for _, n := range got {
		g[n] = true
	}
	if len(w) != len(g) {
		t.Errorf("%s: oracle selected %d distinct nodes, height-free %d", tag, len(w), len(g))
		return
	}
	for n := range w {
		if !g[n] {
			t.Errorf("%s: height-free missed %s", tag, n.Path())
			return
		}
	}
}

// TestHeightFreeDifferentialFixtures sweeps the repo's fixed recursive
// views (Fig. 7 and the forum schema) across document depths with a
// hand-picked query set, plus the non-recursive hospital/Adex fixtures
// (where height-free and unfold share the flat path by construction —
// kept in the sweep so a regression that accidentally recursivizes them
// is caught here too).
func TestHeightFreeDifferentialFixtures(t *testing.T) {
	type fixture struct {
		name    string
		view    *secview.View
		docs    []*xmltree.Document
		queries []string
	}
	var fixtures []fixture

	fig7, err := secview.Derive(dtds.Fig7Spec())
	if err != nil {
		t.Fatalf("Derive(fig7): %v", err)
	}
	var fig7Docs []*xmltree.Document
	for _, depth := range []int{4, 8, 16, 32} {
		fig7Docs = append(fig7Docs, xmlgen.Generate(dtds.Fig7(), xmlgen.Config{
			Seed: int64(depth), MinRepeat: 1, MaxRepeat: 2, MaxDepth: depth,
		}))
	}
	fixtures = append(fixtures, fixture{
		name: "fig7", view: fig7, docs: fig7Docs,
		queries: []string{"//b", "//a/b", "a//a//b", ".", "//a[b]", "//a[not(a)]/b", "//text()", "b | //a/b"},
	})

	forum, err := secview.Derive(dtds.ForumGuestSpec())
	if err != nil {
		t.Fatalf("Derive(forum): %v", err)
	}
	var forumDocs []*xmltree.Document
	for _, depth := range []int{6, 12, 24} {
		forumDocs = append(forumDocs, dtds.GenerateForum(int64(depth), 2, depth))
	}
	fixtures = append(fixtures, fixture{
		name: "forum", view: forum, docs: forumDocs,
		queries: []string{"//post/author", "//thread//body", "//replies/thread/post", "//thread[post/author]", "//post[not(body)]"},
	})

	nurseSpec, err := dtds.NurseSpec().Bind(map[string]string{"wardNo": "1"})
	if err != nil {
		t.Fatalf("Bind(nurse): %v", err)
	}
	hospital, err := secview.Derive(nurseSpec)
	if err != nil {
		t.Fatalf("Derive(hospital): %v", err)
	}
	fixtures = append(fixtures, fixture{
		name: "hospital", view: hospital,
		docs:    []*xmltree.Document{dtds.GenerateHospital(3, 3)},
		queries: []string{"//patient/name", "//bill", "dept//patient[wardNo]"},
	})

	adex, err := secview.Derive(dtds.AdexSpec())
	if err != nil {
		t.Fatalf("Derive(adex): %v", err)
	}
	adexFix := fixture{
		name: "adex", view: adex,
		docs: []*xmltree.Document{dtds.GenerateAdex(3, 4)},
	}
	for _, q := range dtds.AdexQueries {
		adexFix.queries = append(adexFix.queries, q)
	}
	fixtures = append(fixtures, adexFix)

	for _, fx := range fixtures {
		for di, doc := range fx.docs {
			for _, q := range fx.queries {
				tag := fmt.Sprintf("%s/doc%d(h=%d)/%s", fx.name, di, doc.Height(), q)
				if !diffOne(t, fx.view, doc, xpath.MustParse(q), tag) {
					t.Errorf("%s: fixture query skipped as over the oracle budget", tag)
				}
			}
		}
	}
}

// TestHeightFreeDifferentialRandom is the randomized harness: ~300
// (recursive DTD, policy, query) triples, each evaluated on a document
// whose depth cycles from shallow to deep. Queries on shallow documents
// draw from the full fragment; on deep documents they are descend-free,
// because unfolding a // multiplies the oracle's plan by a factor
// polynomial in height and types — minutes of work per query at height
// 20 — while descend-free rewriting stays near-linear. Deep documents
// with // queries are covered by the fixed fixtures (small type sets
// keep their oracle tractable) and, without an oracle, by the fuzz
// target. Policies that fail derivation are skipped (the generator
// draws unconstrained annotation sets); minimum counts of tested
// triples, recursive views, and deep documents guard against the sweep
// silently degenerating.
func TestHeightFreeDifferentialRandom(t *testing.T) {
	const triples = 300
	depths := []int{3, 4, 5, 8, 16, 24}
	recursiveTested, tested, deepTested, skippedQueries := 0, 0, 0, 0
	for seed := int64(0); seed < triples; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfg := dtds.RecursiveGen{
			Depth:     3 + rng.Intn(3),
			Branching: 1 + rng.Intn(2),
			Density:   0.3 + rng.Float64()*0.5,
		}
		spec := dtds.RandomRecursiveSpec(rng, cfg)
		v, err := secview.Derive(spec)
		if err != nil {
			continue
		}
		// MaxNodes keeps supercritical DTDs (several starred recursive
		// positions per production) from exploding: depth, not bulk, is
		// what the harness is after.
		depth := depths[seed%int64(len(depths))]
		doc := xmlgen.Generate(spec.D, xmlgen.Config{
			Seed: seed, MinRepeat: 1, MaxRepeat: 2,
			MaxDepth: depth, MaxNodes: 2000,
		})
		descends := depth <= 5
		labels := append(v.DTD.Types(), "nonexistent")
		ran := 0
		for i := 0; i < 3; i++ {
			p := randDiffPath(rng, labels, 3, descends)
			if diffOne(t, v, doc, p, fmt.Sprintf("seed%d/q%d(h=%d)", seed, i, doc.Height())) {
				ran++
			} else {
				skippedQueries++
			}
		}
		if ran == 0 {
			continue
		}
		tested++
		if v.IsRecursive() {
			recursiveTested++
		}
		if doc.Height() >= 16 {
			deepTested++
		}
	}
	t.Logf("tested %d triples (%d recursive views, %d documents of height ≥ 16), %d over-budget queries skipped",
		tested, recursiveTested, deepTested, skippedQueries)
	if deepTested < 30 {
		t.Errorf("only %d random triples ran on documents of height ≥ 16; depth sweep degenerated", deepTested)
	}
	if tested < 150 {
		t.Errorf("only %d/%d random triples tested; generator or derivation degenerated", tested, triples)
	}
	if recursiveTested < 60 {
		t.Errorf("only %d random triples derived recursive views; harness lost its subject", recursiveTested)
	}
}

// randDiffPath draws a random query for the differential sweep:
// randViewPath's full fragment when descends are affordable, and a
// descend-free variant (child steps, unions, qualifiers) otherwise.
func randDiffPath(r *rand.Rand, labels []string, depth int, descends bool) xpath.Path {
	if descends {
		return randViewPath(r, labels, depth)
	}
	if depth <= 0 {
		switch r.Intn(6) {
		case 0:
			return xpath.Self{}
		case 1:
			return xpath.Wildcard{}
		default:
			return xpath.Label{Name: labels[r.Intn(len(labels))]}
		}
	}
	switch r.Intn(7) {
	case 0, 1, 2:
		return xpath.Seq{Left: randDiffPath(r, labels, depth-1, false), Right: randDiffPath(r, labels, depth-1, false)}
	case 3:
		return xpath.Union{Left: randDiffPath(r, labels, depth-1, false), Right: randDiffPath(r, labels, depth-1, false)}
	case 4:
		var q xpath.Qual = xpath.QPath{Path: randDiffPath(r, labels, depth-1, false)}
		if r.Intn(3) == 0 {
			q = xpath.QNot{Sub: q}
		}
		return xpath.Qualified{Sub: randDiffPath(r, labels, depth-1, false), Cond: q}
	default:
		return randDiffPath(r, labels, 0, false)
	}
}

// TestHeightFreePlanSizeFlat pins the acceptance criterion: across
// document heights 4 → 32 the height-free plan for a recursive view is
// one constant-size plan, while the unfold oracle's plans grow strictly
// with height.
func TestHeightFreePlanSizeFlat(t *testing.T) {
	v, err := secview.Derive(dtds.Fig7Spec())
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	p := xpath.MustParse("//b")
	hf, err := ForView(v)
	if err != nil {
		t.Fatalf("ForView: %v", err)
	}
	ptHF, err := hf.Rewrite(p)
	if err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	hfSize := xpath.Size(ptHF)

	prev := 0
	for _, h := range []int{4, 8, 16, 32} {
		oracle, err := ForViewWithHeight(v, h)
		if err != nil {
			t.Fatalf("ForViewWithHeight(%d): %v", h, err)
		}
		pt, err := oracle.Rewrite(p)
		if err != nil {
			t.Fatalf("unfold Rewrite at %d: %v", h, err)
		}
		size := xpath.Size(pt)
		if size <= prev {
			t.Errorf("unfold plan size at height %d = %d, not larger than previous %d", h, size, prev)
		}
		prev = size
	}
	if hfSize >= prev {
		t.Errorf("height-free plan size %d not below unfold size %d at height 32", hfSize, prev)
	}
	t.Logf("height-free plan size %d; unfold at height 32: %d", hfSize, prev)
}
