// Package rewrite implements the paper's Algorithm rewrite (Section 4,
// Fig. 6): given a security view V = (D_v, σ) and an XPath query p of the
// fragment C posed over the view, it computes an equivalent query p_t
// over the original document, so that p over the materialized view T_v
// and p_t over the document T return the same answer — completely
// bypassing view materialization.
//
// The algorithm is a dynamic program over (sub-query, view-DTD node)
// pairs: rw(p', A) is the local translation of p' at view type A and
// reach(p', A) the set of view types reachable from A via p'. The fixed
// query '//' is handled by the precomputation recProc, which derives for
// every pair (A, B) an XPath query recrw(A, B) capturing all label paths
// from A to B in the view DTD with σ spliced in; symbolic sharing of
// sub-expressions keeps recrw(A, B) linear in |D_v| even when the DAG has
// exponentially many paths.
//
// Recursive view DTDs admit two treatments. Section 4.2 unfolds the view
// DTD to the height of the concrete document, yielding a DAG the document
// is guaranteed to conform to — but plan size and identity then depend on
// document height (ForViewWithHeight keeps this path as a differential
// oracle). The default is height-free: following Mahfoud–Imine's
// standard-XPath-based technique, recursive '//' regions rewrite to a
// single Rec automaton node over the view's σ transition system
// (see recproc.go), so one plan per query serves documents of any height.
package rewrite

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/dtd"
	"repro/internal/obs"
	"repro/internal/secview"
	"repro/internal/xpath"
)

// Rewriter holds the per-view precomputation shared by all queries: the
// effective (possibly unfolded) DAG view DTD and the recProc tables. A
// Rewriter is safe for concurrent use; the DP memo is shared across
// queries under a mutex.
type Rewriter struct {
	mu   sync.Mutex
	view *secview.View
	dv   *dtd.DTD // effective DAG view DTD (unfolded copy when recursive)

	// orig maps effective type names to original view labels (identity for
	// non-recursive views; strips the @level suffix after unfolding).
	orig map[string]string
	// sigma maps effective production edges to σ queries over the document.
	sigma map[[2]string]xpath.Path

	// recProc results, computed lazily per source node.
	recReach map[string][]string
	recPaths map[string]map[string]xpath.Path

	// recGraph is the view's σ transition system, built lazily the first
	// time recProc meets a cyclic region (height-free mode only) and
	// shared by pointer across all Rec nodes the rewriter emits.
	recGraph *xpath.RecGraph

	memo map[memoKey]result

	// unfolded/height record whether this rewriter's view DTD was
	// unfolded (recursive view) and to what document height — pure
	// observability; the algorithm never reads them back.
	unfolded bool
	height   int
}

type memoKey struct {
	p xpath.Path
	a string
}

// result is one DP cell: for a (sub-query, view type) pair it keeps the
// local translation *per reach target*. Keeping translations per target —
// rather than the single union rw(p', A) of Fig. 6 — is what makes step
// composition sound: in p1/p2, the continuation rewritten for target v is
// composed only onto the paths that lead to v, so a qualifier that is,
// say, false at v1 but true at v2 cannot leak across (see DESIGN.md,
// "Mixed-target step composition"). The union of the per-target
// translations is exactly the paper's rw(p', A).
type result struct {
	byTarget map[string]xpath.Path
	reach    []string // sorted set of effective view types
}

// total returns rw(p', A): the union of the per-target translations, in
// deterministic (sorted target) order.
func (r result) total() xpath.Path {
	out := xpath.Path(xpath.Empty{})
	for _, v := range r.reach {
		out = xpath.MakeUnion(out, r.byTarget[v])
	}
	return out
}

func (r result) empty() bool { return len(r.byTarget) == 0 }

func newResult() result {
	return result{byTarget: make(map[string]xpath.Path)}
}

// add unions a translation into one target's cell.
func (r *result) add(target string, p xpath.Path) {
	if xpath.IsEmpty(p) {
		return
	}
	if prev, ok := r.byTarget[target]; ok {
		r.byTarget[target] = xpath.MakeUnion(prev, p)
		return
	}
	r.byTarget[target] = p
	r.reach = append(r.reach, target)
}

// ForView builds a rewriter for a security view. Recursive view DTDs are
// handled height-free: recursive '//' regions rewrite to Rec automaton
// nodes over the view's σ transition system, so the same plan is valid
// for documents of any height and never needs unfolding. Use
// ForViewWithHeight for the Section 4.2 unfolding path (kept as the
// differential oracle).
func ForView(v *secview.View) (*Rewriter, error) {
	return newRewriter(v, v.DTD, identityOrig(v.DTD)), nil
}

// ForViewWithHeight builds a rewriter that handles recursive view DTDs by
// unfolding them to the given document height (the number of edges on the
// longest root-to-leaf path of the concrete document, Section 4.2).
// Non-recursive views are used as-is regardless of height.
func ForViewWithHeight(v *secview.View, height int) (*Rewriter, error) {
	if !v.IsRecursive() {
		return newRewriter(v, v.DTD, identityOrig(v.DTD)), nil
	}
	if height < 0 {
		return nil, fmt.Errorf("rewrite: negative document height %d", height)
	}
	unfolded, orig, sigma := unfold(v, height)
	r := newRewriter(v, unfolded, orig)
	r.sigma = sigma
	r.unfolded = true
	r.height = height
	return r, nil
}

// Unfolded reports whether the view DTD was unfolded (recursive view);
// Height is the document height it was unfolded to (0 otherwise).
func (r *Rewriter) Unfolded() bool { return r.unfolded }

// Height returns the unfolding height; see Unfolded.
func (r *Rewriter) Height() int { return r.height }

// Mode names the rewriting strategy: "flat" for a non-recursive view,
// "height-free" for a recursive view rewritten via Rec automata, and
// "unfold" for the Section 4.2 oracle path.
func (r *Rewriter) Mode() string {
	switch {
	case r.unfolded:
		return "unfold"
	case r.view.IsRecursive():
		return "height-free"
	default:
		return "flat"
	}
}

// MemoLen returns the number of DP cells currently memoized — a proxy
// for the rewriter's working-set size, exposed for observability.
func (r *Rewriter) MemoLen() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.memo)
}

func newRewriter(v *secview.View, dv *dtd.DTD, orig map[string]string) *Rewriter {
	r := &Rewriter{
		view:     v,
		dv:       dv,
		orig:     orig,
		sigma:    make(map[[2]string]xpath.Path),
		recReach: make(map[string][]string),
		recPaths: make(map[string]map[string]xpath.Path),
		memo:     make(map[memoKey]result),
	}
	for _, a := range dv.Types() {
		c := dv.MustProduction(a)
		if c.Kind == dtd.Text {
			if p, ok := v.Sigma(orig[a], dtd.TextLabel); ok {
				r.sigma[[2]string{a, dtd.TextLabel}] = p
			}
			continue
		}
		for _, it := range c.Items {
			if p, ok := v.Sigma(orig[a], orig[it.Name]); ok {
				r.sigma[[2]string{a, it.Name}] = p
			}
		}
	}
	return r
}

func identityOrig(d *dtd.DTD) map[string]string {
	m := make(map[string]string, d.Len())
	for _, t := range d.Types() {
		m[t] = t
	}
	return m
}

// Rewrite translates a view query into an equivalent document query
// p_t = rw(p, r) and simplifies it. A query that can select nothing on
// any view instance rewrites to ∅.
func (r *Rewriter) Rewrite(p xpath.Path) (xpath.Path, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	res := r.rw(p, r.dv.Root())
	return xpath.Simplify(res.total()), nil
}

// RewriteCtx is Rewrite with observability: when the context carries a
// trace span, the rewrite is recorded as a child span carrying the
// input and output query sizes, the memo working set, and (for unfolded
// recursive views) the unfolding height. Without a span it is exactly
// Rewrite plus one nil check.
func (r *Rewriter) RewriteCtx(ctx context.Context, p xpath.Path) (xpath.Path, error) {
	_, sp := obs.StartSpan(ctx, "rewrite")
	pt, err := r.Rewrite(p)
	if sp != nil {
		sp.SetAttr("input_size", xpath.Size(p))
		if err == nil {
			sp.SetAttr("output_size", xpath.Size(pt))
		}
		if r.unfolded {
			sp.SetAttr("unfold_height", r.height)
		}
		sp.SetAttr("memo_cells", r.MemoLen())
		sp.Finish()
	}
	return pt, err
}

// RewriteString parses, rewrites, and prints in one step.
func (r *Rewriter) RewriteString(query string) (string, error) {
	p, err := xpath.Parse(query)
	if err != nil {
		return "", err
	}
	pt, err := r.Rewrite(p)
	if err != nil {
		return "", err
	}
	return xpath.String(pt), nil
}

// attrVisible reports whether a view type exposes the attribute: the
// type is not a dummy (a dummy's document node is hidden, attributes
// included) and the view DTD declares the attribute (derive drops denied
// ones during attlist projection).
func (r *Rewriter) attrVisible(a, name string) bool {
	orig := r.orig[a]
	if r.view.IsDummy(orig) {
		return false
	}
	_, ok := r.view.DTD.Attr(orig, name)
	return ok
}

// textType is the pseudo view type occupied after a text() step; it has
// no children and no σ edges.
const textType = "#text"

// rw computes the local translation rw(p', A) and reach(p', A); results
// are memoized on (sub-query structure, node), which is exactly the
// paper's DP table.
func (r *Rewriter) rw(p xpath.Path, a string) result {
	key := memoKey{p: p, a: a}
	if res, ok := r.memo[key]; ok {
		return res
	}
	res := r.compute(p, a)
	sort.Strings(res.reach)
	r.memo[key] = res
	return res
}

func (r *Rewriter) compute(p xpath.Path, a string) result {
	res := newResult()
	switch p := p.(type) {
	case xpath.Empty:
		return res
	case xpath.Self: // case 1
		res.add(a, xpath.Self{})
		return res
	case xpath.Label: // case 2
		if p.Name == xpath.TextName {
			if sig, ok := r.sigma[[2]string{a, dtd.TextLabel}]; ok {
				res.add(textType, sig)
			}
			return res
		}
		for _, child := range r.children(a) {
			if r.orig[child] == p.Name {
				res.add(child, r.sigmaOf(a, child))
			}
		}
		return res
	case xpath.Wildcard: // case 3
		for _, child := range r.children(a) {
			res.add(child, r.sigmaOf(a, child))
		}
		return res
	case xpath.Seq: // case 4, per target
		r1 := r.rw(p.Left, a)
		for _, v := range r1.reach {
			r2 := r.rw(p.Right, v)
			for _, w := range r2.reach {
				res.add(w, xpath.MakeSeq(r1.byTarget[v], r2.byTarget[w]))
			}
		}
		return res
	case xpath.Descend: // case 5, per target
		for _, b := range r.reachDescend(a) {
			rb := r.rw(p.Sub, b)
			for _, w := range rb.reach {
				res.add(w, xpath.MakeSeq(r.recrw(a, b), rb.byTarget[w]))
			}
		}
		return res
	case xpath.Union: // case 6
		for _, sub := range []xpath.Path{p.Left, p.Right} {
			rs := r.rw(sub, a)
			for _, w := range rs.reach {
				res.add(w, rs.byTarget[w])
			}
		}
		return res
	case xpath.Qualified:
		if _, ok := p.Sub.(xpath.Self); ok { // case 7: ε[q]
			q := r.rwQual(p.Cond, a)
			if _, isFalse := q.(xpath.QFalse); isFalse {
				return res
			}
			res.add(a, xpath.MakeQualified(xpath.Self{}, q))
			return res
		}
		// p1[q] ≡ p1/ε[q]: case 4 then gives each reach target its own
		// locally rewritten qualifier.
		return r.rw(xpath.Seq{Left: p.Sub, Right: xpath.Qualified{Sub: xpath.Self{}, Cond: p.Cond}}, a)
	default:
		return res
	}
}

// rwQual rewrites a qualifier at view type A (Fig. 6 cases 8-12).
func (r *Rewriter) rwQual(q xpath.Qual, a string) xpath.Qual {
	switch q := q.(type) {
	case xpath.QTrue, xpath.QFalse:
		return q
	case xpath.QPath: // case 8
		res := r.rw(q.Path, a)
		if res.empty() {
			return xpath.QFalse{}
		}
		return xpath.QPath{Path: res.total()}
	case xpath.QEq: // case 9
		res := r.rw(q.Path, a)
		if res.empty() {
			return xpath.QFalse{}
		}
		return xpath.QEq{Path: res.total(), Value: q.Value, Var: q.Var}
	case xpath.QAnd: // case 10
		return xpath.MakeAnd(r.rwQual(q.Left, a), r.rwQual(q.Right, a))
	case xpath.QOr: // case 11
		return xpath.MakeOr(r.rwQual(q.Left, a), r.rwQual(q.Right, a))
	case xpath.QNot: // case 12
		return xpath.MakeNot(r.rwQual(q.Sub, a))
	case xpath.QAttrEq: // attribute extension: same attribute on the
		// corresponding document node when the view exposes it
		if r.attrVisible(a, q.Name) {
			return q
		}
		return xpath.QFalse{}
	case xpath.QAttrHas:
		if r.attrVisible(a, q.Name) {
			return q
		}
		return xpath.QFalse{}
	default:
		return xpath.QFalse{}
	}
}

// children returns the distinct child types of an effective view type.
func (r *Rewriter) children(a string) []string {
	if a == textType {
		return nil
	}
	return r.dv.Children(a)
}

// sigmaOf returns σ for an effective production edge; derived views
// define σ on every edge, so a missing entry only arises for hand-built
// views, where the child label itself is the natural default.
func (r *Rewriter) sigmaOf(parent, child string) xpath.Path {
	if p, ok := r.sigma[[2]string{parent, child}]; ok {
		return p
	}
	return xpath.L(r.orig[child])
}
