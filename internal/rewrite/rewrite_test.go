package rewrite

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/access"
	"repro/internal/dtd"
	"repro/internal/secview"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

const hospitalDTD = `
root hospital
hospital -> dept*
dept -> clinicalTrial, patientInfo, staffInfo
clinicalTrial -> patientInfo
patientInfo -> patient*
patient -> name, wardNo, treatment
treatment -> trial + regular
trial -> bill
regular -> bill, medication
staffInfo -> staff*
staff -> doctor + nurse
doctor -> name
nurse -> name
name -> #PCDATA
wardNo -> #PCDATA
bill -> #PCDATA
medication -> #PCDATA
`

const nurseSpec = `
ann(hospital, dept) = [*/patient/wardNo = $wardNo]
ann(dept, clinicalTrial) = N
ann(clinicalTrial, patientInfo) = Y
ann(treatment, trial) = N
ann(treatment, regular) = N
ann(trial, bill) = Y
ann(regular, bill) = Y
ann(regular, medication) = Y
`

func nurseView(t *testing.T) *secview.View {
	t.Helper()
	d := dtd.MustParse(hospitalDTD)
	s := access.MustParseAnnotations(d, nurseSpec)
	bound, err := s.Bind(map[string]string{"wardNo": "6"})
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	v, err := secview.Derive(bound)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	return v
}

func hospitalInstance() *xmltree.Document {
	e, tx := xmltree.E, xmltree.T
	return xmltree.NewDocument(e("hospital",
		e("dept", // ward 6
			e("clinicalTrial",
				e("patientInfo",
					e("patient", tx("name", "Carol"), tx("wardNo", "6"),
						e("treatment", e("trial", tx("bill", "900")))))),
			e("patientInfo",
				e("patient", tx("name", "Alice"), tx("wardNo", "6"),
					e("treatment", e("regular", tx("bill", "100"), tx("medication", "aspirin"))))),
			e("staffInfo", e("staff", e("nurse", tx("name", "Nina")))),
		),
		e("dept", // ward 7
			e("clinicalTrial", e("patientInfo")),
			e("patientInfo",
				e("patient", tx("name", "Bob"), tx("wardNo", "7"),
					e("treatment", e("regular", tx("bill", "70"), tx("medication", "ibuprofen"))))),
			e("staffInfo", e("staff", e("doctor", tx("name", "Dan")))),
		),
	))
}

// checkEquivalent verifies the defining property of Rewrite: p over the
// materialized view equals p_t over the document (node-for-node through
// the materialization correspondence).
func checkEquivalent(t *testing.T, v *secview.View, doc *xmltree.Document, query string) {
	t.Helper()
	m, err := secview.Materialize(v, doc)
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	r, err := ForViewWithHeight(v, doc.Height())
	if err != nil {
		t.Fatalf("rewriter: %v", err)
	}
	p := xpath.MustParse(query)
	pt, err := r.Rewrite(p)
	if err != nil {
		t.Fatalf("Rewrite(%q): %v", query, err)
	}
	viewRes := xpath.EvalDoc(p, m.View)
	docRes := xpath.EvalDoc(pt, doc)
	// Map view results to their document counterparts.
	want := make(map[*xmltree.Node]bool, len(viewRes))
	for _, n := range viewRes {
		want[m.DocOf[n]] = true
	}
	got := make(map[*xmltree.Node]bool, len(docRes))
	for _, n := range docRes {
		got[n] = true
	}
	if len(want) != len(got) {
		t.Errorf("%q: view returned %d distinct doc nodes, rewritten %q returned %d",
			query, len(want), xpath.String(pt), len(got))
		return
	}
	for n := range want {
		if !got[n] {
			t.Errorf("%q: rewritten query missed %s", query, n.Path())
		}
	}
}

// TestRewriteExample41 pins the paper's Example 4.1: //patient//bill over
// the nurse view rewrites to a query over the document that finds exactly
// the accessible bills.
func TestRewriteExample41(t *testing.T) {
	v := nurseView(t)
	r, err := ForView(v)
	if err != nil {
		t.Fatalf("ForView: %v", err)
	}
	pt, err := r.Rewrite(xpath.MustParse("//patient//bill"))
	if err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	doc := hospitalInstance()
	res := xpath.EvalDoc(pt, doc)
	// Accessible bills: Carol's 900 and Alice's 100 (ward 6 only).
	if len(res) != 2 {
		t.Fatalf("rewritten //patient//bill returned %d nodes (%s)", len(res), xpath.String(pt))
	}
	if res[0].Text() != "900" || res[1].Text() != "100" {
		t.Errorf("bills = %q, %q", res[0].Text(), res[1].Text())
	}
}

func TestRewriteEquivalenceSuite(t *testing.T) {
	v := nurseView(t)
	doc := hospitalInstance()
	queries := []string{
		".",
		"dept",
		"dept/patientInfo",
		"dept/patientInfo/patient/name",
		"//patient",
		"//patient/name",
		"//patient//bill",
		"//bill",
		"//treatment/*",
		"//treatment/*/bill",
		"dept/*",
		"//patient[name = \"Carol\"]",
		"//patient[treatment/dummy2]/name",
		"//patient[not(treatment/dummy2)]/name",
		"//name | //bill",
		"//patient[wardNo = \"6\" and treatment//medication]",
		"dept/staffInfo/staff/*/name",
		"//dummy1",
		"//dummy2/medication",
		"//patient[treatment/dummy1 or treatment/dummy2]",
		"nonexistent",
		"//patient/clinicalTrial",
		"∅",
		"//name/text()",
		"dept[staffInfo]",
	}
	for _, q := range queries {
		checkEquivalent(t, v, doc, q)
	}
}

// TestRewriteBlocksInferenceAttack reproduces Example 1.1: over the
// security view the two queries of the inference attack return the same
// answer, so the attack is defeated.
func TestRewriteBlocksInferenceAttack(t *testing.T) {
	v := nurseView(t)
	doc := hospitalInstance()
	r, err := ForView(v)
	if err != nil {
		t.Fatalf("ForView: %v", err)
	}
	run := func(q string) []string {
		pt, err := r.Rewrite(xpath.MustParse(q))
		if err != nil {
			t.Fatalf("Rewrite(%q): %v", q, err)
		}
		var out []string
		for _, n := range xpath.EvalDoc(pt, doc) {
			out = append(out, n.Text())
		}
		return out
	}
	p1 := run("//dept//patientInfo/patient/name")
	p2 := run("//dept/patientInfo/patient/name")
	if len(p1) != len(p2) {
		t.Fatalf("inference attack still works: p1=%v p2=%v", p1, p2)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Errorf("p1[%d]=%q p2[%d]=%q", i, p1[i], i, p2[i])
		}
	}
	// Both must see Carol and Alice (all ward-6 patients), hiding whether
	// either is in a clinical trial.
	if len(p1) != 2 {
		t.Errorf("p1 = %v, want Carol and Alice", p1)
	}
}

func TestRewriteHiddenLabelYieldsEmpty(t *testing.T) {
	v := nurseView(t)
	r, err := ForView(v)
	if err != nil {
		t.Fatalf("ForView: %v", err)
	}
	for _, q := range []string{"//clinicalTrial", "//trial", "dept/clinicalTrial", "//regular"} {
		pt, err := r.Rewrite(xpath.MustParse(q))
		if err != nil {
			t.Fatalf("Rewrite(%q): %v", q, err)
		}
		if !xpath.IsEmpty(pt) {
			t.Errorf("Rewrite(%q) = %s, want ∅", q, xpath.String(pt))
		}
	}
}

func TestRewriteQualifierCases(t *testing.T) {
	v := nurseView(t)
	r, err := ForView(v)
	if err != nil {
		t.Fatalf("ForView: %v", err)
	}
	// A qualifier over a hidden label is false; conjunction with it
	// collapses the branch, negation flips it to true.
	pt, err := r.Rewrite(xpath.MustParse("//patient[trial]"))
	if err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	if !xpath.IsEmpty(pt) {
		t.Errorf("//patient[trial] = %s, want ∅", xpath.String(pt))
	}
	pt, err = r.Rewrite(xpath.MustParse("//patient[not(trial)]/name"))
	if err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	if xpath.IsEmpty(pt) {
		t.Errorf("//patient[not(trial)]/name rewrote to ∅")
	}
	res := xpath.EvalDoc(pt, hospitalInstance())
	if len(res) != 2 {
		t.Errorf("//patient[not(trial)]/name returned %d nodes, want 2", len(res))
	}
}

func TestRewriteUndeclaredAttrQualifierIsEmpty(t *testing.T) {
	// Attribute qualifiers over attributes the view does not expose (here:
	// not even declared in the DTD) rewrite to ∅ — a user can never probe
	// hidden attributes.
	v := nurseView(t)
	r, err := ForView(v)
	if err != nil {
		t.Fatalf("ForView: %v", err)
	}
	pt, err := r.Rewrite(xpath.MustParse(`//patient[@accessibility = "1"]`))
	if err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	if !xpath.IsEmpty(pt) {
		t.Errorf("undeclared attribute qualifier = %s, want ∅", xpath.String(pt))
	}
}

func TestForViewRecursiveIsHeightFree(t *testing.T) {
	d := dtd.MustParse("root a\na -> b, c\nb -> #PCDATA\nc -> a*\n")
	s := access.MustParseAnnotations(d, "ann(a, c) = N\n")
	v, err := secview.Derive(s)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	r, err := ForView(v)
	if err != nil {
		t.Fatalf("ForView on recursive view: %v", err)
	}
	if got := r.Mode(); got != "height-free" {
		t.Errorf("Mode() = %q, want height-free", got)
	}
	if r.Unfolded() {
		t.Errorf("height-free rewriter reports Unfolded")
	}
	if _, err := ForViewWithHeight(v, -1); err == nil {
		t.Errorf("negative height accepted")
	}
}

// recursiveViewFixture builds the Fig. 7(b)-style recursive view: the
// document DTD a -> b, c; c -> a* with c inaccessible and a, b exposed.
func recursiveViewFixture(t *testing.T) (*secview.View, *xmltree.Document) {
	t.Helper()
	d := dtd.MustParse(`
root a
a -> b, c
b -> #PCDATA
c -> a*
`)
	s := access.MustParseAnnotations(d, `
ann(a, c) = N
ann(c, a) = Y
`)
	v, err := secview.Derive(s)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	e, tx := xmltree.E, xmltree.T
	doc := xmltree.NewDocument(e("a", tx("b", "1"),
		e("c",
			e("a", tx("b", "2"), e("c", e("a", tx("b", "3"), e("c")))),
			e("a", tx("b", "4"), e("c")))))
	return v, doc
}

// TestRewriteRecursiveUnfolded exercises Section 4.2: //b over the
// recursive view (a -> b, a*) rewrites through unfolding and finds every
// accessible b, skipping the hidden c spine.
func TestRewriteRecursiveUnfolded(t *testing.T) {
	v, doc := recursiveViewFixture(t)
	if !v.IsRecursive() {
		t.Fatalf("fixture view is not recursive")
	}
	r, err := ForViewWithHeight(v, doc.Height())
	if err != nil {
		t.Fatalf("ForViewWithHeight: %v", err)
	}
	pt, err := r.Rewrite(xpath.MustParse("//b"))
	if err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	res := xpath.EvalDoc(pt, doc)
	if len(res) != 4 {
		t.Fatalf("//b returned %d nodes (%s), want 4", len(res), xpath.String(pt))
	}
	for i, want := range []string{"1", "2", "3", "4"} {
		if res[i].Text() != want {
			t.Errorf("b[%d] = %q, want %q", i, res[i].Text(), want)
		}
	}
	// c never appears even via wildcard or descendant steps.
	for _, q := range []string{"//c", "//*[not(b)]"} {
		pt, err := r.Rewrite(xpath.MustParse(q))
		if err != nil {
			t.Fatalf("Rewrite(%q): %v", q, err)
		}
		for _, n := range xpath.EvalDoc(pt, doc) {
			if n.Label == "c" {
				t.Errorf("%q leaked a c node", q)
			}
		}
	}
}

func TestRewriteRecursiveEquivalence(t *testing.T) {
	v, doc := recursiveViewFixture(t)
	for _, q := range []string{".", "b", "a", "a/b", "//b", "//a", "//a[b = \"3\"]", "a/a/b", "//a[not(a)]"} {
		checkEquivalent(t, v, doc, q)
	}
}

// TestRewriteEquivalenceProperty: random queries over view labels are
// equivalent under rewriting.
func TestRewriteEquivalenceProperty(t *testing.T) {
	v := nurseView(t)
	doc := hospitalInstance()
	m, err := secview.Materialize(v, doc)
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	r, err := ForView(v)
	if err != nil {
		t.Fatalf("ForView: %v", err)
	}
	labels := append(v.DTD.Types(), "nonexistent")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randViewPath(rng, labels, 3)
		pt, err := r.Rewrite(p)
		if err != nil {
			t.Logf("seed %d: Rewrite(%s): %v", seed, xpath.String(p), err)
			return false
		}
		viewRes := xpath.EvalDoc(p, m.View)
		docRes := xpath.EvalDoc(pt, doc)
		want := make(map[*xmltree.Node]bool)
		for _, n := range viewRes {
			want[m.DocOf[n]] = true
		}
		if len(docRes) != len(want) {
			t.Logf("seed %d: %s -> %s: view %d docnodes, doc %d", seed, xpath.String(p), xpath.String(pt), len(want), len(docRes))
			return false
		}
		for _, n := range docRes {
			if !want[n] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

func randViewPath(r *rand.Rand, labels []string, depth int) xpath.Path {
	if depth <= 0 {
		switch r.Intn(6) {
		case 0:
			return xpath.Self{}
		case 1:
			return xpath.Wildcard{}
		default:
			return xpath.Label{Name: labels[r.Intn(len(labels))]}
		}
	}
	switch r.Intn(7) {
	case 0, 1:
		return xpath.Seq{Left: randViewPath(r, labels, depth-1), Right: randViewPath(r, labels, depth-1)}
	case 2:
		return xpath.Descend{Sub: randViewPath(r, labels, depth-1)}
	case 3:
		return xpath.Union{Left: randViewPath(r, labels, depth-1), Right: randViewPath(r, labels, depth-1)}
	case 4:
		var q xpath.Qual = xpath.QPath{Path: randViewPath(r, labels, depth-1)}
		if r.Intn(3) == 0 {
			q = xpath.QNot{Sub: q}
		}
		return xpath.Qualified{Sub: randViewPath(r, labels, depth-1), Cond: q}
	default:
		return randViewPath(r, labels, 0)
	}
}

func TestRewriteString(t *testing.T) {
	v := nurseView(t)
	r, err := ForView(v)
	if err != nil {
		t.Fatalf("ForView: %v", err)
	}
	out, err := r.RewriteString("//patient//bill")
	if err != nil {
		t.Fatalf("RewriteString: %v", err)
	}
	if out == "" || out == "∅" {
		t.Errorf("RewriteString = %q", out)
	}
	if _, err := r.RewriteString("///"); err == nil {
		t.Errorf("bad query accepted")
	}
}
