package rewrite

import (
	"sort"

	"repro/internal/dtd"
	"repro/internal/xpath"
)

// reachDescend returns reach(//, A): the effective view types reachable
// from A via descendant-or-self, A itself included (so //p at A also
// covers p at A). Results are cached per source node; with the recrw
// table this is the paper's procedure recProc (Fig. 6).
func (r *Rewriter) reachDescend(a string) []string {
	if reach, ok := r.recReach[a]; ok {
		return reach
	}
	r.runRecProc(a)
	return r.recReach[a]
}

// recrw returns recrw(A, B): a query over the document capturing all
// label paths from A to B in the effective view DTD, with σ spliced in.
// recrw(A, A) is ε.
func (r *Rewriter) recrw(a, b string) xpath.Path {
	if _, ok := r.recPaths[a]; !ok {
		r.runRecProc(a)
	}
	if p, ok := r.recPaths[a][b]; ok {
		return p
	}
	return xpath.Empty{}
}

// runRecProc computes reach(//, a) and recrw(a, ·) for one source node.
//
// The paper's recProc uses symbolic variables Z_x so that each
// intermediate path segment is included exactly once, then substitutes in
// topological order; the equivalent here is to compute
//
//	recrw(a, y) = ⋃ over DAG edges (x, y) of recrw(a, x)/σ(x, y)
//
// in topological order while sharing the already-built recrw(a, x)
// sub-expressions (Go interface values alias the same underlying nodes),
// which keeps the construction linear in |D_v| per target.
//
// When the view DTD is recursive (height-free mode) and the sub-graph
// below a contains a cycle, the label-path enumeration would be infinite;
// recrw(a, b) is then the single automaton node Rec{G, a, b} over the
// view's shared σ transition system, which is height-independent by
// construction. Sources whose reachable region is acyclic keep the DAG
// expansion even in height-free mode — it exposes more structure to the
// optimizer.
func (r *Rewriter) runRecProc(a string) {
	// Collect the sub-graph reachable from a.
	reachable := map[string]bool{a: true}
	var stack []string
	stack = append(stack, a)
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, y := range r.children(x) {
			if !reachable[y] {
				reachable[y] = true
				stack = append(stack, y)
			}
		}
	}

	if r.cyclicBelow(a, reachable) {
		r.runRecProcCyclic(a, reachable)
		return
	}

	// Topological order of the sub-DAG (acyclic region: either a
	// non-recursive/unfolded view DTD, or a recursion-free corner of a
	// recursive one).
	state := make(map[string]int)
	var order []string
	var visit func(string)
	visit = func(x string) {
		if state[x] != 0 {
			return
		}
		state[x] = 1
		for _, y := range r.children(x) {
			visit(y)
		}
		state[x] = 2
		order = append(order, x)
	}
	visit(a)
	// Reverse post-order = parents before children.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}

	paths := map[string]xpath.Path{a: xpath.Self{}}
	for _, x := range order {
		px, ok := paths[x]
		if !ok {
			continue
		}
		for _, y := range r.children(x) {
			step := xpath.MakeSeq(px, r.sigmaOf(x, y))
			if prev, seen := paths[y]; seen {
				paths[y] = xpath.MakeUnion(prev, step)
			} else {
				paths[y] = step
			}
		}
	}

	// Text nodes are in the descendant-or-self set too: give them a single
	// pseudo target so queries like //. and //text() cover them.
	var textPaths xpath.Path = xpath.Empty{}
	for b, pb := range paths {
		if sig, ok := r.sigma[[2]string{b, dtd.TextLabel}]; ok {
			textPaths = xpath.MakeUnion(textPaths, xpath.MakeSeq(pb, sig))
		}
	}
	if !xpath.IsEmpty(textPaths) {
		paths[textType] = textPaths
	}

	reach := make([]string, 0, len(paths))
	for b := range paths {
		reach = append(reach, b)
	}
	sort.Strings(reach)
	r.recReach[a] = reach
	r.recPaths[a] = paths
}

// runRecProcCyclic is the height-free branch of recProc: every reachable
// target b gets the automaton query Rec{G, a, b}, one AST node over the
// shared σ transition system. Rec includes the length-0 chain, so
// recrw(a, a) still covers ε exactly like the DAG branch's Self{}.
func (r *Rewriter) runRecProcCyclic(a string, reachable map[string]bool) {
	g := r.graph()
	paths := make(map[string]xpath.Path, len(reachable)+1)
	text := false
	for b := range reachable {
		paths[b] = xpath.Rec{G: g, Start: a, Accept: b, ResultLabel: r.resultLabel(b)}
		if _, ok := r.sigma[[2]string{b, dtd.TextLabel}]; ok {
			text = true
		}
	}
	if text {
		paths[textType] = xpath.Rec{G: g, Start: a, Accept: textType, ResultLabel: xpath.TextName}
	}

	reach := make([]string, 0, len(paths))
	for b := range paths {
		reach = append(reach, b)
	}
	sort.Strings(reach)
	r.recReach[a] = reach
	r.recPaths[a] = paths
}

// cyclicBelow reports whether the sub-graph induced by the reachable set
// contains a cycle.
func (r *Rewriter) cyclicBelow(a string, reachable map[string]bool) bool {
	state := make(map[string]int)
	var visit func(string) bool
	visit = func(x string) bool {
		switch state[x] {
		case 1:
			return true
		case 2:
			return false
		}
		state[x] = 1
		for _, y := range r.children(x) {
			if reachable[y] && visit(y) {
				return true
			}
		}
		state[x] = 2
		return false
	}
	return visit(a)
}

// graph lazily builds the view's shared σ transition system: one state
// per view type plus the "#text" pseudo-state, one edge per production
// edge carrying its σ query. Built once per Rewriter (callers hold r.mu)
// and shared by pointer across every Rec node, so all Rec values of one
// plan stay comparable and the per-plan weight is a single graph.
func (r *Rewriter) graph() *xpath.RecGraph {
	if r.recGraph != nil {
		return r.recGraph
	}
	edges := make(map[string][]xpath.RecEdge, r.dv.Len())
	for _, x := range r.dv.Types() {
		for _, y := range r.children(x) {
			edges[x] = append(edges[x], xpath.RecEdge{To: y, Sig: r.sigmaOf(x, y)})
		}
		if sig, ok := r.sigma[[2]string{x, dtd.TextLabel}]; ok {
			edges[x] = append(edges[x], xpath.RecEdge{To: textType, Sig: sig})
		}
	}
	r.recGraph = xpath.NewRecGraph(edges)
	return r.recGraph
}

// resultLabel is the document label carried by every node a σ chain
// ending in view type b selects: the hidden document type when b is a
// dummy (the dummy stands in for it), otherwise b's original label.
func (r *Rewriter) resultLabel(b string) string {
	orig := r.orig[b]
	if hidden, ok := r.view.DummyOf[orig]; ok {
		return hidden
	}
	return orig
}
