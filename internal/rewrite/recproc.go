package rewrite

import (
	"sort"

	"repro/internal/dtd"
	"repro/internal/xpath"
)

// reachDescend returns reach(//, A): the effective view types reachable
// from A via descendant-or-self, A itself included (so //p at A also
// covers p at A). Results are cached per source node; with the recrw
// table this is the paper's procedure recProc (Fig. 6).
func (r *Rewriter) reachDescend(a string) []string {
	if reach, ok := r.recReach[a]; ok {
		return reach
	}
	r.runRecProc(a)
	return r.recReach[a]
}

// recrw returns recrw(A, B): a query over the document capturing all
// label paths from A to B in the effective view DTD, with σ spliced in.
// recrw(A, A) is ε.
func (r *Rewriter) recrw(a, b string) xpath.Path {
	if _, ok := r.recPaths[a]; !ok {
		r.runRecProc(a)
	}
	if p, ok := r.recPaths[a][b]; ok {
		return p
	}
	return xpath.Empty{}
}

// runRecProc computes reach(//, a) and recrw(a, ·) for one source node.
//
// The paper's recProc uses symbolic variables Z_x so that each
// intermediate path segment is included exactly once, then substitutes in
// topological order; the equivalent here is to compute
//
//	recrw(a, y) = ⋃ over DAG edges (x, y) of recrw(a, x)/σ(x, y)
//
// in topological order while sharing the already-built recrw(a, x)
// sub-expressions (Go interface values alias the same underlying nodes),
// which keeps the construction linear in |D_v| per target.
func (r *Rewriter) runRecProc(a string) {
	// Collect the sub-DAG reachable from a.
	reachable := map[string]bool{a: true}
	var stack []string
	stack = append(stack, a)
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, y := range r.children(x) {
			if !reachable[y] {
				reachable[y] = true
				stack = append(stack, y)
			}
		}
	}

	// Topological order of the sub-DAG (the effective view DTD is a DAG by
	// construction: either non-recursive or unfolded).
	state := make(map[string]int)
	var order []string
	var visit func(string)
	visit = func(x string) {
		if state[x] != 0 {
			return
		}
		state[x] = 1
		for _, y := range r.children(x) {
			visit(y)
		}
		state[x] = 2
		order = append(order, x)
	}
	visit(a)
	// Reverse post-order = parents before children.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}

	paths := map[string]xpath.Path{a: xpath.Self{}}
	for _, x := range order {
		px, ok := paths[x]
		if !ok {
			continue
		}
		for _, y := range r.children(x) {
			step := xpath.MakeSeq(px, r.sigmaOf(x, y))
			if prev, seen := paths[y]; seen {
				paths[y] = xpath.MakeUnion(prev, step)
			} else {
				paths[y] = step
			}
		}
	}

	// Text nodes are in the descendant-or-self set too: give them a single
	// pseudo target so queries like //. and //text() cover them.
	var textPaths xpath.Path = xpath.Empty{}
	for b, pb := range paths {
		if sig, ok := r.sigma[[2]string{b, dtd.TextLabel}]; ok {
			textPaths = xpath.MakeUnion(textPaths, xpath.MakeSeq(pb, sig))
		}
	}
	if !xpath.IsEmpty(textPaths) {
		paths[textType] = textPaths
	}

	reach := make([]string, 0, len(paths))
	for b := range paths {
		reach = append(reach, b)
	}
	sort.Strings(reach)
	r.recReach[a] = reach
	r.recPaths[a] = paths
}
