package rewrite

import (
	"fmt"

	"repro/internal/dtd"
	"repro/internal/secview"
	"repro/internal/xpath"
)

// unfold expands a recursive view DTD into a DAG by creating one copy of
// each type per depth level, 0 (root) through height (Section 4.2).
// Copies are named "A@level" (the root keeps its name at level 0); each
// level-i production references the level-(i+1) copies, and the deepest
// level applies the non-recursive rule — its element copies have no
// element children, which is exactly what holds for nodes at the maximal
// depth of a document of that height. σ edges carry over unchanged, since
// they are queries over the document, not the view.
func unfold(v *secview.View, height int) (*dtd.DTD, map[string]string, map[[2]string]xpath.Path) {
	src := v.DTD
	root := src.Root()
	out := dtd.New(root)
	orig := map[string]string{root: root}
	sigma := make(map[[2]string]xpath.Path)

	name := func(typ string, level int) string {
		if level == 0 && typ == root {
			return root
		}
		return fmt.Sprintf("%s@%d", typ, level)
	}

	// declare walks (type, level) pairs reachable from the root.
	var declare func(typ string, level int)
	declare = func(typ string, level int) {
		n := name(typ, level)
		if out.Has(n) {
			return
		}
		orig[n] = typ
		c := src.MustProduction(typ)
		switch {
		case c.Kind == dtd.Empty:
			out.SetProduction(n, dtd.EmptyContent())
		case c.Kind == dtd.Text:
			out.SetProduction(n, dtd.TextContent())
			if p, ok := v.Sigma(typ, dtd.TextLabel); ok {
				sigma[[2]string{n, dtd.TextLabel}] = p
			}
		case level >= height:
			// Non-recursive rule at the unfolding frontier: a node at the
			// maximal depth has no element children.
			out.SetProduction(n, dtd.EmptyContent())
		default:
			items := make([]dtd.Item, len(c.Items))
			for i, it := range c.Items {
				child := name(it.Name, level+1)
				items[i] = dtd.Item{Name: child, Starred: it.Starred}
				if p, ok := v.Sigma(typ, it.Name); ok {
					sigma[[2]string{n, child}] = p
				}
			}
			out.SetProduction(n, dtd.Content{Kind: c.Kind, Items: items})
			for _, it := range c.Items {
				declare(it.Name, level+1)
			}
		}
	}
	declare(root, 0)
	return out, orig, sigma
}
