package dtd

import (
	"fmt"
	"strings"
)

// TextLabel is the pseudo-label carried by text nodes when a child-label
// sequence is matched against a content model.
const TextLabel = "#text"

// Regex is a general regular expression over element-type names, used to
// represent arbitrary <!ELEMENT> content models before normalization and
// to match child sequences during document validation. The paper's normal
// form is the subset produced by Content.Regex.
type Regex interface {
	isRegex()
	String() string
}

// RNone is the empty language (matches nothing).
type RNone struct{}

// REpsilon matches only the empty sequence.
type REpsilon struct{}

// RText matches a single text node (#PCDATA).
type RText struct{}

// RName matches a single element of the given type.
type RName struct{ Name string }

// RSeq matches the concatenation of its parts.
type RSeq struct{ Parts []Regex }

// RAlt matches any one of its alternatives.
type RAlt struct{ Alts []Regex }

// RStar matches zero or more repetitions of Sub.
type RStar struct{ Sub Regex }

// RPlus matches one or more repetitions of Sub.
type RPlus struct{ Sub Regex }

// ROpt matches zero or one occurrence of Sub.
type ROpt struct{ Sub Regex }

func (RNone) isRegex()    {}
func (REpsilon) isRegex() {}
func (RText) isRegex()    {}
func (RName) isRegex()    {}
func (RSeq) isRegex()     {}
func (RAlt) isRegex()     {}
func (RStar) isRegex()    {}
func (RPlus) isRegex()    {}
func (ROpt) isRegex()     {}

func (RNone) String() string    { return "∅" }
func (REpsilon) String() string { return "EMPTY" }
func (RText) String() string    { return "#PCDATA" }
func (r RName) String() string  { return r.Name }

func (r RSeq) String() string {
	parts := make([]string, len(r.Parts))
	for i, p := range r.Parts {
		parts[i] = p.String()
	}
	return "(" + strings.Join(parts, ",") + ")"
}

func (r RAlt) String() string {
	parts := make([]string, len(r.Alts))
	for i, p := range r.Alts {
		parts[i] = p.String()
	}
	return "(" + strings.Join(parts, "|") + ")"
}

func (r RStar) String() string { return r.Sub.String() + "*" }
func (r RPlus) String() string { return r.Sub.String() + "+" }
func (r ROpt) String() string  { return r.Sub.String() + "?" }

// Regex converts a normal-form content model into its regular expression,
// honouring starred items inside sequences/choices (the view-DTD compact
// form).
func (c Content) Regex() Regex {
	item := func(it Item) Regex {
		var r Regex = RName{Name: it.Name}
		if it.Starred {
			r = RStar{Sub: r}
		}
		return r
	}
	switch c.Kind {
	case Empty:
		return REpsilon{}
	case Text:
		return RText{}
	case Star:
		return RStar{Sub: RName{Name: c.Items[0].Name}}
	case Seq:
		if len(c.Items) == 1 {
			return item(c.Items[0])
		}
		parts := make([]Regex, len(c.Items))
		for i, it := range c.Items {
			parts[i] = item(it)
		}
		return RSeq{Parts: parts}
	case Choice:
		if len(c.Items) == 1 {
			return item(c.Items[0])
		}
		alts := make([]Regex, len(c.Items))
		for i, it := range c.Items {
			alts[i] = item(it)
		}
		return RAlt{Alts: alts}
	default:
		return RNone{}
	}
}

// Nullable reports whether the regular expression matches the empty
// sequence.
func Nullable(r Regex) bool {
	switch r := r.(type) {
	case RNone:
		return false
	case REpsilon:
		return true
	case RText, RName:
		return false
	case RSeq:
		for _, p := range r.Parts {
			if !Nullable(p) {
				return false
			}
		}
		return true
	case RAlt:
		for _, a := range r.Alts {
			if Nullable(a) {
				return true
			}
		}
		return false
	case RStar, ROpt:
		return true
	case RPlus:
		return Nullable(r.Sub)
	default:
		return false
	}
}

// Derive returns the Brzozowski derivative of r with respect to the label:
// the language of suffixes of words in L(r) that begin with the label.
// Text nodes use TextLabel.
func Derive(r Regex, label string) Regex {
	switch r := r.(type) {
	case RNone, REpsilon:
		return RNone{}
	case RText:
		if label == TextLabel {
			return REpsilon{}
		}
		return RNone{}
	case RName:
		if r.Name == label {
			return REpsilon{}
		}
		return RNone{}
	case RSeq:
		if len(r.Parts) == 0 {
			return RNone{}
		}
		head, tail := r.Parts[0], r.Parts[1:]
		d := seq(Derive(head, label), seqOf(tail))
		if Nullable(head) {
			d = alt(d, Derive(seqOf(tail), label))
		}
		return d
	case RAlt:
		var out Regex = RNone{}
		for _, a := range r.Alts {
			out = alt(out, Derive(a, label))
		}
		return out
	case RStar:
		return seq(Derive(r.Sub, label), r)
	case RPlus:
		return seq(Derive(r.Sub, label), RStar{Sub: r.Sub})
	case ROpt:
		return Derive(r.Sub, label)
	default:
		return RNone{}
	}
}

func seqOf(parts []Regex) Regex {
	switch len(parts) {
	case 0:
		return REpsilon{}
	case 1:
		return parts[0]
	default:
		return RSeq{Parts: parts}
	}
}

func seq(a, b Regex) Regex {
	if isNone(a) || isNone(b) {
		return RNone{}
	}
	if _, ok := a.(REpsilon); ok {
		return b
	}
	if _, ok := b.(REpsilon); ok {
		return a
	}
	return RSeq{Parts: []Regex{a, b}}
}

func alt(a, b Regex) Regex {
	if isNone(a) {
		return b
	}
	if isNone(b) {
		return a
	}
	return RAlt{Alts: []Regex{a, b}}
}

func isNone(r Regex) bool {
	_, ok := r.(RNone)
	return ok
}

// MatchLabels reports whether the sequence of child labels is in the
// language of the regular expression.
func MatchLabels(r Regex, labels []string) bool {
	for _, l := range labels {
		r = Derive(r, l)
		if isNone(r) {
			return false
		}
	}
	return Nullable(r)
}

// MatchContent reports whether the sequence of child labels conforms to
// the content model.
func (c Content) MatchContent(labels []string) bool {
	return MatchLabels(c.Regex(), labels)
}

// FirstLabels returns the set of labels that can begin a word of L(r).
func FirstLabels(r Regex) map[string]bool {
	out := make(map[string]bool)
	var walk func(Regex)
	walk = func(r Regex) {
		switch r := r.(type) {
		case RText:
			out[TextLabel] = true
		case RName:
			out[r.Name] = true
		case RSeq:
			for _, p := range r.Parts {
				walk(p)
				if !Nullable(p) {
					return
				}
			}
		case RAlt:
			for _, a := range r.Alts {
				walk(a)
			}
		case RStar:
			walk(r.Sub)
		case RPlus:
			walk(r.Sub)
		case ROpt:
			walk(r.Sub)
		}
	}
	walk(r)
	return out
}

// RegexNames returns the distinct element-type names referenced by the
// regular expression, in first-occurrence order.
func RegexNames(r Regex) []string {
	var out []string
	seen := make(map[string]bool)
	var walk func(Regex)
	walk = func(r Regex) {
		switch r := r.(type) {
		case RName:
			if !seen[r.Name] {
				seen[r.Name] = true
				out = append(out, r.Name)
			}
		case RSeq:
			for _, p := range r.Parts {
				walk(p)
			}
		case RAlt:
			for _, a := range r.Alts {
				walk(a)
			}
		case RStar:
			walk(r.Sub)
		case RPlus:
			walk(r.Sub)
		case ROpt:
			walk(r.Sub)
		}
	}
	walk(r)
	return out
}

// ensure interface completeness at compile time
var _ = []Regex{RNone{}, REpsilon{}, RText{}, RName{}, RSeq{}, RAlt{}, RStar{}, RPlus{}, ROpt{}}

// FormatSeqError renders a helpful validation error message.
func FormatSeqError(parent string, c Content, labels []string) error {
	return fmt.Errorf("dtd: children of %s do not match %s: got [%s]",
		parent, c, strings.Join(labels, " "))
}
