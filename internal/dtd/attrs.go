package dtd

import (
	"fmt"
	"strings"
)

// AttrDef declares one attribute of an element type. The paper's model
// omits attributes ("they can be easily incorporated"); this is that
// incorporation: attributes are named string values on elements, either
// required (#REQUIRED) or optional (#IMPLIED).
type AttrDef struct {
	Name     string
	Required bool
}

// String renders the definition in the compact syntax (a trailing '!'
// marks required attributes).
func (a AttrDef) String() string {
	if a.Required {
		return a.Name + "!"
	}
	return a.Name
}

// SetAttlist declares the attributes of an element type, replacing any
// previous declaration.
func (d *DTD) SetAttlist(elem string, defs []AttrDef) {
	if d.attlists == nil {
		d.attlists = make(map[string][]AttrDef)
	}
	if len(defs) == 0 {
		delete(d.attlists, elem)
		return
	}
	d.attlists[elem] = append([]AttrDef(nil), defs...)
}

// Attlist returns the declared attributes of an element type in
// declaration order.
func (d *DTD) Attlist(elem string) []AttrDef {
	return append([]AttrDef(nil), d.attlists[elem]...)
}

// Attr looks up one attribute declaration.
func (d *DTD) Attr(elem, name string) (AttrDef, bool) {
	for _, a := range d.attlists[elem] {
		if a.Name == name {
			return a, true
		}
	}
	return AttrDef{}, false
}

// checkAttlists validates attribute declarations: they must attach to
// declared element types and contain no duplicate names.
func (d *DTD) checkAttlists() error {
	for elem, defs := range d.attlists {
		if !d.Has(elem) {
			return fmt.Errorf("dtd: attlist for undeclared element type %q", elem)
		}
		seen := make(map[string]bool, len(defs))
		for _, a := range defs {
			if a.Name == "" {
				return fmt.Errorf("dtd: empty attribute name on %q", elem)
			}
			if seen[a.Name] {
				return fmt.Errorf("dtd: duplicate attribute %q on %q", a.Name, elem)
			}
			seen[a.Name] = true
		}
	}
	return nil
}

// parseAttlist reads an "attlist elem name1!, name2" line.
func parseAttlist(d *DTD, line string) error {
	rest := strings.TrimSpace(strings.TrimPrefix(line, "attlist"))
	fields := strings.SplitN(rest, " ", 2)
	if len(fields) != 2 {
		return fmt.Errorf("expected 'attlist <element> <attr>[, <attr>...]', got %q", line)
	}
	elem := strings.TrimSpace(fields[0])
	var defs []AttrDef
	for _, part := range strings.Split(fields[1], ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return fmt.Errorf("empty attribute name in %q", line)
		}
		def := AttrDef{Name: part}
		if strings.HasSuffix(part, "!") {
			def = AttrDef{Name: strings.TrimSuffix(part, "!"), Required: true}
		}
		if def.Name == "" || strings.ContainsAny(def.Name, " \t!") {
			return fmt.Errorf("invalid attribute name %q", part)
		}
		defs = append(defs, def)
	}
	if prev := d.attlists[elem]; prev != nil {
		return fmt.Errorf("duplicate attlist for %q", elem)
	}
	d.SetAttlist(elem, defs)
	return nil
}

// attlistString renders all attribute declarations.
func (d *DTD) attlistString() string {
	var b strings.Builder
	for _, elem := range d.order {
		defs := d.attlists[elem]
		if len(defs) == 0 {
			continue
		}
		parts := make([]string, len(defs))
		for i, a := range defs {
			parts[i] = a.String()
		}
		fmt.Fprintf(&b, "attlist %s %s\n", elem, strings.Join(parts, ", "))
	}
	return b.String()
}
