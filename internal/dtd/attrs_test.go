package dtd

import (
	"strings"
	"testing"
)

func TestAttlistParseAndString(t *testing.T) {
	d, err := Parse(`
root patient
patient -> name
name -> #PCDATA
attlist patient id!, ssn, insurer
attlist name lang
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	defs := d.Attlist("patient")
	if len(defs) != 3 {
		t.Fatalf("Attlist = %v", defs)
	}
	if defs[0].Name != "id" || !defs[0].Required {
		t.Errorf("id def = %v", defs[0])
	}
	if defs[1].Name != "ssn" || defs[1].Required {
		t.Errorf("ssn def = %v", defs[1])
	}
	if def, ok := d.Attr("patient", "insurer"); !ok || def.Required {
		t.Errorf("Attr(insurer) = %v, %v", def, ok)
	}
	if _, ok := d.Attr("patient", "nosuch"); ok {
		t.Errorf("undeclared attribute found")
	}
	if _, ok := d.Attr("nosuch", "id"); ok {
		t.Errorf("attribute on undeclared element found")
	}
	// Round trip.
	d2, err := Parse(d.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if d2.String() != d.String() {
		t.Errorf("attlist round trip mismatch:\n%s\nvs\n%s", d, d2)
	}
}

func TestAttlistErrors(t *testing.T) {
	cases := []string{
		"root a\na -> EMPTY\nattlist b id\n",              // undeclared element
		"root a\na -> EMPTY\nattlist a id, id\n",          // duplicate attribute
		"root a\na -> EMPTY\nattlist a\n",                 // missing names
		"root a\na -> EMPTY\nattlist a id\nattlist a x\n", // duplicate attlist
		"root a\na -> EMPTY\nattlist a ,\n",               // empty name
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestAttlistCloneAndSize(t *testing.T) {
	d := MustParse("root a\na -> EMPTY\nattlist a x!, y\n")
	base := d.Size()
	cp := d.Clone()
	cp.SetAttlist("a", []AttrDef{{Name: "z"}})
	if len(d.Attlist("a")) != 2 {
		t.Errorf("Clone shares attlists")
	}
	if cp.Size() != base-1 {
		t.Errorf("Size after attlist change = %d, want %d", cp.Size(), base-1)
	}
	cp.SetAttlist("a", nil)
	if len(cp.Attlist("a")) != 0 {
		t.Errorf("SetAttlist(nil) did not clear")
	}
}

func TestElementSyntaxExport(t *testing.T) {
	d := MustParse(`
root hospital
hospital -> dept*
dept -> patientInfo*, staffInfo
patientInfo -> patient*
patient -> name, treatment
treatment -> trial + regular
trial -> EMPTY
regular -> EMPTY
staffInfo -> EMPTY
name -> #PCDATA
attlist patient id!, ward
`)
	out := d.ElementSyntax()
	for _, want := range []string{
		"<!-- root: hospital -->",
		"<!ELEMENT hospital (dept)*>",
		"<!ELEMENT dept (patientInfo*, staffInfo)>",
		"<!ELEMENT treatment (trial | regular)>",
		"<!ELEMENT name (#PCDATA)>",
		"<!ELEMENT trial EMPTY>",
		"<!ATTLIST patient id CDATA #REQUIRED ward CDATA #IMPLIED>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ElementSyntax missing %q:\n%s", want, out)
		}
	}
	// The export re-parses (attlists are parse-ignored; structure must
	// survive normalization).
	back, err := ParseElementSyntax(out)
	if err != nil {
		t.Fatalf("re-parse of export: %v", err)
	}
	if back.Root() != "hospital" {
		t.Errorf("root = %q", back.Root())
	}
	if err := back.Check(); err != nil {
		t.Errorf("Check: %v", err)
	}
	if !back.IsStrictNormalForm() {
		t.Errorf("re-parsed export not normal form")
	}
}
