package dtd

import "testing"

// FuzzParse checks that the compact DTD parser never panics and that
// accepted DTDs round-trip through String.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"root a\na -> EMPTY\n",
		"root a\na -> b*\nb -> #PCDATA\n",
		"root a\na -> b, c\nb -> x + y\nc -> EMPTY\nx -> EMPTY\ny -> EMPTY\n",
		"root a\na -> b*, c\nb -> EMPTY\nc -> EMPTY\n",
		"root a\na -> a*\n",
		"root a # comment\na -> #PCDATA # more\n",
		"root",
		"a -> b\n",
		"root a\na -> b, c + d\n",
		"root a\na ->\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		d, err := Parse(src)
		if err != nil {
			return
		}
		d2, err := Parse(d.String())
		if err != nil {
			t.Fatalf("String() of accepted DTD does not reparse: %v\n%s", err, d.String())
		}
		if d2.String() != d.String() {
			t.Fatalf("round trip changed the DTD:\n%s\nvs\n%s", d.String(), d2.String())
		}
	})
}

// FuzzParseElementSyntax checks the <!ELEMENT> parser and normalizer.
func FuzzParseElementSyntax(f *testing.F) {
	for _, seed := range []string{
		"<!ELEMENT a (#PCDATA)>",
		"<!ELEMENT a (b, c?)> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY>",
		"<!ELEMENT a (b | c)+> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY>",
		"<!-- root: r --> <!ELEMENT r (a)*> <!ELEMENT a (#PCDATA)>",
		"<!ELEMENT a ((b, c) | d)*> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY> <!ELEMENT d EMPTY>",
		"<!ELEMENT a ANY>",
		"<!ELEMENT a (b>",
		"<!ELEMENT",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		d, err := ParseElementSyntax(src)
		if err != nil {
			return
		}
		if err := d.Check(); err != nil {
			t.Fatalf("accepted DTD fails Check: %v", err)
		}
		if !d.IsStrictNormalForm() {
			t.Fatalf("normalizer produced non-normal-form DTD:\n%s", d)
		}
	})
}

// FuzzMatchLabels checks that derivative matching never panics on
// arbitrary label sequences.
func FuzzMatchLabels(f *testing.F) {
	f.Add("a,b|c*", "a b c")
	f.Add("x", "")
	f.Fuzz(func(t *testing.T, shape, seq string) {
		// Interpret shape loosely as a content model over single-letter
		// names; fall back to a fixed model on parse failure.
		c, err := parseContent(shape)
		if err != nil {
			c = SeqContent("a", "b")
		}
		var labels []string
		for _, part := range splitFields(seq) {
			labels = append(labels, part)
		}
		c.MatchContent(labels) // must not panic
	})
}

func splitFields(s string) []string {
	var out []string
	field := ""
	for _, r := range s {
		if r == ' ' || r == '\t' || r == '\n' {
			if field != "" {
				out = append(out, field)
				field = ""
			}
			continue
		}
		field += string(r)
	}
	if field != "" {
		out = append(out, field)
	}
	return out
}
