package dtd

import (
	"fmt"
	"strings"
	"unicode"
)

// ParseElementSyntax reads a DTD written with standard XML <!ELEMENT>
// declarations and returns it normalized into the paper's production
// normal form (str | ε | concat | disjunction | star). General content
// models such as
//
//	<!ELEMENT a (b, (c | d)*, e?)>
//
// are normalized by introducing synthetic element types (named _gN) for
// nested groups, as the paper's Section 2 permits ("all DTDs can be
// expressed in this form by introducing new element types"). The root is
// the first declared element unless a "<!-- root: name -->" comment
// appears before the first declaration.
//
// Supported content specs: EMPTY, ANY (treated as an error — the normal
// form cannot express it), (#PCDATA), and parenthesized groups over names
// with the connectors ',' and '|' and the quantifiers '?', '*', '+'.
// Attribute-list declarations are ignored.
func ParseElementSyntax(src string) (*DTD, error) {
	root := ""
	if i := strings.Index(src, "<!-- root:"); i >= 0 {
		rest := src[i+len("<!-- root:"):]
		if j := strings.Index(rest, "-->"); j >= 0 {
			root = strings.TrimSpace(rest[:j])
		}
	}
	type decl struct {
		name string
		re   Regex
	}
	var decls []decl
	s := src
	for {
		i := strings.Index(s, "<!ELEMENT")
		if i < 0 {
			break
		}
		s = s[i+len("<!ELEMENT"):]
		j := strings.Index(s, ">")
		if j < 0 {
			return nil, fmt.Errorf("dtd: unterminated <!ELEMENT declaration")
		}
		body := strings.TrimSpace(s[:j])
		s = s[j+1:]
		fields := strings.Fields(body)
		if len(fields) < 2 {
			return nil, fmt.Errorf("dtd: malformed <!ELEMENT %s>", body)
		}
		name := fields[0]
		spec := strings.TrimSpace(strings.TrimPrefix(body, name))
		re, err := parseContentSpec(spec)
		if err != nil {
			return nil, fmt.Errorf("dtd: element %s: %v", name, err)
		}
		decls = append(decls, decl{name: name, re: re})
	}
	if len(decls) == 0 {
		return nil, fmt.Errorf("dtd: no <!ELEMENT declarations found")
	}
	if root == "" {
		root = decls[0].name
	}
	d := New(root)
	norm := &normalizer{d: d}
	for _, dc := range decls {
		if d.Has(dc.name) {
			return nil, fmt.Errorf("dtd: duplicate declaration of %s", dc.name)
		}
		c, err := norm.contentOf(dc.re)
		if err != nil {
			return nil, fmt.Errorf("dtd: element %s: %v", dc.name, err)
		}
		d.SetProduction(dc.name, c)
	}
	if err := d.Check(); err != nil {
		return nil, err
	}
	return d, nil
}

// ElementSyntax renders the DTD as standard <!ELEMENT> declarations (with
// a root marker comment), the publishable counterpart of the compact
// syntax — e.g. for handing a derived view DTD to users whose tooling
// expects real DTDs. Starred items inside sequences (the view compact
// form) render with their quantifier, so ParseElementSyntax(ElementSyntax(d))
// accepts every DTD this package produces. Attribute declarations render
// as <!ATTLIST> with #REQUIRED / #IMPLIED CDATA attributes.
func (d *DTD) ElementSyntax() string {
	var b strings.Builder
	fmt.Fprintf(&b, "<!-- root: %s -->\n", d.Root())
	for _, a := range d.Types() {
		c := d.MustProduction(a)
		fmt.Fprintf(&b, "<!ELEMENT %s %s>\n", a, contentSpec(c))
		defs := d.Attlist(a)
		if len(defs) == 0 {
			continue
		}
		fmt.Fprintf(&b, "<!ATTLIST %s", a)
		for _, def := range defs {
			req := "#IMPLIED"
			if def.Required {
				req = "#REQUIRED"
			}
			fmt.Fprintf(&b, " %s CDATA %s", def.Name, req)
		}
		b.WriteString(">\n")
	}
	return b.String()
}

func contentSpec(c Content) string {
	item := func(it Item) string {
		if it.Starred {
			return it.Name + "*"
		}
		return it.Name
	}
	switch c.Kind {
	case Empty:
		return "EMPTY"
	case Text:
		return "(#PCDATA)"
	case Star:
		return "(" + c.Items[0].Name + ")*"
	case Seq:
		parts := make([]string, len(c.Items))
		for i, it := range c.Items {
			parts[i] = item(it)
		}
		return "(" + strings.Join(parts, ", ") + ")"
	case Choice:
		parts := make([]string, len(c.Items))
		for i, it := range c.Items {
			parts[i] = item(it)
		}
		return "(" + strings.Join(parts, " | ") + ")"
	default:
		return "EMPTY"
	}
}

// normalizer rewrites general regular expressions into normal-form
// productions, minting synthetic element types for nested groups.
type normalizer struct {
	d    *DTD
	next int
}

// contentOf converts a parsed content spec into a normal-form Content,
// adding synthetic productions to the DTD as needed.
func (n *normalizer) contentOf(r Regex) (Content, error) {
	switch r := r.(type) {
	case REpsilon:
		return EmptyContent(), nil
	case RText:
		return TextContent(), nil
	case RName:
		return SeqContent(r.Name), nil
	case RSeq:
		items := make([]Item, 0, len(r.Parts))
		for _, p := range r.Parts {
			name, err := n.nameOf(p)
			if err != nil {
				return Content{}, err
			}
			items = append(items, Item{Name: name})
		}
		return Content{Kind: Seq, Items: items}, nil
	case RAlt:
		items := make([]Item, 0, len(r.Alts))
		for _, a := range r.Alts {
			name, err := n.nameOf(a)
			if err != nil {
				return Content{}, err
			}
			items = append(items, Item{Name: name})
		}
		return Content{Kind: Choice, Items: items}, nil
	case RStar:
		name, err := n.nameOf(r.Sub)
		if err != nil {
			return Content{}, err
		}
		return StarContent(name), nil
	case RPlus:
		// x+ ≡ x, x*: a two-position sequence over a synthetic star type.
		name, err := n.nameOf(r.Sub)
		if err != nil {
			return Content{}, err
		}
		star := n.mint(StarContent(name))
		return Content{Kind: Seq, Items: []Item{{Name: name}, {Name: star}}}, nil
	case ROpt:
		// x? ≡ x + _empty: a choice with a synthetic empty type.
		name, err := n.nameOf(r.Sub)
		if err != nil {
			return Content{}, err
		}
		empty := n.mint(EmptyContent())
		return Content{Kind: Choice, Items: []Item{{Name: name}, {Name: empty}}}, nil
	default:
		return Content{}, fmt.Errorf("cannot normalize content model %s", r)
	}
}

// nameOf returns an element-type name denoting the language of r,
// minting a synthetic type when r is not a bare name.
func (n *normalizer) nameOf(r Regex) (string, error) {
	if name, ok := r.(RName); ok {
		return name.Name, nil
	}
	c, err := n.contentOf(r)
	if err != nil {
		return "", err
	}
	return n.mint(c), nil
}

// mint declares a fresh synthetic element type with the given production.
func (n *normalizer) mint(c Content) string {
	n.next++
	name := fmt.Sprintf("_g%d", n.next)
	n.d.SetProduction(name, c)
	return name
}

// parseContentSpec parses an <!ELEMENT> content spec into a Regex.
func parseContentSpec(spec string) (Regex, error) {
	switch spec {
	case "EMPTY":
		return REpsilon{}, nil
	case "ANY":
		return nil, fmt.Errorf("ANY content is not expressible in the paper's normal form")
	}
	p := &cmParser{src: spec}
	r, err := p.parseCP()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("trailing input %q in content model", p.src[p.pos:])
	}
	return r, nil
}

type cmParser struct {
	src string
	pos int
}

func (p *cmParser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *cmParser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

// parseCP parses a content particle: name or group, followed by an
// optional quantifier.
func (p *cmParser) parseCP() (Regex, error) {
	p.skipSpace()
	var base Regex
	switch {
	case p.peek() == '(':
		p.pos++
		r, err := p.parseGroup()
		if err != nil {
			return nil, err
		}
		base = r
	case strings.HasPrefix(p.src[p.pos:], "#PCDATA"):
		p.pos += len("#PCDATA")
		base = RText{}
	default:
		name := p.parseName()
		if name == "" {
			return nil, fmt.Errorf("expected name or '(' at offset %d in %q", p.pos, p.src)
		}
		base = RName{Name: name}
	}
	switch p.peek() {
	case '?':
		p.pos++
		return ROpt{Sub: base}, nil
	case '*':
		p.pos++
		return RStar{Sub: base}, nil
	case '+':
		p.pos++
		return RPlus{Sub: base}, nil
	}
	return base, nil
}

// parseGroup parses the inside of a parenthesized group up to and
// including the closing ')'.
func (p *cmParser) parseGroup() (Regex, error) {
	first, err := p.parseCP()
	if err != nil {
		return nil, err
	}
	parts := []Regex{first}
	connector := byte(0)
	for {
		p.skipSpace()
		switch p.peek() {
		case ')':
			p.pos++
			if len(parts) == 1 {
				return parts[0], nil
			}
			if connector == ',' {
				return RSeq{Parts: parts}, nil
			}
			return RAlt{Alts: parts}, nil
		case ',', '|':
			c := p.peek()
			if connector != 0 && connector != c {
				return nil, fmt.Errorf("mixed ',' and '|' in one group at offset %d in %q", p.pos, p.src)
			}
			connector = c
			p.pos++
			next, err := p.parseCP()
			if err != nil {
				return nil, err
			}
			parts = append(parts, next)
		case 0:
			return nil, fmt.Errorf("unterminated group in %q", p.src)
		default:
			return nil, fmt.Errorf("unexpected %q at offset %d in %q", string(p.peek()), p.pos, p.src)
		}
	}
}

func (p *cmParser) parseName() string {
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '(' || c == ')' || c == ',' || c == '|' || c == '?' || c == '*' || c == '+' || unicode.IsSpace(rune(c)) {
			break
		}
		p.pos++
	}
	return p.src[start:p.pos]
}
