package dtd

import (
	"reflect"
	"sort"
	"strings"
	"testing"
)

const hospitalSrc = `
# The hospital DTD of the paper's Fig. 1 (simplified leaf productions).
root hospital
hospital -> dept*
dept -> clinicalTrial, patientInfo, staffInfo
clinicalTrial -> patientInfo
patientInfo -> patient*
patient -> name, wardNo, treatment
treatment -> trial + regular
trial -> bill
regular -> bill, medication
staffInfo -> staff*
staff -> doctor + nurse
doctor -> name
nurse -> name
name -> #PCDATA
wardNo -> #PCDATA
bill -> #PCDATA
medication -> #PCDATA
`

func mustHospital(t *testing.T) *DTD {
	t.Helper()
	d, err := Parse(hospitalSrc)
	if err != nil {
		t.Fatalf("Parse(hospital): %v", err)
	}
	return d
}

func TestParseHospital(t *testing.T) {
	d := mustHospital(t)
	if d.Root() != "hospital" {
		t.Errorf("Root() = %q, want hospital", d.Root())
	}
	if got := d.Len(); got != 16 {
		t.Errorf("Len() = %d, want 16", got)
	}
	c, ok := d.Production("dept")
	if !ok || c.Kind != Seq || len(c.Items) != 3 {
		t.Fatalf("Production(dept) = %v, %v", c, ok)
	}
	if c.Items[0].Name != "clinicalTrial" || c.Items[2].Name != "staffInfo" {
		t.Errorf("dept items = %v", c.Items)
	}
	if c, _ := d.Production("treatment"); c.Kind != Choice {
		t.Errorf("treatment kind = %v, want choice", c.Kind)
	}
	if c, _ := d.Production("hospital"); c.Kind != Star || c.Items[0].Name != "dept" {
		t.Errorf("hospital production = %v", c)
	}
	if c, _ := d.Production("name"); c.Kind != Text {
		t.Errorf("name kind = %v, want text", c.Kind)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"no root", "a -> b\nb -> EMPTY\n"},
		{"mixed connectors", "root a\na -> b, c + d\nb -> EMPTY\nc -> EMPTY\nd -> EMPTY\n"},
		{"undeclared type", "root a\na -> b\n"},
		{"duplicate production", "root a\na -> EMPTY\na -> EMPTY\n"},
		{"missing arrow", "root a\na EMPTY\n"},
		{"undeclared root", "root a\nb -> EMPTY\n"},
		{"empty position", "root a\na -> b,,c\nb -> EMPTY\nc -> EMPTY\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(tc.src); err == nil {
				t.Errorf("Parse(%q) succeeded, want error", tc.src)
			}
		})
	}
}

func TestRoundTrip(t *testing.T) {
	d := mustHospital(t)
	d2, err := Parse(d.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if d2.String() != d.String() {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", d.String(), d2.String())
	}
}

func TestComments(t *testing.T) {
	d, err := Parse("root a # the root\na -> #PCDATA # text content\n")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if c, _ := d.Production("a"); c.Kind != Text {
		t.Errorf("a kind = %v, want text", c.Kind)
	}
}

func TestGraphQueries(t *testing.T) {
	d := mustHospital(t)
	if got := d.Children("dept"); !reflect.DeepEqual(got, []string{"clinicalTrial", "patientInfo", "staffInfo"}) {
		t.Errorf("Children(dept) = %v", got)
	}
	if !d.HasChild("treatment", "trial") || d.HasChild("treatment", "bill") {
		t.Errorf("HasChild wrong for treatment")
	}
	parents := d.Parents("patientInfo")
	sort.Strings(parents)
	if !reflect.DeepEqual(parents, []string{"clinicalTrial", "dept"}) {
		t.Errorf("Parents(patientInfo) = %v", parents)
	}
	parents = d.Parents("name")
	sort.Strings(parents)
	if !reflect.DeepEqual(parents, []string{"doctor", "nurse", "patient"}) {
		t.Errorf("Parents(name) = %v", parents)
	}
	reach := d.Reachable("treatment")
	for _, want := range []string{"treatment", "trial", "regular", "bill", "medication"} {
		if !reach[want] {
			t.Errorf("Reachable(treatment) missing %s", want)
		}
	}
	if reach["patient"] || len(reach) != 5 {
		t.Errorf("Reachable(treatment) = %v", reach)
	}
}

func TestRecursion(t *testing.T) {
	d := mustHospital(t)
	if d.IsRecursive() {
		t.Errorf("hospital DTD reported recursive")
	}
	// Fig. 7(b): a -> b, c; c -> a* (recursive through c).
	rec := MustParse(`
root a
a -> b, c
b -> #PCDATA
c -> a*
`)
	if !rec.IsRecursive() {
		t.Fatalf("recursive DTD not detected")
	}
	types := rec.RecursiveTypes()
	if !types["a"] || !types["c"] || types["b"] {
		t.Errorf("RecursiveTypes = %v", types)
	}
	if _, err := rec.TopoOrder(); err == nil {
		t.Errorf("TopoOrder on recursive DTD succeeded")
	}
	// Self loop.
	self := MustParse("root a\na -> a*\n")
	if !self.RecursiveTypes()["a"] {
		t.Errorf("self-loop not detected")
	}
}

func TestTopoOrder(t *testing.T) {
	d := mustHospital(t)
	order, err := d.TopoOrder()
	if err != nil {
		t.Fatalf("TopoOrder: %v", err)
	}
	pos := make(map[string]int)
	for i, n := range order {
		pos[n] = i
	}
	if len(order) != d.Len() {
		t.Fatalf("TopoOrder has %d types, want %d", len(order), d.Len())
	}
	for _, a := range d.Types() {
		for _, b := range d.Children(a) {
			if pos[a] >= pos[b] {
				t.Errorf("topological order violated: %s (%d) before %s (%d)", a, pos[a], b, pos[b])
			}
		}
	}
}

func TestClone(t *testing.T) {
	d := mustHospital(t)
	cp := d.Clone()
	cp.SetProduction("extra", EmptyContent())
	cp.SetProduction("dept", StarContent("extra"))
	if d.Has("extra") {
		t.Errorf("Clone shares production map")
	}
	if c, _ := d.Production("dept"); c.Kind != Seq {
		t.Errorf("Clone shares content")
	}
}

func TestSize(t *testing.T) {
	d := MustParse("root a\na -> b, c\nb -> EMPTY\nc -> d*\nd -> #PCDATA\n")
	// 4 productions + positions: a has 2, c has 1.
	if got := d.Size(); got != 7 {
		t.Errorf("Size() = %d, want 7", got)
	}
}

func TestIsStrictNormalForm(t *testing.T) {
	if !mustHospital(t).IsStrictNormalForm() {
		t.Errorf("hospital DTD not strict normal form")
	}
	v := MustParse("root a\na -> b*, c\nb -> EMPTY\nc -> EMPTY\n")
	if v.IsStrictNormalForm() {
		t.Errorf("starred sequence item reported strict")
	}
}

func TestMatchContent(t *testing.T) {
	d := mustHospital(t)
	cases := []struct {
		typ    string
		labels []string
		want   bool
	}{
		{"hospital", nil, true},
		{"hospital", []string{"dept"}, true},
		{"hospital", []string{"dept", "dept", "dept"}, true},
		{"hospital", []string{"dept", "staff"}, false},
		{"dept", []string{"clinicalTrial", "patientInfo", "staffInfo"}, true},
		{"dept", []string{"patientInfo", "staffInfo"}, false},
		{"dept", []string{"clinicalTrial", "patientInfo", "staffInfo", "staffInfo"}, false},
		{"treatment", []string{"trial"}, true},
		{"treatment", []string{"regular"}, true},
		{"treatment", []string{"trial", "regular"}, false},
		{"treatment", nil, false},
		{"name", []string{TextLabel}, true},
		{"name", nil, false},
		{"name", []string{"dept"}, false},
	}
	for _, tc := range cases {
		c, ok := d.Production(tc.typ)
		if !ok {
			t.Fatalf("missing production %s", tc.typ)
		}
		if got := c.MatchContent(tc.labels); got != tc.want {
			t.Errorf("MatchContent(%s, %v) = %v, want %v", tc.typ, tc.labels, got, tc.want)
		}
	}
}

func TestMatchContentViewForm(t *testing.T) {
	// View compact form: dept -> patientInfo*, staffInfo.
	c := Content{Kind: Seq, Items: []Item{{Name: "patientInfo", Starred: true}, {Name: "staffInfo"}}}
	cases := []struct {
		labels []string
		want   bool
	}{
		{[]string{"staffInfo"}, true},
		{[]string{"patientInfo", "staffInfo"}, true},
		{[]string{"patientInfo", "patientInfo", "staffInfo"}, true},
		{[]string{"patientInfo"}, false},
		{[]string{"staffInfo", "patientInfo"}, false},
	}
	for _, tc := range cases {
		if got := c.MatchContent(tc.labels); got != tc.want {
			t.Errorf("MatchContent(%v) = %v, want %v", tc.labels, got, tc.want)
		}
	}
}

func TestRegexDerivatives(t *testing.T) {
	// (a | b)+ , c?
	r := RSeq{Parts: []Regex{RPlus{Sub: RAlt{Alts: []Regex{RName{"a"}, RName{"b"}}}}, ROpt{Sub: RName{"c"}}}}
	cases := []struct {
		labels []string
		want   bool
	}{
		{[]string{"a"}, true},
		{[]string{"b", "a", "b"}, true},
		{[]string{"a", "c"}, true},
		{[]string{"c"}, false},
		{nil, false},
		{[]string{"a", "c", "c"}, false},
	}
	for _, tc := range cases {
		if got := MatchLabels(r, tc.labels); got != tc.want {
			t.Errorf("MatchLabels(%v) = %v, want %v", tc.labels, got, tc.want)
		}
	}
}

func TestFirstLabels(t *testing.T) {
	r := RSeq{Parts: []Regex{ROpt{Sub: RName{"a"}}, RAlt{Alts: []Regex{RName{"b"}, RText{}}}}}
	got := FirstLabels(r)
	for _, want := range []string{"a", "b", TextLabel} {
		if !got[want] {
			t.Errorf("FirstLabels missing %s: %v", want, got)
		}
	}
	if len(got) != 3 {
		t.Errorf("FirstLabels = %v", got)
	}
}

func TestRegexNames(t *testing.T) {
	r := RSeq{Parts: []Regex{RName{"a"}, RStar{Sub: RAlt{Alts: []Regex{RName{"b"}, RName{"a"}}}}}}
	if got := RegexNames(r); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("RegexNames = %v", got)
	}
}

func TestParseElementSyntax(t *testing.T) {
	src := `
<!-- root: catalog -->
<!ELEMENT catalog (product+)>
<!ELEMENT product (name, price?, (new | used))>
<!ELEMENT name (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT new EMPTY>
<!ELEMENT used EMPTY>
`
	d, err := ParseElementSyntax(src)
	if err != nil {
		t.Fatalf("ParseElementSyntax: %v", err)
	}
	if d.Root() != "catalog" {
		t.Errorf("Root = %q", d.Root())
	}
	if err := d.Check(); err != nil {
		t.Errorf("Check: %v", err)
	}
	if !d.IsStrictNormalForm() {
		t.Errorf("normalized DTD not in strict normal form")
	}
	// catalog: product+ normalizes to (product, _gN) with _gN -> product*.
	c := d.MustProduction("catalog")
	if c.Kind != Seq || len(c.Items) != 2 || c.Items[0].Name != "product" {
		t.Fatalf("catalog production = %v", c)
	}
	star := d.MustProduction(c.Items[1].Name)
	if star.Kind != Star || star.Items[0].Name != "product" {
		t.Errorf("synthetic star production = %v", star)
	}
	// product: (name, price?, (new|used)): price? becomes synthetic choice.
	pc := d.MustProduction("product")
	if pc.Kind != Seq || len(pc.Items) != 3 || pc.Items[0].Name != "name" {
		t.Fatalf("product production = %v", pc)
	}
	opt := d.MustProduction(pc.Items[1].Name)
	if opt.Kind != Choice || len(opt.Items) != 2 || opt.Items[0].Name != "price" {
		t.Errorf("optional production = %v", opt)
	}
	grp := d.MustProduction(pc.Items[2].Name)
	if grp.Kind != Choice || len(grp.Items) != 2 {
		t.Errorf("group production = %v", grp)
	}
}

func TestParseElementSyntaxErrors(t *testing.T) {
	cases := []string{
		"",
		"<!ELEMENT a ANY>",
		"<!ELEMENT a (b,c|d)>",
		"<!ELEMENT a (b>",
		"<!ELEMENT a (b,c)> <!ELEMENT a EMPTY>",
		"<!ELEMENT a (b)>",
	}
	for _, src := range cases {
		if _, err := ParseElementSyntax(src); err == nil {
			t.Errorf("ParseElementSyntax(%q) succeeded, want error", src)
		}
	}
}

func TestRemoveProduction(t *testing.T) {
	d := MustParse("root a\na -> b*\nb -> EMPTY\n")
	d.RemoveProduction("b")
	if d.Has("b") {
		t.Errorf("b still declared")
	}
	if err := d.Check(); err == nil {
		t.Errorf("Check passed with dangling reference")
	}
	if got := len(d.Types()); got != 1 {
		t.Errorf("Types() has %d entries, want 1", got)
	}
}

func TestContentString(t *testing.T) {
	cases := []struct {
		c    Content
		want string
	}{
		{EmptyContent(), "EMPTY"},
		{TextContent(), "#PCDATA"},
		{StarContent("a"), "a*"},
		{SeqContent("a", "b"), "a, b"},
		{ChoiceContent("a", "b"), "a + b"},
		{Content{Kind: Seq, Items: []Item{{Name: "a", Starred: true}, {Name: "b"}}}, "a*, b"},
	}
	for _, tc := range cases {
		if got := tc.c.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestStringRendering(t *testing.T) {
	d := mustHospital(t)
	s := d.String()
	if !strings.HasPrefix(s, "root hospital\n") {
		t.Errorf("String missing root line: %q", s)
	}
	if !strings.Contains(s, "treatment -> trial + regular") {
		t.Errorf("String missing choice production: %q", s)
	}
}
