// Package dtd implements Document Type Definitions in the normal form used
// by "Secure XML Querying with Security Views" (SIGMOD 2004), Section 2.
//
// A DTD is a triple (Ele, Rg, r): a finite set of element types, a root
// type r, and for each type A a production Rg(A) of one of the forms
//
//	str | ε | B1,...,Bn | B1+...+Bn | B*
//
// i.e. PCDATA, empty, concatenation, disjunction, or Kleene star. Every
// DTD can be brought into this form by introducing new element types; the
// package also parses general <!ELEMENT> content models and normalizes
// them (see elementparse.go).
//
// The package additionally models the paper's DTD graph: nodes are element
// types, edges the parent/child relation, with starred and disjunctive
// edges distinguished. View DTDs produced by the derivation algorithm may
// carry a per-item star inside a concatenation (the "compact form" of the
// paper's Example 3.4); document DTDs are kept in strict normal form.
package dtd

import (
	"fmt"
	"sort"
	"strings"
)

// Kind identifies the shape of a production's content model.
type Kind int

const (
	// Empty is the ε production: the element has no children.
	Empty Kind = iota
	// Text is the str production: the element contains exactly one text node.
	Text
	// Seq is a concatenation B1,...,Bn.
	Seq
	// Choice is a disjunction B1+...+Bn.
	Choice
	// Star is a Kleene star B*.
	Star
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case Empty:
		return "empty"
	case Text:
		return "text"
	case Seq:
		return "sequence"
	case Choice:
		return "choice"
	case Star:
		return "star"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Item is one position of a content model: an element-type name with an
// optional star. Starred items inside sequences only arise in view DTDs
// (the compact form produced by view derivation); strict normal-form
// document DTDs never set Starred except through the Star kind itself.
type Item struct {
	Name    string
	Starred bool
}

// String renders the item, with a trailing '*' when starred.
func (it Item) String() string {
	if it.Starred {
		return it.Name + "*"
	}
	return it.Name
}

// Content is the right-hand side of a production.
type Content struct {
	Kind  Kind
	Items []Item
}

// EmptyContent returns the ε content model.
func EmptyContent() Content { return Content{Kind: Empty} }

// TextContent returns the str (PCDATA) content model.
func TextContent() Content { return Content{Kind: Text} }

// SeqContent returns a concatenation of the given element types.
func SeqContent(names ...string) Content {
	return Content{Kind: Seq, Items: itemsOf(names)}
}

// ChoiceContent returns a disjunction of the given element types.
func ChoiceContent(names ...string) Content {
	return Content{Kind: Choice, Items: itemsOf(names)}
}

// StarContent returns the Kleene star of a single element type.
func StarContent(name string) Content {
	return Content{Kind: Star, Items: []Item{{Name: name}}}
}

func itemsOf(names []string) []Item {
	items := make([]Item, len(names))
	for i, n := range names {
		items[i] = Item{Name: n}
	}
	return items
}

// Names returns the element-type names referenced by the content model, in
// order, without deduplication.
func (c Content) Names() []string {
	names := make([]string, 0, len(c.Items))
	for _, it := range c.Items {
		names = append(names, it.Name)
	}
	return names
}

// Contains reports whether the content model references the element type.
func (c Content) Contains(name string) bool {
	for _, it := range c.Items {
		if it.Name == name {
			return true
		}
	}
	return false
}

// String renders the content model in the package's compact syntax.
func (c Content) String() string {
	switch c.Kind {
	case Empty:
		return "EMPTY"
	case Text:
		return "#PCDATA"
	case Star:
		return c.Items[0].Name + "*"
	case Seq:
		parts := make([]string, len(c.Items))
		for i, it := range c.Items {
			parts[i] = it.String()
		}
		return strings.Join(parts, ", ")
	case Choice:
		parts := make([]string, len(c.Items))
		for i, it := range c.Items {
			parts[i] = it.String()
		}
		return strings.Join(parts, " + ")
	default:
		return fmt.Sprintf("<invalid kind %d>", int(c.Kind))
	}
}

// clone returns a deep copy of the content model.
func (c Content) clone() Content {
	cp := Content{Kind: c.Kind}
	cp.Items = append([]Item(nil), c.Items...)
	return cp
}

// DTD is a document type definition in (extended) normal form.
type DTD struct {
	root     string
	prods    map[string]Content
	order    []string
	attlists map[string][]AttrDef
}

// New returns an empty DTD with the given root element type. The root's
// production must be set before the DTD is used.
func New(root string) *DTD {
	return &DTD{root: root, prods: make(map[string]Content)}
}

// Root returns the root element type.
func (d *DTD) Root() string { return d.root }

// SetProduction defines (or redefines) the production of an element type.
func (d *DTD) SetProduction(name string, c Content) {
	if _, ok := d.prods[name]; !ok {
		d.order = append(d.order, name)
	}
	d.prods[name] = c
}

// RemoveProduction deletes an element type and its production. It does not
// touch references to the type from other productions.
func (d *DTD) RemoveProduction(name string) {
	if _, ok := d.prods[name]; !ok {
		return
	}
	delete(d.prods, name)
	for i, n := range d.order {
		if n == name {
			d.order = append(d.order[:i], d.order[i+1:]...)
			break
		}
	}
}

// Production returns the content model of an element type. The boolean is
// false when the type is not declared.
func (d *DTD) Production(name string) (Content, bool) {
	c, ok := d.prods[name]
	return c, ok
}

// MustProduction returns the content model of a declared element type and
// panics when the type is undeclared. It is intended for algorithm
// internals that run on validated DTDs.
func (d *DTD) MustProduction(name string) Content {
	c, ok := d.prods[name]
	if !ok {
		panic(fmt.Sprintf("dtd: element type %q is not declared", name))
	}
	return c
}

// Has reports whether the element type is declared.
func (d *DTD) Has(name string) bool {
	_, ok := d.prods[name]
	return ok
}

// Types returns all declared element types in declaration order.
func (d *DTD) Types() []string {
	return append([]string(nil), d.order...)
}

// Len returns the number of declared element types.
func (d *DTD) Len() int { return len(d.prods) }

// Size returns |D| as used in the paper's complexity bounds: the total
// number of productions plus content-model positions plus attribute
// declarations.
func (d *DTD) Size() int {
	n := len(d.prods)
	for _, c := range d.prods {
		n += len(c.Items)
	}
	for _, defs := range d.attlists {
		n += len(defs)
	}
	return n
}

// Children returns the distinct child element types of A, in content-model
// order.
func (d *DTD) Children(name string) []string {
	c, ok := d.prods[name]
	if !ok {
		return nil
	}
	seen := make(map[string]bool, len(c.Items))
	var out []string
	for _, it := range c.Items {
		if !seen[it.Name] {
			seen[it.Name] = true
			out = append(out, it.Name)
		}
	}
	return out
}

// HasChild reports whether B appears in A's content model.
func (d *DTD) HasChild(a, b string) bool {
	c, ok := d.prods[a]
	return ok && c.Contains(b)
}

// Parents returns the distinct element types whose productions reference
// the given type, in declaration order.
func (d *DTD) Parents(name string) []string {
	var out []string
	for _, a := range d.order {
		if d.prods[a].Contains(name) {
			out = append(out, a)
		}
	}
	return out
}

// Reachable returns the set of element types reachable from start
// (inclusive) through the parent/child relation.
func (d *DTD) Reachable(start string) map[string]bool {
	seen := make(map[string]bool)
	var walk func(string)
	walk = func(a string) {
		if seen[a] {
			return
		}
		seen[a] = true
		for _, b := range d.Children(a) {
			walk(b)
		}
	}
	if d.Has(start) {
		walk(start)
	}
	return seen
}

// IsRecursive reports whether any element type is defined in terms of
// itself, directly or indirectly (i.e. the DTD graph has a cycle reachable
// from the root).
func (d *DTD) IsRecursive() bool {
	return len(d.RecursiveTypes()) > 0
}

// RecursiveTypes returns the set of element types that lie on a cycle of
// the DTD graph.
func (d *DTD) RecursiveTypes() map[string]bool {
	// Tarjan SCC: a type is recursive when its SCC has size > 1 or it has a
	// self-loop.
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	next := 0
	recursive := make(map[string]bool)

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range d.Children(v) {
			if !d.Has(w) {
				continue
			}
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			if len(comp) > 1 {
				for _, w := range comp {
					recursive[w] = true
				}
			} else if d.HasChild(comp[0], comp[0]) {
				recursive[comp[0]] = true
			}
		}
	}
	for _, v := range d.order {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return recursive
}

// TopoOrder returns the element types in a topological order of the DTD
// graph (parents before children). It returns an error when the DTD is
// recursive.
func (d *DTD) TopoOrder() ([]string, error) {
	if d.IsRecursive() {
		return nil, fmt.Errorf("dtd: recursive DTD has no topological order")
	}
	state := make(map[string]int) // 0 unvisited, 1 in progress, 2 done
	var out []string
	var visit func(string)
	visit = func(a string) {
		if state[a] != 0 {
			return
		}
		state[a] = 1
		for _, b := range d.Children(a) {
			if d.Has(b) {
				visit(b)
			}
		}
		state[a] = 2
		out = append(out, a)
	}
	for _, a := range d.order {
		visit(a)
	}
	// Reverse: visit appends in post-order.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out, nil
}

// Clone returns a deep copy of the DTD.
func (d *DTD) Clone() *DTD {
	cp := New(d.root)
	for _, name := range d.order {
		cp.SetProduction(name, d.prods[name].clone())
	}
	for elem, defs := range d.attlists {
		cp.SetAttlist(elem, defs)
	}
	return cp
}

// Check validates internal consistency: the root is declared, and every
// element type referenced from a content model is declared.
func (d *DTD) Check() error {
	if !d.Has(d.root) {
		return fmt.Errorf("dtd: root element type %q is not declared", d.root)
	}
	var missing []string
	seen := make(map[string]bool)
	for _, a := range d.order {
		c := d.prods[a]
		switch c.Kind {
		case Empty, Text:
			if len(c.Items) != 0 {
				return fmt.Errorf("dtd: %s production of %q must not reference element types", c.Kind, a)
			}
		case Star:
			if len(c.Items) != 1 {
				return fmt.Errorf("dtd: star production of %q must reference exactly one element type", a)
			}
		case Seq, Choice:
			if len(c.Items) == 0 {
				return fmt.Errorf("dtd: %s production of %q has no element types", c.Kind, a)
			}
		default:
			return fmt.Errorf("dtd: production of %q has invalid kind %d", a, int(c.Kind))
		}
		for _, it := range c.Items {
			if !d.Has(it.Name) && !seen[it.Name] {
				seen[it.Name] = true
				missing = append(missing, fmt.Sprintf("%s (referenced by %s)", it.Name, a))
			}
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("dtd: undeclared element types: %s", strings.Join(missing, ", "))
	}
	return d.checkAttlists()
}

// IsStrictNormalForm reports whether the DTD is in the strict normal form
// of the paper's Section 2 (no starred items inside sequences or choices).
func (d *DTD) IsStrictNormalForm() bool {
	for _, a := range d.order {
		c := d.prods[a]
		if c.Kind == Seq || c.Kind == Choice {
			for _, it := range c.Items {
				if it.Starred {
					return false
				}
			}
		}
	}
	return true
}

// String renders the DTD in the package's compact text syntax, parseable
// by Parse.
func (d *DTD) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "root %s\n", d.root)
	for _, a := range d.order {
		fmt.Fprintf(&b, "%s -> %s\n", a, d.prods[a])
	}
	b.WriteString(d.attlistString())
	return b.String()
}
