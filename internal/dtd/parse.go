package dtd

import (
	"fmt"
	"strings"
)

// Parse reads a DTD in the package's compact text syntax:
//
//	# comment
//	root hospital
//	hospital -> dept*
//	dept -> clinicalTrial, patientInfo, staffInfo
//	treatment -> trial + regular
//	name -> #PCDATA
//	leaf -> EMPTY
//
// The first non-comment line must declare the root. Productions use ','
// for concatenation, '+' for disjunction, a trailing '*' for Kleene star,
// '#PCDATA' for text content, and 'EMPTY' (or 'EPSILON') for the empty
// production. Starred items inside sequences/choices (view-DTD compact
// form) are accepted.
func Parse(src string) (*DTD, error) {
	var d *DTD
	for lineno, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		if line == "" {
			continue
		}
		if d == nil {
			fields := strings.Fields(line)
			if len(fields) != 2 || fields[0] != "root" {
				return nil, fmt.Errorf("dtd: line %d: expected 'root <name>', got %q", lineno+1, line)
			}
			d = New(fields[1])
			continue
		}
		if strings.HasPrefix(line, "attlist ") {
			if err := parseAttlist(d, line); err != nil {
				return nil, fmt.Errorf("dtd: line %d: %v", lineno+1, err)
			}
			continue
		}
		name, rhs, ok := strings.Cut(line, "->")
		if !ok {
			return nil, fmt.Errorf("dtd: line %d: expected '<name> -> <content>', got %q", lineno+1, line)
		}
		name = strings.TrimSpace(name)
		if name == "" || strings.ContainsAny(name, " \t") {
			return nil, fmt.Errorf("dtd: line %d: invalid element type name %q", lineno+1, name)
		}
		if d.Has(name) {
			return nil, fmt.Errorf("dtd: line %d: duplicate production for %q", lineno+1, name)
		}
		c, err := parseContent(strings.TrimSpace(rhs))
		if err != nil {
			return nil, fmt.Errorf("dtd: line %d: %v", lineno+1, err)
		}
		d.SetProduction(name, c)
	}
	if d == nil {
		return nil, fmt.Errorf("dtd: empty input")
	}
	if err := d.Check(); err != nil {
		return nil, err
	}
	return d, nil
}

// MustParse is Parse for trusted inputs such as embedded schemas; it
// panics on error.
func MustParse(src string) *DTD {
	d, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return d
}

// stripComment removes a trailing '#'-comment from a line. A '#' begins a
// comment unless it starts the token "#PCDATA".
func stripComment(line string) string {
	for i := 0; i < len(line); i++ {
		if line[i] == '#' && !strings.HasPrefix(line[i:], "#PCDATA") {
			line = line[:i]
			break
		}
	}
	return strings.TrimSpace(line)
}

func parseContent(rhs string) (Content, error) {
	switch rhs {
	case "":
		return Content{}, fmt.Errorf("empty content model")
	case "EMPTY", "EPSILON", "ε":
		return EmptyContent(), nil
	case "#PCDATA", "str":
		return TextContent(), nil
	}
	hasComma := strings.Contains(rhs, ",")
	hasPlus := strings.Contains(rhs, "+")
	if hasComma && hasPlus {
		return Content{}, fmt.Errorf("content model %q mixes ',' and '+' (not in normal form)", rhs)
	}
	var parts []string
	kind := Seq
	switch {
	case hasComma:
		parts = strings.Split(rhs, ",")
	case hasPlus:
		parts = strings.Split(rhs, "+")
		kind = Choice
	default:
		parts = []string{rhs}
	}
	items := make([]Item, 0, len(parts))
	anyStar := false
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return Content{}, fmt.Errorf("content model %q has an empty position", rhs)
		}
		it := Item{Name: p}
		if strings.HasSuffix(p, "*") {
			it = Item{Name: strings.TrimSuffix(p, "*"), Starred: true}
			anyStar = true
		}
		if it.Name == "" || strings.ContainsAny(it.Name, " \t*") {
			return Content{}, fmt.Errorf("invalid element type name %q in content model", p)
		}
		items = append(items, it)
	}
	if len(items) == 1 && items[0].Starred {
		return StarContent(items[0].Name), nil
	}
	if len(items) == 1 {
		// A single unstarred name is a one-element concatenation.
		return Content{Kind: Seq, Items: items}, nil
	}
	_ = anyStar // starred items in sequences/choices are allowed (view compact form)
	return Content{Kind: kind, Items: items}, nil
}
