// Package lint provides the administrator-side static checks behind the
// paper's "simple GUI tool" for authoring access specifications: it flags
// annotations that do nothing, annotations on unreachable schema regions,
// and — approximating the "iff such a view exists" side of Theorem 3.2 —
// derived views that can abort on some document instances (a required
// concatenation child or a disjunction whose extraction is conditional).
// All checks are advisory: a specification with warnings still derives
// and enforces correctly on documents that avoid the flagged situations.
package lint

import (
	"fmt"
	"sort"

	"repro/internal/access"
	"repro/internal/dtd"
	"repro/internal/secview"
	"repro/internal/xpath"
)

// Code classifies an issue.
type Code string

const (
	// RedundantAnnotation flags an explicit annotation equal to what
	// inheritance would yield in every context the edge occurs in.
	RedundantAnnotation Code = "redundant-annotation"
	// UnreachableAnnotation flags an annotation on an edge not reachable
	// from the DTD root.
	UnreachableAnnotation Code = "unreachable-annotation"
	// TrivialCondition flags a conditional annotation whose qualifier is
	// constant.
	TrivialCondition Code = "trivial-condition"
	// AbortRisk flags a view production that can make materialization
	// abort (Section 3.3): strictly-required entries whose extraction is
	// conditional, or disjunctions with conditional or pruned branches.
	AbortRisk Code = "abort-risk"
)

// Issue is one linter finding.
type Issue struct {
	Code   Code
	Parent string // DTD or view element type
	Child  string // production entry, "" for whole-production issues
	Msg    string
}

func (i Issue) String() string {
	loc := i.Parent
	if i.Child != "" {
		loc += ", " + i.Child
	}
	return fmt.Sprintf("%s (%s): %s", i.Code, loc, i.Msg)
}

// Check runs all specification-level checks and, when the view derives,
// the view-level abort-risk checks.
func Check(spec *access.Spec) []Issue {
	issues := checkSpec(spec)
	if view, err := secview.Derive(spec); err == nil {
		issues = append(issues, CheckView(view)...)
	}
	sort.Slice(issues, func(a, b int) bool {
		x, y := issues[a], issues[b]
		if x.Parent != y.Parent {
			return x.Parent < y.Parent
		}
		if x.Child != y.Child {
			return x.Child < y.Child
		}
		return x.Code < y.Code
	})
	return issues
}

// checkSpec flags redundant, unreachable, and trivially-conditional
// annotations.
func checkSpec(spec *access.Spec) []Issue {
	var issues []Issue
	reach := spec.D.Reachable(spec.D.Root())
	poss := access.PossibleAccessibility(spec)
	for _, e := range spec.Edges() {
		a, _ := spec.Ann(e.Parent, e.Child)
		if !reach[e.Parent] {
			issues = append(issues, Issue{
				Code: UnreachableAnnotation, Parent: e.Parent, Child: e.Child,
				Msg: fmt.Sprintf("element type %s is not reachable from the root", e.Parent),
			})
			continue
		}
		p := poss[e.Parent]
		switch a.Kind {
		case access.Allow:
			if p.CanBeAccessible && !p.CanBeInaccessible {
				issues = append(issues, Issue{
					Code: RedundantAnnotation, Parent: e.Parent, Child: e.Child,
					Msg: "Y matches the accessibility inherited from an always-accessible parent",
				})
			}
		case access.Deny:
			if p.CanBeInaccessible && !p.CanBeAccessible {
				issues = append(issues, Issue{
					Code: RedundantAnnotation, Parent: e.Parent, Child: e.Child,
					Msg: "N matches the accessibility inherited from an always-inaccessible parent",
				})
			}
		case access.Cond:
			switch a.Cond.(type) {
			case xpath.QTrue:
				issues = append(issues, Issue{
					Code: TrivialCondition, Parent: e.Parent, Child: e.Child,
					Msg: "condition is constant true: use Y",
				})
			case xpath.QFalse:
				issues = append(issues, Issue{
					Code: TrivialCondition, Parent: e.Parent, Child: e.Child,
					Msg: "condition is constant false: use N",
				})
			}
		}
	}
	return issues
}

// CheckView flags view productions whose strict materialization semantics
// can abort: required entries with conditional extraction, and
// disjunctions whose alternatives are conditional (a document taking a
// hidden-and-empty branch leaves the disjunction unmatched).
func CheckView(view *secview.View) []Issue {
	var issues []Issue
	for _, a := range view.DTD.Types() {
		c := view.DTD.MustProduction(a)
		switch c.Kind {
		case dtd.Seq:
			for _, it := range c.Items {
				if it.Starred {
					continue // case 5 semantics never aborts
				}
				sigma, ok := view.Sigma(a, it.Name)
				if ok && conditional(sigma) {
					issues = append(issues, Issue{
						Code: AbortRisk, Parent: a, Child: it.Name,
						Msg: fmt.Sprintf("required entry extracted by conditional query %s; materialization aborts when the condition fails", xpath.String(sigma)),
					})
				}
			}
		case dtd.Choice:
			for _, it := range c.Items {
				sigma, ok := view.Sigma(a, it.Name)
				if ok && conditional(sigma) {
					issues = append(issues, Issue{
						Code: AbortRisk, Parent: a, Child: it.Name,
						Msg: fmt.Sprintf("disjunction alternative extracted by conditional query %s; a document on this branch aborts when the condition fails", xpath.String(sigma)),
					})
				}
			}
		}
	}
	return issues
}

// conditional reports whether a σ query carries qualifiers (its result
// can be empty even when the underlying structure exists).
func conditional(p xpath.Path) bool {
	for _, sub := range xpath.Subqueries(p) {
		if _, ok := sub.(xpath.Qualified); ok {
			return true
		}
	}
	return false
}
