package lint

import (
	"strings"
	"testing"

	"repro/internal/access"
	"repro/internal/dtd"
	"repro/internal/dtds"
	"repro/internal/secview"
)

func find(issues []Issue, code Code, parent, child string) *Issue {
	for i := range issues {
		if issues[i].Code == code && issues[i].Parent == parent && issues[i].Child == child {
			return &issues[i]
		}
	}
	return nil
}

func TestCleanSpecsHaveNoSpecIssues(t *testing.T) {
	for _, spec := range []*access.Spec{dtds.AdexSpec(), dtds.Fig7Spec()} {
		for _, issue := range Check(spec) {
			if issue.Code != AbortRisk {
				t.Errorf("unexpected issue: %s", issue)
			}
		}
	}
}

func TestRedundantAllow(t *testing.T) {
	d := dtds.Hospital()
	// dept is always accessible (no annotation above it), so Y on
	// (dept, patientInfo) is redundant.
	spec := access.MustParseAnnotations(d, "ann(dept, patientInfo) = Y\n")
	issues := Check(spec)
	if find(issues, RedundantAnnotation, "dept", "patientInfo") == nil {
		t.Errorf("redundant Y not flagged: %v", issues)
	}
}

func TestRedundantDeny(t *testing.T) {
	d := dtds.Hospital()
	spec := access.MustParseAnnotations(d, `
ann(dept, clinicalTrial) = N
ann(clinicalTrial, patientInfo) = N
`)
	issues := Check(spec)
	if find(issues, RedundantAnnotation, "clinicalTrial", "patientInfo") == nil {
		t.Errorf("redundant N not flagged: %v", issues)
	}
	// The top-level N is a real override, not redundant.
	if find(issues, RedundantAnnotation, "dept", "clinicalTrial") != nil {
		t.Errorf("effective N flagged as redundant")
	}
}

func TestOverrideNotRedundant(t *testing.T) {
	// Y under a denied parent is the override pattern of Example 3.1 and
	// must not be flagged.
	d := dtds.Hospital()
	spec := access.MustParseAnnotations(d, `
ann(dept, clinicalTrial) = N
ann(clinicalTrial, patientInfo) = Y
`)
	issues := Check(spec)
	if find(issues, RedundantAnnotation, "clinicalTrial", "patientInfo") != nil {
		t.Errorf("override flagged as redundant: %v", issues)
	}
}

func TestMixedContextNotRedundant(t *testing.T) {
	// patientInfo occurs both accessible (under dept) and inaccessible
	// (under a denied clinicalTrial); an explicit Y on (patientInfo,
	// patient) is meaningful and must not be flagged.
	d := dtds.Hospital()
	spec := access.MustParseAnnotations(d, `
ann(dept, clinicalTrial) = N
ann(patientInfo, patient) = Y
`)
	issues := Check(spec)
	if find(issues, RedundantAnnotation, "patientInfo", "patient") != nil {
		t.Errorf("mixed-context annotation flagged: %v", issues)
	}
}

func TestUnreachableAnnotation(t *testing.T) {
	d := dtd.MustParse(`
root r
r -> a
a -> #PCDATA
orphan -> b
b -> #PCDATA
`)
	spec := access.MustParseAnnotations(d, "ann(orphan, b) = N\n")
	issues := Check(spec)
	if find(issues, UnreachableAnnotation, "orphan", "b") == nil {
		t.Errorf("unreachable annotation not flagged: %v", issues)
	}
}

func TestTrivialCondition(t *testing.T) {
	d := dtds.Hospital()
	spec := access.MustParseAnnotations(d, "ann(dept, patientInfo) = [true()]\n")
	issues := Check(spec)
	if find(issues, TrivialCondition, "dept", "patientInfo") == nil {
		t.Errorf("trivial condition not flagged: %v", issues)
	}
}

func TestAbortRiskRequiredConditional(t *testing.T) {
	d := dtd.MustParse(`
root r
r -> a, b
a -> flag
flag -> #PCDATA
b -> #PCDATA
`)
	spec := access.MustParseAnnotations(d, `ann(r, a) = [flag = "on"]`)
	issues := Check(spec)
	issue := find(issues, AbortRisk, "r", "a")
	if issue == nil {
		t.Fatalf("abort risk not flagged: %v", issues)
	}
	if !strings.Contains(issue.Msg, "aborts") {
		t.Errorf("message = %q", issue.Msg)
	}
}

func TestAbortRiskConditionalChoice(t *testing.T) {
	d := dtd.MustParse(`
root r
r -> t
t -> x + y
x -> #PCDATA
y -> #PCDATA
`)
	spec := access.MustParseAnnotations(d, `ann(t, x) = [. = "go"]`)
	view, err := secview.Derive(spec)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	issues := CheckView(view)
	if find(issues, AbortRisk, "t", "x") == nil {
		t.Errorf("conditional disjunction branch not flagged: %v", issues)
	}
}

func TestNurseSpecAbortProfile(t *testing.T) {
	// The nurse policy's only conditional is on the starred dept entry —
	// star semantics never abort, so the derived view is abort-free.
	bound, err := dtds.NurseSpec().Bind(map[string]string{"wardNo": "6"})
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	for _, issue := range Check(bound) {
		t.Errorf("unexpected issue on nurse policy: %s", issue)
	}
}

func TestIssueString(t *testing.T) {
	i := Issue{Code: AbortRisk, Parent: "r", Child: "a", Msg: "m"}
	if got := i.String(); got != "abort-risk (r, a): m" {
		t.Errorf("String() = %q", got)
	}
}
