package nodeset

import (
	"math/rand"
	"testing"
)

// refSet is the map-based reference the bitset is pinned against.
type refSet map[int]bool

func (r refSet) sorted() []int {
	out := []int{}
	for i := 0; i < 1<<20; i++ {
		if len(out) == len(r) {
			break
		}
		if r[i] {
			out = append(out, i)
		}
	}
	return out
}

func assertSame(t *testing.T, s *Set, r refSet) {
	t.Helper()
	if s.Count() != len(r) {
		t.Fatalf("Count=%d want %d", s.Count(), len(r))
	}
	got := s.AppendOrds(nil)
	prev := -1
	for _, i := range got {
		if i <= prev {
			t.Fatalf("ForEach not ascending: %d after %d", i, prev)
		}
		if !r[i] {
			t.Fatalf("extra member %d", i)
		}
		prev = i
	}
	if len(got) != len(r) {
		t.Fatalf("missing members: got %d want %d", len(got), len(r))
	}
	for i := range r {
		if !s.Has(i) {
			t.Fatalf("Has(%d)=false for member", i)
		}
	}
}

// TestSetOpsRandomized pins Add/AddRange/Or/And/AndNot/Copy against a
// map-based reference over many random op sequences and odd universe
// sizes (word boundaries included).
func TestSetOpsRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	universes := []int{1, 63, 64, 65, 127, 128, 129, 1000, 4096}
	for trial := 0; trial < 300; trial++ {
		n := universes[r.Intn(len(universes))]
		s, ref := Get(n), refSet{}
		other, oref := Get(n), refSet{}
		for op := 0; op < 40; op++ {
			switch r.Intn(6) {
			case 0:
				i := r.Intn(n)
				s.Add(i)
				ref[i] = true
			case 1:
				lo := r.Intn(n)
				hi := lo + r.Intn(n-lo)
				s.AddRange(lo, hi)
				for i := lo; i <= hi; i++ {
					ref[i] = true
				}
			case 2:
				i := r.Intn(n)
				other.Add(i)
				oref[i] = true
			case 3:
				s.Or(other)
				for i := range oref {
					ref[i] = true
				}
			case 4:
				s.And(other)
				for i := range ref {
					if !oref[i] {
						delete(ref, i)
					}
				}
			case 5:
				s.AndNot(other)
				for i := range oref {
					delete(ref, i)
				}
			}
		}
		assertSame(t, s, ref)
		assertSame(t, other, oref)
		cp := Get(0)
		cp.Copy(s)
		assertSame(t, cp, ref)
		if s.Empty() != (len(ref) == 0) {
			t.Fatalf("Empty=%v want %v", s.Empty(), len(ref) == 0)
		}
		Put(s)
		Put(other)
		Put(cp)
	}
}

// TestAddRangeBoundaries hits the single-word and multi-word fill paths
// at exact word boundaries.
func TestAddRangeBoundaries(t *testing.T) {
	for _, tc := range [][2]int{{0, 0}, {0, 63}, {63, 64}, {64, 127}, {0, 128}, {5, 5}, {62, 130}, {10, 3}} {
		s := New(200)
		s.AddRange(tc[0], tc[1])
		for i := 0; i < 200; i++ {
			want := tc[0] <= i && i <= tc[1]
			if s.Has(i) != want {
				t.Fatalf("AddRange(%d,%d): Has(%d)=%v want %v", tc[0], tc[1], i, s.Has(i), want)
			}
		}
	}
}

// TestPoolReuseIsClean verifies a recycled set comes back empty at a
// smaller, equal, and larger universe.
func TestPoolReuseIsClean(t *testing.T) {
	s := Get(512)
	s.AddRange(0, 511)
	Put(s)
	for _, n := range []int{64, 512, 1024} {
		g := Get(n)
		if !g.Empty() || g.Universe() != n {
			t.Fatalf("pooled Get(%d) not clean: empty=%v universe=%d", n, g.Empty(), g.Universe())
		}
		g.Add(n - 1)
		Put(g)
	}
}

// TestCloneIndependence verifies Clone snapshots don't alias.
func TestCloneIndependence(t *testing.T) {
	s := New(100)
	s.Add(3)
	c := s.Clone()
	s.Add(7)
	if c.Has(7) {
		t.Fatal("clone aliases source")
	}
	if !c.Has(3) {
		t.Fatal("clone missing member")
	}
}

func BenchmarkOrLarge(b *testing.B) {
	s, t2 := New(10240), New(10240)
	for i := 0; i < 10240; i += 3 {
		t2.Add(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Or(t2)
	}
}
