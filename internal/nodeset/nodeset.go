// Package nodeset provides the ordinal node-set representation the
// evaluation stack uses as its internal currency on compacted
// documents: a word-packed bitset over the arena's preorder ordinal
// space. Document.Renumber assigns every node a dense preorder ordinal,
// so a set of nodes is a set of small integers, and the set algebra the
// rewritten plans spend their time in collapses to word operations —
// union is word-wise OR, intersection is AND, deduplication is free
// (a bit is either set or not), and document-order iteration is
// ascending bit iteration, because preorder ordinal order IS document
// order. A descendant-or-self step becomes a bit-range fill over the
// subtree interval [ord, ord+desc].
//
// The package is deliberately ignorant of xmltree: it stores ordinals,
// and callers map ordinals back to nodes through the document's node
// table. That keeps it dependency-free and reusable for any dense
// integer universe (the Rec automaton's per-state visited rows, for
// example).
//
// Pooling: Get/Put recycle Sets through a global sync.Pool so
// steady-state evaluation does near-zero set allocation. Ownership is
// strictly caller-tracked — a Set obtained from Get must be Put exactly
// once, and nothing may retain a pooled Set across Put. Long-lived
// holders (the answer cache) use New/Clone, which never touch the pool.
package nodeset

import (
	"math/bits"
	"sync"
)

const wordBits = 64

// Set is a bitset over the dense universe [0, N). The zero value is an
// empty set over an empty universe; Reset gives it a universe.
type Set struct {
	words []uint64
	n     int // universe size in bits
}

// New returns an empty set over the universe [0, n). The set is heap
// allocated and never pooled — use it for long-lived storage (caches);
// transient evaluation scratch should come from Get.
func New(n int) *Set {
	s := &Set{}
	s.Reset(n)
	return s
}

// Reset re-sizes the set to the universe [0, n) and clears it. Backing
// storage is reused when large enough, so a pooled Set resized to the
// same document allocates nothing.
func (s *Set) Reset(n int) {
	nw := (n + wordBits - 1) / wordBits
	if cap(s.words) < nw {
		s.words = make([]uint64, nw)
	} else {
		s.words = s.words[:nw]
		for i := range s.words {
			s.words[i] = 0
		}
	}
	s.n = n
}

// Universe returns the size n of the universe [0, n).
func (s *Set) Universe() int { return s.n }

// Add inserts ordinal i. Adding an ordinal outside the universe panics
// via the slice bounds check — ordinals come from the same document the
// universe was sized from, so that is a caller bug, not an input error.
func (s *Set) Add(i int) {
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Has reports whether ordinal i is in the set.
func (s *Set) Has(i int) bool {
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// AddRange inserts every ordinal in the inclusive range [lo, hi] — the
// subtree-interval form of descendant-or-self. It is a no-op when
// lo > hi.
func (s *Set) AddRange(lo, hi int) {
	if lo > hi {
		return
	}
	lw, hw := lo/wordBits, hi/wordBits
	lmask := ^uint64(0) << (uint(lo) % wordBits)
	hmask := ^uint64(0) >> (wordBits - 1 - uint(hi)%wordBits)
	if lw == hw {
		s.words[lw] |= lmask & hmask
		return
	}
	s.words[lw] |= lmask
	for w := lw + 1; w < hw; w++ {
		s.words[w] = ^uint64(0)
	}
	s.words[hw] |= hmask
}

// Or adds every member of t (union). The universes must match in word
// count; sets over the same document always do.
func (s *Set) Or(t *Set) {
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// And removes every member not in t (intersection).
func (s *Set) And(t *Set) {
	for i := range s.words {
		s.words[i] &= t.words[i]
	}
}

// AndNot removes every member of t (difference).
func (s *Set) AndNot(t *Set) {
	for i := range s.words {
		s.words[i] &^= t.words[i]
	}
}

// Copy makes s an exact copy of t (same universe, same members),
// reusing s's backing storage when possible.
func (s *Set) Copy(t *Set) {
	s.Reset(t.n)
	copy(s.words, t.words)
}

// Clone returns a fresh, never-pooled copy — for storage that outlives
// the evaluation that built the set (the answer cache).
func (s *Set) Clone() *Set {
	c := &Set{words: append([]uint64(nil), s.words...), n: s.n}
	return c
}

// Count returns the number of members.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no members.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// ForEach calls f for every member in ascending (document) order.
func (s *Set) ForEach(f func(i int)) {
	for wi, w := range s.words {
		base := wi * wordBits
		for w != 0 {
			f(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// ForEachUntil calls f for every member in ascending order until f
// returns false — the early-exit form for loops that can fail
// (cancellation polls, qualifier errors).
func (s *Set) ForEachUntil(f func(i int) bool) {
	for wi, w := range s.words {
		base := wi * wordBits
		for w != 0 {
			if !f(base + bits.TrailingZeros64(w)) {
				return
			}
			w &= w - 1
		}
	}
}

// AppendOrds appends the members in ascending order to dst and returns
// the extended slice.
func (s *Set) AppendOrds(dst []int) []int {
	s.ForEach(func(i int) { dst = append(dst, i) })
	return dst
}

// pool recycles evaluation scratch sets. Reset on Get clears only the
// words the new universe needs, so a pooled Set costs O(universe/64)
// writes and zero allocations in steady state.
var pool = sync.Pool{New: func() any { return &Set{} }}

// Get returns a cleared set over the universe [0, n) from the pool.
// The caller owns it until Put; it must not be retained after.
func Get(n int) *Set {
	s := pool.Get().(*Set)
	s.Reset(n)
	return s
}

// Put returns a set to the pool. The caller must not use s afterwards.
// Put is idempotence-free: putting the same set twice hands it to two
// future Gets at once — ownership tracking is the caller's job (the
// evaluator keeps an owned list and releases each set exactly once).
func Put(s *Set) {
	if s == nil {
		return
	}
	pool.Put(s)
}
