// Package latency is the shared online latency accounting used by the
// serving layer (/statsz, /metricsz), the observability registry, and
// the load generator: a fixed geometric bucket ladder fine enough for
// percentile estimation, a lock-free Digest safe for concurrent Observe
// calls, and histogram-interpolation quantile estimates (p50/p95/p99)
// that stay honest by carrying the exact observed maximum for the
// open-ended top bucket.
//
// Units: everything internal is nanosecond-based (sums, maxima,
// quantile arithmetic); microseconds and milliseconds exist only at the
// edges (the /statsz JSON wire format and human-facing summaries via
// the *Us accessors, CLI output). Consumers converting for display
// divide at the edge rather than storing converted values.
package latency

import (
	"sync/atomic"
	"time"
)

// Bounds are the inclusive upper bounds of the histogram buckets; the
// implicit last bucket is +inf. The ladder is geometric (×~2.5 per rung)
// from 100µs to 10s, fine enough that interpolated percentiles are
// within one rung of the truth across the range a query server cares
// about.
var Bounds = [...]time.Duration{
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	time.Second,
	2500 * time.Millisecond,
	5 * time.Second,
	10 * time.Second,
}

// NumBuckets is the bucket count including the +inf bucket.
const NumBuckets = len(Bounds) + 1

// BucketNames label the buckets in JSON output, in bucket order.
var BucketNames = [NumBuckets]string{
	"le_100us", "le_250us", "le_500us", "le_1ms", "le_2500us", "le_5ms",
	"le_10ms", "le_25ms", "le_50ms", "le_100ms", "le_250ms", "le_500ms",
	"le_1s", "le_2500ms", "le_5s", "le_10s", "inf",
}

// Digest is an online latency accumulator: sum, exact max, and the
// bucket histogram, all nanosecond-based. The count is not stored
// separately — it is, by construction, the sum of the bucket counts, so
// a snapshot's histogram always sums exactly to its count, even taken
// mid-flight under concurrent Observe calls. The zero value is ready to
// use and all methods are safe for concurrent use.
type Digest struct {
	sumNs   atomic.Uint64
	maxNs   atomic.Uint64
	buckets [NumBuckets]atomic.Uint64
}

// Observe records one latency.
func (d *Digest) Observe(v time.Duration) {
	if v < 0 {
		v = 0
	}
	ns := uint64(v.Nanoseconds())
	d.sumNs.Add(ns)
	for {
		old := d.maxNs.Load()
		if ns <= old || d.maxNs.CompareAndSwap(old, ns) {
			break
		}
	}
	d.buckets[bucketIndex(v)].Add(1)
}

func bucketIndex(v time.Duration) int {
	for i, bound := range Bounds {
		if v <= bound {
			return i
		}
	}
	return len(Bounds)
}

// Snapshot is a point-in-time copy of a Digest, suitable for JSON
// encoding and quantile estimation. Buckets are in ladder order
// (BucketNames gives the labels). Count equals the bucket sum exactly,
// always; SumNs and MaxNs may lag or lead it by in-flight observations
// when snapshotted under load.
type Snapshot struct {
	Count   uint64             `json:"count"`
	SumNs   uint64             `json:"sum_ns"`
	MaxNs   uint64             `json:"max_ns"`
	Buckets [NumBuckets]uint64 `json:"-"`
}

// Snapshot copies the digest's counters. Count is derived from the
// bucket counts, so histogram-sums-to-count holds for every snapshot,
// including ones taken while Observe calls are in flight.
func (d *Digest) Snapshot() Snapshot {
	var s Snapshot
	for i := range d.buckets {
		s.Buckets[i] = d.buckets[i].Load()
		s.Count += s.Buckets[i]
	}
	s.SumNs = d.sumNs.Load()
	s.MaxNs = d.maxNs.Load()
	return s
}

// SumNs returns the running observation sum in nanoseconds without
// snapshotting the buckets — the cheap cumulative-time read used as a
// sort key by per-fingerprint accounting (/queryz).
func (d *Digest) SumNs() uint64 { return d.sumNs.Load() }

// Count returns the number of observations so far (bucket sum).
func (d *Digest) Count() uint64 {
	n := uint64(0)
	for i := range d.buckets {
		n += d.buckets[i].Load()
	}
	return n
}

// MeanNs returns the mean latency in nanoseconds (0 when empty).
func (s Snapshot) MeanNs() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNs) / float64(s.Count)
}

// QuantileNs estimates the q-quantile (0 < q ≤ 1) in nanoseconds by
// linear interpolation inside the bucket holding the rank. The top
// (open-ended) bucket interpolates toward the exact observed maximum,
// and every estimate is clamped to it, so the estimate never exceeds a
// latency that actually happened. Returns 0 for an empty digest.
func (s Snapshot) QuantileNs(q float64) float64 {
	total := uint64(0)
	for _, n := range s.Buckets {
		total += n
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	cum := uint64(0)
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		if float64(cum+n) < rank {
			cum += n
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = float64(Bounds[i-1].Nanoseconds())
		}
		hi := float64(s.MaxNs)
		if i < len(Bounds) {
			hi = float64(Bounds[i].Nanoseconds())
		}
		if hi < lo {
			hi = lo
		}
		frac := (rank - float64(cum)) / float64(n)
		est := lo + (hi-lo)*frac
		if max := float64(s.MaxNs); est > max {
			est = max
		}
		return est
	}
	return float64(s.MaxNs)
}

// Microsecond-edge accessors: the /statsz wire format and human-facing
// summaries report microseconds; these divide at the edge so no
// converted value is ever stored.

// QuantileUs is QuantileNs in microseconds.
func (s Snapshot) QuantileUs(q float64) float64 { return s.QuantileNs(q) / 1e3 }

// MeanUs is MeanNs in microseconds.
func (s Snapshot) MeanUs() float64 { return s.MeanNs() / 1e3 }

// SumUs is the observation sum in whole microseconds.
func (s Snapshot) SumUs() uint64 { return s.SumNs / 1e3 }

// MaxUs is the observed maximum in whole microseconds.
func (s Snapshot) MaxUs() uint64 { return s.MaxNs / 1e3 }

// Summary is the compact JSON report of a digest: count/mean/max plus
// the standard percentile triplet. Microsecond units throughout (a
// wire-format edge; see the package comment).
type Summary struct {
	Count  uint64  `json:"count"`
	MeanUs float64 `json:"mean_us"`
	P50Us  float64 `json:"p50_us"`
	P95Us  float64 `json:"p95_us"`
	P99Us  float64 `json:"p99_us"`
	MaxUs  float64 `json:"max_us"`
}

// Summarize computes the Summary of a snapshot.
func (s Snapshot) Summarize() Summary {
	return Summary{
		Count:  s.Count,
		MeanUs: s.MeanUs(),
		P50Us:  s.QuantileUs(0.50),
		P95Us:  s.QuantileUs(0.95),
		P99Us:  s.QuantileUs(0.99),
		MaxUs:  float64(s.MaxNs) / 1e3,
	}
}

// BucketMap renders the histogram as a name→count map for JSON output.
func (s Snapshot) BucketMap() map[string]uint64 {
	m := make(map[string]uint64, NumBuckets)
	for i, name := range BucketNames {
		m[name] = s.Buckets[i]
	}
	return m
}
