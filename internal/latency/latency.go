// Package latency is the shared online latency accounting used by the
// serving layer (/statsz) and the load generator: a fixed geometric
// bucket ladder fine enough for percentile estimation, a lock-free
// Digest safe for concurrent Observe calls, and histogram-interpolation
// quantile estimates (p50/p95/p99) that stay honest by carrying the
// exact observed maximum for the open-ended top bucket.
package latency

import (
	"sync/atomic"
	"time"
)

// Bounds are the inclusive upper bounds of the histogram buckets; the
// implicit last bucket is +inf. The ladder is geometric (×~2.5 per rung)
// from 100µs to 10s, fine enough that interpolated percentiles are
// within one rung of the truth across the range a query server cares
// about.
var Bounds = [...]time.Duration{
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	time.Second,
	2500 * time.Millisecond,
	5 * time.Second,
	10 * time.Second,
}

// NumBuckets is the bucket count including the +inf bucket.
const NumBuckets = len(Bounds) + 1

// BucketNames label the buckets in JSON output, in bucket order.
var BucketNames = [NumBuckets]string{
	"le_100us", "le_250us", "le_500us", "le_1ms", "le_2500us", "le_5ms",
	"le_10ms", "le_25ms", "le_50ms", "le_100ms", "le_250ms", "le_500ms",
	"le_1s", "le_2500ms", "le_5s", "le_10s", "inf",
}

// Digest is an online latency accumulator: count, sum, exact max, and
// the bucket histogram. The zero value is ready to use and all methods
// are safe for concurrent use.
type Digest struct {
	count   atomic.Uint64
	sumUs   atomic.Uint64
	maxUs   atomic.Uint64
	buckets [NumBuckets]atomic.Uint64
}

// Observe records one latency.
func (d *Digest) Observe(v time.Duration) {
	if v < 0 {
		v = 0
	}
	us := uint64(v.Microseconds())
	d.count.Add(1)
	d.sumUs.Add(us)
	for {
		old := d.maxUs.Load()
		if us <= old || d.maxUs.CompareAndSwap(old, us) {
			break
		}
	}
	d.buckets[bucketIndex(v)].Add(1)
}

func bucketIndex(v time.Duration) int {
	for i, bound := range Bounds {
		if v <= bound {
			return i
		}
	}
	return len(Bounds)
}

// Snapshot is a point-in-time copy of a Digest, suitable for JSON
// encoding and quantile estimation. Buckets are in ladder order
// (BucketNames gives the labels).
type Snapshot struct {
	Count   uint64             `json:"count"`
	SumUs   uint64             `json:"sum_us"`
	MaxUs   uint64             `json:"max_us"`
	Buckets [NumBuckets]uint64 `json:"-"`
}

// Snapshot copies the digest's counters. Concurrent Observe calls may
// land between the individual loads, so the bucket sum can momentarily
// run ahead of or behind Count by in-flight observations; quiescent
// digests are exact.
func (d *Digest) Snapshot() Snapshot {
	var s Snapshot
	s.Count = d.count.Load()
	s.SumUs = d.sumUs.Load()
	s.MaxUs = d.maxUs.Load()
	for i := range d.buckets {
		s.Buckets[i] = d.buckets[i].Load()
	}
	return s
}

// MeanUs returns the mean latency in microseconds (0 when empty).
func (s Snapshot) MeanUs() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumUs) / float64(s.Count)
}

// QuantileUs estimates the q-quantile (0 < q ≤ 1) in microseconds by
// linear interpolation inside the bucket holding the rank. The top
// (open-ended) bucket interpolates toward the exact observed maximum,
// and every estimate is clamped to it, so the estimate never exceeds a
// latency that actually happened. Returns 0 for an empty digest.
func (s Snapshot) QuantileUs(q float64) float64 {
	total := uint64(0)
	for _, n := range s.Buckets {
		total += n
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	cum := uint64(0)
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		if float64(cum+n) < rank {
			cum += n
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = float64(Bounds[i-1].Microseconds())
		}
		hi := float64(s.MaxUs)
		if i < len(Bounds) {
			hi = float64(Bounds[i].Microseconds())
		}
		if hi < lo {
			hi = lo
		}
		frac := (rank - float64(cum)) / float64(n)
		est := lo + (hi-lo)*frac
		if max := float64(s.MaxUs); est > max {
			est = max
		}
		return est
	}
	return float64(s.MaxUs)
}

// Summary is the compact JSON report of a digest: count/mean/max plus
// the standard percentile triplet. Microsecond units throughout.
type Summary struct {
	Count  uint64  `json:"count"`
	MeanUs float64 `json:"mean_us"`
	P50Us  float64 `json:"p50_us"`
	P95Us  float64 `json:"p95_us"`
	P99Us  float64 `json:"p99_us"`
	MaxUs  uint64  `json:"max_us"`
}

// Summarize computes the Summary of a snapshot.
func (s Snapshot) Summarize() Summary {
	return Summary{
		Count:  s.Count,
		MeanUs: s.MeanUs(),
		P50Us:  s.QuantileUs(0.50),
		P95Us:  s.QuantileUs(0.95),
		P99Us:  s.QuantileUs(0.99),
		MaxUs:  s.MaxUs,
	}
}

// BucketMap renders the histogram as a name→count map for JSON output.
func (s Snapshot) BucketMap() map[string]uint64 {
	m := make(map[string]uint64, NumBuckets)
	for i, name := range BucketNames {
		m[name] = s.Buckets[i]
	}
	return m
}
