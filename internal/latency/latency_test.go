package latency

import (
	"sync"
	"testing"
	"time"
)

func TestBucketShape(t *testing.T) {
	if len(BucketNames) != len(Bounds)+1 {
		t.Fatalf("BucketNames has %d entries for %d bounds", len(BucketNames), len(Bounds))
	}
	for i := 1; i < len(Bounds); i++ {
		if Bounds[i] <= Bounds[i-1] {
			t.Errorf("Bounds not increasing at %d: %v then %v", i, Bounds[i-1], Bounds[i])
		}
	}
}

func TestObserveLandsInOneBucket(t *testing.T) {
	var d Digest
	cases := []time.Duration{
		0, 50 * time.Microsecond, 100 * time.Microsecond, 101 * time.Microsecond,
		time.Millisecond, 70 * time.Millisecond, time.Second, time.Minute,
	}
	for _, v := range cases {
		d.Observe(v)
	}
	s := d.Snapshot()
	var total uint64
	for _, n := range s.Buckets {
		total += n
	}
	if total != uint64(len(cases)) || s.Count != uint64(len(cases)) {
		t.Fatalf("buckets sum to %d, count %d, want %d", total, s.Count, len(cases))
	}
	if s.MaxNs != uint64(time.Minute.Nanoseconds()) {
		t.Errorf("MaxNs = %d", s.MaxNs)
	}
	if s.MaxUs() != uint64(time.Minute.Microseconds()) {
		t.Errorf("MaxUs = %d", s.MaxUs())
	}
}

func TestQuantileOrderingAndClamp(t *testing.T) {
	var d Digest
	// 1000 observations spread 1ms..100ms.
	for i := 0; i < 1000; i++ {
		d.Observe(time.Millisecond + time.Duration(i)*99*time.Microsecond)
	}
	s := d.Snapshot()
	p50, p95, p99 := s.QuantileUs(0.50), s.QuantileUs(0.95), s.QuantileUs(0.99)
	if !(p50 <= p95 && p95 <= p99) {
		t.Errorf("quantiles not ordered: p50=%v p95=%v p99=%v", p50, p95, p99)
	}
	if p99 > float64(s.MaxUs()) {
		t.Errorf("p99 %v exceeds observed max %d", p99, s.MaxUs())
	}
	// The true median is ≈50ms; the histogram estimate must land in the
	// bucket-resolution neighbourhood (25ms..100ms rungs).
	if p50 < 20_000 || p50 > 110_000 {
		t.Errorf("p50 = %.0fus, want within bucket resolution of 50ms", p50)
	}
}

func TestQuantileSingleObservation(t *testing.T) {
	var d Digest
	d.Observe(3 * time.Millisecond)
	s := d.Snapshot()
	for _, q := range []float64{0.5, 0.99, 1} {
		got := s.QuantileUs(q)
		if got > float64(s.MaxUs()) || got <= 0 {
			t.Errorf("QuantileUs(%v) = %v with max %d", q, got, s.MaxUs())
		}
	}
	if s.Summarize().Count != 1 {
		t.Errorf("summary count: %+v", s.Summarize())
	}
}

func TestEmptyDigest(t *testing.T) {
	var d Digest
	s := d.Snapshot()
	if s.QuantileUs(0.99) != 0 || s.MeanUs() != 0 {
		t.Errorf("empty digest not zero: %+v", s)
	}
}

func TestConcurrentObserve(t *testing.T) {
	var d Digest
	var wg sync.WaitGroup
	const goroutines, per = 8, 500
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				d.Observe(time.Duration(g*i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	s := d.Snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*per)
	}
	var total uint64
	for _, n := range s.Buckets {
		total += n
	}
	if total != s.Count {
		t.Errorf("buckets sum to %d, count %d", total, s.Count)
	}
}

// TestSnapshotMidFlight pins the invariant the serving stats tests
// build on: a snapshot taken while Observe calls are in flight still
// has its histogram summing exactly to its count (Count is derived from
// the buckets, not stored separately), and successive counts are
// monotone.
func TestSnapshotMidFlight(t *testing.T) {
	var d Digest
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					d.Observe(123 * time.Microsecond)
				}
			}
		}()
	}
	last := uint64(0)
	for i := 0; i < 200; i++ {
		s := d.Snapshot()
		var total uint64
		for _, n := range s.Buckets {
			total += n
		}
		if total != s.Count {
			t.Fatalf("mid-flight snapshot: buckets sum to %d, count %d", total, s.Count)
		}
		if s.Count < last {
			t.Fatalf("count went backwards: %d after %d", s.Count, last)
		}
		last = s.Count
	}
	close(stop)
	wg.Wait()
}
