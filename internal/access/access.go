// Package access implements the paper's access specifications (Section
// 3.2): a specification S = (D, ann) extends a document DTD D with
// security annotations Y (accessible), N (inaccessible), or [q]
// (conditionally accessible, with q an XPath qualifier of the fragment C)
// on the parent/child edges of D's productions. Annotations support
// inheritance (an unannotated child takes its parent's accessibility) and
// overriding (an explicit annotation replaces it), and qualifiers may
// carry $parameters bound per user (the paper's $wardNo).
//
// The package also computes the paper's ground-truth accessibility of
// every node of a document instance (used to verify that derived security
// views are sound and complete, and by the naive baseline of Section 6 to
// annotate documents): a node v is accessible iff (1) its effective
// annotation is Y, or [q] with q true at v, and the qualifiers of all
// annotated ancestors hold, or (2) it has no explicit annotation and its
// parent is accessible.
package access

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dtd"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// AnnKind classifies a security annotation.
type AnnKind int

const (
	// Allow is the annotation Y: accessible.
	Allow AnnKind = iota
	// Deny is the annotation N: inaccessible.
	Deny
	// Cond is a conditional annotation [q].
	Cond
)

// Ann is one security annotation. Cond annotations carry the qualifier.
type Ann struct {
	Kind AnnKind
	Cond xpath.Qual
}

// String renders the annotation in specification syntax.
func (a Ann) String() string {
	switch a.Kind {
	case Allow:
		return "Y"
	case Deny:
		return "N"
	case Cond:
		return "[" + xpath.QualString(a.Cond) + "]"
	default:
		return fmt.Sprintf("Ann(%d)", int(a.Kind))
	}
}

// Edge identifies the (parent, child) production position an annotation
// attaches to. Text content uses child label dtd.TextLabel.
type Edge struct {
	Parent, Child string
}

// Spec is an access specification S = (D, ann).
type Spec struct {
	D     *dtd.DTD
	anns  map[Edge]Ann
	order []Edge
}

// NewSpec returns a specification over D with no explicit annotations
// (everything inherits the root's Y and is therefore accessible).
func NewSpec(d *dtd.DTD) *Spec {
	return &Spec{D: d, anns: make(map[Edge]Ann)}
}

// Annotate sets ann(parent, child). It fails when the edge does not exist
// in the DTD or the annotation is malformed. Attribute annotations use a
// child of the form "@name"; they support Y and N only (an attribute is
// exposed exactly when its element is accessible and the attribute is not
// denied — a conditional attribute would need per-value views the model
// does not define).
func (s *Spec) Annotate(parent, child string, a Ann) error {
	c, ok := s.D.Production(parent)
	if !ok {
		return fmt.Errorf("access: element type %q is not declared", parent)
	}
	switch {
	case strings.HasPrefix(child, "@"):
		if _, ok := s.D.Attr(parent, child[1:]); !ok {
			return fmt.Errorf("access: %q has no attribute %q", parent, child[1:])
		}
		if a.Kind == Cond {
			return fmt.Errorf("access: conditional annotation on attribute (%s, %s) is not supported", parent, child)
		}
	case child == dtd.TextLabel:
		if c.Kind != dtd.Text {
			return fmt.Errorf("access: %q has no text content to annotate", parent)
		}
	case !c.Contains(child):
		return fmt.Errorf("access: %q is not a child type of %q", child, parent)
	}
	if a.Kind == Cond && a.Cond == nil {
		return fmt.Errorf("access: conditional annotation on (%s, %s) has no qualifier", parent, child)
	}
	e := Edge{Parent: parent, Child: child}
	if _, dup := s.anns[e]; !dup {
		s.order = append(s.order, e)
	}
	s.anns[e] = a
	return nil
}

// Ann returns the explicit annotation of (parent, child) and whether one
// is defined.
func (s *Spec) Ann(parent, child string) (Ann, bool) {
	a, ok := s.anns[Edge{Parent: parent, Child: child}]
	return a, ok
}

// Edges returns the annotated edges in annotation order.
func (s *Spec) Edges() []Edge {
	return append([]Edge(nil), s.order...)
}

// Vars returns the distinct $parameters used by conditional annotations,
// sorted.
func (s *Spec) Vars() []string {
	seen := make(map[string]bool)
	var out []string
	for _, e := range s.order {
		a := s.anns[e]
		if a.Kind != Cond {
			continue
		}
		probe := xpath.Qualified{Sub: xpath.Self{}, Cond: a.Cond}
		for _, v := range xpath.Vars(probe) {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Bind returns a copy of the specification with all $parameters replaced
// by their values in env (the paper's "concrete value substituted for
// $wardNo").
func (s *Spec) Bind(env map[string]string) (*Spec, error) {
	out := NewSpec(s.D)
	for _, e := range s.order {
		a := s.anns[e]
		if a.Kind == Cond {
			q, err := xpath.BindQualVars(a.Cond, env)
			if err != nil {
				return nil, fmt.Errorf("access: ann(%s, %s): %v", e.Parent, e.Child, err)
			}
			a = Ann{Kind: Cond, Cond: q}
		}
		if err := out.Annotate(e.Parent, e.Child, a); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// String renders the specification in the syntax accepted by
// ParseAnnotations.
func (s *Spec) String() string {
	var b strings.Builder
	for _, e := range s.order {
		child := e.Child
		if child == dtd.TextLabel {
			child = "str"
		}
		fmt.Fprintf(&b, "ann(%s, %s) = %s\n", e.Parent, child, s.anns[e])
	}
	return b.String()
}

// ParseAnnotations reads annotation lines over an existing DTD:
//
//	# nurses see only their ward
//	ann(hospital, dept) = [*/patient/wardNo = $wardNo]
//	ann(dept, clinicalTrial) = N
//	ann(clinicalTrial, patientInfo) = Y
//
// The right-hand side is Y, N, or a bracketed qualifier of the fragment
// C. The child name "str" (or "#PCDATA") annotates text content.
func ParseAnnotations(d *dtd.DTD, src string) (*Spec, error) {
	s := NewSpec(d)
	for lineno, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		if line == "" {
			continue
		}
		lhs, rhs, ok := strings.Cut(line, "=")
		if !ok {
			return nil, fmt.Errorf("access: line %d: expected 'ann(A, B) = ...', got %q", lineno+1, line)
		}
		lhs = strings.TrimSpace(lhs)
		if !strings.HasPrefix(lhs, "ann(") || !strings.HasSuffix(lhs, ")") {
			return nil, fmt.Errorf("access: line %d: malformed annotation target %q", lineno+1, lhs)
		}
		inner := lhs[len("ann(") : len(lhs)-1]
		parent, child, ok := strings.Cut(inner, ",")
		if !ok {
			return nil, fmt.Errorf("access: line %d: expected two names in %q", lineno+1, lhs)
		}
		parent = strings.TrimSpace(parent)
		child = strings.TrimSpace(child)
		if child == "str" || child == "#PCDATA" {
			child = dtd.TextLabel
		}
		a, err := parseAnn(strings.TrimSpace(rhs))
		if err != nil {
			return nil, fmt.Errorf("access: line %d: %v", lineno+1, err)
		}
		if err := s.Annotate(parent, child, a); err != nil {
			return nil, fmt.Errorf("access: line %d: %v", lineno+1, err)
		}
	}
	return s, nil
}

// MustParseAnnotations parses trusted annotations and panics on error.
func MustParseAnnotations(d *dtd.DTD, src string) *Spec {
	s, err := ParseAnnotations(d, src)
	if err != nil {
		panic(err)
	}
	return s
}

func parseAnn(rhs string) (Ann, error) {
	switch rhs {
	case "Y":
		return Ann{Kind: Allow}, nil
	case "N":
		return Ann{Kind: Deny}, nil
	}
	if strings.HasPrefix(rhs, "[") && strings.HasSuffix(rhs, "]") {
		q, err := xpath.ParseQual(rhs[1 : len(rhs)-1])
		if err != nil {
			return Ann{}, err
		}
		return Ann{Kind: Cond, Cond: q}, nil
	}
	return Ann{}, fmt.Errorf("annotation must be Y, N, or [qualifier]; got %q", rhs)
}

func stripComment(line string) string {
	if i := strings.IndexByte(line, '#'); i >= 0 {
		line = line[:i]
	}
	return strings.TrimSpace(line)
}

// Accessibility computes the paper's node accessibility for every node of
// the document with respect to the (variable-free) specification. The
// result maps each node — elements and text — to its accessibility.
func Accessibility(s *Spec, doc *xmltree.Document) map[*xmltree.Node]bool {
	acc := make(map[*xmltree.Node]bool, doc.Size())
	// The root is annotated Y by default.
	acc[doc.Root] = true
	var walk func(v *xmltree.Node, parentAcc, ancOK bool)
	walk = func(v *xmltree.Node, parentAcc, ancOK bool) {
		for _, c := range v.Children {
			a, explicit := s.Ann(v.Label, childKey(c))
			childAcc := parentAcc
			childAncOK := ancOK
			if explicit {
				switch a.Kind {
				case Deny:
					childAcc = false
				case Allow:
					childAcc = ancOK
				case Cond:
					holds := xpath.EvalQual(a.Cond, c)
					childAcc = holds && ancOK
					childAncOK = ancOK && holds
				}
			}
			acc[c] = childAcc
			walk(c, childAcc, childAncOK)
		}
	}
	walk(doc.Root, true, true)
	return acc
}

// AccessibleNodes returns the accessible nodes of the document in
// document order.
func AccessibleNodes(s *Spec, doc *xmltree.Document) []*xmltree.Node {
	acc := Accessibility(s, doc)
	var out []*xmltree.Node
	doc.Root.Walk(func(n *xmltree.Node) bool {
		if acc[n] {
			out = append(out, n)
		}
		return true
	})
	return out
}

func childKey(c *xmltree.Node) string {
	if c.Kind == xmltree.TextNode {
		return dtd.TextLabel
	}
	return c.Label
}

// AccSet records which accessibilities an element type can take across
// the (context-sensitive) positions it occurs in.
type AccSet struct {
	CanBeAccessible   bool
	CanBeInaccessible bool
}

// PossibleAccessibility propagates accessibility possibilities through
// the DTD graph: the root is accessible; an explicitly annotated edge
// forces the child's accessibility (a conditional contributes both),
// an unannotated edge inherits the parent's possibilities. The analysis
// also tracks whether a type can sit below a conditional edge: per
// Section 3.2, even an explicit Y is inaccessible when an ancestor's
// qualifier fails, so Y below a possible conditional context contributes
// CanBeInaccessible too. The result is a sound static over-approximation
// of the per-node accessibility, used by the linter and the static
// safe-query analysis.
func PossibleAccessibility(s *Spec) map[string]AccSet {
	type state struct {
		acc  AccSet
		cond bool // some root path to this type crosses a conditional edge
	}
	st := make(map[string]state, s.D.Len())
	st[s.D.Root()] = state{acc: AccSet{CanBeAccessible: true}}
	seen := map[string]bool{s.D.Root(): true}
	for changed := true; changed; {
		changed = false
		for _, parent := range s.D.Types() {
			p, ok := st[parent]
			if !ok || !seen[parent] {
				continue
			}
			for _, child := range s.D.Children(parent) {
				var c state
				c.cond = p.cond
				if a, annOk := s.Ann(parent, child); annOk {
					switch a.Kind {
					case Allow:
						c.acc.CanBeAccessible = true
						// An ancestor qualifier can still fail.
						c.acc.CanBeInaccessible = p.cond
					case Deny:
						c.acc.CanBeInaccessible = true
					case Cond:
						c.acc = AccSet{CanBeAccessible: true, CanBeInaccessible: true}
						c.cond = true
					}
				} else {
					c.acc = p.acc
				}
				merged := st[child]
				next := state{
					acc: AccSet{
						CanBeAccessible:   merged.acc.CanBeAccessible || c.acc.CanBeAccessible,
						CanBeInaccessible: merged.acc.CanBeInaccessible || c.acc.CanBeInaccessible,
					},
					cond: merged.cond || c.cond,
				}
				if next != merged || !seen[child] {
					st[child] = next
					seen[child] = true
					changed = true
				}
			}
		}
	}
	poss := make(map[string]AccSet, len(st))
	for t, v := range st {
		poss[t] = v.acc
	}
	return poss
}

// AttrAccessible reports whether one attribute of an element type is
// exposed when the element itself is accessible: explicit N hides it,
// everything else inherits the element's accessibility. An attribute can
// never be more accessible than its element (it has no standalone
// existence in the tree).
func (s *Spec) AttrAccessible(elem, attr string) bool {
	a, ok := s.Ann(elem, "@"+attr)
	return !ok || a.Kind != Deny
}

// AttrAccessibility computes per-node attribute accessibility over a
// document: for each element node, the set of its attributes that the
// specification exposes. Attributes of inaccessible elements are always
// inaccessible.
func AttrAccessibility(s *Spec, doc *xmltree.Document) map[*xmltree.Node]map[string]bool {
	acc := Accessibility(s, doc)
	out := make(map[*xmltree.Node]map[string]bool)
	doc.Root.Walk(func(n *xmltree.Node) bool {
		if n.Kind != xmltree.ElementNode || len(n.Attrs) == 0 {
			return true
		}
		m := make(map[string]bool, len(n.Attrs))
		for name := range n.Attrs {
			m[name] = acc[n] && s.AttrAccessible(n.Label, name)
		}
		out[n] = m
		return true
	})
	return out
}
