package access

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/dtd"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

const hospitalDTD = `
root hospital
hospital -> dept*
dept -> clinicalTrial, patientInfo, staffInfo
clinicalTrial -> patientInfo
patientInfo -> patient*
patient -> name, wardNo, treatment
treatment -> trial + regular
trial -> bill
regular -> bill, medication
staffInfo -> staff*
staff -> doctor + nurse
doctor -> name
nurse -> name
name -> #PCDATA
wardNo -> #PCDATA
bill -> #PCDATA
medication -> #PCDATA
`

// nurseSpec is the paper's Example 3.1 specification.
const nurseSpec = `
ann(hospital, dept) = [*/patient/wardNo = $wardNo]
ann(dept, clinicalTrial) = N
ann(clinicalTrial, patientInfo) = Y
ann(treatment, trial) = N
ann(treatment, regular) = N
ann(trial, bill) = Y
ann(regular, bill) = Y
ann(regular, medication) = Y
`

func nurse(t *testing.T) (*dtd.DTD, *Spec) {
	t.Helper()
	d := dtd.MustParse(hospitalDTD)
	s, err := ParseAnnotations(d, nurseSpec)
	if err != nil {
		t.Fatalf("ParseAnnotations: %v", err)
	}
	return d, s
}

func TestParseAnnotations(t *testing.T) {
	_, s := nurse(t)
	if got := len(s.Edges()); got != 8 {
		t.Fatalf("edges = %d, want 8", got)
	}
	a, ok := s.Ann("dept", "clinicalTrial")
	if !ok || a.Kind != Deny {
		t.Errorf("ann(dept, clinicalTrial) = %v, %v", a, ok)
	}
	a, ok = s.Ann("hospital", "dept")
	if !ok || a.Kind != Cond {
		t.Fatalf("ann(hospital, dept) = %v, %v", a, ok)
	}
	if _, ok := s.Ann("dept", "patientInfo"); ok {
		t.Errorf("unannotated edge reported explicit")
	}
	if got := s.Vars(); !reflect.DeepEqual(got, []string{"wardNo"}) {
		t.Errorf("Vars = %v", got)
	}
}

func TestParseAnnotationErrors(t *testing.T) {
	d := dtd.MustParse(hospitalDTD)
	cases := []string{
		"ann(hospital, dept) = MAYBE",
		"ann(hospital, patient) = Y",     // not an edge
		"ann(nosuch, dept) = Y",          // unknown parent
		"ann(hospital, dept) Y",          // missing '='
		"annotate(hospital, dept) = Y",   // wrong keyword
		"ann(hospital) = Y",              // one name
		"ann(hospital, dept) = [***bad]", // bad qualifier
		"ann(hospital, str) = N",         // hospital has no text content
	}
	for _, src := range cases {
		if _, err := ParseAnnotations(d, src); err == nil {
			t.Errorf("ParseAnnotations(%q) succeeded, want error", src)
		}
	}
}

func TestSpecStringRoundTrip(t *testing.T) {
	d, s := nurse(t)
	s2, err := ParseAnnotations(d, s.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if s2.String() != s.String() {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", s.String(), s2.String())
	}
}

func TestTextAnnotation(t *testing.T) {
	d := dtd.MustParse("root a\na -> b\nb -> #PCDATA\n")
	s, err := ParseAnnotations(d, "ann(b, str) = N\n")
	if err != nil {
		t.Fatalf("ParseAnnotations: %v", err)
	}
	if a, ok := s.Ann("b", dtd.TextLabel); !ok || a.Kind != Deny {
		t.Errorf("text annotation = %v, %v", a, ok)
	}
	if !strings.Contains(s.String(), "ann(b, str) = N") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestBind(t *testing.T) {
	_, s := nurse(t)
	bound, err := s.Bind(map[string]string{"wardNo": "6"})
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if got := bound.Vars(); len(got) != 0 {
		t.Errorf("bound spec still has vars %v", got)
	}
	a, _ := bound.Ann("hospital", "dept")
	if !strings.Contains(xpath.QualString(a.Cond), `"6"`) {
		t.Errorf("bound qualifier = %s", xpath.QualString(a.Cond))
	}
	if _, err := s.Bind(nil); err == nil {
		t.Errorf("Bind without bindings succeeded")
	}
}

// hospitalInstance builds a two-department instance: ward 6 (with a
// clinical trial patient) and ward 7.
func hospitalInstance() *xmltree.Document {
	e, tx := xmltree.E, xmltree.T
	return xmltree.NewDocument(e("hospital",
		e("dept", // ward 6
			e("clinicalTrial",
				e("patientInfo",
					e("patient", tx("name", "Carol"), tx("wardNo", "6"),
						e("treatment", e("trial", tx("bill", "900")))))),
			e("patientInfo",
				e("patient", tx("name", "Alice"), tx("wardNo", "6"),
					e("treatment", e("regular", tx("bill", "100"), tx("medication", "aspirin"))))),
			e("staffInfo", e("staff", e("nurse", tx("name", "Nina")))),
		),
		e("dept", // ward 7
			e("clinicalTrial", e("patientInfo")),
			e("patientInfo",
				e("patient", tx("name", "Bob"), tx("wardNo", "7"),
					e("treatment", e("regular", tx("bill", "70"), tx("medication", "ibuprofen"))))),
			e("staffInfo", e("staff", e("doctor", tx("name", "Dan")))),
		),
	))
}

func find(doc *xmltree.Document, query string) []*xmltree.Node {
	return xpath.EvalDoc(xpath.MustParse(query), doc)
}

func TestAccessibilityNurse(t *testing.T) {
	_, s := nurse(t)
	bound, err := s.Bind(map[string]string{"wardNo": "6"})
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	doc := hospitalInstance()
	acc := Accessibility(bound, doc)

	if !acc[doc.Root] {
		t.Errorf("root inaccessible")
	}
	depts := find(doc, "dept")
	if len(depts) != 2 {
		t.Fatalf("depts = %d", len(depts))
	}
	if !acc[depts[0]] {
		t.Errorf("ward-6 dept inaccessible")
	}
	if acc[depts[1]] {
		t.Errorf("ward-7 dept accessible")
	}

	// clinicalTrial is denied, but its patientInfo is explicitly allowed.
	ct := find(doc, "dept/clinicalTrial")[0]
	if acc[ct] {
		t.Errorf("clinicalTrial accessible")
	}
	ctPI := find(doc, "dept/clinicalTrial/patientInfo")[0]
	if !acc[ctPI] {
		t.Errorf("patientInfo under clinicalTrial inaccessible (explicit Y override)")
	}

	// Patients inherit accessibility; Carol (trial, ward 6) is accessible
	// through the explicit Y, Alice via inheritance, Bob blocked by the
	// ward qualifier on his dept.
	for _, tc := range []struct {
		name string
		want bool
	}{{"Carol", true}, {"Alice", true}, {"Bob", false}} {
		nodes := find(doc, "//patient[name = \""+tc.name+"\"]")
		if len(nodes) != 1 {
			t.Fatalf("patient %s: found %d", tc.name, len(nodes))
		}
		if acc[nodes[0]] != tc.want {
			t.Errorf("patient %s accessible = %v, want %v", tc.name, acc[nodes[0]], tc.want)
		}
	}

	// treatment is inherited-accessible for ward-6 patients; trial and
	// regular are denied; bill and medication are explicitly allowed.
	aliceTreatment := find(doc, "//patient[name = \"Alice\"]/treatment")[0]
	if !acc[aliceTreatment] {
		t.Errorf("Alice's treatment inaccessible")
	}
	aliceRegular := aliceTreatment.Children[0]
	if acc[aliceRegular] {
		t.Errorf("Alice's regular accessible")
	}
	for _, c := range aliceRegular.Children {
		if !acc[c] {
			t.Errorf("Alice's %s inaccessible", c.Label)
		}
	}

	// Bob's bill: explicit Y, but the ward qualifier on his dept ancestor
	// fails, so it must stay inaccessible (ancestor-qualifier condition).
	bobBill := find(doc, "//patient[name = \"Bob\"]/treatment/regular/bill")[0]
	if acc[bobBill] {
		t.Errorf("Bob's bill accessible despite failing ward qualifier upstream")
	}

	// Text nodes inherit from their element.
	carolNameText := find(doc, "//patient[name = \"Carol\"]/name")[0].Children[0]
	if !acc[carolNameText] {
		t.Errorf("Carol's name text inaccessible")
	}
}

func TestAccessibilityDefaultAllAccessible(t *testing.T) {
	d := dtd.MustParse(hospitalDTD)
	s := NewSpec(d)
	doc := hospitalInstance()
	acc := Accessibility(s, doc)
	count := 0
	doc.Root.Walk(func(n *xmltree.Node) bool {
		if !acc[n] {
			t.Errorf("node %s inaccessible under empty spec", n.Path())
		}
		count++
		return true
	})
	if count != doc.Size() {
		t.Errorf("walked %d nodes, size %d", count, doc.Size())
	}
}

func TestAccessibilityDenySubtreeInheritance(t *testing.T) {
	d := dtd.MustParse(hospitalDTD)
	s := MustParseAnnotations(d, "ann(dept, patientInfo) = N\n")
	doc := hospitalInstance()
	acc := Accessibility(s, doc)
	// Direct patientInfo children of dept and everything below are
	// inaccessible; the one under clinicalTrial is unaffected.
	for _, pi := range find(doc, "dept/patientInfo") {
		pi.Walk(func(n *xmltree.Node) bool {
			if acc[n] {
				t.Errorf("node %s accessible under denied patientInfo", n.Path())
			}
			return true
		})
	}
	for _, pi := range find(doc, "dept/clinicalTrial/patientInfo") {
		if !acc[pi] {
			t.Errorf("clinicalTrial/patientInfo inaccessible")
		}
	}
}

func TestAccessibleNodesOrder(t *testing.T) {
	_, s := nurse(t)
	bound, _ := s.Bind(map[string]string{"wardNo": "6"})
	doc := hospitalInstance()
	nodes := AccessibleNodes(bound, doc)
	if len(nodes) == 0 {
		t.Fatalf("no accessible nodes")
	}
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1].Ord() >= nodes[i].Ord() {
			t.Errorf("accessible nodes out of document order at %d", i)
		}
	}
	if nodes[0] != doc.Root {
		t.Errorf("first accessible node is not the root")
	}
}

func TestConditionalOverridesDeny(t *testing.T) {
	// A conditional annotation under a denied parent: condition holds →
	// accessible (override), condition fails → inaccessible.
	d := dtd.MustParse(`
root r
r -> a
a -> b
b -> flag, c
flag -> #PCDATA
c -> #PCDATA
`)
	s := MustParseAnnotations(d, `
ann(r, a) = N
ann(a, b) = [flag = "on"]
`)
	on := xmltree.NewDocument(xmltree.E("r", xmltree.E("a", xmltree.E("b", xmltree.T("flag", "on"), xmltree.T("c", "data")))))
	off := xmltree.NewDocument(xmltree.E("r", xmltree.E("a", xmltree.E("b", xmltree.T("flag", "off"), xmltree.T("c", "data")))))
	accOn := Accessibility(s, on)
	accOff := Accessibility(s, off)
	bOn := find(on, "a/b")[0]
	bOff := find(off, "a/b")[0]
	if !accOn[bOn] {
		t.Errorf("b with flag=on inaccessible")
	}
	if accOff[bOff] {
		t.Errorf("b with flag=off accessible")
	}
	// c inherits from b in both cases.
	if !accOn[bOn.Children[1]] || accOff[bOff.Children[1]] {
		t.Errorf("c inheritance wrong")
	}
}

func TestPossibleAccessibility(t *testing.T) {
	d := dtd.MustParse(hospitalDTD)
	s := MustParseAnnotations(d, nurseSpec)
	poss := PossibleAccessibility(s)
	// The root is always accessible.
	if got := poss["hospital"]; !got.CanBeAccessible || got.CanBeInaccessible {
		t.Errorf("hospital = %+v", got)
	}
	// dept sits below a conditional edge: both possibilities.
	if got := poss["dept"]; !got.CanBeAccessible || !got.CanBeInaccessible {
		t.Errorf("dept = %+v", got)
	}
	// bill has explicit Y annotations, but the ancestor ward qualifier can
	// fail — it must remain possibly-inaccessible (the Section 3.2
	// ancestor-qualifier condition).
	if got := poss["bill"]; !got.CanBeAccessible || !got.CanBeInaccessible {
		t.Errorf("bill = %+v", got)
	}
	// trial is denied everywhere.
	if got := poss["trial"]; got.CanBeAccessible || !got.CanBeInaccessible {
		t.Errorf("trial = %+v", got)
	}

	// Without the ward qualifier, an explicit Y is firmly accessible.
	s2 := MustParseAnnotations(d, `
ann(dept, clinicalTrial) = N
ann(clinicalTrial, patientInfo) = Y
`)
	poss2 := PossibleAccessibility(s2)
	if got := poss2["patientInfo"]; !got.CanBeAccessible || got.CanBeInaccessible {
		t.Errorf("patientInfo without conditionals = %+v", got)
	}
	if got := poss2["clinicalTrial"]; got.CanBeAccessible || !got.CanBeInaccessible {
		t.Errorf("clinicalTrial = %+v", got)
	}
	// patient is reachable both through the accessible dept path and the
	// re-exposed clinicalTrial path: accessible either way.
	if got := poss2["patient"]; !got.CanBeAccessible || got.CanBeInaccessible {
		t.Errorf("patient = %+v", got)
	}
}
