package access

import (
	"testing"

	"repro/internal/dtd"
	"repro/internal/xmltree"
)

const attrDTD = `
root clinic
clinic -> patient*
patient -> name
name -> #PCDATA
attlist patient id!, ssn
`

func TestAttrAccessible(t *testing.T) {
	d := dtd.MustParse(attrDTD)
	s := MustParseAnnotations(d, "ann(patient, @ssn) = N\n")
	if s.AttrAccessible("patient", "ssn") {
		t.Errorf("denied attribute reported accessible")
	}
	if !s.AttrAccessible("patient", "id") {
		t.Errorf("unannotated attribute reported inaccessible")
	}
}

func TestAttrAccessibility(t *testing.T) {
	d := dtd.MustParse(attrDTD)
	s := MustParseAnnotations(d, "ann(patient, @ssn) = N\nann(clinic, patient) = [name = \"Alice\"]\n")
	a := xmltree.A
	doc := xmltree.NewDocument(xmltree.E("clinic",
		a(xmltree.E("patient", xmltree.T("name", "Alice")), "id", "p1", "ssn", "s1"),
		a(xmltree.E("patient", xmltree.T("name", "Bob")), "id", "p2", "ssn", "s2"),
	))
	attrs := AttrAccessibility(s, doc)
	alice := doc.Root.Children[0]
	bob := doc.Root.Children[1]
	if !attrs[alice]["id"] {
		t.Errorf("Alice's id inaccessible")
	}
	if attrs[alice]["ssn"] {
		t.Errorf("Alice's ssn accessible despite denial")
	}
	// Bob's element fails the condition, so even his id is inaccessible.
	if attrs[bob]["id"] || attrs[bob]["ssn"] {
		t.Errorf("attributes of an inaccessible element reported accessible: %v", attrs[bob])
	}
}

func TestSpecStringAttrRoundTrip(t *testing.T) {
	d := dtd.MustParse(attrDTD)
	s := MustParseAnnotations(d, "ann(patient, @ssn) = N\n")
	s2, err := ParseAnnotations(d, s.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if s2.String() != s.String() {
		t.Errorf("attr annotation round trip mismatch: %q vs %q", s.String(), s2.String())
	}
}
