// Package serve is the HTTP front-end of the query-serving stack: it
// exposes a policy.Registry over one document as a small, bounded
// service. Every request runs under a context deadline (the evaluators
// poll it cooperatively, so a runaway query is cut off mid-descent), an
// admission-control semaphore caps the number of in-flight evaluations
// (excess load is refused with 429 instead of queueing until collapse),
// and /statsz reports the full counter stack — per-class engine and
// plan-cache counters from the layers below plus the server's own
// request, latency, and cancellation counters.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/latency"
	"repro/internal/policy"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Defaults for the zero Config.
const (
	DefaultTimeout     = 5 * time.Second
	DefaultMaxTimeout  = 30 * time.Second
	DefaultMaxInFlight = 64
)

// Config tunes the server. The zero value gives the defaults above.
type Config struct {
	// DefaultTimeout bounds a request that does not pass ?timeout=.
	// Negative means no per-request default; the hard MaxTimeout cap
	// still applies, so no query ever runs unbounded.
	DefaultTimeout time.Duration
	// MaxTimeout clamps every request's deadline, including explicit
	// ?timeout= values.
	MaxTimeout time.Duration
	// MaxInFlight bounds concurrently evaluating queries; requests
	// beyond it are refused with 429 Too Many Requests.
	MaxInFlight int
}

func (c Config) defaultTimeout() time.Duration {
	switch {
	case c.DefaultTimeout > 0:
		return c.DefaultTimeout
	case c.DefaultTimeout < 0:
		return 0
	}
	return DefaultTimeout
}

func (c Config) maxTimeout() time.Duration {
	if c.MaxTimeout > 0 {
		return c.MaxTimeout
	}
	return DefaultMaxTimeout
}

func (c Config) maxInFlight() int {
	if c.MaxInFlight > 0 {
		return c.MaxInFlight
	}
	return DefaultMaxInFlight
}

// Server serves rewritten-query requests for one document and one
// policy registry. It is safe for concurrent use.
type Server struct {
	reg *policy.Registry
	doc *xmltree.Document
	cfg Config
	sem chan struct{}

	requests       atomic.Uint64
	ok             atomic.Uint64
	badRequests    atomic.Uint64
	internalErrors atomic.Uint64
	rejected       atomic.Uint64
	timeouts       atomic.Uint64
	clientCancels  atomic.Uint64
	inFlight       atomic.Int64
	lat            latency.Digest
	started        time.Time

	// query answers one admitted request; it defaults to the registry's
	// QueryCtx and exists so tests can inject evaluation failures.
	query func(ctx context.Context, class string, params map[string]string, doc *xmltree.Document, q string) ([]*xmltree.Node, error)

	// testHook, when set, runs while the request holds its admission
	// slot, before evaluation. Tests use it to pin requests in flight.
	testHook func()
}

// New builds a server over a registry and the document it answers
// queries against. The document must already conform to the registry's
// DTD; frontends validate at load time.
func New(reg *policy.Registry, doc *xmltree.Document, cfg Config) *Server {
	return &Server{
		reg:     reg,
		doc:     doc,
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.maxInFlight()),
		started: time.Now(),
		query:   reg.QueryCtx,
	}
}

// Handler returns the server's route table: /query, /statsz, /healthz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/statsz", s.handleStatsz)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// handleQuery answers one view query. Parameters: class (required), q
// (required), param=name=value (repeatable), timeout (Go duration,
// clamped to Config.MaxTimeout).
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if err := r.ParseForm(); err != nil {
		s.badRequest(w, fmt.Errorf("malformed form: %v", err))
		return
	}
	class := r.Form.Get("class")
	query := r.Form.Get("q")
	if class == "" || query == "" {
		s.badRequest(w, errors.New("need class= and q= parameters"))
		return
	}
	params, err := parseParams(r.Form["param"])
	if err != nil {
		s.badRequest(w, err)
		return
	}
	timeout := s.cfg.defaultTimeout()
	if v := r.Form.Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			s.badRequest(w, fmt.Errorf("bad timeout %q (want a positive Go duration like 250ms)", v))
			return
		}
		timeout = d
	}
	if max := s.cfg.maxTimeout(); timeout == 0 || timeout > max {
		timeout = max
	}

	// Admission control: refuse instead of queueing. A saturated server
	// answering 429 immediately keeps latency bounded for the queries it
	// did admit; clients retry with backoff.
	select {
	case s.sem <- struct{}{}:
	default:
		s.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "server saturated: too many in-flight queries", http.StatusTooManyRequests)
		return
	}
	s.inFlight.Add(1)
	defer func() {
		s.inFlight.Add(-1)
		<-s.sem
	}()
	if s.testHook != nil {
		s.testHook()
	}

	ctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	start := time.Now()
	nodes, err := s.query(ctx, class, params, s.doc, query)
	s.lat.Observe(time.Since(start))
	switch {
	case err == nil:
		s.ok.Add(1)
		writeResult(w, nodes)
	case errors.Is(err, context.DeadlineExceeded):
		s.timeouts.Add(1)
		http.Error(w, fmt.Sprintf("query exceeded its %v deadline", timeout), http.StatusGatewayTimeout)
	case errors.Is(err, context.Canceled):
		// The client went away; nothing useful can be written, but the
		// status keeps the access log honest (499 is the de-facto
		// client-closed-request code).
		s.clientCancels.Add(1)
		w.WriteHeader(499)
	case clientFault(err):
		s.badRequest(w, err)
	default:
		// The request was well-formed; the failure is the server's
		// (derivation, rewriting, or evaluation broke). Reporting it as
		// 400 would tell the client to stop retrying a query that is
		// fine, and would hide server bugs from the error budget.
		s.internalErrors.Add(1)
		http.Error(w, fmt.Sprintf("internal error answering query: %v", err), http.StatusInternalServerError)
	}
}

// clientFault reports whether a Registry.QueryCtx error is the client's
// fault: a class the registry does not define, query syntax the parser
// rejected, or a $parameter the request failed to bind. Everything else
// — view derivation, rewriting, or evaluation failing on a well-formed
// request — is the server's fault and must surface as a 5xx.
func clientFault(err error) bool {
	var parseErr *xpath.ParseError
	var bindErr *policy.BindingError
	return errors.Is(err, policy.ErrUnknownClass) ||
		errors.Is(err, core.ErrUnboundVars) ||
		errors.As(err, &parseErr) ||
		errors.As(err, &bindErr)
}

func (s *Server) badRequest(w http.ResponseWriter, err error) {
	s.badRequests.Add(1)
	http.Error(w, err.Error(), http.StatusBadRequest)
}

// writeResult wraps the selected nodes in a <result> envelope so the
// response body is a single well-formed XML document.
func writeResult(w http.ResponseWriter, nodes []*xmltree.Node) {
	w.Header().Set("Content-Type", "application/xml; charset=utf-8")
	var b strings.Builder
	fmt.Fprintf(&b, "<result count=\"%d\">\n", len(nodes))
	for _, n := range nodes {
		b.WriteString(n.String())
	}
	b.WriteString("</result>\n")
	w.Write([]byte(b.String()))
}

func parseParams(kvs []string) (map[string]string, error) {
	if len(kvs) == 0 {
		return nil, nil
	}
	params := make(map[string]string, len(kvs))
	for _, kv := range kvs {
		name, value, ok := strings.Cut(kv, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad param %q (want name=value)", kv)
		}
		params[name] = value
	}
	return params, nil
}

// LatencyStats is the /statsz latency section: a count/sum pair, the
// exact observed maximum, histogram-derived percentile estimates, and
// the full bucket histogram (the geometric ladder of latency.Bounds,
// 100µs–10s plus +inf; each observation lands in exactly one bucket, so
// the bucket counts sum to count).
type LatencyStats struct {
	Count     uint64 `json:"count"`
	SumMicros uint64 `json:"sum_us"`
	MaxMicros uint64 `json:"max_us"`
	// P50/P95/P99Micros are estimated from the histogram by linear
	// interpolation within the rank's bucket (clamped to the observed
	// max), so they are honest to within one bucket rung.
	P50Micros float64           `json:"p50_us"`
	P95Micros float64           `json:"p95_us"`
	P99Micros float64           `json:"p99_us"`
	Buckets   map[string]uint64 `json:"buckets"`
}

// ServerStats is the server section of /statsz.
type ServerStats struct {
	Requests       uint64       `json:"requests"`
	OK             uint64       `json:"ok"`
	BadRequests    uint64       `json:"bad_requests"`
	InternalErrors uint64       `json:"internal_errors"`
	Rejected       uint64       `json:"rejected"`
	Timeouts       uint64       `json:"timeouts"`
	ClientCancels  uint64       `json:"client_cancels"`
	InFlight       int64        `json:"in_flight"`
	MaxInFlight    int          `json:"max_in_flight"`
	UptimeSeconds  float64      `json:"uptime_seconds"`
	DocumentNodes  int          `json:"document_nodes"`
	DocumentHeight int          `json:"document_height"`
	Latency        LatencyStats `json:"latency"`
}

// Statsz is the full /statsz document: the server's own counters plus
// the per-class rollup from the policy registry (engine caches, and for
// every cached engine its plan-cache and evaluation counters).
type Statsz struct {
	Server  ServerStats         `json:"server"`
	Classes []policy.ClassStats `json:"classes"`
}

// Stats snapshots the server and registry counters.
func (s *Server) Stats() Statsz {
	lat := s.lat.Snapshot()
	return Statsz{
		Server: ServerStats{
			Requests:       s.requests.Load(),
			OK:             s.ok.Load(),
			BadRequests:    s.badRequests.Load(),
			InternalErrors: s.internalErrors.Load(),
			Rejected:       s.rejected.Load(),
			Timeouts:       s.timeouts.Load(),
			ClientCancels:  s.clientCancels.Load(),
			InFlight:       s.inFlight.Load(),
			MaxInFlight:    s.cfg.maxInFlight(),
			UptimeSeconds:  time.Since(s.started).Seconds(),
			DocumentNodes:  s.doc.Size(),
			DocumentHeight: s.doc.Height(),
			Latency: LatencyStats{
				Count:     lat.Count,
				SumMicros: lat.SumUs,
				MaxMicros: lat.MaxUs,
				P50Micros: lat.QuantileUs(0.50),
				P95Micros: lat.QuantileUs(0.95),
				P99Micros: lat.QuantileUs(0.99),
				Buckets:   lat.BucketMap(),
			},
		},
		Classes: s.reg.Stats(),
	}
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Stats())
}
