// Package serve is the HTTP front-end of the query-serving stack: it
// exposes a policy.Registry over one document as a small, bounded
// service. Every request runs under a context deadline (the evaluators
// poll it cooperatively, so a runaway query is cut off mid-descent), an
// admission-control semaphore caps the number of in-flight evaluations
// (excess load is refused with 429 instead of queueing until collapse),
// and /statsz reports the full counter stack — per-class engine and
// plan-cache counters from the layers below plus the server's own
// request, latency, and cancellation counters.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/policy"
	"repro/internal/xmltree"
)

// Defaults for the zero Config.
const (
	DefaultTimeout     = 5 * time.Second
	DefaultMaxTimeout  = 30 * time.Second
	DefaultMaxInFlight = 64
)

// Config tunes the server. The zero value gives the defaults above.
type Config struct {
	// DefaultTimeout bounds a request that does not pass ?timeout=.
	// Negative means no per-request default; the hard MaxTimeout cap
	// still applies, so no query ever runs unbounded.
	DefaultTimeout time.Duration
	// MaxTimeout clamps every request's deadline, including explicit
	// ?timeout= values.
	MaxTimeout time.Duration
	// MaxInFlight bounds concurrently evaluating queries; requests
	// beyond it are refused with 429 Too Many Requests.
	MaxInFlight int
}

func (c Config) defaultTimeout() time.Duration {
	switch {
	case c.DefaultTimeout > 0:
		return c.DefaultTimeout
	case c.DefaultTimeout < 0:
		return 0
	}
	return DefaultTimeout
}

func (c Config) maxTimeout() time.Duration {
	if c.MaxTimeout > 0 {
		return c.MaxTimeout
	}
	return DefaultMaxTimeout
}

func (c Config) maxInFlight() int {
	if c.MaxInFlight > 0 {
		return c.MaxInFlight
	}
	return DefaultMaxInFlight
}

// Server serves rewritten-query requests for one document and one
// policy registry. It is safe for concurrent use.
type Server struct {
	reg *policy.Registry
	doc *xmltree.Document
	cfg Config
	sem chan struct{}

	requests      atomic.Uint64
	ok            atomic.Uint64
	badRequests   atomic.Uint64
	rejected      atomic.Uint64
	timeouts      atomic.Uint64
	clientCancels atomic.Uint64
	inFlight      atomic.Int64
	latCount      atomic.Uint64
	latSumMicros  atomic.Uint64
	latMaxMicros  atomic.Uint64
	latBuckets    [len(latencyBounds) + 1]atomic.Uint64
	started       time.Time

	// testHook, when set, runs while the request holds its admission
	// slot, before evaluation. Tests use it to pin requests in flight.
	testHook func()
}

// latencyBounds are the upper bounds (inclusive) of the latency
// histogram buckets; the implicit last bucket is +inf.
var latencyBounds = [...]time.Duration{
	time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond, time.Second,
}

// latencyBucketNames label the histogram buckets in /statsz output.
var latencyBucketNames = [...]string{"le_1ms", "le_10ms", "le_100ms", "le_1s", "inf"}

// New builds a server over a registry and the document it answers
// queries against. The document must already conform to the registry's
// DTD; frontends validate at load time.
func New(reg *policy.Registry, doc *xmltree.Document, cfg Config) *Server {
	return &Server{
		reg:     reg,
		doc:     doc,
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.maxInFlight()),
		started: time.Now(),
	}
}

// Handler returns the server's route table: /query, /statsz, /healthz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/statsz", s.handleStatsz)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// handleQuery answers one view query. Parameters: class (required), q
// (required), param=name=value (repeatable), timeout (Go duration,
// clamped to Config.MaxTimeout).
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if err := r.ParseForm(); err != nil {
		s.badRequest(w, fmt.Errorf("malformed form: %v", err))
		return
	}
	class := r.Form.Get("class")
	query := r.Form.Get("q")
	if class == "" || query == "" {
		s.badRequest(w, errors.New("need class= and q= parameters"))
		return
	}
	params, err := parseParams(r.Form["param"])
	if err != nil {
		s.badRequest(w, err)
		return
	}
	timeout := s.cfg.defaultTimeout()
	if v := r.Form.Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			s.badRequest(w, fmt.Errorf("bad timeout %q (want a positive Go duration like 250ms)", v))
			return
		}
		timeout = d
	}
	if max := s.cfg.maxTimeout(); timeout == 0 || timeout > max {
		timeout = max
	}

	// Admission control: refuse instead of queueing. A saturated server
	// answering 429 immediately keeps latency bounded for the queries it
	// did admit; clients retry with backoff.
	select {
	case s.sem <- struct{}{}:
	default:
		s.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "server saturated: too many in-flight queries", http.StatusTooManyRequests)
		return
	}
	s.inFlight.Add(1)
	defer func() {
		s.inFlight.Add(-1)
		<-s.sem
	}()
	if s.testHook != nil {
		s.testHook()
	}

	ctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	start := time.Now()
	nodes, err := s.reg.QueryCtx(ctx, class, params, s.doc, query)
	s.observeLatency(time.Since(start))
	switch {
	case err == nil:
		s.ok.Add(1)
		writeResult(w, nodes)
	case errors.Is(err, context.DeadlineExceeded):
		s.timeouts.Add(1)
		http.Error(w, fmt.Sprintf("query exceeded its %v deadline", timeout), http.StatusGatewayTimeout)
	case errors.Is(err, context.Canceled):
		// The client went away; nothing useful can be written, but the
		// status keeps the access log honest (499 is the de-facto
		// client-closed-request code).
		s.clientCancels.Add(1)
		w.WriteHeader(499)
	default:
		s.badRequest(w, err)
	}
}

func (s *Server) badRequest(w http.ResponseWriter, err error) {
	s.badRequests.Add(1)
	http.Error(w, err.Error(), http.StatusBadRequest)
}

// writeResult wraps the selected nodes in a <result> envelope so the
// response body is a single well-formed XML document.
func writeResult(w http.ResponseWriter, nodes []*xmltree.Node) {
	w.Header().Set("Content-Type", "application/xml; charset=utf-8")
	var b strings.Builder
	fmt.Fprintf(&b, "<result count=\"%d\">\n", len(nodes))
	for _, n := range nodes {
		b.WriteString(n.String())
	}
	b.WriteString("</result>\n")
	w.Write([]byte(b.String()))
}

func parseParams(kvs []string) (map[string]string, error) {
	if len(kvs) == 0 {
		return nil, nil
	}
	params := make(map[string]string, len(kvs))
	for _, kv := range kvs {
		name, value, ok := strings.Cut(kv, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad param %q (want name=value)", kv)
		}
		params[name] = value
	}
	return params, nil
}

func (s *Server) observeLatency(d time.Duration) {
	us := uint64(d.Microseconds())
	s.latCount.Add(1)
	s.latSumMicros.Add(us)
	for {
		old := s.latMaxMicros.Load()
		if us <= old || s.latMaxMicros.CompareAndSwap(old, us) {
			break
		}
	}
	for i, bound := range latencyBounds {
		if d <= bound {
			s.latBuckets[i].Add(1)
			return
		}
	}
	s.latBuckets[len(latencyBounds)].Add(1)
}

// LatencyStats is the /statsz latency section: a count/sum pair plus a
// small fixed histogram (bucket upper bounds 1ms, 10ms, 100ms, 1s, +inf;
// each observation lands in exactly one bucket).
type LatencyStats struct {
	Count     uint64            `json:"count"`
	SumMicros uint64            `json:"sum_us"`
	MaxMicros uint64            `json:"max_us"`
	Buckets   map[string]uint64 `json:"buckets"`
}

// ServerStats is the server section of /statsz.
type ServerStats struct {
	Requests       uint64       `json:"requests"`
	OK             uint64       `json:"ok"`
	BadRequests    uint64       `json:"bad_requests"`
	Rejected       uint64       `json:"rejected"`
	Timeouts       uint64       `json:"timeouts"`
	ClientCancels  uint64       `json:"client_cancels"`
	InFlight       int64        `json:"in_flight"`
	MaxInFlight    int          `json:"max_in_flight"`
	UptimeSeconds  float64      `json:"uptime_seconds"`
	DocumentNodes  int          `json:"document_nodes"`
	DocumentHeight int          `json:"document_height"`
	Latency        LatencyStats `json:"latency"`
}

// Statsz is the full /statsz document: the server's own counters plus
// the per-class rollup from the policy registry (engine caches, and for
// every cached engine its plan-cache and evaluation counters).
type Statsz struct {
	Server  ServerStats         `json:"server"`
	Classes []policy.ClassStats `json:"classes"`
}

// Stats snapshots the server and registry counters.
func (s *Server) Stats() Statsz {
	buckets := make(map[string]uint64, len(latencyBucketNames))
	for i, name := range latencyBucketNames {
		buckets[name] = s.latBuckets[i].Load()
	}
	return Statsz{
		Server: ServerStats{
			Requests:       s.requests.Load(),
			OK:             s.ok.Load(),
			BadRequests:    s.badRequests.Load(),
			Rejected:       s.rejected.Load(),
			Timeouts:       s.timeouts.Load(),
			ClientCancels:  s.clientCancels.Load(),
			InFlight:       s.inFlight.Load(),
			MaxInFlight:    s.cfg.maxInFlight(),
			UptimeSeconds:  time.Since(s.started).Seconds(),
			DocumentNodes:  s.doc.Size(),
			DocumentHeight: s.doc.Height(),
			Latency: LatencyStats{
				Count:     s.latCount.Load(),
				SumMicros: s.latSumMicros.Load(),
				MaxMicros: s.latMaxMicros.Load(),
				Buckets:   buckets,
			},
		},
		Classes: s.reg.Stats(),
	}
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Stats())
}
