// Package serve is the HTTP front-end of the query-serving stack: it
// exposes a policy.Registry over one document as a small, bounded
// service. Every request runs under a context deadline (the evaluators
// poll it cooperatively, so a runaway query is cut off mid-descent), an
// admission-control semaphore caps the number of in-flight evaluations
// (excess load is refused with 429 instead of queueing until collapse),
// and the observability surface reports the full counter stack:
//
//	/query    answer one view query
//	/statsz   JSON counters (server + per-class engine/plan caches)
//	/metricsz Prometheus text exposition of the same counters plus
//	          per-phase (rewrite/optimize/eval) latency histograms
//	/queryz   per-fingerprint query statistics (internal/qstats): the
//	          top-K query shapes by cumulative eval time, count, or
//	          answer-cache miss rate
//	/explainz one query, freshly measured per phase, with its trace
//	/tracez   recent sampled request traces (span trees)
//	/healthz  liveness; 503 once graceful drain has begun
//	/debug/pprof/*  the runtime profiler
//
// Every admitted query carries a request ID and an obs.QueryMetrics
// carrier; one request in Config.TraceSampleEvery additionally records
// a span tree into a bounded ring. Requests slower than
// Config.SlowQueryThreshold are logged with their per-phase breakdown —
// as a structured JSONL wide event when Config.EventLog is set (errors
// always, plus one sampled request in Config.EventLogSampleEvery), as a
// plain log line otherwise. Query text in either log is truncated to
// maxLoggedQueryBytes so a pathological query cannot bloat the log.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/anscache"
	"repro/internal/core"
	"repro/internal/eventlog"
	"repro/internal/latency"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/qstats"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Defaults for the zero Config.
const (
	DefaultTimeout       = 5 * time.Second
	DefaultMaxTimeout    = 30 * time.Second
	DefaultMaxInFlight   = 64
	DefaultSlowQuery     = time.Second
	DefaultTraceSampling = 0 // tracing off unless asked for
)

// Config tunes the server. The zero value gives the defaults above.
type Config struct {
	// DefaultTimeout bounds a request that does not pass ?timeout=.
	// Negative means no per-request default; the hard MaxTimeout cap
	// still applies, so no query ever runs unbounded.
	DefaultTimeout time.Duration
	// MaxTimeout clamps every request's deadline, including explicit
	// ?timeout= values.
	MaxTimeout time.Duration
	// MaxInFlight bounds concurrently evaluating queries; requests
	// beyond it are refused with 429 Too Many Requests.
	MaxInFlight int
	// SlowQueryThreshold is the elapsed time above which an admitted
	// query is logged with its per-phase breakdown. 0 means
	// DefaultSlowQuery; negative disables the slow-query log.
	SlowQueryThreshold time.Duration
	// TraceSampleEvery keeps a full span tree for one admitted request
	// in N (0 = tracing off; 1 = trace everything). /explainz always
	// traces regardless.
	TraceSampleEvery int
	// TraceRingSize bounds the ring of recent traces served by /tracez
	// (0 = obs.DefaultTraceRing).
	TraceRingSize int
	// QueryStatsCapacity bounds the per-fingerprint statistics registry
	// behind /queryz (0 = qstats.DefaultCapacity). The registry is
	// always on: its cost is one sharded-map update per answered query.
	QueryStatsCapacity int
	// EventLog, when set, receives one structured JSONL wide event per
	// error and per slow query, plus one sampled request in
	// EventLogSampleEvery. The writer is the caller's: svserve builds it
	// from -eventlog and closes it on shutdown.
	EventLog *eventlog.Writer
	// EventLogSampleEvery samples successful fast requests into the
	// event log: one in N (1 = every request; 0 = errors and slow
	// queries only, which always emit).
	EventLogSampleEvery int
	// Logf is the slow-query log sink used when EventLog is nil; nil
	// means log.Printf.
	Logf func(format string, args ...any)
}

func (c Config) defaultTimeout() time.Duration {
	switch {
	case c.DefaultTimeout > 0:
		return c.DefaultTimeout
	case c.DefaultTimeout < 0:
		return 0
	}
	return DefaultTimeout
}

func (c Config) maxTimeout() time.Duration {
	if c.MaxTimeout > 0 {
		return c.MaxTimeout
	}
	return DefaultMaxTimeout
}

func (c Config) maxInFlight() int {
	if c.MaxInFlight > 0 {
		return c.MaxInFlight
	}
	return DefaultMaxInFlight
}

func (c Config) slowThreshold() time.Duration {
	switch {
	case c.SlowQueryThreshold > 0:
		return c.SlowQueryThreshold
	case c.SlowQueryThreshold < 0:
		return 0
	}
	return DefaultSlowQuery
}

// Phase indices for the per-phase duration digests.
const (
	phaseRewrite = iota
	phaseOptimize
	phaseEval
	numPhases
)

var phaseNames = [numPhases]string{"rewrite", "optimize", "eval"}

// Server serves rewritten-query requests for one document and one
// policy registry. It is safe for concurrent use.
type Server struct {
	reg *policy.Registry
	doc *xmltree.Document
	cfg Config
	sem chan struct{}

	requests       atomic.Uint64
	ok             atomic.Uint64
	badRequests    atomic.Uint64
	internalErrors atomic.Uint64
	rejected       atomic.Uint64
	timeouts       atomic.Uint64
	clientCancels  atomic.Uint64
	inFlight       atomic.Int64
	lat            latency.Digest
	started        time.Time

	// Observability: the request-ID sequence, drain flag, sampled-trace
	// ring, Prometheus registry, and the always-on per-request rollups —
	// per-phase latency digests plus the pipeline/cache/mode counters
	// they are keyed against (see observePipeline for the invariant).
	reqID    atomic.Uint64
	draining atomic.Bool
	tracer   *obs.Tracer
	metrics  *obs.Registry
	// qstats is the per-fingerprint registry behind /queryz. Every
	// answered query is observed strictly after s.pipeline increments,
	// so a /queryz count sum read before sv_pipeline_total can never
	// exceed it (see recordQuery).
	qstats *qstats.Registry

	phases       [numPhases]latency.Digest
	pipeline     atomic.Uint64
	planHits     atomic.Uint64
	planMisses   atomic.Uint64
	engineHits   atomic.Uint64
	engineMisses atomic.Uint64
	// evalCounts is the completed-pipeline eval matrix, indexed
	// [mode][repr] per evalModes/evalReprs — every sv_eval_total series
	// carries both the eval mode and the node-set representation, and
	// the /statsz per-mode counters are row sums of the same atomics.
	evalCounts  [len(evalModes)][len(evalReprs)]atomic.Uint64
	slowQueries atomic.Uint64
	explains    atomic.Uint64

	// query answers one admitted request; it defaults to the registry's
	// QueryCtx and exists so tests can inject evaluation failures.
	query func(ctx context.Context, class string, params map[string]string, doc *xmltree.Document, q string) ([]*xmltree.Node, error)
	// explain answers one /explainz request; defaults to the registry's
	// ExplainCtx.
	explain func(ctx context.Context, class string, params map[string]string, doc *xmltree.Document, q string) (*core.Explain, error)

	// testHook, when set, runs while the request holds its admission
	// slot, before evaluation. Tests use it to pin requests in flight.
	testHook func()
}

// New builds a server over a registry and the document it answers
// queries against. The document must already conform to the registry's
// DTD; frontends validate at load time.
func New(reg *policy.Registry, doc *xmltree.Document, cfg Config) *Server {
	s := &Server{
		reg:     reg,
		doc:     doc,
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.maxInFlight()),
		started: time.Now(),
		query:   reg.QueryCtx,
		explain: reg.ExplainCtx,
		tracer:  obs.NewTracer(cfg.TraceSampleEvery, cfg.TraceRingSize),
		metrics: obs.NewRegistry(),
		qstats:  qstats.New(cfg.QueryStatsCapacity),
	}
	s.registerMetrics()
	return s
}

// registerMetrics wires the server's counters into the Prometheus
// registry. Everything is a read-at-exposition bridge over the same
// atomics /statsz reports — the two endpoints can never double-count or
// disagree.
func (s *Server) registerMetrics() {
	m := s.metrics
	const respHelp = "Query responses by HTTP status code."
	m.CounterFunc("sv_requests_total", "Queries received by /query, admitted or not.", s.requests.Load)
	m.CounterFunc("sv_responses_total", respHelp, s.ok.Load, obs.L("code", "200"))
	m.CounterFunc("sv_responses_total", respHelp, s.badRequests.Load, obs.L("code", "400"))
	m.CounterFunc("sv_responses_total", respHelp, s.rejected.Load, obs.L("code", "429"))
	m.CounterFunc("sv_responses_total", respHelp, s.clientCancels.Load, obs.L("code", "499"))
	m.CounterFunc("sv_responses_total", respHelp, s.internalErrors.Load, obs.L("code", "500"))
	m.CounterFunc("sv_responses_total", respHelp, s.timeouts.Load, obs.L("code", "504"))
	m.CounterFunc("sv_explains_total", "/explainz requests admitted.", s.explains.Load)
	m.CounterFunc("sv_slow_queries_total", "Admitted queries slower than the slow-query threshold.", s.slowQueries.Load)
	m.GaugeFunc("sv_in_flight", "Queries currently holding an admission slot.", func() float64 {
		return float64(s.inFlight.Load())
	})
	m.GaugeFunc("sv_max_in_flight", "Admission-control capacity.", func() float64 {
		return float64(s.cfg.maxInFlight())
	})
	m.GaugeFunc("sv_draining", "1 once graceful drain has begun, else 0.", func() float64 {
		if s.draining.Load() {
			return 1
		}
		return 0
	})
	m.GaugeFunc("sv_uptime_seconds", "Seconds since the server was built.", func() float64 {
		return time.Since(s.started).Seconds()
	})
	m.GaugeFunc("sv_document_nodes", "Nodes in the served document.", func() float64 {
		return float64(s.doc.Size())
	})
	m.GaugeFunc("sv_document_height", "Height of the served document.", func() float64 {
		return float64(s.doc.Height())
	})
	m.HistogramFunc("sv_request_duration_seconds", "End-to-end /query latency (admitted requests).", s.lat.Snapshot)
	const phaseHelp = "Per-phase pipeline latency; a plan-cache hit observes 0 for rewrite and optimize, so every phase's count equals sv_pipeline_total."
	for i := range s.phases {
		m.HistogramFunc("sv_phase_duration_seconds", phaseHelp, s.phases[i].Snapshot, obs.L("phase", phaseNames[i]))
	}
	m.CounterFunc("sv_pipeline_total", "Queries that completed the rewrite-optimize-eval pipeline.", s.pipeline.Load)
	const planHelp = "Plan-cache outcomes for completed pipelines."
	m.CounterFunc("sv_plan_cache_total", planHelp, s.planHits.Load, obs.L("result", "hit"))
	m.CounterFunc("sv_plan_cache_total", planHelp, s.planMisses.Load, obs.L("result", "miss"))
	const engineHelp = "Per-binding engine-cache outcomes for completed pipelines."
	m.CounterFunc("sv_engine_cache_total", engineHelp, s.engineHits.Load, obs.L("result", "hit"))
	m.CounterFunc("sv_engine_cache_total", engineHelp, s.engineMisses.Load, obs.L("result", "miss"))
	const modeHelp = "Completed pipelines by the eval mode actually taken and the node-set representation (repr) evaluation used."
	for mi := range evalModes {
		for ri := range evalReprs {
			m.CounterFunc("sv_eval_total", modeHelp, s.evalCounts[mi][ri].Load,
				obs.L("mode", evalModes[mi]), obs.L("repr", evalReprs[ri]))
		}
	}
	// Semantic answer-cache counters, rolled up over every cached engine
	// like the plan-cache gauges below. All four stay 0 with -anscache
	// off, which promcheck accepts (a counter may be zero, not absent).
	ansSum := func(pick func(anscache.Stats) uint64) func() uint64 {
		return func() uint64 {
			var n uint64
			for _, cs := range s.reg.Stats() {
				for _, b := range cs.Bindings {
					n += pick(b.Engine.AnswerCache)
				}
			}
			return n
		}
	}
	m.CounterFunc("sv_anscache_hits_total", "Answer-cache equal hits: the incoming plan was provably the same query as a cached one.",
		ansSum(func(a anscache.Stats) uint64 { return a.Hits }))
	m.CounterFunc("sv_anscache_containment_hits_total", "Answer-cache containment hits: the answer was filtered from a provably containing cached result.",
		ansSum(func(a anscache.Stats) uint64 { return a.ContainmentHits }))
	m.CounterFunc("sv_anscache_misses_total", "Answer-cache misses: no provably-safe cached entry; the evaluator ran.",
		ansSum(func(a anscache.Stats) uint64 { return a.Misses }))
	m.CounterFunc("sv_anscache_evictions_total", "Answer-cache entries evicted by the LRU bound.",
		ansSum(func(a anscache.Stats) uint64 { return a.Evictions }))
	const rwHelp = "Cached policy engines by rewriting strategy (flat, height-free, unfold)."
	for _, mode := range []string{"flat", "height-free", "unfold"} {
		mode := mode
		m.GaugeFunc("sv_engines_by_rewrite_mode", rwHelp, func() float64 {
			n := 0
			for _, cs := range s.reg.Stats() {
				for _, b := range cs.Bindings {
					if b.RewriteMode == mode {
						n++
					}
				}
			}
			return float64(n)
		}, obs.L("mode", mode))
	}
	m.GaugeFunc("sv_plan_cache_nodes", "Total AST nodes across all cached optimized plans (all classes and bindings) — grows with document height under the unfold oracle, height-independent in height-free mode.", func() float64 {
		n := 0
		for _, cs := range s.reg.Stats() {
			for _, b := range cs.Bindings {
				n += b.Engine.PlanCacheNodes
			}
		}
		return float64(n)
	})
	m.GaugeFunc("sv_plan_cache_distinct_queries", "Distinct query texts across all cached plans; equals total entries exactly when no height-class splitting occurs.", func() float64 {
		n := 0
		for _, cs := range s.reg.Stats() {
			for _, b := range cs.Bindings {
				n += b.Engine.PlanCacheQueries
			}
		}
		return float64(n)
	})
	const traceHelp = "Traces started and kept by the sampler (explain traces included)."
	m.CounterFunc("sv_traces_total", traceHelp, func() uint64 { st, _ := s.tracer.Stats(); return st }, obs.L("state", "started"))
	m.CounterFunc("sv_traces_total", traceHelp, func() uint64 { _, k := s.tracer.Stats(); return k }, obs.L("state", "kept"))
	// Fingerprint-registry health (/queryz): row occupancy against its
	// bound, plus the observation/eviction counters that say whether the
	// top-K is exact (zero evictions) or carries space-saving slack.
	m.GaugeFunc("sv_qstats_fingerprints", "Query fingerprints currently tracked by the /queryz registry.", func() float64 {
		return float64(s.qstats.Stats().Fingerprints)
	})
	m.GaugeFunc("sv_qstats_capacity", "Fingerprint bound of the /queryz registry.", func() float64 {
		return float64(s.qstats.Capacity())
	})
	m.CounterFunc("sv_qstats_observations_total", "Answered queries folded into the fingerprint registry.", func() uint64 {
		return s.qstats.Stats().Observations
	})
	m.CounterFunc("sv_qstats_evictions_total", "Space-saving evictions in the fingerprint registry (nonzero means some rows carry a count_slack bound).", func() uint64 {
		return s.qstats.Stats().Evictions
	})
	const evHelp = "Structured wide-event log activity; both 0 when -eventlog is off."
	m.CounterFunc("sv_eventlog_events_total", evHelp, func() uint64 {
		if s.cfg.EventLog == nil {
			return 0
		}
		ev, _ := s.cfg.EventLog.Stats()
		return ev
	})
	m.CounterFunc("sv_eventlog_rotations_total", evHelp, func() uint64 {
		if s.cfg.EventLog == nil {
			return 0
		}
		_, rot := s.cfg.EventLog.Stats()
		return rot
	})
}

// Metrics returns the server's Prometheus registry (the /metricsz
// content), so embedders can add their own series.
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// Tracer returns the server's trace sampler, so embedders and tests can
// adjust the sampling knob at runtime.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// BeginDrain flips /healthz to 503 so load balancers stop routing new
// work here while in-flight queries finish. The HTTP listener shutdown
// itself is the caller's job (http.Server.Shutdown); this only
// publishes the intent. Idempotent.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Handler returns the server's route table; see the package comment for
// the endpoint inventory.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/statsz", s.handleStatsz)
	mux.HandleFunc("/metricsz", s.handleMetricsz)
	mux.HandleFunc("/queryz", s.handleQueryz)
	mux.HandleFunc("/explainz", s.handleExplainz)
	mux.HandleFunc("/tracez", s.handleTracez)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// queryRequest is one parsed /query or /explainz request.
type queryRequest struct {
	class   string
	query   string
	params  map[string]string
	timeout time.Duration
}

// parseQueryRequest validates the shared request parameters: class
// (required), q (required), param=name=value (repeatable), timeout (Go
// duration, clamped to Config.MaxTimeout).
func (s *Server) parseQueryRequest(r *http.Request) (*queryRequest, error) {
	if err := r.ParseForm(); err != nil {
		return nil, fmt.Errorf("malformed form: %v", err)
	}
	req := &queryRequest{
		class: r.Form.Get("class"),
		query: r.Form.Get("q"),
	}
	if req.class == "" || req.query == "" {
		return nil, errors.New("need class= and q= parameters")
	}
	params, err := parseParams(r.Form["param"])
	if err != nil {
		return nil, err
	}
	req.params = params
	req.timeout = s.cfg.defaultTimeout()
	if v := r.Form.Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("bad timeout %q (want a positive Go duration like 250ms)", v)
		}
		req.timeout = d
	}
	if max := s.cfg.maxTimeout(); req.timeout == 0 || req.timeout > max {
		req.timeout = max
	}
	return req, nil
}

// admit claims an admission slot or answers 429. Callers that get true
// must call release.
func (s *Server) admit(w http.ResponseWriter) bool {
	select {
	case s.sem <- struct{}{}:
	default:
		// Refuse instead of queueing: a saturated server answering 429
		// immediately keeps latency bounded for the queries it did
		// admit; clients retry with backoff.
		s.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "server saturated: too many in-flight queries", http.StatusTooManyRequests)
		return false
	}
	s.inFlight.Add(1)
	return true
}

func (s *Server) release() {
	s.inFlight.Add(-1)
	<-s.sem
}

// requestCtx derives the per-request evaluation context.
func requestCtx(r *http.Request, timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout > 0 {
		return context.WithTimeout(r.Context(), timeout)
	}
	return r.Context(), func() {}
}

// handleQuery answers one view query.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	req, err := s.parseQueryRequest(r)
	if err != nil {
		s.badRequest(w, err)
		return
	}
	if !s.admit(w) {
		return
	}
	defer s.release()
	if s.testHook != nil {
		s.testHook()
	}

	id := s.reqID.Add(1)
	ctx, cancel := requestCtx(r, req.timeout)
	defer cancel()

	// Always-on per-request accounting; additionally a span tree for
	// one request in TraceSampleEvery.
	qm := &obs.QueryMetrics{}
	ctx = obs.WithQueryMetrics(ctx, qm)
	tr := s.tracer.Sample("request")
	if tr != nil {
		tr.Root.SetAttr("request_id", id)
		tr.Root.SetAttr("class", req.class)
		tr.Root.SetAttr("query", req.query)
		ctx = obs.ContextWithSpan(ctx, tr.Root)
	}

	start := time.Now()
	nodes, err := s.query(ctx, req.class, req.params, s.doc, req.query)
	elapsed := time.Since(start)
	s.lat.Observe(elapsed)
	status := http.StatusOK
	switch {
	case err == nil:
		s.ok.Add(1)
		s.observePipeline(qm)
		writeResult(w, nodes)
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
		s.timeouts.Add(1)
		http.Error(w, fmt.Sprintf("query exceeded its %v deadline", req.timeout), status)
	case errors.Is(err, context.Canceled):
		// The client went away; nothing useful can be written, but the
		// status keeps the access log honest (499 is the de-facto
		// client-closed-request code).
		status = 499
		s.clientCancels.Add(1)
		w.WriteHeader(status)
	case clientFault(err):
		status = http.StatusBadRequest
		s.badRequest(w, err)
	default:
		// The request was well-formed; the failure is the server's
		// (derivation, rewriting, or evaluation broke). Reporting it as
		// 400 would tell the client to stop retrying a query that is
		// fine, and would hide server bugs from the error budget.
		status = http.StatusInternalServerError
		s.internalErrors.Add(1)
		http.Error(w, fmt.Sprintf("internal error answering query: %v", err), status)
	}
	if tr != nil {
		tr.Root.SetAttr("status", status)
		s.tracer.Keep(tr)
	}
	s.recordQuery(id, req, elapsed, status, qm, len(nodes))
}

// observePipeline feeds one successfully answered request's per-phase
// accounting into the always-on metrics. All three phase digests are
// observed exactly once per call — a plan-cache hit contributes a zero
// rewrite/optimize duration rather than no sample — so each phase
// histogram's count equals sv_pipeline_total by construction, and the
// per-phase sums show where wall time actually went, cache and all.
func (s *Server) observePipeline(qm *obs.QueryMetrics) {
	s.pipeline.Add(1)
	s.phases[phaseRewrite].Observe(qm.Rewrite)
	s.phases[phaseOptimize].Observe(qm.Optimize)
	s.phases[phaseEval].Observe(qm.Eval)
	if qm.PlanCacheHit {
		s.planHits.Add(1)
	} else {
		s.planMisses.Add(1)
	}
	if qm.EngineCacheHit {
		s.engineHits.Add(1)
	} else {
		s.engineMisses.Add(1)
	}
	if mi := evalModeIndex(qm.EvalMode); mi >= 0 {
		s.evalCounts[mi][reprIndex(qm.SetRepr)].Add(1)
	}
}

// evalModes and evalReprs order the eval-counter matrix; indexes are
// resolved by evalModeIndex/reprIndex.
var (
	evalModes = [...]string{obs.ModeSequential, obs.ModeParallel, obs.ModeIndexed, obs.ModeCached}
	evalReprs = [...]string{obs.ReprSlice, obs.ReprBitset}
)

func evalModeIndex(mode string) int {
	for i, m := range evalModes {
		if m == mode {
			return i
		}
	}
	return -1
}

// reprIndex defaults to the slice row: a pipeline that never reported
// a representation ran some path outside the compaction gate.
func reprIndex(repr string) int {
	if repr == obs.ReprBitset {
		return 1
	}
	return 0
}

// evalModeTotal sums one mode's row across representations — the
// /statsz per-mode counters, unchanged by the repr split.
func (s *Server) evalModeTotal(mi int) uint64 {
	var n uint64
	for ri := range evalReprs {
		n += s.evalCounts[mi][ri].Load()
	}
	return n
}

// evalReprTotal sums one representation's column across modes.
func (s *Server) evalReprTotal(ri int) uint64 {
	var n uint64
	for mi := range evalModes {
		n += s.evalCounts[mi][ri].Load()
	}
	return n
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// maxLoggedQueryBytes bounds query text in the slow-query line and in
// event-log records: a 100KB query must not become a 100KB log line.
// The fingerprint still identifies the full query via /queryz.
const maxLoggedQueryBytes = 512

// truncateForLog clips q to maxLoggedQueryBytes, marking the cut.
func truncateForLog(q string) string {
	if len(q) <= maxLoggedQueryBytes {
		return q
	}
	return q[:maxLoggedQueryBytes] + "...[truncated]"
}

// queryEvent is one wide event in the structured request log: every
// field of the request's QueryMetrics carrier plus identity (request
// id, class, fingerprint) and outcome (status, kind). Durations are
// microseconds at this JSON edge, per the repo-wide unit discipline.
type queryEvent struct {
	TimeUnixUs int64 `json:"time_unix_us"`
	// Kind says why the event was emitted: "error" (non-200 status),
	// "slow" (over the slow-query threshold), or "sampled" (one in
	// EventLogSampleEvery). Precedence in that order; each request emits
	// at most one event.
	Kind      string `json:"kind"`
	RequestID uint64 `json:"request_id"`
	Class     string `json:"class"`
	Status    int    `json:"status"`
	// Query is the surface query, truncated to maxLoggedQueryBytes;
	// Fingerprint joins the event to its /queryz row.
	Query       string `json:"query"`
	Fingerprint string `json:"fingerprint"`

	TotalUs    int64 `json:"total_us"`
	RewriteUs  int64 `json:"rewrite_us"`
	OptimizeUs int64 `json:"optimize_us"`
	EvalUs     int64 `json:"eval_us"`

	PlanCacheHit   bool   `json:"plan_cache_hit"`
	EngineCacheHit bool   `json:"engine_cache_hit"`
	AnswerCache    string `json:"answer_cache,omitempty"`
	EvalMode       string `json:"eval_mode,omitempty"`
	SetRepr        string `json:"set_repr,omitempty"`

	NodesVisited uint64 `json:"nodes_visited"`
	UnionForks   uint64 `json:"union_forks,omitempty"`
	Partitions   uint64 `json:"partitions,omitempty"`
	ResultCount  int    `json:"result_count"`
}

// recordQuery is the post-response accounting for one admitted query:
// it folds answered requests into the fingerprint registry, counts slow
// queries, and emits at most one wide event (or the legacy slow-query
// log line when no event log is configured).
//
// Ordering invariant: for answered requests observePipeline has already
// incremented s.pipeline in this goroutine, so the qstats observation
// lands strictly after it. A reader that sums /queryz counts before
// loading sv_pipeline_total therefore never sees the sum exceed the
// pipeline total; at quiescence the two are equal.
func (s *Server) recordQuery(id uint64, req *queryRequest, elapsed time.Duration, status int, qm *obs.QueryMetrics, results int) {
	if status == http.StatusOK {
		s.qstats.Observe(req.class, qm.PlanText, req.query, qstats.Observation{
			Total:              elapsed,
			Rewrite:            qm.Rewrite,
			Optimize:           qm.Optimize,
			Eval:               qm.Eval,
			PlanCacheHit:       qm.PlanCacheHit,
			AnswerCacheOutcome: qm.AnswerCacheHit,
			EvalMode:           qm.EvalMode,
			SetRepr:            qm.SetRepr,
			NodesVisited:       qm.NodesVisited,
			ResultCount:        results,
		})
	}
	thr := s.cfg.slowThreshold()
	slow := thr > 0 && elapsed >= thr
	if slow {
		s.slowQueries.Add(1)
	}
	if s.cfg.EventLog == nil {
		if slow {
			s.logf("svserve: slow query id=%d class=%s q=%q status=%d total=%v rewrite=%v optimize=%v eval=%v plan_cache_hit=%t mode=%s",
				id, req.class, truncateForLog(req.query), status, elapsed, qm.Rewrite, qm.Optimize, qm.Eval, qm.PlanCacheHit, qm.EvalMode)
		}
		return
	}
	var kind string
	switch {
	case status != http.StatusOK:
		kind = "error"
	case slow:
		kind = "slow"
	case s.cfg.EventLogSampleEvery > 0 && id%uint64(s.cfg.EventLogSampleEvery) == 0:
		kind = "sampled"
	default:
		return
	}
	// The fingerprint falls back to the surface query exactly like
	// qstats.Observe does, so error events (which may predate plan
	// surfacing) still join /queryz rows when one exists.
	plan := qm.PlanText
	if plan == "" {
		plan = req.query
	}
	ev := queryEvent{
		TimeUnixUs:     time.Now().UnixMicro(),
		Kind:           kind,
		RequestID:      id,
		Class:          req.class,
		Status:         status,
		Query:          truncateForLog(req.query),
		Fingerprint:    qstats.Fingerprint(req.class, plan),
		TotalUs:        elapsed.Microseconds(),
		RewriteUs:      qm.Rewrite.Microseconds(),
		OptimizeUs:     qm.Optimize.Microseconds(),
		EvalUs:         qm.Eval.Microseconds(),
		PlanCacheHit:   qm.PlanCacheHit,
		EngineCacheHit: qm.EngineCacheHit,
		AnswerCache:    qm.AnswerCacheHit,
		EvalMode:       qm.EvalMode,
		SetRepr:        qm.SetRepr,
		NodesVisited:   qm.NodesVisited,
		UnionForks:     qm.UnionForks,
		Partitions:     qm.Partitions,
		ResultCount:    results,
	}
	if err := s.cfg.EventLog.Emit(ev); err != nil {
		s.logf("svserve: event log write failed: %v", err)
	}
}

// explainzResponse is the /explainz JSON document: the engine's
// per-phase explain plus the span tree of this exact request.
type explainzResponse struct {
	RequestID uint64            `json:"request_id"`
	Class     string            `json:"class"`
	Params    map[string]string `json:"params,omitempty"`
	TotalNs   int64             `json:"total_ns"`
	Explain   *core.Explain     `json:"explain"`
	Trace     obs.TraceSnapshot `json:"trace"`
}

// handleExplainz answers one query through the explain path: rewrite
// and optimize run fresh (bypassing the plan cache) so every phase has
// a real measured duration, and the request is always traced regardless
// of the sampling knob. Parameters are the same as /query.
func (s *Server) handleExplainz(w http.ResponseWriter, r *http.Request) {
	req, err := s.parseQueryRequest(r)
	if err != nil {
		s.badRequest(w, err)
		return
	}
	if !s.admit(w) {
		return
	}
	defer s.release()
	s.explains.Add(1)

	id := s.reqID.Add(1)
	ctx, cancel := requestCtx(r, req.timeout)
	defer cancel()

	tr := s.tracer.Start("explain")
	tr.Root.SetAttr("request_id", id)
	tr.Root.SetAttr("class", req.class)
	tr.Root.SetAttr("query", req.query)
	ctx = obs.ContextWithSpan(ctx, tr.Root)

	start := time.Now()
	ex, err := s.explain(ctx, req.class, req.params, s.doc, req.query)
	elapsed := time.Since(start)
	if err != nil {
		tr.Root.SetAttr("error", err.Error())
		s.tracer.Keep(tr)
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.timeouts.Add(1)
			http.Error(w, fmt.Sprintf("explain exceeded its %v deadline", req.timeout), http.StatusGatewayTimeout)
		case errors.Is(err, context.Canceled):
			s.clientCancels.Add(1)
			w.WriteHeader(499)
		case clientFault(err):
			s.badRequest(w, err)
		default:
			s.internalErrors.Add(1)
			http.Error(w, fmt.Sprintf("internal error explaining query: %v", err), http.StatusInternalServerError)
		}
		return
	}
	s.tracer.Keep(tr)
	writeJSON(w, explainzResponse{
		RequestID: id,
		Class:     req.class,
		Params:    req.params,
		TotalNs:   elapsed.Nanoseconds(),
		Explain:   ex,
		Trace:     obs.TraceSnapshot{ID: tr.ID, Root: tr.Root.Snapshot()},
	})
}

func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WriteText(w)
}

// QueryStats returns the server's per-fingerprint registry (the /queryz
// content), so embedders and load tools can read it directly.
func (s *Server) QueryStats() *qstats.Registry { return s.qstats }

// QueryzResponse is the /queryz JSON document: the registry's own
// accounting plus the top fingerprints under the requested sort.
type QueryzResponse struct {
	// Sort is the applied sort key (?sort=, default eval_time) and N the
	// applied row bound (?n=, default 50; n<=0 returns every row).
	Sort string `json:"sort"`
	N    int    `json:"n"`
	// Registry is the fingerprint registry's own accounting. At
	// quiescence the Count sum over ALL rows (n<=0) equals
	// Registry.Observations equals sv_pipeline_total.
	Registry qstats.Stats              `json:"registry"`
	Top      []qstats.FingerprintStats `json:"top"`
}

// handleQueryz dumps per-fingerprint query statistics, heaviest first.
// ?sort= picks the key (eval_time, total_time, count, miss_rate); ?n=
// bounds the rows (0 or negative = all).
func (s *Server) handleQueryz(w http.ResponseWriter, r *http.Request) {
	n := 50
	if v := r.FormValue("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil {
			s.badRequest(w, fmt.Errorf("bad n %q (want an integer)", v))
			return
		}
		n = parsed
	}
	by := r.FormValue("sort")
	switch by {
	case "":
		by = qstats.SortEvalTime
	case qstats.SortEvalTime, qstats.SortTotalTime, qstats.SortCount, qstats.SortMissRate:
	default:
		s.badRequest(w, fmt.Errorf("bad sort %q (want %s, %s, %s, or %s)",
			by, qstats.SortEvalTime, qstats.SortTotalTime, qstats.SortCount, qstats.SortMissRate))
		return
	}
	writeJSON(w, QueryzResponse{
		Sort:     by,
		N:        n,
		Registry: s.qstats.Stats(),
		Top:      s.qstats.Top(n, by),
	})
}

// handleTracez dumps the most recent sampled traces, newest first
// (?n= bounds the count).
func (s *Server) handleTracez(w http.ResponseWriter, r *http.Request) {
	n := 0
	if v := r.FormValue("n"); v != "" {
		n, _ = strconv.Atoi(v)
	}
	started, kept := s.tracer.Stats()
	writeJSON(w, map[string]any{
		"sample_every": s.tracer.SampleEvery(),
		"started":      started,
		"kept":         kept,
		"traces":       s.tracer.Recent(n),
	})
}

// handleHealthz reports liveness — and readiness: once a graceful drain
// has begun it answers 503 so load balancers route new work elsewhere
// while in-flight queries finish.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// clientFault reports whether a Registry.QueryCtx error is the client's
// fault: a class the registry does not define, query syntax the parser
// rejected, or a $parameter the request failed to bind. Everything else
// — view derivation, rewriting, or evaluation failing on a well-formed
// request — is the server's fault and must surface as a 5xx.
func clientFault(err error) bool {
	var parseErr *xpath.ParseError
	var bindErr *policy.BindingError
	return errors.Is(err, policy.ErrUnknownClass) ||
		errors.Is(err, core.ErrUnboundVars) ||
		errors.As(err, &parseErr) ||
		errors.As(err, &bindErr)
}

func (s *Server) badRequest(w http.ResponseWriter, err error) {
	s.badRequests.Add(1)
	http.Error(w, err.Error(), http.StatusBadRequest)
}

// writeResult wraps the selected nodes in a <result> envelope so the
// response body is a single well-formed XML document.
func writeResult(w http.ResponseWriter, nodes []*xmltree.Node) {
	w.Header().Set("Content-Type", "application/xml; charset=utf-8")
	var b strings.Builder
	fmt.Fprintf(&b, "<result count=\"%d\">\n", len(nodes))
	for _, n := range nodes {
		b.WriteString(n.String())
	}
	b.WriteString("</result>\n")
	w.Write([]byte(b.String()))
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func parseParams(kvs []string) (map[string]string, error) {
	if len(kvs) == 0 {
		return nil, nil
	}
	params := make(map[string]string, len(kvs))
	for _, kv := range kvs {
		name, value, ok := strings.Cut(kv, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad param %q (want name=value)", kv)
		}
		params[name] = value
	}
	return params, nil
}

// LatencyStats is the /statsz latency section: a count/sum pair, the
// exact observed maximum, histogram-derived percentile estimates, and
// the full bucket histogram (the geometric ladder of latency.Bounds,
// 100µs–10s plus +inf; each observation lands in exactly one bucket, so
// the bucket counts sum to count). Microsecond units on the wire; the
// digests underneath are nanosecond-based.
type LatencyStats struct {
	Count     uint64  `json:"count"`
	SumMicros uint64  `json:"sum_us"`
	MaxMicros float64 `json:"max_us"`
	// P50/P95/P99Micros are estimated from the histogram by linear
	// interpolation within the rank's bucket (clamped to the observed
	// max), so they are honest to within one bucket rung.
	P50Micros float64           `json:"p50_us"`
	P95Micros float64           `json:"p95_us"`
	P99Micros float64           `json:"p99_us"`
	Buckets   map[string]uint64 `json:"buckets"`
}

func latencyStats(snap latency.Snapshot) LatencyStats {
	return LatencyStats{
		Count:     snap.Count,
		SumMicros: snap.SumUs(),
		MaxMicros: float64(snap.MaxNs) / 1e3,
		P50Micros: snap.QuantileUs(0.50),
		P95Micros: snap.QuantileUs(0.95),
		P99Micros: snap.QuantileUs(0.99),
		Buckets:   snap.BucketMap(),
	}
}

// ServerStats is the server section of /statsz.
type ServerStats struct {
	Requests       uint64       `json:"requests"`
	OK             uint64       `json:"ok"`
	BadRequests    uint64       `json:"bad_requests"`
	InternalErrors uint64       `json:"internal_errors"`
	Rejected       uint64       `json:"rejected"`
	Timeouts       uint64       `json:"timeouts"`
	ClientCancels  uint64       `json:"client_cancels"`
	InFlight       int64        `json:"in_flight"`
	MaxInFlight    int          `json:"max_in_flight"`
	UptimeSeconds  float64      `json:"uptime_seconds"`
	DocumentNodes  int          `json:"document_nodes"`
	DocumentHeight int          `json:"document_height"`
	Draining       bool         `json:"draining"`
	SlowQueries    uint64       `json:"slow_queries"`
	Explains       uint64       `json:"explains"`
	Latency        LatencyStats `json:"latency"`
	// Pipeline is the completed-pipeline rollup: the per-phase latency
	// digests and the cache/mode outcome counters keyed to them (every
	// phase count equals Pipeline.Count; see observePipeline).
	Pipeline PipelineStats `json:"pipeline"`
}

// PipelineStats reports the always-on per-phase accounting.
type PipelineStats struct {
	Count           uint64                  `json:"count"`
	PlanCacheHits   uint64                  `json:"plan_cache_hits"`
	PlanCacheMisses uint64                  `json:"plan_cache_misses"`
	EngineHits      uint64                  `json:"engine_cache_hits"`
	EngineMisses    uint64                  `json:"engine_cache_misses"`
	SequentialEvals uint64                  `json:"sequential_evals"`
	ParallelEvals   uint64                  `json:"parallel_evals"`
	IndexedEvals    uint64                  `json:"indexed_evals"`
	CachedEvals     uint64                  `json:"cached_evals"`
	BitsetEvals     uint64                  `json:"bitset_evals"`
	SliceEvals      uint64                  `json:"slice_evals"`
	Phases          map[string]LatencyStats `json:"phases"`
}

// Statsz is the full /statsz document: the server's own counters plus
// the per-class rollup from the policy registry (engine caches, and for
// every cached engine its plan-cache and evaluation counters).
type Statsz struct {
	Server  ServerStats         `json:"server"`
	Classes []policy.ClassStats `json:"classes"`
}

// Stats snapshots the server and registry counters.
//
// Read ordering matters for snapshots taken under load: effect counters
// are read before their cause counters (response classes before
// requests, phase digests before the pipeline count), so every effect a
// snapshot contains has its cause in the same snapshot. Mid-flight the
// response classes sum to at most Requests and each phase count is at
// most Pipeline.Count; at quiescence both are exact equalities.
func (s *Server) Stats() Statsz {
	phases := make(map[string]LatencyStats, numPhases)
	for i := range s.phases {
		phases[phaseNames[i]] = latencyStats(s.phases[i].Snapshot())
	}
	pipeline := s.pipeline.Load()
	ok := s.ok.Load()
	badRequests := s.badRequests.Load()
	internalErrors := s.internalErrors.Load()
	rejected := s.rejected.Load()
	timeouts := s.timeouts.Load()
	clientCancels := s.clientCancels.Load()
	return Statsz{
		Server: ServerStats{
			Requests:       s.requests.Load(),
			OK:             ok,
			BadRequests:    badRequests,
			InternalErrors: internalErrors,
			Rejected:       rejected,
			Timeouts:       timeouts,
			ClientCancels:  clientCancels,
			InFlight:       s.inFlight.Load(),
			MaxInFlight:    s.cfg.maxInFlight(),
			UptimeSeconds:  time.Since(s.started).Seconds(),
			DocumentNodes:  s.doc.Size(),
			DocumentHeight: s.doc.Height(),
			Draining:       s.draining.Load(),
			SlowQueries:    s.slowQueries.Load(),
			Explains:       s.explains.Load(),
			Latency:        latencyStats(s.lat.Snapshot()),
			Pipeline: PipelineStats{
				Count:           pipeline,
				PlanCacheHits:   s.planHits.Load(),
				PlanCacheMisses: s.planMisses.Load(),
				EngineHits:      s.engineHits.Load(),
				EngineMisses:    s.engineMisses.Load(),
				SequentialEvals: s.evalModeTotal(0),
				ParallelEvals:   s.evalModeTotal(1),
				IndexedEvals:    s.evalModeTotal(2),
				CachedEvals:     s.evalModeTotal(3),
				BitsetEvals:     s.evalReprTotal(1),
				SliceEvals:      s.evalReprTotal(0),
				Phases:          phases,
			},
		},
		Classes: s.reg.Stats(),
	}
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Stats())
}
