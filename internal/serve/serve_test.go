package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dtds"
	"repro/internal/latency"
	"repro/internal/policy"
	"repro/internal/xmlgen"
	"repro/internal/xmltree"
)

// newTestServer builds a server over the hospital scenario: the unbound
// nurse policy (wardNo binds per request) and a generated ward document.
func newTestServer(t *testing.T, cfg Config, maxRepeat int) *Server {
	t.Helper()
	spec := dtds.NurseSpec()
	reg := policy.NewRegistryWithConfig(spec.D, 0, core.Config{})
	if _, err := reg.DefineSpec("nurse", spec); err != nil {
		t.Fatalf("DefineSpec: %v", err)
	}
	doc := xmlgen.Generate(spec.D, xmlgen.Config{
		Seed:      7,
		MinRepeat: maxRepeat - 2,
		MaxRepeat: maxRepeat,
		Value: func(r *rand.Rand, label string) string {
			if label == "wardNo" {
				return fmt.Sprintf("%d", r.Intn(4))
			}
			return fmt.Sprintf("%s-%d", label, r.Intn(1000))
		},
	})
	return New(reg, doc, cfg)
}

func get(t *testing.T, h http.Handler, target string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", target, nil))
	return w
}

func TestQueryOK(t *testing.T) {
	s := newTestServer(t, Config{}, 4)
	h := s.Handler()
	w := get(t, h, "/query?class=nurse&param=wardNo=1&q="+url.QueryEscape("//patient/name"))
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %q", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/xml") {
		t.Errorf("Content-Type = %q", ct)
	}
	body := w.Body.String()
	if !strings.HasPrefix(body, "<result count=") || !strings.HasSuffix(strings.TrimSpace(body), "</result>") {
		t.Errorf("body is not a result envelope: %.120q", body)
	}
	st := s.Stats().Server
	if st.Requests != 1 || st.OK != 1 || st.Latency.Count != 1 {
		t.Errorf("server stats after one query: %+v", st)
	}
}

func TestBadRequests(t *testing.T) {
	s := newTestServer(t, Config{}, 3)
	h := s.Handler()
	cases := []struct {
		name, target string
	}{
		{"missing q", "/query?class=nurse"},
		{"missing class", "/query?q=//name"},
		{"bad param", "/query?class=nurse&q=//name&param=wardNo"},
		{"bad timeout", "/query?class=nurse&param=wardNo=1&q=//name&timeout=soon"},
		{"negative timeout", "/query?class=nurse&param=wardNo=1&q=//name&timeout=-1s"},
		{"unknown class", "/query?class=admin&q=//name"},
		{"unparsable query", "/query?class=nurse&param=wardNo=1&q=" + url.QueryEscape("//[")},
		{"unbound param", "/query?class=nurse&q=//name"},
	}
	for _, c := range cases {
		if w := get(t, h, c.target); w.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (body %q)", c.name, w.Code, w.Body.String())
		}
	}
	if st := s.Stats().Server; st.BadRequests != uint64(len(cases)) {
		t.Errorf("BadRequests = %d, want %d", st.BadRequests, len(cases))
	}
}

// TestAdmissionControl: with MaxInFlight=2 and two requests pinned in
// flight, a third is refused with 429 + Retry-After instead of queueing;
// after the slots free up the server accepts work again.
func TestAdmissionControl(t *testing.T) {
	s := newTestServer(t, Config{MaxInFlight: 2}, 3)
	entered := make(chan struct{}, 2)
	release := make(chan struct{})
	s.testHook = func() {
		entered <- struct{}{}
		<-release
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	target := srv.URL + "/query?class=nurse&param=wardNo=1&q=" + url.QueryEscape("//name")

	var wg sync.WaitGroup
	codes := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(target)
			if err != nil {
				t.Errorf("pinned request %d: %v", i, err)
				return
			}
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	// Both slots taken...
	<-entered
	<-entered
	// ...so the third request must be refused immediately.
	resp, err := http.Get(target)
	if err != nil {
		t.Fatalf("saturating request: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("saturated status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Errorf("429 response missing Retry-After")
	}

	close(release)
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Errorf("pinned request %d: status %d", i, code)
		}
	}
	s.testHook = nil
	if w := get(t, s.Handler(), "/query?class=nurse&param=wardNo=1&q="+url.QueryEscape("//name")); w.Code != http.StatusOK {
		t.Errorf("post-drain request: status %d", w.Code)
	}
	st := s.Stats().Server
	if st.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", st.Rejected)
	}
	if st.InFlight != 0 {
		t.Errorf("InFlight = %d after drain", st.InFlight)
	}
}

// TestDeadline504: a 1ms budget on an expensive query over a large
// document comes back 504 well within the handler's own clock (the
// evaluators poll deadlines cooperatively).
func TestDeadline504(t *testing.T) {
	s := newTestServer(t, Config{}, 28)
	h := s.Handler()
	q := url.QueryEscape("//*[//name]//*[//name]//name")
	start := time.Now()
	w := get(t, h, "/query?class=nurse&param=wardNo=1&q="+q+"&timeout=1ms")
	elapsed := time.Since(start)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %.120q)", w.Code, w.Body.String())
	}
	if elapsed >= 100*time.Millisecond {
		t.Errorf("deadline response took %v, want well under 100ms", elapsed)
	}
	if st := s.Stats().Server; st.Timeouts != 1 {
		t.Errorf("Timeouts = %d, want 1", st.Timeouts)
	}
	// Same query with a generous budget succeeds — the cancelled run left
	// the class engine and its plan cache usable.
	w = get(t, h, "/query?class=nurse&param=wardNo=1&q="+q+"&timeout=30s")
	if w.Code != http.StatusOK {
		t.Errorf("retry status = %d (body %.120q)", w.Code, w.Body.String())
	}
}

// TestStatszShape: /statsz decodes as JSON with the server section, the
// latency histogram, and per-class engine stats from the layers below.
func TestStatszShape(t *testing.T) {
	s := newTestServer(t, Config{}, 4)
	h := s.Handler()
	for i := 0; i < 3; i++ {
		if w := get(t, h, "/query?class=nurse&param=wardNo=1&q="+url.QueryEscape("//patient/name")); w.Code != http.StatusOK {
			t.Fatalf("query %d: status %d", i, w.Code)
		}
	}
	w := get(t, h, "/statsz")
	if w.Code != http.StatusOK {
		t.Fatalf("statsz status = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("Content-Type = %q", ct)
	}
	var got Statsz
	if err := json.Unmarshal(w.Body.Bytes(), &got); err != nil {
		t.Fatalf("statsz does not decode: %v\n%s", err, w.Body.String())
	}
	sv := got.Server
	if sv.Requests != 3 || sv.OK != 3 {
		t.Errorf("requests/ok = %d/%d, want 3/3", sv.Requests, sv.OK)
	}
	if sv.Latency.Count != 3 || len(sv.Latency.Buckets) != latency.NumBuckets {
		t.Errorf("latency section: %+v", sv.Latency)
	}
	if !(sv.Latency.P50Micros <= sv.Latency.P95Micros && sv.Latency.P95Micros <= sv.Latency.P99Micros) {
		t.Errorf("percentiles not ordered: %+v", sv.Latency)
	}
	if sv.Latency.P99Micros > sv.Latency.MaxMicros {
		t.Errorf("p99 %v exceeds max %v", sv.Latency.P99Micros, sv.Latency.MaxMicros)
	}
	var total uint64
	for _, n := range sv.Latency.Buckets {
		total += n
	}
	if total != sv.Latency.Count {
		t.Errorf("histogram buckets sum to %d, count %d", total, sv.Latency.Count)
	}
	if sv.DocumentNodes == 0 || sv.DocumentHeight == 0 {
		t.Errorf("document fields empty: %+v", sv)
	}
	if len(got.Classes) != 1 || got.Classes[0].Class != "nurse" {
		t.Fatalf("classes = %+v", got.Classes)
	}
	cl := got.Classes[0]
	if len(cl.Bindings) != 1 {
		t.Fatalf("bindings = %+v", cl.Bindings)
	}
	eng := cl.Bindings[0].Engine
	if eng.Queries != 3 || eng.PlanCache.Misses != 1 || eng.PlanCache.Hits != 2 {
		t.Errorf("engine stats: %+v", eng)
	}
}

// TestInternalErrorIs500: an engine-side failure on a well-formed
// request is the server's fault — it must come back 500 and increment
// internal_errors, not masquerade as a client 400.
func TestInternalErrorIs500(t *testing.T) {
	s := newTestServer(t, Config{}, 3)
	s.query = func(context.Context, string, map[string]string, *xmltree.Document, string) ([]*xmltree.Node, error) {
		return nil, errors.New("rewrite: internal invariant broken")
	}
	w := get(t, s.Handler(), "/query?class=nurse&param=wardNo=1&q="+url.QueryEscape("//name"))
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 (body %q)", w.Code, w.Body.String())
	}
	st := s.Stats().Server
	if st.InternalErrors != 1 {
		t.Errorf("InternalErrors = %d, want 1", st.InternalErrors)
	}
	if st.BadRequests != 0 {
		t.Errorf("BadRequests = %d, want 0 (internal failure misreported as client fault)", st.BadRequests)
	}
}

// TestClientFaultClassification: the real registry errors that are the
// client's fault keep coming back 400 through the classifier, and none
// of them bump internal_errors.
func TestClientFaultClassification(t *testing.T) {
	s := newTestServer(t, Config{}, 3)
	h := s.Handler()
	cases := []struct {
		name, target string
	}{
		{"unknown class", "/query?class=admin&q=//name"},
		{"parse error", "/query?class=nurse&param=wardNo=1&q=" + url.QueryEscape("//[")},
		{"unbound param", "/query?class=nurse&q=//name"},
		{"unbound query var", "/query?class=nurse&param=wardNo=1&q=" + url.QueryEscape(`//patient[wardNo = $other]`)},
	}
	for _, c := range cases {
		if w := get(t, h, c.target); w.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (body %q)", c.name, w.Code, w.Body.String())
		}
	}
	st := s.Stats().Server
	if st.InternalErrors != 0 {
		t.Errorf("InternalErrors = %d, want 0", st.InternalErrors)
	}
	if st.BadRequests != uint64(len(cases)) {
		t.Errorf("BadRequests = %d, want %d", st.BadRequests, len(cases))
	}
}

// TestHistogramSumsToCount: after a spread of requests (fast, slow, and
// timed-out), every observation landed in exactly one bucket of the
// finer ladder, so the bucket counts sum to latency.count.
func TestHistogramSumsToCount(t *testing.T) {
	s := newTestServer(t, Config{}, 8)
	h := s.Handler()
	targets := []string{
		"/query?class=nurse&param=wardNo=1&q=" + url.QueryEscape("//patient/name"),
		"/query?class=nurse&param=wardNo=2&q=" + url.QueryEscape("//dept//bill"),
		"/query?class=nurse&param=wardNo=1&q=" + url.QueryEscape("//*[//name]//name") + "&timeout=1ms",
		"/query?class=nurse&param=wardNo=3&q=" + url.QueryEscape("//staff/name"),
	}
	for i := 0; i < 3; i++ {
		for _, target := range targets {
			get(t, h, target)
		}
	}
	lat := s.Stats().Server.Latency
	if lat.Count != uint64(3*len(targets)) {
		t.Fatalf("latency count = %d, want %d", lat.Count, 3*len(targets))
	}
	var total uint64
	for _, n := range lat.Buckets {
		total += n
	}
	if total != lat.Count {
		t.Errorf("histogram buckets sum to %d, count %d", total, lat.Count)
	}
}

// TestHealthz: the liveness endpoint answers without touching the
// query path.
func TestHealthz(t *testing.T) {
	s := newTestServer(t, Config{}, 3)
	w := get(t, s.Handler(), "/healthz")
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "ok") {
		t.Errorf("healthz: %d %q", w.Code, w.Body.String())
	}
}

// TestTimeoutClamp: an explicit timeout above MaxTimeout is clamped, and
// a config with no default still caps requests at MaxTimeout.
func TestTimeoutClamp(t *testing.T) {
	cfg := Config{DefaultTimeout: -1, MaxTimeout: time.Nanosecond}
	s := newTestServer(t, cfg, 3)
	h := s.Handler()
	// No explicit timeout: the 1ns hard cap still applies, so the query
	// must come back 504 rather than running unbounded.
	w := get(t, h, "/query?class=nurse&param=wardNo=1&q="+url.QueryEscape("//name"))
	if w.Code != http.StatusGatewayTimeout {
		t.Errorf("capped default: status = %d, want 504", w.Code)
	}
	// Explicit timeout above the cap is clamped to it.
	w = get(t, h, "/query?class=nurse&param=wardNo=1&q="+url.QueryEscape("//name")+"&timeout=10s")
	if w.Code != http.StatusGatewayTimeout {
		t.Errorf("clamped explicit: status = %d, want 504", w.Code)
	}
}
