package serve

// /queryz and wide-event-log suite: the fingerprint registry's
// accounting invariant against sv_pipeline_total (sequential and under
// concurrent load), sort/limit parameter handling, query-text
// truncation in both log sinks, per-class answer-cache splitting in
// /statsz, and the structured event log end to end.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dtds"
	"repro/internal/eventlog"
	"repro/internal/policy"
	"repro/internal/xmlgen"
)

// newAnscacheTestServer is newTestServer with the semantic answer cache
// enabled on every derived engine.
func newAnscacheTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	spec := dtds.NurseSpec()
	reg := policy.NewRegistryWithConfig(spec.D, 0, core.Config{AnswerCache: true})
	if _, err := reg.DefineSpec("nurse", spec); err != nil {
		t.Fatalf("DefineSpec: %v", err)
	}
	doc := xmlgen.Generate(spec.D, xmlgen.Config{
		Seed:      7,
		MinRepeat: 2,
		MaxRepeat: 4,
		Value: func(r *rand.Rand, label string) string {
			if label == "wardNo" {
				return fmt.Sprintf("%d", r.Intn(4))
			}
			return fmt.Sprintf("%s-%d", label, r.Intn(1000))
		},
	})
	return New(reg, doc, cfg)
}

func getQueryz(t *testing.T, h http.Handler, target string) QueryzResponse {
	t.Helper()
	w := get(t, h, target)
	if w.Code != http.StatusOK {
		t.Fatalf("%s status = %d: %s", target, w.Code, w.Body.String())
	}
	var qz QueryzResponse
	if err := json.Unmarshal(w.Body.Bytes(), &qz); err != nil {
		t.Fatalf("decode %s: %v", target, err)
	}
	return qz
}

// TestQueryzAccounting: after a quiescent mixed workload the /queryz
// rows attribute every answered query — the Count sum over all rows
// equals the registry's observation count equals sv_pipeline_total —
// and failed requests contribute nothing.
func TestQueryzAccounting(t *testing.T) {
	s := newTestServer(t, Config{}, 4)
	h := s.Handler()
	queries := []string{"//patient/name", "//patient", "//wardNo"}
	for i, q := range queries {
		for j := 0; j <= i; j++ { // distinct counts per fingerprint
			if w := get(t, h, "/query?class=nurse&param=wardNo=1&q="+url.QueryEscape(q)); w.Code != http.StatusOK {
				t.Fatalf("query %q: status %d", q, w.Code)
			}
		}
	}
	get(t, h, "/query?class=nurse")                            // 400: no q
	get(t, h, "/query?class=nurse&param=wardNo=1&q=%2F%2F%5B") // 400: parse error

	qz := getQueryz(t, h, "/queryz?n=0")
	if len(qz.Top) != len(queries) {
		t.Fatalf("tracked %d fingerprints, want %d:\n%+v", len(qz.Top), len(queries), qz.Top)
	}
	var sum uint64
	for _, fs := range qz.Top {
		sum += fs.Count
		if fs.Fingerprint == "" || fs.Class != "nurse" || fs.Plan == "" {
			t.Errorf("row missing identity: %+v", fs)
		}
		if fs.Total.Count != fs.Count {
			t.Errorf("fingerprint %s: digest count %d != count %d", fs.Fingerprint, fs.Total.Count, fs.Count)
		}
	}
	body := get(t, h, "/metricsz").Body.String()
	pipeline := metricValue(t, body, "sv_pipeline_total")
	if sum != pipeline || qz.Registry.Observations != pipeline {
		t.Errorf("count sum = %d, observations = %d, sv_pipeline_total = %d; want all equal",
			sum, qz.Registry.Observations, pipeline)
	}
	if got := metricValue(t, body, "sv_qstats_observations_total"); got != pipeline {
		t.Errorf("sv_qstats_observations_total = %d, want %d", got, pipeline)
	}
	if got := metricValue(t, body, "sv_qstats_fingerprints"); got != uint64(len(queries)) {
		t.Errorf("sv_qstats_fingerprints = %d, want %d", got, len(queries))
	}
	if got := metricValue(t, body, "sv_qstats_capacity"); got != uint64(s.QueryStats().Capacity()) {
		t.Errorf("sv_qstats_capacity = %d, want %d", got, s.QueryStats().Capacity())
	}

	// Sort by count puts the most-repeated query first; ?n bounds rows.
	byCount := getQueryz(t, h, "/queryz?sort=count&n=1")
	if len(byCount.Top) != 1 || byCount.Top[0].Count != uint64(len(queries)) {
		t.Errorf("sort=count&n=1 returned %+v", byCount.Top)
	}
	if !strings.Contains(byCount.Top[0].Query, "//wardNo") {
		t.Errorf("hottest fingerprint is %q, want the most-repeated query", byCount.Top[0].Query)
	}
	if w := get(t, h, "/queryz?sort=bogus"); w.Code != http.StatusBadRequest {
		t.Errorf("bad sort key answered %d, want 400", w.Code)
	}
	if w := get(t, h, "/queryz?n=x"); w.Code != http.StatusBadRequest {
		t.Errorf("bad n answered %d, want 400", w.Code)
	}
}

// TestQueryzConcurrentInvariant hammers /queryz while queries are in
// flight: at every intermediate read the Count sum over all rows must
// not exceed sv_pipeline_total read afterwards (observations land
// strictly after the pipeline counter increments). Run under -race this
// also exercises the registry's locking against the HTTP readers.
func TestQueryzConcurrentInvariant(t *testing.T) {
	s := newTestServer(t, Config{}, 4)
	h := s.Handler()
	queries := []string{"//patient/name", "//patient", "//wardNo", "//name", "//bill"}

	var writers sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < 50; i++ {
				q := queries[(g+i)%len(queries)]
				get(t, h, "/query?class=nurse&param=wardNo=1&q="+url.QueryEscape(q))
			}
		}(g)
	}
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Read order matters: /queryz first, then the pipeline counter,
			// so every observation in the sum has its cause in the counter.
			qz := getQueryz(t, h, "/queryz?n=0")
			var sum uint64
			for _, fs := range qz.Top {
				sum += fs.Count
			}
			pipeline := metricValue(t, get(t, h, "/metricsz").Body.String(), "sv_pipeline_total")
			if sum > pipeline {
				t.Errorf("mid-flight count sum %d exceeds sv_pipeline_total %d", sum, pipeline)
				return
			}
		}
	}()
	writers.Wait()
	close(stop)
	readers.Wait()

	qz := getQueryz(t, h, "/queryz?n=0")
	var sum uint64
	for _, fs := range qz.Top {
		sum += fs.Count
	}
	if pipeline := metricValue(t, get(t, h, "/metricsz").Body.String(), "sv_pipeline_total"); sum != pipeline {
		t.Errorf("quiescent count sum = %d, sv_pipeline_total = %d", sum, pipeline)
	}
}

// TestSlowQueryTruncation pins the log-bloat bound: a pathologically
// long query yields a slow-query line whose length is bounded, with a
// truncation marker, on the plain-log path.
func TestSlowQueryTruncation(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	logf := func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	s := newTestServer(t, Config{SlowQueryThreshold: time.Nanosecond, Logf: logf}, 4)
	h := s.Handler()
	// A valid query padded far past the log bound with a fat predicate.
	long := "//patient[name = \"" + strings.Repeat("x", 100_000) + "\"]/name"
	if w := get(t, h, "/query?class=nurse&param=wardNo=1&q="+url.QueryEscape(long)); w.Code != http.StatusOK {
		t.Fatalf("long query status = %d: %s", w.Code, w.Body.String())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(lines) == 0 {
		t.Fatal("no slow-query line logged at a 1ns threshold")
	}
	line := lines[len(lines)-1]
	if len(line) > maxLoggedQueryBytes+512 {
		t.Errorf("slow-query line is %d bytes — truncation failed", len(line))
	}
	if !strings.Contains(line, "...[truncated]") {
		t.Errorf("slow-query line lacks the truncation marker: %q", line)
	}
}

// TestEventLog drives the structured log end to end: sampled, slow, and
// error events land as parseable JSONL with bounded query text, correct
// kinds, and fingerprints that join the /queryz rows.
func TestEventLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	ew, err := eventlog.New(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{
		SlowQueryThreshold:  -1, // no slow events; kinds are sampled/error only
		EventLog:            ew,
		EventLogSampleEvery: 1,
	}, 4)
	h := s.Handler()
	const q = "//patient/name"
	for i := 0; i < 3; i++ {
		if w := get(t, h, "/query?class=nurse&param=wardNo=1&q="+url.QueryEscape(q)); w.Code != http.StatusOK {
			t.Fatalf("query %d status = %d", i, w.Code)
		}
	}
	long := "//patient[name = \"" + strings.Repeat("y", 100_000) + "\"" // unterminated: parse error
	if w := get(t, h, "/query?class=nurse&param=wardNo=1&q="+url.QueryEscape(long)); w.Code != http.StatusBadRequest {
		t.Fatalf("broken query status = %d, want 400", w.Code)
	}
	qz := getQueryz(t, h, "/queryz?n=0")
	if err := ew.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var events []queryEvent
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev queryEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("event line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4 (3 sampled + 1 error): %+v", len(events), events)
	}
	for i, ev := range events[:3] {
		if ev.Kind != "sampled" || ev.Status != http.StatusOK {
			t.Errorf("event %d: kind=%q status=%d, want sampled/200", i, ev.Kind, ev.Status)
		}
		if ev.Class != "nurse" || ev.Query != q || ev.RequestID == 0 || ev.TimeUnixUs == 0 {
			t.Errorf("event %d missing identity: %+v", i, ev)
		}
		if ev.EvalMode == "" || ev.ResultCount == 0 {
			t.Errorf("event %d missing pipeline fields: %+v", i, ev)
		}
	}
	errEv := events[3]
	if errEv.Kind != "error" || errEv.Status != http.StatusBadRequest {
		t.Errorf("error event: kind=%q status=%d, want error/400", errEv.Kind, errEv.Status)
	}
	if len(errEv.Query) > maxLoggedQueryBytes+32 || !strings.HasSuffix(errEv.Query, "...[truncated]") {
		t.Errorf("error event query not truncated: %d bytes", len(errEv.Query))
	}

	// The sampled events' fingerprint joins the /queryz row for q.
	if len(qz.Top) != 1 {
		t.Fatalf("queryz rows = %d, want 1", len(qz.Top))
	}
	if events[0].Fingerprint != qz.Top[0].Fingerprint {
		t.Errorf("event fingerprint %s != /queryz fingerprint %s", events[0].Fingerprint, qz.Top[0].Fingerprint)
	}
	ev, rot := ew.Stats()
	if ev != 4 || rot != 0 {
		t.Errorf("event log stats = %d events %d rotations, want 4/0", ev, rot)
	}
}

// TestStatszPerClassAnswerCache: /statsz splits answer-cache outcomes
// per class (summed over the class's bindings) while the Prometheus
// counters stay aggregated — and the two agree.
func TestStatszPerClassAnswerCache(t *testing.T) {
	s := newAnscacheTestServer(t, Config{})
	h := s.Handler()
	const q = "//patient/name"
	for i := 0; i < 2; i++ { // second run is an equal hit
		if w := get(t, h, "/query?class=nurse&param=wardNo=1&q="+url.QueryEscape(q)); w.Code != http.StatusOK {
			t.Fatalf("query %d status = %d", i, w.Code)
		}
	}
	st := s.Stats()
	if len(st.Classes) != 1 {
		t.Fatalf("classes = %d, want 1", len(st.Classes))
	}
	cs := st.Classes[0]
	if cs.AnswerCache.Hits != 1 || cs.AnswerCache.Misses != 1 {
		t.Errorf("per-class answer cache = %+v, want 1 hit 1 miss", cs.AnswerCache)
	}
	var hits, misses uint64
	for _, b := range cs.Bindings {
		hits += b.Engine.AnswerCache.Hits
		misses += b.Engine.AnswerCache.Misses
	}
	if hits != cs.AnswerCache.Hits || misses != cs.AnswerCache.Misses {
		t.Errorf("class rollup (%d/%d) disagrees with binding sum (%d/%d)",
			cs.AnswerCache.Hits, cs.AnswerCache.Misses, hits, misses)
	}
	body := get(t, h, "/metricsz").Body.String()
	if got := metricValue(t, body, "sv_anscache_hits_total"); got != hits {
		t.Errorf("sv_anscache_hits_total = %d, want %d", got, hits)
	}
	// The cached answer's fingerprint row records the outcome too.
	qz := getQueryz(t, h, "/queryz?n=0")
	if len(qz.Top) != 1 || qz.Top[0].AnsCacheEqual != 1 || qz.Top[0].AnsCacheMisses != 1 {
		t.Errorf("queryz anscache tallies = %+v", qz.Top)
	}
}
