package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// metricValue extracts one sample value from a Prometheus exposition
// (the full sample name including any label set, e.g.
// `sv_phase_duration_seconds_count{phase="rewrite"}`).
func metricValue(t *testing.T, exposition, sample string) uint64 {
	t.Helper()
	re := regexp.MustCompile("(?m)^" + regexp.QuoteMeta(sample) + " ([0-9]+)$")
	m := re.FindStringSubmatch(exposition)
	if m == nil {
		t.Fatalf("sample %q not found in exposition:\n%s", sample, exposition)
	}
	var v uint64
	fmt.Sscanf(m[1], "%d", &v)
	return v
}

// TestMetricszExposition: /metricsz passes the independent format
// validator, and the pipeline invariant holds — every phase histogram's
// count equals sv_pipeline_total equals the OK-response count, with the
// plan-cache split summing to the same total.
func TestMetricszExposition(t *testing.T) {
	s := newTestServer(t, Config{}, 4)
	h := s.Handler()
	const n = 5
	for i := 0; i < n; i++ {
		if w := get(t, h, "/query?class=nurse&param=wardNo=1&q="+url.QueryEscape("//patient/name")); w.Code != http.StatusOK {
			t.Fatalf("query %d: status %d", i, w.Code)
		}
	}
	// A failed request must not contribute a pipeline observation.
	get(t, h, "/query?class=nurse")

	w := get(t, h, "/metricsz")
	if w.Code != http.StatusOK {
		t.Fatalf("metricsz status = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	body := w.Body.String()
	if err := obs.ValidateExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("/metricsz fails validation: %v\n%s", err, body)
	}

	if got := metricValue(t, body, "sv_requests_total"); got != n+1 {
		t.Errorf("sv_requests_total = %d, want %d", got, n+1)
	}
	if got := metricValue(t, body, `sv_responses_total{code="200"}`); got != n {
		t.Errorf("ok responses = %d, want %d", got, n)
	}
	pipeline := metricValue(t, body, "sv_pipeline_total")
	if pipeline != n {
		t.Errorf("sv_pipeline_total = %d, want %d", pipeline, n)
	}
	for _, phase := range []string{"rewrite", "optimize", "eval"} {
		sample := fmt.Sprintf(`sv_phase_duration_seconds_count{phase=%q}`, phase)
		if got := metricValue(t, body, sample); got != pipeline {
			t.Errorf("%s = %d, want pipeline count %d", sample, got, pipeline)
		}
	}
	hits := metricValue(t, body, `sv_plan_cache_total{result="hit"}`)
	misses := metricValue(t, body, `sv_plan_cache_total{result="miss"}`)
	if hits+misses != pipeline {
		t.Errorf("plan cache hit+miss = %d+%d, want pipeline count %d", hits, misses, pipeline)
	}
	if misses != 1 {
		t.Errorf("plan-cache misses = %d, want 1 (one distinct query)", misses)
	}
	// The test document comes from xmlgen, so it is compacted and every
	// sequential eval runs on the ordinal bitset representation.
	if got := metricValue(t, body, `sv_eval_total{mode="sequential",repr="bitset"}`); got != pipeline {
		t.Errorf("sequential bitset evals = %d, want %d", got, pipeline)
	}
	if got := metricValue(t, body, `sv_eval_total{mode="sequential",repr="slice"}`); got != 0 {
		t.Errorf("sequential slice evals = %d, want 0 on a compacted document", got)
	}
	if got := metricValue(t, body, "sv_request_duration_seconds_count"); got != n {
		t.Errorf("request histogram count = %d, want %d (admitted requests only)", got, n)
	}
}

// TestStatszPipelineSection: the JSON twin of the exposition reports the
// same always-on pipeline accounting.
func TestStatszPipelineSection(t *testing.T) {
	s := newTestServer(t, Config{}, 4)
	h := s.Handler()
	for i := 0; i < 3; i++ {
		if w := get(t, h, "/query?class=nurse&param=wardNo=1&q="+url.QueryEscape("//staff/name")); w.Code != http.StatusOK {
			t.Fatalf("query %d: status %d", i, w.Code)
		}
	}
	p := s.Stats().Server.Pipeline
	if p.Count != 3 {
		t.Fatalf("pipeline count = %d, want 3", p.Count)
	}
	if p.PlanCacheHits != 2 || p.PlanCacheMisses != 1 {
		t.Errorf("plan cache = %d hits / %d misses, want 2/1", p.PlanCacheHits, p.PlanCacheMisses)
	}
	if p.SequentialEvals != 3 || p.ParallelEvals != 0 {
		t.Errorf("eval modes = %d seq / %d par", p.SequentialEvals, p.ParallelEvals)
	}
	if p.BitsetEvals != 3 || p.SliceEvals != 0 {
		t.Errorf("eval reprs = %d bitset / %d slice, want 3/0 on a compacted document", p.BitsetEvals, p.SliceEvals)
	}
	for _, phase := range []string{"rewrite", "optimize", "eval"} {
		lat, ok := p.Phases[phase]
		if !ok || lat.Count != p.Count {
			t.Errorf("phase %q: %+v (want count %d)", phase, lat, p.Count)
		}
	}
	if p.Phases["eval"].SumMicros == 0 {
		t.Error("eval phase sum is zero across 3 queries")
	}
}

// TestExplainzEndpoint: the JSON document carries the engine explain
// (fresh nonzero phase timings, intermediate queries) plus the span
// tree of this exact request; malformed requests map to 400.
func TestExplainzEndpoint(t *testing.T) {
	s := newTestServer(t, Config{}, 4)
	h := s.Handler()
	// Warm the plan cache first: the explain must still re-time phases.
	get(t, h, "/query?class=nurse&param=wardNo=1&q="+url.QueryEscape("//patient/name"))

	w := get(t, h, "/explainz?class=nurse&param=wardNo=1&q="+url.QueryEscape("//patient/name"))
	if w.Code != http.StatusOK {
		t.Fatalf("explainz status = %d, body %q", w.Code, w.Body.String())
	}
	var resp explainzResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("explainz does not decode: %v\n%s", err, w.Body.String())
	}
	ex := resp.Explain
	if ex == nil {
		t.Fatal("explainz missing explain section")
	}
	if ex.RewriteNs <= 0 || ex.OptimizeNs <= 0 || ex.EvalNs <= 0 {
		t.Errorf("phase durations not all positive: %+v", ex)
	}
	if ex.Rewritten == "" || ex.Optimized == "" || ex.EvalMode == "" {
		t.Errorf("explain fields missing: %+v", ex)
	}
	if !ex.PlanWasCached {
		t.Error("explain after a warm /query does not report the cached plan")
	}
	if resp.TotalNs <= 0 || resp.RequestID == 0 {
		t.Errorf("envelope: total_ns=%d request_id=%d", resp.TotalNs, resp.RequestID)
	}
	if resp.Trace.Root.Name != "explain" || resp.Trace.Root.DurationNs <= 0 {
		t.Errorf("trace root: %+v", resp.Trace.Root)
	}
	// The pipeline spans hang off the explain root.
	var names []string
	for _, c := range resp.Trace.Root.Children {
		names = append(names, c.Name)
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"rewrite", "optimize"} {
		if !strings.Contains(joined, want) {
			t.Errorf("trace children %v missing %q span", names, want)
		}
	}

	if w := get(t, h, "/explainz?class=nurse"); w.Code != http.StatusBadRequest {
		t.Errorf("missing q: status = %d, want 400", w.Code)
	}
	if w := get(t, h, "/explainz?class=ghost&q=//name"); w.Code != http.StatusBadRequest {
		t.Errorf("unknown class: status = %d, want 400", w.Code)
	}
	// The missing-q request fails validation before admission; the ghost
	// class is admitted and fails in the registry — both 400, but only
	// the admitted one counts as an explain.
	if st := s.Stats().Server; st.Explains != 2 {
		t.Errorf("Explains = %d, want 2 (the admitted explains)", st.Explains)
	}
	// /explainz must not perturb the /query pipeline accounting.
	if p := s.Stats().Server.Pipeline; p.Count != 1 {
		t.Errorf("pipeline count = %d after explain, want 1", p.Count)
	}
}

// TestHealthzDrainTransition: /healthz answers 200 until BeginDrain,
// 503 after — the signal load balancers use to stop routing here.
func TestHealthzDrainTransition(t *testing.T) {
	s := newTestServer(t, Config{}, 3)
	h := s.Handler()
	if w := get(t, h, "/healthz"); w.Code != http.StatusOK {
		t.Fatalf("pre-drain healthz = %d", w.Code)
	}
	if s.Draining() {
		t.Fatal("Draining() true before BeginDrain")
	}
	s.BeginDrain()
	w := get(t, h, "/healthz")
	if w.Code != http.StatusServiceUnavailable || !strings.Contains(w.Body.String(), "draining") {
		t.Errorf("post-drain healthz = %d %q, want 503 draining", w.Code, w.Body.String())
	}
	if !s.Stats().Server.Draining {
		t.Error("stats do not report draining")
	}
	// Queries already in the building keep working during the drain —
	// only the health signal flips.
	if w := get(t, h, "/query?class=nurse&param=wardNo=1&q="+url.QueryEscape("//name")); w.Code != http.StatusOK {
		t.Errorf("query during drain = %d", w.Code)
	}
	s.BeginDrain() // idempotent
	if w := get(t, h, "/healthz"); w.Code != http.StatusServiceUnavailable {
		t.Errorf("healthz after second BeginDrain = %d", w.Code)
	}
}

// TestStatsUnderConcurrentLoad hammers the server from many goroutines
// while snapshotting /statsz and /metricsz mid-flight: snapshots must
// stay internally consistent (histogram sums to count, responses never
// exceed requests) and totals must be exact once the load stops. The
// race detector covers the memory model; this covers the accounting.
func TestStatsUnderConcurrentLoad(t *testing.T) {
	s := newTestServer(t, Config{TraceSampleEvery: 3}, 4)
	h := s.Handler()
	targets := []string{
		"/query?class=nurse&param=wardNo=1&q=" + url.QueryEscape("//patient/name"),
		"/query?class=nurse&param=wardNo=2&q=" + url.QueryEscape("//dept//bill"),
		"/query?class=nurse&param=wardNo=3&q=" + url.QueryEscape("//staff/name"),
		"/query?class=nurse", // 400, never admitted
	}
	const workers, perWorker = 8, 30
	var sent atomic.Uint64
	stop := make(chan struct{})
	var snapErrs atomic.Uint64

	// Snapshot reader racing the writers.
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := s.Stats().Server
			var sum uint64
			for _, n := range st.Latency.Buckets {
				sum += n
			}
			if sum != st.Latency.Count {
				snapErrs.Add(1)
				t.Errorf("mid-flight histogram sums to %d, count %d", sum, st.Latency.Count)
			}
			if st.OK+st.BadRequests+st.Timeouts+st.InternalErrors+st.Rejected+st.ClientCancels > st.Requests {
				snapErrs.Add(1)
				t.Errorf("mid-flight responses exceed requests: %+v", st)
			}
			for phase, lat := range st.Pipeline.Phases {
				// Stats reads phase digests before the pipeline counter, so
				// mid-flight a phase count may trail but never lead it.
				if lat.Count > st.Pipeline.Count {
					snapErrs.Add(1)
					t.Errorf("mid-flight phase %q count %d exceeds pipeline %d", phase, lat.Count, st.Pipeline.Count)
				}
				// Phases snapshot one digest at a time, so only assert
				// within one phase's own snapshot.
				var psum uint64
				for _, n := range lat.Buckets {
					psum += n
				}
				if psum != lat.Count {
					snapErrs.Add(1)
					t.Errorf("mid-flight phase %q buckets sum %d != count %d", phase, psum, lat.Count)
				}
			}
			if w := get(t, h, "/metricsz"); w.Code == http.StatusOK {
				if err := obs.ValidateExposition(strings.NewReader(w.Body.String())); err != nil {
					snapErrs.Add(1)
					t.Errorf("mid-flight /metricsz invalid: %v", err)
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sent.Add(1)
				get(t, h, targets[(g+i)%len(targets)])
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	snapWG.Wait()

	st := s.Stats().Server
	if st.Requests != sent.Load() {
		t.Errorf("requests = %d, sent %d", st.Requests, sent.Load())
	}
	if got := st.OK + st.BadRequests + st.Timeouts + st.InternalErrors + st.Rejected + st.ClientCancels; got != st.Requests {
		t.Errorf("response classes sum to %d, requests %d", got, st.Requests)
	}
	if st.OK != st.Pipeline.Count {
		t.Errorf("pipeline count %d != ok %d", st.Pipeline.Count, st.OK)
	}
	if st.Latency.Count != st.OK+st.Timeouts+st.InternalErrors+st.ClientCancels {
		t.Errorf("latency count %d, admitted %d", st.Latency.Count, st.OK+st.Timeouts)
	}
	if st.InFlight != 0 {
		t.Errorf("in-flight = %d after load", st.InFlight)
	}
	if started, kept := s.Tracer().Stats(); started != kept || started == 0 {
		t.Errorf("tracer stats: %d started, %d kept", started, kept)
	}
}

// TestSlowQueryLog: queries above the threshold are logged through the
// injected sink with their per-phase breakdown; fast queries are not.
func TestSlowQueryLog(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	logf := func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}

	// Threshold 1ns: everything is slow.
	s := newTestServer(t, Config{SlowQueryThreshold: time.Nanosecond, Logf: logf}, 4)
	w := get(t, s.Handler(), "/query?class=nurse&param=wardNo=1&q="+url.QueryEscape("//patient/name"))
	if w.Code != http.StatusOK {
		t.Fatalf("query status = %d", w.Code)
	}
	mu.Lock()
	got := append([]string(nil), lines...)
	mu.Unlock()
	if len(got) != 1 {
		t.Fatalf("slow-query lines = %d, want 1: %q", len(got), got)
	}
	for _, want := range []string{"slow query", "class=nurse", "rewrite=", "optimize=", "eval=", "mode=sequential", "status=200"} {
		if !strings.Contains(got[0], want) {
			t.Errorf("slow-query line missing %q: %s", want, got[0])
		}
	}
	if s.Stats().Server.SlowQueries != 1 {
		t.Errorf("SlowQueries = %d, want 1", s.Stats().Server.SlowQueries)
	}

	// Negative threshold disables the log entirely.
	lines = nil
	s2 := newTestServer(t, Config{SlowQueryThreshold: -1, Logf: logf}, 4)
	get(t, s2.Handler(), "/query?class=nurse&param=wardNo=1&q="+url.QueryEscape("//patient/name"))
	mu.Lock()
	quietLines := len(lines)
	mu.Unlock()
	if quietLines != 0 {
		t.Errorf("disabled slow-query log wrote %d lines", quietLines)
	}
	if s2.Stats().Server.SlowQueries != 0 {
		t.Errorf("disabled threshold counted %d slow queries", s2.Stats().Server.SlowQueries)
	}
}

// TestTracezRing: with sampling=1 every request is traced; /tracez
// returns them newest first with request attributes, bounded by the
// configured ring size.
func TestTracezRing(t *testing.T) {
	s := newTestServer(t, Config{TraceSampleEvery: 1, TraceRingSize: 3}, 4)
	h := s.Handler()
	const n = 5
	for i := 0; i < n; i++ {
		if w := get(t, h, "/query?class=nurse&param=wardNo=1&q="+url.QueryEscape("//patient/name")); w.Code != http.StatusOK {
			t.Fatalf("query %d: status %d", i, w.Code)
		}
	}
	w := get(t, h, "/tracez")
	if w.Code != http.StatusOK {
		t.Fatalf("tracez status = %d", w.Code)
	}
	var resp struct {
		SampleEvery int                 `json:"sample_every"`
		Started     uint64              `json:"started"`
		Kept        uint64              `json:"kept"`
		Traces      []obs.TraceSnapshot `json:"traces"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("tracez does not decode: %v\n%s", err, w.Body.String())
	}
	if resp.SampleEvery != 1 || resp.Started != n || resp.Kept != n {
		t.Errorf("tracez header: %+v", resp)
	}
	if len(resp.Traces) != 3 {
		t.Fatalf("ring holds %d traces, want 3", len(resp.Traces))
	}
	for i := 1; i < len(resp.Traces); i++ {
		if resp.Traces[i-1].ID <= resp.Traces[i].ID {
			t.Errorf("traces not newest-first: %d then %d", resp.Traces[i-1].ID, resp.Traces[i].ID)
		}
	}
	root := resp.Traces[0].Root
	if root.Name != "request" || root.DurationNs <= 0 {
		t.Errorf("trace root: %+v", root)
	}
	keys := map[string]bool{}
	for _, a := range root.Attrs {
		keys[a.Key] = true
	}
	for _, want := range []string{"request_id", "class", "query", "status"} {
		if !keys[want] {
			t.Errorf("trace root missing attr %q (have %v)", want, root.Attrs)
		}
	}
	if w := get(t, h, "/tracez?n=1"); w.Code == http.StatusOK {
		var one struct {
			Traces []obs.TraceSnapshot `json:"traces"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &one); err != nil || len(one.Traces) != 1 {
			t.Errorf("tracez?n=1: err=%v traces=%d", err, len(one.Traces))
		}
	}
}

// TestPprofEndpoint: the profiler index is wired into the handler.
func TestPprofEndpoint(t *testing.T) {
	s := newTestServer(t, Config{}, 3)
	w := get(t, s.Handler(), "/debug/pprof/")
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "goroutine") {
		t.Errorf("pprof index: %d %.80q", w.Code, w.Body.String())
	}
}
