package xmlgen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dtd"
	"repro/internal/xmltree"
)

const shopDTD = `
root shop
shop -> section*
section -> title, item*
title -> #PCDATA
item -> sku, price, stock
sku -> #PCDATA
price -> #PCDATA
stock -> new + used
new -> EMPTY
used -> EMPTY
`

func TestGenerateConforms(t *testing.T) {
	d := dtd.MustParse(shopDTD)
	for seed := int64(0); seed < 20; seed++ {
		doc := Generate(d, Config{Seed: seed, MaxRepeat: 4})
		if err := xmltree.Validate(doc, d); err != nil {
			t.Fatalf("seed %d: generated document does not conform: %v", seed, err)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	d := dtd.MustParse(shopDTD)
	a := Generate(d, Config{Seed: 42, MaxRepeat: 5})
	b := Generate(d, Config{Seed: 42, MaxRepeat: 5})
	if a.XML() != b.XML() {
		t.Errorf("same seed produced different documents")
	}
	c := Generate(d, Config{Seed: 43, MaxRepeat: 5})
	if a.XML() == c.XML() {
		t.Errorf("different seeds produced identical documents")
	}
}

func TestBranchingFactorScalesSize(t *testing.T) {
	d := dtd.MustParse(shopDTD)
	small := Generate(d, Config{Seed: 7, MinRepeat: 1, MaxRepeat: 2})
	large := Generate(d, Config{Seed: 7, MinRepeat: 6, MaxRepeat: 12})
	if small.Size() >= large.Size() {
		t.Errorf("sizes do not scale with branching: %d vs %d", small.Size(), large.Size())
	}
}

func TestGenerateRecursiveBounded(t *testing.T) {
	d := dtd.MustParse(`
root a
a -> b, c
b -> #PCDATA
c -> a*
`)
	doc := Generate(d, Config{Seed: 1, MinRepeat: 1, MaxRepeat: 2, MaxDepth: 8})
	if err := xmltree.Validate(doc, d); err != nil {
		t.Fatalf("recursive doc does not conform: %v", err)
	}
	// Depth must be bounded: MaxDepth plus the minimal completions.
	if h := doc.Height(); h > 8+d.Len()+2 {
		t.Errorf("height %d exceeds bound", h)
	}
}

func TestGenerateRecursiveChoice(t *testing.T) {
	// Recursion escaped through a disjunction branch.
	d := dtd.MustParse(`
root node
node -> leaf + pair
pair -> node, node
leaf -> #PCDATA
`)
	doc := Generate(d, Config{Seed: 3, MaxDepth: 6})
	if err := xmltree.Validate(doc, d); err != nil {
		t.Fatalf("choice-recursive doc does not conform: %v", err)
	}
}

func TestMinHeights(t *testing.T) {
	d := dtd.MustParse(shopDTD)
	h := MinHeights(d)
	// item -> sku, price, stock; stock -> new|used (EMPTY): height(item) =
	// 1 + max(height(sku)=1, height(stock)=1) = 2.
	if h["item"] != 2 {
		t.Errorf("MinHeights[item] = %d, want 2", h["item"])
	}
	if h["new"] != 0 || h["sku"] != 1 {
		t.Errorf("leaf heights = %d, %d", h["new"], h["sku"])
	}
	// shop -> section*: zero repetitions complete immediately.
	if h["shop"] != 0 {
		t.Errorf("MinHeights[shop] = %d, want 0", h["shop"])
	}
}

func TestValueHook(t *testing.T) {
	d := dtd.MustParse("root a\na -> b\nb -> #PCDATA\n")
	doc := Generate(d, Config{Seed: 0, Value: func(r *rand.Rand, label string) string {
		return "fixed-" + label
	}})
	if got := doc.Root.Children[0].Text(); got != "fixed-b" {
		t.Errorf("value hook ignored: %q", got)
	}
}

func TestGenerateNoFiniteCompletionPanics(t *testing.T) {
	d := dtd.MustParse("root a\na -> b\nb -> a\n")
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic for DTD without finite instances")
		}
	}()
	Generate(d, Config{Seed: 0, MaxDepth: 4})
}

// TestGenerateAlwaysConforms is the generator's core property: every
// generated document validates against its DTD.
func TestGenerateAlwaysConforms(t *testing.T) {
	d := dtd.MustParse(`
root r
r -> a*
a -> b + c
b -> d, e
c -> #PCDATA
d -> #PCDATA
e -> f*
f -> #PCDATA
`)
	f := func(seed int64, branch uint8) bool {
		doc := Generate(d, Config{Seed: seed, MaxRepeat: int(branch%6) + 1})
		return xmltree.Conforms(doc, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGenerateAttributes(t *testing.T) {
	d := dtd.MustParse(`
root r
r -> item*
item -> #PCDATA
attlist item id!, note
`)
	doc := Generate(d, Config{Seed: 3, MinRepeat: 4, MaxRepeat: 8})
	if err := xmltree.Validate(doc, d); err != nil {
		t.Fatalf("generated attributes invalid: %v", err)
	}
	sawOptional := false
	sawMissingOptional := false
	for _, item := range doc.Root.Children {
		if _, ok := item.Attr("id"); !ok {
			t.Fatalf("required attribute missing")
		}
		if _, ok := item.Attr("note"); ok {
			sawOptional = true
		} else {
			sawMissingOptional = true
		}
	}
	if !sawOptional || !sawMissingOptional {
		t.Errorf("optional attribute not randomized (present=%v absent=%v)", sawOptional, sawMissingOptional)
	}
}
