// Package xmlgen generates random XML documents conforming to a DTD. It
// stands in for IBM's XML Generator [Diaz/Lovell], which the paper uses
// to produce the Adex data sets D1-D4 by varying the maximum branching
// factor: starred productions repeat between MinRepeat and MaxRepeat
// times, disjunctions pick a random branch, and PCDATA comes from a
// per-label value hook. Generation is fully deterministic for a given
// seed and configuration.
//
// Recursive DTDs are supported: beyond MaxDepth the generator switches to
// a minimal expansion (zero repetitions for stars, the shallowest branch
// for disjunctions) so documents stay finite. MinHeights precomputes the
// shallowest-completion heights used for that choice.
package xmlgen

import (
	"fmt"
	"math/rand"

	"repro/internal/dtd"
	"repro/internal/xmltree"
)

// Config controls generation.
type Config struct {
	// Seed makes generation deterministic. The zero seed is valid.
	Seed int64
	// MinRepeat and MaxRepeat bound how many children a starred production
	// position produces (the XML Generator's branching factor). Defaults:
	// 0 and 3.
	MinRepeat, MaxRepeat int
	// MaxDepth switches generation to minimal expansions below this depth,
	// bounding documents over recursive DTDs. Default: 30.
	MaxDepth int
	// MaxNodes, when positive, switches the whole generation to minimal
	// expansions once that many elements exist. DTDs with several starred
	// recursive positions per production branch supercritically — size
	// grows exponentially in MaxDepth — and this caps the document at
	// roughly MaxNodes elements (plus the minimal completions of open
	// subtrees) regardless of the DTD's branching structure. Default: 0
	// (unlimited).
	MaxNodes int
	// Value produces the PCDATA for a text production, given the element
	// label and the generator's RNG. The default yields short distinct
	// strings ("v0".."v9" per label).
	Value func(r *rand.Rand, label string) string
}

func (c Config) withDefaults() Config {
	if c.MaxRepeat == 0 {
		c.MaxRepeat = 3
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 30
	}
	if c.Value == nil {
		c.Value = func(r *rand.Rand, label string) string {
			return fmt.Sprintf("v%d", r.Intn(10))
		}
	}
	return c
}

// Generate produces a random instance of the DTD. The DTD must pass
// Check; Generate panics otherwise (generation is a test/benchmark
// utility over trusted schemas).
func Generate(d *dtd.DTD, cfg Config) *xmltree.Document {
	if err := d.Check(); err != nil {
		panic(err)
	}
	cfg = cfg.withDefaults()
	g := &generator{
		d:       d,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		heights: MinHeights(d),
	}
	root := xmltree.NewElement(d.Root())
	g.fill(root, 0)
	// Nothing outside holds pointers into a freshly generated tree, so
	// repack it into xmltree's flat arena for evaluation locality.
	doc := xmltree.NewDocument(root)
	doc.Compact()
	return doc
}

type generator struct {
	d       *dtd.DTD
	cfg     Config
	rng     *rand.Rand
	heights map[string]int
	nodes   int
}

func (g *generator) fill(n *xmltree.Node, depth int) {
	// Attributes: required ones always, optional ones with probability ½.
	for _, def := range g.d.Attlist(n.Label) {
		if def.Required || g.rng.Intn(2) == 0 {
			n.SetAttr(def.Name, g.cfg.Value(g.rng, "@"+def.Name))
		}
	}
	c := g.d.MustProduction(n.Label)
	minimal := depth >= g.cfg.MaxDepth ||
		(g.cfg.MaxNodes > 0 && g.nodes >= g.cfg.MaxNodes)
	switch c.Kind {
	case dtd.Empty:
	case dtd.Text:
		n.AppendChild(xmltree.NewText(g.cfg.Value(g.rng, n.Label)))
	case dtd.Star:
		g.repeat(n, c.Items[0].Name, depth, minimal)
	case dtd.Seq:
		for _, it := range c.Items {
			if it.Starred {
				g.repeat(n, it.Name, depth, minimal)
				continue
			}
			g.child(n, it.Name, depth)
		}
	case dtd.Choice:
		g.child(n, g.pick(c.Items, minimal), depth)
	}
}

// repeat emits a random number of children for a starred position.
func (g *generator) repeat(n *xmltree.Node, name string, depth int, minimal bool) {
	count := 0
	if !minimal {
		count = g.cfg.MinRepeat + g.rng.Intn(g.cfg.MaxRepeat-g.cfg.MinRepeat+1)
	}
	for i := 0; i < count; i++ {
		g.child(n, name, depth)
	}
}

func (g *generator) child(n *xmltree.Node, name string, depth int) {
	if depth > g.cfg.MaxDepth+g.d.Len()+64 {
		// A DTD whose required children recurse forever has no finite
		// instances at all; fail loudly rather than looping.
		panic(fmt.Sprintf("xmlgen: DTD has no finite completion below %s", n.Label))
	}
	c := xmltree.NewElement(name)
	n.AppendChild(c)
	g.nodes++
	g.fill(c, depth+1)
}

// pick selects a disjunction branch: uniformly at random normally, the
// shallowest-completing branch in minimal mode.
func (g *generator) pick(items []dtd.Item, minimal bool) string {
	if !minimal {
		return items[g.rng.Intn(len(items))].Name
	}
	best := items[0].Name
	for _, it := range items[1:] {
		if g.heights[it.Name] < g.heights[best] {
			best = it.Name
		}
	}
	return best
}

// MinHeights returns, for each element type, the minimum height of a
// conforming subtree rooted at it (text children count one level). Types
// that cannot complete finitely (pathological recursive DTDs with no
// escape) keep a large sentinel value; Generate still terminates for them
// because minimal mode emits zero children for stars.
func MinHeights(d *dtd.DTD) map[string]int {
	const inf = 1 << 20
	h := make(map[string]int, d.Len())
	for _, t := range d.Types() {
		h[t] = inf
	}
	for changed := true; changed; {
		changed = false
		for _, t := range d.Types() {
			c := d.MustProduction(t)
			var nh int
			switch c.Kind {
			case dtd.Empty:
				nh = 0
			case dtd.Text:
				nh = 1
			case dtd.Star:
				nh = 0 // zero repetitions complete immediately
			case dtd.Seq:
				nh = 0
				for _, it := range c.Items {
					if it.Starred {
						continue
					}
					if ch := h[it.Name]; ch+1 > nh {
						nh = ch + 1
					}
				}
			case dtd.Choice:
				nh = inf
				for _, it := range c.Items {
					if ch := h[it.Name]; ch+1 < nh {
						nh = ch + 1
					}
				}
			}
			if nh > inf {
				nh = inf
			}
			if nh < h[t] {
				h[t] = nh
				changed = true
			}
		}
	}
	return h
}
