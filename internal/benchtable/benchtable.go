// Package benchtable regenerates the paper's evaluation (Section 6,
// Table 1): the four XPath queries Q1-Q4 over four Adex data sets D1-D4,
// comparing three enforcement approaches that all answer the same view
// queries —
//
//	naive     element-level accessibility annotation; child axes widened
//	          to descendant axes plus an [@accessibility="1"] filter
//	rewrite   the paper's security-view query rewriting (Fig. 6)
//	optimize  rewrite plus DTD-constraint optimization (Fig. 10)
//
// The harness measures pure query-evaluation time (as the paper does),
// verifies that all approaches return identical answers, and reports per
// cell timings plus the naive/rewrite and rewrite/optimize speedups whose
// shape Table 1 documents: rewrite beats naive by an order of magnitude
// or more, optimize matches rewrite on Q1/Q2 (reported "-"), improves Q3,
// and proves Q4 empty (zero evaluation).
package benchtable

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/dtds"
	"repro/internal/naive"
	"repro/internal/optimize"
	"repro/internal/rewrite"
	"repro/internal/secview"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// DataSet describes one generated document.
type DataSet struct {
	Name      string
	MaxRepeat int // XML Generator branching factor
}

// DefaultDataSets mirror the paper's D1-D4 size progression (the paper
// scales 3.2 MB to 77 MB ≈ 1:24; these scale node counts similarly).
var DefaultDataSets = []DataSet{
	{Name: "D1", MaxRepeat: 400},
	{Name: "D2", MaxRepeat: 2000},
	{Name: "D3", MaxRepeat: 6400},
	{Name: "D4", MaxRepeat: 9600},
}

// QueryNames fixes the report order.
var QueryNames = []string{"Q1", "Q2", "Q3", "Q4"}

// Cell is one (query, data set) measurement.
type Cell struct {
	Query, DataSet string
	DocNodes       int

	Naive    time.Duration
	Rewrite  time.Duration
	Optimize time.Duration
	// OptimizeDiffers is false when the optimizer could not improve the
	// rewritten query (Table 1 prints "-"); Optimize then just replays the
	// rewrite measurement.
	OptimizeDiffers bool
	// EmptyAfterOptimize marks queries proved empty (Q4): evaluation is
	// avoided entirely.
	EmptyAfterOptimize bool
	// Results is the number of nodes returned (identical across
	// approaches by construction; the harness verifies it).
	Results int

	RewrittenQuery string
	OptimizedQuery string
}

// Report is a full Table 1 run.
type Report struct {
	Cells []Cell
	Sizes map[string]int // data set -> node count
}

// Config controls a run.
type Config struct {
	DataSets []DataSet
	// Repeats averages each timing over this many evaluations (default 3).
	Repeats int
	// Seed feeds the generator (data sets use Seed+i).
	Seed int64
	// Verify cross-checks that the three approaches agree node-for-node.
	Verify bool
	// Indexed evaluates with the label-index evaluator instead of the
	// tree-walking one (the closer analogue of the paper's evaluator
	// [17]); the naive/rewrite gap narrows but persists.
	Indexed bool
}

func (c Config) withDefaults() Config {
	if len(c.DataSets) == 0 {
		c.DataSets = DefaultDataSets
	}
	if c.Repeats == 0 {
		c.Repeats = 3
	}
	return c
}

// Run regenerates Table 1.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	spec := dtds.AdexSpec()
	view, err := secview.Derive(spec)
	if err != nil {
		return nil, err
	}
	rw, err := rewrite.ForView(view)
	if err != nil {
		return nil, err
	}
	opt := optimize.New(dtds.Adex())

	report := &Report{Sizes: make(map[string]int)}
	for i, ds := range cfg.DataSets {
		doc := dtds.GenerateAdex(cfg.Seed+int64(i), ds.MaxRepeat)
		naive.Annotate(spec, doc)
		report.Sizes[ds.Name] = doc.Size()
		var idx *xpath.Index
		if cfg.Indexed {
			idx = xpath.NewIndex(doc)
		}
		for _, qname := range QueryNames {
			cell, err := measure(cfg, rw, opt, ds.Name, qname, doc, idx)
			if err != nil {
				return nil, err
			}
			report.Cells = append(report.Cells, *cell)
		}
	}
	return report, nil
}

func measure(cfg Config, rw *rewrite.Rewriter, opt *optimize.Optimizer, dsName, qname string, doc *xmltree.Document, idx *xpath.Index) (*Cell, error) {
	p, err := xpath.Parse(dtds.AdexQueries[qname])
	if err != nil {
		return nil, err
	}
	pn, err := naive.RewriteQuery(p)
	if err != nil {
		return nil, fmt.Errorf("%s: naive rewrite: %v", qname, err)
	}
	pt, err := rw.Rewrite(p)
	if err != nil {
		return nil, fmt.Errorf("%s: rewrite: %v", qname, err)
	}
	po := opt.Optimize(pt)

	cell := &Cell{
		Query:              qname,
		DataSet:            dsName,
		DocNodes:           doc.Size(),
		OptimizeDiffers:    !xpath.Equal(pt, po),
		EmptyAfterOptimize: xpath.IsEmpty(po),
		RewrittenQuery:     xpath.String(pt),
		OptimizedQuery:     xpath.String(po),
	}

	eval := func(p xpath.Path) []*xmltree.Node {
		if idx != nil {
			return xpath.EvalIndexed(p, idx)
		}
		return xpath.EvalDoc(p, doc)
	}

	if cfg.Verify {
		nv := eval(pn)
		rv := eval(pt)
		ov := eval(po)
		if !sameNodes(nv, rv) || !sameNodes(rv, ov) {
			return nil, fmt.Errorf("%s over %s: approaches disagree (naive %d, rewrite %d, optimize %d)",
				qname, dsName, len(nv), len(rv), len(ov))
		}
		cell.Results = len(rv)
	}

	timeEval := func(p xpath.Path) time.Duration {
		var total time.Duration
		for i := 0; i < cfg.Repeats; i++ {
			start := time.Now()
			eval(p)
			total += time.Since(start)
		}
		return total / time.Duration(cfg.Repeats)
	}

	cell.Naive = timeEval(pn)
	cell.Rewrite = timeEval(pt)
	if cell.EmptyAfterOptimize {
		cell.Optimize = 0
	} else if cell.OptimizeDiffers {
		cell.Optimize = timeEval(po)
	} else {
		cell.Optimize = cell.Rewrite
	}
	return cell, nil
}

func sameNodes(a, b []*xmltree.Node) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Format renders the report in the layout of the paper's Table 1, with
// speedup columns appended.
func (r *Report) Format() string {
	var b strings.Builder
	names := make([]string, 0, len(r.Sizes))
	for n := range r.Sizes {
		names = append(names, n)
	}
	sort.Strings(names)
	b.WriteString("Data sets:\n")
	for _, n := range names {
		fmt.Fprintf(&b, "  %s: %d nodes\n", n, r.Sizes[n])
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-5s %-4s %12s %12s %12s %10s %10s\n",
		"Query", "Data", "Naive", "Rewrite", "Optimize", "N/R", "R/O")
	for _, c := range r.Cells {
		optCol := "-"
		ratioRO := "-"
		if c.EmptyAfterOptimize {
			optCol = "0"
			ratioRO = "∞"
		} else if c.OptimizeDiffers {
			optCol = fmtDur(c.Optimize)
			if c.Optimize > 0 {
				ratioRO = fmt.Sprintf("%.2fx", float64(c.Rewrite)/float64(c.Optimize))
			}
		}
		ratioNR := "-"
		if c.Rewrite > 0 {
			ratioNR = fmt.Sprintf("%.1fx", float64(c.Naive)/float64(c.Rewrite))
		}
		fmt.Fprintf(&b, "%-5s %-4s %12s %12s %12s %10s %10s\n",
			c.Query, c.DataSet, fmtDur(c.Naive), fmtDur(c.Rewrite), optCol, ratioNR, ratioRO)
	}
	return b.String()
}

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3fms", float64(d.Microseconds())/1000)
}
