package benchtable

import (
	"strings"
	"testing"
)

// TestRunSmall runs the full Table 1 pipeline on tiny data sets and pins
// the qualitative shape the paper reports.
func TestRunSmall(t *testing.T) {
	report, err := Run(Config{
		DataSets: []DataSet{{Name: "T1", MaxRepeat: 60}, {Name: "T2", MaxRepeat: 200}},
		Repeats:  1,
		Verify:   true,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(report.Cells) != 8 {
		t.Fatalf("got %d cells, want 8", len(report.Cells))
	}
	if report.Sizes["T1"] >= report.Sizes["T2"] {
		t.Errorf("data sets do not scale: %v", report.Sizes)
	}
	byQuery := make(map[string][]Cell)
	for _, c := range report.Cells {
		byQuery[c.Query] = append(byQuery[c.Query], c)
	}
	// Q1/Q2: optimizer cannot improve (Table 1's "-").
	for _, q := range []string{"Q1", "Q2"} {
		for _, c := range byQuery[q] {
			if c.OptimizeDiffers {
				t.Errorf("%s/%s: optimizer changed the query: %s -> %s", q, c.DataSet, c.RewrittenQuery, c.OptimizedQuery)
			}
		}
	}
	// Q3: optimizer drops the co-existence qualifier.
	for _, c := range byQuery["Q3"] {
		if !c.OptimizeDiffers || c.EmptyAfterOptimize {
			t.Errorf("Q3/%s: expected a non-empty improvement, got %q", c.DataSet, c.OptimizedQuery)
		}
		if strings.Contains(c.OptimizedQuery, "[") {
			t.Errorf("Q3/%s: qualifier not removed: %q", c.DataSet, c.OptimizedQuery)
		}
	}
	// Q4: proved empty.
	for _, c := range byQuery["Q4"] {
		if !c.EmptyAfterOptimize {
			t.Errorf("Q4/%s: not proved empty: %q", c.DataSet, c.OptimizedQuery)
		}
		if c.Results != 0 {
			t.Errorf("Q4/%s: returned %d results", c.DataSet, c.Results)
		}
	}
	// Rewritten queries are precise root paths, not descendant scans.
	for _, c := range report.Cells {
		if strings.Contains(c.RewrittenQuery, "//") {
			t.Errorf("%s/%s: rewritten query still has '//': %q", c.Query, c.DataSet, c.RewrittenQuery)
		}
	}
	out := report.Format()
	for _, want := range []string{"Query", "T1: ", "Q4", "∞"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}
}

// TestNaiveSlowerOnLargerData: the headline shape — naive pays for the
// descendant scans and the gap grows with document size.
func TestNaiveSlowerOnLargerData(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	report, err := Run(Config{
		DataSets: []DataSet{{Name: "M", MaxRepeat: 1500}},
		Repeats:  3,
		Verify:   false,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, c := range report.Cells {
		if c.Naive <= c.Rewrite {
			t.Errorf("%s: naive (%v) not slower than rewrite (%v)", c.Query, c.Naive, c.Rewrite)
		}
	}
}

// TestRunIndexed: the indexed-evaluator variant preserves verification
// and the qualitative shape.
func TestRunIndexed(t *testing.T) {
	report, err := Run(Config{
		DataSets: []DataSet{{Name: "T", MaxRepeat: 120}},
		Repeats:  1,
		Verify:   true,
		Indexed:  true,
	})
	if err != nil {
		t.Fatalf("Run(indexed): %v", err)
	}
	if len(report.Cells) != 4 {
		t.Fatalf("cells = %d", len(report.Cells))
	}
	for _, c := range report.Cells {
		if c.Query == "Q4" && !c.EmptyAfterOptimize {
			t.Errorf("Q4 not proved empty under indexed run")
		}
	}
}
