package policy

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dtds"
	"repro/internal/xmltree"
)

// doctorSpec: doctors see everything except billing details.
const doctorSpec = `
ann(trial, bill) = N
ann(regular, bill) = N
`

// auditorSpec: auditors see only billing information.
const auditorSpec = `
ann(hospital, dept) = Y
ann(dept, patientInfo) = N
ann(dept, clinicalTrial) = N
ann(dept, staffInfo) = N
ann(trial, bill) = Y
ann(regular, bill) = Y
`

func hospitalRegistry(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry(dtds.Hospital())
	if _, err := r.Define("nurse", dtds.NurseSpecSource); err != nil {
		t.Fatalf("Define(nurse): %v", err)
	}
	if _, err := r.Define("doctor", doctorSpec); err != nil {
		t.Fatalf("Define(doctor): %v", err)
	}
	if _, err := r.Define("auditor", auditorSpec); err != nil {
		t.Fatalf("Define(auditor): %v", err)
	}
	return r
}

func ward() *xmltree.Document {
	e, tx := xmltree.E, xmltree.T
	return xmltree.NewDocument(e("hospital",
		e("dept",
			e("clinicalTrial",
				e("patientInfo",
					e("patient", tx("name", "Carol"), tx("wardNo", "6"),
						e("treatment", e("trial", tx("bill", "900")))))),
			e("patientInfo",
				e("patient", tx("name", "Alice"), tx("wardNo", "6"),
					e("treatment", e("regular", tx("bill", "100"), tx("medication", "aspirin"))))),
			e("staffInfo", e("staff", e("nurse", tx("name", "Nina")))),
		),
		e("dept",
			e("clinicalTrial", e("patientInfo")),
			e("patientInfo",
				e("patient", tx("name", "Bob"), tx("wardNo", "7"),
					e("treatment", e("regular", tx("bill", "70"), tx("medication", "ibuprofen"))))),
			e("staffInfo", e("staff", e("doctor", tx("name", "Dan")))),
		),
	))
}

func texts(nodes []*xmltree.Node) []string {
	var out []string
	for _, n := range nodes {
		out = append(out, n.Text())
	}
	return out
}

func TestRegistryClassesSeeDifferentData(t *testing.T) {
	r := hospitalRegistry(t)
	doc := ward()

	// Ward-6 nurse: Carol and Alice.
	nodes, err := r.Query("nurse", map[string]string{"wardNo": "6"}, doc, "//patient/name")
	if err != nil {
		t.Fatalf("nurse query: %v", err)
	}
	if got := texts(nodes); !reflect.DeepEqual(got, []string{"Carol", "Alice"}) {
		t.Errorf("ward-6 nurse sees %v", got)
	}

	// Ward-7 nurse: Bob only, through the same class definition.
	nodes, err = r.Query("nurse", map[string]string{"wardNo": "7"}, doc, "//patient/name")
	if err != nil {
		t.Fatalf("nurse query: %v", err)
	}
	if got := texts(nodes); !reflect.DeepEqual(got, []string{"Bob"}) {
		t.Errorf("ward-7 nurse sees %v", got)
	}

	// Doctors see all patients and the clinical-trial structure, but no
	// bills.
	nodes, err = r.Query("doctor", nil, doc, "//patient/name")
	if err != nil {
		t.Fatalf("doctor query: %v", err)
	}
	if got := texts(nodes); !reflect.DeepEqual(got, []string{"Carol", "Alice", "Bob"}) {
		t.Errorf("doctor sees %v", got)
	}
	nodes, err = r.Query("doctor", nil, doc, "//bill")
	if err != nil {
		t.Fatalf("doctor bill query: %v", err)
	}
	if len(nodes) != 0 {
		t.Errorf("doctor sees %d bills", len(nodes))
	}
	nodes, err = r.Query("doctor", nil, doc, "//clinicalTrial//name")
	if err != nil {
		t.Fatalf("doctor trial query: %v", err)
	}
	if got := texts(nodes); !reflect.DeepEqual(got, []string{"Carol"}) {
		t.Errorf("doctor trial patients = %v", got)
	}

	// Auditors see bills only.
	nodes, err = r.Query("auditor", nil, doc, "//bill")
	if err != nil {
		t.Fatalf("auditor query: %v", err)
	}
	if got := texts(nodes); !reflect.DeepEqual(got, []string{"900", "100", "70"}) {
		t.Errorf("auditor sees bills %v", got)
	}
	nodes, err = r.Query("auditor", nil, doc, "//name | //patient | //medication")
	if err != nil {
		t.Fatalf("auditor name query: %v", err)
	}
	if len(nodes) != 0 {
		t.Errorf("auditor sees %d non-billing nodes", len(nodes))
	}
}

func TestRegistryViewDTDsDiffer(t *testing.T) {
	r := hospitalRegistry(t)
	nurse, err := r.ViewDTD("nurse", map[string]string{"wardNo": "6"})
	if err != nil {
		t.Fatalf("ViewDTD(nurse): %v", err)
	}
	doctor, err := r.ViewDTD("doctor", nil)
	if err != nil {
		t.Fatalf("ViewDTD(doctor): %v", err)
	}
	if nurse.Has("clinicalTrial") {
		t.Errorf("nurse view exposes clinicalTrial")
	}
	if !doctor.Has("clinicalTrial") {
		t.Errorf("doctor view hides clinicalTrial")
	}
	if doctor.Has("bill") {
		t.Errorf("doctor view exposes bill")
	}
}

func TestRegistryEngineCaching(t *testing.T) {
	r := hospitalRegistry(t)
	c, ok := r.Class("nurse")
	if !ok {
		t.Fatalf("nurse class missing")
	}
	e1, err := c.Engine(map[string]string{"wardNo": "6"})
	if err != nil {
		t.Fatalf("Engine: %v", err)
	}
	e2, err := c.Engine(map[string]string{"wardNo": "6"})
	if err != nil {
		t.Fatalf("Engine: %v", err)
	}
	if e1 != e2 {
		t.Errorf("same binding not cached")
	}
	e3, err := c.Engine(map[string]string{"wardNo": "7"})
	if err != nil {
		t.Fatalf("Engine: %v", err)
	}
	if e1 == e3 {
		t.Errorf("different bindings share an engine")
	}
}

func TestRegistryErrors(t *testing.T) {
	r := hospitalRegistry(t)
	if _, err := r.Define("nurse", doctorSpec); err == nil {
		t.Errorf("duplicate class accepted")
	}
	if _, err := r.Define("", doctorSpec); err == nil {
		t.Errorf("empty class name accepted")
	}
	if _, err := r.Define("bad", "ann(nosuch, dept) = N\n"); err == nil {
		t.Errorf("bad annotations accepted")
	}
	if _, err := r.Query("ghost", nil, ward(), "//name"); err == nil {
		t.Errorf("unknown class accepted")
	}
	if _, err := r.Query("nurse", nil, ward(), "//name"); err == nil {
		t.Errorf("missing parameter accepted")
	}
	if _, err := r.ViewDTD("ghost", nil); err == nil {
		t.Errorf("unknown class accepted by ViewDTD")
	}
	other := NewRegistry(dtds.Adex())
	if _, err := other.DefineSpec("x", dtds.NurseSpec()); err == nil {
		t.Errorf("cross-DTD spec accepted")
	}
	if got := r.Names(); !reflect.DeepEqual(got, []string{"nurse", "doctor", "auditor"}) {
		t.Errorf("Names = %v", got)
	}
	if c, _ := r.Class("nurse"); !reflect.DeepEqual(c.Params(), []string{"wardNo"}) {
		t.Errorf("Params = %v", c.Params())
	}
}

// TestRegistryBumpEpochInvalidatesAnswers: after a registry-wide epoch
// bump (a document swap), no cached answer survives — a document
// mutated in place is re-answered from its new content.
func TestRegistryBumpEpochInvalidatesAnswers(t *testing.T) {
	r := NewRegistryWithConfig(dtds.Hospital(), 0, core.Config{AnswerCache: true})
	if _, err := r.Define("nurse", dtds.NurseSpecSource); err != nil {
		t.Fatal(err)
	}
	doc := ward()
	params := map[string]string{"wardNo": "6"}
	before, err := r.Query("nurse", params, doc, "//patient/name")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(texts(before), []string{"Carol", "Alice"}) {
		t.Fatalf("pre-swap answer = %v", texts(before))
	}
	// Second ask is served from the answer cache.
	if _, err := r.Query("nurse", params, doc, "//patient/name"); err != nil {
		t.Fatal(err)
	}
	c, _ := r.Class("nurse")
	e, err := c.Engine(params)
	if err != nil {
		t.Fatal(err)
	}
	if s := e.Stats().AnswerCache; s.Hits != 1 {
		t.Fatalf("warm-up did not hit the cache: %+v", s)
	}

	// Swap the document in place: Bob moves into ward 6, so the second
	// dept becomes visible to the ward-6 nurse.
	moved := false
	for _, n := range doc.Root.Children {
		for _, pi := range n.Children {
			for _, p := range pi.Children {
				for _, f := range p.Children {
					if f.Label == "wardNo" && f.Text() == "7" && p.Children[0].Text() == "Bob" {
						f.Children[0].Data = "6"
						moved = true
					}
				}
			}
		}
	}
	if !moved {
		t.Fatal("did not find Bob's wardNo to mutate")
	}
	r.BumpEpoch()
	if got := e.Epoch(); got != 1 {
		t.Errorf("engine epoch after registry bump = %d", got)
	}
	after, err := r.Query("nurse", params, doc, "//patient/name")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(texts(after), []string{"Carol", "Alice", "Bob"}) {
		t.Errorf("post-swap answer = %v, want [Carol Alice Bob] — a pre-swap answer leaked", texts(after))
	}
}
