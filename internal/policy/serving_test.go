package policy

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dtds"
)

// TestEngineCacheBounded: adversarial parameter bindings (a fresh
// $wardNo per request) must not grow the per-class engine cache past
// its cap.
func TestEngineCacheBounded(t *testing.T) {
	r := NewRegistryWithConfig(dtds.Hospital(), 4, core.Config{})
	c, err := r.Define("nurse", dtds.NurseSpecSource)
	if err != nil {
		t.Fatalf("Define: %v", err)
	}
	for i := 0; i < 30; i++ {
		if _, err := c.Engine(map[string]string{"wardNo": fmt.Sprintf("%d", i)}); err != nil {
			t.Fatalf("Engine(%d): %v", i, err)
		}
	}
	s := c.EngineCacheStats()
	if s.Entries > 4 {
		t.Errorf("engine cache grew to %d entries, cap 4", s.Entries)
	}
	if s.Evictions == 0 {
		t.Errorf("no evictions after 30 distinct bindings")
	}
	// Evicted bindings still work — they are just re-derived.
	e, err := c.Engine(map[string]string{"wardNo": "0"})
	if err != nil {
		t.Fatalf("Engine after eviction: %v", err)
	}
	if e == nil {
		t.Fatalf("nil engine")
	}
}

// TestRegistryStats: per-class rollup reports hits and misses.
func TestRegistryStats(t *testing.T) {
	r := hospitalRegistry(t)
	c, _ := r.Class("nurse")
	for i := 0; i < 3; i++ {
		if _, err := c.Engine(map[string]string{"wardNo": "6"}); err != nil {
			t.Fatalf("Engine: %v", err)
		}
	}
	stats := r.Stats()
	if len(stats) == 0 {
		t.Fatalf("empty registry stats")
	}
	var nurse *ClassStats
	for i := range stats {
		if stats[i].Class == "nurse" {
			nurse = &stats[i]
		}
	}
	if nurse == nil {
		t.Fatalf("nurse class missing from stats: %+v", stats)
	}
	if nurse.Engines.Hits != 2 || nurse.Engines.Misses != 1 {
		t.Errorf("nurse engine cache = %+v, want 2 hits / 1 miss", nurse.Engines)
	}
}

// TestRegistryConcurrentQueries: many goroutines, many bindings, one
// registry (run with -race). Exercises the engine cache and each
// engine's plan cache together.
func TestRegistryConcurrentQueries(t *testing.T) {
	r := hospitalRegistry(t)
	doc := dtds.GenerateHospital(5, 3)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				ward := fmt.Sprintf("%d", (g+i)%3)
				if _, err := r.Query("nurse", map[string]string{"wardNo": ward}, doc, "//patient/name"); err != nil {
					t.Errorf("Query ward %s: %v", ward, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	c, _ := r.Class("nurse")
	if s := c.EngineCacheStats(); s.Hits == 0 {
		t.Errorf("no engine-cache hits under concurrency: %+v", s)
	}
}

// TestRegistryEngineConfigPropagates: registry-level engine config
// reaches derived engines (observable through their plan caches).
func TestRegistryEngineConfigPropagates(t *testing.T) {
	r := NewRegistryWithConfig(dtds.Hospital(), 0, core.Config{PlanCacheCapacity: 7})
	if _, err := r.Define("nurse", dtds.NurseSpecSource); err != nil {
		t.Fatalf("Define: %v", err)
	}
	c, _ := r.Class("nurse")
	e, err := c.Engine(map[string]string{"wardNo": "6"})
	if err != nil {
		t.Fatalf("Engine: %v", err)
	}
	if got := e.Stats().PlanCache.Capacity; got != 7 {
		t.Errorf("plan cache capacity = %d, want 7", got)
	}
}

// TestRegistryIndexedModePropagates: the Indexed engine config reaches
// class engines through the registry, and descendant-class queries over
// a large document are answered by the index-backed evaluator with the
// same result set.
func TestRegistryIndexedModePropagates(t *testing.T) {
	plain := hospitalRegistry(t)
	idx := NewRegistryWithConfig(dtds.Hospital(), 0, core.Config{Indexed: true, IndexThreshold: -1})
	if _, err := idx.Define("nurse", dtds.NurseSpecSource); err != nil {
		t.Fatalf("Define: %v", err)
	}
	doc := dtds.GenerateHospital(11, 5)
	params := map[string]string{"wardNo": "1"}
	for _, q := range []string{"//patient/name", "//dept//treatment//bill"} {
		want, err := plain.QueryCtx(context.Background(), "nurse", params, doc, q)
		if err != nil {
			t.Fatalf("plain %q: %v", q, err)
		}
		got, err := idx.QueryCtx(context.Background(), "nurse", params, doc, q)
		if err != nil {
			t.Fatalf("indexed %q: %v", q, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%q: indexed %d nodes, plain %d", q, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%q: node %d differs", q, i)
			}
		}
	}
	c, _ := idx.Class("nurse")
	e, err := c.Engine(params)
	if err != nil {
		t.Fatalf("Engine: %v", err)
	}
	s := e.Stats()
	if s.IndexedEvals == 0 {
		t.Errorf("registry engine recorded no indexed evals: %+v", s)
	}
	if s.IndexCache.Entries == 0 {
		t.Errorf("index cache empty after descendant queries: %+v", s.IndexCache)
	}
}
