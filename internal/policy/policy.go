// Package policy manages the set of access-control policies declared
// over one document DTD — the administrator side of the paper's Fig. 3.
// Each user class has an access specification (possibly with $parameters
// such as the nurse policy's $wardNo); the registry derives and caches
// one enforcement engine per (class, parameter binding), so a ward-6
// nurse and a ward-7 nurse share the class definition but get different
// security views.
package policy

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/access"
	"repro/internal/anscache"
	"repro/internal/core"
	"repro/internal/dtd"
	"repro/internal/obs"
	"repro/internal/plancache"
	"repro/internal/xmltree"
)

// ErrUnknownClass marks requests naming a user class the registry does
// not define — the client's fault. Test with errors.Is.
var ErrUnknownClass = errors.New("unknown class")

// BindingError marks a parameter-binding failure: the caller supplied a
// binding the class's specification cannot accept (a missing or
// malformed $parameter). It is the client's fault, distinguishing it
// from view-derivation failures, which are the server's. Test with
// errors.As.
type BindingError struct{ Err error }

func (e *BindingError) Error() string { return e.Err.Error() }
func (e *BindingError) Unwrap() error { return e.Err }

// DefaultEngineCacheCapacity bounds the per-class engine cache: each
// distinct parameter binding ($wardNo=6 vs $wardNo=7) derives its own
// security view, and untrusted binding values must not grow memory
// without limit.
const DefaultEngineCacheCapacity = 128

// Registry holds the user classes defined over one document DTD.
type Registry struct {
	d         *dtd.DTD
	classes   map[string]*Class
	order     []string
	engineCap int
	engineCfg core.Config
}

// Class is one user class: a named, possibly parameterized access
// specification plus the bounded cache of derived engines (a Class is
// safe for concurrent use).
type Class struct {
	Name string
	Spec *access.Spec

	engineCfg core.Config
	engines   *plancache.Cache[*core.Engine]
}

// NewRegistry returns an empty registry over the document DTD.
func NewRegistry(d *dtd.DTD) *Registry {
	return NewRegistryWithConfig(d, 0, core.Config{})
}

// NewRegistryWithConfig is NewRegistry with serving-layer tuning:
// engineCap bounds each class's engine cache (0 means
// DefaultEngineCacheCapacity) and engineCfg is handed to every derived
// engine (plan-cache sizes, parallel evaluation).
func NewRegistryWithConfig(d *dtd.DTD, engineCap int, engineCfg core.Config) *Registry {
	if engineCap <= 0 {
		engineCap = DefaultEngineCacheCapacity
	}
	return &Registry{
		d:         d,
		classes:   make(map[string]*Class),
		engineCap: engineCap,
		engineCfg: engineCfg,
	}
}

// DTD returns the document DTD the registry's policies annotate.
func (r *Registry) DTD() *dtd.DTD { return r.d }

// Define parses an annotation source and registers it as a user class.
func (r *Registry) Define(name, annotations string) (*Class, error) {
	spec, err := access.ParseAnnotations(r.d, annotations)
	if err != nil {
		return nil, fmt.Errorf("policy: class %s: %v", name, err)
	}
	return r.DefineSpec(name, spec)
}

// DefineSpec registers a pre-built specification as a user class. The
// specification must be over the registry's DTD.
func (r *Registry) DefineSpec(name string, spec *access.Spec) (*Class, error) {
	if name == "" {
		return nil, fmt.Errorf("policy: empty class name")
	}
	if _, dup := r.classes[name]; dup {
		return nil, fmt.Errorf("policy: class %q already defined", name)
	}
	if spec.D != r.d {
		return nil, fmt.Errorf("policy: class %q: specification is over a different DTD", name)
	}
	c := &Class{
		Name:      name,
		Spec:      spec,
		engineCfg: r.engineCfg,
		engines:   plancache.New[*core.Engine](r.engineCap),
	}
	r.classes[name] = c
	r.order = append(r.order, name)
	return c, nil
}

// Class looks a user class up by name.
func (r *Registry) Class(name string) (*Class, bool) {
	c, ok := r.classes[name]
	return c, ok
}

// Names returns the class names in definition order.
func (r *Registry) Names() []string {
	return append([]string(nil), r.order...)
}

// Params returns the class's specification parameters, sorted.
func (c *Class) Params() []string { return c.Spec.Vars() }

// Engine returns the enforcement engine for one parameter binding,
// deriving the security view on first use and caching it with LRU
// eviction (an evicted binding is re-derived on its next use). Classes
// without parameters accept a nil binding.
func (c *Class) Engine(params map[string]string) (*core.Engine, error) {
	return c.EngineCtx(context.Background(), params)
}

// EngineCtx is Engine with observability: a context carrying a
// QueryMetrics carrier learns whether the engine came from the cache,
// and a context carrying a trace span gets a "derive_engine" child span
// on a miss (view derivation is the expensive path). Concurrent misses
// may derive more than once and the last Put wins (GetOrCompute
// singleflights, but this path wants per-request metrics attribution,
// and a duplicate derivation is harmless).
func (c *Class) EngineCtx(ctx context.Context, params map[string]string) (*core.Engine, error) {
	key := bindingKey(params)
	if e, ok := c.engines.Get(key); ok {
		if qm := obs.QueryMetricsFromContext(ctx); qm != nil {
			qm.EngineCacheHit = true
		}
		obs.SpanFromContext(ctx).SetAttr("engine_cache", "hit")
		return e, nil
	}
	obs.SpanFromContext(ctx).SetAttr("engine_cache", "miss")
	_, sp := obs.StartSpan(ctx, "derive_engine")
	spec := c.Spec
	if len(c.Params()) > 0 || len(params) > 0 {
		bound, err := c.Spec.Bind(params)
		if err != nil {
			sp.Finish()
			return nil, fmt.Errorf("policy: class %s: %w", c.Name, &BindingError{Err: err})
		}
		spec = bound
	}
	e, err := core.NewWithConfig(spec, c.engineCfg)
	sp.Finish()
	if err != nil {
		return nil, fmt.Errorf("policy: class %s: %v", c.Name, err)
	}
	c.engines.Put(key, e)
	return e, nil
}

// EngineCacheStats reports the class's engine-cache counters.
func (c *Class) EngineCacheStats() plancache.Stats { return c.engines.Stats() }

// BumpEpoch advances the epoch of every engine currently cached for the
// class (see core.Engine.BumpEpoch): their cached answers and
// per-document indexes become unreachable. Engines derived afterward
// start at epoch 0 with empty caches, which is equally safe.
func (c *Class) BumpEpoch() {
	c.engines.Each(func(_ string, e *core.Engine) { e.BumpEpoch() })
}

// BumpEpoch advances the epoch of every cached engine in every class.
// Servers call it when a document is rebound (swapped, reloaded) so no
// answer or index derived against the old tree can be served against
// the new one — even when the new document lands at the same address.
func (r *Registry) BumpEpoch() {
	for _, name := range r.order {
		r.classes[name].BumpEpoch()
	}
}

// BindingStats is the serving counters of one cached engine (one
// parameter binding of a class).
type BindingStats struct {
	// Binding is the canonical parameter binding ("" for parameterless
	// classes, "wardNo=6;" style otherwise).
	Binding string `json:"binding"`
	// RewriteMode is the engine's rewriting strategy ("flat",
	// "height-free", or "unfold"; see core.Engine.RewriteMode).
	RewriteMode string     `json:"rewrite_mode"`
	Engine      core.Stats `json:"engine"`
}

// ClassStats is a registry-level rollup for one user class.
type ClassStats struct {
	Class   string          `json:"class"`
	Engines plancache.Stats `json:"engine_cache"`
	// AnswerCache sums the answer-cache counters over the class's cached
	// engines, so /statsz attributes hits and misses to the class that
	// earned them (the Prometheus sv_anscache_* counters stay aggregated
	// across classes). All zero when the answer cache is off.
	AnswerCache anscache.Stats `json:"answer_cache"`
	// Bindings holds the per-binding engine counters (plan cache,
	// evaluation path, cancellations) for every engine currently cached,
	// sorted by binding key.
	Bindings []BindingStats `json:"bindings"`
}

// Stats reports the engine-cache counters and the cached engines' own
// serving counters for every class in definition order.
func (r *Registry) Stats() []ClassStats {
	out := make([]ClassStats, 0, len(r.order))
	for _, name := range r.order {
		c := r.classes[name]
		cs := ClassStats{Class: name, Engines: c.EngineCacheStats()}
		c.engines.Each(func(key string, e *core.Engine) {
			es := e.Stats()
			cs.AnswerCache.Add(es.AnswerCache)
			cs.Bindings = append(cs.Bindings, BindingStats{
				Binding:     key,
				RewriteMode: e.RewriteMode(),
				Engine:      es,
			})
		})
		sort.Slice(cs.Bindings, func(i, j int) bool { return cs.Bindings[i].Binding < cs.Bindings[j].Binding })
		out = append(out, cs)
	}
	return out
}

// Query answers a view query for one user: class, parameter binding,
// document, query text.
func (r *Registry) Query(class string, params map[string]string, doc *xmltree.Document, query string) ([]*xmltree.Node, error) {
	return r.QueryCtx(context.Background(), class, params, doc, query)
}

// QueryCtx is Query honoring a context: the evaluation polls the context
// cooperatively and returns ctx.Err() once it is done (engine derivation
// and plan rewriting complete normally either way, so retries hit warm
// caches).
func (r *Registry) QueryCtx(ctx context.Context, class string, params map[string]string, doc *xmltree.Document, query string) ([]*xmltree.Node, error) {
	c, ok := r.classes[class]
	if !ok {
		return nil, fmt.Errorf("policy: %w %q", ErrUnknownClass, class)
	}
	e, err := c.EngineCtx(ctx, params)
	if err != nil {
		return nil, err
	}
	return e.QueryStringCtx(ctx, doc, query)
}

// ExplainCtx answers a view query like QueryCtx but through the
// engine's explain path: every pipeline phase is measured fresh and the
// intermediate query strings are reported (see core.Engine.ExplainCtx).
func (r *Registry) ExplainCtx(ctx context.Context, class string, params map[string]string, doc *xmltree.Document, query string) (*core.Explain, error) {
	c, ok := r.classes[class]
	if !ok {
		return nil, fmt.Errorf("policy: %w %q", ErrUnknownClass, class)
	}
	e, err := c.EngineCtx(ctx, params)
	if err != nil {
		return nil, err
	}
	return e.ExplainStringCtx(ctx, doc, query)
}

// ViewDTD returns the schema published to one user class under a
// parameter binding.
func (r *Registry) ViewDTD(class string, params map[string]string) (*dtd.DTD, error) {
	c, ok := r.classes[class]
	if !ok {
		return nil, fmt.Errorf("policy: %w %q", ErrUnknownClass, class)
	}
	e, err := c.Engine(params)
	if err != nil {
		return nil, err
	}
	return e.ViewDTD(), nil
}

// bindingKey canonicalizes a parameter binding for the engine cache.
func bindingKey(params map[string]string) string {
	if len(params) == 0 {
		return ""
	}
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s;", k, params[k])
	}
	return b.String()
}
