// Package policy manages the set of access-control policies declared
// over one document DTD — the administrator side of the paper's Fig. 3.
// Each user class has an access specification (possibly with $parameters
// such as the nurse policy's $wardNo); the registry derives and caches
// one enforcement engine per (class, parameter binding), so a ward-6
// nurse and a ward-7 nurse share the class definition but get different
// security views.
package policy

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/dtd"
	"repro/internal/xmltree"
)

// Registry holds the user classes defined over one document DTD.
type Registry struct {
	d       *dtd.DTD
	classes map[string]*Class
	order   []string
}

// Class is one user class: a named, possibly parameterized access
// specification plus the cache of derived engines (guarded by mu; a
// Class is safe for concurrent use).
type Class struct {
	Name string
	Spec *access.Spec

	mu      sync.Mutex
	engines map[string]*core.Engine
}

// NewRegistry returns an empty registry over the document DTD.
func NewRegistry(d *dtd.DTD) *Registry {
	return &Registry{d: d, classes: make(map[string]*Class)}
}

// DTD returns the document DTD the registry's policies annotate.
func (r *Registry) DTD() *dtd.DTD { return r.d }

// Define parses an annotation source and registers it as a user class.
func (r *Registry) Define(name, annotations string) (*Class, error) {
	spec, err := access.ParseAnnotations(r.d, annotations)
	if err != nil {
		return nil, fmt.Errorf("policy: class %s: %v", name, err)
	}
	return r.DefineSpec(name, spec)
}

// DefineSpec registers a pre-built specification as a user class. The
// specification must be over the registry's DTD.
func (r *Registry) DefineSpec(name string, spec *access.Spec) (*Class, error) {
	if name == "" {
		return nil, fmt.Errorf("policy: empty class name")
	}
	if _, dup := r.classes[name]; dup {
		return nil, fmt.Errorf("policy: class %q already defined", name)
	}
	if spec.D != r.d {
		return nil, fmt.Errorf("policy: class %q: specification is over a different DTD", name)
	}
	c := &Class{Name: name, Spec: spec, engines: make(map[string]*core.Engine)}
	r.classes[name] = c
	r.order = append(r.order, name)
	return c, nil
}

// Class looks a user class up by name.
func (r *Registry) Class(name string) (*Class, bool) {
	c, ok := r.classes[name]
	return c, ok
}

// Names returns the class names in definition order.
func (r *Registry) Names() []string {
	return append([]string(nil), r.order...)
}

// Params returns the class's specification parameters, sorted.
func (c *Class) Params() []string { return c.Spec.Vars() }

// Engine returns the enforcement engine for one parameter binding,
// deriving the security view on first use and caching it. Classes
// without parameters accept a nil binding.
func (c *Class) Engine(params map[string]string) (*core.Engine, error) {
	key := bindingKey(params)
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.engines[key]; ok {
		return e, nil
	}
	spec := c.Spec
	if len(c.Params()) > 0 || len(params) > 0 {
		bound, err := c.Spec.Bind(params)
		if err != nil {
			return nil, fmt.Errorf("policy: class %s: %v", c.Name, err)
		}
		spec = bound
	}
	e, err := core.New(spec)
	if err != nil {
		return nil, fmt.Errorf("policy: class %s: %v", c.Name, err)
	}
	c.engines[key] = e
	return e, nil
}

// Query answers a view query for one user: class, parameter binding,
// document, query text.
func (r *Registry) Query(class string, params map[string]string, doc *xmltree.Document, query string) ([]*xmltree.Node, error) {
	c, ok := r.classes[class]
	if !ok {
		return nil, fmt.Errorf("policy: unknown class %q", class)
	}
	e, err := c.Engine(params)
	if err != nil {
		return nil, err
	}
	return e.QueryString(doc, query)
}

// ViewDTD returns the schema published to one user class under a
// parameter binding.
func (r *Registry) ViewDTD(class string, params map[string]string) (*dtd.DTD, error) {
	c, ok := r.classes[class]
	if !ok {
		return nil, fmt.Errorf("policy: unknown class %q", class)
	}
	e, err := c.Engine(params)
	if err != nil {
		return nil, err
	}
	return e.ViewDTD(), nil
}

// bindingKey canonicalizes a parameter binding for the engine cache.
func bindingKey(params map[string]string) string {
	if len(params) == 0 {
		return ""
	}
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s;", k, params[k])
	}
	return b.String()
}
