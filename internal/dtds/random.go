package dtds

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/access"
	"repro/internal/dtd"
)

// RecursiveGen parameterizes the randomized recursive-DTD generator used
// by the height-free differential harness, the fuzz seed corpus, and
// xmlgen -builtin random-recursive. The zero value takes the defaults.
type RecursiveGen struct {
	// Depth is the number of element layers n0 → n1 → … → n{Depth-1} on
	// the forward chain; every layer also carries a #PCDATA leaf v{i}.
	// Default 4.
	Depth int
	// Branching is the maximum number of extra starred edges added per
	// layer. Extra edges that point at the same or an earlier layer are
	// back-edges and make the DTD recursive; one back-edge from the last
	// layer is always present so the result is recursive for every seed.
	// Default 2.
	Branching int
	// Density is the probability that RandomRecursivePolicySource
	// annotates an individual production edge. Default 0.5.
	Density float64
	// StarredOnly restricts N and conditional annotations to starred
	// production items (required items draw only Y). A required child
	// that is hidden or conditional makes materialization abort on
	// instances where σ does not select exactly one node, so harnesses
	// that compare against the materialized view set this; the starred
	// items carry the recursive structure, which keeps the policies
	// interesting for deep documents. Default false (annotate anything).
	StarredOnly bool
}

func (c RecursiveGen) withDefaults() RecursiveGen {
	if c.Depth <= 0 {
		c.Depth = 4
	}
	if c.Branching <= 0 {
		c.Branching = 2
	}
	if c.Density <= 0 {
		c.Density = 0.5
	}
	return c
}

// RandomRecursiveDTDSource emits a random recursive DTD in the compact
// syntax. The shape is a forward chain of element layers, each with a
// text leaf, plus random starred cross- and back-edges; back-edges close
// cycles through the chain, so the DTD is always recursive. All
// recursive references sit under a star, which keeps xmlgen's minimal
// expansion (and therefore materialization in tests) finite.
func RandomRecursiveDTDSource(r *rand.Rand, cfg RecursiveGen) string {
	cfg = cfg.withDefaults()
	k := cfg.Depth
	extras := make([][]int, k)
	for i := 0; i < k; i++ {
		seen := make(map[int]bool)
		for j := r.Intn(cfg.Branching + 1); j > 0; j-- {
			t := r.Intn(k)
			if t == i+1 || seen[t] {
				continue // the chain already has this edge, or a duplicate
			}
			seen[t] = true
			extras[i] = append(extras[i], t)
		}
		if i == k-1 && len(extras[i]) == 0 {
			// Guarantee recursion: the last layer always reaches back into
			// the chain (t ≤ i closes a cycle via the chain edges).
			t := r.Intn(k)
			extras[i] = append(extras[i], t)
		}
	}
	var b strings.Builder
	b.WriteString("root n0\n")
	for i := 0; i < k; i++ {
		items := []string{fmt.Sprintf("v%d", i)}
		if i+1 < k {
			items = append(items, fmt.Sprintf("n%d", i+1))
		}
		for _, t := range extras[i] {
			items = append(items, fmt.Sprintf("n%d*", t))
		}
		fmt.Fprintf(&b, "n%d -> %s\n", i, strings.Join(items, ", "))
	}
	for i := 0; i < k; i++ {
		fmt.Fprintf(&b, "v%d -> #PCDATA\n", i)
	}
	return b.String()
}

// RandomRecursiveDTD is RandomRecursiveDTDSource parsed.
func RandomRecursiveDTD(r *rand.Rand, cfg RecursiveGen) *dtd.DTD {
	return dtd.MustParse(RandomRecursiveDTDSource(r, cfg))
}

// RandomRecursivePolicySource emits a random annotation source over a
// DTD produced by RandomRecursiveDTDSource: each element-to-element and
// element-to-leaf production edge is annotated with probability
// cfg.Density, drawing from Y, N, and value-based [q] annotations whose
// constants overlap xmlgen's default value pool so qualifiers select
// non-trivial subsets. Some of the resulting policies derive
// non-recursive views or fail derivation outright — callers that need a
// recursive view filter on View.IsRecursive.
func RandomRecursivePolicySource(r *rand.Rand, d *dtd.DTD, cfg RecursiveGen) string {
	cfg = cfg.withDefaults()
	var b strings.Builder
	for _, x := range d.Types() {
		c, ok := d.Production(x)
		if !ok || c.Kind == dtd.Text || c.Kind == dtd.Empty {
			continue
		}
		for _, it := range c.Items {
			if r.Float64() >= cfg.Density {
				continue
			}
			ann := randomAnnotation(r, d, it.Name)
			if cfg.StarredOnly && !it.Starred && ann != "Y" {
				ann = "Y"
			}
			fmt.Fprintf(&b, "ann(%s, %s) = %s\n", x, it.Name, ann)
		}
	}
	return b.String()
}

// randomAnnotation picks one annotation value for an edge into child y.
func randomAnnotation(r *rand.Rand, d *dtd.DTD, y string) string {
	switch r.Intn(10) {
	case 0, 1, 2: // hide
		return "N"
	case 3, 4, 5: // expose
		return "Y"
	default: // conditional on a text leaf below y
		leaf := randomLeafBelow(r, d, y)
		if leaf == "" {
			return "Y"
		}
		switch r.Intn(3) {
		case 0:
			return fmt.Sprintf("[%s]", leaf)
		case 1:
			return fmt.Sprintf("[%s = %q]", leaf, fmt.Sprintf("v%d", r.Intn(10)))
		default:
			return fmt.Sprintf("[//%s = %q]", leaf, fmt.Sprintf("v%d", r.Intn(10)))
		}
	}
}

// randomLeafBelow returns a random #PCDATA element type reachable from y
// ("" when there is none).
func randomLeafBelow(r *rand.Rand, d *dtd.DTD, y string) string {
	var leaves []string
	for t := range d.Reachable(y) {
		if c, ok := d.Production(t); ok && c.Kind == dtd.Text {
			leaves = append(leaves, t)
		}
	}
	if len(leaves) == 0 {
		return ""
	}
	// Reachable returns a map; sort for per-seed determinism.
	sort.Strings(leaves)
	return leaves[r.Intn(len(leaves))]
}

// RandomRecursiveSpec draws (DTD, policy) pairs until one parses into a
// specification (annotation sources are always syntactically valid, so
// this succeeds on the first try; the loop is defense in depth) and
// returns it. Derivation of the security view can still fail or produce
// a non-recursive view; callers handle both.
func RandomRecursiveSpec(r *rand.Rand, cfg RecursiveGen) *access.Spec {
	d := RandomRecursiveDTD(r, cfg)
	return access.MustParseAnnotations(d, RandomRecursivePolicySource(r, d, cfg))
}
