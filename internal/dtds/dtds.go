// Package dtds embeds the schemas and access specifications used by the
// paper: the hospital DTD of Fig. 1 with the nurse policy of Example 3.1,
// an Adex-like classified-advertising DTD (modeled on the NAA Adex
// standard the paper's Section 6 evaluates; see DESIGN.md for the
// substitution) with the real-estate/buyer security policy, and the
// recursive DTD of Fig. 7. All values are parsed once at init from
// sources that the package's tests keep in sync with the paper.
package dtds

import (
	"fmt"
	"math/rand"

	"repro/internal/access"
	"repro/internal/dtd"
	"repro/internal/xmlgen"
	"repro/internal/xmltree"
)

// HospitalDTDSource is the hospital schema of the paper's Fig. 1 in the
// compact DTD syntax.
const HospitalDTDSource = `
root hospital
hospital -> dept*
dept -> clinicalTrial, patientInfo, staffInfo
clinicalTrial -> patientInfo
patientInfo -> patient*
patient -> name, wardNo, treatment
treatment -> trial + regular
trial -> bill
regular -> bill, medication
staffInfo -> staff*
staff -> doctor + nurse
doctor -> name
nurse -> name
name -> #PCDATA
wardNo -> #PCDATA
bill -> #PCDATA
medication -> #PCDATA
`

// NurseSpecSource is the nurse access policy of Example 3.1: nurses see
// one ward's data, never learn which patients are in clinical trials, and
// see treatment bills and medication without the form of treatment.
const NurseSpecSource = `
ann(hospital, dept) = [*/patient/wardNo = $wardNo]
ann(dept, clinicalTrial) = N
ann(clinicalTrial, patientInfo) = Y
ann(treatment, trial) = N
ann(treatment, regular) = N
ann(trial, bill) = Y
ann(regular, bill) = Y
ann(regular, medication) = Y
`

// Hospital returns the hospital DTD.
func Hospital() *dtd.DTD { return dtd.MustParse(HospitalDTDSource) }

// NurseSpec returns the nurse access specification over the hospital DTD
// with $wardNo still unbound.
func NurseSpec() *access.Spec {
	return access.MustParseAnnotations(Hospital(), NurseSpecSource)
}

// AdexDTDSource is an Adex-like DTD: classified-advertising data with
// buyer records under head and ad instances under body, covering the
// element types and structural constraints the paper's Section 6
// exploits (buyer-info's co-existing company-id/contact-info children,
// the house/apartment disjunction, and r-e.warranty appearing under house
// but not apartment).
const AdexDTDSource = `
root adex
adex -> head, body
head -> transaction-info, buyer-list
transaction-info -> transaction-id, date-info
transaction-id -> #PCDATA
date-info -> #PCDATA
buyer-list -> buyer-info*
buyer-info -> company-id, contact-info, billing-info
company-id -> #PCDATA
contact-info -> contact-name, contact-phone, contact-address
contact-name -> #PCDATA
contact-phone -> #PCDATA
contact-address -> street, city, state, zip
street -> #PCDATA
city -> #PCDATA
state -> #PCDATA
zip -> #PCDATA
billing-info -> account-number, credit-rating
account-number -> #PCDATA
credit-rating -> #PCDATA
body -> ad-instance*
ad-instance -> ad-id, category, ad-content
ad-id -> #PCDATA
category -> #PCDATA
ad-content -> real-estate + employment + automotive + merchandise
real-estate -> house + apartment
house -> location, r-e.asking-price, r-e.warranty, house-features
apartment -> location, r-e.unit-type, rent, apartment-features
location -> street, city, state, zip
r-e.asking-price -> #PCDATA
r-e.warranty -> #PCDATA
r-e.unit-type -> #PCDATA
rent -> #PCDATA
house-features -> bedrooms, bathrooms, garage
apartment-features -> bedrooms, bathrooms, floor
bedrooms -> #PCDATA
bathrooms -> #PCDATA
garage -> #PCDATA
floor -> #PCDATA
employment -> job-title, salary, employer
job-title -> #PCDATA
salary -> #PCDATA
employer -> #PCDATA
automotive -> make, model, year, price
make -> #PCDATA
model -> #PCDATA
year -> #PCDATA
price -> #PCDATA
merchandise -> item-name, condition, asking
item-name -> #PCDATA
condition -> #PCDATA
asking -> #PCDATA
`

// AdexSpecSource is the Section 6 policy: the children of the root are
// denied and only the buyer records and real-estate advertisements are
// re-exposed. The derived view is adex -> buyer-info*, real-estate* with
// all hidden plumbing short-cut — a prune-only view with no dummies,
// which is what makes the naive element-annotation baseline applicable.
const AdexSpecSource = `
ann(adex, head) = N
ann(adex, body) = N
ann(buyer-list, buyer-info) = Y
ann(buyer-info, billing-info) = N
ann(ad-content, real-estate) = Y
`

// Adex returns the Adex-like DTD.
func Adex() *dtd.DTD { return dtd.MustParse(AdexDTDSource) }

// AdexSpec returns the Section 6 access specification over the Adex DTD.
func AdexSpec() *access.Spec {
	return access.MustParseAnnotations(Adex(), AdexSpecSource)
}

// AdexQueries are the four benchmark queries of Table 1, posed over the
// Adex security view. Q4 is stated at the real-estate node (see DESIGN.md:
// the paper's own rewrite output for Q4 selects real-estate nodes with
// house and apartment qualifiers, which is the form whose emptiness the
// exclusive constraint proves).
var AdexQueries = map[string]string{
	"Q1": "//buyer-info/contact-info",
	"Q2": "//house/r-e.warranty | //apartment/r-e.warranty",
	"Q3": "//buyer-info[//company-id and //contact-info]",
	"Q4": "//real-estate[house/r-e.asking-price and apartment/r-e.unit-type]",
}

// GenerateAdex produces a deterministic Adex document. maxRepeat is the
// XML Generator's maximum branching factor, which the paper varies to
// obtain the four data set sizes D1-D4.
func GenerateAdex(seed int64, maxRepeat int) *xmltree.Document {
	return xmlgen.Generate(Adex(), xmlgen.Config{
		Seed:      seed,
		MinRepeat: maxRepeat / 2,
		MaxRepeat: maxRepeat,
		Value: func(r *rand.Rand, label string) string {
			return fmt.Sprintf("%s-%d", label, r.Intn(1000))
		},
	})
}

// Fig7DTDSource is the recursive document DTD behind the paper's Fig. 7:
// a carries data (b) and a list of sub-a's through c.
const Fig7DTDSource = `
root a
a -> b, c
b -> #PCDATA
c -> a*
`

// Fig7SpecSource hides the c layer while keeping the recursive a's: the
// derived security view is the recursive a -> b, a* of Fig. 7(b).
const Fig7SpecSource = `
ann(a, c) = N
ann(c, a) = Y
`

// Fig7 returns the recursive document DTD of Fig. 7.
func Fig7() *dtd.DTD { return dtd.MustParse(Fig7DTDSource) }

// Fig7Spec returns the specification that derives the recursive view.
func Fig7Spec() *access.Spec {
	return access.MustParseAnnotations(Fig7(), Fig7SpecSource)
}

// ForumDTDSource is a realistic recursive schema: threads nest through
// replies to arbitrary depth, posts carry public content plus moderation
// fields.
const ForumDTDSource = `
root forum
forum -> thread*
thread -> post, replies
post -> author, body, modnote
author -> #PCDATA
body -> #PCDATA
modnote -> #PCDATA
replies -> thread*
`

// ForumGuestSpecSource hides moderation notes from guests while keeping
// the recursive thread structure intact — the derived view DTD stays
// recursive and query rewriting goes through Section 4.2 unfolding.
const ForumGuestSpecSource = `
ann(post, modnote) = N
`

// Forum returns the recursive forum DTD.
func Forum() *dtd.DTD { return dtd.MustParse(ForumDTDSource) }

// ForumGuestSpec returns the guest policy over the forum DTD.
func ForumGuestSpec() *access.Spec {
	return access.MustParseAnnotations(Forum(), ForumGuestSpecSource)
}

// GenerateForum produces a deterministic forum document; maxDepth bounds
// the reply nesting.
func GenerateForum(seed int64, maxRepeat, maxDepth int) *xmltree.Document {
	return xmlgen.Generate(Forum(), xmlgen.Config{
		Seed:      seed,
		MinRepeat: 1,
		MaxRepeat: maxRepeat,
		MaxDepth:  maxDepth,
		Value: func(r *rand.Rand, label string) string {
			return fmt.Sprintf("%s-%d", label, r.Intn(100))
		},
	})
}

// GenerateHospital produces a deterministic hospital document with the
// given branching factor; wardNo values cycle over small integers so ward
// qualifiers select non-trivial subsets.
func GenerateHospital(seed int64, maxRepeat int) *xmltree.Document {
	ward := 0
	return xmlgen.Generate(Hospital(), xmlgen.Config{
		Seed:      seed,
		MinRepeat: 1,
		MaxRepeat: maxRepeat,
		Value: func(r *rand.Rand, label string) string {
			if label == "wardNo" {
				ward++
				return fmt.Sprintf("%d", ward%4)
			}
			return fmt.Sprintf("%s-%d", label, r.Intn(1000))
		},
	})
}
