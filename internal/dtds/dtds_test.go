package dtds

import (
	"testing"

	"repro/internal/secview"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

func TestSchemasParse(t *testing.T) {
	if got := Hospital().Root(); got != "hospital" {
		t.Errorf("hospital root = %q", got)
	}
	if got := Adex().Root(); got != "adex" {
		t.Errorf("adex root = %q", got)
	}
	if !Fig7().IsRecursive() {
		t.Errorf("Fig7 DTD not recursive")
	}
	if Adex().IsRecursive() || Hospital().IsRecursive() {
		t.Errorf("non-recursive schemas reported recursive")
	}
	if n := Adex().Len(); n < 40 {
		t.Errorf("Adex DTD has only %d types", n)
	}
}

func TestSpecsParse(t *testing.T) {
	if got := NurseSpec().Vars(); len(got) != 1 || got[0] != "wardNo" {
		t.Errorf("nurse vars = %v", got)
	}
	if got := AdexSpec().Vars(); len(got) != 0 {
		t.Errorf("adex vars = %v", got)
	}
	if got := Fig7Spec().Edges(); len(got) != 2 {
		t.Errorf("fig7 spec edges = %v", got)
	}
}

func TestAdexViewShape(t *testing.T) {
	v, err := secview.Derive(AdexSpec())
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	// Prune-only view: adex -> buyer-info*, real-estate*; no dummies.
	c, ok := v.DTD.Production("adex")
	if !ok {
		t.Fatalf("view has no adex production")
	}
	if got := c.String(); got != "buyer-info*, real-estate*" {
		t.Errorf("adex view production = %q", got)
	}
	if len(v.DummyOf) != 0 {
		t.Errorf("adex view has dummies: %v", v.DummyOf)
	}
	for _, hidden := range []string{"head", "body", "ad-instance", "employment", "automotive", "billing-info"} {
		if v.DTD.Has(hidden) {
			t.Errorf("hidden type %s in view DTD", hidden)
		}
	}
	for _, visible := range []string{"buyer-info", "contact-info", "company-id", "real-estate", "house", "apartment", "r-e.warranty"} {
		if !v.DTD.Has(visible) {
			t.Errorf("visible type %s missing from view DTD", visible)
		}
	}
	// Soundness and completeness on a generated instance.
	if _, err := secview.CheckSoundComplete(v, GenerateAdex(11, 3)); err != nil {
		t.Errorf("CheckSoundComplete: %v", err)
	}
}

func TestGenerateAdexConforms(t *testing.T) {
	doc := GenerateAdex(5, 4)
	if err := xmltree.Validate(doc, Adex()); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Branching factor scales size.
	small := GenerateAdex(5, 2)
	large := GenerateAdex(5, 10)
	if small.Size() >= large.Size() {
		t.Errorf("sizes do not scale: %d vs %d", small.Size(), large.Size())
	}
}

func TestGenerateHospitalConforms(t *testing.T) {
	doc := GenerateHospital(5, 3)
	if err := xmltree.Validate(doc, Hospital()); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Ward numbers cycle over a small set so qualifiers select subsets.
	wards := map[string]bool{}
	for _, n := range xpath.EvalDoc(xpath.MustParse("//wardNo"), doc) {
		wards[n.Text()] = true
	}
	if len(wards) < 2 {
		t.Errorf("only %d distinct wards generated", len(wards))
	}
}

func TestAdexQueriesParse(t *testing.T) {
	if len(AdexQueries) != 4 {
		t.Fatalf("expected 4 benchmark queries")
	}
	for name, q := range AdexQueries {
		if _, err := xpath.Parse(q); err != nil {
			t.Errorf("%s does not parse: %v", name, err)
		}
	}
}

func TestNurseViewOnGeneratedData(t *testing.T) {
	bound, err := NurseSpec().Bind(map[string]string{"wardNo": "1"})
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	v, err := secview.Derive(bound)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	if _, err := secview.CheckSoundComplete(v, GenerateHospital(3, 3)); err != nil {
		t.Errorf("CheckSoundComplete: %v", err)
	}
}

func TestForumScenario(t *testing.T) {
	if !Forum().IsRecursive() {
		t.Fatalf("forum DTD not recursive")
	}
	doc := GenerateForum(9, 2, 8)
	if err := xmltree.Validate(doc, Forum()); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	v, err := secview.Derive(ForumGuestSpec())
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	if !v.DTD.IsRecursive() {
		t.Errorf("guest view lost recursion")
	}
	if v.DTD.Has("modnote") {
		t.Errorf("modnote exposed in guest view")
	}
	if _, err := secview.CheckSoundComplete(v, doc); err != nil {
		t.Errorf("CheckSoundComplete: %v", err)
	}
}
