// Package safety implements the enforcement style of the related work
// the paper compares against (Murata et al. [22], and the reject-based
// standards XACML/XACL [25, 16]): users query the *document* under the
// full document DTD, and enforcement decides per query whether it is
//
//   - safe      — it can only return accessible nodes, so it runs as-is;
//   - unsafe    — it may return inaccessible nodes, requiring either a
//     run-time accessibility filter over the results ([22]) or outright
//     rejection ([25, 16]).
//
// The static classification is the approximate safety check of [22]
// rebuilt on this repository's substrates: the query's reach set over
// the DTD graph is intersected with the static accessibility
// possibilities of the specification. It is sound in both directions it
// needs to be: "safe" is only reported when every reachable type is
// always-accessible, so a safe query never needs filtering.
//
// The package exists for comparison — it demonstrates the limitations
// the paper's security views remove: the full document DTD is exposed
// (no schema hiding, so the Example 1.1 inference attack works against
// filter-based enforcement), reject-mode refuses reasonable queries, and
// filter-mode pays a per-document accessibility computation at query
// time.
package safety

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/dtd"
	"repro/internal/optimize"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Verdict classifies a query against a specification.
type Verdict int

const (
	// Safe queries return only accessible nodes on every instance.
	Safe Verdict = iota
	// Unsafe queries may return inaccessible nodes.
	Unsafe
)

func (v Verdict) String() string {
	if v == Safe {
		return "safe"
	}
	return "unsafe"
}

// Mode selects what happens to unsafe queries.
type Mode int

const (
	// Filter evaluates the query and drops inaccessible results ([22]).
	Filter Mode = iota
	// Reject refuses the query entirely ([25, 16]).
	Reject
)

// Analyzer performs the static safety check for one specification.
type Analyzer struct {
	spec  *access.Spec
	opt   *optimize.Optimizer
	poss  map[string]access.AccSet
	reach map[string]bool
}

// New builds an analyzer for a bound specification.
func New(spec *access.Spec) (*Analyzer, error) {
	if vars := spec.Vars(); len(vars) > 0 {
		return nil, fmt.Errorf("safety: specification has unbound parameters %v", vars)
	}
	return &Analyzer{
		spec:  spec,
		opt:   optimize.New(spec.D),
		poss:  access.PossibleAccessibility(spec),
		reach: spec.D.Reachable(spec.D.Root()),
	}, nil
}

// Classify statically decides whether a document query is safe: every
// element type it can reach must be always-accessible. Text results
// (pseudo reach type "#text") are safe only when every text-producing
// type is always-accessible and no text annotation denies content —
// coarse, but sound, and text-returning queries are a corner of the
// baseline anyway.
func (a *Analyzer) Classify(p xpath.Path) Verdict {
	for _, t := range a.opt.Reach(p) {
		if t == textReach {
			if !a.textAlwaysSafe() {
				return Unsafe
			}
			continue
		}
		ps := a.poss[t]
		if ps.CanBeInaccessible || !ps.CanBeAccessible {
			return Unsafe
		}
	}
	return Safe
}

const textReach = "#text"

func (a *Analyzer) textAlwaysSafe() bool {
	for _, t := range a.spec.D.Types() {
		if !a.reach[t] {
			continue
		}
		if c := a.spec.D.MustProduction(t); c.Kind != dtd.Text {
			continue
		}
		ps := a.poss[t]
		if ps.CanBeInaccessible || !ps.CanBeAccessible {
			return false
		}
		if ann, ok := a.spec.Ann(t, dtd.TextLabel); ok && ann.Kind == access.Deny {
			return false
		}
	}
	return true
}

// Enforce answers a document query under the chosen mode. Safe queries
// run directly. Unsafe queries are rejected (Reject) or evaluated and
// post-filtered by the paper's Section 3.2 accessibility (Filter) — the
// run-time cost the security-view approach avoids.
func (a *Analyzer) Enforce(p xpath.Path, doc *xmltree.Document, mode Mode) ([]*xmltree.Node, error) {
	verdict := a.Classify(p)
	res := xpath.EvalDoc(p, doc)
	if verdict == Safe {
		return res, nil
	}
	if mode == Reject {
		return nil, fmt.Errorf("safety: query %s is unsafe and was rejected", xpath.String(p))
	}
	acc := access.Accessibility(a.spec, doc)
	var out []*xmltree.Node
	for _, n := range res {
		if acc[n] {
			out = append(out, n)
		}
	}
	return out, nil
}
