package safety

import (
	"reflect"
	"testing"

	"repro/internal/access"
	"repro/internal/dtds"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

func adexAnalyzer(t *testing.T) *Analyzer {
	t.Helper()
	a, err := New(dtds.AdexSpec())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return a
}

func TestClassify(t *testing.T) {
	a := adexAnalyzer(t)
	cases := []struct {
		query string
		want  Verdict
	}{
		// buyer-info and real-estate subtrees are always accessible...
		{"//buyer-info/contact-info", Safe},
		{"//house/r-e.asking-price", Safe},
		// ...except the denied billing-info subtree.
		{"//billing-info", Unsafe},
		{"//buyer-info/*", Unsafe}, // wildcard covers billing-info
		// head/body plumbing is inaccessible.
		{"head", Unsafe},
		{"//ad-instance", Unsafe},
		{"//employment", Unsafe},
		// Unions are safe only when both branches are.
		{"//house | //apartment", Safe},
		{"//house | //employment", Unsafe},
		// Unreachable labels select nothing: trivially safe.
		{"//nosuch", Safe},
	}
	for _, tc := range cases {
		if got := a.Classify(xpath.MustParse(tc.query)); got != tc.want {
			t.Errorf("Classify(%q) = %s, want %s", tc.query, got, tc.want)
		}
	}
}

func TestClassifyConditional(t *testing.T) {
	spec, err := dtds.NurseSpec().Bind(map[string]string{"wardNo": "6"})
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	a, err := New(spec)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Everything below the conditional dept edge may be inaccessible.
	for _, q := range []string{"//patient", "dept", "//bill"} {
		if got := a.Classify(xpath.MustParse(q)); got != Unsafe {
			t.Errorf("Classify(%q) = %s, want unsafe", q, got)
		}
	}
	// The root itself is safe.
	if got := a.Classify(xpath.MustParse(".")); got != Safe {
		t.Errorf("Classify(.) = %s", got)
	}
}

func TestClassifyDeniedText(t *testing.T) {
	spec := access.MustParseAnnotations(dtds.Hospital(), "ann(wardNo, str) = N\n")
	a, err := New(spec)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := a.Classify(xpath.MustParse("//wardNo/text()")); got != Unsafe {
		t.Errorf("denied text classified %s", got)
	}
	if got := a.Classify(xpath.MustParse("//wardNo")); got != Safe {
		t.Errorf("element above denied text classified %s", got)
	}
}

func TestEnforceModes(t *testing.T) {
	a := adexAnalyzer(t)
	doc := dtds.GenerateAdex(31, 4)

	// Safe query: runs as-is.
	safeQ := xpath.MustParse("//buyer-info/contact-info")
	res, err := a.Enforce(safeQ, doc, Reject)
	if err != nil {
		t.Fatalf("Enforce(safe, Reject): %v", err)
	}
	if len(res) == 0 {
		t.Errorf("safe query returned nothing")
	}

	// Unsafe query, reject mode: refused even though parts are harmless —
	// the brittleness the paper criticizes.
	unsafeQ := xpath.MustParse("//buyer-info/*")
	if _, err := a.Enforce(unsafeQ, doc, Reject); err == nil {
		t.Errorf("unsafe query not rejected")
	}

	// Unsafe query, filter mode: results match the ground truth.
	res, err = a.Enforce(unsafeQ, doc, Filter)
	if err != nil {
		t.Fatalf("Enforce(unsafe, Filter): %v", err)
	}
	acc := access.Accessibility(dtds.AdexSpec(), doc)
	for _, n := range res {
		if !acc[n] {
			t.Errorf("filtered result contains inaccessible node %s", n.Path())
		}
		if n.Label == "billing-info" {
			t.Errorf("billing-info leaked through the filter")
		}
	}
	// company-id and contact-info children survive.
	labels := map[string]bool{}
	for _, n := range res {
		labels[n.Label] = true
	}
	if !labels["company-id"] || !labels["contact-info"] {
		t.Errorf("filter dropped accessible results: %v", labels)
	}
}

// TestInferenceAttackWorksAgainstFiltering demonstrates why the paper's
// views are stronger: under filter-based enforcement with the full DTD
// exposed, the Example 1.1 attack distinguishes trial patients.
func TestInferenceAttackWorksAgainstFiltering(t *testing.T) {
	spec := access.MustParseAnnotations(dtds.Hospital(), `
ann(dept, clinicalTrial) = N
ann(clinicalTrial, patientInfo) = Y
`)
	a, err := New(spec)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	e, tx := xmltree.E, xmltree.T
	doc := xmltree.NewDocument(e("hospital",
		e("dept",
			e("clinicalTrial",
				e("patientInfo",
					e("patient", tx("name", "Carol"), tx("wardNo", "6"),
						e("treatment", e("trial", tx("bill", "900")))))),
			e("patientInfo",
				e("patient", tx("name", "Alice"), tx("wardNo", "6"),
					e("treatment", e("regular", tx("bill", "100"), tx("medication", "m"))))),
			e("staffInfo"),
		),
	))
	run := func(q string) []string {
		res, err := a.Enforce(xpath.MustParse(q), doc, Filter)
		if err != nil {
			t.Fatalf("Enforce(%q): %v", q, err)
		}
		var out []string
		for _, n := range res {
			out = append(out, n.Text())
		}
		return out
	}
	p1 := run("//dept//patientInfo/patient/name")
	p2 := run("//dept/patientInfo/patient/name")
	// The filter lets both queries through (the names themselves are
	// accessible), and their difference reveals Carol's trial membership —
	// exactly what the security-view rewriting prevents.
	if reflect.DeepEqual(p1, p2) {
		t.Fatalf("expected the attack to succeed under filtering: p1=%v p2=%v", p1, p2)
	}
	if len(p1) != 2 || len(p2) != 1 {
		t.Errorf("attack shape unexpected: p1=%v p2=%v", p1, p2)
	}
}

func TestNewRejectsUnbound(t *testing.T) {
	if _, err := New(dtds.NurseSpec()); err == nil {
		t.Errorf("unbound spec accepted")
	}
}
