package cli

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadSpecBuiltins(t *testing.T) {
	for _, name := range []string{"hospital", "adex", "fig7"} {
		if _, err := LoadSpec(name, "", ""); err != nil {
			t.Errorf("LoadSpec(%s): %v", name, err)
		}
	}
	if _, err := LoadSpec("ghost", "", ""); err == nil {
		t.Errorf("unknown builtin accepted")
	}
	if _, err := LoadSpec("", "", ""); err == nil {
		t.Errorf("missing paths accepted")
	}
}

func TestLoadSpecFromFiles(t *testing.T) {
	dir := t.TempDir()
	dtdPath := filepath.Join(dir, "d.dtd")
	specPath := filepath.Join(dir, "s.ann")
	if err := os.WriteFile(dtdPath, []byte("root a\na -> b\nb -> #PCDATA\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(specPath, []byte("ann(a, b) = N\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := LoadSpec("", dtdPath, specPath)
	if err != nil {
		t.Fatalf("LoadSpec: %v", err)
	}
	if _, ok := spec.Ann("a", "b"); !ok {
		t.Errorf("annotation lost")
	}
	if _, err := LoadSpec("", dtdPath, filepath.Join(dir, "missing")); err == nil {
		t.Errorf("missing spec file accepted")
	}
	if _, err := LoadSpec("", filepath.Join(dir, "missing"), specPath); err == nil {
		t.Errorf("missing dtd file accepted")
	}
}

func TestLoadDTDElementSyntax(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "e.dtd")
	if err := os.WriteFile(path, []byte("<!ELEMENT a (#PCDATA)>"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := LoadDTD(path)
	if err != nil {
		t.Fatalf("LoadDTD: %v", err)
	}
	if d.Root() != "a" {
		t.Errorf("root = %q", d.Root())
	}
}

func TestParams(t *testing.T) {
	var p Params
	if err := p.Set("wardNo=6"); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if err := p.Set("x=y"); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if err := p.Set("novalue"); err == nil {
		t.Errorf("malformed param accepted")
	}
	env := p.Env()
	if env["wardNo"] != "6" || env["x"] != "y" {
		t.Errorf("Env = %v", env)
	}
	if p.String() == "" {
		t.Errorf("String empty")
	}
}

func TestBindIfNeeded(t *testing.T) {
	spec, _ := LoadSpec("hospital", "", "")
	var p Params
	_ = p.Set("wardNo=6")
	bound, err := BindIfNeeded(spec, p)
	if err != nil {
		t.Fatalf("BindIfNeeded: %v", err)
	}
	if len(bound.Vars()) != 0 {
		t.Errorf("vars remain: %v", bound.Vars())
	}
	// Missing binding errors.
	if _, err := BindIfNeeded(spec, nil); err == nil {
		t.Errorf("unbound spec accepted")
	}
	// No-op for parameterless specs.
	adex, _ := LoadSpec("adex", "", "")
	same, err := BindIfNeeded(adex, nil)
	if err != nil || same != adex {
		t.Errorf("parameterless spec rebound: %v", err)
	}
}
