// Package cli holds the plumbing shared by the command-line tools:
// loading DTDs and specifications from files or built-in scenarios, and
// the repeatable -param flag for binding specification parameters.
package cli

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/access"
	"repro/internal/dtd"
	"repro/internal/dtds"
)

// LoadSpec resolves an access specification from either a built-in
// scenario name (hospital, adex, fig7) or a DTD file plus an annotation
// file.
func LoadSpec(builtin, dtdPath, specPath string) (*access.Spec, error) {
	switch builtin {
	case "hospital":
		return dtds.NurseSpec(), nil
	case "adex":
		return dtds.AdexSpec(), nil
	case "fig7":
		return dtds.Fig7Spec(), nil
	case "":
	default:
		return nil, fmt.Errorf("unknown builtin %q (want hospital, adex, or fig7)", builtin)
	}
	if dtdPath == "" || specPath == "" {
		return nil, fmt.Errorf("need -dtd and -spec (or -builtin)")
	}
	d, err := LoadDTD(dtdPath)
	if err != nil {
		return nil, err
	}
	specSrc, err := os.ReadFile(specPath)
	if err != nil {
		return nil, err
	}
	return access.ParseAnnotations(d, string(specSrc))
}

// LoadDTD reads a DTD file, accepting both the compact syntax and
// standard <!ELEMENT> declarations (detected by content).
func LoadDTD(path string) (*dtd.DTD, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if strings.Contains(string(src), "<!ELEMENT") {
		return dtd.ParseElementSyntax(string(src))
	}
	return dtd.Parse(string(src))
}

// BindIfNeeded applies -param bindings when the specification has
// parameters or bindings were given.
func BindIfNeeded(spec *access.Spec, params Params) (*access.Spec, error) {
	env := params.Env()
	if len(env) == 0 && len(spec.Vars()) == 0 {
		return spec, nil
	}
	return spec.Bind(env)
}

// Params is a repeatable "-param name=value" flag.
type Params []string

// String implements flag.Value.
func (p *Params) String() string { return strings.Join(*p, ",") }

// Set implements flag.Value.
func (p *Params) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("expected name=value, got %q", v)
	}
	*p = append(*p, v)
	return nil
}

// Env converts the collected bindings into an environment map.
func (p Params) Env() map[string]string {
	env := make(map[string]string, len(p))
	for _, kv := range p {
		if k, v, ok := strings.Cut(kv, "="); ok {
			env[k] = v
		}
	}
	return env
}
