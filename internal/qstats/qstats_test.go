package qstats

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func obsWith(eval time.Duration) Observation {
	return Observation{
		Total:        eval + time.Millisecond,
		Eval:         eval,
		EvalMode:     "sequential",
		SetRepr:      "bitset",
		NodesVisited: 10,
		ResultCount:  3,
	}
}

func TestObserveAccumulates(t *testing.T) {
	r := New(0)
	for i := 0; i < 5; i++ {
		o := obsWith(time.Duration(i+1) * time.Millisecond)
		o.PlanCacheHit = i > 0
		o.AnswerCacheOutcome = "miss"
		r.Observe("nurse", "/hospital/ward/patient", "//patient", o)
	}
	top := r.Top(0, SortEvalTime)
	if len(top) != 1 {
		t.Fatalf("tracked %d fingerprints, want 1", len(top))
	}
	fs := top[0]
	if fs.Count != 5 || fs.CountSlack != 0 {
		t.Errorf("count = %d (slack %d), want 5 exact", fs.Count, fs.CountSlack)
	}
	if fs.PlanCacheHits != 4 {
		t.Errorf("plan cache hits = %d, want 4", fs.PlanCacheHits)
	}
	if fs.AnsCacheMisses != 5 || fs.AnsCacheMissRate != 1 {
		t.Errorf("anscache misses = %d rate %g, want 5 rate 1", fs.AnsCacheMisses, fs.AnsCacheMissRate)
	}
	if fs.EvalModes["sequential"] != 5 || fs.SetReprs["bitset"] != 5 {
		t.Errorf("mode/repr tallies = %v / %v", fs.EvalModes, fs.SetReprs)
	}
	if fs.NodesVisited != 50 || fs.ResultNodes != 15 {
		t.Errorf("nodes = %d results = %d, want 50/15", fs.NodesVisited, fs.ResultNodes)
	}
	// 1+2+3+4+5 ms of eval time.
	if fs.EvalSumUs != 15000 {
		t.Errorf("eval sum = %dus, want 15000", fs.EvalSumUs)
	}
	if fs.Eval.Count != 5 || fs.Total.Count != 5 {
		t.Errorf("digest counts = %d/%d, want 5", fs.Eval.Count, fs.Total.Count)
	}
	if fs.LastSeenUnixUs == 0 {
		t.Error("last-seen timestamp not set")
	}
	if fs.Class != "nurse" || fs.Query != "//patient" || fs.Plan != "/hospital/ward/patient" {
		t.Errorf("identity fields = %+v", fs)
	}
	if fs.Fingerprint != Fingerprint("nurse", "/hospital/ward/patient") {
		t.Errorf("fingerprint %q does not match Fingerprint()", fs.Fingerprint)
	}
}

// Fingerprints are per (class, plan): same plan under two classes, or
// two plans under one class, never share a row.
func TestFingerprintIdentity(t *testing.T) {
	r := New(0)
	r.Observe("nurse", "/a/b", "//b", obsWith(time.Millisecond))
	r.Observe("doctor", "/a/b", "//b", obsWith(time.Millisecond))
	r.Observe("nurse", "/a/c", "//c", obsWith(time.Millisecond))
	if got := r.Stats().Fingerprints; got != 3 {
		t.Fatalf("tracked %d fingerprints, want 3", got)
	}
	if Fingerprint("nurse", "/a/b") == Fingerprint("doctor", "/a/b") {
		t.Error("class does not contribute to the fingerprint hash")
	}
}

// The space-saving bound: under adversarial query diversity the
// registry never exceeds its capacity, the Count sum over tracked rows
// still equals the observation total exactly, and a heavy hitter
// observed throughout keeps an exact (slack-free) count.
func TestSpaceSavingBound(t *testing.T) {
	r := New(32)
	cap := r.Capacity()
	const distinct = 1000
	heavy := "/hot/query"
	for i := 0; i < distinct; i++ {
		r.Observe("c", heavy, heavy, obsWith(time.Millisecond))
		plan := "/cold/" + strings.Repeat("x", i%7) + string(rune('a'+i%26)) + itoa(i)
		r.Observe("c", plan, plan, obsWith(time.Microsecond))
	}
	st := r.Stats()
	if st.Fingerprints > cap {
		t.Fatalf("tracked %d fingerprints, capacity %d", st.Fingerprints, cap)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions under 1000 distinct fingerprints")
	}
	all := r.Top(0, SortCount)
	var sum uint64
	var hot *FingerprintStats
	for i := range all {
		sum += all[i].Count
		if all[i].Plan == heavy {
			hot = &all[i]
		}
	}
	if sum != st.Observations || sum != 2*distinct {
		t.Errorf("count sum = %d, observations = %d, want %d", sum, st.Observations, 2*distinct)
	}
	if hot == nil {
		t.Fatal("heavy hitter evicted")
	}
	if hot.Count != distinct || hot.CountSlack != 0 {
		t.Errorf("heavy hitter count = %d slack = %d, want %d exact", hot.Count, hot.CountSlack, distinct)
	}
	// Every row's error bound is honest: count never below slack.
	for _, fs := range all {
		if fs.CountSlack > fs.Count {
			t.Errorf("row %q: slack %d exceeds count %d", fs.Plan, fs.CountSlack, fs.Count)
		}
	}
}

func TestTopSortAndLimit(t *testing.T) {
	r := New(0)
	for i := 0; i < 3; i++ {
		r.Observe("c", "/cheap", "/cheap", obsWith(time.Microsecond))
	}
	r.Observe("c", "/slow", "/slow", obsWith(50*time.Millisecond))
	o := obsWith(time.Millisecond)
	o.AnswerCacheOutcome = "miss"
	r.Observe("c", "/missy", "/missy", o)

	if top := r.Top(1, SortEvalTime); len(top) != 1 || top[0].Plan != "/slow" {
		t.Errorf("top by eval_time = %+v, want /slow", top)
	}
	if top := r.Top(1, SortCount); len(top) != 1 || top[0].Plan != "/cheap" {
		t.Errorf("top by count = %+v, want /cheap", top)
	}
	if top := r.Top(1, SortMissRate); len(top) != 1 || top[0].Plan != "/missy" {
		t.Errorf("top by miss_rate = %+v, want /missy", top)
	}
	if top := r.Top(1, SortTotalTime); len(top) != 1 || top[0].Plan != "/slow" {
		t.Errorf("top by total_time = %+v, want /slow", top)
	}
	if all := r.Top(0, ""); len(all) != 3 {
		t.Errorf("Top(0) returned %d rows, want all 3", len(all))
	}
}

// Stored sample texts are clipped; long plans still fingerprint on the
// full text (two plans sharing a 256-byte prefix stay distinct rows).
func TestTextClipping(t *testing.T) {
	r := New(0)
	long := strings.Repeat("/x", 10000)
	r.Observe("c", long+"/a", long, obsWith(time.Millisecond))
	r.Observe("c", long+"/b", long, obsWith(time.Millisecond))
	all := r.Top(0, SortCount)
	// The fingerprint normalizes on the clipped text, so these two
	// collapse into one row — the documented memory/bounded-text
	// tradeoff; what must never happen is an unbounded stored string.
	if len(all) != 1 {
		t.Errorf("clipped plans tracked as %d rows, want 1", len(all))
	}
	for _, fs := range all {
		if len(fs.Plan) > MaxTextLen || len(fs.Query) > MaxTextLen {
			t.Errorf("stored text exceeds MaxTextLen: plan %d, query %d bytes", len(fs.Plan), len(fs.Query))
		}
	}
}

// A nil registry is a no-op sink, so callers need no guard.
func TestNilRegistry(t *testing.T) {
	var r *Registry
	r.Observe("c", "/p", "/q", obsWith(time.Millisecond))
	if got := r.Top(5, SortCount); got != nil {
		t.Errorf("nil Top = %v", got)
	}
	if got := r.Stats(); got != (Stats{}) {
		t.Errorf("nil Stats = %+v", got)
	}
}

// Concurrent observers and readers: run under -race, and check the
// count-sum invariant from a reader racing the writers (the sum over a
// snapshot can never exceed the observation counter read afterward).
func TestConcurrentObserve(t *testing.T) {
	r := New(64)
	var writers, reader sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 2000; i++ {
				plan := "/w" + itoa(w) + "/q" + itoa(i%100)
				r.Observe("c", plan, plan, obsWith(time.Microsecond))
			}
		}(w)
	}
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var sum uint64
			for _, fs := range r.Top(0, SortCount) {
				sum += fs.Count
			}
			if obs := r.Stats().Observations; sum > obs {
				t.Errorf("count sum %d exceeds observations %d", sum, obs)
				return
			}
		}
	}()
	writers.Wait()
	close(stop)
	reader.Wait()

	var sum uint64
	for _, fs := range r.Top(0, SortCount) {
		sum += fs.Count
	}
	if want := r.Stats().Observations; sum != want || want != 8000 {
		t.Errorf("quiescent count sum = %d, observations = %d, want 8000", sum, want)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}
