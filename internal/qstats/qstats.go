// Package qstats is the per-query-fingerprint statistics registry
// behind the server's /queryz endpoint — pg_stat_statements for the
// security-view serving stack. A fingerprint identifies one query shape
// as the answer cache sees it: the (user class, optimized-plan text)
// pair, so two surface queries that rewrite and optimize to the same
// plan share one row, while the same query under two parameter bindings
// (whose views differ, hence whose plans differ) get separate rows.
//
// Per fingerprint the registry keeps request counts, per-phase latency
// digests (reusing internal/latency, so /queryz percentiles are honest
// the same way /statsz ones are), eval-mode and set-representation
// tallies, plan/answer-cache outcome counts, nodes-visited and
// result-size sums, and a last-seen timestamp.
//
// Cardinality is bounded by a sharded space-saving top-K structure:
// when a shard is full, a new fingerprint replaces the shard's
// minimum-count entry and inherits its count as an error bound
// (CountSlack), so heavy hitters stay exact while an adversarial stream
// of distinct query shapes can never grow memory without limit. The
// space-saving inheritance keeps one accounting invariant exact at all
// times: the Count sum over every tracked fingerprint equals the total
// number of observations — which the serving layer pins against
// sv_pipeline_total (observations happen strictly after the pipeline
// counter increments, so any snapshot's /queryz count sum is at most
// the pipeline total, with equality at quiescence).
//
// Units follow the repo-wide discipline: nanoseconds internally (the
// digests), microseconds at the JSON edge (FingerprintStats).
package qstats

import (
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/latency"
)

// DefaultCapacity bounds the tracked fingerprints across all shards.
// Sized like the plan cache: a serving workload has far fewer distinct
// (class, plan) shapes than requests, and 512 exact heavy hitters is
// ample attribution for an operator chasing a p99 regression.
const DefaultCapacity = 512

// numShards spreads fingerprints over independently locked shards so
// concurrent request completions do not serialize on one mutex.
const numShards = 16

// MaxTextLen bounds the stored per-fingerprint query and plan texts. A
// pathological multi-kilobyte query still gets a row, but its stored
// sample is clipped so the registry's memory stays proportional to the
// fingerprint bound, not to adversarial query length.
const MaxTextLen = 256

// Sort keys accepted by Top (and the /queryz ?sort= parameter).
const (
	SortEvalTime  = "eval_time"  // cumulative eval-phase time (default)
	SortTotalTime = "total_time" // cumulative end-to-end time
	SortCount     = "count"      // request count
	SortMissRate  = "miss_rate"  // answer-cache miss rate, count-weighted
)

// Observation is one completed request's accounting, as read back from
// the request's obs.QueryMetrics carrier plus the serving layer's own
// end-to-end measurements. Durations are what the request actually
// spent (a plan-cache hit contributes zero rewrite/optimize, mirroring
// the per-phase histograms).
type Observation struct {
	Total    time.Duration
	Rewrite  time.Duration
	Optimize time.Duration
	Eval     time.Duration

	PlanCacheHit bool
	// AnswerCacheOutcome is the anscache outcome string ("equal",
	// "containment", "miss") or empty when the cache is off.
	AnswerCacheOutcome string
	// EvalMode and SetRepr label what the evaluator actually did
	// (obs.Mode*/Repr* values); empty strings are not tallied.
	EvalMode string
	SetRepr  string

	NodesVisited uint64
	ResultCount  int
}

// entry is one tracked fingerprint. Entries live behind their shard's
// mutex; the latency digests are internally atomic but are only ever
// touched under the lock here.
type entry struct {
	class string
	plan  string // clipped optimized-plan text (the fingerprint basis)
	query string // clipped first-seen surface query, for operators
	hash  uint64

	count uint64
	// slack is the space-saving error bound: the evicted minimum count
	// this entry inherited at admission. True count is in
	// [count-slack, count]; slack is 0 for entries admitted while the
	// shard had room, so heavy hitters that arrive early are exact.
	slack uint64

	planHits    uint64
	ansEqual    uint64
	ansContain  uint64
	ansMiss     uint64
	modes       map[string]uint64
	reprs       map[string]uint64
	nodes       uint64
	resultNodes uint64
	lastSeenNs  int64 // unix nanoseconds

	total, rewrite, optimize, eval latency.Digest
}

type shard struct {
	mu      sync.Mutex
	entries map[string]*entry
	cap     int
}

// Registry is the bounded fingerprint statistics store. All methods are
// safe for concurrent use.
type Registry struct {
	shards       [numShards]shard
	observations atomic.Uint64
	evictions    atomic.Uint64
}

// New returns a registry tracking at most capacity fingerprints
// (0 means DefaultCapacity). The capacity is spread over the shards, so
// the effective bound rounds up to a multiple of the shard count.
func New(capacity int) *Registry {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	per := (capacity + numShards - 1) / numShards
	if per < 1 {
		per = 1
	}
	r := &Registry{}
	for i := range r.shards {
		r.shards[i] = shard{entries: make(map[string]*entry, per), cap: per}
	}
	return r
}

// Capacity returns the total fingerprint bound.
func (r *Registry) Capacity() int {
	n := 0
	for i := range r.shards {
		n += r.shards[i].cap
	}
	return n
}

// hashKey is the fingerprint hash: FNV-1a over class NUL plan — the
// same normalization the answer cache keys on, prefixed by the class.
func hashKey(class, plan string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(class))
	h.Write([]byte{0})
	h.Write([]byte(plan))
	return h.Sum64()
}

// Fingerprint renders the (class, plan) fingerprint hash as a
// hex-digit token used in /queryz rows and event-log records, so the
// two surfaces join on it directly. The plan text is clipped to
// MaxTextLen before hashing — the same normalization Observe applies —
// so a pathological query cannot force unbounded hashing either.
func Fingerprint(class, plan string) string {
	return strconv.FormatUint(hashKey(class, clip(plan)), 16)
}

// clip bounds stored sample text (byte-wise; stored samples are display
// aids, and a clipped UTF-8 tail renders as replacement runes at worst).
func clip(s string) string {
	if len(s) <= MaxTextLen {
		return s
	}
	return s[:MaxTextLen]
}

// Observe folds one completed request into the fingerprint's row,
// admitting the fingerprint (evicting the shard's minimum-count row if
// full) when it is new. plan should be the optimized-plan text surfaced
// by the pipeline; a request that never reported one (a pipeline path
// predating plan surfacing) falls back to the surface query text so the
// row still exists.
func (r *Registry) Observe(class, plan, query string, o Observation) {
	if r == nil {
		return
	}
	if plan == "" {
		plan = query
	}
	plan = clip(plan)
	h := hashKey(class, plan)
	key := class + "\x00" + plan
	sh := &r.shards[h%numShards]
	r.observations.Add(1)

	sh.mu.Lock()
	e, ok := sh.entries[key]
	if !ok {
		e = &entry{
			class: class,
			plan:  plan,
			query: clip(query),
			hash:  h,
			modes: make(map[string]uint64, 4),
			reprs: make(map[string]uint64, 2),
		}
		if len(sh.entries) >= sh.cap {
			// Space-saving replacement: evict the minimum-count row and
			// inherit its count, so the Count sum over the shard still
			// advances by exactly one per observation and a newly hot
			// query overtakes stale rows instead of thrashing.
			minKey, minCount := "", uint64(0)
			for k, cand := range sh.entries {
				if minKey == "" || cand.count < minCount {
					minKey, minCount = k, cand.count
				}
			}
			delete(sh.entries, minKey)
			e.count, e.slack = minCount, minCount
			r.evictions.Add(1)
		}
		sh.entries[key] = e
	}
	e.count++
	if o.PlanCacheHit {
		e.planHits++
	}
	switch o.AnswerCacheOutcome {
	case "equal":
		e.ansEqual++
	case "containment":
		e.ansContain++
	case "miss":
		e.ansMiss++
	}
	if o.EvalMode != "" {
		e.modes[o.EvalMode]++
	}
	if o.SetRepr != "" {
		e.reprs[o.SetRepr]++
	}
	e.nodes += o.NodesVisited
	if o.ResultCount > 0 {
		e.resultNodes += uint64(o.ResultCount)
	}
	e.lastSeenNs = time.Now().UnixNano()
	e.total.Observe(o.Total)
	e.rewrite.Observe(o.Rewrite)
	e.optimize.Observe(o.Optimize)
	e.eval.Observe(o.Eval)
	sh.mu.Unlock()
}

// FingerprintStats is one /queryz row. Microsecond units at this JSON
// edge (the digests underneath are nanosecond-based).
type FingerprintStats struct {
	Class string `json:"class"`
	// Fingerprint is the 16-hex-digit (class, plan) hash — the join key
	// with event-log records.
	Fingerprint string `json:"fingerprint"`
	// Query is the first-seen surface query for this fingerprint and
	// Plan the optimized-plan text it normalized to; both clipped to
	// MaxTextLen.
	Query string `json:"query"`
	Plan  string `json:"plan"`

	Count uint64 `json:"count"`
	// CountSlack is the space-saving overestimate bound: the true count
	// is within [count-count_slack, count]. 0 (omitted) means exact.
	CountSlack uint64 `json:"count_slack,omitempty"`

	PlanCacheHits    uint64  `json:"plan_cache_hits"`
	AnsCacheEqual    uint64  `json:"anscache_equal_hits,omitempty"`
	AnsCacheContain  uint64  `json:"anscache_containment_hits,omitempty"`
	AnsCacheMisses   uint64  `json:"anscache_misses,omitempty"`
	AnsCacheMissRate float64 `json:"anscache_miss_rate,omitempty"`

	EvalModes map[string]uint64 `json:"eval_modes,omitempty"`
	SetReprs  map[string]uint64 `json:"set_reprs,omitempty"`

	NodesVisited uint64 `json:"nodes_visited"`
	ResultNodes  uint64 `json:"result_nodes"`

	// TotalSumUs and EvalSumUs are the cumulative wall time this
	// fingerprint cost end-to-end and in the eval phase — the default
	// /queryz sort keys.
	TotalSumUs uint64 `json:"total_sum_us"`
	EvalSumUs  uint64 `json:"eval_sum_us"`

	Total    latency.Summary `json:"total"`
	Rewrite  latency.Summary `json:"rewrite"`
	Optimize latency.Summary `json:"optimize"`
	Eval     latency.Summary `json:"eval"`

	LastSeenUnixUs int64 `json:"last_seen_unix_us"`
}

// missRate is the count-weighted answer-cache miss rate: misses over
// all requests with a recorded answer-cache outcome (0 when the cache
// never reported, i.e. it is off).
func (e *entry) missRate() float64 {
	outcomes := e.ansEqual + e.ansContain + e.ansMiss
	if outcomes == 0 {
		return 0
	}
	return float64(e.ansMiss) / float64(outcomes)
}

func (e *entry) stats() FingerprintStats {
	fs := FingerprintStats{
		Class:            e.class,
		Fingerprint:      strconv.FormatUint(e.hash, 16),
		Query:            e.query,
		Plan:             e.plan,
		Count:            e.count,
		CountSlack:       e.slack,
		PlanCacheHits:    e.planHits,
		AnsCacheEqual:    e.ansEqual,
		AnsCacheContain:  e.ansContain,
		AnsCacheMisses:   e.ansMiss,
		AnsCacheMissRate: e.missRate(),
		NodesVisited:     e.nodes,
		ResultNodes:      e.resultNodes,
		TotalSumUs:       e.total.SumNs() / 1e3,
		EvalSumUs:        e.eval.SumNs() / 1e3,
		Total:            e.total.Snapshot().Summarize(),
		Rewrite:          e.rewrite.Snapshot().Summarize(),
		Optimize:         e.optimize.Snapshot().Summarize(),
		Eval:             e.eval.Snapshot().Summarize(),
		LastSeenUnixUs:   e.lastSeenNs / 1e3,
	}
	if len(e.modes) > 0 {
		fs.EvalModes = make(map[string]uint64, len(e.modes))
		for k, v := range e.modes {
			fs.EvalModes[k] = v
		}
	}
	if len(e.reprs) > 0 {
		fs.SetReprs = make(map[string]uint64, len(e.reprs))
		for k, v := range e.reprs {
			fs.SetReprs[k] = v
		}
	}
	return fs
}

// Top returns up to n fingerprints sorted descending by the given key
// (SortEvalTime when by is empty or unknown; ties break toward higher
// count, then lexical fingerprint for determinism). n <= 0 returns
// every tracked fingerprint — the form whose Count sum is pinned
// against sv_pipeline_total.
func (r *Registry) Top(n int, by string) []FingerprintStats {
	if r == nil {
		return nil
	}
	var out []FingerprintStats
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for _, e := range sh.entries {
			out = append(out, e.stats())
		}
		sh.mu.Unlock()
	}
	key := func(fs FingerprintStats) float64 {
		switch by {
		case SortCount:
			return float64(fs.Count)
		case SortMissRate:
			return fs.AnsCacheMissRate
		case SortTotalTime:
			return float64(fs.TotalSumUs)
		default:
			return float64(fs.EvalSumUs)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ki, kj := key(out[i]), key(out[j])
		if ki != kj {
			return ki > kj
		}
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Stats is the registry's own accounting, exposed as sv_qstats_* series.
type Stats struct {
	// Fingerprints is the number of tracked rows and Capacity their
	// bound.
	Fingerprints int `json:"fingerprints"`
	Capacity     int `json:"capacity"`
	// Observations counts Observe calls; the Count sum across tracked
	// fingerprints equals it exactly (space-saving inheritance).
	Observations uint64 `json:"observations"`
	// Evictions counts space-saving replacements — nonzero means some
	// rows carry a CountSlack bound.
	Evictions uint64 `json:"evictions"`
}

// Stats snapshots the registry counters.
func (r *Registry) Stats() Stats {
	if r == nil {
		return Stats{}
	}
	s := Stats{
		Capacity:     r.Capacity(),
		Observations: r.observations.Load(),
		Evictions:    r.evictions.Load(),
	}
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		s.Fingerprints += len(sh.entries)
		sh.mu.Unlock()
	}
	return s
}
