package xmltree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dtd"
)

const streamDTD = `
root hospital
hospital -> dept*
dept -> patientInfo
patientInfo -> patient*
patient -> name, wardNo
name -> #PCDATA
wardNo -> #PCDATA
`

func TestValidateStream(t *testing.T) {
	d := dtd.MustParse(streamDTD)
	cases := []struct {
		name string
		xml  string
		ok   bool
	}{
		{"valid", `<hospital><dept><patientInfo><patient><name>A</name><wardNo>1</wardNo></patient></patientInfo></dept></hospital>`, true},
		{"empty star", `<hospital></hospital>`, true},
		{"wrong root", `<dept></dept>`, false},
		{"missing child", `<hospital><dept><patientInfo><patient><name>A</name></patient></patientInfo></dept></hospital>`, false},
		{"wrong order", `<hospital><dept><patientInfo><patient><wardNo>1</wardNo><name>A</name></patient></patientInfo></dept></hospital>`, false},
		{"undeclared element", `<hospital><oops/></hospital>`, false},
		{"text where elements", `<hospital>text</hospital>`, false},
		{"extra child", `<hospital><dept><patientInfo/><patientInfo/></dept></hospital>`, false},
		{"missing text", `<hospital><dept><patientInfo><patient><name></name><wardNo>1</wardNo></patient></patientInfo></dept></hospital>`, false},
		{"not xml", `<hospital>`, false},
		{"empty input", ``, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateStreamString(tc.xml, d)
			if (err == nil) != tc.ok {
				t.Errorf("ValidateStream = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

// TestValidateStreamAgreesWithTree: the streaming validator and the
// tree validator agree on randomly mutated documents.
func TestValidateStreamAgreesWithTree(t *testing.T) {
	d := dtd.MustParse(streamDTD)
	base := MustParseString(`<hospital><dept><patientInfo><patient><name>A</name><wardNo>1</wardNo></patient><patient><name>B</name><wardNo>2</wardNo></patient></patientInfo></dept><dept><patientInfo/></dept></hospital>`)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := NewDocument(base.Root.Clone())
		mutate(r, doc)
		xmlStr := doc.XML()
		// Compare on the serialized form: adjacent text nodes merge during
		// serialization, so reparse before tree-validating to give both
		// validators the same input.
		reparsed, err := ParseString(xmlStr)
		if err != nil {
			return ValidateStreamString(xmlStr, d) != nil
		}
		treeErr := Validate(reparsed, d) == nil
		streamErr := ValidateStreamString(xmlStr, d) == nil
		if treeErr != streamErr {
			t.Logf("seed %d: tree ok=%v stream ok=%v for\n%s", seed, treeErr, streamErr, xmlStr)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// mutate applies a random structural edit.
func mutate(r *rand.Rand, doc *Document) {
	var nodes []*Node
	doc.Root.Walk(func(n *Node) bool {
		if n.Kind == ElementNode {
			nodes = append(nodes, n)
		}
		return true
	})
	n := nodes[r.Intn(len(nodes))]
	switch r.Intn(4) {
	case 0: // drop a child
		if len(n.Children) > 0 {
			i := r.Intn(len(n.Children))
			n.Children = append(n.Children[:i], n.Children[i+1:]...)
		}
	case 1: // duplicate a child
		if len(n.Children) > 0 {
			c := n.Children[r.Intn(len(n.Children))].Clone()
			c.Parent = n
			n.Children = append(n.Children, c)
		}
	case 2: // swap two children
		if len(n.Children) >= 2 {
			i, j := r.Intn(len(n.Children)), r.Intn(len(n.Children))
			n.Children[i], n.Children[j] = n.Children[j], n.Children[i]
		}
	case 3: // relabel
		n.Label = []string{"dept", "patient", "name", "bogus"}[r.Intn(4)]
		if n.Parent == nil {
			n.Label = "hospital" // keep the root parseable scenario varied but valid-rooted sometimes
		}
	}
	doc.Renumber()
}
