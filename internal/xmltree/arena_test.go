package xmltree

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomTree builds a random multi-level tree with text leaves and a
// few attributes, returning the un-compacted document.
func randomTree(seed int64, n int) *Document {
	r := rand.New(rand.NewSource(seed))
	root := NewElement("root")
	nodes := []*Node{root}
	for i := 0; i < n; i++ {
		parent := nodes[r.Intn(len(nodes))]
		if r.Intn(5) == 0 {
			parent.AppendChild(NewText(fmt.Sprintf("t%d", i)))
			continue
		}
		c := NewElement(fmt.Sprintf("e%d", r.Intn(7)))
		if r.Intn(3) == 0 {
			c.SetAttr("id", fmt.Sprintf("%d", i))
		}
		parent.AppendChild(c)
		nodes = append(nodes, c)
	}
	return NewDocument(root)
}

func TestCompactPreservesDocument(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		orig := randomTree(seed, 300)
		before := orig.Root.String()
		size, height := orig.Size(), orig.Height()

		doc := randomTree(seed, 300) // identical fresh copy to compact
		doc.Compact()
		if !doc.Compacted() {
			t.Fatalf("seed %d: Compacted() = false after Compact", seed)
		}
		if doc.Root.String() != before {
			t.Fatalf("seed %d: serialized form changed after Compact", seed)
		}
		if doc.Size() != size || doc.Height() != height {
			t.Fatalf("seed %d: size/height %d/%d, want %d/%d", seed, doc.Size(), doc.Height(), size, height)
		}
		// The node table is the arena in document order.
		nodes := doc.Nodes()
		if len(nodes) != size {
			t.Fatalf("seed %d: Nodes() has %d entries, want %d", seed, len(nodes), size)
		}
		for i, n := range nodes {
			if n.Ord() != i {
				t.Fatalf("seed %d: Nodes()[%d].Ord() = %d", seed, i, n.Ord())
			}
			if n.Owner() != doc {
				t.Fatalf("seed %d: node %d has wrong owner", seed, i)
			}
			for _, c := range n.Children {
				if c.Parent != n {
					t.Fatalf("seed %d: child of node %d has wrong parent", seed, i)
				}
			}
		}
	}
}

func TestSubtreeMatchesWalk(t *testing.T) {
	doc := randomTree(42, 200)
	doc.Compact()
	for _, n := range doc.Nodes() {
		var walked []*Node
		n.Walk(func(m *Node) bool { walked = append(walked, m); return true })
		sub := n.Subtree()
		if len(sub) != len(walked) {
			t.Fatalf("node %d: Subtree has %d nodes, walk %d", n.Ord(), len(sub), len(walked))
		}
		for i := range walked {
			if sub[i] != walked[i] {
				t.Fatalf("node %d: Subtree[%d] differs from walk", n.Ord(), i)
			}
		}
	}
}

func TestSubtreeStaleAfterDetach(t *testing.T) {
	doc := randomTree(7, 50)
	inner := doc.Root.Children[0]
	// Detach the first child's subtree into its own document: the new
	// Renumber claims those nodes, so their old-document intervals are
	// gone while doc's own byOrd still holds stale entries.
	other := &Document{Root: inner}
	other.Renumber()
	if inner.Owner() != other {
		t.Fatalf("detached root not owned by new document")
	}
	if got := doc.Root.Subtree(); got != nil {
		// Root's slot in doc.byOrd is still doc.Root, so its Subtree is
		// still served — but it now contains nodes owned elsewhere. That
		// is the documented Renumber staleness contract, not a bug;
		// Renumber the mutated document before trusting intervals.
		_ = got
	}
	doc.Renumber()
	if doc.Root.Subtree() == nil {
		t.Fatalf("Subtree nil after Renumber")
	}
}

// TestIsAncestorOfAgreement pins the interval fast path to the
// parent-chain walk on every node pair, compacted and not.
func TestIsAncestorOfAgreement(t *testing.T) {
	for _, compact := range []bool{false, true} {
		doc := randomTree(99, 150)
		if compact {
			doc.Compact()
		}
		nodes := doc.Nodes()
		for _, a := range nodes {
			for _, b := range nodes {
				fast := a.IsAncestorOf(b)
				slow := a.isAncestorOfWalk(b)
				if fast != slow {
					t.Fatalf("compact=%v: IsAncestorOf(%d, %d) = %v, walk says %v",
						compact, a.Ord(), b.Ord(), fast, slow)
				}
			}
		}
	}
}

// TestIsAncestorOfUnnumbered: hand-built trees without a document still
// answer via the walk fallback.
func TestIsAncestorOfUnnumbered(t *testing.T) {
	a := NewElement("a")
	b := NewElement("b")
	c := NewElement("c")
	a.AppendChild(b)
	b.AppendChild(c)
	if !a.IsAncestorOf(c) || !a.IsAncestorOf(b) || !b.IsAncestorOf(c) {
		t.Fatalf("ancestor chain broken on unnumbered tree")
	}
	if b.IsAncestorOf(a) || c.IsAncestorOf(a) || a.IsAncestorOf(a) {
		t.Fatalf("non-ancestor reported as ancestor on unnumbered tree")
	}
}

// TestIsAncestorOfAcrossDocuments: nodes of different documents are
// never ancestors, whichever path answers.
func TestIsAncestorOfAcrossDocuments(t *testing.T) {
	d1 := randomTree(1, 30)
	d2 := randomTree(1, 30)
	d1.Compact()
	d2.Compact()
	if d1.Root.IsAncestorOf(d2.Root.Children[0]) {
		t.Fatalf("cross-document ancestor")
	}
}

func TestHeightCachedAndRefreshed(t *testing.T) {
	doc := MustParseString("<a><b><c/></b></a>")
	if doc.Height() != 2 {
		t.Fatalf("Height = %d, want 2", doc.Height())
	}
	// Deepen the tree; the cache is stale until Renumber, per contract.
	var c *Node
	doc.Root.Walk(func(n *Node) bool {
		if n.Label == "c" {
			c = n
		}
		return true
	})
	c.AppendChild(NewElement("d"))
	doc.Renumber()
	if doc.Height() != 3 {
		t.Fatalf("Height after Renumber = %d, want 3", doc.Height())
	}
	if doc.Size() != 4 {
		t.Fatalf("Size after Renumber = %d, want 4", doc.Size())
	}
}

func TestCompactSingleNode(t *testing.T) {
	doc := NewDocument(NewElement("only"))
	doc.Compact()
	if doc.Size() != 1 || doc.Root.Label != "only" || len(doc.Nodes()) != 1 {
		t.Fatalf("single-node compact broken: size=%d", doc.Size())
	}
	if got := doc.Root.Subtree(); len(got) != 1 || got[0] != doc.Root {
		t.Fatalf("single-node Subtree = %v", got)
	}
}
