package xmltree

// Compact repacks the document's node storage into a flat arena: one
// []Node slice holding every node in document order, with each node's
// Children carved as a contiguous window of a single shared backing
// slab. Pointer-identity of every node changes (the old tree remains
// valid but is no longer part of the document), so Compact is meant for
// document *construction* — the parser and the generator call it once
// before handing the document out — not for trees whose nodes are
// already referenced elsewhere.
//
// The payoff is locality: a pre-order scan of a subtree (descendant
// steps, index posting-list filters) touches one contiguous allocation
// instead of chasing per-node heap pointers, and the byOrd table built
// by Renumber points straight into the arena, so Subtree() intervals
// are slices of memory laid out in exactly the order they are read.
// Attribute maps are shared with the source nodes, not copied.
func (d *Document) Compact() {
	d.Renumber() // refresh size before sizing the arena
	arena := make([]Node, d.size)
	slab := make([]*Node, d.size-1) // every node but the root is someone's child
	idx, off := 0, 0
	var build func(src, parent *Node) *Node
	build = func(src, parent *Node) *Node {
		dst := &arena[idx]
		idx++
		dst.Kind = src.Kind
		dst.Label = src.Label
		dst.Data = src.Data
		dst.Attrs = src.Attrs
		dst.Parent = parent
		if nc := len(src.Children); nc > 0 {
			window := slab[off : off : off+nc]
			off += nc
			for _, c := range src.Children {
				window = append(window, build(c, dst))
			}
			dst.Children = window
		}
		return dst
	}
	d.Root = build(d.Root, nil)
	d.Renumber() // number the arena nodes and rebuild byOrd over them
	d.compact = true
}

// Compacted reports whether the document's nodes live in a flat arena
// (Compact has run and the tree has not been swapped out since).
func (d *Document) Compacted() bool { return d.compact }
