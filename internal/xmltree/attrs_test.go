package xmltree

import (
	"testing"

	"repro/internal/dtd"
)

func TestValidateAttributes(t *testing.T) {
	d := dtd.MustParse(`
root r
r -> item*
item -> #PCDATA
attlist item id!, note
`)
	ok := NewDocument(E("r",
		A(T("item", "x"), "id", "1"),
		A(T("item", "y"), "id", "2", "note", "n"),
	))
	if err := Validate(ok, d); err != nil {
		t.Errorf("valid attributes rejected: %v", err)
	}
	missing := NewDocument(E("r", T("item", "x")))
	if err := Validate(missing, d); err == nil {
		t.Errorf("missing required attribute accepted")
	}
	undeclared := NewDocument(E("r", A(T("item", "x"), "id", "1", "bogus", "v")))
	if err := Validate(undeclared, d); err == nil {
		t.Errorf("undeclared attribute accepted")
	}
	onRoot := NewDocument(A(E("r"), "id", "1"))
	if err := Validate(onRoot, d); err == nil {
		t.Errorf("attribute on element without attlist accepted")
	}
}
