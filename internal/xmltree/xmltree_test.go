package xmltree

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dtd"
)

func sampleDoc() *Document {
	return NewDocument(E("hospital",
		E("dept",
			E("patientInfo",
				E("patient", T("name", "Alice"), T("wardNo", "6")),
				E("patient", T("name", "Bob"), T("wardNo", "7")),
			),
		),
	))
}

func TestBuilderAndOrder(t *testing.T) {
	d := sampleDoc()
	if d.Root.Label != "hospital" {
		t.Fatalf("root label = %q", d.Root.Label)
	}
	var ords []int
	var labels []string
	d.Root.Walk(func(n *Node) bool {
		ords = append(ords, n.Ord())
		labels = append(labels, n.Label)
		return true
	})
	for i, o := range ords {
		if o != i {
			t.Fatalf("document order broken at %d: %v", i, ords)
		}
	}
	if labels[0] != "hospital" || labels[1] != "dept" {
		t.Errorf("walk order = %v", labels)
	}
	if d.Size() != len(ords) {
		t.Errorf("Size() = %d, walked %d", d.Size(), len(ords))
	}
}

func TestTextAndChildLabels(t *testing.T) {
	p := E("patient", T("name", "Alice"), T("wardNo", "6"))
	if got := p.Children[0].Text(); got != "Alice" {
		t.Errorf("Text() = %q", got)
	}
	if got := p.ChildLabels(); !reflect.DeepEqual(got, []string{"name", "wardNo"}) {
		t.Errorf("ChildLabels = %v", got)
	}
	if got := p.Children[0].Children[0].Text(); got != "Alice" {
		t.Errorf("text node Text() = %q", got)
	}
	if got := len(p.ElementChildren()); got != 2 {
		t.Errorf("ElementChildren = %d", got)
	}
}

func TestAncestor(t *testing.T) {
	d := sampleDoc()
	dept := d.Root.Children[0]
	patient := dept.Children[0].Children[0]
	if !d.Root.IsAncestorOf(patient) || !dept.IsAncestorOf(patient) {
		t.Errorf("ancestor check failed")
	}
	if patient.IsAncestorOf(dept) || patient.IsAncestorOf(patient) {
		t.Errorf("non-ancestor reported as ancestor")
	}
}

func TestCloneIndependence(t *testing.T) {
	d := sampleDoc()
	cp := d.Root.Clone()
	cp.Children[0].Label = "changed"
	if d.Root.Children[0].Label != "dept" {
		t.Errorf("Clone shares children")
	}
	if cp.Parent != nil {
		t.Errorf("Clone has a parent")
	}
}

func TestParseSerializeRoundTrip(t *testing.T) {
	d := sampleDoc()
	out := d.XML()
	d2, err := ParseString(out)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if d2.XML() != out {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", out, d2.XML())
	}
	if d2.Size() != d.Size() {
		t.Errorf("sizes differ: %d vs %d", d2.Size(), d.Size())
	}
}

func TestParseAttributes(t *testing.T) {
	d, err := ParseString(`<a x="1"><b accessibility="0">hi &amp; bye</b></a>`)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if v, ok := d.Root.Attr("x"); !ok || v != "1" {
		t.Errorf("attr x = %q, %v", v, ok)
	}
	b := d.Root.Children[0]
	if v, _ := b.Attr("accessibility"); v != "0" {
		t.Errorf("attr accessibility = %q", v)
	}
	if got := b.Text(); got != "hi & bye" {
		t.Errorf("Text() = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"<a></a><b></b>",
		"text only",
		"<a><b></a></b>",
	} {
		if _, err := ParseString(src); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", src)
		}
	}
}

func TestHeightAndStats(t *testing.T) {
	d := sampleDoc()
	// hospital/dept/patientInfo/patient/name/#text = 5 edges.
	if got := d.Height(); got != 5 {
		t.Errorf("Height() = %d, want 5", got)
	}
	s := d.ComputeStats()
	if s.Nodes != d.Size() {
		t.Errorf("stats nodes = %d, size = %d", s.Nodes, d.Size())
	}
	if s.Labels["patient"] != 2 || s.Labels["name"] != 2 {
		t.Errorf("label counts = %v", s.Labels)
	}
	if s.TextNodes != 4 {
		t.Errorf("text nodes = %d, want 4", s.TextNodes)
	}
	if s.Elements+s.TextNodes != s.Nodes {
		t.Errorf("stats do not add up: %+v", s)
	}
}

func TestSortDocOrder(t *testing.T) {
	d := sampleDoc()
	var all []*Node
	d.Root.Walk(func(n *Node) bool { all = append(all, n); return true })
	shuffled := []*Node{all[5], all[1], all[5], all[0], all[3], all[1]}
	got := SortDocOrder(shuffled)
	if len(got) != 4 {
		t.Fatalf("SortDocOrder kept %d nodes, want 4", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Ord() >= got[i].Ord() {
			t.Errorf("not sorted at %d", i)
		}
	}
}

func TestWalkPrune(t *testing.T) {
	d := sampleDoc()
	var visited []string
	d.Root.Walk(func(n *Node) bool {
		visited = append(visited, n.Label)
		return n.Label != "patientInfo"
	})
	if !reflect.DeepEqual(visited, []string{"hospital", "dept", "patientInfo"}) {
		t.Errorf("pruned walk = %v", visited)
	}
}

func TestPath(t *testing.T) {
	d := sampleDoc()
	patient := d.Root.Children[0].Children[0].Children[0]
	if got := patient.Path(); got != "/hospital/dept/patientInfo/patient" {
		t.Errorf("Path() = %q", got)
	}
}

const miniDTD = `
root hospital
hospital -> dept*
dept -> patientInfo
patientInfo -> patient*
patient -> name, wardNo
name -> #PCDATA
wardNo -> #PCDATA
`

func TestValidate(t *testing.T) {
	d := dtd.MustParse(miniDTD)
	doc := sampleDoc()
	if err := Validate(doc, d); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if !Conforms(doc, d) {
		t.Errorf("Conforms = false")
	}
	// Wrong root.
	bad := NewDocument(E("dept"))
	if err := Validate(bad, d); err == nil {
		t.Errorf("wrong root accepted")
	}
	// Missing required child.
	bad = NewDocument(E("hospital", E("dept", E("patientInfo", E("patient", T("name", "x"))))))
	if err := Validate(bad, d); err == nil {
		t.Errorf("missing wardNo accepted")
	}
	// Undeclared element.
	bad = NewDocument(E("hospital", E("oops")))
	if err := Validate(bad, d); err == nil {
		t.Errorf("undeclared element accepted")
	}
	// Text where elements are required.
	bad = NewDocument(E("hospital", T("dept", "text")))
	if err := Validate(bad, d); err == nil {
		t.Errorf("stray text accepted")
	}
}

func TestAttrBuilder(t *testing.T) {
	n := A(E("patient"), "accessibility", "1", "id", "p1")
	if v, _ := n.Attr("accessibility"); v != "1" {
		t.Errorf("accessibility = %q", v)
	}
	if v, _ := n.Attr("id"); v != "p1" {
		t.Errorf("id = %q", v)
	}
}

func TestSerializeEscaping(t *testing.T) {
	d := NewDocument(T("a", "x < y & z"))
	out := d.XML()
	if strings.Contains(out, "x < y") {
		t.Errorf("unescaped text in %q", out)
	}
	back, err := ParseString(out)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if got := back.Root.Text(); got != "x < y & z" {
		t.Errorf("Text() after round trip = %q", got)
	}
}

// TestDocOrderProperty checks with random trees that Renumber assigns
// strictly increasing positions in a pre-order walk.
func TestDocOrderProperty(t *testing.T) {
	gen := func(shape []byte) bool {
		root := NewElement("r")
		cur := root
		for _, b := range shape {
			n := NewElement("n")
			switch b % 3 {
			case 0: // child
				cur.AppendChild(n)
				cur = n
			case 1: // sibling
				if cur.Parent != nil {
					cur.Parent.AppendChild(n)
					cur = n
				} else {
					cur.AppendChild(n)
				}
			case 2: // pop
				if cur.Parent != nil {
					cur = cur.Parent
				}
			}
		}
		doc := NewDocument(root)
		prev := -1
		ok := true
		doc.Root.Walk(func(n *Node) bool {
			if n.Ord() != prev+1 {
				ok = false
			}
			prev = n.Ord()
			return true
		})
		return ok && doc.Size() == prev+1
	}
	if err := quick.Check(gen, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestCoverSize: subtree-union sizing must count overlapping subtrees
// once (duplicates and ancestor/descendant pairs), since the parallel
// evaluator's gate depends on it.
func TestCoverSize(t *testing.T) {
	doc := NewDocument(E("a",
		E("b", T("c", "1"), T("c", "2")),
		E("d", E("e", T("f", "3")))))
	root := doc.Root
	b := root.Children[0]
	d := root.Children[1]
	e := d.Children[0]
	cases := []struct {
		name  string
		nodes []*Node
		want  int
	}{
		{"empty", nil, 0},
		{"root alone", []*Node{root}, doc.Size()},
		{"disjoint siblings", []*Node{b, d}, b.DescendantCount() + d.DescendantCount() + 2},
		{"ancestor plus descendant", []*Node{root, e}, doc.Size()},
		{"root plus everything", []*Node{root, b, d, e}, doc.Size()},
		{"nested pair", []*Node{d, e}, d.DescendantCount() + 1},
	}
	for _, c := range cases {
		nodes := SortDocOrder(append([]*Node(nil), c.nodes...))
		if got := CoverSize(nodes); got != c.want {
			t.Errorf("%s: CoverSize = %d, want %d", c.name, got, c.want)
		}
	}
	// Duplicates are removed by SortDocOrder before sizing; CoverSize on
	// the canonical set equals the single-node size.
	dup := SortDocOrder([]*Node{e, e, e})
	if got := CoverSize(dup); got != e.DescendantCount()+1 {
		t.Errorf("duplicates: CoverSize = %d, want %d", got, e.DescendantCount()+1)
	}
}
