package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// Parse reads an XML document from r into a tree. Whitespace-only text
// between elements is dropped (the paper's data model has PCDATA only at
// leaves); other text is kept verbatim. Comments, processing
// instructions, and directives are skipped.
func Parse(r io.Reader) (*Document, error) {
	dec := xml.NewDecoder(r)
	var root *Node
	var stack []*Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: %v", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := NewElement(t.Name.Local)
			for _, a := range t.Attr {
				n.SetAttr(a.Name.Local, a.Value)
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("xmltree: multiple root elements")
				}
				root = n
			} else {
				stack[len(stack)-1].AppendChild(n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: unbalanced end element %s", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			s := string(t)
			if strings.TrimSpace(s) == "" {
				continue
			}
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: text outside the root element")
			}
			stack[len(stack)-1].AppendChild(NewText(s))
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xmltree: no root element")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmltree: unclosed elements")
	}
	// Freshly parsed trees have no outside references to their nodes, so
	// repack into the flat arena before handing the document out.
	doc := NewDocument(root)
	doc.Compact()
	return doc, nil
}

// ParseString parses an XML document held in a string.
func ParseString(s string) (*Document, error) {
	return Parse(strings.NewReader(s))
}

// MustParseString parses trusted XML (test fixtures, embedded examples)
// and panics on error.
func MustParseString(s string) *Document {
	d, err := ParseString(s)
	if err != nil {
		panic(err)
	}
	return d
}

// Serialize writes the document as XML to w.
func (d *Document) Serialize(w io.Writer) error {
	_, err := io.WriteString(w, d.Root.String())
	return err
}

// XML returns the document serialized as an indented XML string.
func (d *Document) XML() string {
	return d.Root.String()
}
