package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"repro/internal/dtd"
)

// ValidateStream checks DTD conformance while reading, without building a
// tree: each open element carries the Brzozowski-derivative state of its
// content model, advanced by one derivative per child and checked for
// nullability at the end tag. Memory is proportional to document depth,
// which makes it suitable for documents too large to materialize.
func ValidateStream(r io.Reader, d *dtd.DTD) error {
	dec := xml.NewDecoder(r)
	type frame struct {
		label string
		state dtd.Regex
	}
	var stack []frame
	sawRoot := false
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("xmltree: %v", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			label := t.Name.Local
			if len(stack) == 0 {
				if sawRoot {
					return fmt.Errorf("xmltree: multiple root elements")
				}
				sawRoot = true
				if label != d.Root() {
					return fmt.Errorf("xmltree: root is %q, DTD requires %q", label, d.Root())
				}
			} else {
				top := &stack[len(stack)-1]
				next := dtd.Derive(top.state, label)
				if _, dead := next.(dtd.RNone); dead {
					return fmt.Errorf("xmltree: element %s not allowed here under %s", label, top.label)
				}
				top.state = next
			}
			c, ok := d.Production(label)
			if !ok {
				return fmt.Errorf("xmltree: element %s is not declared in the DTD", label)
			}
			stack = append(stack, frame{label: label, state: c.Regex()})
		case xml.EndElement:
			if len(stack) == 0 {
				return fmt.Errorf("xmltree: unbalanced end element %s", t.Name.Local)
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if !dtd.Nullable(top.state) {
				return fmt.Errorf("xmltree: element %s closed with incomplete content", top.label)
			}
		case xml.CharData:
			if strings.TrimSpace(string(t)) == "" {
				continue
			}
			if len(stack) == 0 {
				return fmt.Errorf("xmltree: text outside the root element")
			}
			top := &stack[len(stack)-1]
			next := dtd.Derive(top.state, dtd.TextLabel)
			if _, dead := next.(dtd.RNone); dead {
				return fmt.Errorf("xmltree: text not allowed under %s", top.label)
			}
			top.state = next
		}
	}
	if !sawRoot {
		return fmt.Errorf("xmltree: no root element")
	}
	if len(stack) != 0 {
		return fmt.Errorf("xmltree: unclosed elements")
	}
	return nil
}

// ValidateStreamString validates XML held in a string.
func ValidateStreamString(s string, d *dtd.DTD) error {
	return ValidateStream(strings.NewReader(s), d)
}
