// Package xmltree provides the in-memory ordered XML document trees that
// every other component of the system operates on: the XPath evaluator,
// the view materializer, the document generator, and the naive baseline.
//
// A document is a tree of element and text nodes (attributes are carried
// on elements; the paper's model omits them except for the naive
// baseline's accessibility attribute). Nodes know their parent, their
// ordered children, and their position in document order, which makes
// ancestor checks and document-order sorting O(1) and O(n log n)
// respectively.
package xmltree

import (
	"fmt"
	"sort"
	"strings"
)

// NodeKind distinguishes element nodes from text (PCDATA) nodes.
type NodeKind int

const (
	// ElementNode is an element labeled with an element type.
	ElementNode NodeKind = iota
	// TextNode is a leaf carrying PCDATA.
	TextNode
)

// Node is a single node of an XML document tree.
type Node struct {
	Kind     NodeKind
	Label    string // element type; "#text" for text nodes
	Data     string // PCDATA for text nodes
	Attrs    map[string]string
	Parent   *Node
	Children []*Node

	ord  int       // position in document order, assigned by Document.Renumber
	desc int       // number of descendants, assigned by Document.Renumber
	doc  *Document // owning document as of the last Renumber
}

// TextLabel is the label carried by text nodes.
const TextLabel = "#text"

// NewElement returns a parentless element node.
func NewElement(label string) *Node {
	return &Node{Kind: ElementNode, Label: label}
}

// NewText returns a parentless text node with the given PCDATA.
func NewText(data string) *Node {
	return &Node{Kind: TextNode, Label: TextLabel, Data: data}
}

// AppendChild adds c as the last child of n and sets c's parent.
func (n *Node) AppendChild(c *Node) {
	c.Parent = n
	n.Children = append(n.Children, c)
}

// SetAttr sets an attribute on an element node.
func (n *Node) SetAttr(name, value string) {
	if n.Attrs == nil {
		n.Attrs = make(map[string]string, 1)
	}
	n.Attrs[name] = value
}

// Attr returns the value of an attribute and whether it is present.
func (n *Node) Attr(name string) (string, bool) {
	v, ok := n.Attrs[name]
	return v, ok
}

// Ord returns the node's position in document order. It is only
// meaningful after Document.Renumber (which NewDocument performs).
func (n *Node) Ord() int { return n.ord }

// DescendantCount returns the number of descendants (elements + text).
// Like Ord it is only meaningful after Document.Renumber; the node's
// subtree occupies the ord range [Ord, Ord+DescendantCount].
func (n *Node) DescendantCount() int { return n.desc }

// ContainsOrd reports whether a document-order position lies inside n's
// subtree (n included). Only meaningful on a renumbered document.
func (n *Node) ContainsOrd(ord int) bool {
	return n.ord <= ord && ord <= n.ord+n.desc
}

// numbered reports whether the node's ord/desc assignment is current:
// the node belongs to a renumbered document and still sits at its
// recorded document-order slot. Nodes detached since the last Renumber
// fail the check (another node occupies their slot, or the slot is out
// of range), so interval-based fast paths degrade to walks instead of
// answering from stale numbers.
func (n *Node) numbered() bool {
	return n.doc != nil && n.ord < len(n.doc.byOrd) && n.doc.byOrd[n.ord] == n
}

// IsAncestorOf reports whether n is a strict ancestor of m. On a
// renumbered document it is O(1) interval containment — m is in n's
// subtree iff n.ord ≤ m.ord ≤ n.ord+n.desc; the parent-chain walk
// remains only as the fallback for nodes outside any renumbered
// document (hand-built trees, detached subtrees).
func (n *Node) IsAncestorOf(m *Node) bool {
	if n.doc != nil && n.doc == m.doc && n.numbered() && m.numbered() {
		return n != m && n.ContainsOrd(m.ord)
	}
	return n.isAncestorOfWalk(m)
}

// isAncestorOfWalk is the O(depth) parent-chain form of IsAncestorOf,
// exported to tests via an alias so the two can be pinned against each
// other.
func (n *Node) isAncestorOfWalk(m *Node) bool {
	for p := m.Parent; p != nil; p = p.Parent {
		if p == n {
			return true
		}
	}
	return false
}

// Owner returns the document that most recently renumbered n, or nil
// when n's numbering is stale (detached since the last Renumber, or
// never part of a document). Two nodes with the same non-nil Owner have
// mutually comparable Ord positions.
func (n *Node) Owner() *Document {
	if !n.numbered() {
		return nil
	}
	return n.doc
}

// Subtree returns the node and all its descendants in document order as
// a shared, read-only slice of the document's node table — the subtree
// of a node occupies the contiguous range [ord, ord+desc]. It returns
// nil when the node's numbering is stale (document mutated since the
// last Renumber, or never renumbered); callers must fall back to a walk
// and must not mutate a non-nil result.
func (n *Node) Subtree() []*Node {
	if !n.numbered() {
		return nil
	}
	return n.doc.byOrd[n.ord : n.ord+n.desc+1]
}

// Text returns the concatenated PCDATA of the node's text children (for
// elements) or the node's own data (for text nodes).
func (n *Node) Text() string {
	if n.Kind == TextNode {
		return n.Data
	}
	var b strings.Builder
	for _, c := range n.Children {
		if c.Kind == TextNode {
			b.WriteString(c.Data)
		}
	}
	return b.String()
}

// ChildLabels returns the labels of the node's children in order, with
// text children reported as TextLabel.
func (n *Node) ChildLabels() []string {
	labels := make([]string, len(n.Children))
	for i, c := range n.Children {
		labels[i] = c.Label
	}
	return labels
}

// ElementChildren returns the node's element children in order.
func (n *Node) ElementChildren() []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Kind == ElementNode {
			out = append(out, c)
		}
	}
	return out
}

// Walk visits n and all its descendants in document order, stopping early
// when f returns false for a node's subtree (the node's descendants are
// skipped; the walk continues with siblings).
func (n *Node) Walk(f func(*Node) bool) {
	if !f(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(f)
	}
}

// Clone deep-copies the subtree rooted at n. The copy has no parent and
// unassigned document-order positions.
func (n *Node) Clone() *Node {
	cp := &Node{Kind: n.Kind, Label: n.Label, Data: n.Data}
	if n.Attrs != nil {
		cp.Attrs = make(map[string]string, len(n.Attrs))
		for k, v := range n.Attrs {
			cp.Attrs[k] = v
		}
	}
	cp.Children = make([]*Node, 0, len(n.Children))
	for _, c := range n.Children {
		cc := c.Clone()
		cc.Parent = cp
		cp.Children = append(cp.Children, cc)
	}
	return cp
}

// Path returns the label path from the document root to n, for error
// messages and debugging.
func (n *Node) Path() string {
	var labels []string
	for m := n; m != nil; m = m.Parent {
		labels = append(labels, m.Label)
	}
	for i, j := 0, len(labels)-1; i < j; i, j = i+1, j-1 {
		labels[i], labels[j] = labels[j], labels[i]
	}
	return "/" + strings.Join(labels, "/")
}

// Document is an XML document: a root element plus cached size,
// document-order numbering, and the node table byOrd (all nodes in
// document order, so byOrd[n.Ord()] == n and a subtree is the
// contiguous range byOrd[ord : ord+desc+1]).
type Document struct {
	Root    *Node
	size    int
	height  int
	byOrd   []*Node
	compact bool
	gen     uint64
}

// NewDocument wraps a root node into a document and assigns document
// order.
func NewDocument(root *Node) *Document {
	d := &Document{Root: root}
	d.Renumber()
	return d
}

// Renumber reassigns document-order positions and descendant counts
// after tree mutation. A node's subtree occupies the contiguous ord range
// [ord, ord+desc], which makes descendant tests O(1). The same walk
// rebuilds the byOrd node table and caches the document height, so both
// are as fresh as the numbering itself.
func (d *Document) Renumber() {
	d.gen++
	d.byOrd = d.byOrd[:0]
	d.height = 0
	var walk func(node *Node, depth int) int
	walk = func(node *Node, depth int) int {
		node.ord = len(d.byOrd)
		node.doc = d
		d.byOrd = append(d.byOrd, node)
		if depth > d.height {
			d.height = depth
		}
		total := 0
		for _, c := range node.Children {
			total += walk(c, depth+1)
		}
		node.desc = total
		return total + 1
	}
	walk(d.Root, 0)
	d.size = len(d.byOrd)
}

// Size returns the number of nodes in the document (elements + text).
func (d *Document) Size() int { return d.size }

// Generation counts Renumber calls on this document. Ordinal-keyed
// storage that outlives one evaluation (the answer cache's bitsets)
// records the generation it was built against and treats a mismatch as
// stale: after any renumbering the same ordinal may name a different
// node, so a recorded ordinal set is only meaningful at its own
// generation.
func (d *Document) Generation() uint64 { return d.gen }

// Nodes returns every node in document order. The slice is the
// document's own node table, rebuilt by Renumber — callers must treat
// it as read-only.
func (d *Document) Nodes() []*Node { return d.byOrd }

// Height returns the number of edges on the longest root-to-leaf path.
// It is cached by Renumber: serving recomputed it per query before,
// and on 10k-node documents that walk alone was ~20% of serving CPU.
func (d *Document) Height() int {
	if d.byOrd != nil {
		return d.height
	}
	var h func(*Node) int
	h = func(n *Node) int {
		max := 0
		for _, c := range n.Children {
			if d := h(c) + 1; d > max {
				max = d
			}
		}
		return max
	}
	return h(d.Root)
}

// Stats summarizes a document for reporting.
type Stats struct {
	Nodes     int
	Elements  int
	TextNodes int
	Height    int
	Labels    map[string]int
}

// ComputeStats walks the document once and returns its statistics.
func (d *Document) ComputeStats() Stats {
	s := Stats{Labels: make(map[string]int)}
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		s.Nodes++
		if depth > s.Height {
			s.Height = depth
		}
		if n.Kind == ElementNode {
			s.Elements++
			s.Labels[n.Label]++
		} else {
			s.TextNodes++
		}
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(d.Root, 0)
	return s
}

// SortDocOrder sorts nodes in place by document order and removes
// duplicates. All nodes must belong to the same renumbered document.
func SortDocOrder(nodes []*Node) []*Node {
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ord < nodes[j].ord })
	out := nodes[:0]
	var prev *Node
	for _, n := range nodes {
		if n != prev {
			out = append(out, n)
		}
		prev = n
	}
	return out
}

// CoverSize returns the number of distinct nodes in the union of the
// subtrees rooted at nodes, which must be sorted in document order and
// deduplicated (SortDocOrder). A node lying inside an earlier node's
// subtree contributes nothing — its subtree is already covered — so
// overlapping context sets (an ancestor plus its descendant) are not
// double-counted.
func CoverSize(nodes []*Node) int {
	size := 0
	limit := -1
	for _, n := range nodes {
		if n.ord <= limit {
			continue
		}
		size += n.desc + 1
		limit = n.ord + n.desc
	}
	return size
}

// String renders the subtree rooted at n as indented XML (see
// serialize.go for the full document serializer).
func (n *Node) String() string {
	var b strings.Builder
	writeNode(&b, n, 0)
	return b.String()
}

func writeNode(b *strings.Builder, n *Node, depth int) {
	indent := strings.Repeat("  ", depth)
	if n.Kind == TextNode {
		fmt.Fprintf(b, "%s%s\n", indent, escapeText(n.Data))
		return
	}
	b.WriteString(indent)
	b.WriteByte('<')
	b.WriteString(n.Label)
	writeAttrs(b, n)
	if len(n.Children) == 0 {
		b.WriteString("/>\n")
		return
	}
	if len(n.Children) == 1 && n.Children[0].Kind == TextNode {
		fmt.Fprintf(b, ">%s</%s>\n", escapeText(n.Children[0].Data), n.Label)
		return
	}
	b.WriteString(">\n")
	for _, c := range n.Children {
		writeNode(b, c, depth+1)
	}
	fmt.Fprintf(b, "%s</%s>\n", indent, n.Label)
}

func writeAttrs(b *strings.Builder, n *Node) {
	if len(n.Attrs) == 0 {
		return
	}
	names := make([]string, 0, len(n.Attrs))
	for k := range n.Attrs {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(b, " %s=%q", k, n.Attrs[k])
	}
}

func escapeText(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
