package xmltree

import (
	"fmt"

	"repro/internal/dtd"
)

// Validate checks that the document conforms to the DTD per the paper's
// Section 2: the root carries the root type, every element's ordered
// child-label sequence is in the language of its production, and text
// nodes appear exactly where str productions demand them. It returns the
// first violation found, or nil.
func Validate(doc *Document, d *dtd.DTD) error {
	if doc.Root.Kind != ElementNode || doc.Root.Label != d.Root() {
		return fmt.Errorf("xmltree: root is %q, DTD requires %q", doc.Root.Label, d.Root())
	}
	var check func(n *Node) error
	check = func(n *Node) error {
		c, ok := d.Production(n.Label)
		if !ok {
			return fmt.Errorf("xmltree: element %s at %s is not declared in the DTD", n.Label, n.Path())
		}
		labels := n.ChildLabels()
		if !c.MatchContent(labels) {
			return dtd.FormatSeqError(n.Path(), c, labels)
		}
		if err := checkAttrs(n, d); err != nil {
			return err
		}
		for _, child := range n.Children {
			if child.Kind == TextNode {
				continue
			}
			if err := check(child); err != nil {
				return err
			}
		}
		return nil
	}
	return check(doc.Root)
}

// checkAttrs validates an element's attributes: every attribute must be
// declared and every required attribute present.
func checkAttrs(n *Node, d *dtd.DTD) error {
	for name := range n.Attrs {
		if _, ok := d.Attr(n.Label, name); !ok {
			return fmt.Errorf("xmltree: undeclared attribute %q on %s", name, n.Path())
		}
	}
	for _, def := range d.Attlist(n.Label) {
		if !def.Required {
			continue
		}
		if _, ok := n.Attr(def.Name); !ok {
			return fmt.Errorf("xmltree: required attribute %q missing on %s", def.Name, n.Path())
		}
	}
	return nil
}

// Conforms reports whether the document conforms to the DTD.
func Conforms(doc *Document, d *dtd.DTD) bool {
	return Validate(doc, d) == nil
}
