package xmltree

// E builds an element node with the given children, for concise test
// fixtures and examples:
//
//	doc := NewDocument(E("hospital",
//	    E("dept",
//	        E("patient", T("name", "Alice")))))
func E(label string, children ...*Node) *Node {
	n := NewElement(label)
	for _, c := range children {
		n.AppendChild(c)
	}
	return n
}

// T builds an element node holding a single text child.
func T(label, data string) *Node {
	n := NewElement(label)
	n.AppendChild(NewText(data))
	return n
}

// Txt builds a bare text node.
func Txt(data string) *Node {
	return NewText(data)
}

// A sets attributes on a node and returns it, for builder chaining:
//
//	A(E("patient"), "accessibility", "1")
func A(n *Node, pairs ...string) *Node {
	for i := 0; i+1 < len(pairs); i += 2 {
		n.SetAttr(pairs[i], pairs[i+1])
	}
	return n
}
