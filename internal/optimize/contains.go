package optimize

import "repro/internal/xpath"

// Contains reports that p1 is provably contained in p2 over every
// instance of the DTD: every node p1 selects at root context, p2 also
// selects. It is the serving-layer entry point to the Section 5.1
// containment machinery (image graphs compared by the qualifier-flipping
// simulation of Proposition 5.1), exported so the answer cache can prove
// a cached result safe to serve. Like every test in this package it is
// sound and approximate: true is a guarantee, false means "could not
// prove it" — callers must fall back to evaluation, never invert the
// answer. Queries whose image graphs overflow the construction budget,
// or that contain constructs the abstraction cannot model (Rec
// automata), are never proved contained.
func (o *Optimizer) Contains(p1, p2 xpath.Path) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.containsLocked(p1, p2)
}

// Equivalent reports provable mutual containment: p1 and p2 select
// exactly the same nodes over every instance of the DTD. This is the
// answer cache's equal-hit test; the same one-sidedness caveats as
// Contains apply.
func (o *Optimizer) Equivalent(p1, p2 xpath.Path) bool {
	if xpath.Equal(p1, p2) {
		return true
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.containsLocked(p1, p2) && o.containsLocked(p2, p1)
}

func (o *Optimizer) containsLocked(p1, p2 xpath.Path) bool {
	a := o.d.Root()
	g1, ok1 := o.image(p1, a)
	if !ok1 {
		return false
	}
	g2, ok2 := o.image(p2, a)
	if !ok2 {
		// g1 == nil (p1 provably empty) is contained in anything, even a
		// query the abstraction cannot model.
		return g1 == nil
	}
	return o.simulate(g1, g2)
}
