package optimize

import (
	"math/rand"
	"testing"

	"repro/internal/dtd"
	"repro/internal/dtds"
	"repro/internal/xmlgen"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

func TestContains(t *testing.T) {
	o := New(dtds.Hospital())
	// Paths are evaluated at the document root element (a hospital node),
	// so steps are root-relative: "dept", not "hospital/dept".
	cases := []struct {
		p1, p2 string
		want   bool
	}{
		{"dept", "dept", true},
		{"dept", "*", true},
		{"//patient/name", "//patient/*", true},
		{"//patient/*", "//patient/name", false},
		{"//patient[.//trial]", "//patient", true}, // qualifier strengthens
		{"//patient", "//patient[.//trial]", false},
		{"//bill", "//bill", true},
		{"//trial//bill", "//bill", true},
		{"//bill", "//dept//bill", true}, // every bill sits under a dept in this DTD
		{"//patientInfo//name", "//dept//name", true},
		{"//dept//name", "//patientInfo//name", false}, // staff names escape patientInfo
		{"dept/staffInfo", "dept/staffInfo | //patient", true},
		{"dept/staffInfo | //patient", "dept/staffInfo", false},
		{"//treatment/trial", "//treatment/*", true},
		{"nosuchlabel", "dept", true}, // ∅ contained in everything
		{"dept", "nosuchlabel", false},
	}
	for _, tc := range cases {
		got := o.Contains(xpath.MustParse(tc.p1), xpath.MustParse(tc.p2))
		if got != tc.want {
			t.Errorf("Contains(%q, %q) = %v, want %v", tc.p1, tc.p2, got, tc.want)
		}
	}
}

func TestEquivalent(t *testing.T) {
	o := New(dtds.Hospital())
	cases := []struct {
		p1, p2 string
		want   bool
	}{
		{"//patient/name", "//patient/name", true},
		{"dept | //bill", "//bill | dept", true}, // commuted union
		{"dept", "*", true},                      // hospital's only child type is dept
		{"//patient", "//patient[name]", true},   // name is a required child
		{"//patient", "//patient[.//trial]", false},
		{"//patient/name", "//patient/*", false},
	}
	for _, tc := range cases {
		got := o.Equivalent(xpath.MustParse(tc.p1), xpath.MustParse(tc.p2))
		if got != tc.want {
			t.Errorf("Equivalent(%q, %q) = %v, want %v", tc.p1, tc.p2, got, tc.want)
		}
	}
}

// TestContainsNeverModelsRec: plans carrying Rec automata must never be
// proved contained (the image abstraction cannot see inside them), with
// the one exception of a provably-empty left-hand side.
func TestContainsNeverModelsRec(t *testing.T) {
	o := New(dtd.MustParse("root a\na -> b\nb -> b + c\nc -> #PCDATA\n"))
	rec := xpath.Rec{ResultLabel: "b"}
	if o.Contains(rec, rec) {
		t.Errorf("Rec proved contained in itself")
	}
	if o.Contains(rec, xpath.MustParse("//b")) || o.Contains(xpath.MustParse("//b"), rec) {
		t.Errorf("Rec compared against a plain query was proved contained")
	}
	if !o.Contains(xpath.MustParse("nosuchlabel"), rec) {
		t.Errorf("provably-empty query not contained in a Rec plan")
	}
	if o.Equivalent(rec, xpath.MustParse("//b")) {
		t.Errorf("Rec proved equivalent to a plain query")
	}
}

// TestContainsSoundOnDocuments is the semantic gate: whenever Contains
// proves p1 ⊆ p2 for random query pairs, the result sets on generated
// documents must actually be subsets. (False negatives are fine; a false
// positive here would let the answer cache serve wrong nodes.)
func TestContainsSoundOnDocuments(t *testing.T) {
	d := dtds.Adex()
	o := New(d)
	labels := append(d.Types(), "nosuch")
	adexDocs := []*xmltree.Document{
		dtds.GenerateAdex(3, 3),
		dtds.GenerateAdex(5, 2),
		dtds.GenerateAdex(9, 4),
	}
	proved := 0
	for seed := int64(0); seed < 400; seed++ {
		r := rand.New(rand.NewSource(seed))
		p1 := randAdexPath(r, labels, 3)
		p2 := randAdexPath(r, labels, 3)
		if !o.Contains(p1, p2) {
			continue
		}
		proved++
		for di, doc := range adexDocs {
			in := make(map[*xmltree.Node]bool)
			for _, n := range xpath.EvalDoc(p2, doc) {
				in[n] = true
			}
			for _, n := range xpath.EvalDoc(p1, doc) {
				if !in[n] {
					t.Fatalf("seed %d: Contains(%s, %s) proved, but a selected node is missing from the container on doc %d",
						seed, xpath.String(p1), xpath.String(p2), di)
				}
			}
		}
	}
	if proved < 20 {
		t.Fatalf("only %d/400 random pairs were proved contained; generator too adversarial for the test to mean anything", proved)
	}

	// Also gate the recursive Fig. 7 DTD, where the cycle a -> c -> a*
	// makes image graphs loop back on themselves.
	fo := New(dtds.Fig7())
	fqueries := []string{"//b", "//a/b", "//a//b", "b", "c/a", "//a[b]", "//a", "//c/a/b", ".", "//*", "c/a/c"}
	fdoc := xmlgen.Generate(dtds.Fig7(), xmlgen.Config{Seed: 2, MaxRepeat: 2, MaxDepth: 8})
	for _, q1 := range fqueries {
		for _, q2 := range fqueries {
			p1, p2 := xpath.MustParse(q1), xpath.MustParse(q2)
			if !fo.Contains(p1, p2) {
				continue
			}
			in := make(map[*xmltree.Node]bool)
			for _, n := range xpath.EvalDoc(p2, fdoc) {
				in[n] = true
			}
			for _, n := range xpath.EvalDoc(p1, fdoc) {
				if !in[n] {
					t.Errorf("fig7: Contains(%q, %q) proved but violated on a document", q1, q2)
				}
			}
		}
	}
}
