package optimize

import "repro/internal/xpath"

// simulate reports whether g1 is simulated by g2: a sound witness that
// the query of g1 is contained in the query of g2 at their common root
// (Proposition 5.1). The relation extends conventional graph simulation:
//
//  1. matched occurrences carry the same label;
//  2. a frontier (selected) occurrence of g1 must map to a frontier
//     occurrence of g2 — selected nodes stay selected;
//  3. every path child of the g1 occurrence is simulated by some child of
//     the g2 occurrence; and
//  4. every qualifier attached to the g2 occurrence must be implied by
//     some qualifier attached to the g1 occurrence (the direction flip of
//     Section 5.1): the container may only demand conditions the
//     containee already guarantees.
//
// Spine sharing can make image graphs cyclic for recursive DTDs; the
// recursion assumes in-progress pairs hold (coinductive, greatest
// fixpoint), keeping the test quadratic in the image sizes.
func (o *Optimizer) simulate(g1, g2 *igraph) bool {
	if g1 == nil {
		return true // the empty query is contained in everything
	}
	if g2 == nil {
		return false
	}
	s := &simState{o: o, memo: make(map[[2]*inode]bool)}
	return s.simu(g1.root, g2.root)
}

type simState struct {
	o    *Optimizer
	memo map[[2]*inode]bool
}

func (s *simState) simu(v1, v2 *inode) bool {
	if v1.label != v2.label {
		return false
	}
	if v1.frontier && !v2.frontier {
		return false
	}
	key := [2]*inode{v1, v2}
	if ok, seen := s.memo[key]; seen {
		return ok
	}
	s.memo[key] = true // coinductive assumption for cycles
	ok := s.check(v1, v2)
	s.memo[key] = ok
	return ok
}

func (s *simState) check(v1, v2 *inode) bool {
	for _, x := range v1.kids {
		matched := false
		for _, y := range v2.kids {
			if s.simu(x, y) {
				matched = true
				break
			}
		}
		if !matched {
			return false
		}
	}
	for _, y := range v2.quals {
		matched := false
		for _, x := range v1.quals {
			if x.at == y.at && s.o.qualImplies(x.q, y.q, x.at) {
				matched = true
				break
			}
		}
		if !matched {
			return false
		}
	}
	return true
}

// qualImplies is a sound, syntax-directed implication test between
// qualifiers evaluated at the same DTD type: it returns true only when
// every node satisfying q1 must satisfy q2.
func (o *Optimizer) qualImplies(q1, q2 xpath.Qual, at string) bool {
	// Constants first.
	if _, ok := q2.(xpath.QTrue); ok {
		return true
	}
	if _, ok := q1.(xpath.QFalse); ok {
		return true
	}
	// Decompose the consequent.
	switch q2 := q2.(type) {
	case xpath.QAnd:
		return o.qualImplies(q1, q2.Left, at) && o.qualImplies(q1, q2.Right, at)
	}
	// Decompose the antecedent.
	switch q1 := q1.(type) {
	case xpath.QOr:
		return o.qualImplies(q1.Left, q2, at) && o.qualImplies(q1.Right, q2, at)
	case xpath.QAnd:
		return o.qualImplies(q1.Left, q2, at) || o.qualImplies(q1.Right, q2, at)
	}
	if q2, ok := q2.(xpath.QOr); ok {
		return o.qualImplies(q1, q2.Left, at) || o.qualImplies(q1, q2.Right, at)
	}
	// Base cases on path atoms: a witness for p1 guarantees a witness for
	// p2 when p2 is a structural prefix of p1.
	switch q1 := q1.(type) {
	case xpath.QPath:
		if q2, ok := q2.(xpath.QPath); ok {
			return pathPrefixImplies(q1.Path, q2.Path)
		}
	case xpath.QEq:
		switch q2 := q2.(type) {
		case xpath.QPath:
			return pathPrefixImplies(q1.Path, q2.Path)
		case xpath.QEq:
			return q1.Value == q2.Value && q1.Var == q2.Var && xpath.Equal(q1.Path, q2.Path)
		}
	}
	return xpath.QualEqual(q1, q2)
}

// pathPrefixImplies reports that the existence of a p1-witness implies
// the existence of a p2-witness at the same context: p2's step chain must
// be a prefix of p1's, step by step. Steps compare as: equal labels;
// a wildcard in p2 is implied by any label or wildcard in p1; a union
// step in p1 requires all branches to imply p2's step; a union step in p2
// is implied by any branch. Qualifiers on p1 steps strengthen it and are
// ignored; qualifiers on p2 steps must be implied, which this
// conservative test only accepts for syntactically equal steps.
func pathPrefixImplies(p1, p2 xpath.Path) bool {
	if xpath.Equal(p1, p2) {
		return true
	}
	steps1 := flattenSteps(p1)
	steps2 := flattenSteps(p2)
	if steps1 == nil || steps2 == nil || len(steps2) > len(steps1) {
		return false
	}
	for i, s2 := range steps2 {
		if !stepImplies(steps1[i], s2) {
			return false
		}
	}
	return true
}

// flattenSteps turns a left-deep Seq chain into its step list; nil when
// the path contains constructs the prefix test does not model (// steps).
func flattenSteps(p xpath.Path) []xpath.Path {
	switch p := p.(type) {
	case xpath.Seq:
		left := flattenSteps(p.Left)
		if left == nil {
			return nil
		}
		right := flattenSteps(p.Right)
		if right == nil {
			return nil
		}
		return append(left, right...)
	case xpath.Label, xpath.Wildcard, xpath.Self, xpath.Union, xpath.Qualified:
		return []xpath.Path{p}
	default:
		return nil
	}
}

// stepImplies compares single steps: existence of s1 implies existence of
// s2 at the same position.
func stepImplies(s1, s2 xpath.Path) bool {
	// Qualifiers on s1 only strengthen it.
	if q, ok := s1.(xpath.Qualified); ok {
		if xpath.Equal(s1, s2) {
			return true
		}
		return stepImplies(q.Sub, s2)
	}
	switch s2 := s2.(type) {
	case xpath.Wildcard:
		switch s1 := s1.(type) {
		case xpath.Label:
			return s1.Name != xpath.TextName // '*' selects elements only
		case xpath.Wildcard:
			return true
		case xpath.Union:
			return stepImplies(s1.Left, s2) && stepImplies(s1.Right, s2)
		}
		return false
	case xpath.Union:
		return stepImplies(s1, s2.Left) || stepImplies(s1, s2.Right)
	case xpath.Label:
		if u, ok := s1.(xpath.Union); ok {
			return stepImplies(u.Left, s2) && stepImplies(u.Right, s2)
		}
		return xpath.Equal(s1, s2)
	case xpath.Self:
		return true
	default:
		return xpath.Equal(s1, s2)
	}
}
