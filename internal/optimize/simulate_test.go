package optimize

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dtd"
	"repro/internal/dtds"
	"repro/internal/xmlgen"
	"repro/internal/xpath"
)

func TestPathPrefixImplies(t *testing.T) {
	cases := []struct {
		p1, p2 string
		want   bool
	}{
		{"b/c", "b", true},        // prefix
		{"b/c/d", "b/c", true},    // longer prefix
		{"b", "b/c", false},       // wrong direction
		{"b/c", "c", false},       // not a prefix
		{"b", "b", true},          // equal
		{"b/c", "*", true},        // wildcard weaker
		{"*", "b", false},         // label stronger than wildcard
		{"(b | c)/d", "b", false}, // a c/d witness has no b
		{"(b | b)/d", "b", true},  // all branches imply b
		{"b/c", "b | x", true},    // union consequent: one side suffices
		{"b[d]/c", "b", true},     // qualifier on antecedent strengthens
		{"b/c", "b[d]", false},    // qualifier on consequent must be implied
		{"b[d]/c", "b[d]", true},  // identical qualified step
		{"//b", "b", false},       // descendant steps not modeled
		{"text()", "*", false},    // text is not an element child
	}
	for _, tc := range cases {
		got := pathPrefixImplies(xpath.MustParse(tc.p1), xpath.MustParse(tc.p2))
		if got != tc.want {
			t.Errorf("pathPrefixImplies(%q, %q) = %v, want %v", tc.p1, tc.p2, got, tc.want)
		}
	}
}

func TestQualImplies(t *testing.T) {
	o := New(dtd.MustParse("root r\nr -> a*\na -> b*\nb -> c*\nc -> #PCDATA\n"))
	cases := []struct {
		q1, q2 string
		want   bool
	}{
		{"b/c", "b", true},
		{"b", "b/c", false},
		{"b and c", "b", true},        // conjunct implies
		{"b", "b or c", true},         // consequent disjunction
		{"b or c", "b", false},        // c-witness has no b
		{"b or b/c", "b", true},       // all antecedent branches imply
		{"b", "b and b", true},        // consequent conjunction
		{`b = "1"`, "b", true},        // equality implies existence
		{`b = "1"`, `b = "1"`, true},  // identical comparison
		{`b = "1"`, `b = "2"`, false}, // different constants
		{"not(b)", "not(b)", true},    // identical negations
		{"not(b)", "b", false},        // negation is opaque
		{"b", "true()", true},         // everything implies true
		{"false()", "b", true},        // false implies everything
	}
	for _, tc := range cases {
		q1 := xpath.MustParseQual(tc.q1)
		q2 := xpath.MustParseQual(tc.q2)
		if got := o.qualImplies(q1, q2, "a"); got != tc.want {
			t.Errorf("qualImplies(%q, %q) = %v, want %v", tc.q1, tc.q2, got, tc.want)
		}
	}
}

func TestFirstRequired(t *testing.T) {
	cases := []struct {
		q    string
		want []string
		ok   bool
	}{
		{"b/c", []string{"b"}, true},
		{"b | c", []string{"b", "c"}, true},
		{"(b | c)/d", []string{"b", "c"}, true},
		{"b[x]/y", []string{"b"}, true},
		{`b = "1"`, []string{"b"}, true},
		{"//b", nil, false},
		{".", nil, false},
		{"*", nil, false},
		{"text()", nil, false},
	}
	for _, tc := range cases {
		q, err := xpath.ParseQual(tc.q)
		if err != nil {
			t.Fatalf("ParseQual(%q): %v", tc.q, err)
		}
		got, ok := firstRequired(q)
		if ok != tc.ok {
			t.Errorf("firstRequired(%q) ok = %v, want %v", tc.q, ok, tc.ok)
			continue
		}
		if !ok {
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("firstRequired(%q) = %v, want %v", tc.q, got, tc.want)
			continue
		}
		for _, w := range tc.want {
			if !got[w] {
				t.Errorf("firstRequired(%q) missing %s", tc.q, w)
			}
		}
	}
}

func TestImageBudgetOverflow(t *testing.T) {
	// A query with many frontier occurrences and deep continuations can
	// exceed the budget; the optimizer must then skip containment and
	// leave the union intact, never collapse or error.
	var wide string
	for i := 0; i < 14; i++ {
		if i > 0 {
			wide += "/"
		}
		wide += "(b | b | b | b)"
	}
	d := dtd.MustParse("root a\na -> b\nb -> b + c\nc -> #PCDATA\n")
	o := New(d)
	p := xpath.MustParse(wide + " | nosuchlabel")
	po := o.Optimize(p)
	if xpath.IsEmpty(po) {
		t.Fatalf("overflow turned a live query into ∅")
	}
}

// TestOptimizeRecursiveSemantics: optimization over a recursive DTD must
// preserve results on generated documents.
func TestOptimizeRecursiveSemantics(t *testing.T) {
	d := dtds.Fig7()
	o := New(d)
	queries := []string{
		"//b", "//a/b", "//c/a", "a | //a", "//a[b]", "//a[not(c)]",
		"c/a/b", "//c[a/b]", "//a[b and c]", "//*",
	}
	for seed := int64(0); seed < 4; seed++ {
		doc := xmlgen.Generate(d, xmlgen.Config{Seed: seed, MaxRepeat: 2, MaxDepth: 6})
		for _, q := range queries {
			p := xpath.MustParse(q)
			po := o.Optimize(p)
			a := xpath.EvalDoc(p, doc)
			b := xpath.EvalDoc(po, doc)
			if len(a) != len(b) {
				t.Errorf("seed %d %q -> %q: %d vs %d nodes", seed, q, xpath.String(po), len(a), len(b))
				continue
			}
			for i := range a {
				if a[i] != b[i] {
					t.Errorf("seed %d %q: node %d differs", seed, q, i)
				}
			}
		}
	}
}

// TestOptimizeAdexSemanticsProperty fuzzes the optimizer over the Adex
// DTD with generated documents.
func TestOptimizeAdexSemanticsProperty(t *testing.T) {
	d := dtds.Adex()
	o := New(d)
	doc := dtds.GenerateAdex(5, 4)
	labels := append(d.Types(), "nosuch")
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randAdexPath(r, labels, 3)
		po := o.Optimize(p)
		a := xpath.EvalDoc(p, doc)
		b := xpath.EvalDoc(po, doc)
		if len(a) != len(b) {
			t.Logf("seed %d: %s -> %s: %d vs %d", seed, xpath.String(p), xpath.String(po), len(a), len(b))
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func randAdexPath(r *rand.Rand, labels []string, depth int) xpath.Path {
	if depth <= 0 {
		switch r.Intn(5) {
		case 0:
			return xpath.Self{}
		case 1:
			return xpath.Wildcard{}
		default:
			return xpath.Label{Name: labels[r.Intn(len(labels))]}
		}
	}
	switch r.Intn(8) {
	case 0, 1:
		return xpath.Seq{Left: randAdexPath(r, labels, depth-1), Right: randAdexPath(r, labels, depth-1)}
	case 2:
		return xpath.Descend{Sub: randAdexPath(r, labels, depth-1)}
	case 3, 4:
		return xpath.Union{Left: randAdexPath(r, labels, depth-1), Right: randAdexPath(r, labels, depth-1)}
	case 5:
		var q xpath.Qual = xpath.QPath{Path: randAdexPath(r, labels, depth-1)}
		switch r.Intn(3) {
		case 0:
			q = xpath.QAnd{Left: q, Right: xpath.QPath{Path: randAdexPath(r, labels, depth-1)}}
		case 1:
			q = xpath.QNot{Sub: q}
		}
		return xpath.Qualified{Sub: randAdexPath(r, labels, depth-1), Cond: q}
	default:
		return randAdexPath(r, labels, 0)
	}
}
