// Package optimize implements the paper's Section 5: XPath query
// optimization in the presence of a DTD. Exact optimization is
// intractable (containment with DTDs is coNP-hard to undecidable
// [Neven/Schwentick]), so the algorithms here are approximate and
// one-sided: every transformation preserves equivalence over all
// instances of the DTD, and a failed test simply leaves the query as is.
//
// Three DTD constraint classes drive the optimizer (Example 5.1):
//
//   - co-existence: a concatenation production guarantees all its children
//     exist, so provable qualifiers are removed;
//   - exclusive: a disjunction production forbids two different children
//     at once, so contradictory qualifiers collapse the query to ∅;
//   - non-existence: steps that reach no DTD node are pruned to ∅.
//
// Redundant unions and conjuncts are removed with the approximate
// containment test of Section 5.1: queries are abstracted into image
// graphs over the DTD and compared by a graph simulation that flips
// direction at qualifiers. Two refinements over the paper's literal
// definition keep the test sound (the paper's own property, Prop. 5.1,
// demands soundness): image nodes are per-occurrence rather than merged
// per label across unrelated branches (merging can manufacture label
// paths neither query has), and the simulation must map frontier
// (selected) nodes to frontier nodes — without this, the single-node
// image of ε would be "simulated by" any image rooted at the same type.
package optimize

import (
	"repro/internal/dtd"
	"repro/internal/xpath"
)

// inode is one occurrence node of an image graph. Spine nodes created for
// '//' steps are shared per label inside their spine (the descendant
// closure is exactly "any path", so merging is lossless there); all other
// composition keeps occurrences separate.
type inode struct {
	label    string
	kids     []*inode
	quals    []qualAt
	frontier bool
}

// qualAt is a qualifier attached to an occurrence, kept as AST so that
// the simulation's qualifier rule can use a precise implication test.
type qualAt struct {
	q  xpath.Qual
	at string // DTD type the qualifier is evaluated at
}

// igraph is the image graph image(p, A): root occurrence labeled A,
// frontier = occurrences selected by p.
type igraph struct {
	root *inode
	size int
}

// imageBudget caps image construction; larger images abort the build and
// the caller skips the (purely optional) containment test.
const imageBudget = 4096

// builder tracks allocation against the budget.
type builder struct {
	o        *Optimizer
	overflow bool
	size     int
}

func (b *builder) node(label string) *inode {
	b.size++
	if b.size > imageBudget {
		b.overflow = true
	}
	return &inode{label: label}
}

// image computes image(p, A). ok is false when construction overflowed
// the budget (callers must then skip containment tests); a nil graph with
// ok true means p provably selects nothing at A.
func (o *Optimizer) image(p xpath.Path, a string) (*igraph, bool) {
	b := &builder{o: o}
	root := b.build(p, a)
	if b.overflow {
		return nil, false
	}
	if root == nil || !pruneDead(root) {
		return nil, true
	}
	return &igraph{root: root, size: b.size}, true
}

// build returns the occurrence tree of p at type a, or nil when empty.
func (b *builder) build(p xpath.Path, a string) *inode {
	if b.overflow {
		return nil
	}
	o := b.o
	switch p := p.(type) {
	case xpath.Empty:
		return nil
	case xpath.Self:
		n := b.node(a)
		n.frontier = true
		return n
	case xpath.Label:
		if p.Name == xpath.TextName {
			if c, ok := o.d.Production(a); ok && c.Kind == dtd.Text {
				n := b.node(a)
				leaf := b.node(textNode)
				leaf.frontier = true
				n.kids = append(n.kids, leaf)
				return n
			}
			return nil
		}
		if !o.d.HasChild(a, p.Name) {
			return nil
		}
		n := b.node(a)
		leaf := b.node(p.Name)
		leaf.frontier = true
		n.kids = append(n.kids, leaf)
		return n
	case xpath.Wildcard:
		kids := o.d.Children(a)
		if len(kids) == 0 {
			return nil
		}
		n := b.node(a)
		for _, k := range kids {
			leaf := b.node(k)
			leaf.frontier = true
			n.kids = append(n.kids, leaf)
		}
		return n
	case xpath.Seq:
		g1 := b.build(p.Left, a)
		if g1 == nil {
			return nil
		}
		// Replace each frontier occurrence with the image of p.Right at its
		// label; dead continuations leave dead branches pruned later. Spine
		// sharing makes the graph a DAG (or cyclic for recursive DTDs), so
		// each occurrence is visited exactly once — re-visiting would
		// consume the frontier of freshly spliced continuations.
		seen := make(map[*inode]bool)
		var attach func(n *inode)
		attach = func(n *inode) {
			if seen[n] {
				return
			}
			seen[n] = true
			kids := n.kids
			for _, k := range kids {
				attach(k)
			}
			if !n.frontier {
				return
			}
			n.frontier = false
			g2 := b.build(p.Right, n.label)
			if g2 == nil {
				return
			}
			// g2's root is the same occurrence as n: splice its content.
			n.kids = append(n.kids, g2.kids...)
			n.quals = append(n.quals, g2.quals...)
			n.frontier = g2.frontier
		}
		attach(g1)
		return g1
	case xpath.Descend:
		n := b.node(a)
		fromA := o.d.Reachable(a)
		spine := make(map[string]*inode) // per-label sharing inside the spine
		spine[a] = n
		for _, t := range o.reachDescend(a) {
			if t == textNode {
				continue
			}
			sub := b.build(p.Sub, t)
			if sub == nil {
				continue
			}
			// Ensure the spine covers every DTD edge on paths a→t, then
			// splice sub at the spine node for t.
			toT := o.reachingSet(t)
			for x := range fromA {
				if !toT[x] {
					continue
				}
				nx, ok := spine[x]
				if !ok {
					nx = b.node(x)
					spine[x] = nx
				}
				for _, y := range o.d.Children(x) {
					if !toT[y] {
						continue
					}
					ny, ok := spine[y]
					if !ok {
						ny = b.node(y)
						spine[y] = ny
					}
					if !hasKid(nx, ny) {
						nx.kids = append(nx.kids, ny)
					}
				}
			}
			nt := spine[t]
			nt.kids = append(nt.kids, sub.kids...)
			nt.quals = append(nt.quals, sub.quals...)
			if sub.frontier {
				nt.frontier = true
			}
			if b.overflow {
				return nil
			}
		}
		return n
	case xpath.Union:
		g1 := b.build(p.Left, a)
		g2 := b.build(p.Right, a)
		if g1 == nil {
			return g2
		}
		if g2 == nil {
			return g1
		}
		// Merge only the shared root occurrence; branches stay separate.
		g1.kids = append(g1.kids, g2.kids...)
		g1.quals = append(g1.quals, g2.quals...)
		g1.frontier = g1.frontier || g2.frontier
		return g1
	case xpath.Qualified:
		if _, ok := p.Sub.(xpath.Self); !ok {
			return b.build(xpath.Seq{Left: p.Sub, Right: xpath.Qualified{Sub: xpath.Self{}, Cond: p.Cond}}, a)
		}
		tv, simplified := o.optQual(p.Cond, a)
		switch tv {
		case tvFalse:
			return nil
		case tvTrue:
			n := b.node(a)
			n.frontier = true
			return n
		}
		n := b.node(a)
		n.frontier = true
		n.quals = append(n.quals, qualAt{q: simplified, at: a})
		return n
	case xpath.Rec:
		// A nil return means "provably empty", which simulate treats as
		// contained in everything — unsound for an automaton the image
		// abstraction cannot model. Overflow instead, which skips the
		// containment test for this branch pair.
		b.overflow = true
		return nil
	default:
		return nil
	}
}

func hasKid(n, k *inode) bool {
	for _, c := range n.kids {
		if c == k {
			return true
		}
	}
	return false
}

// pruneDead removes branches that reach no frontier occurrence; it
// reports whether the root survives. Spine sharing can make the graph
// cyclic for recursive DTDs, so liveness is a fixpoint.
func pruneDead(root *inode) bool {
	live := make(map[*inode]bool)
	state := make(map[*inode]int)
	var visit func(n *inode) bool
	visit = func(n *inode) bool {
		switch state[n] {
		case 1: // in progress (cycle): resolved by the outer fixpoint
			return live[n]
		case 2:
			return live[n]
		}
		state[n] = 1
		ok := n.frontier
		for _, k := range n.kids {
			if visit(k) {
				ok = true
			}
		}
		state[n] = 2
		if ok {
			live[n] = true
		}
		return ok
	}
	// Iterate to a fixpoint for cyclic graphs (at most |nodes| rounds, in
	// practice one or two).
	for {
		before := len(live)
		state = make(map[*inode]int)
		visit(root)
		if len(live) == before {
			break
		}
	}
	if !live[root] {
		return false
	}
	seen := make(map[*inode]bool)
	var strip func(n *inode)
	strip = func(n *inode) {
		if seen[n] {
			return
		}
		seen[n] = true
		kept := n.kids[:0]
		for _, k := range n.kids {
			if live[k] {
				kept = append(kept, k)
				strip(k)
			}
		}
		n.kids = kept
	}
	strip(root)
	return true
}

// textNode is the pseudo image-graph node for text content.
const textNode = "#text"

// reachingSet returns the DTD types from which b is reachable (b
// included), cached per target.
func (o *Optimizer) reachingSet(b string) map[string]bool {
	if s, ok := o.reaching[b]; ok {
		return s
	}
	s := make(map[string]bool)
	for _, t := range o.d.Types() {
		if o.d.Reachable(t)[b] {
			s[t] = true
		}
	}
	o.reaching[b] = s
	return s
}
