package optimize

import (
	"context"
	"sort"
	"sync"

	"repro/internal/dtd"
	"repro/internal/obs"
	"repro/internal/xpath"
)

// Optimizer rewrites XPath queries into equivalent, cheaper queries over
// instances of one document DTD (Algorithm optimize, Fig. 10). It is
// stateful only as a cache: reach sets, recProc tables for '//', and the
// DP memo are shared across queries under a mutex, so an Optimizer is
// safe for concurrent use.
type Optimizer struct {
	mu sync.Mutex
	d  *dtd.DTD

	memo     map[memoKey]result
	recReach map[string][]string
	recPaths map[string]map[string]xpath.Path
	reaching map[string]map[string]bool

	// rules counts DTD-driven simplification decisions (impossible /
	// guaranteed qualifiers, exclusive or implied conjuncts, union
	// containment); pruned counts the subtrees those decisions removed
	// (union branches dropped, qualifier subtrees decided outright).
	// Memoized cells fire their rules once, on first computation. Both
	// are guarded by mu like the memo they describe.
	rules  uint64
	pruned uint64
}

// New returns an optimizer for the DTD. Recursive DTDs are supported: the
// '//' expansion simply keeps the descendant step instead of enumerating
// paths when the sub-DAG below a node is cyclic.
func New(d *dtd.DTD) *Optimizer {
	return &Optimizer{
		d:        d,
		memo:     make(map[memoKey]result),
		recReach: make(map[string][]string),
		recPaths: make(map[string]map[string]xpath.Path),
		reaching: make(map[string]map[string]bool),
	}
}

type memoKey struct {
	p xpath.Path
	a string
}

// result is one DP cell: the optimized translation per reach target (see
// package rewrite for why per-target composition is the sound variant of
// the paper's union form).
type result struct {
	byTarget map[string]xpath.Path
	reach    []string
}

func newResult() result { return result{byTarget: make(map[string]xpath.Path)} }

func (r *result) add(target string, p xpath.Path) {
	if xpath.IsEmpty(p) {
		return
	}
	if prev, ok := r.byTarget[target]; ok {
		r.byTarget[target] = xpath.MakeUnion(prev, p)
		return
	}
	r.byTarget[target] = p
	r.reach = append(r.reach, target)
}

func (r result) total() xpath.Path {
	out := xpath.Path(xpath.Empty{})
	for _, v := range r.reach {
		out = xpath.MakeUnion(out, r.byTarget[v])
	}
	return out
}

// Optimize rewrites p (evaluated at root elements of the DTD) into an
// equivalent query. Queries proved empty by DTD constraints return ∅.
func (o *Optimizer) Optimize(p xpath.Path) xpath.Path {
	return o.OptimizeAt(p, o.d.Root())
}

// OptimizeAt rewrites p as evaluated at elements of type a.
func (o *Optimizer) OptimizeAt(p xpath.Path, a string) xpath.Path {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.optimizeAtLocked(p, a)
}

func (o *Optimizer) optimizeAtLocked(p xpath.Path, a string) xpath.Path {
	return xpath.Simplify(o.opt(p, a).total())
}

// OptimizeCtx is Optimize with observability: when the context carries
// a trace span, the pass is recorded as a child span carrying the
// output size and the per-call delta of rules fired and branches
// pruned. Without a span it is exactly Optimize plus one nil check.
func (o *Optimizer) OptimizeCtx(ctx context.Context, p xpath.Path) xpath.Path {
	_, sp := obs.StartSpan(ctx, "optimize")
	o.mu.Lock()
	r0, p0 := o.rules, o.pruned
	out := o.optimizeAtLocked(p, o.d.Root())
	dr, dp := o.rules-r0, o.pruned-p0
	o.mu.Unlock()
	if sp != nil {
		sp.SetAttr("input_size", xpath.Size(p))
		sp.SetAttr("output_size", xpath.Size(out))
		sp.SetAttr("rules_fired", dr)
		sp.SetAttr("pruned_branches", dp)
		sp.Finish()
	}
	return out
}

// Stats reports the optimizer's cumulative counters: DTD-driven
// simplification rules fired and subtrees pruned by them.
func (o *Optimizer) Stats() (rulesFired, prunedBranches uint64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.rules, o.pruned
}

// OptimizeString parses, optimizes at the root, and prints.
func (o *Optimizer) OptimizeString(query string) (string, error) {
	p, err := xpath.Parse(query)
	if err != nil {
		return "", err
	}
	return xpath.String(o.Optimize(p)), nil
}

// targets returns reach(p, a): the DTD types reachable from a via p.
func (o *Optimizer) targets(p xpath.Path, a string) []string {
	return o.opt(p, a).reach
}

// Reach returns reach(p, root): the element types a root-context query
// can select over instances of the DTD (sorted; the pseudo type "#text"
// marks text results). Static analyses build on this.
func (o *Optimizer) Reach(p xpath.Path) []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]string(nil), o.targets(p, o.d.Root())...)
}

func (o *Optimizer) opt(p xpath.Path, a string) result {
	key := memoKey{p: p, a: a}
	if res, ok := o.memo[key]; ok {
		return res
	}
	res := o.compute(p, a)
	sort.Strings(res.reach)
	o.memo[key] = res
	return res
}

func (o *Optimizer) compute(p xpath.Path, a string) result {
	res := newResult()
	switch p := p.(type) {
	case xpath.Empty:
		return res
	case xpath.Self: // case (1)
		res.add(a, xpath.Self{})
		return res
	case xpath.Label: // case (2)
		if p.Name == xpath.TextName {
			if c, ok := o.d.Production(a); ok && c.Kind == dtd.Text {
				res.add(textNode, p)
			}
			return res
		}
		if o.d.HasChild(a, p.Name) {
			res.add(p.Name, p)
		}
		return res
	case xpath.Wildcard: // case (3): expand to the concrete child labels
		for _, b := range o.d.Children(a) {
			res.add(b, xpath.L(b))
		}
		return res
	case xpath.Seq: // case (4), per target
		r1 := o.opt(p.Left, a)
		for _, v := range r1.reach {
			r2 := o.opt(p.Right, v)
			for _, w := range r2.reach {
				res.add(w, xpath.MakeSeq(r1.byTarget[v], r2.byTarget[w]))
			}
		}
		return res
	case xpath.Descend: // case (5): expand '//' through recProc
		for _, b := range o.reachDescend(a) {
			sub := o.opt(p.Sub, b)
			for _, w := range sub.reach {
				res.add(w, xpath.MakeSeq(o.recrw(a, b), sub.byTarget[w]))
			}
		}
		return res
	case xpath.Union: // case (6): drop a branch contained in the other
		g1, ok1 := o.image(p.Left, a)
		g2, ok2 := o.image(p.Right, a)
		if ok1 && ok2 {
			if o.simulate(g1, g2) {
				o.rules++
				o.pruned++
				return o.opt(p.Right, a)
			}
			if o.simulate(g2, g1) {
				o.rules++
				o.pruned++
				return o.opt(p.Left, a)
			}
		}
		for _, sub := range []xpath.Path{p.Left, p.Right} {
			rs := o.opt(sub, a)
			for _, w := range rs.reach {
				res.add(w, rs.byTarget[w])
			}
		}
		return res
	case xpath.Qualified:
		if _, ok := p.Sub.(xpath.Self); ok { // case (7)
			tv, q := o.optQual(p.Cond, a)
			switch tv {
			case tvTrue:
				res.add(a, xpath.Self{})
			case tvFalse:
				// ∅
			default:
				res.add(a, xpath.Qualified{Sub: xpath.Self{}, Cond: q})
			}
			return res
		}
		return o.opt(xpath.Seq{Left: p.Sub, Right: xpath.Qualified{Sub: xpath.Self{}, Cond: p.Cond}}, a)
	case xpath.Rec:
		// Height-free rewrite of a recursive view region (package rewrite).
		// The automaton is opaque to the optimizer, but its results are
		// typed: every selected node carries ResultLabel. Keep the node,
		// pruning it only when the DTD proves that label unreachable from
		// the evaluation context (Reachable includes a itself, and every
		// context a Rec is evaluated at carries its Start type's label by
		// plan construction, so self-reach is covered).
		if p.ResultLabel == xpath.TextName {
			if o.textReachable(o.d.Reachable(a)) {
				res.add(textNode, p)
			}
			return res
		}
		if o.d.Reachable(a)[p.ResultLabel] {
			res.add(p.ResultLabel, p)
		}
		return res
	default:
		return res
	}
}

// optQual is the paper's evaluate([q], A): it decides the qualifier where
// DTD constraints fix its truth and otherwise returns an equivalent,
// simplified qualifier.
func (o *Optimizer) optQual(q xpath.Qual, a string) (triBool, xpath.Qual) {
	switch q := q.(type) {
	case xpath.QTrue:
		return tvTrue, q
	case xpath.QFalse:
		return tvFalse, q
	case xpath.QPath:
		if o.impossible(q.Path, a) {
			o.rules++
			o.pruned++
			return tvFalse, xpath.QFalse{}
		}
		if o.guaranteed(q.Path, a) {
			o.rules++
			o.pruned++
			return tvTrue, xpath.QTrue{}
		}
		return tvUnknown, xpath.QPath{Path: o.optimizeAtLocked(q.Path, a)}
	case xpath.QEq:
		if o.impossible(q.Path, a) {
			o.rules++
			o.pruned++
			return tvFalse, xpath.QFalse{}
		}
		return tvUnknown, xpath.QEq{Path: o.optimizeAtLocked(q.Path, a), Value: q.Value, Var: q.Var}
	case xpath.QAnd:
		t1, q1 := o.optQual(q.Left, a)
		t2, q2 := o.optQual(q.Right, a)
		if t1 == tvFalse || t2 == tvFalse {
			return tvFalse, xpath.QFalse{}
		}
		if t1 == tvTrue {
			return t2, q2
		}
		if t2 == tvTrue {
			return t1, q1
		}
		if o.exclusive(a, q1, q2) {
			o.rules++
			o.pruned++
			return tvFalse, xpath.QFalse{}
		}
		if o.qualImplies(q1, q2, a) {
			o.rules++
			return tvUnknown, q1
		}
		if o.qualImplies(q2, q1, a) {
			o.rules++
			return tvUnknown, q2
		}
		return tvUnknown, xpath.QAnd{Left: q1, Right: q2}
	case xpath.QOr:
		t1, q1 := o.optQual(q.Left, a)
		t2, q2 := o.optQual(q.Right, a)
		if t1 == tvTrue || t2 == tvTrue {
			return tvTrue, xpath.QTrue{}
		}
		if t1 == tvFalse {
			return t2, q2
		}
		if t2 == tvFalse {
			return t1, q1
		}
		return tvUnknown, xpath.QOr{Left: q1, Right: q2}
	case xpath.QNot:
		t, sub := o.optQual(q.Sub, a)
		if t != tvUnknown {
			return t.not(), xpath.MakeNot(sub)
		}
		return tvUnknown, xpath.MakeNot(sub)
	default:
		return tvUnknown, q
	}
}
