package optimize

import (
	"repro/internal/dtd"
	"repro/internal/xpath"
)

// triBool is the three-valued outcome of evaluating a qualifier against
// DTD constraints (the paper's bool([q], A): true, false, or undefined).
type triBool int

const (
	tvUnknown triBool = iota
	tvTrue
	tvFalse
)

func (t triBool) not() triBool {
	switch t {
	case tvTrue:
		return tvFalse
	case tvFalse:
		return tvTrue
	default:
		return tvUnknown
	}
}

// exclusive applies the paper's exclusive-constraint check (Section 5.1
// case (8), second bullet): when A's production is a disjunction and the
// two conjuncts require different disjuncts as their first steps, the
// conjunction is unsatisfiable at A.
func (o *Optimizer) exclusive(a string, q1, q2 xpath.Qual) bool {
	c, ok := o.d.Production(a)
	if !ok || c.Kind != dtd.Choice {
		return false
	}
	alts := make(map[string]bool, len(c.Items))
	for _, it := range c.Items {
		alts[it.Name] = true
	}
	s1, ok1 := firstRequired(q1)
	s2, ok2 := firstRequired(q2)
	if !ok1 || !ok2 || len(s1) == 0 || len(s2) == 0 {
		return false
	}
	// Sound only when every possible first step is a disjunction
	// alternative (a wildcard or foreign label would escape the argument).
	for l := range s1 {
		if !alts[l] {
			return false
		}
	}
	for l := range s2 {
		if !alts[l] {
			return false
		}
	}
	for l := range s1 {
		if s2[l] {
			return false
		}
	}
	return true
}

// firstRequired returns the set of labels the qualifier's witness must
// begin with as a child step. ok is false when no such set can be
// soundly determined (descendant steps, negation, disjunctive
// connectives other than path unions).
func firstRequired(q xpath.Qual) (map[string]bool, bool) {
	switch q := q.(type) {
	case xpath.QPath:
		return firstStepLabels(q.Path)
	case xpath.QEq:
		return firstStepLabels(q.Path)
	default:
		return nil, false
	}
}

// firstStepLabels collects the labels a path's first child step can take;
// ok is false for paths whose first step is not a plain child step.
func firstStepLabels(p xpath.Path) (map[string]bool, bool) {
	switch p := p.(type) {
	case xpath.Label:
		if p.Name == xpath.TextName {
			return nil, false
		}
		return map[string]bool{p.Name: true}, true
	case xpath.Seq:
		return firstStepLabels(p.Left)
	case xpath.Union:
		l, ok1 := firstStepLabels(p.Left)
		r, ok2 := firstStepLabels(p.Right)
		if !ok1 || !ok2 {
			return nil, false
		}
		for k := range r {
			l[k] = true
		}
		return l, true
	case xpath.Qualified:
		return firstStepLabels(p.Sub)
	default:
		return nil, false
	}
}

// guaranteed reports that p selects at least one node at every A element
// of every instance of the DTD (the co-existence constraint generalized
// along paths). It is conservative: false means "not provable".
func (o *Optimizer) guaranteed(p xpath.Path, a string) bool {
	return o.guaranteedDepth(p, a, 0)
}

// guaranteedDepth bounds recursion on recursive DTDs; the bound loses
// only precision, never soundness.
func (o *Optimizer) guaranteedDepth(p xpath.Path, a string, depth int) bool {
	if depth > o.d.Len()+4 {
		return false
	}
	switch p := p.(type) {
	case xpath.Self:
		return true
	case xpath.Label:
		c, ok := o.d.Production(a)
		if !ok {
			return false
		}
		if p.Name == xpath.TextName {
			return c.Kind == dtd.Text
		}
		if c.Kind != dtd.Seq {
			return false
		}
		for _, it := range c.Items {
			if it.Name == p.Name && !it.Starred {
				return true
			}
		}
		return false
	case xpath.Wildcard:
		c, ok := o.d.Production(a)
		if !ok {
			return false
		}
		// A concatenation guarantees all children; a disjunction guarantees
		// exactly one (paper case (7)).
		return (c.Kind == dtd.Seq && len(c.Items) > 0 && !allStarred(c)) || c.Kind == dtd.Choice
	case xpath.Seq:
		if !o.guaranteedDepth(p.Left, a, depth+1) {
			return false
		}
		targets := o.targets(p.Left, a)
		if len(targets) == 0 {
			return false
		}
		for _, b := range targets {
			if !o.guaranteedDepth(p.Right, b, depth+1) {
				return false
			}
		}
		return true
	case xpath.Descend:
		// //p is guaranteed whenever p is guaranteed at the context itself.
		return o.guaranteedDepth(p.Sub, a, depth+1)
	case xpath.Union:
		return o.guaranteedDepth(p.Left, a, depth+1) || o.guaranteedDepth(p.Right, a, depth+1)
	default:
		return false
	}
}

func allStarred(c dtd.Content) bool {
	for _, it := range c.Items {
		if !it.Starred {
			return false
		}
	}
	return true
}

// impossible reports that p selects nothing at any A element (the
// non-existence constraint): no DTD node is reachable from A via p.
func (o *Optimizer) impossible(p xpath.Path, a string) bool {
	return len(o.targets(p, a)) == 0
}
