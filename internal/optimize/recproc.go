package optimize

import (
	"sort"

	"repro/internal/dtd"
	"repro/internal/xpath"
)

// reachDescend returns reach(//, a) over the document DTD: a itself, all
// its DTD descendants, and the pseudo text target when text content is
// reachable.
func (o *Optimizer) reachDescend(a string) []string {
	if r, ok := o.recReach[a]; ok {
		return r
	}
	o.runRecProc(a)
	return o.recReach[a]
}

// recrw returns recrw(a, b): a query equivalent to "descend from a to b"
// over instances of the DTD. On a DAG it enumerates the label paths (with
// sub-expression sharing); when the sub-graph below a is cyclic the
// enumeration would be infinite, so the descendant step //b is kept — a
// precision fallback, never a correctness one. This is the recProc
// variant used by Algorithm optimize (no σ substitution).
func (o *Optimizer) recrw(a, b string) xpath.Path {
	if _, ok := o.recPaths[a]; !ok {
		o.runRecProc(a)
	}
	if p, ok := o.recPaths[a][b]; ok {
		return p
	}
	return xpath.Empty{}
}

func (o *Optimizer) runRecProc(a string) {
	reachable := o.d.Reachable(a)
	paths := make(map[string]xpath.Path)

	if o.cyclicBelow(a, reachable) {
		// Fallback for recursive regions: //b reaches exactly the b
		// descendants (and self for b == a).
		for b := range reachable {
			p := xpath.Path(xpath.MakeDescend(xpath.L(b)))
			if b == a {
				p = xpath.MakeUnion(xpath.Self{}, p)
			}
			paths[b] = p
		}
		if o.textReachable(reachable) {
			paths[textNode] = xpath.MakeDescend(xpath.L(xpath.TextName))
		}
	} else {
		// Topological order of the sub-DAG, parents first.
		state := make(map[string]int)
		var order []string
		var visit func(string)
		visit = func(x string) {
			if state[x] != 0 {
				return
			}
			state[x] = 1
			for _, y := range o.d.Children(x) {
				visit(y)
			}
			state[x] = 2
			order = append(order, x)
		}
		visit(a)
		for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
			order[i], order[j] = order[j], order[i]
		}
		paths[a] = xpath.Self{}
		for _, x := range order {
			px, ok := paths[x]
			if !ok {
				continue
			}
			for _, y := range o.d.Children(x) {
				step := xpath.MakeSeq(px, xpath.L(y))
				if prev, seen := paths[y]; seen {
					paths[y] = xpath.MakeUnion(prev, step)
				} else {
					paths[y] = step
				}
			}
		}
		var textPaths xpath.Path = xpath.Empty{}
		for b, pb := range paths {
			if c, ok := o.d.Production(b); ok && c.Kind == dtd.Text {
				textPaths = xpath.MakeUnion(textPaths, xpath.MakeSeq(pb, xpath.L(xpath.TextName)))
			}
		}
		if !xpath.IsEmpty(textPaths) {
			paths[textNode] = textPaths
		}
	}

	reach := make([]string, 0, len(paths))
	for b := range paths {
		reach = append(reach, b)
	}
	sort.Strings(reach)
	o.recReach[a] = reach
	o.recPaths[a] = paths
}

// cyclicBelow reports whether the sub-graph induced by the reachable set
// contains a cycle.
func (o *Optimizer) cyclicBelow(a string, reachable map[string]bool) bool {
	state := make(map[string]int)
	var visit func(string) bool
	visit = func(x string) bool {
		switch state[x] {
		case 1:
			return true
		case 2:
			return false
		}
		state[x] = 1
		for _, y := range o.d.Children(x) {
			if reachable[y] && visit(y) {
				return true
			}
		}
		state[x] = 2
		return false
	}
	return visit(a)
}

func (o *Optimizer) textReachable(reachable map[string]bool) bool {
	for b := range reachable {
		if c, ok := o.d.Production(b); ok && c.Kind == dtd.Text {
			return true
		}
	}
	return false
}
