package optimize

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dtd"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// fig8 builds the three mini DTDs of the paper's Example 5.1 / Fig. 8.
func fig8a() *dtd.DTD {
	return dtd.MustParse("root r\nr -> a*\na -> b, c\nb -> #PCDATA\nc -> #PCDATA\n")
}

func fig8b() *dtd.DTD {
	return dtd.MustParse("root r\nr -> a*\na -> b + c\nb -> #PCDATA\nc -> #PCDATA\n")
}

func fig8c() *dtd.DTD {
	return dtd.MustParse("root r\nr -> a, b\na -> c\nb -> d\nc -> #PCDATA\nd -> #PCDATA\n")
}

func optString(t *testing.T, d *dtd.DTD, query string) string {
	t.Helper()
	o := New(d)
	out, err := o.OptimizeString(query)
	if err != nil {
		t.Fatalf("OptimizeString(%q): %v", query, err)
	}
	return out
}

// TestExample51 pins the paper's Example 5.1.
func TestExample51(t *testing.T) {
	// Co-existence: //a[b and c] ≡ //a when a -> b, c.
	got := optString(t, fig8a(), "//a[b and c]")
	if got != "a" { // expanded: the only a position is r/a
		t.Errorf("co-existence: got %q, want %q", got, "a")
	}
	// Exclusive: //a[b and c] ≡ ∅ when a -> b + c.
	got = optString(t, fig8b(), "//a[b and c]")
	if got != "∅" {
		t.Errorf("exclusive: got %q, want ∅", got)
	}
	// Non-existence: (a | b)/c ≡ a/c when b has no c child.
	got = optString(t, fig8c(), "(a | b)/c")
	if got != "a/c" {
		t.Errorf("non-existence: got %q, want a/c", got)
	}
}

// fig9 is the DTD of the paper's Fig. 9(a): a -> b?, c?; b -> d; c -> d;
// d -> e?, f?; e -> g; f -> g, expressed in normal form with choices over
// the children a query mentions. The paper draws it as a DAG with a
// having b,c children, both reaching d, d reaching e,f, both reaching g.
func fig9() *dtd.DTD {
	return dtd.MustParse(`
root a
a -> b, c
b -> d
c -> d
d -> e, f
e -> g
f -> g
g -> #PCDATA
`)
}

// TestExample52And53 pins the image-graph containment relations of the
// paper's Examples 5.2/5.3.
func TestExample52And53(t *testing.T) {
	o := New(fig9())
	p1 := xpath.MustParse("a[b]/*/d/*/g")
	p2 := xpath.MustParse("a[b]/(b | c)/d/(e | f)/g")
	p3 := xpath.MustParse("a[b]/b/d/e/g | a/b/d/f/g")
	// Images are computed at the node a; in our DTD a is the root, so use
	// a query context of the root type itself. Build the images at "a" by
	// wrapping: the paper's context node is an a element.
	at := "a"
	// The paths start with label a, so evaluate their tails at a: strip
	// the leading a[...] by evaluating images of the full paths at a
	// pseudo-parent. Simpler: compare the tails at a.
	t1 := xpath.MustParse(".[b]/*/d/*/g")
	t2 := xpath.MustParse(".[b]/(b | c)/d/(e | f)/g")
	t3 := xpath.MustParse(".[b]/b/d/e/g | ./b/d/f/g")
	_ = []xpath.Path{p1, p2, p3}
	g1, ok1 := o.image(t1, at)
	g2, ok2 := o.image(t2, at)
	g3, ok3 := o.image(t3, at)
	if !ok1 || !ok2 || !ok3 || g1 == nil || g2 == nil || g3 == nil {
		t.Fatalf("images empty: %v %v %v", g1, g2, g3)
	}
	// Example 5.3: p2, p3 ⊑ p1; p3 ⊑ p2; but p2's image is NOT simulated
	// by p3's.
	if !o.simulate(g2, g1) {
		t.Errorf("image(p2) not simulated by image(p1)")
	}
	if !o.simulate(g3, g1) {
		t.Errorf("image(p3) not simulated by image(p1)")
	}
	if !o.simulate(g3, g2) {
		t.Errorf("image(p3) not simulated by image(p2)")
	}
	if o.simulate(g2, g3) {
		t.Errorf("image(p2) simulated by image(p3); the approximation should miss this direction")
	}
	// The qualifier [b] is true at a (concatenation production) and must
	// have been removed from all three images: no qual nodes anywhere.
	for i, g := range []*igraph{g1, g2, g3} {
		if countQuals(g.root, make(map[*inode]bool)) != 0 {
			t.Errorf("image %d kept qualifiers", i+1)
		}
	}
}

func countQuals(n *inode, seen map[*inode]bool) int {
	if seen[n] {
		return 0
	}
	seen[n] = true
	total := len(n.quals)
	for _, k := range n.kids {
		total += countQuals(k, seen)
	}
	return total
}

// TestUnionPruning: redundant union branches are removed via simulation.
func TestUnionPruning(t *testing.T) {
	// p3 ⊑ p2 at a, so p2 ∪ p3 reduces to p2's optimization.
	got := optString(t, fig9(), ".[b]/(b | c)/d/(e | f)/g | .[b]/b/d/e/g")
	want := optString(t, fig9(), ".[b]/(b | c)/d/(e | f)/g")
	if got != want {
		t.Errorf("union not pruned: got %q, want %q", got, want)
	}
}

// TestExample54 reproduces the paper's Example 5.4 on the hospital DTD:
// //patient ∪ //(patient|staff)[//medication] reduces to the expansion of
// //patient alone.
func TestExample54(t *testing.T) {
	d := dtd.MustParse(`
root hospital
hospital -> dept*
dept -> clinicalTrial, patientInfo, staffInfo
clinicalTrial -> patientInfo
patientInfo -> patient*
patient -> name, wardNo, treatment
treatment -> trial + regular
trial -> bill
regular -> bill, medication
staffInfo -> staff*
staff -> doctor + nurse
doctor -> name
nurse -> name
name -> #PCDATA
wardNo -> #PCDATA
bill -> #PCDATA
medication -> #PCDATA
`)
	got := optString(t, d, "//patient | //(patient | staff)[//medication]")
	want := optString(t, d, "//patient")
	if got != want {
		t.Errorf("Example 5.4: got %q, want %q", got, want)
	}
	// And the expansion itself is the precise root path of the paper.
	if want != "dept/(clinicalTrial | .)/patientInfo/patient" &&
		want != "dept/(. | clinicalTrial)/patientInfo/patient" {
		t.Logf("note: expansion rendered as %q", want)
	}
}

// adexMini is a cut-down Adex-like DTD with the constraints Section 6
// exploits.
func adexMini() *dtd.DTD {
	return dtd.MustParse(`
root adex
adex -> head, body
head -> buyer-info*
buyer-info -> company-id, contact-info
company-id -> #PCDATA
contact-info -> #PCDATA
body -> ad-instance*
ad-instance -> real-estate
real-estate -> house + apartment
house -> r-e.asking-price, r-e.warranty
apartment -> r-e.unit-type
r-e.asking-price -> #PCDATA
r-e.warranty -> #PCDATA
r-e.unit-type -> #PCDATA
`)
}

// TestSection6Queries pins the optimizer behaviour Table 1 relies on.
func TestSection6Queries(t *testing.T) {
	d := adexMini()
	// Q1: '//' expansion to the precise root path.
	if got := optString(t, d, "//buyer-info/contact-info"); got != "head/buyer-info/contact-info" {
		t.Errorf("Q1 = %q", got)
	}
	// Q2: the apartment branch is pruned (non-existence).
	got := optString(t, d, "//house/r-e.warranty | //apartment/r-e.warranty")
	if got != "body/ad-instance/real-estate/house/r-e.warranty" {
		t.Errorf("Q2 = %q", got)
	}
	// Q3: the co-existence constraint removes the qualifier entirely.
	if got := optString(t, d, "//buyer-info[company-id and contact-info]"); got != "head/buyer-info" {
		t.Errorf("Q3 = %q", got)
	}
	// Q4: the exclusive constraint proves the query empty.
	if got := optString(t, d, "//real-estate[house/r-e.asking-price and apartment/r-e.unit-type]"); got != "∅" {
		t.Errorf("Q4 = %q", got)
	}
}

// TestOptimizeRecursiveFallback: '//' over a recursive DTD keeps the
// descendant step but still prunes impossible branches.
func TestOptimizeRecursiveFallback(t *testing.T) {
	d := dtd.MustParse(`
root a
a -> b, c
b -> #PCDATA
c -> a*
`)
	got := optString(t, d, "//b | //nosuch")
	// The recursive fallback keeps descendant steps: (. | //a)/b is the
	// per-target form of //b here (b's parents are self or descendant a's).
	if got != "//b" && got != "(. | //a)/b" {
		t.Errorf("recursive //: got %q", got)
	}
	if got := optString(t, d, "//c/b"); got != "∅" {
		t.Errorf("//c/b over recursive DTD = %q, want ∅ (c has no b child)", got)
	}
	if got := optString(t, d, "//c/a/b"); got == "∅" {
		t.Errorf("//c/a/b over recursive DTD pruned incorrectly")
	}
}

func hospitalInstanceDoc() *xmltree.Document {
	e, tx := xmltree.E, xmltree.T
	return xmltree.NewDocument(e("hospital",
		e("dept",
			e("clinicalTrial",
				e("patientInfo",
					e("patient", tx("name", "Carol"), tx("wardNo", "6"),
						e("treatment", e("trial", tx("bill", "900")))))),
			e("patientInfo",
				e("patient", tx("name", "Alice"), tx("wardNo", "6"),
					e("treatment", e("regular", tx("bill", "100"), tx("medication", "aspirin"))))),
			e("staffInfo", e("staff", e("nurse", tx("name", "Nina")))),
		),
		e("dept",
			e("clinicalTrial", e("patientInfo")),
			e("patientInfo",
				e("patient", tx("name", "Bob"), tx("wardNo", "7"),
					e("treatment", e("regular", tx("bill", "70"), tx("medication", "ibuprofen"))))),
			e("staffInfo", e("staff", e("doctor", tx("name", "Dan")))),
		),
	))
}

var hospitalLabels = []string{"hospital", "dept", "clinicalTrial", "patientInfo", "patient", "name", "wardNo", "treatment", "trial", "regular", "bill", "medication", "staffInfo", "staff", "doctor", "nurse", "nosuch"}

func randDocPath(r *rand.Rand, depth int) xpath.Path {
	if depth <= 0 {
		switch r.Intn(6) {
		case 0:
			return xpath.Self{}
		case 1:
			return xpath.Wildcard{}
		default:
			return xpath.Label{Name: hospitalLabels[r.Intn(len(hospitalLabels))]}
		}
	}
	switch r.Intn(8) {
	case 0, 1:
		return xpath.Seq{Left: randDocPath(r, depth-1), Right: randDocPath(r, depth-1)}
	case 2:
		return xpath.Descend{Sub: randDocPath(r, depth-1)}
	case 3, 4:
		return xpath.Union{Left: randDocPath(r, depth-1), Right: randDocPath(r, depth-1)}
	case 5:
		return xpath.Qualified{Sub: randDocPath(r, depth-1), Cond: randDocQual(r, depth-1)}
	default:
		return randDocPath(r, 0)
	}
}

func randDocQual(r *rand.Rand, depth int) xpath.Qual {
	switch r.Intn(5) {
	case 0:
		return xpath.QAnd{Left: xpath.QPath{Path: randDocPath(r, depth)}, Right: xpath.QPath{Path: randDocPath(r, depth)}}
	case 1:
		return xpath.QNot{Sub: xpath.QPath{Path: randDocPath(r, depth)}}
	case 2:
		return xpath.QEq{Path: randDocPath(r, depth), Value: "6"}
	case 3:
		return xpath.QOr{Left: xpath.QPath{Path: randDocPath(r, depth)}, Right: xpath.QPath{Path: randDocPath(r, depth)}}
	default:
		return xpath.QPath{Path: randDocPath(r, depth)}
	}
}

// TestOptimizePreservesSemantics: optimization must never change query
// results on a conforming document, for random queries of the full
// fragment C.
func TestOptimizePreservesSemantics(t *testing.T) {
	d := dtd.MustParse(`
root hospital
hospital -> dept*
dept -> clinicalTrial, patientInfo, staffInfo
clinicalTrial -> patientInfo
patientInfo -> patient*
patient -> name, wardNo, treatment
treatment -> trial + regular
trial -> bill
regular -> bill, medication
staffInfo -> staff*
staff -> doctor + nurse
doctor -> name
nurse -> name
name -> #PCDATA
wardNo -> #PCDATA
bill -> #PCDATA
medication -> #PCDATA
`)
	doc := hospitalInstanceDoc()
	if err := xmltree.Validate(doc, d); err != nil {
		t.Fatalf("fixture does not conform: %v", err)
	}
	o := New(d)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randDocPath(r, 3)
		po := o.Optimize(p)
		before := xpath.EvalDoc(p, doc)
		after := xpath.EvalDoc(po, doc)
		if len(before) != len(after) {
			t.Logf("seed %d: %s -> %s: %d vs %d nodes", seed, xpath.String(p), xpath.String(po), len(before), len(after))
			return false
		}
		for i := range before {
			if before[i] != after[i] {
				t.Logf("seed %d: %s -> %s: node mismatch", seed, xpath.String(p), xpath.String(po))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestOptimizeQualifierCases covers the qualifier simplifier.
func TestOptimizeQualifierCases(t *testing.T) {
	d := fig8a() // r -> a*; a -> b, c
	cases := []struct {
		in, want string
	}{
		{"a[b]", "a"},                    // guaranteed
		{"a[nosuch]", "∅"},               // impossible
		{"a[not(nosuch)]", "a"},          // ¬false
		{"a[not(b)]", "∅"},               // ¬true
		{"a[b or nosuch]", "a"},          // true ∨ _
		{"a[nosuch or nosuch]", "∅"},     // false ∨ false
		{"a[b and nosuch]", "∅"},         // _ ∧ false
		{"a[b = \"1\"]", "a[b = \"1\"]"}, // content-based: kept
		{"a[nosuch = \"1\"]", "∅"},       // impossible comparison
	}
	for _, tc := range cases {
		if got := optString(t, d, tc.in); got != tc.want {
			t.Errorf("optimize(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestQualContainment: [b and b/...] style redundant conjuncts collapse.
func TestQualContainment(t *testing.T) {
	d := dtd.MustParse(`
root r
r -> a*
a -> b*
b -> c*
c -> #PCDATA
`)
	// [b/c] implies [b]; the conjunction keeps only the stronger.
	got := optString(t, d, "a[b/c and b]")
	if got != "a[b/c]" {
		t.Errorf("containment conjunction = %q, want a[b/c]", got)
	}
	// Different constants must not collapse.
	got = optString(t, d, `a[b/c = "1" and b/c = "2"]`)
	if got != `a[b/c = "1" and b/c = "2"]` {
		t.Errorf("distinct constants collapsed: %q", got)
	}
}

func TestOptimizeAtNonRoot(t *testing.T) {
	d := fig8a()
	o := New(d)
	po := o.OptimizeAt(xpath.MustParse(".[b and c]"), "a")
	if got := xpath.String(po); got != "." {
		t.Errorf("OptimizeAt(a) = %q, want .", got)
	}
	po = o.OptimizeAt(xpath.MustParse(".[b and c]"), "r")
	if got := xpath.String(po); got != "∅" {
		t.Errorf("OptimizeAt(r) = %q, want ∅ (r has no b/c children)", got)
	}
}

func TestOptimizeStringError(t *testing.T) {
	o := New(fig8a())
	if _, err := o.OptimizeString("///"); err == nil {
		t.Errorf("bad query accepted")
	}
}

// TestUnionKeepsDescendSelfBranch is a regression test: image
// construction for (//.)/wardNo over a DTD with a shared spine node
// (patientInfo under both dept and clinicalTrial) used to consume the
// frontier of spliced continuations on the second visit, judging the
// branch empty and letting union pruning drop it.
func TestUnionKeepsDescendSelfBranch(t *testing.T) {
	d := dtd.MustParse(`
root hospital
hospital -> dept*
dept -> clinicalTrial, patientInfo, staffInfo
clinicalTrial -> patientInfo
patientInfo -> patient*
patient -> name, wardNo, treatment
treatment -> trial + regular
trial -> bill
regular -> bill, medication
staffInfo -> staff*
staff -> doctor + nurse
doctor -> name
nurse -> name
name -> #PCDATA
wardNo -> #PCDATA
bill -> #PCDATA
medication -> #PCDATA
`)
	o := New(d)
	left := xpath.MustParse("(//.)/wardNo")
	g1, ok := o.image(left, "hospital")
	if !ok || g1 == nil {
		t.Fatalf("image of a live query is empty")
	}
	doc := hospitalInstanceDoc()
	p := xpath.Union{Left: left, Right: xpath.Wildcard{}}
	po := o.Optimize(p)
	before := xpath.EvalDoc(p, doc)
	after := xpath.EvalDoc(po, doc)
	if len(before) != len(after) {
		t.Fatalf("union branch dropped: %d vs %d (%s)", len(before), len(after), xpath.String(po))
	}
}
