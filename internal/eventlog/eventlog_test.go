package eventlog

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

type testEvent struct {
	ID   int    `json:"id"`
	Note string `json:"note,omitempty"`
}

func readLines(t *testing.T, path string) []testEvent {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer f.Close()
	var out []testEvent
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var e testEvent
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %q is not valid JSON: %v", sc.Text(), err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan %s: %v", path, err)
	}
	return out
}

func TestEmitJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	w, err := New(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.Emit(testEvent{ID: i, Note: "n"}); err != nil {
			t.Fatalf("Emit %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got := readLines(t, path)
	if len(got) != 10 {
		t.Fatalf("read %d events, want 10", len(got))
	}
	for i, e := range got {
		if e.ID != i {
			t.Errorf("event %d has id %d", i, e.ID)
		}
	}
	if ev, rot := w.Stats(); ev != 10 || rot != 0 {
		t.Errorf("stats = %d events %d rotations, want 10/0", ev, rot)
	}
}

// Rotation bounds the on-disk footprint at ~2x maxBytes: the live file
// stays under the bound and exactly one predecessor is kept.
func TestRotationBound(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	const maxBytes = 4096
	w, err := New(path, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	note := strings.Repeat("x", 100)
	for i := 0; i < 500; i++ {
		if err := w.Emit(testEvent{ID: i, Note: note}); err != nil {
			t.Fatalf("Emit %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, rot := w.Stats()
	if rot == 0 {
		t.Fatal("no rotations after writing far past the bound")
	}
	for _, p := range []string{path, path + ".1"} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("stat %s: %v", p, err)
		}
		if st.Size() > maxBytes {
			t.Errorf("%s is %d bytes, bound %d", p, st.Size(), maxBytes)
		}
	}
	// No second-generation file exists; footprint is exactly two files.
	if _, err := os.Stat(path + ".1.1"); err == nil {
		t.Error("unexpected .1.1 rotation file")
	}
	// Both surviving files hold well-formed JSONL with contiguous
	// trailing ids (rotation loses older events, never corrupts lines).
	rotated := readLines(t, path+".1")
	live := readLines(t, path)
	all := append(rotated, live...)
	if len(all) == 0 {
		t.Fatal("no events survived rotation")
	}
	for i := 1; i < len(all); i++ {
		if all[i].ID != all[i-1].ID+1 {
			t.Fatalf("event ids not contiguous across rotation: %d then %d", all[i-1].ID, all[i].ID)
		}
	}
	if last := all[len(all)-1].ID; last != 499 {
		t.Errorf("last event id = %d, want 499", last)
	}
}

// Reopening an existing log appends rather than truncating.
func TestReopenAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	w, err := New(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	w.Emit(testEvent{ID: 0})
	w.Close()
	w, err = New(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	w.Emit(testEvent{ID: 1})
	w.Close()
	if got := readLines(t, path); len(got) != 2 || got[1].ID != 1 {
		t.Errorf("after reopen: %+v, want ids 0,1", got)
	}
}

// An event bigger than the whole bound is written, not dropped or
// looped on.
func TestOversizedEvent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	w, err := New(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Emit(testEvent{ID: 7, Note: strings.Repeat("y", 1000)}); err != nil {
		t.Fatalf("oversized Emit: %v", err)
	}
	w.Close()
	if got := readLines(t, path); len(got) != 1 || got[0].ID != 7 {
		t.Errorf("oversized event not written intact: %+v", got)
	}
}

func TestConcurrentEmit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	w, err := New(path, 8192)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := w.Emit(testEvent{ID: g*100 + i}); err != nil {
					t.Errorf("Emit: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Every surviving line parses — concurrent writers never interleave
	// partial lines.
	readLines(t, path)
	if _, err := os.Stat(path + ".1"); err == nil {
		readLines(t, path+".1")
	}
	if ev, _ := w.Stats(); ev != 800 {
		t.Errorf("events written = %d, want 800", ev)
	}
}

func TestEmitAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	w, err := New(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if err := w.Emit(testEvent{ID: 1}); err == nil {
		t.Error("Emit after Close did not error")
	}
}
