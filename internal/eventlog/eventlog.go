// Package eventlog is a size-bounded structured log sink: one JSON
// object per line (JSONL), rotated by size so a long-running server's
// wide-event log can never fill the disk. The serving layer writes one
// event per sampled request (errors and slow queries always) — see
// internal/serve — but the writer itself is generic: anything
// json.Marshal accepts.
//
// Rotation keeps exactly one predecessor file (path + ".1", replaced on
// each rotation), so the on-disk footprint is bounded by roughly twice
// MaxBytes regardless of uptime. An event larger than the whole bound
// is still written — bounding individual events is the emitter's job
// (the serving layer truncates query text before building events).
package eventlog

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

// DefaultMaxBytes bounds one log file when Writer is built with
// maxBytes <= 0.
const DefaultMaxBytes = 64 << 20 // 64 MiB

// Writer appends JSONL events to a file, rotating when the file would
// exceed its byte bound. Safe for concurrent use.
type Writer struct {
	mu       sync.Mutex
	path     string
	maxBytes int64
	f        *os.File
	size     int64

	events    atomic.Uint64
	rotations atomic.Uint64
}

// New opens (appending) or creates the log file at path. maxBytes <= 0
// means DefaultMaxBytes.
func New(path string, maxBytes int64) (*Writer, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("eventlog: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("eventlog: %w", err)
	}
	return &Writer{path: path, maxBytes: maxBytes, f: f, size: st.Size()}, nil
}

// Path returns the log file path.
func (w *Writer) Path() string { return w.path }

// Emit appends one event as a JSON line, rotating first if the line
// would push the file past its bound (an oversized event on an empty
// file is written anyway rather than lost).
func (w *Writer) Emit(event any) error {
	line, err := json.Marshal(event)
	if err != nil {
		return fmt.Errorf("eventlog: %w", err)
	}
	line = append(line, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("eventlog: writer closed")
	}
	if w.size > 0 && w.size+int64(len(line)) > w.maxBytes {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	n, err := w.f.Write(line)
	w.size += int64(n)
	if err != nil {
		return fmt.Errorf("eventlog: %w", err)
	}
	w.events.Add(1)
	return nil
}

// rotateLocked moves the current file to path+".1" (replacing any
// previous rotation) and starts a fresh file.
func (w *Writer) rotateLocked() error {
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("eventlog: rotate close: %w", err)
	}
	if err := os.Rename(w.path, w.path+".1"); err != nil {
		return fmt.Errorf("eventlog: rotate: %w", err)
	}
	f, err := os.OpenFile(w.path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("eventlog: rotate reopen: %w", err)
	}
	w.f, w.size = f, 0
	w.rotations.Add(1)
	return nil
}

// Stats reports events written and rotations performed, for gauges.
func (w *Writer) Stats() (events, rotations uint64) {
	return w.events.Load(), w.rotations.Load()
}

// Close flushes and closes the file. Emit after Close errors.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}
